// Ablation study of MoCoGrad's design choices (beyond the paper's own
// λ study in Fig. 9), as called out in DESIGN.md:
//
//   1. momentum calibration (the paper) vs raw-gradient calibration (a
//      GradVac-like variant) — isolates the paper's de-noising claim;
//   2. single random conflicting partner (Algorithm 1 / Theorem 1) vs
//      accumulating one term per conflicting partner;
//   3. the momentum decay rate β₁;
//   4. the two extension baselines (GradNorm, Uncertainty Weighting) under
//      the same workload, for context.
//
// Workload: the MovieLens simulator (9 genres) — the configuration where
// this reproduction matches the paper's Table II shape most closely.

#include <cstdio>

#include "bench_common.h"
#include "core/mocograd.h"
#include "data/movielens.h"

namespace mocograd {
namespace {

void Run() {
  data::MovieLensConfig dc;
  dc.train_per_task = 1200;
  dc.test_per_task = 500;
  data::MovieLensSim ds(dc);
  auto factory = harness::MlpHpsFactory(ds.input_dim(), {64, 32});
  const auto tasks = bench::AllTasks(ds);

  harness::TrainConfig cfg;
  cfg.steps = 250;
  cfg.batch_size = 32;
  cfg.lr = 3e-3f;

  harness::RunResult stl = bench::StlAveraged(ds, tasks, factory, cfg);
  auto delta = [&](const harness::RunResult& r) {
    return TextTable::Percent(
        harness::ComputeDeltaM(r.task_metrics, stl.task_metrics));
  };

  TextTable table;
  table.SetHeader({"Variant", "DeltaM vs STL"});

  // Reference points.
  table.AddRow({"EW (no surgery)",
                delta(bench::RunAveraged(ds, tasks, "ew", factory, cfg))});
  table.AddRow({"MoCoGrad (paper: momentum, single partner)",
                delta(bench::RunAveraged(ds, tasks, "mocograd", factory,
                                         cfg))});

  // 1. Raw-gradient calibration.
  {
    core::AggregatorOptions opts;
    opts.mocograd.use_raw_gradient = true;
    table.AddRow({"MoCoGrad w/ raw-gradient calibration",
                  delta(bench::RunAveraged(ds, tasks, "mocograd", factory,
                                           cfg, opts))});
  }

  // 2. Accumulate over all conflicting partners.
  {
    core::AggregatorOptions opts;
    opts.mocograd.accumulate_all_conflicts = true;
    table.AddRow({"MoCoGrad w/ accumulate-all-conflicts",
                  delta(bench::RunAveraged(ds, tasks, "mocograd", factory,
                                           cfg, opts))});
  }

  // 3. Momentum horizon.
  for (float beta1 : {0.0f, 0.5f, 0.9f, 0.98f}) {
    core::AggregatorOptions opts;
    opts.mocograd.beta1 = beta1;
    char label[64];
    std::snprintf(label, sizeof(label), "MoCoGrad beta1 = %.2f", beta1);
    table.AddRow({label, delta(bench::RunAveraged(ds, tasks, "mocograd",
                                                  factory, cfg, opts))});
  }

  // 4. Extension baselines for context.
  for (const std::string& m : core::ExtensionMethodNames()) {
    table.AddRow({bench::PaperName(m),
                  delta(bench::RunAveraged(ds, tasks, m, factory, cfg))});
  }

  std::printf("Ablation — MoCoGrad design choices (MovieLens), %d seeds\n",
              bench::NumSeeds());
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Claims under test: momentum calibration beats the raw-gradient\n"
      "variant (the de-noising argument of §IV-B); beta1 = 0 (no history)\n"
      "degrades toward the raw variant; the single-partner rule of\n"
      "Algorithm 1 is competitive with accumulating all conflicts while\n"
      "keeping the Theorem 1 bound.\n");
}

}  // namespace
}  // namespace mocograd

int main() {
  mocograd::Run();
  return 0;
}
