// Backward-executor benchmark: times the dependency-counted ready-queue
// engine of autograd/executor.cc against the sequential tape replay it
// generalizes, on (a) one raw sweep over an MLP-shaped tape and (b) full
// trainer steps where K per-task sweeps run concurrently over a shared
// trunk — the workload the executor exists for.
//
// Methodology: every (workload, executor, threads) cell runs kTrials
// independent trials of several steps/sweeps each and reports the best
// trial mean. The box this runs on hosts noisy neighbors; best-of-N
// recovers the engine's actual cost rather than the scheduler's mood.
//
// IMPORTANT caveat for readers of the numbers: this host has ONE core
// (nproc = 1), so multi-thread columns cannot show wall-clock speedup.
// What they do show is the executor's scheduling overhead — how much the
// ready-queue machinery (graph pass, slot allocation, queue traffic) costs
// relative to the linear replay when the pool is real but the hardware
// parallelism is not. On a multi-core host the same columns become the
// scaling headline; the JSON records nproc so readers can tell which
// regime a checked-in result came from.
//
// Writes BENCH_backward.json (or argv[1]) with ms-per-iteration for
//   seq    — MOCOGRAD_AUTOGRAD_EXEC=seq, the linear tape replay,
//   ready  — the default dependency-counted ready-queue engine,
// at pool sizes {1, 2, 4}, plus the trainer workload's per-phase
// breakdown (forward / backward / flatten) per cell.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "autograd/executor.h"
#include "autograd/ops.h"
#include "base/rng.h"
#include "base/stopwatch.h"
#include "base/thread_pool.h"
#include "bench_common.h"
#include "core/registry.h"
#include "mtl/hps.h"
#include "mtl/trainer.h"
#include "optim/optimizer.h"

namespace mocograd {
namespace {

namespace ag = autograd;
using autograd::BackwardExecutor;
using autograd::Variable;

constexpr int kTrials = 5;
const int kThreadCounts[] = {1, 2, 4};

const char* ExecName(BackwardExecutor e) {
  return e == BackwardExecutor::kSequential ? "seq" : "ready";
}

// Best-of-kTrials mean milliseconds for `reps` calls of `run` per trial.
template <typename Fn>
double BestMsPerIter(int reps, Fn run) {
  return bench::BestSecondsPerRep(kTrials, reps, run) * 1e3;
}

// --- Workload A: one raw sweep over an MLP-shaped tape ---------------------
// Diamond-free depth with interior fan-out (the trunk feeds a head and a
// regularizer), so the ready queue has real branch-level parallelism to
// exploit and real slot-merge work to pay for.
struct RawSweepResult {
  double ms = 0.0;
};

RawSweepResult RunRawSweep(BackwardExecutor exec, int threads) {
  autograd::SetBackwardExecutor(exec);
  ThreadPool::SetGlobalNumThreads(threads);
  Rng rng(0xbacc);
  Variable w1(Tensor::Randn({128, 256}, rng), /*requires_grad=*/true);
  Variable w2(Tensor::Randn({256, 128}, rng), /*requires_grad=*/true);
  Variable w3(Tensor::Randn({128, 8}, rng), /*requires_grad=*/true);
  Variable x(Tensor::Randn({64, 128}, rng), /*requires_grad=*/false);
  Variable h1 = ag::Tanh(ag::MatMul(x, w1));
  Variable h2 = ag::Sigmoid(ag::MatMul(h1, w2));
  Variable out = ag::MatMul(h2, w3);
  Variable loss = ag::Add(ag::MseLoss(out, Tensor::Zeros(out.shape())),
                          ag::SumAll(ag::Mul(h2, h2)));

  RawSweepResult r;
  r.ms = BestMsPerIter(20, [&] {
    Variable::GradSink sink;
    loss.BackwardInto(&sink);
  });
  return r;
}

// --- Workload B: full trainer steps, K concurrent per-task sweeps ----------
struct TrainerResult {
  double step_ms = 0.0;
  double fwd_ms = 0.0;
  double bwd_ms = 0.0;
  double flatten_ms = 0.0;
};

TrainerResult RunTrainerSteps(BackwardExecutor exec, int threads) {
  autograd::SetBackwardExecutor(exec);
  ThreadPool::SetGlobalNumThreads(threads);
  constexpr int kTasks = 4;
  Rng rng(0x57e9);
  mtl::HpsConfig cfg;
  cfg.input_dim = 64;
  cfg.shared_dims = {256, 128};
  cfg.task_output_dims = std::vector<int64_t>(kTasks, 1);
  mtl::HpsModel model(cfg, rng);

  Tensor x = Tensor::Randn({64, 64}, rng);
  std::vector<data::Batch> batches;
  for (int t = 0; t < kTasks; ++t) {
    batches.push_back(data::Batch{
        .x = x, .y = Tensor::Randn({64, 1}, rng), .labels = {}});
  }
  auto aggregator = core::MakeAggregator("mocograd").value();
  optim::Adam opt(model.Parameters(), 1e-3f);
  mtl::MtlTrainer trainer(
      &model, aggregator.get(), &opt,
      std::vector<data::TaskKind>(kTasks, data::TaskKind::kRegression),
      /*seed=*/11);
  trainer.set_conflict_stats_enabled(false);

  TrainerResult best;
  trainer.Step(batches);  // warm up
  for (int t = 0; t < kTrials; ++t) {
    constexpr int kSteps = 10;
    TrainerResult trial;
    Stopwatch sw;
    for (int s = 0; s < kSteps; ++s) {
      mtl::StepStats stats = trainer.Step(batches);
      trial.fwd_ms += stats.phase.forward * 1e3;
      trial.bwd_ms += stats.phase.backward * 1e3;
      trial.flatten_ms += stats.phase.flatten * 1e3;
    }
    trial.step_ms = sw.ElapsedSeconds() * 1e3 / kSteps;
    trial.fwd_ms /= kSteps;
    trial.bwd_ms /= kSteps;
    trial.flatten_ms /= kSteps;
    if (t == 0 || trial.step_ms < best.step_ms) best = trial;
  }
  return best;
}

}  // namespace

int Main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_backward.json";
  const unsigned nproc = std::thread::hardware_concurrency();

  std::string json = "{\n  \"nproc\": ";
  json += std::to_string(nproc);
  json += ",\n  \"trials\": ";
  json += std::to_string(kTrials);
  json +=
      ",\n  \"note\": \"single-core hosts: multi-thread columns measure "
      "executor scheduling overhead, not wall-clock scaling\",\n"
      "  \"cells\": [\n";

  std::printf("host has %u hardware thread(s); multi-thread columns on a "
              "1-core box\nmeasure scheduling overhead, not scaling.\n\n",
              nproc);
  std::printf("%-14s %-6s %8s %10s %8s %8s %10s\n", "workload", "exec",
              "threads", "step_ms", "fwd_ms", "bwd_ms", "flatten_ms");

  bool first = true;
  for (BackwardExecutor exec :
       {BackwardExecutor::kSequential, BackwardExecutor::kReadyQueue}) {
    for (int threads : kThreadCounts) {
      const RawSweepResult raw = RunRawSweep(exec, threads);
      const TrainerResult tr = RunTrainerSteps(exec, threads);
      std::printf("%-14s %-6s %8d %10.3f %8s %8s %10s\n", "raw_sweep",
                  ExecName(exec), threads, raw.ms, "-", "-", "-");
      std::printf("%-14s %-6s %8d %10.3f %8.3f %8.3f %10.3f\n",
                  "trainer_step", ExecName(exec), threads, tr.step_ms,
                  tr.fwd_ms, tr.bwd_ms, tr.flatten_ms);

      char buf[512];
      std::snprintf(buf, sizeof(buf),
                    "{\"workload\": \"raw_sweep\", \"exec\": \"%s\", "
                    "\"threads\": %d, \"sweep_ms\": %.4f},\n"
                    "    {\"workload\": \"trainer_step\", \"exec\": \"%s\", "
                    "\"threads\": %d, \"step_ms\": %.4f, \"fwd_ms\": %.4f, "
                    "\"bwd_ms\": %.4f, \"flatten_ms\": %.4f}",
                    ExecName(exec), threads, raw.ms, ExecName(exec), threads,
                    tr.step_ms, tr.fwd_ms, tr.bwd_ms, tr.flatten_ms);
      if (!first) json += ",\n";
      json += "    ";
      json += buf;
      first = false;
    }
  }
  json += "\n  ]\n}\n";

  autograd::SetBackwardExecutor(BackwardExecutor::kReadyQueue);
  ThreadPool::SetGlobalNumThreads(1);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace mocograd

int main(int argc, char** argv) { return mocograd::Main(argc, argv); }
