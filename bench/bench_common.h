#ifndef MOCOGRAD_BENCH_BENCH_COMMON_H_
#define MOCOGRAD_BENCH_BENCH_COMMON_H_

// Shared plumbing for the table/figure reproduction benches. Each bench
// binary regenerates one table or figure of the paper: it trains every
// method on the corresponding workload simulator and prints measured values
// next to the paper's published numbers. Absolute values differ (synthetic
// CPU-scale workloads vs the authors' GPU testbed); the claims under test
// are the *shapes* — see EXPERIMENTS.md.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "base/stopwatch.h"
#include "base/table.h"
#include "harness/experiment.h"

namespace mocograd {
namespace bench {

/// Best-of-`trials` wall-clock timing: one untimed warm-up call (faults in
/// pages, primes the pool and scratch arenas), then `trials` timed runs of
/// `reps` calls each, returning the *minimum* seconds per call. The minimum
/// is the standard micro-benchmark estimator — noise (preemption, frequency
/// ramps, cache pollution) only ever adds time, so the fastest trial is the
/// closest observation of the true cost.
template <typename Fn>
double BestSecondsPerRep(int trials, int reps, Fn&& run) {
  MG_CHECK_GE(trials, 1);
  MG_CHECK_GE(reps, 1);
  run();  // warm up
  double best = 0.0;
  for (int t = 0; t < trials; ++t) {
    Stopwatch sw;
    for (int r = 0; r < reps; ++r) run();
    const double per_rep = sw.ElapsedSeconds() / reps;
    if (t == 0 || per_rep < best) best = per_rep;
  }
  return best;
}

/// Number of seeds averaged per configuration (the paper averages 10 runs;
/// we default to 3 to keep the full suite in CPU-minutes). Override with
/// the MOCOGRAD_BENCH_SEEDS environment variable.
inline int NumSeeds() {
  if (const char* env = std::getenv("MOCOGRAD_BENCH_SEEDS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 3;
}

/// Display name of a method as it appears in the paper's tables.
inline std::string PaperName(const std::string& method) {
  static const std::map<std::string, std::string> kNames = {
      {"ew", "EW"},           {"dwa", "DWA"},
      {"mgda", "MGDA"},       {"pcgrad", "PCGrad"},
      {"graddrop", "GradDrop"}, {"gradvac", "GradVac"},
      {"cagrad", "CAGrad"},   {"imtl", "IMTL"},
      {"rlw", "RLW"},         {"nashmtl", "Nash-MTL"},
      {"mocograd", "MoCoGrad"}};
  auto it = kNames.find(method);
  return it != kNames.end() ? it->second : method;
}

/// Averages RunResults over seeds: metric values, risks and timings are
/// averaged elementwise.
inline harness::RunResult AverageResults(
    const std::vector<harness::RunResult>& runs) {
  MG_CHECK(!runs.empty());
  harness::RunResult avg = runs[0];
  for (size_t r = 1; r < runs.size(); ++r) {
    const harness::RunResult& x = runs[r];
    for (size_t t = 0; t < avg.task_metrics.size(); ++t) {
      for (size_t m = 0; m < avg.task_metrics[t].size(); ++m) {
        avg.task_metrics[t][m].value += x.task_metrics[t][m].value;
      }
    }
    for (size_t t = 0; t < avg.test_risks.size(); ++t) {
      avg.test_risks[t] += x.test_risks[t];
    }
    avg.mean_gcd += x.mean_gcd;
    avg.mean_backward_seconds += x.mean_backward_seconds;
    for (size_t i = 0; i < avg.loss_curve.size() && i < x.loss_curve.size();
         ++i) {
      for (size_t t = 0; t < avg.loss_curve[i].size(); ++t) {
        avg.loss_curve[i][t] += x.loss_curve[i][t];
      }
    }
  }
  const double inv = 1.0 / runs.size();
  for (auto& tm : avg.task_metrics) {
    for (auto& mv : tm) mv.value *= inv;
  }
  for (auto& r : avg.test_risks) r *= inv;
  avg.mean_gcd *= inv;
  avg.mean_backward_seconds *= inv;
  for (auto& row : avg.loss_curve) {
    for (auto& v : row) v *= static_cast<float>(inv);
  }
  return avg;
}

/// Runs one method over NumSeeds() seeds and averages.
inline harness::RunResult RunAveraged(
    const data::MtlDataset& ds, const std::vector<int>& tasks,
    const std::string& method, const harness::ModelFactory& factory,
    harness::TrainConfig cfg,
    const core::AggregatorOptions& opts = {}) {
  std::vector<harness::RunResult> runs;
  for (int s = 0; s < NumSeeds(); ++s) {
    cfg.seed = 1 + s;
    runs.push_back(harness::RunMethod(ds, tasks, method, factory, cfg, opts));
  }
  return AverageResults(runs);
}

/// Runs the STL baseline over NumSeeds() seeds and averages.
inline harness::RunResult StlAveraged(const data::MtlDataset& ds,
                                      const std::vector<int>& tasks,
                                      const harness::ModelFactory& factory,
                                      harness::TrainConfig cfg) {
  std::vector<harness::RunResult> runs;
  for (int s = 0; s < NumSeeds(); ++s) {
    cfg.seed = 1 + s;
    runs.push_back(harness::StlBaseline(ds, tasks, factory, cfg));
  }
  return AverageResults(runs);
}

inline std::vector<int> AllTasks(const data::MtlDataset& ds) {
  std::vector<int> tasks(ds.num_tasks());
  for (int i = 0; i < ds.num_tasks(); ++i) tasks[i] = i;
  return tasks;
}

}  // namespace bench
}  // namespace mocograd

#endif  // MOCOGRAD_BENCH_BENCH_COMMON_H_
