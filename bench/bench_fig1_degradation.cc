// Reproduces Fig. 1 of the paper: RMSE of MovieLens task A when trained
// alone (A), jointly with one other genre (A+B), and with two (A+B+C),
// under both the HPS and the MMoE architectures with plain joint training.
//
// Paper claim under test: joint training makes task A's performance
// fluctuate and degrade as more tasks are added — the existence proof of
// task conflicts that motivates the whole paper.

#include <cstdio>

#include "bench_common.h"
#include "data/movielens.h"
#include "mtl/mmoe.h"

namespace mocograd {
namespace {

void Run() {
  data::MovieLensConfig dc;
  dc.num_genres = 3;
  // Fig. 1 probes raw task interference, so the genres are made less
  // related than the Table II configuration.
  dc.relatedness = 0.35f;
  data::MovieLensSim ds(dc);

  harness::TrainConfig cfg;
  cfg.steps = 250;
  cfg.batch_size = 32;
  cfg.lr = 3e-3f;

  auto hps = harness::MlpHpsFactory(ds.input_dim(), {64, 32});
  harness::ModelFactory mmoe = [&](const std::vector<int64_t>& out_dims,
                                   Rng& rng) {
    mtl::MmoeConfig mc;
    mc.input_dim = ds.input_dim();
    mc.num_experts = 4;
    mc.expert_dims = {32};
    mc.task_output_dims = out_dims;
    return std::make_unique<mtl::MmoeModel>(mc, rng);
  };

  const std::vector<std::pair<std::string, std::vector<int>>> scenarios = {
      {"A", {0}}, {"A+B", {0, 1}}, {"A+B+C", {0, 1, 2}}};

  TextTable table;
  table.SetHeader({"Tasks trained", "HPS RMSE(A)", "MMoE RMSE(A)"});
  for (const auto& [label, tasks] : scenarios) {
    harness::RunResult h = bench::RunAveraged(ds, tasks, "ew", hps, cfg);
    harness::RunResult m = bench::RunAveraged(ds, tasks, "ew", mmoe, cfg);
    table.AddRow({label, TextTable::Num(h.task_metrics[0][0].value),
                  TextTable::Num(m.task_metrics[0][0].value)});
  }

  std::printf(
      "Fig. 1 — Task-A RMSE under joint training (MovieLens, lower is "
      "better), %d seeds\n",
      bench::NumSeeds());
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Paper shape: RMSE of task A degrades/fluctuates as B and C join the\n"
      "training, under both architectures (paper Fig. 1a/1b).\n");
}

}  // namespace
}  // namespace mocograd

int main() {
  mocograd::Run();
  return 0;
}
