// Reproduces Fig. 2 of the paper: the correlation between Task Conflict
// Intensity (TCI, Definition 2) and Gradient Conflict Degree (GCD,
// Definition 3) on MovieLens genre pairs.
//
// Paper claim under test: TCI and GCD are strongly positively correlated —
// the more the task gradients conflict during joint training, the more a
// task's test risk degrades relative to its single-task baseline. This is
// the empirical justification for attacking task conflicts at the gradient
// level.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "core/metrics.h"
#include "data/movielens.h"

namespace mocograd {
namespace {

void Run() {
  harness::TrainConfig cfg;
  cfg.steps = 250;
  cfg.batch_size = 32;
  cfg.lr = 3e-3f;

  // Sweep the genre relatedness: less related genres → stronger gradient
  // conflicts → larger TCI. Each dataset instance contributes one
  // (mean GCD, TCI of task A) point, mirroring Fig. 2(b-d).
  TextTable table;
  table.SetHeader({"relatedness", "mean GCD", "TCI(A) vs STL", "MTL RMSE(A)",
                   "STL RMSE(A)"});
  std::vector<double> gcds, tcis;
  for (float rel : {0.9f, 0.75f, 0.6f, 0.45f, 0.3f, 0.15f}) {
    data::MovieLensConfig dc;
    dc.num_genres = 3;
    dc.relatedness = rel;
    data::MovieLensSim ds(dc);
    auto factory = harness::MlpHpsFactory(ds.input_dim(), {64, 32});

    harness::RunResult stl = bench::StlAveraged(ds, {0}, factory, cfg);
    harness::RunResult mtl =
        bench::RunAveraged(ds, {0, 1, 2}, "ew", factory, cfg);

    // TCI on the RMSE risk of task A (Definition 2; lower risk is better,
    // so positive TCI = conflict occurred).
    const double tci = core::Tci(mtl.task_metrics[0][0].value,
                                 stl.task_metrics[0][0].value);
    gcds.push_back(mtl.mean_gcd);
    tcis.push_back(tci);
    table.AddRow({TextTable::Num(rel, 2), TextTable::Num(mtl.mean_gcd, 4),
                  TextTable::Num(tci, 4),
                  TextTable::Num(mtl.task_metrics[0][0].value),
                  TextTable::Num(stl.task_metrics[0][0].value)});
  }

  // Pearson correlation between GCD and TCI across the sweep.
  const size_t n = gcds.size();
  double mg = 0, mt = 0;
  for (size_t i = 0; i < n; ++i) {
    mg += gcds[i];
    mt += tcis[i];
  }
  mg /= n;
  mt /= n;
  double cov = 0, vg = 0, vt = 0;
  for (size_t i = 0; i < n; ++i) {
    cov += (gcds[i] - mg) * (tcis[i] - mt);
    vg += (gcds[i] - mg) * (gcds[i] - mg);
    vt += (tcis[i] - mt) * (tcis[i] - mt);
  }
  const double pearson = cov / std::sqrt(vg * vt + 1e-12);

  std::printf("Fig. 2 — TCI vs GCD correlation (MovieLens), %d seeds\n",
              bench::NumSeeds());
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Pearson correlation(GCD, TCI) = %.3f\n", pearson);
  std::printf(
      "Paper shape: strong positive correlation — larger GCD values go with\n"
      "larger TCI values (paper reports this qualitatively from Fig. 2b-d).\n");
}

}  // namespace
}  // namespace mocograd

int main() {
  mocograd::Run();
  return 0;
}
