// Reproduces Fig. 5 of the paper: per-domain accuracy of all methods on the
// Office-Home workload (Art / Clipart / Product / Real-World, 65-way
// classification each, multi-input MTL).
//
// Paper claims under test: MoCoGrad attains the best and most balanced
// accuracy across the four domains, while some baselines (MGDA, CAGrad in
// the paper) fall below the single-task models.

#include <cstdio>

#include "bench_common.h"
#include "data/office_home.h"

namespace mocograd {
namespace {

void Run() {
  data::OfficeHomeConfig oc;
  data::OfficeHomeSim ds(oc);

  harness::TrainConfig cfg;
  cfg.steps = 300;
  cfg.batch_size = 16;
  cfg.lr = 2e-3f;

  auto factory = harness::MlpHpsFactory(ds.input_dim(), {64, 32});
  const auto tasks = bench::AllTasks(ds);
  harness::RunResult stl = bench::StlAveraged(ds, tasks, factory, cfg);

  TextTable table;
  table.SetHeader({"Method", "Art", "Clipart", "Product", "RealWorld",
                   "Avg ACC", "DeltaM"});
  auto add = [&](const std::string& name, const harness::RunResult& r,
                 bool is_stl) {
    std::vector<std::string> row = {name};
    double avg = 0.0;
    for (int t = 0; t < 4; ++t) {
      row.push_back(TextTable::Num(r.task_metrics[t][0].value, 4));
      avg += r.task_metrics[t][0].value;
    }
    row.push_back(TextTable::Num(avg / 4.0, 4));
    row.push_back(is_stl ? "+0.00%"
                         : TextTable::Percent(harness::ComputeDeltaM(
                               r.task_metrics, stl.task_metrics)));
    table.AddRow(row);
  };

  add("STL", stl, true);
  table.AddSeparator();
  for (const std::string& method : core::PaperMethodNames()) {
    add(bench::PaperName(method),
        bench::RunAveraged(ds, tasks, method, factory, cfg), false);
  }

  std::printf(
      "Fig. 5 — Office-Home per-domain accuracy (4 x 65-way, multi-input), "
      "%d seeds\n",
      bench::NumSeeds());
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Paper shape: MoCoGrad best and balanced; several baselines at or\n"
      "below the single-task models.\n");
}

}  // namespace
}  // namespace mocograd

int main() {
  mocograd::Run();
  return 0;
}
