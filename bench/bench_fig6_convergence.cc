// Reproduces Fig. 6 of the paper: training-loss curves of every method on
// the NYUv2 workload — per-task curves and the three-task average.
//
// Paper claims under test: MoCoGrad's loss decreases monotonically and
// reaches the lowest average training loss under the same epoch budget,
// i.e. it converges faster than the baselines.

#include <cstdio>

#include "bench_common.h"
#include "data/scene.h"

namespace mocograd {
namespace {

void Run() {
  data::SceneConfig sc;
  sc.mode = data::SceneMode::kNyu;
  data::SceneSim ds(sc);

  harness::TrainConfig cfg;
  cfg.steps = 300;
  cfg.batch_size = 8;
  cfg.lr = 3e-3f;
  cfg.loss_curve_every = 30;

  auto factory = harness::SceneConvFactory(3, 16, 2);
  const auto tasks = bench::AllTasks(ds);

  // Collect loss curves per method.
  std::vector<std::string> methods = core::PaperMethodNames();
  std::vector<harness::RunResult> results;
  for (const std::string& m : methods) {
    results.push_back(bench::RunAveraged(ds, tasks, m, factory, cfg));
  }

  const size_t points = results[0].loss_curve.size();
  const char* task_names[] = {"Segmentation", "Depth", "Surface normals",
                              "Average of 3 tasks"};
  for (int view = 0; view < 4; ++view) {
    TextTable table;
    std::vector<std::string> header = {"step"};
    for (const std::string& m : methods) header.push_back(bench::PaperName(m));
    table.SetHeader(header);
    for (size_t p = 0; p < points; ++p) {
      std::vector<std::string> row = {
          std::to_string(p * cfg.loss_curve_every)};
      for (const auto& r : results) {
        double v;
        if (view < 3) {
          v = r.loss_curve[p][view];
        } else {
          v = (r.loss_curve[p][0] + r.loss_curve[p][1] + r.loss_curve[p][2]) /
              3.0;
        }
        row.push_back(TextTable::Num(v, 4));
      }
      table.AddRow(row);
    }
    std::printf("Fig. 6(%c) — %s training loss (NYUv2), %d seeds\n",
                'a' + view, task_names[view], bench::NumSeeds());
    std::printf("%s\n", table.ToString().c_str());
  }

  // Final average training loss ranking.
  std::printf("Final average training loss by method:\n");
  for (size_t i = 0; i < methods.size(); ++i) {
    const auto& last = results[i].loss_curve.back();
    const double avg = (last[0] + last[1] + last[2]) / 3.0;
    std::printf("  %-9s %.4f\n", methods[i].c_str(), avg);
  }
  std::printf(
      "Paper shape: MoCoGrad's curves decrease steadily and reach the\n"
      "lowest (or near-lowest) average loss under the same budget.\n");
}

}  // namespace
}  // namespace mocograd

int main() {
  mocograd::Run();
  return 0;
}
