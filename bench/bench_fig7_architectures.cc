// Reproduces Fig. 7 of the paper: Δ_M of MoCoGrad combined with five MTL
// architectures (HPS, Cross-stitch, MTAN, MMoE, CGC).
//
// Workload substitution (see EXPERIMENTS.md): the paper runs this sweep on
// CityScapes with conv backbones. All five architectures here are MLP
// variants operating on flat feature vectors, so the sweep runs on the
// MovieLens workload — the simulator on which this reproduction matches the
// paper's Table II shape most faithfully. The claim under test is
// architecture-generality: MoCoGrad must improve over the per-architecture
// single-task baselines under EVERY sharing scheme, not just HPS.

#include <cstdio>

#include "bench_common.h"
#include "data/movielens.h"

namespace mocograd {
namespace {

// Approximate bar heights of Fig. 7 (CityScapes in the paper).
const std::map<std::string, double> kPaperDeltaM = {
    {"hps", 9.93},  {"cross_stitch", 11.0}, {"mtan", 11.5},
    {"mmoe", 10.8}, {"cgc", 11.2}};

void Run() {
  data::MovieLensConfig dc;
  dc.train_per_task = 1200;
  dc.test_per_task = 500;
  data::MovieLensSim ds(dc);

  harness::TrainConfig cfg;
  cfg.steps = 250;
  cfg.batch_size = 32;
  cfg.lr = 3e-3f;

  const auto tasks = bench::AllTasks(ds);

  TextTable table;
  table.SetHeader({"Architecture", "MoCoGrad DeltaM",
                   "paper DeltaM (CityScapes, approx)"});
  for (const std::string& arch : harness::AllArchitectureNames()) {
    auto factory = harness::ArchitectureFactory(arch, ds.input_dim());
    // The STL reference uses the same architecture restricted to one task,
    // mirroring the paper's per-architecture baselines.
    harness::RunResult stl = bench::StlAveraged(ds, tasks, factory, cfg);
    harness::RunResult r =
        bench::RunAveraged(ds, tasks, "mocograd", factory, cfg);
    table.AddRow({arch,
                  TextTable::Percent(harness::ComputeDeltaM(
                      r.task_metrics, stl.task_metrics)),
                  TextTable::Percent(kPaperDeltaM.at(arch) / 100.0)});
  }

  std::printf(
      "Fig. 7 — MoCoGrad with five MTL architectures (MovieLens workload), "
      "%d seeds\n",
      bench::NumSeeds());
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Paper shape: positive Delta_M under every architecture — MoCoGrad is\n"
      "architecture-agnostic (paper runs this on CityScapes; see\n"
      "EXPERIMENTS.md for the workload substitution).\n");
}

}  // namespace
}  // namespace mocograd

int main() {
  mocograd::Run();
  return 0;
}
