// Reproduces Fig. 8 of the paper: per-iteration backward/aggregation time
// of every method on the AliExpress workload, using google-benchmark for
// the timing harness.
//
// Paper claims under test: MoCoGrad's per-step cost is comparable to
// PCGrad/GradVac (cheap pairwise surgery), while Nash-MTL is the most
// expensive method (it solves a bargaining problem every step).

#include <benchmark/benchmark.h>

#include <memory>

#include "base/stopwatch.h"
#include "base/thread_pool.h"
#include "core/registry.h"
#include "data/aliexpress.h"
#include "harness/experiment.h"
#include "mtl/trainer.h"
#include "optim/optimizer.h"

namespace mocograd {
namespace {

// Thread-pool sizes for the threads column: how the per-step backward cost
// scales when the K per-task sweeps and the GEMMs inside them go parallel.
// Wall-clock speedup obviously requires the host to actually have that many
// cores; on a single-core machine the column only measures pool overhead.
const int kThreadCounts[] = {1, 2, 4};

// One fixture per method and pool size: build model/trainer once, then time
// Step().
void BM_BackwardStep(benchmark::State& state, const std::string& method,
                     int num_threads) {
  ThreadPool::SetGlobalNumThreads(num_threads);
  data::AliExpressConfig dc;
  dc.num_train = 2000;
  dc.num_test = 100;
  data::AliExpressSim ds(dc);

  Rng init_rng(7);
  auto factory = harness::EmbeddingHpsFactory(dc.dense_dim,
                                              dc.num_user_segments,
                                              dc.num_item_categories);
  auto out_dims = harness::TaskOutputDims(ds, {0, 1});
  auto model = factory(out_dims, init_rng);
  auto aggregator = core::MakeAggregator(method).value();
  optim::Adam opt(model->Parameters(), 2e-3f);
  mtl::MtlTrainer trainer(model.get(), aggregator.get(), &opt,
                          {data::TaskKind::kBinaryLogistic,
                           data::TaskKind::kBinaryLogistic},
                          /*seed=*/11);

  // This benchmark only reads losses / backward_seconds / phase times, so
  // the O(K²·P) conflict-stats analysis pass is switched off (it would
  // otherwise show up as method-independent overhead in every row).
  trainer.set_conflict_stats_enabled(false);

  Rng data_rng(13);
  double backward_seconds = 0.0;
  double step_seconds = 0.0;
  mtl::StepPhaseTimes phases;
  int64_t steps = 0;
  for (auto _ : state) {
    auto batches = ds.SampleTrainBatches(64, data_rng);
    Stopwatch step_timer;
    mtl::StepStats stats = trainer.Step(batches);
    step_seconds += step_timer.ElapsedSeconds();
    backward_seconds += stats.backward_seconds;
    phases.Accumulate(stats.phase);
    ++steps;
    benchmark::DoNotOptimize(stats.losses);
  }
  const double inv = 1e3 / std::max<int64_t>(steps, 1);
  state.counters["backward_ms_per_iter"] =
      benchmark::Counter(inv * backward_seconds);
  // Phase attribution: where each method's step actually goes. "solver" is
  // the aggregator-internal solver work (Frank–Wolfe / fixed-point / Jacobi
  // sweeps / surgery loops); "agg" is the whole Aggregate() call containing
  // it. On a single-core pool fwd+bwd+flatten+agg+writeback+opt sums to the
  // measured step wall-clock (step_ms_per_iter); with more workers the
  // backward/flatten columns sum CPU time across workers instead.
  state.counters["step_ms_per_iter"] = benchmark::Counter(inv * step_seconds);
  state.counters["fwd_ms"] = benchmark::Counter(inv * phases.forward);
  state.counters["bwd_ms"] = benchmark::Counter(inv * phases.backward);
  state.counters["flatten_ms"] = benchmark::Counter(inv * phases.flatten);
  state.counters["agg_ms"] = benchmark::Counter(inv * phases.aggregate);
  state.counters["solver_ms"] = benchmark::Counter(
      inv * (phases.aggregator.Get("solver") + phases.aggregator.Get("eigen") +
             phases.aggregator.Get("surgery") +
             phases.aggregator.Get("calibrate")));
  state.counters["writeback_ms"] = benchmark::Counter(inv * phases.write_back);
  state.counters["opt_ms"] = benchmark::Counter(inv * phases.optimizer);
  state.counters["threads"] = benchmark::Counter(num_threads);
  ThreadPool::SetGlobalNumThreads(1);
}

// Aggregation-only cost at QM9 scale (K = 11 tasks) over a larger
// flattened-gradient dimension, isolating each method's per-step solver /
// surgery cost from the (method-independent) backward passes.
void BM_AggregateOnly(benchmark::State& state, const std::string& method,
                      int num_tasks, int64_t dim) {
  auto aggregator = core::MakeAggregator(method).value();
  Rng data_rng(3);
  core::GradMatrix grads(num_tasks, dim);
  for (int t = 0; t < num_tasks; ++t) {
    float* row = grads.Row(t);
    for (int64_t q = 0; q < dim; ++q) row[q] = data_rng.Normal();
  }
  std::vector<float> losses(num_tasks, 1.0f);
  Rng rng(5);
  obs::PhaseProfile profile;
  core::AggregationContext ctx;
  ctx.task_grads = &grads;
  ctx.losses = &losses;
  ctx.rng = &rng;
  ctx.profile = &profile;
  int64_t step = 0;
  for (auto _ : state) {
    ctx.step = step++;
    auto r = aggregator->Aggregate(ctx);
    benchmark::DoNotOptimize(r.shared_grad.data());
  }
  // Sub-phase attribution from the aggregator itself (zero rows for
  // buckets the method never enters).
  const double inv = 1e3 / std::max<int64_t>(step, 1);
  for (const auto& sub : profile.entries()) {
    state.counters[sub.first + "_ms"] = benchmark::Counter(inv * sub.second);
  }
}

void RegisterAll() {
  for (const std::string& m : core::PaperMethodNames()) {
    for (int threads : kThreadCounts) {
      benchmark::RegisterBenchmark(
          ("Fig8/backward_time/" + m + "/threads:" + std::to_string(threads))
              .c_str(),
          [m, threads](benchmark::State& st) {
            BM_BackwardStep(st, m, threads);
          })
          ->Unit(benchmark::kMillisecond)
          ->MinTime(0.5);
    }
  }
  for (const std::string& m : core::PaperMethodNames()) {
    benchmark::RegisterBenchmark(
        ("Fig8/aggregate_only_k11/" + m).c_str(),
        [m](benchmark::State& st) { BM_AggregateOnly(st, m, 11, 200000); })
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.3);
  }
}

}  // namespace
}  // namespace mocograd

int main(int argc, char** argv) {
  mocograd::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf(
      "\nFig. 8 shape under test: MoCoGrad has per-iteration cost comparable "
      "to\nPCGrad/GradVac. Note: the paper's Nash-MTL spike comes from its "
      "cvxpy-based\nbargaining solver; this reproduction replaces it with a "
      "native damped\nfixed-point iteration, so Nash-MTL's aggregation "
      "overhead largely vanishes\n(documented deviation, EXPERIMENTS.md).\n");
  return 0;
}
