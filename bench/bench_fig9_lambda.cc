// Reproduces Fig. 9 of the paper: the effect of the calibration strength λ
// on Office-Home average accuracy.
//
// Paper claims under test: λ has an interior optimum (≈0.12 in the paper);
// too little calibration leaves conflicts untreated, too much over-prunes
// the conflicting gradients, and both ends degrade accuracy.

#include <cstdio>

#include "bench_common.h"
#include "data/movielens.h"
#include "data/office_home.h"

namespace mocograd {
namespace {

// Secondary sweep on the MovieLens workload, where the simulator reproduces
// the paper's Table II shape most faithfully and the interior optimum in λ
// is sharp.
void RunMovieLensSweep() {
  data::MovieLensConfig dc;
  dc.train_per_task = 1200;
  dc.test_per_task = 500;
  data::MovieLensSim ds(dc);
  harness::TrainConfig cfg;
  cfg.steps = 250;
  cfg.batch_size = 32;
  cfg.lr = 3e-3f;
  auto factory = harness::MlpHpsFactory(ds.input_dim(), {64, 32});
  const auto tasks = bench::AllTasks(ds);
  harness::RunResult stl = bench::StlAveraged(ds, tasks, factory, cfg);

  TextTable table;
  table.SetHeader({"lambda", "Avg RMSE", "DeltaM vs STL"});
  for (float lambda :
       {0.03f, 0.08f, 0.12f, 0.2f, 0.3f, 0.5f, 0.7f, 0.9f}) {
    core::AggregatorOptions opts;
    opts.mocograd.lambda = lambda;
    harness::RunResult r =
        bench::RunAveraged(ds, tasks, "mocograd", factory, cfg, opts);
    double avg = 0.0;
    for (const auto& tm : r.task_metrics) avg += tm[0].value;
    avg /= r.task_metrics.size();
    table.AddRow({TextTable::Num(lambda, 2), TextTable::Num(avg, 4),
                  TextTable::Percent(harness::ComputeDeltaM(
                      r.task_metrics, stl.task_metrics))});
  }
  std::printf("Fig. 9 (companion) — λ study on MovieLens, %d seeds\n",
              bench::NumSeeds());
  std::printf("%s\n", table.ToString().c_str());
}

void Run() {
  data::OfficeHomeConfig oc;
  data::OfficeHomeSim ds(oc);

  harness::TrainConfig cfg;
  cfg.steps = 300;
  cfg.batch_size = 16;
  cfg.lr = 2e-3f;

  auto factory = harness::MlpHpsFactory(ds.input_dim(), {64, 32});
  const auto tasks = bench::AllTasks(ds);

  TextTable table;
  table.SetHeader({"lambda", "Avg ACC", "DeltaM vs STL"});
  harness::RunResult stl = bench::StlAveraged(ds, tasks, factory, cfg);

  double best_acc = 0.0;
  float best_lambda = 0.0f;
  for (float lambda : {0.03f, 0.06f, 0.09f, 0.12f, 0.15f, 0.25f, 0.5f,
                       0.9f}) {
    core::AggregatorOptions opts;
    opts.mocograd.lambda = lambda;
    harness::RunResult r =
        bench::RunAveraged(ds, tasks, "mocograd", factory, cfg, opts);
    double avg = 0.0;
    for (const auto& tm : r.task_metrics) avg += tm[0].value;
    avg /= r.task_metrics.size();
    if (avg > best_acc) {
      best_acc = avg;
      best_lambda = lambda;
    }
    table.AddRow({TextTable::Num(lambda, 2), TextTable::Num(avg, 4),
                  TextTable::Percent(harness::ComputeDeltaM(
                      r.task_metrics, stl.task_metrics))});
  }

  std::printf("Fig. 9 — λ parameter study on Office-Home, %d seeds\n",
              bench::NumSeeds());
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Best λ measured: %.2f (paper: 0.12)\n", best_lambda);
  std::printf(
      "Paper shape: interior optimum — very small and very large λ both\n"
      "underperform the mid-range.\n");
}

}  // namespace
}  // namespace mocograd

int main() {
  mocograd::Run();
  mocograd::RunMovieLensSweep();
  return 0;
}
