// GEMM kernel benchmark: times the cache-blocked SIMD Gemm of
// tensor/gemm.cc against the naive i-k-j scalar kernel it replaced, on the
// matrix shapes the model zoo actually emits (square compute shapes, MLP
// layers, im2col'd conv layers and their backward col_grad GEMM, the m=1 /
// n=1 GEMV edges, and the in-place-B cutover shape).
//
// Methodology: every (kernel, shape) measurement runs kTrials independent
// trials and reports the best one. The box this runs on throttles
// sustained AVX work and hosts noisy neighbors; best-of-N recovers the
// kernel's actual capability rather than the scheduler's mood. Single
// trials on this machine swing by 2x.
//
// Writes BENCH_gemm.json (or argv[1]) with GFLOP/s per shape for
//   naive      — the pre-SIMD i-k-j loop, compiled without AVX so the
//                numbers reproduce the seed build's codegen,
//   scalar     — the kernel on the lane-blocked scalar backend
//                (MOCOGRAD_SIMD=0 path),
//   simd       — the kernel on the widest ISA tier the runtime dispatch
//                granted at startup (recorded as "isa_tier"; cap it with
//                MOCOGRAD_SIMD_ISA to benchmark a narrower tier),
//   simd_t4    — the hardware backend with a 4-thread pool (the pool
//                sweep column; this host has one core, so the delta vs
//                `simd` is pure pool dispatch overhead, not scaling),
// plus simd/naive and simd/scalar speedups.

#include <cstdio>
#include <string>
#include <vector>

#include "base/rng.h"
#include "base/simd.h"
#include "base/thread_pool.h"
#include "bench_common.h"
#include "tensor/gemm.h"

namespace mocograd {
namespace {

// The exact kernel the SIMD layer replaced, pinned to SSE2 codegen on
// x86-64 so the numbers reproduce the seed build's codegen regardless of
// what the compiler would auto-vectorize this loop to. (The runtime ISA
// dispatch compiles only the tier TUs with wider ISA flags; the rest of
// the build, this file included, stays on the SSE2 baseline.)
#if defined(__x86_64__)
__attribute__((target("sse2")))
#endif
void NaiveGemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
               float alpha, const float* a, int64_t lda, const float* b,
               int64_t ldb, float beta, float* c, int64_t ldc) {
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    for (int64_t j = 0; j < n; ++j) crow[j] *= beta;
    for (int64_t p = 0; p < k; ++p) {
      const float av = alpha * (trans_a ? a[p * lda + i] : a[i * lda + p]);
      if (av == 0.0f) continue;
      const float* brow = trans_b ? nullptr : b + p * ldb;
      for (int64_t j = 0; j < n; ++j) {
        crow[j] += av * (trans_b ? b[j * ldb + p] : brow[j]);
      }
    }
  }
}

struct ShapeSpec {
  const char* name;
  int64_t m, n, k;
  bool trans_a = false;
  bool trans_b = false;
};

constexpr int kTrials = 5;

// Picks repetitions per trial so each trial spans roughly the same
// wall-clock budget regardless of shape size.
int RepsFor(int64_t m, int64_t n, int64_t k, double target_flops) {
  const double flops = 2.0 * static_cast<double>(m) * n * k;
  const double reps = target_flops / flops;
  if (reps < 1.0) return 1;
  if (reps > 2000.0) return 2000;
  return static_cast<int>(reps);
}

template <typename Fn>
double TimeGFlops(int64_t m, int64_t n, int64_t k, int reps, Fn run) {
  const double sec = bench::BestSecondsPerRep(kTrials, reps, run);
  return 2.0 * static_cast<double>(m) * n * k / sec / 1e9;
}

}  // namespace

int Main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_gemm.json";

  const std::vector<ShapeSpec> shapes = {
      {"square_64", 64, 64, 64},
      {"square_128", 128, 128, 128},
      {"square_256", 256, 256, 256},
      {"mlp_fwd_256x128x64", 256, 128, 64},    // batch x hidden layers
      {"mlp_bwd_wgrad_128x64x256", 128, 64, 256},
      {"conv_im2col_32x1024x288", 32, 1024, 288},  // filters x pixels x c*k*k
      // conv backward's col_grad GEMM: W^T [patch, f] x g [f, pixels], the
      // transposed-A shape src/autograd/ops.cc emits per sample.
      {"conv_bwd_colgrad_288x1024x32", 288, 1024, 32, /*trans_a=*/true},
      {"rowvec_1x512x512", 1, 512, 512},       // m=1 edge (single sample)
      {"colvec_512x1x512", 512, 1, 512},       // n=1 edge (vector product)
      {"tall_512x32x64", 512, 32, 64},         // narrow n: streaming path
      // Just under kPackBMinRows: documents that the in-place-B streaming
      // cutover leaves no cliff for thin-m shapes.
      {"cutover_12x512x256", 12, 512, 256},
  };

  const GemmBlockSizes blocks = GemmBlocking();
  char blk[64];
  std::snprintf(blk, sizeof(blk), "%lld,%lld,%lld",
                static_cast<long long>(blocks.mc),
                static_cast<long long>(blocks.kc),
                static_cast<long long>(blocks.nc));

  std::string json = "{\n  \"threads\": 1,\n  \"trials\": ";
  json += std::to_string(kTrials);
  json += ",\n  \"gemm_block\": \"";
  json += blk;
  json += "\",\n  \"backend\": \"";
  json += simd::ActiveBackendName();
  // The tier the runtime ISA dispatch granted for the "simd" column —
  // same string as "backend" today, kept as its own key so the schema
  // matches BENCH_serve.json and telemetry records.
  json += "\",\n  \"isa_tier\": \"";
  json += simd::ActiveBackendName();
  json += "\",\n  \"shapes\": [\n";

  std::printf("%-30s %9s %9s %9s %9s %8s %8s\n", "shape", "naive", "scalar",
              "simd", "simd_t4", "x_naive", "x_scalar");
  bool first = true;
  for (const ShapeSpec& s : shapes) {
    Rng rng(0x5eed + s.m * 131 + s.n * 17 + s.k);
    std::vector<float> a(s.m * s.k), b(s.k * s.n), c(s.m * s.n, 0.0f);
    for (float& v : a) v = rng.Uniform() - 0.5f;
    for (float& v : b) v = rng.Uniform() - 0.5f;
    // Stored leading dimensions for op(A) m×k / op(B) k×n.
    const int64_t lda = s.trans_a ? s.m : s.k;
    const int64_t ldb = s.trans_b ? s.k : s.n;
    const auto run_gemm = [&] {
      Gemm(s.trans_a, s.trans_b, s.m, s.n, s.k, 1.0f, a.data(), lda,
           b.data(), ldb, 0.0f, c.data(), s.n);
    };

    const int reps = RepsFor(s.m, s.n, s.k, 4e7);

    // Kernel-only numbers: one thread, no pool fan-out.
    ThreadPool::SetGlobalNumThreads(1);
    const double naive =
        TimeGFlops(s.m, s.n, s.k, reps, [&] {
          NaiveGemm(s.trans_a, s.trans_b, s.m, s.n, s.k, 1.0f, a.data(), lda,
                    b.data(), ldb, 0.0f, c.data(), s.n);
        });
    simd::SetEnabled(false);
    const double scalar = TimeGFlops(s.m, s.n, s.k, reps, run_gemm);
    simd::SetEnabled(true);
    const double simd_gf = TimeGFlops(s.m, s.n, s.k, reps, run_gemm);

    // Pool sweep: same kernel through a 4-thread pool.
    ThreadPool::SetGlobalNumThreads(4);
    const double simd_t4 = TimeGFlops(s.m, s.n, s.k, reps, run_gemm);
    ThreadPool::SetGlobalNumThreads(1);

    const double x_naive = naive > 0.0 ? simd_gf / naive : 0.0;
    const double x_scalar = scalar > 0.0 ? simd_gf / scalar : 0.0;
    std::printf("%-30s %9.2f %9.2f %9.2f %9.2f %7.2fx %7.2fx\n", s.name,
                naive, scalar, simd_gf, simd_t4, x_naive, x_scalar);

    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\": \"%s\", \"m\": %lld, \"n\": %lld, "
                  "\"k\": %lld, \"trans_a\": %s, \"trans_b\": %s, "
                  "\"reps\": %d, \"gflops_naive\": %.3f, "
                  "\"gflops_scalar\": %.3f, \"gflops_simd\": %.3f, "
                  "\"gflops_simd_t4\": %.3f, "
                  "\"speedup_vs_naive\": %.3f, \"speedup_vs_scalar\": %.3f}",
                  s.name, static_cast<long long>(s.m),
                  static_cast<long long>(s.n), static_cast<long long>(s.k),
                  s.trans_a ? "true" : "false", s.trans_b ? "true" : "false",
                  reps, naive, scalar, simd_gf, simd_t4, x_naive, x_scalar);
    if (!first) json += ",\n";
    json += "    ";
    json += buf;
    first = false;
  }
  json += "\n  ]\n}\n";

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace mocograd

int main(int argc, char** argv) { return mocograd::Main(argc, argv); }
