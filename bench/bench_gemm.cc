// GEMM microkernel benchmark: times the register-blocked SIMD Gemm of
// tensor/gemm.cc against the naive i-k-j scalar kernel it replaced, on the
// matrix shapes the model zoo actually emits (square compute shapes, MLP
// layers, im2col'd conv layers, and the m=1 single-row edge). Runs
// single-threaded so the numbers isolate the kernel, not the pool.
//
// Writes BENCH_gemm.json (or argv[1]) with GFLOP/s per shape for
//   naive      — the pre-SIMD i-k-j loop, compiled without AVX so the
//                numbers reproduce the seed build's codegen,
//   scalar     — the microkernel on the lane-blocked scalar backend
//                (MOCOGRAD_SIMD=0 path),
//   simd       — the microkernel on the compiled hardware backend,
// plus simd/naive and simd/scalar speedups.

#include <cstdio>
#include <string>
#include <vector>

#include "base/rng.h"
#include "base/simd.h"
#include "base/stopwatch.h"
#include "base/thread_pool.h"
#include "tensor/gemm.h"

namespace mocograd {
namespace {

// The exact kernel this PR replaced, pinned to SSE2 codegen on x86-64: the
// whole build now carries -mavx2, and letting the compiler auto-vectorize
// the "baseline" 8-wide would benchmark the new ISA flags, not the new
// kernel. (The seed build compiled this loop without AVX.)
#if defined(__x86_64__)
__attribute__((target("sse2")))
#endif
void NaiveGemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
               float alpha, const float* a, int64_t lda, const float* b,
               int64_t ldb, float beta, float* c, int64_t ldc) {
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    for (int64_t j = 0; j < n; ++j) crow[j] *= beta;
    for (int64_t p = 0; p < k; ++p) {
      const float av = alpha * (trans_a ? a[p * lda + i] : a[i * lda + p]);
      if (av == 0.0f) continue;
      const float* brow = trans_b ? nullptr : b + p * ldb;
      for (int64_t j = 0; j < n; ++j) {
        crow[j] += av * (trans_b ? b[j * ldb + p] : brow[j]);
      }
    }
  }
}

struct ShapeSpec {
  const char* name;
  int64_t m, n, k;
};

// Picks repetitions so each (kernel, shape) measurement spans roughly the
// same wall-clock budget regardless of shape size.
int RepsFor(int64_t m, int64_t n, int64_t k, double target_flops) {
  const double flops = 2.0 * static_cast<double>(m) * n * k;
  const double reps = target_flops / flops;
  if (reps < 1.0) return 1;
  if (reps > 2000.0) return 2000;
  return static_cast<int>(reps);
}

template <typename Fn>
double TimeGFlops(int64_t m, int64_t n, int64_t k, int reps, Fn run) {
  run();  // warm up (and fault in pages)
  Stopwatch sw;
  for (int r = 0; r < reps; ++r) run();
  const double seconds = sw.ElapsedSeconds();
  const double flops = 2.0 * static_cast<double>(m) * n * k * reps;
  return flops / seconds / 1e9;
}

}  // namespace

int Main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_gemm.json";

  // Kernel-only numbers: one thread, no pool fan-out.
  ThreadPool::SetGlobalNumThreads(1);

  const std::vector<ShapeSpec> shapes = {
      {"square_64", 64, 64, 64},
      {"square_128", 128, 128, 128},
      {"square_256", 256, 256, 256},
      {"mlp_fwd_256x128x64", 256, 128, 64},    // batch x hidden layers
      {"mlp_bwd_wgrad_128x64x256", 128, 64, 256},
      {"conv_im2col_32x1024x288", 32, 1024, 288},  // filters x pixels x c*k*k
      {"rowvec_1x512x512", 1, 512, 512},       // m=1 edge (single sample)
      {"tall_512x32x64", 512, 32, 64},         // ragged n < one panel pair
  };

  std::string json = "{\n  \"threads\": 1,\n  \"backend\": \"";
  json += simd::ActiveBackendName();
  json += "\",\n  \"shapes\": [\n";

  std::printf("%-28s %10s %10s %10s %8s %8s\n", "shape", "naive", "scalar",
              "simd", "x_naive", "x_scalar");
  bool first = true;
  for (const ShapeSpec& s : shapes) {
    Rng rng(0x5eed + s.m * 131 + s.n * 17 + s.k);
    std::vector<float> a(s.m * s.k), b(s.k * s.n), c(s.m * s.n, 0.0f);
    for (float& v : a) v = rng.Uniform() - 0.5f;
    for (float& v : b) v = rng.Uniform() - 0.5f;

    const int reps = RepsFor(s.m, s.n, s.k, 2e8);
    const double naive =
        TimeGFlops(s.m, s.n, s.k, reps, [&] {
          NaiveGemm(false, false, s.m, s.n, s.k, 1.0f, a.data(), s.k,
                    b.data(), s.n, 0.0f, c.data(), s.n);
        });
    simd::SetEnabled(false);
    const double scalar =
        TimeGFlops(s.m, s.n, s.k, reps, [&] {
          Gemm(false, false, s.m, s.n, s.k, 1.0f, a.data(), s.k, b.data(),
               s.n, 0.0f, c.data(), s.n);
        });
    simd::SetEnabled(true);
    const double simd_gf =
        TimeGFlops(s.m, s.n, s.k, reps, [&] {
          Gemm(false, false, s.m, s.n, s.k, 1.0f, a.data(), s.k, b.data(),
               s.n, 0.0f, c.data(), s.n);
        });

    const double x_naive = naive > 0.0 ? simd_gf / naive : 0.0;
    const double x_scalar = scalar > 0.0 ? simd_gf / scalar : 0.0;
    std::printf("%-28s %10.2f %10.2f %10.2f %7.2fx %7.2fx\n", s.name, naive,
                scalar, simd_gf, x_naive, x_scalar);

    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\": \"%s\", \"m\": %lld, \"n\": %lld, "
                  "\"k\": %lld, \"reps\": %d, \"gflops_naive\": %.3f, "
                  "\"gflops_scalar\": %.3f, \"gflops_simd\": %.3f, "
                  "\"speedup_vs_naive\": %.3f, \"speedup_vs_scalar\": %.3f}",
                  s.name, static_cast<long long>(s.m),
                  static_cast<long long>(s.n), static_cast<long long>(s.k),
                  reps, naive, scalar, simd_gf, x_naive, x_scalar);
    if (!first) json += ",\n";
    json += "    ";
    json += buf;
    first = false;
  }
  json += "\n  ]\n}\n";

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace mocograd

int main(int argc, char** argv) { return mocograd::Main(argc, argv); }
