// Serving-engine benchmark: drives the frozen-weight forward path and the
// deadline-triggered micro-batcher (src/serve) with closed-loop and
// open-loop traffic over the model zoo's serving shapes, and writes
// BENCH_serve.json (or argv[1]).
//
// Three traffic modes per (model, dataset) combination:
//   closed_single  — one caller, one row per InferenceSession::Forward: the
//                    un-batched baseline every speedup is measured against.
//   closed_batched — `batch` requester threads hammering MicroBatcher::Infer
//                    back-to-back, so flushes are size-triggered: peak
//                    batched throughput, swept over batch {8, 16, 32}.
//   open_poisson   — requests arrive on a precomputed Poisson schedule
//                    (exponential inter-arrivals from base/rng.h) at ~40% of
//                    the batched capacity; latency is measured from the
//                    *scheduled* arrival, so queueing delay during bursts is
//                    charged to the server, not hidden (open-loop load, the
//                    metric closed loops systematically understate).
//
// Methodology: closed-loop rates are best-of-kTrials (bench_common.h);
// latency quantiles come from per-request timestamps into preallocated
// slots. This host has one core, so batched-vs-single gains here are pure
// per-request overhead amortization (GEMM microkernel row reuse, one
// scratch slab and op-dispatch walk per flush instead of per row) — on a
// multi-core box the batched forward additionally fans out over the pool.
//
// The report also carries the active runtime-ISA tier ("isa_tier"), a
// "precision" tag per traffic row (the harness drives fp32 engines), and
// a "precision_compare" section: single-row (GEMV-shaped) throughput of a
// bf16-weight engine vs its fp32 twin on each serving shape plus a wide
// embedding-style shape whose weight arena actually stresses memory
// bandwidth, with the bf16-vs-fp32 max-abs output error recorded
// (docs/SERVING.md "Reduced precision").

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "base/rng.h"
#include "base/simd.h"
#include "base/stopwatch.h"
#include "base/thread_pool.h"
#include "bench_common.h"
#include "mtl/cgc.h"
#include "mtl/hps.h"
#include "mtl/mmoe.h"
#include "serve/batcher.h"
#include "serve/engine.h"
#include "serve/plan.h"

namespace mocograd {
namespace {

constexpr int kTrials = 5;

using SteadyClock = std::chrono::steady_clock;

// The harness's serving shapes: AliExpress-style (10 dense features, 2
// tasks: CTR/CVR) and MovieLens-style (16 features, 9 genre tasks), expert
// towers {64, 32} throughout (harness::ArchitectureFactory).
struct DatasetSpec {
  const char* name;
  int64_t input_dim;
  int num_tasks;
};

// Tower geometry for a (model, dataset) combination. The harness shapes
// use the zoo's default {64, 32} towers; the precision comparison adds a
// wide variant whose weight arena is big enough to stress bandwidth.
struct TowerSpec {
  std::vector<int64_t> dims = {64, 32};
  int num_experts = 6;  // mmoe only
};

serve::ServePlan BuildPlan(const std::string& model, const DatasetSpec& ds,
                           const TowerSpec& tower) {
  const std::vector<int64_t> task_dims(ds.num_tasks, 1);
  if (model == "hps") {
    mtl::HpsConfig cfg;
    cfg.input_dim = ds.input_dim;
    cfg.shared_dims = tower.dims;
    cfg.task_output_dims = task_dims;
    return serve::BuildHpsPlan(cfg);
  }
  if (model == "mmoe") {
    mtl::MmoeConfig cfg;
    cfg.input_dim = ds.input_dim;
    cfg.num_experts = tower.num_experts;
    cfg.expert_dims = tower.dims;
    cfg.task_output_dims = task_dims;
    return serve::BuildMmoePlan(cfg);
  }
  mtl::CgcConfig cfg;
  cfg.input_dim = ds.input_dim;
  cfg.num_shared_experts = 3;
  cfg.num_task_experts = 1;
  cfg.expert_dims = tower.dims;
  cfg.task_output_dims = task_dims;
  return serve::BuildCgcPlan(cfg);
}

serve::ServeModel BuildServeModel(
    const std::string& model, const DatasetSpec& ds, const TowerSpec& tower,
    serve::ServePrecision precision = serve::ServePrecision::kFp32) {
  const serve::ServePlan plan = BuildPlan(model, ds, tower);
  Rng rng(0x5e77e + ds.input_dim * 131 + ds.num_tasks);
  if (model == "hps") {
    mtl::HpsConfig cfg;
    cfg.input_dim = ds.input_dim;
    cfg.shared_dims = tower.dims;
    cfg.task_output_dims = std::vector<int64_t>(ds.num_tasks, 1);
    mtl::HpsModel m(cfg, rng);
    return serve::ServeModel::FromModule(plan, m, precision).value();
  }
  if (model == "mmoe") {
    mtl::MmoeConfig cfg;
    cfg.input_dim = ds.input_dim;
    cfg.num_experts = tower.num_experts;
    cfg.expert_dims = tower.dims;
    cfg.task_output_dims = std::vector<int64_t>(ds.num_tasks, 1);
    mtl::MmoeModel m(cfg, rng);
    return serve::ServeModel::FromModule(plan, m, precision).value();
  }
  mtl::CgcConfig cfg;
  cfg.input_dim = ds.input_dim;
  cfg.num_shared_experts = 3;
  cfg.num_task_experts = 1;
  cfg.expert_dims = tower.dims;
  cfg.task_output_dims = std::vector<int64_t>(ds.num_tasks, 1);
  mtl::CgcModel m(cfg, rng);
  return serve::ServeModel::FromModule(plan, m, precision).value();
}

// One measurement row of the JSON report.
struct RunStats {
  std::string mode;
  int threads = 1;
  int batch = 1;
  int64_t deadline_us = 0;
  int64_t requests = 0;
  double qps = 0.0;
  double offered_qps = 0.0;  // open-loop only
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double occupancy = 1.0;  // rows per flush / max batch
};

// Per-request output buffers for one requester thread, preallocated.
struct OutputSlots {
  std::vector<float> data;
  std::vector<float*> ptrs;

  explicit OutputSlots(const serve::ServeModel& sm) {
    int64_t total = 0;
    for (int k = 0; k < sm.num_tasks(); ++k) total += sm.task_output_dim(k);
    data.resize(total);
    int64_t off = 0;
    for (int k = 0; k < sm.num_tasks(); ++k) {
      ptrs.push_back(data.data() + off);
      off += sm.task_output_dim(k);
    }
  }
};

double PercentileUs(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(p * (sorted_us.size() - 1));
  return sorted_us[idx];
}

// Closed loop, batch of one, no batcher: the baseline cost of a request.
RunStats RunClosedSingle(const serve::ServeModel& sm,
                         const std::vector<float>& rows, int64_t num_rows,
                         int requests) {
  serve::InferenceSession session(sm);
  OutputSlots out(sm);
  const int64_t in = sm.input_dim();
  int64_t next = 0;
  const double sec_per_req =
      bench::BestSecondsPerRep(kTrials, requests, [&] {
        session.Forward(rows.data() + (next++ % num_rows) * in, 1,
                        out.ptrs.data());
      });

  std::vector<double> lat_us(requests);
  for (int r = 0; r < requests; ++r) {
    Stopwatch sw;
    session.Forward(rows.data() + (r % num_rows) * in, 1, out.ptrs.data());
    lat_us[r] = sw.ElapsedSeconds() * 1e6;
  }
  std::sort(lat_us.begin(), lat_us.end());

  RunStats s;
  s.mode = "closed_single";
  s.requests = requests;
  s.qps = 1.0 / sec_per_req;
  s.p50_us = PercentileUs(lat_us, 0.50);
  s.p95_us = PercentileUs(lat_us, 0.95);
  s.p99_us = PercentileUs(lat_us, 0.99);
  return s;
}

// Closed loop, batched forward, no batcher: one caller handing the engine
// `batch` rows per Forward call. This is the engine's raw batching gain —
// the GEMM microkernel reuses each weight panel across row tiles and the
// op-dispatch walk/scratch setup amortize over the batch — with no thread
// coalescing cost, i.e. the upper bound the micro-batcher approaches when
// requests arrive faster than flushes drain.
RunStats RunBatchForward(const serve::ServeModel& sm,
                         const std::vector<float>& rows, int64_t num_rows,
                         int batch, int calls) {
  serve::InferenceSession session(sm);
  const int64_t in = sm.input_dim();
  std::vector<std::vector<float>> out(sm.num_tasks());
  std::vector<float*> out_ptrs;
  for (int k = 0; k < sm.num_tasks(); ++k) {
    out[k].resize(static_cast<size_t>(batch) * sm.task_output_dim(k));
    out_ptrs.push_back(out[k].data());
  }
  const int64_t stride = num_rows - batch;  // rotate through the row pool
  int64_t next = 0;
  const double sec_per_call =
      bench::BestSecondsPerRep(kTrials, calls, [&] {
        session.Forward(rows.data() + (next++ % stride) * in, batch,
                        out_ptrs.data());
      });

  std::vector<double> lat_us(calls);
  for (int c = 0; c < calls; ++c) {
    Stopwatch sw;
    session.Forward(rows.data() + (c % stride) * in, batch, out_ptrs.data());
    lat_us[c] = sw.ElapsedSeconds() * 1e6;
  }
  std::sort(lat_us.begin(), lat_us.end());

  RunStats s;
  s.mode = "closed_batch_forward";
  s.batch = batch;
  s.requests = static_cast<int64_t>(calls) * batch;
  s.qps = batch / sec_per_call;
  s.p50_us = PercentileUs(lat_us, 0.50);
  s.p95_us = PercentileUs(lat_us, 0.95);
  s.p99_us = PercentileUs(lat_us, 0.99);
  return s;
}

// Closed loop through the micro-batcher: `threads` requesters back-to-back,
// so every flush is size-triggered (threads == batch).
RunStats RunClosedBatched(const serve::ServeModel& sm,
                          const std::vector<float>& rows, int64_t num_rows,
                          int batch, int requests_per_thread) {
  serve::BatcherOptions opts;
  opts.max_batch = batch;
  opts.deadline_us = 5000;  // fallback only; the size trigger dominates
  const int threads = batch;
  const int total = threads * requests_per_thread;

  double best_qps = 0.0;
  std::vector<double> lat_us(static_cast<size_t>(total));
  serve::MicroBatcher batcher(sm, opts);
  for (int t = 0; t < kTrials; ++t) {
    std::vector<std::thread> workers;
    Stopwatch sw;
    for (int w = 0; w < threads; ++w) {
      workers.emplace_back([&, w] {
        OutputSlots out(sm);
        const int64_t in = sm.input_dim();
        for (int r = 0; r < requests_per_thread; ++r) {
          const int64_t row = (static_cast<int64_t>(w) * requests_per_thread +
                               r) % num_rows;
          Stopwatch req;
          batcher.Infer(rows.data() + row * in, out.ptrs.data());
          lat_us[static_cast<size_t>(w) * requests_per_thread + r] =
              req.ElapsedSeconds() * 1e6;
        }
      });
    }
    for (auto& w : workers) w.join();
    const double qps = total / sw.ElapsedSeconds();
    if (qps > best_qps) best_qps = qps;
  }
  std::sort(lat_us.begin(), lat_us.end());

  RunStats s;
  s.mode = "closed_batched";
  s.threads = threads;
  s.batch = batch;
  s.deadline_us = opts.deadline_us;
  s.requests = total;
  s.qps = best_qps;
  s.p50_us = PercentileUs(lat_us, 0.50);  // last trial's latencies
  s.p95_us = PercentileUs(lat_us, 0.95);
  s.p99_us = PercentileUs(lat_us, 0.99);
  s.occupancy = batcher.batches_executed() > 0
                    ? static_cast<double>(batcher.rows_executed()) /
                          (static_cast<double>(batcher.batches_executed()) *
                           batch)
                    : 0.0;
  return s;
}

// Open loop: a precomputed Poisson arrival schedule at `offered_qps`;
// workers claim arrivals from a shared index, sleep until the scheduled
// instant, and charge latency from that instant (not from when a worker
// got around to it).
RunStats RunOpenPoisson(const serve::ServeModel& sm,
                        const std::vector<float>& rows, int64_t num_rows,
                        double offered_qps, int requests, int workers,
                        int batch) {
  serve::BatcherOptions opts;
  opts.max_batch = batch;
  opts.deadline_us = 200;

  Rng rng(0xa881fa1);
  std::vector<double> arrival_s(requests);
  double t = 0.0;
  for (int r = 0; r < requests; ++r) {
    // Exponential inter-arrival: -ln(1-u)/λ, u in [0,1).
    t += -std::log(1.0 - static_cast<double>(rng.Uniform())) / offered_qps;
    arrival_s[r] = t;
  }

  serve::MicroBatcher batcher(sm, opts);
  std::vector<double> lat_us(static_cast<size_t>(requests));
  std::atomic<int> next{0};
  const SteadyClock::time_point start = SteadyClock::now();
  std::vector<std::thread> pool;
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      OutputSlots out(sm);
      const int64_t in = sm.input_dim();
      for (int r = next.fetch_add(1); r < requests; r = next.fetch_add(1)) {
        const SteadyClock::time_point scheduled =
            start + std::chrono::duration_cast<SteadyClock::duration>(
                        std::chrono::duration<double>(arrival_s[r]));
        std::this_thread::sleep_until(scheduled);
        batcher.Infer(rows.data() + (r % num_rows) * in, out.ptrs.data());
        lat_us[r] = std::chrono::duration<double>(SteadyClock::now() -
                                                  scheduled)
                        .count() * 1e6;
      }
    });
  }
  for (auto& w : pool) w.join();
  const double elapsed =
      std::chrono::duration<double>(SteadyClock::now() - start).count();
  std::sort(lat_us.begin(), lat_us.end());

  RunStats s;
  s.mode = "open_poisson";
  s.threads = workers;
  s.batch = batch;
  s.deadline_us = opts.deadline_us;
  s.requests = requests;
  s.qps = requests / elapsed;
  s.offered_qps = offered_qps;
  s.p50_us = PercentileUs(lat_us, 0.50);
  s.p95_us = PercentileUs(lat_us, 0.95);
  s.p99_us = PercentileUs(lat_us, 0.99);
  s.occupancy = batcher.batches_executed() > 0
                    ? static_cast<double>(batcher.rows_executed()) /
                          (static_cast<double>(batcher.batches_executed()) *
                           batch)
                    : 0.0;
  return s;
}

std::string StatsJson(const std::string& model, const DatasetSpec& ds,
                      bool batch_invariant, const RunStats& s) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "{\"model\": \"%s\", \"dataset\": \"%s\", \"mode\": \"%s\", "
      "\"precision\": \"fp32\", "
      "\"threads\": %d, \"batch\": %d, \"deadline_us\": %lld, "
      "\"requests\": %lld, \"qps\": %.1f, \"offered_qps\": %.1f, "
      "\"p50_us\": %.2f, \"p95_us\": %.2f, \"p99_us\": %.2f, "
      "\"occupancy\": %.3f, \"batch_invariant\": %s}",
      model.c_str(), ds.name, s.mode.c_str(), s.threads, s.batch,
      static_cast<long long>(s.deadline_us),
      static_cast<long long>(s.requests), s.qps, s.offered_qps, s.p50_us,
      s.p95_us, s.p99_us, s.occupancy, batch_invariant ? "true" : "false");
  return buf;
}

// One batched forward over the first `rows` pool rows, outputs resized
// per task.
void RunForwardBatch(const serve::ServeModel& sm, const std::vector<float>& x,
                     int64_t rows, std::vector<std::vector<float>>* out) {
  serve::InferenceSession session(sm);
  out->resize(sm.num_tasks());
  std::vector<float*> ptrs;
  for (int k = 0; k < sm.num_tasks(); ++k) {
    (*out)[k].assign(static_cast<size_t>(rows * sm.task_output_dim(k)),
                     0.0f);
    ptrs.push_back((*out)[k].data());
  }
  session.Forward(x.data(), rows, ptrs.data());
}

// One fp32-vs-bf16 comparison: single-row closed-loop throughput (the
// GEMV-shaped path where halving the weight bytes pays directly) of two
// engines built from the same module, plus the bf16 engine's max-abs
// output deviation over a probe batch — the only error source is each
// weight's one-time storage rounding.
struct PrecisionRow {
  std::string model;
  std::string dataset;
  int requests = 0;
  double qps_fp32 = 0.0;
  double qps_bf16 = 0.0;
  double speedup_bf16 = 0.0;
  double max_abs_error = 0.0;
};

PrecisionRow RunPrecisionCompare(const std::string& model,
                                 const DatasetSpec& ds,
                                 const TowerSpec& tower, int requests) {
  const serve::ServeModel fp32 =
      BuildServeModel(model, ds, tower, serve::ServePrecision::kFp32);
  const serve::ServeModel bf16 =
      BuildServeModel(model, ds, tower, serve::ServePrecision::kBf16);

  const int64_t kNumRows = 256;
  Rng rng(0xb16f + ds.input_dim);
  std::vector<float> rows(kNumRows * fp32.input_dim());
  for (float& v : rows) v = rng.Uniform(-1.0f, 1.0f);

  const auto single_row_qps = [&](const serve::ServeModel& sm) {
    serve::InferenceSession session(sm);
    OutputSlots out(sm);
    const int64_t in = sm.input_dim();
    int64_t next = 0;
    const double sec = bench::BestSecondsPerRep(kTrials, requests, [&] {
      session.Forward(rows.data() + (next++ % kNumRows) * in, 1,
                      out.ptrs.data());
    });
    return 1.0 / sec;
  };

  PrecisionRow r;
  r.model = model;
  r.dataset = ds.name;
  r.requests = requests;
  r.qps_fp32 = single_row_qps(fp32);
  r.qps_bf16 = single_row_qps(bf16);
  r.speedup_bf16 = r.qps_fp32 > 0.0 ? r.qps_bf16 / r.qps_fp32 : 0.0;

  constexpr int64_t kProbe = 64;
  std::vector<std::vector<float>> a, b;
  RunForwardBatch(fp32, rows, kProbe, &a);
  RunForwardBatch(bf16, rows, kProbe, &b);
  for (int k = 0; k < fp32.num_tasks(); ++k) {
    for (size_t i = 0; i < a[k].size(); ++i) {
      r.max_abs_error =
          std::max(r.max_abs_error,
                   std::fabs(static_cast<double>(a[k][i]) - b[k][i]));
    }
  }
  return r;
}

std::string PrecisionJson(const PrecisionRow& r) {
  char buf[384];
  std::snprintf(
      buf, sizeof(buf),
      "{\"model\": \"%s\", \"dataset\": \"%s\", \"requests\": %d, "
      "\"qps_fp32\": %.1f, \"qps_bf16\": %.1f, \"speedup_bf16\": %.3f, "
      "\"max_abs_error\": %.3e}",
      r.model.c_str(), r.dataset.c_str(), r.requests, r.qps_fp32, r.qps_bf16,
      r.speedup_bf16, r.max_abs_error);
  return buf;
}

}  // namespace

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else {
      out_path = arg;
    }
  }

  const std::vector<DatasetSpec> datasets = {
      {"aliexpress", 10, 2},
      {"movielens", 16, 9},
  };
  const std::vector<std::string> models = {"hps", "mmoe", "cgc"};
  const std::vector<int> batches = smoke ? std::vector<int>{16}
                                         : std::vector<int>{8, 16, 32};
  const int single_requests = smoke ? 500 : 4000;
  const int batched_per_thread = smoke ? 40 : 250;
  const int open_requests = smoke ? 300 : 3000;

  std::string json = "{\n  \"bench\": \"serve\",\n  \"smoke\": ";
  json += smoke ? "true" : "false";
  json += ",\n  \"nproc\": ";
  json += std::to_string(std::thread::hardware_concurrency());
  json += ",\n  \"isa_tier\": \"";
  json += simd::ActiveBackendName();
  json += "\",\n  \"trials\": ";
  json += std::to_string(kTrials);
  json += ",\n  \"results\": [\n";

  std::printf("%-6s %-10s %-15s %6s %6s %12s %10s %10s %10s %6s\n", "model",
              "dataset", "mode", "thr", "batch", "qps", "p50_us", "p95_us",
              "p99_us", "occ");
  bool first = true;
  const auto emit = [&](const std::string& model, const DatasetSpec& ds,
                        bool invariant, const RunStats& s) {
    std::printf("%-6s %-10s %-15s %6d %6d %12.1f %10.2f %10.2f %10.2f %6.2f\n",
                model.c_str(), ds.name, s.mode.c_str(), s.threads, s.batch,
                s.qps, s.p50_us, s.p95_us, s.p99_us, s.occupancy);
    if (!first) json += ",\n";
    json += "    " + StatsJson(model, ds, invariant, s);
    first = false;
  };

  for (const DatasetSpec& ds : datasets) {
    if (smoke && std::string(ds.name) == "movielens") continue;
    for (const std::string& model : models) {
      const serve::ServeModel sm = BuildServeModel(model, ds, TowerSpec{});
      const bool invariant = serve::PlanIsBatchInvariant(sm.plan());

      // A shared pool of input rows, reused round-robin.
      const int64_t kNumRows = 512;
      Rng xrng(0xfeed);
      std::vector<float> rows(kNumRows * sm.input_dim());
      for (float& v : rows) v = xrng.Uniform(-1.0f, 1.0f);

      const RunStats single =
          RunClosedSingle(sm, rows, kNumRows, single_requests);
      emit(model, ds, invariant, single);

      for (int b : batches) {
        const RunStats bf =
            RunBatchForward(sm, rows, kNumRows, b, single_requests / b);
        emit(model, ds, invariant, bf);
      }

      double peak_batched_qps = 0.0;
      for (int b : batches) {
        const RunStats batched =
            RunClosedBatched(sm, rows, kNumRows, b, batched_per_thread);
        peak_batched_qps = std::max(peak_batched_qps, batched.qps);
        emit(model, ds, invariant, batched);
      }

      // Offered load: a fraction of the thread-coalesced capacity, capped
      // where the per-request sleep_until/wake machinery itself saturates a
      // single-core host — above that the run measures schedule slip, not
      // the server.
      const double offered = std::min(0.4 * peak_batched_qps, 15000.0);
      const RunStats open = RunOpenPoisson(sm, rows, kNumRows, offered,
                                           open_requests, /*workers=*/8,
                                           /*batch=*/16);
      emit(model, ds, invariant, open);
    }
  }

  // fp32-vs-bf16 serving comparison, every harness shape plus a wide
  // embedding-style MMoE whose ~3 MB fp32 weight arena makes the
  // halved bf16 footprint a bandwidth win, not just a cache curiosity.
  json += "\n  ],\n  \"precision_compare\": [\n";
  std::printf("\n%-6s %-10s %12s %12s %8s %14s\n", "model", "dataset",
              "qps_fp32", "qps_bf16", "x_bf16", "max_abs_err");
  const int cmp_requests = smoke ? 200 : 1500;
  const int wide_requests = smoke ? 60 : 400;
  first = true;
  const auto emit_cmp = [&](const PrecisionRow& r) {
    std::printf("%-6s %-10s %12.1f %12.1f %7.2fx %14.3e\n", r.model.c_str(),
                r.dataset.c_str(), r.qps_fp32, r.qps_bf16, r.speedup_bf16,
                r.max_abs_error);
    if (!first) json += ",\n";
    json += "    " + PrecisionJson(r);
    first = false;
  };
  for (const DatasetSpec& ds : datasets) {
    if (smoke && std::string(ds.name) == "movielens") continue;
    for (const std::string& model : models) {
      emit_cmp(RunPrecisionCompare(model, ds, TowerSpec{}, cmp_requests));
    }
  }
  TowerSpec wide;
  wide.dims = {256, 128};
  wide.num_experts = 8;
  const DatasetSpec wide_ds{"wide_emb", 256, 16};
  emit_cmp(RunPrecisionCompare("mmoe", wide_ds, wide, wide_requests));

  json += "\n  ]\n}\n";
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace mocograd

int main(int argc, char** argv) { return mocograd::Main(argc, argv); }
