// Reproduces Table I of the paper: AUC of CTR and CTCVR prediction on the
// AliExpress workload across four country scenarios (ES / FR / NL / US),
// for the STL baseline and all ten MTL methods, plus the Δ_M summary.
//
// Paper claim under test (shape, not absolute values): the margins between
// methods are small (fractions of a percent of Δ_M); plain gradient-surgery
// baselines hover at or below STL; MoCoGrad is at the top of the
// gradient-surgery family.

#include <cstdio>

#include "bench_common.h"
#include "data/aliexpress.h"

namespace mocograd {
namespace {

// Δ_M values of Table I.
const std::map<std::string, double> kPaperDeltaM = {
    {"DWA", -0.54},    {"MGDA", -0.18},    {"PCGrad", -0.47},
    {"GradDrop", -0.58}, {"GradVac", -0.71}, {"CAGrad", -0.35},
    {"IMTL", -0.57},   {"RLW", +0.02},     {"Nash-MTL", -1.11},
    {"MoCoGrad", +0.48}};

void Run() {
  const std::vector<std::string> countries = {"ES", "FR", "NL", "US"};

  harness::TrainConfig cfg;
  cfg.steps = 300;
  cfg.batch_size = 64;
  cfg.lr = 2e-3f;

  // Per-country datasets and STL baselines.
  std::vector<std::unique_ptr<data::AliExpressSim>> datasets;
  std::vector<harness::RunResult> stl;
  harness::ModelFactory factory;
  for (const std::string& country : countries) {
    data::AliExpressConfig dc;
    dc.country = country;
    datasets.push_back(std::make_unique<data::AliExpressSim>(dc));
    if (!factory) {
      factory = harness::EmbeddingHpsFactory(dc.dense_dim,
                                             dc.num_user_segments,
                                             dc.num_item_categories);
    }
    stl.push_back(bench::StlAveraged(*datasets.back(), {0, 1}, factory, cfg));
  }

  TextTable table;
  table.SetHeader({"Method", "ES CTR", "ES CTCVR", "FR CTR", "FR CTCVR",
                   "NL CTR", "NL CTCVR", "US CTR", "US CTCVR", "DeltaM",
                   "paper DeltaM"});

  auto add_row = [&](const std::string& name,
                     const std::vector<harness::RunResult>& per_country,
                     bool is_stl) {
    std::vector<std::string> row = {name};
    std::vector<harness::TaskMetrics> mtl_all, stl_all;
    for (size_t c = 0; c < countries.size(); ++c) {
      row.push_back(
          TextTable::Num(per_country[c].task_metrics[0][0].value, 4));
      row.push_back(
          TextTable::Num(per_country[c].task_metrics[1][0].value, 4));
      mtl_all.insert(mtl_all.end(), per_country[c].task_metrics.begin(),
                     per_country[c].task_metrics.end());
      stl_all.insert(stl_all.end(), stl[c].task_metrics.begin(),
                     stl[c].task_metrics.end());
    }
    row.push_back(is_stl ? "+0.00%"
                         : TextTable::Percent(
                               harness::ComputeDeltaM(mtl_all, stl_all)));
    auto it = kPaperDeltaM.find(name);
    row.push_back(it != kPaperDeltaM.end()
                      ? TextTable::Percent(it->second / 100.0)
                      : (is_stl ? "+0.00%" : "-"));
    table.AddRow(row);
  };

  add_row("STL", stl, /*is_stl=*/true);
  table.AddSeparator();
  for (const std::string& method : core::PaperMethodNames()) {
    std::vector<harness::RunResult> per_country;
    for (size_t c = 0; c < countries.size(); ++c) {
      per_country.push_back(
          bench::RunAveraged(*datasets[c], {0, 1}, method, factory, cfg));
    }
    add_row(bench::PaperName(method), per_country, /*is_stl=*/false);
  }

  std::printf("Table I — AliExpress CTR/CTCVR AUC (2 x 4 tasks), %d seeds\n",
              bench::NumSeeds());
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace mocograd

int main() {
  mocograd::Run();
  return 0;
}
