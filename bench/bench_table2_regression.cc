// Reproduces Table II of the paper: average MAE on the QM9 workload (11
// property-regression tasks) and average RMSE on the MovieLens workload
// (9 genre-regression tasks), with Δ_M against the STL baselines.
//
// Paper claims under test: every MTL method improves over STL on QM9 (large
// positive Δ_M) with MoCoGrad clearly best; on MovieLens the improvements
// are smaller and MoCoGrad again leads while some baselines (Nash-MTL in
// the paper) fall to the bottom.

#include <cstdio>

#include "bench_common.h"
#include "data/movielens.h"
#include "data/qm9.h"

namespace mocograd {
namespace {

struct PaperRow {
  double qm9_mae, qm9_delta, ml_rmse, ml_delta;
};
const std::map<std::string, PaperRow> kPaper = {
    {"STL", {0.7474, 0.0, 0.9009, 0.0}},
    {"DWA", {0.6979, 20.49, 0.8841, 1.57}},
    {"MGDA", {0.6813, 21.41, 0.8841, 1.56}},
    {"PCGrad", {0.7514, 20.58, 0.8859, 1.36}},
    {"GradDrop", {0.646, 24.02, 0.8862, 1.38}},
    {"GradVac", {0.684, 24.56, 0.8826, 1.76}},
    {"CAGrad", {0.7975, 21.36, 0.8867, 1.34}},
    {"IMTL", {0.6372, 19.12, 0.8808, 1.89}},
    {"RLW", {0.7961, 22.62, 0.8909, 0.75}},
    {"Nash-MTL", {0.6744, 27.85, 0.9049, -0.50}},
    {"MoCoGrad", {0.5864, 32.30, 0.8721, 2.93}}};

double AvgMetric(const std::vector<harness::TaskMetrics>& metrics) {
  double s = 0.0;
  for (const auto& tm : metrics) s += tm[0].value;
  return s / metrics.size();
}

void Run() {
  data::Qm9Config qm9_cfg;
  data::Qm9Sim qm9(qm9_cfg);
  data::MovieLensConfig ml_cfg;
  ml_cfg.train_per_task = 1200;
  ml_cfg.test_per_task = 500;
  data::MovieLensSim movielens(ml_cfg);

  harness::TrainConfig cfg;
  cfg.steps = 250;
  cfg.batch_size = 32;
  cfg.lr = 3e-3f;

  const auto qm9_tasks = bench::AllTasks(qm9);
  const auto ml_tasks = bench::AllTasks(movielens);
  auto qm9_factory = harness::MlpHpsFactory(qm9.input_dim(), {64, 32});
  auto ml_factory = harness::MlpHpsFactory(movielens.input_dim(), {64, 32});

  harness::RunResult qm9_stl =
      bench::StlAveraged(qm9, qm9_tasks, qm9_factory, cfg);
  harness::RunResult ml_stl =
      bench::StlAveraged(movielens, ml_tasks, ml_factory, cfg);

  TextTable table;
  table.SetHeader({"Method", "QM9 AvgMAE", "QM9 DeltaM", "(paper)",
                   "ML AvgRMSE", "ML DeltaM", "(paper)"});
  auto paper = [&](const std::string& name) { return kPaper.at(name); };

  table.AddRow({"STL", TextTable::Num(AvgMetric(qm9_stl.task_metrics)),
                "+0.00%", TextTable::Percent(0.0),
                TextTable::Num(AvgMetric(ml_stl.task_metrics)), "+0.00%",
                TextTable::Percent(0.0)});
  table.AddSeparator();
  for (const std::string& method : core::PaperMethodNames()) {
    harness::RunResult q =
        bench::RunAveraged(qm9, qm9_tasks, method, qm9_factory, cfg);
    harness::RunResult m =
        bench::RunAveraged(movielens, ml_tasks, method, ml_factory, cfg);
    const std::string name = bench::PaperName(method);
    table.AddRow(
        {name, TextTable::Num(AvgMetric(q.task_metrics)),
         TextTable::Percent(
             harness::ComputeDeltaM(q.task_metrics, qm9_stl.task_metrics)),
         TextTable::Percent(paper(name).qm9_delta / 100.0),
         TextTable::Num(AvgMetric(m.task_metrics)),
         TextTable::Percent(
             harness::ComputeDeltaM(m.task_metrics, ml_stl.task_metrics)),
         TextTable::Percent(paper(name).ml_delta / 100.0)});
  }

  std::printf(
      "Table II — QM9 (11 tasks, Avg MAE) and MovieLens (9 tasks, Avg "
      "RMSE), %d seeds\n",
      bench::NumSeeds());
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace mocograd

int main() {
  mocograd::Run();
  return 0;
}
