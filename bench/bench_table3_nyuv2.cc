// Reproduces Table III of the paper: NYUv2 three-task scene understanding
// (13-class segmentation, depth prediction, surface-normal estimation) with
// all per-pixel metrics and Δ_M.
//
// Substitution note (DESIGN.md §4): the workload is the procedural SceneSim
// and the backbone a 2-layer conv encoder instead of ResNet-50+ASPP on real
// NYUv2. On this substrate joint training does NOT beat single-task models
// (all Δ_M < 0) — the tiny encoder lacks the capacity-vs-data trade-off
// that makes dense MTL profitable at paper scale — so the reproduced shape
// is the within-MTL method comparison, reported honestly in EXPERIMENTS.md.

#include <cstdio>

#include "bench_common.h"
#include "data/scene.h"

namespace mocograd {
namespace {

const std::map<std::string, double> kPaperDeltaM = {
    {"DWA", 7.68},     {"MGDA", 6.23},    {"PCGrad", 8.28},
    {"GradDrop", 8.30}, {"GradVac", 8.21}, {"CAGrad", 7.44},
    {"IMTL", 6.97},    {"RLW", 8.00},     {"Nash-MTL", 8.04},
    {"MoCoGrad", 9.65}};

std::vector<std::string> MetricsRow(const harness::RunResult& r) {
  // seg: miou, pixacc | depth: abs, rel | normals: mean, median, 11/22/30.
  std::vector<std::string> out;
  for (const auto& tm : r.task_metrics) {
    for (const auto& mv : tm) out.push_back(TextTable::Num(mv.value, 4));
  }
  return out;
}

void Run() {
  data::SceneConfig sc;
  sc.mode = data::SceneMode::kNyu;
  data::SceneSim ds(sc);

  harness::TrainConfig cfg;
  cfg.steps = 300;
  cfg.batch_size = 8;
  cfg.lr = 3e-3f;

  auto factory = harness::SceneConvFactory(3, 16, 2);
  const auto tasks = bench::AllTasks(ds);
  harness::RunResult stl = bench::StlAveraged(ds, tasks, factory, cfg);

  TextTable table;
  table.SetHeader({"Method", "mIoU", "PixAcc", "AbsErr", "RelErr", "NrmMean",
                   "NrmMed", "<11.25", "<22.5", "<30", "DeltaM",
                   "paper DeltaM"});
  {
    auto row = MetricsRow(stl);
    row.insert(row.begin(), "STL");
    row.push_back("+0.00%");
    row.push_back("+0.00%");
    table.AddRow(row);
  }
  table.AddSeparator();
  for (const std::string& method : core::PaperMethodNames()) {
    harness::RunResult r = bench::RunAveraged(ds, tasks, method, factory, cfg);
    auto row = MetricsRow(r);
    const std::string name = bench::PaperName(method);
    row.insert(row.begin(), name);
    row.push_back(TextTable::Percent(
        harness::ComputeDeltaM(r.task_metrics, stl.task_metrics)));
    row.push_back(TextTable::Percent(kPaperDeltaM.at(name) / 100.0));
    table.AddRow(row);
  }

  std::printf(
      "Table III — NYUv2 (segmentation / depth / surface normals), %d "
      "seeds\n",
      bench::NumSeeds());
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace mocograd

int main() {
  mocograd::Run();
  return 0;
}
