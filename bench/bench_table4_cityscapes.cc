// Reproduces Table IV of the paper: CityScapes two-task scene understanding
// (7-class segmentation + depth) with per-pixel metrics and Δ_M.
//
// Substitution note: procedural SceneSim + small conv encoder stand in for
// real CityScapes + ResNet-50; see bench_table3_nyuv2.cc and EXPERIMENTS.md
// for the honest discussion of the Δ_M sign on this substrate.

#include <cstdio>

#include "bench_common.h"
#include "data/scene.h"

namespace mocograd {
namespace {

const std::map<std::string, double> kPaperDeltaM = {
    {"DWA", 6.43},     {"MGDA", 4.08},    {"PCGrad", 1.47},
    {"GradDrop", 1.43}, {"GradVac", 5.91}, {"CAGrad", 5.74},
    {"IMTL", 4.34},    {"RLW", -0.37},    {"Nash-MTL", 7.59},
    {"MoCoGrad", 9.93}};

void Run() {
  data::SceneConfig sc;
  sc.mode = data::SceneMode::kCityscapes;
  data::SceneSim ds(sc);

  harness::TrainConfig cfg;
  cfg.steps = 300;
  cfg.batch_size = 8;
  cfg.lr = 3e-3f;

  auto factory = harness::SceneConvFactory(3, 16, 2);
  const auto tasks = bench::AllTasks(ds);
  harness::RunResult stl = bench::StlAveraged(ds, tasks, factory, cfg);

  TextTable table;
  table.SetHeader({"Method", "mIoU", "PixAcc", "AbsErr", "RelErr", "DeltaM",
                   "paper DeltaM"});
  auto metrics_row = [](const harness::RunResult& r) {
    std::vector<std::string> out;
    for (const auto& tm : r.task_metrics) {
      for (const auto& mv : tm) out.push_back(TextTable::Num(mv.value, 4));
    }
    return out;
  };
  {
    auto row = metrics_row(stl);
    row.insert(row.begin(), "STL");
    row.push_back("+0.00%");
    row.push_back("+0.00%");
    table.AddRow(row);
  }
  table.AddSeparator();
  for (const std::string& method : core::PaperMethodNames()) {
    harness::RunResult r = bench::RunAveraged(ds, tasks, method, factory, cfg);
    auto row = metrics_row(r);
    const std::string name = bench::PaperName(method);
    row.insert(row.begin(), name);
    row.push_back(TextTable::Percent(
        harness::ComputeDeltaM(r.task_metrics, stl.task_metrics)));
    row.push_back(TextTable::Percent(kPaperDeltaM.at(name) / 100.0));
    table.AddRow(row);
  }

  std::printf("Table IV — CityScapes (segmentation / depth), %d seeds\n",
              bench::NumSeeds());
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace mocograd

int main() {
  mocograd::Run();
  return 0;
}
