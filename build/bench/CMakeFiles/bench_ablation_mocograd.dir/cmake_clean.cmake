file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mocograd.dir/bench_ablation_mocograd.cc.o"
  "CMakeFiles/bench_ablation_mocograd.dir/bench_ablation_mocograd.cc.o.d"
  "bench_ablation_mocograd"
  "bench_ablation_mocograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mocograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
