# Empty compiler generated dependencies file for bench_ablation_mocograd.
# This may be replaced when dependencies are built.
