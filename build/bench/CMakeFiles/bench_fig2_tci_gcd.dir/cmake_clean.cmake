file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_tci_gcd.dir/bench_fig2_tci_gcd.cc.o"
  "CMakeFiles/bench_fig2_tci_gcd.dir/bench_fig2_tci_gcd.cc.o.d"
  "bench_fig2_tci_gcd"
  "bench_fig2_tci_gcd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_tci_gcd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
