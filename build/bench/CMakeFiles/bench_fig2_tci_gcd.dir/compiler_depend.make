# Empty compiler generated dependencies file for bench_fig2_tci_gcd.
# This may be replaced when dependencies are built.
