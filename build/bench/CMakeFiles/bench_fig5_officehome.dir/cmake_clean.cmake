file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_officehome.dir/bench_fig5_officehome.cc.o"
  "CMakeFiles/bench_fig5_officehome.dir/bench_fig5_officehome.cc.o.d"
  "bench_fig5_officehome"
  "bench_fig5_officehome.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_officehome.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
