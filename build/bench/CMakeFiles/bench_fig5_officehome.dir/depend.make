# Empty dependencies file for bench_fig5_officehome.
# This may be replaced when dependencies are built.
