# Empty dependencies file for bench_fig9_lambda.
# This may be replaced when dependencies are built.
