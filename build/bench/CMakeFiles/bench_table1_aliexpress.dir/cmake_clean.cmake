file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_aliexpress.dir/bench_table1_aliexpress.cc.o"
  "CMakeFiles/bench_table1_aliexpress.dir/bench_table1_aliexpress.cc.o.d"
  "bench_table1_aliexpress"
  "bench_table1_aliexpress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_aliexpress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
