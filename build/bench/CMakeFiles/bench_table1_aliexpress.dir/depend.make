# Empty dependencies file for bench_table1_aliexpress.
# This may be replaced when dependencies are built.
