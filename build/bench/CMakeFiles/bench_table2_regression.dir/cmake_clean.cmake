file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_regression.dir/bench_table2_regression.cc.o"
  "CMakeFiles/bench_table2_regression.dir/bench_table2_regression.cc.o.d"
  "bench_table2_regression"
  "bench_table2_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
