# Empty dependencies file for bench_table2_regression.
# This may be replaced when dependencies are built.
