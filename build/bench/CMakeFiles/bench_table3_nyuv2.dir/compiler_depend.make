# Empty compiler generated dependencies file for bench_table3_nyuv2.
# This may be replaced when dependencies are built.
