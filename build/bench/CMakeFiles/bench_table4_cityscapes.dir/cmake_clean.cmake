file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_cityscapes.dir/bench_table4_cityscapes.cc.o"
  "CMakeFiles/bench_table4_cityscapes.dir/bench_table4_cityscapes.cc.o.d"
  "bench_table4_cityscapes"
  "bench_table4_cityscapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_cityscapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
