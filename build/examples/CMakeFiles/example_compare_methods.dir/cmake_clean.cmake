file(REMOVE_RECURSE
  "CMakeFiles/example_compare_methods.dir/compare_methods.cc.o"
  "CMakeFiles/example_compare_methods.dir/compare_methods.cc.o.d"
  "example_compare_methods"
  "example_compare_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_compare_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
