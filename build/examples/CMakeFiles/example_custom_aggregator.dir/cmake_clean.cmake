file(REMOVE_RECURSE
  "CMakeFiles/example_custom_aggregator.dir/custom_aggregator.cc.o"
  "CMakeFiles/example_custom_aggregator.dir/custom_aggregator.cc.o.d"
  "example_custom_aggregator"
  "example_custom_aggregator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_aggregator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
