# Empty compiler generated dependencies file for example_custom_aggregator.
# This may be replaced when dependencies are built.
