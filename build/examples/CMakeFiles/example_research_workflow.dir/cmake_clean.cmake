file(REMOVE_RECURSE
  "CMakeFiles/example_research_workflow.dir/research_workflow.cc.o"
  "CMakeFiles/example_research_workflow.dir/research_workflow.cc.o.d"
  "example_research_workflow"
  "example_research_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_research_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
