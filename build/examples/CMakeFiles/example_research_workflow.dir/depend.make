# Empty dependencies file for example_research_workflow.
# This may be replaced when dependencies are built.
