file(REMOVE_RECURSE
  "CMakeFiles/example_scene_understanding.dir/scene_understanding.cc.o"
  "CMakeFiles/example_scene_understanding.dir/scene_understanding.cc.o.d"
  "example_scene_understanding"
  "example_scene_understanding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_scene_understanding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
