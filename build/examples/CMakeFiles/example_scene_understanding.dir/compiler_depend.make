# Empty compiler generated dependencies file for example_scene_understanding.
# This may be replaced when dependencies are built.
