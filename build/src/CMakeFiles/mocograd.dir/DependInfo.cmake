
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autograd/ops.cc" "src/CMakeFiles/mocograd.dir/autograd/ops.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/autograd/ops.cc.o.d"
  "/root/repo/src/autograd/variable.cc" "src/CMakeFiles/mocograd.dir/autograd/variable.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/autograd/variable.cc.o.d"
  "/root/repo/src/base/check.cc" "src/CMakeFiles/mocograd.dir/base/check.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/base/check.cc.o.d"
  "/root/repo/src/base/status.cc" "src/CMakeFiles/mocograd.dir/base/status.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/base/status.cc.o.d"
  "/root/repo/src/base/table.cc" "src/CMakeFiles/mocograd.dir/base/table.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/base/table.cc.o.d"
  "/root/repo/src/core/aggregator.cc" "src/CMakeFiles/mocograd.dir/core/aggregator.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/core/aggregator.cc.o.d"
  "/root/repo/src/core/aligned_mtl.cc" "src/CMakeFiles/mocograd.dir/core/aligned_mtl.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/core/aligned_mtl.cc.o.d"
  "/root/repo/src/core/analysis.cc" "src/CMakeFiles/mocograd.dir/core/analysis.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/core/analysis.cc.o.d"
  "/root/repo/src/core/cagrad.cc" "src/CMakeFiles/mocograd.dir/core/cagrad.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/core/cagrad.cc.o.d"
  "/root/repo/src/core/conflict.cc" "src/CMakeFiles/mocograd.dir/core/conflict.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/core/conflict.cc.o.d"
  "/root/repo/src/core/dwa.cc" "src/CMakeFiles/mocograd.dir/core/dwa.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/core/dwa.cc.o.d"
  "/root/repo/src/core/grad_matrix.cc" "src/CMakeFiles/mocograd.dir/core/grad_matrix.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/core/grad_matrix.cc.o.d"
  "/root/repo/src/core/graddrop.cc" "src/CMakeFiles/mocograd.dir/core/graddrop.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/core/graddrop.cc.o.d"
  "/root/repo/src/core/gradnorm.cc" "src/CMakeFiles/mocograd.dir/core/gradnorm.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/core/gradnorm.cc.o.d"
  "/root/repo/src/core/gradvac.cc" "src/CMakeFiles/mocograd.dir/core/gradvac.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/core/gradvac.cc.o.d"
  "/root/repo/src/core/imtl.cc" "src/CMakeFiles/mocograd.dir/core/imtl.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/core/imtl.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/CMakeFiles/mocograd.dir/core/metrics.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/core/metrics.cc.o.d"
  "/root/repo/src/core/mgda.cc" "src/CMakeFiles/mocograd.dir/core/mgda.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/core/mgda.cc.o.d"
  "/root/repo/src/core/mocograd.cc" "src/CMakeFiles/mocograd.dir/core/mocograd.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/core/mocograd.cc.o.d"
  "/root/repo/src/core/nash_mtl.cc" "src/CMakeFiles/mocograd.dir/core/nash_mtl.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/core/nash_mtl.cc.o.d"
  "/root/repo/src/core/pcgrad.cc" "src/CMakeFiles/mocograd.dir/core/pcgrad.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/core/pcgrad.cc.o.d"
  "/root/repo/src/core/registry.cc" "src/CMakeFiles/mocograd.dir/core/registry.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/core/registry.cc.o.d"
  "/root/repo/src/core/rlw.cc" "src/CMakeFiles/mocograd.dir/core/rlw.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/core/rlw.cc.o.d"
  "/root/repo/src/core/uncertainty_weighting.cc" "src/CMakeFiles/mocograd.dir/core/uncertainty_weighting.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/core/uncertainty_weighting.cc.o.d"
  "/root/repo/src/data/aliexpress.cc" "src/CMakeFiles/mocograd.dir/data/aliexpress.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/data/aliexpress.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/mocograd.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/movielens.cc" "src/CMakeFiles/mocograd.dir/data/movielens.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/data/movielens.cc.o.d"
  "/root/repo/src/data/office_home.cc" "src/CMakeFiles/mocograd.dir/data/office_home.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/data/office_home.cc.o.d"
  "/root/repo/src/data/qm9.cc" "src/CMakeFiles/mocograd.dir/data/qm9.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/data/qm9.cc.o.d"
  "/root/repo/src/data/scene.cc" "src/CMakeFiles/mocograd.dir/data/scene.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/data/scene.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/mocograd.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/eval/metrics.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "src/CMakeFiles/mocograd.dir/harness/experiment.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/harness/experiment.cc.o.d"
  "/root/repo/src/harness/report.cc" "src/CMakeFiles/mocograd.dir/harness/report.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/harness/report.cc.o.d"
  "/root/repo/src/mtl/cgc.cc" "src/CMakeFiles/mocograd.dir/mtl/cgc.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/mtl/cgc.cc.o.d"
  "/root/repo/src/mtl/cross_stitch.cc" "src/CMakeFiles/mocograd.dir/mtl/cross_stitch.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/mtl/cross_stitch.cc.o.d"
  "/root/repo/src/mtl/embedding_hps.cc" "src/CMakeFiles/mocograd.dir/mtl/embedding_hps.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/mtl/embedding_hps.cc.o.d"
  "/root/repo/src/mtl/hps.cc" "src/CMakeFiles/mocograd.dir/mtl/hps.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/mtl/hps.cc.o.d"
  "/root/repo/src/mtl/mmoe.cc" "src/CMakeFiles/mocograd.dir/mtl/mmoe.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/mtl/mmoe.cc.o.d"
  "/root/repo/src/mtl/mtan.cc" "src/CMakeFiles/mocograd.dir/mtl/mtan.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/mtl/mtan.cc.o.d"
  "/root/repo/src/mtl/scene_model.cc" "src/CMakeFiles/mocograd.dir/mtl/scene_model.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/mtl/scene_model.cc.o.d"
  "/root/repo/src/mtl/trainer.cc" "src/CMakeFiles/mocograd.dir/mtl/trainer.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/mtl/trainer.cc.o.d"
  "/root/repo/src/nn/conv.cc" "src/CMakeFiles/mocograd.dir/nn/conv.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/nn/conv.cc.o.d"
  "/root/repo/src/nn/embedding.cc" "src/CMakeFiles/mocograd.dir/nn/embedding.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/nn/embedding.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/CMakeFiles/mocograd.dir/nn/init.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/nn/init.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/CMakeFiles/mocograd.dir/nn/linear.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/nn/linear.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/CMakeFiles/mocograd.dir/nn/mlp.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/nn/mlp.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/CMakeFiles/mocograd.dir/nn/module.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/nn/module.cc.o.d"
  "/root/repo/src/nn/norm.cc" "src/CMakeFiles/mocograd.dir/nn/norm.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/nn/norm.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/CMakeFiles/mocograd.dir/nn/serialize.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/nn/serialize.cc.o.d"
  "/root/repo/src/optim/optimizer.cc" "src/CMakeFiles/mocograd.dir/optim/optimizer.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/optim/optimizer.cc.o.d"
  "/root/repo/src/optim/scheduler.cc" "src/CMakeFiles/mocograd.dir/optim/scheduler.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/optim/scheduler.cc.o.d"
  "/root/repo/src/solvers/eigen.cc" "src/CMakeFiles/mocograd.dir/solvers/eigen.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/solvers/eigen.cc.o.d"
  "/root/repo/src/solvers/linear_solve.cc" "src/CMakeFiles/mocograd.dir/solvers/linear_solve.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/solvers/linear_solve.cc.o.d"
  "/root/repo/src/solvers/min_norm.cc" "src/CMakeFiles/mocograd.dir/solvers/min_norm.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/solvers/min_norm.cc.o.d"
  "/root/repo/src/solvers/simplex.cc" "src/CMakeFiles/mocograd.dir/solvers/simplex.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/solvers/simplex.cc.o.d"
  "/root/repo/src/tensor/gemm.cc" "src/CMakeFiles/mocograd.dir/tensor/gemm.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/tensor/gemm.cc.o.d"
  "/root/repo/src/tensor/ops.cc" "src/CMakeFiles/mocograd.dir/tensor/ops.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/tensor/ops.cc.o.d"
  "/root/repo/src/tensor/shape.cc" "src/CMakeFiles/mocograd.dir/tensor/shape.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/tensor/shape.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/CMakeFiles/mocograd.dir/tensor/tensor.cc.o" "gcc" "src/CMakeFiles/mocograd.dir/tensor/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
