file(REMOVE_RECURSE
  "libmocograd.a"
)
