# Empty dependencies file for mocograd.
# This may be replaced when dependencies are built.
