file(REMOVE_RECURSE
  "CMakeFiles/aggregator_properties_test.dir/core/aggregator_properties_test.cc.o"
  "CMakeFiles/aggregator_properties_test.dir/core/aggregator_properties_test.cc.o.d"
  "aggregator_properties_test"
  "aggregator_properties_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregator_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
