# Empty compiler generated dependencies file for aggregator_properties_test.
# This may be replaced when dependencies are built.
