file(REMOVE_RECURSE
  "CMakeFiles/aligned_mtl_test.dir/core/aligned_mtl_test.cc.o"
  "CMakeFiles/aligned_mtl_test.dir/core/aligned_mtl_test.cc.o.d"
  "aligned_mtl_test"
  "aligned_mtl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aligned_mtl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
