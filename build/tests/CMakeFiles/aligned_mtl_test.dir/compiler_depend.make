# Empty compiler generated dependencies file for aligned_mtl_test.
# This may be replaced when dependencies are built.
