file(REMOVE_RECURSE
  "CMakeFiles/broadcast_property_test.dir/tensor/broadcast_property_test.cc.o"
  "CMakeFiles/broadcast_property_test.dir/tensor/broadcast_property_test.cc.o.d"
  "broadcast_property_test"
  "broadcast_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broadcast_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
