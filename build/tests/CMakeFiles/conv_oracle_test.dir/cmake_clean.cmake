file(REMOVE_RECURSE
  "CMakeFiles/conv_oracle_test.dir/autograd/conv_oracle_test.cc.o"
  "CMakeFiles/conv_oracle_test.dir/autograd/conv_oracle_test.cc.o.d"
  "conv_oracle_test"
  "conv_oracle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conv_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
