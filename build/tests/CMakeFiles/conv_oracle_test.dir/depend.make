# Empty dependencies file for conv_oracle_test.
# This may be replaced when dependencies are built.
