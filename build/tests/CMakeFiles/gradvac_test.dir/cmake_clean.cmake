file(REMOVE_RECURSE
  "CMakeFiles/gradvac_test.dir/core/gradvac_test.cc.o"
  "CMakeFiles/gradvac_test.dir/core/gradvac_test.cc.o.d"
  "gradvac_test"
  "gradvac_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gradvac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
