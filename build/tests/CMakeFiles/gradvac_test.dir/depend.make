# Empty dependencies file for gradvac_test.
# This may be replaced when dependencies are built.
