file(REMOVE_RECURSE
  "CMakeFiles/method_details_test.dir/core/method_details_test.cc.o"
  "CMakeFiles/method_details_test.dir/core/method_details_test.cc.o.d"
  "method_details_test"
  "method_details_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/method_details_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
