# Empty dependencies file for method_details_test.
# This may be replaced when dependencies are built.
