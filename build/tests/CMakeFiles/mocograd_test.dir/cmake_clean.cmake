file(REMOVE_RECURSE
  "CMakeFiles/mocograd_test.dir/core/mocograd_test.cc.o"
  "CMakeFiles/mocograd_test.dir/core/mocograd_test.cc.o.d"
  "mocograd_test"
  "mocograd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mocograd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
