# Empty compiler generated dependencies file for mocograd_test.
# This may be replaced when dependencies are built.
