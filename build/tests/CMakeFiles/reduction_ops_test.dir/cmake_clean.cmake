file(REMOVE_RECURSE
  "CMakeFiles/reduction_ops_test.dir/autograd/reduction_ops_test.cc.o"
  "CMakeFiles/reduction_ops_test.dir/autograd/reduction_ops_test.cc.o.d"
  "reduction_ops_test"
  "reduction_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reduction_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
