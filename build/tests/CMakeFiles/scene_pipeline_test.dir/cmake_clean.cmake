file(REMOVE_RECURSE
  "CMakeFiles/scene_pipeline_test.dir/integration/scene_pipeline_test.cc.o"
  "CMakeFiles/scene_pipeline_test.dir/integration/scene_pipeline_test.cc.o.d"
  "scene_pipeline_test"
  "scene_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scene_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
