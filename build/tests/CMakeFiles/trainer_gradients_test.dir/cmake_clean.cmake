file(REMOVE_RECURSE
  "CMakeFiles/trainer_gradients_test.dir/mtl/trainer_gradients_test.cc.o"
  "CMakeFiles/trainer_gradients_test.dir/mtl/trainer_gradients_test.cc.o.d"
  "trainer_gradients_test"
  "trainer_gradients_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trainer_gradients_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
