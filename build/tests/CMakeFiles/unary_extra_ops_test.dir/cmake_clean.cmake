file(REMOVE_RECURSE
  "CMakeFiles/unary_extra_ops_test.dir/autograd/unary_extra_ops_test.cc.o"
  "CMakeFiles/unary_extra_ops_test.dir/autograd/unary_extra_ops_test.cc.o.d"
  "unary_extra_ops_test"
  "unary_extra_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unary_extra_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
