# Empty compiler generated dependencies file for unary_extra_ops_test.
# This may be replaced when dependencies are built.
