# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for unary_extra_ops_test.
