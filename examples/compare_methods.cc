// Example: a small CLI for racing MTL methods on any built-in workload.
//
//   ./build/examples/example_compare_methods [dataset] [steps] [seeds]
//
//   dataset: movielens | qm9 | aliexpress | office_home | nyuv2 | cityscapes
//            (default movielens)
//   steps:   training steps per run (default 250)
//   seeds:   seeds averaged per method (default 2)
//
// Prints per-method Δ_M against freshly trained single-task baselines, the
// mean gradient-conflict degree, and the per-step backward cost — a
// one-command way to explore how the methods rank on each workload.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "base/table.h"
#include "data/aliexpress.h"
#include "data/movielens.h"
#include "data/office_home.h"
#include "data/qm9.h"
#include "data/scene.h"
#include "harness/experiment.h"

namespace {

using namespace mocograd;

struct Workload {
  std::unique_ptr<data::MtlDataset> dataset;
  harness::ModelFactory factory;
  int batch_size = 32;
  float lr = 3e-3f;
};

Workload MakeWorkload(const std::string& name) {
  Workload w;
  if (name == "movielens") {
    auto ds = std::make_unique<data::MovieLensSim>(data::MovieLensConfig{});
    w.factory = harness::MlpHpsFactory(ds->input_dim(), {64, 32});
    w.dataset = std::move(ds);
  } else if (name == "qm9") {
    auto ds = std::make_unique<data::Qm9Sim>(data::Qm9Config{});
    w.factory = harness::MlpHpsFactory(ds->input_dim(), {64, 32});
    w.dataset = std::move(ds);
  } else if (name == "aliexpress") {
    data::AliExpressConfig cfg;
    auto ds = std::make_unique<data::AliExpressSim>(cfg);
    w.factory = harness::EmbeddingHpsFactory(cfg.dense_dim,
                                             cfg.num_user_segments,
                                             cfg.num_item_categories);
    w.dataset = std::move(ds);
    w.batch_size = 64;
    w.lr = 2e-3f;
  } else if (name == "office_home") {
    auto ds = std::make_unique<data::OfficeHomeSim>(data::OfficeHomeConfig{});
    w.factory = harness::MlpHpsFactory(ds->input_dim(), {64, 32});
    w.dataset = std::move(ds);
    w.batch_size = 16;
    w.lr = 2e-3f;
  } else if (name == "nyuv2" || name == "cityscapes") {
    data::SceneConfig cfg;
    cfg.mode = name == "nyuv2" ? data::SceneMode::kNyu
                               : data::SceneMode::kCityscapes;
    w.dataset = std::make_unique<data::SceneSim>(cfg);
    w.factory = harness::SceneConvFactory(3, 16, 2);
    w.batch_size = 8;
  } else {
    std::fprintf(stderr,
                 "unknown dataset '%s' (movielens|qm9|aliexpress|"
                 "office_home|nyuv2|cityscapes)\n",
                 name.c_str());
    std::exit(1);
  }
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dataset_name = argc > 1 ? argv[1] : "movielens";
  const int steps = argc > 2 ? std::atoi(argv[2]) : 250;
  const int seeds = argc > 3 ? std::atoi(argv[3]) : 2;
  MG_CHECK(steps > 0 && seeds > 0, "steps and seeds must be positive");

  Workload w = MakeWorkload(dataset_name);
  std::vector<int> tasks;
  for (int i = 0; i < w.dataset->num_tasks(); ++i) tasks.push_back(i);
  std::printf("workload: %s (%d tasks), %d steps, %d seed(s)\n",
              w.dataset->name().c_str(), w.dataset->num_tasks(), steps,
              seeds);

  auto averaged = [&](const std::string& method, bool stl) {
    harness::RunResult sum;
    for (int s = 1; s <= seeds; ++s) {
      harness::TrainConfig cfg;
      cfg.steps = steps;
      cfg.batch_size = w.batch_size;
      cfg.lr = w.lr;
      cfg.seed = s;
      harness::RunResult r =
          stl ? harness::StlBaseline(*w.dataset, tasks, w.factory, cfg)
              : harness::RunMethod(*w.dataset, tasks, method, w.factory, cfg);
      if (s == 1) {
        sum = r;
      } else {
        for (size_t t = 0; t < sum.task_metrics.size(); ++t) {
          for (size_t m = 0; m < sum.task_metrics[t].size(); ++m) {
            sum.task_metrics[t][m].value += r.task_metrics[t][m].value;
          }
        }
        sum.mean_gcd += r.mean_gcd;
        sum.mean_backward_seconds += r.mean_backward_seconds;
      }
    }
    for (auto& tm : sum.task_metrics) {
      for (auto& mv : tm) mv.value /= seeds;
    }
    sum.mean_gcd /= seeds;
    sum.mean_backward_seconds /= seeds;
    return sum;
  };

  std::printf("training STL baselines...\n");
  harness::RunResult stl = averaged("", /*stl=*/true);

  TextTable table;
  table.SetHeader({"method", "DeltaM vs STL", "mean GCD", "backward ms/step"});
  for (const std::string& m : core::AllMethodNames()) {
    std::printf("training %s...\n", m.c_str());
    harness::RunResult r = averaged(m, /*stl=*/false);
    table.AddRow({m,
                  TextTable::Percent(harness::ComputeDeltaM(
                      r.task_metrics, stl.task_metrics)),
                  TextTable::Num(r.mean_gcd, 3),
                  TextTable::Num(r.mean_backward_seconds * 1e3, 3)});
  }
  std::printf("\n%s", table.ToString().c_str());
  return 0;
}
