// Example: extending the library with a custom gradient-aggregation
// strategy.
//
// The GradientAggregator interface is the library's main extension point:
// implement Aggregate() over the K×P per-task gradient matrix and the
// trainer/harness machinery (per-task backward passes, task-weight routing,
// conflict statistics) comes for free. This example implements "gradient
// norm clipping per task + sum" — a simple robust baseline — and races it
// against EW and MoCoGrad on the QM9 workload.
//
//   ./build/examples/example_custom_aggregator

#include <cmath>
#include <cstdio>

#include "base/table.h"
#include "core/aggregator.h"
#include "data/qm9.h"
#include "harness/experiment.h"

namespace {

using namespace mocograd;

// Clips every task gradient to the median task-gradient norm before
// summing: a cheap defense against the outlier mini-batches that MoCoGrad
// targets with momentum calibration.
class ClippedSum : public core::GradientAggregator {
 public:
  std::string name() const override { return "clipped_sum"; }

  core::AggregationResult Aggregate(
      const core::AggregationContext& ctx) override {
    const core::GradMatrix& g = *ctx.task_grads;
    const int k = g.num_tasks();
    const int64_t p = g.dim();

    std::vector<double> norms(k);
    for (int i = 0; i < k; ++i) norms[i] = g.RowNorm(i);
    std::vector<double> sorted = norms;
    std::nth_element(sorted.begin(), sorted.begin() + k / 2, sorted.end());
    const double clip = sorted[k / 2];

    core::AggregationResult out;
    out.shared_grad.assign(p, 0.0f);
    out.task_weights.assign(k, 1.0f);
    for (int i = 0; i < k; ++i) {
      const float scale =
          norms[i] > clip && norms[i] > 0.0
              ? static_cast<float>(clip / norms[i])
              : 1.0f;
      const float* row = g.Row(i);
      for (int64_t q = 0; q < p; ++q) out.shared_grad[q] += scale * row[q];
    }
    return out;
  }
};

}  // namespace

int main() {
  data::Qm9Config qc;
  qc.num_properties = 6;
  data::Qm9Sim dataset(qc);
  auto factory = harness::MlpHpsFactory(dataset.input_dim(), {64, 32});
  const std::vector<int> tasks = {0, 1, 2, 3, 4, 5};

  harness::TrainConfig cfg;
  cfg.steps = 250;
  cfg.batch_size = 32;
  cfg.lr = 3e-3f;
  cfg.seed = 1;

  harness::RunResult stl =
      harness::StlBaseline(dataset, tasks, factory, cfg);

  TextTable table;
  table.SetHeader({"method", "Avg MAE", "DeltaM vs STL"});
  auto avg_mae = [](const harness::RunResult& r) {
    double s = 0.0;
    for (const auto& tm : r.task_metrics) s += tm[0].value;
    return s / r.task_metrics.size();
  };

  // Built-in methods go through the registry...
  for (const std::string& m : {std::string("ew"), std::string("mocograd")}) {
    auto r = harness::RunMethod(dataset, tasks, m, factory, cfg);
    table.AddRow({m, TextTable::Num(avg_mae(r)),
                  TextTable::Percent(harness::ComputeDeltaM(
                      r.task_metrics, stl.task_metrics))});
  }
  // ... and a custom aggregator plugs into the same harness directly.
  ClippedSum clipped;
  auto r = harness::TrainAndEvaluate(dataset, tasks, &clipped, factory, cfg);
  table.AddRow({clipped.name(), TextTable::Num(avg_mae(r)),
                TextTable::Percent(harness::ComputeDeltaM(
                    r.task_metrics, stl.task_metrics))});

  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nWriting a new strategy = one class implementing\n"
      "core::GradientAggregator::Aggregate(ctx) over the KxP GradMatrix.\n");
  return 0;
}
