// Quickstart: train a 3-task MovieLens-style regression model with MoCoGrad
// and compare it against plain joint training (EW) and single-task models.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart

#include <cstdio>

#include "base/table.h"
#include "data/movielens.h"
#include "harness/experiment.h"

int main() {
  using namespace mocograd;

  // 1) A dataset. MovieLensSim mimics the paper's 9-genre rating-regression
  //    benchmark; we train on three genres (tasks A, B, C).
  data::MovieLensConfig data_cfg;
  data_cfg.num_genres = 3;
  data_cfg.train_per_task = 1200;
  data_cfg.test_per_task = 400;
  data::MovieLensSim dataset(data_cfg);

  // 2) A model family: hard-parameter-sharing MLP (shared trunk + one head
  //    per task), built fresh for each run by the factory.
  harness::ModelFactory factory =
      harness::MlpHpsFactory(dataset.input_dim(), {64, 32});

  // 3) Training configuration.
  harness::TrainConfig cfg;
  cfg.steps = 400;
  cfg.batch_size = 64;
  cfg.lr = 1e-2f;
  cfg.seed = 7;

  const std::vector<int> tasks = {0, 1, 2};

  // 4) Single-task baselines (the paper's STL row) ...
  std::printf("training STL baselines...\n");
  harness::RunResult stl = harness::StlBaseline(dataset, tasks, factory, cfg);

  // 5) ... plain joint training ...
  std::printf("training EW (plain joint training)...\n");
  harness::RunResult ew =
      harness::RunMethod(dataset, tasks, "ew", factory, cfg);

  // 6) ... and MoCoGrad, the paper's momentum-calibrated gradient surgery.
  std::printf("training MoCoGrad...\n");
  harness::RunResult moco =
      harness::RunMethod(dataset, tasks, "mocograd", factory, cfg);

  // 7) Report per-task RMSE and the paper's Δ_M summary metric (Eq. 27).
  TextTable table;
  table.SetHeader({"method", "RMSE A", "RMSE B", "RMSE C", "DeltaM"});
  auto row = [&](const char* name, const harness::RunResult& r) {
    table.AddRow({name, TextTable::Num(r.task_metrics[0][0].value),
                  TextTable::Num(r.task_metrics[1][0].value),
                  TextTable::Num(r.task_metrics[2][0].value),
                  TextTable::Percent(
                      harness::ComputeDeltaM(r.task_metrics,
                                             stl.task_metrics))});
  };
  row("STL", stl);
  row("EW", ew);
  row("MoCoGrad", moco);
  std::printf("\n%s", table.ToString().c_str());
  std::printf(
      "\nMoCoGrad calibrates conflicting task gradients with the other\n"
      "task's momentum (EMA of past gradients), de-noising the surgery\n"
      "against mini-batch noise. Mean pairwise GCD during joint training\n"
      "was %.3f (GCD > 1 means conflicting gradients).\n",
      moco.mean_gcd);
  return 0;
}
