// Example: multi-task CTR/CTCVR recommendation with gradient surgery.
//
// Demonstrates the "industrial" use case from the paper's introduction: an
// e-commerce ranking model that must predict clicks and conversions from
// the same impressions (single-input MTL through a shared embedding + MLP
// trunk), where the conversion objective partly conflicts with the click
// objective. Compares plain joint training against several gradient-surgery
// methods, including MoCoGrad.
//
//   ./build/examples/example_recommender

#include <cstdio>

#include "base/table.h"
#include "data/aliexpress.h"
#include "harness/experiment.h"

int main() {
  using namespace mocograd;

  // The AliExpress-style simulator: clicks and conversions share the same
  // impressions; conversion weights are partially anti-correlated with the
  // click weights ("what makes a user click is partly what makes them
  // bounce"), which is the source of the CTR↔CTCVR gradient conflict.
  data::AliExpressConfig dc;
  dc.country = "ES";
  data::AliExpressSim dataset(dc);
  std::printf("dataset: %s  (%d tasks, single-input=%d)\n",
              dataset.name().c_str(), dataset.num_tasks(),
              dataset.single_input());

  // The paper's AliExpress architecture: embedding tables for the
  // categorical features (user segment, item category) feeding a shared
  // two-layer MLP, with one logit head per task.
  harness::ModelFactory factory = harness::EmbeddingHpsFactory(
      dc.dense_dim, dc.num_user_segments, dc.num_item_categories);

  harness::TrainConfig cfg;
  cfg.steps = 300;
  cfg.batch_size = 64;
  cfg.lr = 2e-3f;
  cfg.seed = 1;

  harness::RunResult stl =
      harness::StlBaseline(dataset, {0, 1}, factory, cfg);

  TextTable table;
  table.SetHeader({"method", "CTR AUC", "CTCVR AUC", "DeltaM",
                   "mean GCD", "conflicts acted on"});
  table.AddRow({"STL", TextTable::Num(stl.task_metrics[0][0].value),
                TextTable::Num(stl.task_metrics[1][0].value), "+0.00%", "-",
                "-"});
  for (const std::string& method :
       {std::string("ew"), std::string("pcgrad"), std::string("cagrad"),
        std::string("mocograd")}) {
    harness::RunResult r =
        harness::RunMethod(dataset, {0, 1}, method, factory, cfg);
    table.AddRow({method, TextTable::Num(r.task_metrics[0][0].value),
                  TextTable::Num(r.task_metrics[1][0].value),
                  TextTable::Percent(harness::ComputeDeltaM(
                      r.task_metrics, stl.task_metrics)),
                  TextTable::Num(r.mean_gcd, 3), ""});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nGCD (Gradient Conflict Degree) > 1 marks conflicting task\n"
      "gradients; the surgery methods differ in how they repair them.\n");
  return 0;
}
