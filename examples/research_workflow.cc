// Example: a research workflow end to end — conflict analysis, schedulers,
// checkpointing and CSV export.
//
// This walkthrough shows the library's "tooling" surface on top of the core
// algorithm: it trains MoCoGrad on the QM9 workload while recording which
// task pairs conflict (ConflictTracker), decays the learning rate with the
// μ/√t schedule of the paper's Corollary 1, saves the trained model to a
// checkpoint, reloads it into a fresh model, verifies the predictions
// match, and exports the results as CSV for plotting.
//
//   ./build/examples/example_research_workflow

#include <cstdio>

#include "core/analysis.h"
#include "core/registry.h"
#include "data/qm9.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "mtl/hps.h"
#include "mtl/trainer.h"
#include "nn/serialize.h"
#include "optim/optimizer.h"
#include "optim/scheduler.h"

int main() {
  using namespace mocograd;

  // --- Workload: 6 QM9-style property-regression tasks. ------------------
  data::Qm9Config qc;
  qc.num_properties = 6;
  data::Qm9Sim dataset(qc);

  // --- Model / optimizer / schedule / aggregator, wired manually. --------
  Rng init_rng(1);
  mtl::HpsConfig hps;
  hps.input_dim = dataset.input_dim();
  hps.shared_dims = {64, 32};
  hps.task_output_dims = std::vector<int64_t>(6, 1);
  mtl::HpsModel model(hps, init_rng);

  auto aggregator = core::MakeAggregator("mocograd").value();
  optim::Adam opt(model.Parameters(), 6e-3f);
  optim::InverseSqrtLr schedule(&opt);  // μ_t = μ/√t  (Corollary 1)

  std::vector<data::TaskKind> kinds(6, data::TaskKind::kRegressionMae);
  mtl::MtlTrainer trainer(&model, aggregator.get(), &opt, kinds, /*seed=*/7);

  core::ConflictTracker tracker;
  trainer.set_conflict_tracker(&tracker);

  // --- Train. -------------------------------------------------------------
  Rng data_rng(11);
  for (int step = 0; step < 300; ++step) {
    trainer.Step(dataset.SampleTrainBatches(32, data_rng));
    schedule.Step();
  }
  std::printf("final lr after /sqrt(t) decay: %.5f\n", opt.learning_rate());
  std::printf("%s", tracker.Summary().c_str());

  // --- Checkpoint round trip. ----------------------------------------------
  const std::string ckpt = "/tmp/mocograd_qm9.ckpt";
  MG_CHECK(nn::SaveParameters(model, ckpt).ok());
  Rng fresh_rng(99);
  mtl::HpsModel reloaded(hps, fresh_rng);
  MG_CHECK(nn::LoadParameters(reloaded, ckpt).ok());

  auto test = dataset.TestBatches();
  std::vector<autograd::Variable> inputs;
  for (const auto& b : test) inputs.emplace_back(b.x, false);
  auto p1 = model.Forward(inputs);
  auto p2 = reloaded.Forward(inputs);
  double max_diff = 0.0;
  for (int t = 0; t < 6; ++t) {
    for (int64_t i = 0; i < p1[t].NumElements(); ++i) {
      max_diff = std::max(
          max_diff, static_cast<double>(std::fabs(p1[t].value()[i] -
                                                  p2[t].value()[i])));
    }
  }
  std::printf("checkpoint round trip max |diff| = %g\n", max_diff);
  MG_CHECK(max_diff == 0.0, "reloaded model must match exactly");

  // --- CSV export via the harness. -----------------------------------------
  auto factory = harness::MlpHpsFactory(dataset.input_dim(), {64, 32});
  harness::TrainConfig cfg;
  cfg.steps = 250;
  cfg.batch_size = 32;
  cfg.lr = 3e-3f;
  const std::vector<int> tasks = {0, 1, 2, 3, 4, 5};
  harness::RunResult stl = harness::StlBaseline(dataset, tasks, factory, cfg);
  std::vector<harness::LabeledRun> runs;
  for (const std::string& m : {std::string("ew"), std::string("mocograd")}) {
    runs.push_back({m, harness::RunMethod(dataset, tasks, m, factory, cfg)});
  }
  const std::string csv_path = "/tmp/mocograd_qm9_results.csv";
  MG_CHECK(harness::WriteCsvReport(runs, csv_path, &stl).ok());
  std::printf("wrote %s (one row per method/task/metric + delta_m)\n",
              csv_path.c_str());
  return 0;
}
