// Example: dense scene understanding (NYUv2-style) with a convolutional
// multi-task model.
//
// Trains a shared conv encoder with three per-pixel heads — 13-class
// segmentation, depth prediction and surface-normal estimation — on the
// procedural scene simulator, with MoCoGrad handling the gradient conflicts
// between the three dense objectives. Prints the full per-pixel metric
// suite of the paper's Table III.
//
//   ./build/examples/example_scene_understanding

#include <cstdio>

#include "base/table.h"
#include "data/scene.h"
#include "harness/experiment.h"

int main() {
  using namespace mocograd;

  data::SceneConfig sc;
  sc.mode = data::SceneMode::kNyu;
  data::SceneSim dataset(sc);
  std::printf("dataset: %s  (%dx%d scenes, %d classes)\n",
              dataset.name().c_str(), dataset.hw(), dataset.hw(),
              dataset.num_classes());

  // Shared fully-convolutional encoder + one conv head per task.
  harness::ModelFactory factory = harness::SceneConvFactory(
      /*in_channels=*/3, /*width=*/16, /*num_encoder_layers=*/2);

  harness::TrainConfig cfg;
  cfg.steps = 200;
  cfg.batch_size = 8;
  cfg.lr = 3e-3f;
  cfg.seed = 1;

  const std::vector<int> tasks = {0, 1, 2};
  std::printf("training MoCoGrad (%d steps)...\n", cfg.steps);
  harness::RunResult moco =
      harness::RunMethod(dataset, tasks, "mocograd", factory, cfg);
  std::printf("training plain joint (EW)...\n");
  harness::RunResult ew =
      harness::RunMethod(dataset, tasks, "ew", factory, cfg);

  TextTable table;
  table.SetHeader({"metric", "EW", "MoCoGrad"});
  auto metric = [](const harness::RunResult& r, int task, int m) {
    return TextTable::Num(r.task_metrics[task][m].value, 4);
  };
  table.AddRow({"seg mIoU (up)", metric(ew, 0, 0), metric(moco, 0, 0)});
  table.AddRow({"seg PixAcc (up)", metric(ew, 0, 1), metric(moco, 0, 1)});
  table.AddRow({"depth AbsErr (down)", metric(ew, 1, 0), metric(moco, 1, 0)});
  table.AddRow({"depth RelErr (down)", metric(ew, 1, 1), metric(moco, 1, 1)});
  table.AddRow({"normal mean deg (down)", metric(ew, 2, 0),
                metric(moco, 2, 0)});
  table.AddRow({"normal median deg (down)", metric(ew, 2, 1),
                metric(moco, 2, 1)});
  table.AddRow({"normals within 11.25 (up)", metric(ew, 2, 2),
                metric(moco, 2, 2)});
  table.AddRow({"normals within 30 (up)", metric(ew, 2, 4),
                metric(moco, 2, 4)});
  std::printf("%s", table.ToString().c_str());
  std::printf("\nmean pairwise GCD during training: EW %.3f, MoCoGrad %.3f\n",
              ew.mean_gcd, moco.mean_gcd);
  return 0;
}
