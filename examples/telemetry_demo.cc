// Telemetry demo: trains one aggregation method on a small 3-task
// MovieLens-style workload with the conflict-telemetry channel enabled,
// then prints where the JSONL went. Feed the output to `mg_report` for a
// self-contained HTML run report, or two outputs for an A/B diff:
//
//   ./build/examples/example_telemetry_demo mocograd /tmp/moco.jsonl
//   ./build/examples/example_telemetry_demo pcgrad   /tmp/pcgrad.jsonl
//   ./build/tools/mg_report --out report.html /tmp/moco.jsonl /tmp/pcgrad.jsonl
//
// Also the driver of the mg_report CI smoke test (tools/mg_report_smoke.sh).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "data/movielens.h"
#include "harness/experiment.h"

int main(int argc, char** argv) {
  using namespace mocograd;

  const std::string method = argc > 1 ? argv[1] : "mocograd";
  const std::string telemetry_path = argc > 2 ? argv[2] : "telemetry.jsonl";
  const int steps = argc > 3 ? std::atoi(argv[3]) : 80;

  data::MovieLensConfig data_cfg;
  data_cfg.num_genres = 3;
  data_cfg.train_per_task = 600;
  data_cfg.test_per_task = 200;
  data::MovieLensSim dataset(data_cfg);

  harness::ModelFactory factory =
      harness::MlpHpsFactory(dataset.input_dim(), {32, 16});

  harness::TrainConfig cfg;
  cfg.steps = steps;
  cfg.batch_size = 32;
  cfg.lr = 1e-2f;
  cfg.seed = 7;
  cfg.telemetry_jsonl_path = telemetry_path;
  cfg.telemetry_every = 1;

  std::printf("training %s for %d steps with telemetry -> %s\n",
              method.c_str(), steps, telemetry_path.c_str());
  harness::RunResult r =
      harness::RunMethod(dataset, {0, 1, 2}, method, factory, cfg);

  std::printf("final losses:");
  for (float l : r.final_losses) std::printf(" %.4f", l);
  std::printf("\nmean GCD over training: %.4f\n", r.mean_gcd);
  std::printf("telemetry written to %s\n", telemetry_path.c_str());
  return 0;
}
