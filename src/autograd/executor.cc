// Backward-sweep executors (docs/AUTOGRAD.md).
//
// Two engines produce bit-identical gradients from the same tape:
//
//  - kSequential replays the tape linearly in reverse topological order on
//    the calling thread (the original engine).
//  - kReadyQueue turns the same reverse-topological order into a
//    dependency-counted task graph: every gradient edge (consumer, argument
//    index) gets its own accumulation slot, numbered in the exact order the
//    sequential engine would have accumulated contributions, and a node
//    becomes runnable when all of its slots are filled. The caller and idle
//    ThreadPool workers pop ready nodes, run their grad_fn, fill parent
//    slots, and enqueue newly-ready parents — so independent branches of one
//    sweep run concurrently, and several sweeps over a shared read-only tape
//    overlap at node granularity.
//
// Determinism: a node's merged gradient is slot[0] plus the remaining slots
// added in slot order — byte-for-byte the sequence of AddInPlace calls the
// sequential engine performs — so scheduling (pool size, pop order, helper
// count) can never change a single bit. The same recipe (fixed decomposition,
// ordered merge) backs the parallel_for kernels; see docs/AUTOGRAD.md.

#include "autograd/executor.h"

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "base/check.h"
#include "base/env.h"
#include "base/mutex.h"
#include "base/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/ops.h"

namespace mocograd {
namespace autograd {

namespace {

int ParseExecutorFromEnv() {
  const std::string v = GetEnvString("MOCOGRAD_AUTOGRAD_EXEC", "ready");
  if (v == "seq") return static_cast<int>(BackwardExecutor::kSequential);
  // "ready", unset, and unrecognized values all select the ready-queue
  // engine — an env typo must never abort or slow a training run
  // (base/env.h fall-back-silently contract).
  return static_cast<int>(BackwardExecutor::kReadyQueue);
}

std::atomic<int>& ExecutorSlot() {
  static std::atomic<int> executor{ParseExecutorFromEnv()};
  return executor;
}

// Iterative post-order DFS over the requires_grad subgraph reachable from
// `root`: parents appear before their users, so the reversed vector is the
// processing order of the sequential engine and the node numbering of the
// ready-queue engine. Both engines share this one traversal so their
// accumulation orders can never drift apart.
std::vector<Node*> TopoPostOrder(Node* root) {
  std::vector<Node*> order;
  // Membership test only; traversal order comes from the explicit stack and
  // the `order` vector. mg_analyze:allow(nondeterminism)
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({root, 0});
  visited.insert(root);
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      Node* parent = f.node->parents[f.next_parent++].get();
      if (parent->requires_grad && !visited.count(parent)) {
        visited.insert(parent);
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(f.node);
      stack.pop_back();
    }
  }
  return order;
}

// Accumulates `g` into the node's destination: the persistent grad buffer
// (sink == nullptr; every reached node, so users can inspect interior
// grads), or the caller's sink (leaves only; the tape stays untouched so
// concurrent sweeps never write shared state). Both destinations start from
// zeros and add in sweep order, so the stored bits match either way.
void AccumulateDestination(Node* n, const Tensor& g,
                           Variable::GradSink* sink) {
  if (sink == nullptr) {
    if (!n->grad.defined()) n->grad = Tensor::Zeros(n->value.shape());
    tops::AddInPlace(n->grad, g);
  } else if (!n->grad_fn) {
    // The entry exists: the sequential engine inserts it here, the
    // ready-queue engine pre-inserts every leaf entry on the calling thread
    // (so workers never mutate the map structure). Lookup-only access.
    // mg_analyze:allow(nondeterminism)
    auto it = sink->find(n);
    MG_CHECK(it != sink->end(), "sink entry missing for leaf ", n->op);
    Tensor& slot = it->second;
    if (!slot.defined()) slot = Tensor::Zeros(n->value.shape());
    tops::AddInPlace(slot, g);
  }
}

void CheckParentGrad(const Node* n, const Node* p, const Tensor& pg) {
  MG_CHECK(pg.defined(), "grad_fn of ", n->op,
           " returned undefined grad for a requires_grad parent");
  MG_CHECK(pg.shape() == p->value.shape(), "grad shape mismatch in op ",
           n->op, ": ", pg.shape().ToString(), " vs ",
           p->value.shape().ToString());
}

// ---------------------------------------------------------------------------
// Sequential engine: linear tape replay (the original BackwardImpl).
// ---------------------------------------------------------------------------

void RunSequential(Node* root, const Tensor& seed,
                   Variable::GradSink* sink) {
  MG_METRIC_COUNT("autograd.sweeps.seq", 1);
  const std::vector<Node*> order = TopoPostOrder(root);

  // Per-sweep upstream accumulators, separate from node->grad so that
  // repeated Backward calls on different roots (per-task losses) compose via
  // += on leaves only, while interior nodes get a fresh accumulator.
  // `owned` tracks whether the stored tensor is private to this sweep: the
  // first contribution is adopted by move, and grad_fns may return tensors
  // aliasing their upstream gradient (e.g. the SumToShape pass-through in
  // the broadcast ops), so the accumulator is cloned before the first
  // in-place add mutates it — a sibling slot may still read that storage.
  // Clone-then-add leaves the same bits as add-in-place, so this changes
  // nothing on alias-free graphs.
  struct Acc {
    Tensor grad;
    bool owned = false;
  };
  // Keyed lookup only; the sweep walks `order`, never this map, so hash
  // order cannot affect accumulation order. mg_analyze:allow(nondeterminism)
  std::unordered_map<Node*, Acc> upstream;
  upstream.reserve(order.size());
  upstream[root] = Acc{seed.Clone(), /*owned=*/true};

  // `order` is post-order: parents before users; traverse in reverse.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    auto found = upstream.find(n);
    if (found == upstream.end()) continue;  // unreachable from the seed
    Tensor& g = found->second.grad;

    if (sink == nullptr || !n->grad_fn) {
      if (sink != nullptr) {
        // Match the ready-queue engine's pre-inserted entries (lookup-only
        // from AccumulateDestination). mg_analyze:allow(nondeterminism)
        (void)(*sink)[n];
      }
      AccumulateDestination(n, g, sink);
    }

    if (!n->grad_fn) continue;
    std::vector<Tensor> parent_grads = n->grad_fn(g);
    MG_CHECK_EQ(parent_grads.size(), n->parents.size(), "grad_fn arity in op ",
                n->op);
    for (size_t i = 0; i < n->parents.size(); ++i) {
      Node* p = n->parents[i].get();
      if (!p->requires_grad) continue;
      Tensor& pg = parent_grads[i];
      CheckParentGrad(n, p, pg);
      auto slot = upstream.find(p);
      if (slot == upstream.end()) {
        upstream.emplace(p, Acc{std::move(pg), /*owned=*/false});
      } else {
        Acc& acc = slot->second;
        if (!acc.owned) {
          acc.grad = acc.grad.Clone();
          acc.owned = true;
        }
        tops::AddInPlace(acc.grad, pg);
      }
    }
    upstream.erase(found);
  }
}

// ---------------------------------------------------------------------------
// Ready-queue engine: dependency-counted concurrent execution.
// ---------------------------------------------------------------------------

// One node of the dependency graph. `pending` is guarded by GraphTask::mu;
// everything else is written once during the build pass and read-only during
// execution.
struct NodeTask {
  Node* node = nullptr;
  // Incoming gradient contributions (edges from consumers), numbered in the
  // sequential engine's accumulation order: consumers by ascending
  // reverse-topological position, arguments by ascending index.
  int num_inputs = 0;
  int pending = 0;
  int64_t first_slot = 0;
  // Per-op duration histogram, resolved once per sweep iff metrics are on.
  obs::Histogram* op_hist = nullptr;
  struct Edge {
    int32_t target = -1;  // index into GraphTask::tasks; -1 = no grad needed
    int32_t slot = 0;     // contribution slot within the target
  };
  std::vector<Edge> edges;  // one per node->parents entry, same order
};

// One in-flight backward sweep. Shared (via shared_ptr) with helper tasks on
// the pool so a straggling helper that wakes after the sweep finished still
// finds valid synchronization state. Slot tensors are published to the
// consumer's merge by the mu acquire/release pair around the pending
// decrement and the ready pop.
struct GraphTask {
  std::vector<NodeTask> tasks;  // index = reverse-topological position
  std::vector<Tensor> slots;    // fixed per-edge accumulation slots
  Variable::GradSink* sink = nullptr;
  // Pinned on the calling thread at build time. Workers must never call
  // ThreadPool::Global() — it locks the global pool mutex, which
  // SetGlobalNumThreads holds while joining workers, so a straggling helper
  // that reaches for the global accessor after its sweep finished would
  // deadlock the resize. Submitting to the pinned pool is safe even during
  // its shutdown: workers drain the queue before joining.
  ThreadPool* pool = nullptr;

  Mutex mu;
  CondVar cv;
  std::vector<int32_t> ready MG_GUARDED_BY(mu);  // pop order is free (LIFO)
  int64_t remaining MG_GUARDED_BY(mu) = 0;    // nodes not yet completed
  int executing MG_GUARDED_BY(mu) = 0;        // nodes currently running
  int helpers_inflight MG_GUARDED_BY(mu) = 0;
  int max_helpers = 0;
  bool canceled MG_GUARDED_BY(mu) = false;
  std::exception_ptr error MG_GUARDED_BY(mu);  // first failure wins
  obs::Histogram* depth_hist = nullptr;
};

std::shared_ptr<GraphTask> BuildGraphTask(Node* root, const Tensor& seed,
                                          Variable::GradSink* sink) {
  auto gt = std::make_shared<GraphTask>();
  const std::vector<Node*> order = TopoPostOrder(root);
  const size_t n = order.size();
  gt->tasks.resize(n);
  // Node -> reverse-topological index. Keyed lookup only during the build;
  // never iterated. mg_analyze:allow(nondeterminism)
  std::unordered_map<const Node*, int32_t> index;
  index.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Node* nd = order[n - 1 - i];  // tasks[0] is the root
    gt->tasks[i].node = nd;
    index.emplace(nd, static_cast<int32_t>(i));
  }

  // Number the gradient edges in the sequential engine's accumulation
  // order: walking tasks by ascending index visits consumers in exactly the
  // order the linear replay does, and arguments ascend within a consumer —
  // so slot k of a node is its (k+1)-th sequential contribution.
  for (size_t i = 0; i < n; ++i) {
    NodeTask& t = gt->tasks[i];
    if (!t.node->grad_fn) continue;  // leaves contribute nothing upstream
    const auto& parents = t.node->parents;
    t.edges.resize(parents.size());
    for (size_t a = 0; a < parents.size(); ++a) {
      Node* p = parents[a].get();
      if (!p->requires_grad) continue;
      auto it = index.find(p);
      MG_CHECK(it != index.end(), "parent of ", t.node->op,
               " missing from the sweep");
      NodeTask& pt = gt->tasks[it->second];
      t.edges[a].target = it->second;
      t.edges[a].slot = pt.num_inputs++;
    }
  }

  // The root's single input is the seed (it has no consumers inside the
  // sweep: the DFS only walks parents, and a parent edge back to the root
  // would be a cycle).
  gt->tasks[0].num_inputs += 1;

  int64_t total_slots = 0;
  for (NodeTask& t : gt->tasks) {
    t.first_slot = total_slots;
    total_slots += t.num_inputs;
    t.pending = t.num_inputs;
  }
  gt->slots.resize(total_slots);
  gt->slots[gt->tasks[0].first_slot] = seed.Clone();
  gt->tasks[0].pending = 0;
  {
    // No worker has seen `gt` yet; the lock only satisfies the guarded-field
    // annotations (uncontended, build pass only).
    MutexLock lk(&gt->mu);
    gt->remaining = static_cast<int64_t>(n);
    gt->ready.push_back(0);
  }
  gt->sink = sink;
  gt->pool = &ThreadPool::Global();
  gt->max_helpers = gt->pool->num_threads() - 1;

  // Pre-insert every leaf's sink entry on the calling thread: workers then
  // only find() existing keys and mutate their (distinct) mapped tensors,
  // never the map structure itself. Insertion order cannot matter — the map
  // is lookup-only from here on. mg_analyze:allow(nondeterminism)
  if (sink != nullptr) {
    for (const NodeTask& t : gt->tasks) {
      if (!t.node->grad_fn) (void)(*sink)[t.node];
    }
  }

  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    gt->depth_hist = reg.GetHistogram("autograd.ready_queue.depth");
    for (NodeTask& t : gt->tasks) {
      t.op_hist =
          reg.GetHistogram(std::string("autograd.node.") + t.node->op +
                           ".seconds");
    }
  }
  return gt;
}

void HelperLoop(const std::shared_ptr<GraphTask>& gt);

// Spawns up to `newly_ready` helpers (bounded by the pool size) to drain the
// queue alongside the current thread. Called with gt->mu held; returns how
// many Submit calls the caller must make after releasing the lock.
int ReserveHelpers(GraphTask& gt, int newly_ready) MG_REQUIRES(gt.mu) {
  int spawn = gt.max_helpers - gt.helpers_inflight;
  if (spawn > newly_ready) spawn = newly_ready;
  if (spawn < 0) spawn = 0;
  gt.helpers_inflight += spawn;
  return spawn;
}

// Executes one ready node: merge its input slots in fixed slot order, feed
// the merged gradient to the destination and the grad_fn, distribute parent
// contributions into their slots, then publish completion under the lock.
void ProcessNode(const std::shared_ptr<GraphTask>& gt, int32_t ti) {
  GraphTask& g_task = *gt;
  NodeTask& t = g_task.tasks[ti];
  Node* nd = t.node;

  int newly_ready = 0;
  try {
    obs::TraceScope node_span(
        obs::TracingEnabled() ? std::string("autograd.node.") + nd->op
                              : std::string());
    obs::ScopedTimer op_timer(t.op_hist);

    // Merge contributions in slot order: adopt slot 0 (the contribution the
    // sequential engine receives first), then add the rest in order — the
    // identical AddInPlace sequence, hence identical bits. The clone guards
    // the in-place adds against grad_fn-returned tensors that alias storage
    // a sibling slot still reads (see RunSequential).
    Tensor* slots = &g_task.slots[t.first_slot];
    Tensor merged = std::move(slots[0]);
    MG_CHECK(merged.defined(), "empty contribution slot for ", nd->op);
    if (t.num_inputs > 1) {
      merged = merged.Clone();
      for (int j = 1; j < t.num_inputs; ++j) {
        tops::AddInPlace(merged, slots[j]);
        slots[j] = Tensor();
      }
    }

    AccumulateDestination(nd, merged, g_task.sink);

    if (nd->grad_fn) {
      std::vector<Tensor> parent_grads = nd->grad_fn(merged);
      MG_CHECK_EQ(parent_grads.size(), nd->parents.size(),
                  "grad_fn arity in op ", nd->op);
      for (size_t a = 0; a < t.edges.size(); ++a) {
        const NodeTask::Edge& e = t.edges[a];
        if (e.target < 0) continue;
        Tensor& pg = parent_grads[a];
        CheckParentGrad(nd, g_task.tasks[e.target].node, pg);
        // Plain write: the consumer reads it only after observing this
        // node's pending-decrement under mu below.
        g_task.slots[g_task.tasks[e.target].first_slot + e.slot] =
            std::move(pg);
      }
    }
  } catch (...) {
    MutexLock lk(&g_task.mu);
    if (!g_task.error) g_task.error = std::current_exception();
    g_task.canceled = true;
    g_task.ready.clear();
  }

  int spawn = 0;
  bool should_notify = false;
  {
    MutexLock lk(&g_task.mu);
    if (nd->grad_fn && !g_task.canceled) {
      for (const NodeTask::Edge& e : t.edges) {
        if (e.target < 0) continue;
        if (--g_task.tasks[e.target].pending == 0) {
          g_task.ready.push_back(e.target);
          ++newly_ready;
        }
      }
    }
    --g_task.remaining;
    --g_task.executing;
    if (g_task.depth_hist != nullptr) {
      g_task.depth_hist->Record(static_cast<double>(g_task.ready.size()));
    }
    // The caller keeps popping on its own; helpers add concurrency only
    // when one completion exposes several ready branches at once.
    if (newly_ready > 1) spawn = ReserveHelpers(g_task, newly_ready - 1);
    // The caller blocks only when the queue is empty and nodes are in
    // flight; wake it exactly when this completion can change its predicate.
    should_notify = newly_ready > 0 || g_task.remaining == 0 ||
                    (g_task.canceled && g_task.executing == 0);
  }
  if (should_notify) g_task.cv.NotifyAll();
  // Submit through the pinned pool, never ThreadPool::Global(): this runs on
  // worker threads, possibly as a straggler after the sweep's caller already
  // returned, and the global accessor's mutex is held across worker joins by
  // SetGlobalNumThreads (see GraphTask::pool).
  for (int i = 0; i < spawn; ++i) {
    g_task.pool->Submit([gt] { HelperLoop(gt); });
  }
}

// Pool-worker drain loop: claim ready nodes until the queue is momentarily
// empty, then exit. Helpers never block — the graph's forward progress is
// guaranteed by whichever threads are executing nodes, and the sweep's
// caller re-spawns helpers as new branches open up.
void HelperLoop(const std::shared_ptr<GraphTask>& gt) {
  for (;;) {
    int32_t ti;
    {
      MutexLock lk(&gt->mu);
      if (gt->canceled || gt->ready.empty()) {
        --gt->helpers_inflight;
        return;
      }
      ti = gt->ready.back();
      gt->ready.pop_back();
      ++gt->executing;
    }
    ProcessNode(gt, ti);
  }
}

void RunReadyQueue(Node* root, const Tensor& seed,
                   Variable::GradSink* sink) {
  MG_TRACE_SCOPE("autograd.ready_queue");
  MG_METRIC_COUNT("autograd.sweeps.ready", 1);
  std::shared_ptr<GraphTask> gt = BuildGraphTask(root, seed, sink);

  // The caller is a full participant: it pops ready nodes like a helper but,
  // unlike helpers, blocks when the queue is empty while other threads still
  // execute nodes (their completion is the only event that can make more
  // work or finish the sweep, and they always notify). With a pool of one
  // participant there are no helpers and this degenerates to an inline
  // serial drain — no waits, no notifies observed.
  for (;;) {
    int32_t ti = -1;
    {
      MutexLock lk(&gt->mu);
      while (gt->ready.empty() && gt->remaining != 0 &&
             !(gt->canceled && gt->executing == 0)) {
        gt->cv.Wait(gt->mu);
      }
      if (gt->remaining == 0 || gt->canceled) break;
      ti = gt->ready.back();
      gt->ready.pop_back();
      ++gt->executing;
    }
    ProcessNode(gt, ti);
  }

  // Straggler helpers only touch the (shared_ptr-kept) GraphTask after this
  // point — every node completed before remaining hit zero, so the caller's
  // sink and the tape are fully written.
  std::exception_ptr error;
  {
    MutexLock lk(&gt->mu);
    error = gt->error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace

BackwardExecutor CurrentBackwardExecutor() {
  return static_cast<BackwardExecutor>(
      ExecutorSlot().load(std::memory_order_relaxed));
}

void SetBackwardExecutor(BackwardExecutor executor) {
  ExecutorSlot().store(static_cast<int>(executor), std::memory_order_relaxed);
}

void RunBackward(Node* root, const Tensor& seed, Variable::GradSink* sink) {
  if (CurrentBackwardExecutor() == BackwardExecutor::kReadyQueue) {
    RunReadyQueue(root, seed, sink);
  } else {
    RunSequential(root, seed, sink);
  }
}

}  // namespace autograd
}  // namespace mocograd
