#ifndef MOCOGRAD_AUTOGRAD_EXECUTOR_H_
#define MOCOGRAD_AUTOGRAD_EXECUTOR_H_

#include "autograd/variable.h"
#include "tensor/tensor.h"

namespace mocograd {
namespace autograd {

/// Which engine a backward sweep runs on. Both engines produce bit-identical
/// gradients — the ready-queue engine's fixed per-edge accumulation slots
/// replay the sequential engine's accumulation order exactly — so the choice
/// is purely a scheduling one. See docs/AUTOGRAD.md.
enum class BackwardExecutor {
  /// Linear tape replay on the calling thread: one reverse-topological walk,
  /// each node executed in turn. Kernels inside grad_fns still parallelize.
  kSequential,
  /// Dependency-counted ready-queue execution on the global ThreadPool:
  /// a one-time graph pass computes per-node outstanding-input counts, then
  /// the caller and idle pool workers pop ready nodes, run their grad_fn,
  /// decrement consumers, and enqueue newly-ready nodes — independent
  /// branches of one sweep run concurrently, and concurrent sweeps over a
  /// shared tape interleave at node granularity.
  kReadyQueue,
};

/// The process-wide executor selection. Initialized from the
/// MOCOGRAD_AUTOGRAD_EXEC environment variable on first use ("seq" or
/// "ready"; default "ready", unrecognized values fall back silently per the
/// base/env.h contract).
BackwardExecutor CurrentBackwardExecutor();

/// Overrides the executor at runtime (tests and A/B benchmarks). Takes
/// effect for sweeps started after the call; do not flip it while sweeps
/// are in flight.
void SetBackwardExecutor(BackwardExecutor executor);

/// Runs one reverse-mode sweep from `root` with the given seed on the
/// currently selected executor. `sink == nullptr` accumulates into each
/// node's persistent grad buffer (Variable::Backward semantics); otherwise
/// leaf gradients accumulate into `*sink` and the tape is never written
/// (Variable::BackwardInto semantics). Entry point for Variable::Backward*;
/// callers go through those.
void RunBackward(Node* root, const Tensor& seed, Variable::GradSink* sink);

}  // namespace autograd
}  // namespace mocograd

#endif  // MOCOGRAD_AUTOGRAD_EXECUTOR_H_
