#include "autograd/ops.h"

#include <cmath>
#include <utility>

#include "base/check.h"
#include "base/scratch.h"
#include "base/thread_pool.h"
#include "obs/trace.h"
#include "tensor/gemm.h"

namespace mocograd {
namespace autograd {

namespace {
namespace t = ::mocograd::tops;
}  // namespace

Variable Add(const Variable& a, const Variable& b) {
  Tensor av = a.value(), bv = b.value();
  return Variable::MakeOp(
      "Add", t::Add(av, bv), {a, b},
      [as = av.shape(), bs = bv.shape()](const Tensor& g) {
        return std::vector<Tensor>{t::SumToShape(g, as), t::SumToShape(g, bs)};
      });
}

Variable Sub(const Variable& a, const Variable& b) {
  Tensor av = a.value(), bv = b.value();
  return Variable::MakeOp(
      "Sub", t::Sub(av, bv), {a, b},
      [as = av.shape(), bs = bv.shape()](const Tensor& g) {
        return std::vector<Tensor>{t::SumToShape(g, as),
                                   t::SumToShape(t::Neg(g), bs)};
      });
}

Variable Mul(const Variable& a, const Variable& b) {
  Tensor av = a.value(), bv = b.value();
  return Variable::MakeOp(
      "Mul", t::Mul(av, bv), {a, b}, [av, bv](const Tensor& g) {
        return std::vector<Tensor>{t::SumToShape(t::Mul(g, bv), av.shape()),
                                   t::SumToShape(t::Mul(g, av), bv.shape())};
      });
}

Variable Div(const Variable& a, const Variable& b) {
  Tensor av = a.value(), bv = b.value();
  return Variable::MakeOp(
      "Div", t::Div(av, bv), {a, b}, [av, bv](const Tensor& g) {
        Tensor da = t::SumToShape(t::Div(g, bv), av.shape());
        Tensor db = t::SumToShape(
            t::Neg(t::Div(t::Mul(g, av), t::Mul(bv, bv))), bv.shape());
        return std::vector<Tensor>{std::move(da), std::move(db)};
      });
}

Variable AddScalar(const Variable& a, float s) {
  return Variable::MakeOp("AddScalar", t::AddScalar(a.value(), s), {a},
                          [](const Tensor& g) {
                            return std::vector<Tensor>{g.Clone()};
                          });
}

Variable MulScalar(const Variable& a, float s) {
  return Variable::MakeOp("MulScalar", t::MulScalar(a.value(), s), {a},
                          [s](const Tensor& g) {
                            return std::vector<Tensor>{t::MulScalar(g, s)};
                          });
}

Variable Neg(const Variable& a) {
  return Variable::MakeOp("Neg", t::Neg(a.value()), {a},
                          [](const Tensor& g) {
                            return std::vector<Tensor>{t::Neg(g)};
                          });
}

Variable Exp(const Variable& a) {
  Tensor out = t::Exp(a.value());
  return Variable::MakeOp("Exp", out, {a}, [out](const Tensor& g) {
    return std::vector<Tensor>{t::Mul(g, out)};
  });
}

Variable Log(const Variable& a) {
  Tensor av = a.value();
  return Variable::MakeOp("Log", t::Log(av), {a}, [av](const Tensor& g) {
    return std::vector<Tensor>{t::Div(g, av)};
  });
}

Variable Sqrt(const Variable& a) {
  Tensor out = t::Sqrt(a.value());
  return Variable::MakeOp("Sqrt", out, {a}, [out](const Tensor& g) {
    return std::vector<Tensor>{t::Div(t::MulScalar(g, 0.5f), out)};
  });
}

Variable Tanh(const Variable& a) {
  Tensor out = t::Tanh(a.value());
  return Variable::MakeOp("Tanh", out, {a}, [out](const Tensor& g) {
    Tensor one_minus = t::Sub(Tensor::Ones(out.shape()), t::Mul(out, out));
    return std::vector<Tensor>{t::Mul(g, one_minus)};
  });
}

Variable Sigmoid(const Variable& a) {
  Tensor out = t::Sigmoid(a.value());
  return Variable::MakeOp("Sigmoid", out, {a}, [out](const Tensor& g) {
    Tensor d = t::Mul(out, t::Sub(Tensor::Ones(out.shape()), out));
    return std::vector<Tensor>{t::Mul(g, d)};
  });
}

Variable Relu(const Variable& a) {
  Tensor av = a.value();
  return Variable::MakeOp("Relu", t::Relu(av), {a}, [av](const Tensor& g) {
    Tensor mask(av.shape());
    const float* p = av.data();
    float* m = mask.data();
    const int64_t n = av.NumElements();
    for (int64_t i = 0; i < n; ++i) m[i] = p[i] > 0.0f ? 1.0f : 0.0f;
    return std::vector<Tensor>{t::Mul(g, mask)};
  });
}

Variable Softplus(const Variable& a) {
  Tensor av = a.value();
  // Stable forward: max(x,0) + log1p(exp(-|x|)).
  Tensor out(av.shape());
  {
    const float* p = av.data();
    float* o = out.data();
    for (int64_t i = 0; i < av.NumElements(); ++i) {
      o[i] = std::max(p[i], 0.0f) + std::log1p(std::exp(-std::fabs(p[i])));
    }
  }
  return Variable::MakeOp("Softplus", out, {a}, [av](const Tensor& g) {
    // d/dx softplus = sigmoid(x).
    return std::vector<Tensor>{t::Mul(g, t::Sigmoid(av))};
  });
}

Variable PowScalar(const Variable& a, float exponent) {
  Tensor av = a.value();
  Tensor out = t::PowScalar(av, exponent);
  return Variable::MakeOp(
      "PowScalar", out, {a}, [av, exponent](const Tensor& g) {
        Tensor d = t::MulScalar(t::PowScalar(av, exponent - 1.0f), exponent);
        return std::vector<Tensor>{t::Mul(g, d)};
      });
}

Variable Clamp(const Variable& a, float lo, float hi) {
  MG_CHECK_LT(lo, hi, "Clamp bounds");
  Tensor av = a.value();
  return Variable::MakeOp(
      "Clamp", t::Clamp(av, lo, hi), {a}, [av, lo, hi](const Tensor& g) {
        Tensor mask(av.shape());
        const float* p = av.data();
        float* m = mask.data();
        for (int64_t i = 0; i < av.NumElements(); ++i) {
          m[i] = (p[i] > lo && p[i] < hi) ? 1.0f : 0.0f;
        }
        return std::vector<Tensor>{t::Mul(g, mask)};
      });
}

Variable MatMul(const Variable& a, const Variable& b) {
  Tensor av = a.value(), bv = b.value();
  return Variable::MakeOp(
      "MatMul", t::MatMul(av, bv), {a, b}, [av, bv](const Tensor& g) {
        Tensor da = t::MatMul(g, bv, /*trans_a=*/false, /*trans_b=*/true);
        Tensor db = t::MatMul(av, g, /*trans_a=*/true, /*trans_b=*/false);
        return std::vector<Tensor>{std::move(da), std::move(db)};
      });
}

Variable Transpose2D(const Variable& a) {
  return Variable::MakeOp("Transpose2D", t::Transpose2D(a.value()), {a},
                          [](const Tensor& g) {
                            return std::vector<Tensor>{t::Transpose2D(g)};
                          });
}

Variable Reshape(const Variable& a, std::vector<int64_t> dims) {
  Shape in_shape = a.value().shape();
  // Clone so the view does not alias the parent's storage on the tape.
  Tensor out = a.value().Reshape(std::move(dims)).Clone();
  return Variable::MakeOp("Reshape", out, {a},
                          [in_shape](const Tensor& g) {
                            return std::vector<Tensor>{
                                g.Reshape(in_shape.dims()).Clone()};
                          });
}

Variable Concat(const std::vector<Variable>& parts, int axis) {
  MG_CHECK(!parts.empty());
  std::vector<Tensor> values;
  std::vector<int64_t> sizes;
  values.reserve(parts.size());
  for (const Variable& p : parts) {
    values.push_back(p.value());
    sizes.push_back(p.value().Dim(axis));
  }
  return Variable::MakeOp("Concat", t::Concat(values, axis), parts,
                          [axis, sizes](const Tensor& g) {
                            return t::Split(g, axis, sizes);
                          });
}

Variable SliceCols(const Variable& a, int64_t start, int64_t len) {
  Tensor av = a.value();
  MG_CHECK_EQ(av.Rank(), 2);
  const int64_t rows = av.Dim(0), cols = av.Dim(1);
  return Variable::MakeOp(
      "SliceCols", t::SliceCols(av, start, len), {a},
      [rows, cols, start, len](const Tensor& g) {
        Tensor da(Shape{rows, cols});
        float* pd = da.data();
        const float* pg = g.data();
        for (int64_t i = 0; i < rows; ++i) {
          for (int64_t j = 0; j < len; ++j) {
            pd[i * cols + start + j] = pg[i * len + j];
          }
        }
        return std::vector<Tensor>{std::move(da)};
      });
}

Variable ChannelsToLast(const Variable& a) {
  Tensor av = a.value();
  MG_CHECK_EQ(av.Rank(), 4, "ChannelsToLast expects NCHW");
  const int64_t n = av.Dim(0), c = av.Dim(1), h = av.Dim(2), w = av.Dim(3);
  Tensor out(Shape{n * h * w, c});
  {
    const float* p = av.data();
    float* po = out.data();
    for (int64_t b = 0; b < n; ++b) {
      for (int64_t ch = 0; ch < c; ++ch) {
        for (int64_t y = 0; y < h; ++y) {
          for (int64_t x = 0; x < w; ++x) {
            po[(((b * h + y) * w) + x) * c + ch] =
                p[((b * c + ch) * h + y) * w + x];
          }
        }
      }
    }
  }
  return Variable::MakeOp(
      "ChannelsToLast", out, {a}, [n, c, h, w](const Tensor& g) {
        Tensor da(Shape{n, c, h, w});
        const float* pg = g.data();
        float* pd = da.data();
        for (int64_t b = 0; b < n; ++b) {
          for (int64_t ch = 0; ch < c; ++ch) {
            for (int64_t y = 0; y < h; ++y) {
              for (int64_t x = 0; x < w; ++x) {
                pd[((b * c + ch) * h + y) * w + x] =
                    pg[(((b * h + y) * w) + x) * c + ch];
              }
            }
          }
        }
        return std::vector<Tensor>{std::move(da)};
      });
}

Variable GatherRows(const Variable& table, std::vector<int64_t> indices) {
  Tensor tv = table.value();
  const int64_t num_rows = tv.Dim(0);
  // Evaluate the forward gather before the lambda capture moves `indices`
  // (function-argument evaluation order is unspecified).
  Tensor gathered = t::GatherRows(tv, indices);
  return Variable::MakeOp(
      "GatherRows", std::move(gathered), {table},
      [indices = std::move(indices), num_rows](const Tensor& g) {
        return std::vector<Tensor>{t::ScatterAddRows(g, indices, num_rows)};
      });
}

Variable SumAll(const Variable& a) {
  Shape in_shape = a.value().shape();
  Tensor out = Tensor::FromVector(Shape{1}, {t::SumAll(a.value())});
  return Variable::MakeOp("SumAll", out, {a}, [in_shape](const Tensor& g) {
    return std::vector<Tensor>{Tensor::Full(in_shape, g[0])};
  });
}

Variable MeanAll(const Variable& a) {
  Shape in_shape = a.value().shape();
  const float inv_n = 1.0f / static_cast<float>(in_shape.NumElements());
  Tensor out = Tensor::FromVector(Shape{1}, {t::MeanAll(a.value())});
  return Variable::MakeOp("MeanAll", out, {a},
                          [in_shape, inv_n](const Tensor& g) {
                            return std::vector<Tensor>{
                                Tensor::Full(in_shape, g[0] * inv_n)};
                          });
}

Variable SumAxis(const Variable& a, int axis, bool keepdims) {
  Shape in_shape = a.value().shape();
  return Variable::MakeOp(
      "SumAxis", t::Sum(a.value(), axis, keepdims), {a},
      [in_shape, axis, keepdims](const Tensor& g) {
        // Broadcast the upstream gradient back over the reduced axis.
        Tensor gk = g;
        if (!keepdims) {
          std::vector<int64_t> dims = in_shape.dims();
          dims[axis] = 1;
          gk = g.Reshape(dims);
        }
        // Expand by adding a ones tensor of the input shape (broadcast).
        Tensor expanded = t::Add(gk, Tensor::Zeros(in_shape));
        return std::vector<Tensor>{std::move(expanded)};
      });
}

Variable MeanAxis(const Variable& a, int axis, bool keepdims) {
  const float inv = 1.0f / static_cast<float>(a.value().Dim(axis));
  return MulScalar(SumAxis(a, axis, keepdims), inv);
}

Variable SoftmaxRows(const Variable& a) {
  Tensor out = t::SoftmaxRows(a.value());
  return Variable::MakeOp("SoftmaxRows", out, {a}, [out](const Tensor& g) {
    // ds = s ⊙ (g − Σ_j g_j s_j), row-wise.
    const int64_t n = out.Dim(0), c = out.Dim(1);
    Tensor da(out.shape());
    const float* s = out.data();
    const float* pg = g.data();
    float* pd = da.data();
    for (int64_t i = 0; i < n; ++i) {
      double dot = 0.0;
      for (int64_t j = 0; j < c; ++j) dot += double(pg[i * c + j]) * s[i * c + j];
      for (int64_t j = 0; j < c; ++j) {
        pd[i * c + j] = s[i * c + j] * (pg[i * c + j] - float(dot));
      }
    }
    return std::vector<Tensor>{std::move(da)};
  });
}

Variable SoftmaxCrossEntropy(const Variable& logits,
                             std::vector<int64_t> labels) {
  Tensor lv = logits.value();
  MG_CHECK_EQ(lv.Rank(), 2);
  const int64_t n = lv.Dim(0), c = lv.Dim(1);
  MG_CHECK_EQ(n, static_cast<int64_t>(labels.size()),
              "SoftmaxCrossEntropy label count");
  Tensor log_probs = t::LogSoftmaxRows(lv);
  double loss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t y = labels[i];
    MG_CHECK_GE(y, 0);
    MG_CHECK_LT(y, c, "label out of range");
    loss -= log_probs.data()[i * c + y];
  }
  Tensor out =
      Tensor::FromVector(Shape{1}, {static_cast<float>(loss / n)});
  Tensor probs = t::SoftmaxRows(lv);
  return Variable::MakeOp(
      "SoftmaxCrossEntropy", out, {logits},
      [probs, labels = std::move(labels), n, c](const Tensor& g) {
        Tensor da = probs.Clone();
        float* pd = da.data();
        for (int64_t i = 0; i < n; ++i) pd[i * c + labels[i]] -= 1.0f;
        t::ScaleInPlace(da, g[0] / static_cast<float>(n));
        return std::vector<Tensor>{std::move(da)};
      });
}

Variable BceWithLogits(const Variable& logits, Tensor targets) {
  Tensor lv = logits.value();
  MG_CHECK(lv.shape() == targets.shape(), "BceWithLogits shape mismatch: ",
           lv.shape().ToString(), " vs ", targets.shape().ToString());
  const int64_t n = lv.NumElements();
  MG_CHECK_GT(n, 0);
  const float* x = lv.data();
  const float* y = targets.data();
  double loss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    // max(x,0) - x*y + log(1 + exp(-|x|)), the standard stable form.
    loss += std::max(x[i], 0.0f) - x[i] * y[i] +
            std::log1p(std::exp(-std::fabs(x[i])));
  }
  Tensor out = Tensor::FromVector(Shape{1}, {static_cast<float>(loss / n)});
  return Variable::MakeOp(
      "BceWithLogits", out, {logits},
      [lv, targets = std::move(targets), n](const Tensor& g) {
        Tensor da = t::Sub(t::Sigmoid(lv), targets);
        t::ScaleInPlace(da, g[0] / static_cast<float>(n));
        return std::vector<Tensor>{std::move(da)};
      });
}

Variable MseLoss(const Variable& pred, Tensor target) {
  Tensor pv = pred.value();
  MG_CHECK(pv.shape() == target.shape(), "MseLoss shape mismatch: ",
           pv.shape().ToString(), " vs ", target.shape().ToString());
  Tensor diff = t::Sub(pv, target);
  const int64_t n = pv.NumElements();
  const float mse = t::Dot(diff, diff) / static_cast<float>(n);
  Tensor out = Tensor::FromVector(Shape{1}, {mse});
  return Variable::MakeOp(
      "MseLoss", out, {pred}, [diff, n](const Tensor& g) {
        Tensor da = t::MulScalar(diff, 2.0f * g[0] / static_cast<float>(n));
        return std::vector<Tensor>{std::move(da)};
      });
}

Variable L1Loss(const Variable& pred, Tensor target) {
  Tensor pv = pred.value();
  MG_CHECK(pv.shape() == target.shape(), "L1Loss shape mismatch");
  Tensor diff = t::Sub(pv, target);
  const int64_t n = pv.NumElements();
  const float mae = t::SumAll(t::Abs(diff)) / static_cast<float>(n);
  Tensor out = Tensor::FromVector(Shape{1}, {mae});
  return Variable::MakeOp(
      "L1Loss", out, {pred}, [diff, n](const Tensor& g) {
        Tensor da = t::MulScalar(t::Sign(diff), g[0] / static_cast<float>(n));
        return std::vector<Tensor>{std::move(da)};
      });
}

Variable Conv2d(const Variable& input, const Variable& weight,
                const Variable& bias, const tops::Conv2dSpec& spec) {
  Tensor xv = input.value();
  Tensor wv = weight.value();
  Tensor bv = bias.value();
  MG_CHECK_EQ(xv.Rank(), 4, "Conv2d input must be NCHW");
  const int64_t n = xv.Dim(0), c = xv.Dim(1), h = xv.Dim(2), w = xv.Dim(3);
  MG_CHECK_EQ(c, spec.in_channels);
  MG_CHECK(wv.shape() == Shape({spec.out_channels, spec.in_channels,
                                spec.kernel, spec.kernel}),
           "Conv2d weight shape ", wv.shape().ToString());
  MG_CHECK(bv.shape() == Shape({spec.out_channels}), "Conv2d bias shape");
  const int64_t oh = spec.OutDim(h), ow = spec.OutDim(w);
  const int64_t l = oh * ow;
  const int64_t patch = c * spec.kernel * spec.kernel;
  const int64_t f = spec.out_channels;

  // Cache the im2col buffers for the backward pass. Samples write disjoint
  // `cols` and `out` slices, so the batch loop parallelizes bit-identically.
  MG_TRACE_SCOPE("conv.forward");
  auto cols = std::make_shared<std::vector<float>>(
      static_cast<size_t>(n) * patch * l);
  Tensor out(Shape{n, f, oh, ow});
  ParallelFor(0, n, 1, [&](int64_t b0, int64_t b1) {
    for (int64_t b = b0; b < b1; ++b) {
      MG_TRACE_SCOPE("conv.im2col_sample");
      float* col = cols->data() + b * patch * l;
      tops::Im2Col(xv.data() + b * c * h * w, spec, h, w, col);
      // out_b [f, l] = W [f, patch] * col [patch, l]
      Gemm(false, false, f, l, patch, 1.0f, wv.data(), patch, col, l, 0.0f,
           out.data() + b * f * l, l);
      // add bias
      float* ob = out.data() + b * f * l;
      for (int64_t ch = 0; ch < f; ++ch) {
        const float bval = bv.data()[ch];
        for (int64_t i = 0; i < l; ++i) ob[ch * l + i] += bval;
      }
    }
  });

  return Variable::MakeOp(
      "Conv2d", out, {input, weight, bias},
      [cols, spec, n, c, h, w, oh, ow, l, patch, f, wv](const Tensor& g) {
        MG_TRACE_SCOPE("conv.backward");
        Tensor dx(Shape{n, c, h, w});
        Tensor dw(Shape{f, c, spec.kernel, spec.kernel});
        Tensor db(Shape{f});
        // dx: each sample owns a disjoint [c,h,w] slice and a col_grad
        // scratch from its worker's arena (the nested Gemm opens an inner
        // scope on the same arena), so the batch loop parallelizes
        // bit-identically with zero steady-state heap allocations.
        ParallelFor(0, n, 1, [&](int64_t b0, int64_t b1) {
          ScratchScope scope;
          float* col_grad =
              scope.AllocFloats(static_cast<size_t>(patch) * l);
          for (int64_t b = b0; b < b1; ++b) {
            MG_TRACE_SCOPE("conv.backward_sample");
            const float* gb = g.data() + b * f * l;
            // col_grad = W^T [patch, f] * g_b [f, l]; beta == 0 overwrites
            // every element, so the buffer needs no clearing between
            // samples.
            Gemm(true, false, patch, l, f, 1.0f, wv.data(), patch, gb, l,
                 0.0f, col_grad, l);
            tops::Col2Im(col_grad, spec, h, w, dx.data() + b * c * h * w);
          }
        });
        // dW/db accumulate across samples; the loop stays serial in b so the
        // accumulation order is fixed (bit-reproducible for any pool size),
        // while each sample's GEMM still parallelizes over its rows.
        for (int64_t b = 0; b < n; ++b) {
          const float* gb = g.data() + b * f * l;
          const float* col = cols->data() + b * patch * l;
          // dW += g_b [f, l] * col^T [l, patch]
          Gemm(false, true, f, patch, l, 1.0f, gb, l, col, l, 1.0f, dw.data(),
               patch);
          // db += row sums of g_b
          for (int64_t ch = 0; ch < f; ++ch) {
            double s = 0.0;
            for (int64_t i = 0; i < l; ++i) s += gb[ch * l + i];
            db.data()[ch] += static_cast<float>(s);
          }
        }
        return std::vector<Tensor>{std::move(dx), std::move(dw),
                                   std::move(db)};
      });
}

}  // namespace autograd
}  // namespace mocograd
