#ifndef MOCOGRAD_AUTOGRAD_OPS_H_
#define MOCOGRAD_AUTOGRAD_OPS_H_

#include <cstdint>
#include <vector>

#include "autograd/variable.h"
#include "tensor/ops.h"

namespace mocograd {
namespace autograd {

/// Differentiable op library. Each function runs the forward kernel from
/// tensor/ops.h and records a grad_fn on the tape. Binary elementwise ops
/// broadcast; their backward reduces gradients back to the operand shapes.

// --- Elementwise binary ----------------------------------------------------
Variable Add(const Variable& a, const Variable& b);
Variable Sub(const Variable& a, const Variable& b);
Variable Mul(const Variable& a, const Variable& b);
Variable Div(const Variable& a, const Variable& b);

// --- Scalar ------------------------------------------------------------------
Variable AddScalar(const Variable& a, float s);
Variable MulScalar(const Variable& a, float s);

// --- Unary -------------------------------------------------------------------
Variable Neg(const Variable& a);
Variable Exp(const Variable& a);
Variable Log(const Variable& a);
Variable Sqrt(const Variable& a);
Variable Tanh(const Variable& a);
Variable Sigmoid(const Variable& a);
Variable Relu(const Variable& a);
/// Smooth ReLU: log(1 + eˣ), computed stably.
Variable Softplus(const Variable& a);
/// Elementwise power with a constant exponent (inputs must be positive for
/// non-integer exponents).
Variable PowScalar(const Variable& a, float exponent);
/// Clamps to [lo, hi]; gradient is passed through strictly inside the
/// interval and zero outside (subgradient at the edges is 0).
Variable Clamp(const Variable& a, float lo, float hi);

// --- Linear algebra -----------------------------------------------------------
Variable MatMul(const Variable& a, const Variable& b);
Variable Transpose2D(const Variable& a);

// --- Shape ---------------------------------------------------------------------
Variable Reshape(const Variable& a, std::vector<int64_t> dims);
Variable Concat(const std::vector<Variable>& parts, int axis);
Variable SliceCols(const Variable& a, int64_t start, int64_t len);

/// [n, c, h, w] -> [n*h*w, c]; pairs dense-prediction conv outputs with the
/// row-wise losses below. Differentiable (inverse permutation backward).
Variable ChannelsToLast(const Variable& a);

// --- Indexing --------------------------------------------------------------------
/// Embedding lookup: rows of `table` ([num, dim]) selected by `indices`.
Variable GatherRows(const Variable& table, std::vector<int64_t> indices);

// --- Reductions ---------------------------------------------------------------------
/// Sum of all elements, as a [1] tensor.
Variable SumAll(const Variable& a);
/// Mean of all elements, as a [1] tensor.
Variable MeanAll(const Variable& a);
/// Sum over one axis (keepdims semantics of tensor/ops.h).
Variable SumAxis(const Variable& a, int axis, bool keepdims = false);
/// Mean over one axis.
Variable MeanAxis(const Variable& a, int axis, bool keepdims = false);

// --- Row-wise nonlinearities -----------------------------------------------------------
/// Softmax over the last axis of a [n, c] tensor (for gates).
Variable SoftmaxRows(const Variable& a);

// --- Losses (all return a [1] mean-reduced scalar) ----------------------------------
/// Mean softmax cross-entropy of [n, c] logits against integer labels.
Variable SoftmaxCrossEntropy(const Variable& logits,
                             std::vector<int64_t> labels);

/// Mean binary cross-entropy of logits against {0,1} targets (same shape),
/// computed in the numerically stable log-sum-exp form.
Variable BceWithLogits(const Variable& logits, Tensor targets);

/// Mean squared error against constant targets of the same shape.
Variable MseLoss(const Variable& pred, Tensor target);

/// Mean absolute error against constant targets of the same shape.
Variable L1Loss(const Variable& pred, Tensor target);

// --- Convolution -------------------------------------------------------------------------
/// 2-D convolution, NCHW. input [n,c,h,w], weight [f,c,k,k], bias [f].
Variable Conv2d(const Variable& input, const Variable& weight,
                const Variable& bias, const tops::Conv2dSpec& spec);

}  // namespace autograd
}  // namespace mocograd

#endif  // MOCOGRAD_AUTOGRAD_OPS_H_
