#include "autograd/variable.h"

#include <unordered_map>
#include <unordered_set>

#include "base/check.h"
#include "tensor/ops.h"

namespace mocograd {
namespace autograd {

Variable::Variable(Tensor value, bool requires_grad) {
  MG_CHECK(value.defined(), "Variable from undefined tensor");
  node_ = std::make_shared<Node>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

Variable Variable::MakeOp(
    const char* op, Tensor value, std::vector<Variable> parents,
    std::function<std::vector<Tensor>(const Tensor&)> grad_fn) {
  Variable v;
  v.node_ = std::make_shared<Node>();
  v.node_->value = std::move(value);
  v.node_->op = op;
  bool needs_grad = false;
  v.node_->parents.reserve(parents.size());
  for (const Variable& p : parents) {
    MG_CHECK(p.defined(), "undefined parent in op ", op);
    needs_grad = needs_grad || p.requires_grad();
    v.node_->parents.push_back(p.node_);
  }
  v.node_->requires_grad = needs_grad;
  if (needs_grad) v.node_->grad_fn = std::move(grad_fn);
  return v;
}

const Tensor& Variable::value() const {
  MG_CHECK(defined(), "value() on undefined Variable");
  return node_->value;
}

Tensor& Variable::mutable_value() {
  MG_CHECK(defined(), "mutable_value() on undefined Variable");
  return node_->value;
}

bool Variable::requires_grad() const {
  MG_CHECK(defined());
  return node_->requires_grad;
}

const Tensor& Variable::grad() const {
  MG_CHECK(defined());
  MG_CHECK(node_->grad.defined(), "grad() before any Backward touched node");
  return node_->grad;
}

bool Variable::has_grad() const { return defined() && node_->grad.defined(); }

Tensor& Variable::mutable_grad() {
  MG_CHECK(defined());
  if (!node_->grad.defined()) node_->grad = Tensor::Zeros(value().shape());
  return node_->grad;
}

void Variable::ZeroGrad() {
  MG_CHECK(defined());
  if (node_->grad.defined()) node_->grad.Fill(0.0f);
}

void Variable::Backward() const {
  Backward(Tensor::Ones(value().shape()));
}

void Variable::Backward(const Tensor& seed) const {
  BackwardImpl(seed, /*sink=*/nullptr);
}

void Variable::BackwardInto(GradSink* sink) const {
  BackwardInto(Tensor::Ones(value().shape()), sink);
}

void Variable::BackwardInto(const Tensor& seed, GradSink* sink) const {
  MG_CHECK(sink != nullptr, "BackwardInto requires a sink");
  BackwardImpl(seed, sink);
}

void Variable::BackwardImpl(const Tensor& seed, GradSink* sink) const {
  MG_CHECK(defined(), "Backward on undefined Variable");
  MG_CHECK(seed.shape() == value().shape(), "Backward seed shape ",
           seed.shape().ToString(), " vs value ", value().shape().ToString());
  if (!node_->requires_grad) return;

  // Iterative post-order DFS to get a topological order (children after all
  // of their users when reversed).
  std::vector<Node*> order;
  // Membership test only; traversal order comes from the explicit stack and
  // the `order` vector. mg_lint:allow(nondeterminism)
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({node_.get(), 0});
  visited.insert(node_.get());
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      Node* parent = f.node->parents[f.next_parent++].get();
      if (parent->requires_grad && !visited.count(parent)) {
        visited.insert(parent);
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(f.node);
      stack.pop_back();
    }
  }
  // `order` is post-order: parents before users; traverse in reverse.

  // Per-sweep upstream accumulators, separate from node->grad so that
  // repeated Backward calls on different roots (per-task losses) compose via
  // += on leaves only, while interior nodes get a fresh accumulator.
  // Keyed lookup only; the sweep walks `order`, never this map, so hash
  // order cannot affect accumulation order. mg_lint:allow(nondeterminism)
  std::unordered_map<Node*, Tensor> upstream;
  upstream.reserve(order.size());
  upstream[node_.get()] = seed.Clone();

  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    auto found = upstream.find(n);
    if (found == upstream.end()) continue;  // unreachable from the seed
    Tensor& g = found->second;

    // Leaves (and anything a user may later inspect) accumulate into the
    // persistent grad buffer — or, in sink mode, leaf gradients go into the
    // caller's map and the tape stays untouched (so concurrent sweeps over
    // one tape never write shared state). Both start from zeros and add in
    // the same sweep order, so the values are bit-identical.
    if (sink == nullptr) {
      if (!n->grad.defined()) n->grad = Tensor::Zeros(n->value.shape());
      tops::AddInPlace(n->grad, g);
    } else if (!n->grad_fn) {
      Tensor& slot = (*sink)[n];
      if (!slot.defined()) slot = Tensor::Zeros(n->value.shape());
      tops::AddInPlace(slot, g);
    }

    if (!n->grad_fn) continue;
    std::vector<Tensor> parent_grads = n->grad_fn(g);
    MG_CHECK_EQ(parent_grads.size(), n->parents.size(), "grad_fn arity in op ",
                n->op);
    for (size_t i = 0; i < n->parents.size(); ++i) {
      Node* p = n->parents[i].get();
      if (!p->requires_grad) continue;
      Tensor& pg = parent_grads[i];
      MG_CHECK(pg.defined(), "grad_fn of ", n->op,
               " returned undefined grad for a requires_grad parent");
      MG_CHECK(pg.shape() == p->value.shape(), "grad shape mismatch in op ",
               n->op, ": ", pg.shape().ToString(), " vs ",
               p->value.shape().ToString());
      auto slot = upstream.find(p);
      if (slot == upstream.end()) {
        upstream.emplace(p, std::move(pg));
      } else {
        tops::AddInPlace(slot->second, pg);
      }
    }
    upstream.erase(found);
  }
}

}  // namespace autograd
}  // namespace mocograd
