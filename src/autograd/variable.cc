#include "autograd/variable.h"

#include "autograd/executor.h"
#include "base/check.h"

namespace mocograd {
namespace autograd {

Variable::Variable(Tensor value, bool requires_grad) {
  MG_CHECK(value.defined(), "Variable from undefined tensor");
  node_ = std::make_shared<Node>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

Variable Variable::MakeOp(
    const char* op, Tensor value, std::vector<Variable> parents,
    std::function<std::vector<Tensor>(const Tensor&)> grad_fn) {
  Variable v;
  v.node_ = std::make_shared<Node>();
  v.node_->value = std::move(value);
  v.node_->op = op;
  bool needs_grad = false;
  v.node_->parents.reserve(parents.size());
  for (const Variable& p : parents) {
    MG_CHECK(p.defined(), "undefined parent in op ", op);
    needs_grad = needs_grad || p.requires_grad();
    v.node_->parents.push_back(p.node_);
  }
  v.node_->requires_grad = needs_grad;
  if (needs_grad) v.node_->grad_fn = std::move(grad_fn);
  return v;
}

const Tensor& Variable::value() const {
  MG_CHECK(defined(), "value() on undefined Variable");
  return node_->value;
}

Tensor& Variable::mutable_value() {
  MG_CHECK(defined(), "mutable_value() on undefined Variable");
  return node_->value;
}

bool Variable::requires_grad() const {
  MG_CHECK(defined());
  return node_->requires_grad;
}

const Tensor& Variable::grad() const {
  MG_CHECK(defined());
  MG_CHECK(node_->grad.defined(), "grad() before any Backward touched node");
  return node_->grad;
}

bool Variable::has_grad() const { return defined() && node_->grad.defined(); }

Tensor& Variable::mutable_grad() {
  MG_CHECK(defined());
  if (!node_->grad.defined()) node_->grad = Tensor::Zeros(value().shape());
  return node_->grad;
}

void Variable::ZeroGrad() {
  MG_CHECK(defined());
  if (node_->grad.defined()) node_->grad.Fill(0.0f);
}

void Variable::Backward() const {
  Backward(Tensor::Ones(value().shape()));
}

void Variable::Backward(const Tensor& seed) const {
  BackwardImpl(seed, /*sink=*/nullptr);
}

void Variable::BackwardInto(GradSink* sink) const {
  BackwardInto(Tensor::Ones(value().shape()), sink);
}

void Variable::BackwardInto(const Tensor& seed, GradSink* sink) const {
  MG_CHECK(sink != nullptr, "BackwardInto requires a sink");
  BackwardImpl(seed, sink);
}

void Variable::BackwardImpl(const Tensor& seed, GradSink* sink) const {
  MG_CHECK(defined(), "Backward on undefined Variable");
  MG_CHECK(seed.shape() == value().shape(), "Backward seed shape ",
           seed.shape().ToString(), " vs value ", value().shape().ToString());
  if (!node_->requires_grad) return;
  // The sweep itself lives in autograd/executor.cc: a linear tape replay
  // (seq) or the dependency-counted ready-queue engine (ready, the default),
  // selected by MOCOGRAD_AUTOGRAD_EXEC / SetBackwardExecutor. Both produce
  // bit-identical gradients — see docs/AUTOGRAD.md.
  RunBackward(node_.get(), seed, sink);
}

}  // namespace autograd
}  // namespace mocograd
