#ifndef MOCOGRAD_AUTOGRAD_VARIABLE_H_
#define MOCOGRAD_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "tensor/tensor.h"

namespace mocograd {
namespace autograd {

/// One node of the dynamically built (define-by-run) computation tape.
struct Node {
  Tensor value;
  /// Gradient accumulator; lazily allocated on first write.
  Tensor grad;
  bool requires_grad = false;
  /// Op name for diagnostics ("leaf" for parameters/inputs).
  const char* op = "leaf";
  std::vector<std::shared_ptr<Node>> parents;
  /// Maps the upstream gradient to one gradient per parent (same order).
  /// Null for leaves.
  std::function<std::vector<Tensor>(const Tensor& grad_out)> grad_fn;
};

/// Handle to a tape node. Variables are cheap shared references: copying a
/// Variable aliases the same node (value and gradient), exactly like
/// torch.Tensor. Parameters are leaf Variables with requires_grad=true.
class Variable {
 public:
  Variable() = default;

  /// Leaf node wrapping `value`.
  explicit Variable(Tensor value, bool requires_grad = false);

  /// Interior node factory used by the op library.
  static Variable MakeOp(
      const char* op, Tensor value, std::vector<Variable> parents,
      std::function<std::vector<Tensor>(const Tensor&)> grad_fn);

  bool defined() const { return node_ != nullptr; }

  const Tensor& value() const;
  /// Mutable access to the stored value; only sensible on leaves (parameter
  /// updates) — mutating interior values invalidates the tape.
  Tensor& mutable_value();

  const Shape& shape() const { return value().shape(); }
  int64_t NumElements() const { return value().NumElements(); }

  bool requires_grad() const;

  /// Gradient accumulated by the last Backward(); MG_CHECK-fails when no
  /// gradient has been produced. Use has_grad() to probe.
  const Tensor& grad() const;
  bool has_grad() const;
  /// Gradient buffer, allocated (zero) on demand.
  Tensor& mutable_grad();

  /// Clears the accumulated gradient (keeps the buffer).
  void ZeroGrad();

  /// Reverse-mode sweep from this node, seeding with ones. Gradients
  /// accumulate (+=) into every reachable node with requires_grad, so
  /// calling Backward on several roots sums their contributions.
  void Backward() const;

  /// Reverse-mode sweep with an explicit seed of the same shape.
  void Backward(const Tensor& seed) const;

  /// Gradient destination for BackwardInto: one accumulator per reached
  /// leaf, keyed by tape node. Lookup-only — consumers find() by node and
  /// never iterate, so the hash order cannot leak into results.
  /// mg_analyze:allow(nondeterminism)
  using GradSink = std::unordered_map<const Node*, Tensor>;

  /// Reverse-mode sweep like Backward(), but leaf gradients accumulate into
  /// `*sink` (keyed by node) instead of the nodes' persistent grad buffers;
  /// the tape itself is never written. Because sweeps only read the tape,
  /// several BackwardInto calls over the *same* tape may run concurrently
  /// from different threads with distinct sinks — this is what the trainer's
  /// parallel per-task backward builds on. A sink's contents are
  /// bit-identical to what Backward() would have left in the leaves' grad
  /// buffers (from a zeroed state) on either executor: the default
  /// ready-queue engine runs independent tape branches concurrently but
  /// merges gradient contributions through fixed per-edge slots in the
  /// sequential engine's accumulation order (autograd/executor.h,
  /// docs/AUTOGRAD.md).
  void BackwardInto(GradSink* sink) const;
  void BackwardInto(const Tensor& seed, GradSink* sink) const;

  /// Underlying tape node (for the op library and tests).
  const std::shared_ptr<Node>& node() const { return node_; }

 private:
  /// Shared entry behind Backward/BackwardInto; sink == nullptr selects the
  /// persistent node->grad destination. Dispatches to the executor selected
  /// by MOCOGRAD_AUTOGRAD_EXEC (autograd/executor.h).
  void BackwardImpl(const Tensor& seed, GradSink* sink) const;

  std::shared_ptr<Node> node_;
};

}  // namespace autograd
}  // namespace mocograd

#endif  // MOCOGRAD_AUTOGRAD_VARIABLE_H_
