#ifndef MOCOGRAD_BASE_BF16_H_
#define MOCOGRAD_BASE_BF16_H_

// bfloat16 storage format (docs/SERVING.md "Reduced precision"): the top 16
// bits of an IEEE-754 binary32 — same exponent range, 8-bit significand.
// Used by the serving layer to store frozen weights at half the memory
// traffic; all arithmetic stays fp32 (widening is exact, so every kernel
// tier widens to the identical float).
//
// Conversion semantics:
//   - Bf16FromF32: round-to-nearest-even on the truncated 16 mantissa bits.
//     NaNs are canonicalized to a quiet NaN with a non-zero bf16 mantissa
//     (plain RNE could round a signaling-NaN payload to zero mantissa,
//     i.e. infinity). Inf, ±0 and denormals round like any other value —
//     a float denormal below half the smallest bf16 denormal rounds to ±0.
//   - F32FromBf16: exact (shift back into the high half, low bits zero).

#include <cstdint>
#include <cstring>

namespace mocograd {

inline uint16_t Bf16FromF32(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  if ((bits & 0x7F800000u) == 0x7F800000u && (bits & 0x007FFFFFu) != 0) {
    return static_cast<uint16_t>((bits >> 16) | 0x0040u);  // quiet NaN
  }
  // Round to nearest, ties to even on bit 16.
  bits += 0x7FFFu + ((bits >> 16) & 1u);
  return static_cast<uint16_t>(bits >> 16);
}

inline float F32FromBf16(uint16_t v) {
  const uint32_t bits = static_cast<uint32_t>(v) << 16;
  float out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

}  // namespace mocograd

#endif  // MOCOGRAD_BASE_BF16_H_
