#include "base/check.h"

#include <cstdio>
#include <cstdlib>

namespace mocograd {
namespace internal {

void CheckFail(const char* file, int line, const char* expr,
               const std::string& message) {
  std::fprintf(stderr, "[MG_CHECK failed] %s:%d: %s %s\n", file, line, expr,
               message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace mocograd
