#ifndef MOCOGRAD_BASE_CHECK_H_
#define MOCOGRAD_BASE_CHECK_H_

#include <sstream>
#include <string>

namespace mocograd {
namespace internal {

/// Formats the failure banner and aborts the process. Used by the MG_CHECK
/// family below; never returns.
[[noreturn]] void CheckFail(const char* file, int line, const char* expr,
                            const std::string& message);

/// Concatenates an arbitrary list of streamable values into one string.
template <typename... Args>
std::string StrCatForCheck(const Args&... args) {
  std::ostringstream oss;
  ((oss << args), ...);
  return oss.str();
}

}  // namespace internal
}  // namespace mocograd

/// Aborts with a diagnostic when `cond` is false. Additional arguments are
/// streamed into the failure message. These are programmer-error assertions
/// (shape mismatches, invariant violations); recoverable errors use Status.
#define MG_CHECK(cond, ...)                                           \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::mocograd::internal::CheckFail(                                \
          __FILE__, __LINE__, #cond,                                  \
          ::mocograd::internal::StrCatForCheck(__VA_ARGS__));         \
    }                                                                 \
  } while (0)

#define MG_CHECK_OP(op, a, b, ...)                                    \
  do {                                                                \
    const auto& mg_check_a_ = (a);                                    \
    const auto& mg_check_b_ = (b);                                    \
    if (!(mg_check_a_ op mg_check_b_)) {                              \
      ::mocograd::internal::CheckFail(                                \
          __FILE__, __LINE__, #a " " #op " " #b,                      \
          ::mocograd::internal::StrCatForCheck(                       \
              "(", mg_check_a_, " vs ", mg_check_b_, ") ",            \
              ##__VA_ARGS__));                                        \
    }                                                                 \
  } while (0)

#define MG_CHECK_EQ(a, b, ...) MG_CHECK_OP(==, a, b, ##__VA_ARGS__)
#define MG_CHECK_NE(a, b, ...) MG_CHECK_OP(!=, a, b, ##__VA_ARGS__)
#define MG_CHECK_LT(a, b, ...) MG_CHECK_OP(<, a, b, ##__VA_ARGS__)
#define MG_CHECK_LE(a, b, ...) MG_CHECK_OP(<=, a, b, ##__VA_ARGS__)
#define MG_CHECK_GT(a, b, ...) MG_CHECK_OP(>, a, b, ##__VA_ARGS__)
#define MG_CHECK_GE(a, b, ...) MG_CHECK_OP(>=, a, b, ##__VA_ARGS__)

/// Unconditional failure, for unreachable branches.
#define MG_FATAL(...)                                                 \
  ::mocograd::internal::CheckFail(                                    \
      __FILE__, __LINE__, "FATAL",                                    \
      ::mocograd::internal::StrCatForCheck(__VA_ARGS__))

/// Debug-only checks: same diagnostics as MG_CHECK, compiled out of Release
/// builds so hot paths (arena allocation, microkernel setup) pay nothing.
/// Active in Debug builds and in every sanitized / poisoned configuration
/// (MOCOGRAD_DEBUG_POISON), so the sanitizer CI lanes exercise them on the
/// full test suite. Condition and arguments are NOT evaluated when disabled
/// — never put side effects inside an MG_DCHECK.
#if !defined(NDEBUG) || defined(MOCOGRAD_DEBUG_POISON)
#define MOCOGRAD_DCHECK_ENABLED 1
#else
#define MOCOGRAD_DCHECK_ENABLED 0
#endif

#if MOCOGRAD_DCHECK_ENABLED
#define MG_DCHECK(cond, ...) MG_CHECK(cond, ##__VA_ARGS__)
#define MG_DCHECK_EQ(a, b, ...) MG_CHECK_EQ(a, b, ##__VA_ARGS__)
#define MG_DCHECK_NE(a, b, ...) MG_CHECK_NE(a, b, ##__VA_ARGS__)
#define MG_DCHECK_LT(a, b, ...) MG_CHECK_LT(a, b, ##__VA_ARGS__)
#define MG_DCHECK_LE(a, b, ...) MG_CHECK_LE(a, b, ##__VA_ARGS__)
#define MG_DCHECK_GT(a, b, ...) MG_CHECK_GT(a, b, ##__VA_ARGS__)
#define MG_DCHECK_GE(a, b, ...) MG_CHECK_GE(a, b, ##__VA_ARGS__)
#else
#define MG_DCHECK(cond, ...) do { (void)sizeof(!(cond)); } while (0)
#define MG_DCHECK_EQ(a, b, ...) do { (void)sizeof((a) == (b)); } while (0)
#define MG_DCHECK_NE(a, b, ...) do { (void)sizeof((a) != (b)); } while (0)
#define MG_DCHECK_LT(a, b, ...) do { (void)sizeof((a) < (b)); } while (0)
#define MG_DCHECK_LE(a, b, ...) do { (void)sizeof((a) <= (b)); } while (0)
#define MG_DCHECK_GT(a, b, ...) do { (void)sizeof((a) > (b)); } while (0)
#define MG_DCHECK_GE(a, b, ...) do { (void)sizeof((a) >= (b)); } while (0)
#endif

#endif  // MOCOGRAD_BASE_CHECK_H_
