#ifndef MOCOGRAD_BASE_CHECK_H_
#define MOCOGRAD_BASE_CHECK_H_

#include <sstream>
#include <string>

namespace mocograd {
namespace internal {

/// Formats the failure banner and aborts the process. Used by the MG_CHECK
/// family below; never returns.
[[noreturn]] void CheckFail(const char* file, int line, const char* expr,
                            const std::string& message);

/// Concatenates an arbitrary list of streamable values into one string.
template <typename... Args>
std::string StrCatForCheck(const Args&... args) {
  std::ostringstream oss;
  ((oss << args), ...);
  return oss.str();
}

}  // namespace internal
}  // namespace mocograd

/// Aborts with a diagnostic when `cond` is false. Additional arguments are
/// streamed into the failure message. These are programmer-error assertions
/// (shape mismatches, invariant violations); recoverable errors use Status.
#define MG_CHECK(cond, ...)                                           \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::mocograd::internal::CheckFail(                                \
          __FILE__, __LINE__, #cond,                                  \
          ::mocograd::internal::StrCatForCheck(__VA_ARGS__));         \
    }                                                                 \
  } while (0)

#define MG_CHECK_OP(op, a, b, ...)                                    \
  do {                                                                \
    const auto& mg_check_a_ = (a);                                    \
    const auto& mg_check_b_ = (b);                                    \
    if (!(mg_check_a_ op mg_check_b_)) {                              \
      ::mocograd::internal::CheckFail(                                \
          __FILE__, __LINE__, #a " " #op " " #b,                      \
          ::mocograd::internal::StrCatForCheck(                       \
              "(", mg_check_a_, " vs ", mg_check_b_, ") ",            \
              ##__VA_ARGS__));                                        \
    }                                                                 \
  } while (0)

#define MG_CHECK_EQ(a, b, ...) MG_CHECK_OP(==, a, b, ##__VA_ARGS__)
#define MG_CHECK_NE(a, b, ...) MG_CHECK_OP(!=, a, b, ##__VA_ARGS__)
#define MG_CHECK_LT(a, b, ...) MG_CHECK_OP(<, a, b, ##__VA_ARGS__)
#define MG_CHECK_LE(a, b, ...) MG_CHECK_OP(<=, a, b, ##__VA_ARGS__)
#define MG_CHECK_GT(a, b, ...) MG_CHECK_OP(>, a, b, ##__VA_ARGS__)
#define MG_CHECK_GE(a, b, ...) MG_CHECK_OP(>=, a, b, ##__VA_ARGS__)

/// Unconditional failure, for unreachable branches.
#define MG_FATAL(...)                                                 \
  ::mocograd::internal::CheckFail(                                    \
      __FILE__, __LINE__, "FATAL",                                    \
      ::mocograd::internal::StrCatForCheck(__VA_ARGS__))

/// Debug-only checks: same diagnostics as MG_CHECK, compiled out of Release
/// builds so hot paths (arena allocation, microkernel setup) pay nothing.
/// Active in Debug builds and in every sanitized / poisoned configuration
/// (MOCOGRAD_DEBUG_POISON), so the sanitizer CI lanes exercise them on the
/// full test suite. Condition and arguments are NOT evaluated when disabled
/// — never put side effects inside an MG_DCHECK.
#if !defined(NDEBUG) || defined(MOCOGRAD_DEBUG_POISON)
#define MOCOGRAD_DCHECK_ENABLED 1
#else
#define MOCOGRAD_DCHECK_ENABLED 0
#endif

#if MOCOGRAD_DCHECK_ENABLED
#define MG_DCHECK(cond, ...) MG_CHECK(cond, ##__VA_ARGS__)
#define MG_DCHECK_EQ(a, b, ...) MG_CHECK_EQ(a, b, ##__VA_ARGS__)
#define MG_DCHECK_NE(a, b, ...) MG_CHECK_NE(a, b, ##__VA_ARGS__)
#define MG_DCHECK_LT(a, b, ...) MG_CHECK_LT(a, b, ##__VA_ARGS__)
#define MG_DCHECK_LE(a, b, ...) MG_CHECK_LE(a, b, ##__VA_ARGS__)
#define MG_DCHECK_GT(a, b, ...) MG_CHECK_GT(a, b, ##__VA_ARGS__)
#define MG_DCHECK_GE(a, b, ...) MG_CHECK_GE(a, b, ##__VA_ARGS__)
#else
#define MG_DCHECK(cond, ...) do { (void)sizeof(!(cond)); } while (0)
#define MG_DCHECK_EQ(a, b, ...) do { (void)sizeof((a) == (b)); } while (0)
#define MG_DCHECK_NE(a, b, ...) do { (void)sizeof((a) != (b)); } while (0)
#define MG_DCHECK_LT(a, b, ...) do { (void)sizeof((a) < (b)); } while (0)
#define MG_DCHECK_LE(a, b, ...) do { (void)sizeof((a) <= (b)); } while (0)
#define MG_DCHECK_GT(a, b, ...) do { (void)sizeof((a) > (b)); } while (0)
#define MG_DCHECK_GE(a, b, ...) do { (void)sizeof((a) >= (b)); } while (0)
#endif

// ---------------------------------------------------------------------------
// Thread-safety capability annotations (Clang -Wthread-safety).
//
// The fork–join contract (docs/ARCHITECTURE.md) and the lock discipline of
// the concurrent components (thread pool, autograd executor, micro-batcher,
// tracer, metrics registry, telemetry sink, watchdog) are proved at compile
// time on Clang: fields carry MG_GUARDED_BY(mu), functions that expect the
// lock held carry MG_REQUIRES(mu), and the base/mutex.h wrapper types carry
// the acquire/release capability transitions. GCC and MSVC compile the
// macros to nothing — annotations never change codegen, only diagnostics.
// The release CI leg builds with Clang and -Werror=thread-safety so a
// guarded field touched without its lock fails the build
// (docs/CORRECTNESS.md "Lock discipline").

#if defined(__clang__)
#define MG_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define MG_THREAD_ANNOTATION_(x)
#endif

/// Marks a type as a lockable capability ("mutex").
#define MG_CAPABILITY(x) MG_THREAD_ANNOTATION_(capability(x))
/// Marks a RAII type whose constructor acquires and destructor releases.
#define MG_SCOPED_CAPABILITY MG_THREAD_ANNOTATION_(scoped_lockable)
/// Field/variable is protected by the given capability.
#define MG_GUARDED_BY(x) MG_THREAD_ANNOTATION_(guarded_by(x))
/// Pointed-to data is protected by the given capability.
#define MG_PT_GUARDED_BY(x) MG_THREAD_ANNOTATION_(pt_guarded_by(x))
/// Function requires the capability held on entry (and keeps it held).
#define MG_REQUIRES(...) \
  MG_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
/// Function acquires the capability; caller must not already hold it.
#define MG_ACQUIRE(...) \
  MG_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
/// Function releases the capability; caller must hold it.
#define MG_RELEASE(...) \
  MG_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns the given value.
#define MG_TRY_ACQUIRE(...) \
  MG_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
/// Function must NOT be called with the capability held (deadlock guard).
#define MG_EXCLUDES(...) MG_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
/// Return value is the capability guarding the annotated data.
#define MG_RETURN_CAPABILITY(x) MG_THREAD_ANNOTATION_(lock_returned(x))
/// Escape hatch: the function's locking is correct for reasons the analysis
/// cannot see (pair with a comment saying why).
#define MG_NO_THREAD_SAFETY_ANALYSIS \
  MG_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // MOCOGRAD_BASE_CHECK_H_
