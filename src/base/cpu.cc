#include "base/cpu.h"

#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#define MOCOGRAD_CPU_X86_64 1
#endif

namespace mocograd {
namespace cpu {

namespace {

#if defined(MOCOGRAD_CPU_X86_64)

// XCR0 via XGETBV (only legal once CPUID reports OSXSAVE). Inline asm
// instead of the _xgetbv intrinsic so the probe TU needs no -mxsave flag.
uint64_t ReadXcr0() {
  uint32_t eax = 0, edx = 0;
  __asm__ __volatile__("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<uint64_t>(edx) << 32) | eax;
}

Features Probe() {
  Features f;
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return f;
  f.sse2 = (edx & (1u << 26)) != 0;
  f.sse42 = (ecx & (1u << 20)) != 0;
  f.fma = (ecx & (1u << 12)) != 0;
  f.avx = (ecx & (1u << 28)) != 0;
  const bool osxsave = (ecx & (1u << 27)) != 0;

  unsigned max_leaf = __get_cpuid_max(0, nullptr);
  if (max_leaf >= 7) {
    __cpuid_count(7, 0, eax, ebx, ecx, edx);
    f.avx2 = (ebx & (1u << 5)) != 0;
    f.avx512f = (ebx & (1u << 16)) != 0;
    f.avx512dq = (ebx & (1u << 17)) != 0;
    f.avx512bw = (ebx & (1u << 30)) != 0;
    f.avx512vl = (ebx & (1u << 31)) != 0;
  }

  if (osxsave) {
    const uint64_t xcr0 = ReadXcr0();
    // Bits 1-2: SSE (XMM) + AVX (YMM) state; bits 5-7 add the AVX-512
    // opmask / upper-ZMM / high-16-ZMM state.
    f.os_avx = (xcr0 & 0x6) == 0x6;
    f.os_avx512 = f.os_avx && (xcr0 & 0xE0) == 0xE0;
  }
  return f;
}

#else  // !MOCOGRAD_CPU_X86_64

Features Probe() { return Features{}; }

#endif

}  // namespace

const Features& GetFeatures() {
  static const Features features = Probe();
  return features;
}

}  // namespace cpu
}  // namespace mocograd
