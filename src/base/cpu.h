#ifndef MOCOGRAD_BASE_CPU_H_
#define MOCOGRAD_BASE_CPU_H_

// Startup CPU-feature probe behind the runtime ISA dispatch (docs/SIMD.md
// "Runtime dispatch"). Probed once per process via CPUID/XGETBV on x86-64;
// on other architectures every x86 field is false. The probe answers two
// questions the kernel-tier selector (base/simd.cc) needs: which ISA
// extensions the CPU implements, and whether the OS actually saves the
// wider register state (an AVX-512 CPU under an OS that does not preserve
// ZMM registers must not run AVX-512 code).

namespace mocograd {
namespace cpu {

struct Features {
  // Instruction-set extensions (CPUID leaves 1 and 7).
  bool sse2 = false;
  bool sse42 = false;
  bool avx = false;
  bool fma = false;
  bool avx2 = false;
  bool avx512f = false;
  bool avx512dq = false;
  bool avx512bw = false;
  bool avx512vl = false;
  // OS register-state support (XGETBV XCR0): os_avx requires the XMM+YMM
  // save bits, os_avx512 additionally the opmask+ZMM bits.
  bool os_avx = false;
  bool os_avx512 = false;
};

/// The host's features, probed on first call and cached for the process.
const Features& GetFeatures();

}  // namespace cpu
}  // namespace mocograd

#endif  // MOCOGRAD_BASE_CPU_H_
