#include "base/env.h"

#include <cstdlib>

namespace mocograd {

int GetEnvInt(const char* name, int fallback, int min_value, int max_value) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0') return fallback;
  if (v < min_value || v > max_value) return fallback;
  return static_cast<int>(v);
}

std::vector<int> GetEnvIntList(const char* name, int min_value,
                               int max_value) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return {};
  std::vector<int> out;
  const char* p = env;
  for (;;) {
    char* end = nullptr;
    const long v = std::strtol(p, &end, 10);
    if (end == p || v < min_value || v > max_value) return {};
    out.push_back(static_cast<int>(v));
    if (*end == '\0') return out;
    if (*end != ',') return {};
    p = end + 1;
  }
}

std::string GetEnvString(const char* name, const std::string& fallback) {
  const char* env = std::getenv(name);
  return env == nullptr ? fallback : std::string(env);
}

}  // namespace mocograd
