#ifndef MOCOGRAD_BASE_ENV_H_
#define MOCOGRAD_BASE_ENV_H_

#include <string>
#include <vector>

namespace mocograd {

/// Integer environment knob: returns the value of `name` when it parses as
/// an integer in [min_value, max_value], otherwise `fallback`. Malformed or
/// out-of-range values fall back silently — an env typo must never abort a
/// training run (same contract MOCOGRAD_NUM_THREADS always had).
int GetEnvInt(const char* name, int fallback, int min_value, int max_value);

/// Comma-separated integer-list environment knob (e.g.
/// MOCOGRAD_GEMM_BLOCK="96,256,256"). Returns the parsed values when every
/// element is an integer in [min_value, max_value]; returns an empty vector
/// when the variable is unset, empty, or any element is malformed or out of
/// range — same fall-back-silently contract as GetEnvInt.
std::vector<int> GetEnvIntList(const char* name, int min_value, int max_value);

/// String environment knob: the value of `name`, or `fallback` when the
/// variable is unset. An empty value is returned as-is (callers treat empty
/// as "off").
std::string GetEnvString(const char* name, const std::string& fallback = "");

}  // namespace mocograd

#endif  // MOCOGRAD_BASE_ENV_H_
