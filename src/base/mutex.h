#ifndef MOCOGRAD_BASE_MUTEX_H_
#define MOCOGRAD_BASE_MUTEX_H_

// Annotated locking vocabulary for the concurrent components.
//
// std::mutex works, but Clang's -Wthread-safety cannot see through it on
// libstdc++ (the standard headers carry no capability annotations), so a
// guarded field would warn on every access. These thin wrappers carry the
// MG_CAPABILITY / MG_ACQUIRE / MG_RELEASE transitions from base/check.h and
// compile to the exact same std::mutex / std::condition_variable operations
// — zero overhead, and on Clang the compiler proves that every
// MG_GUARDED_BY field access holds the right lock
// (docs/CORRECTNESS.md "Lock discipline").
//
// Usage pattern:
//
//   Mutex mu_;
//   CondVar cv_;
//   std::deque<Task> queue_ MG_GUARDED_BY(mu_);
//
//   void Push(Task t) {
//     MutexLock lk(&mu_);
//     queue_.push_back(std::move(t));
//     cv_.NotifyOne();
//   }
//   void DrainLocked() MG_REQUIRES(mu_);   // caller holds mu_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "base/check.h"

namespace mocograd {

/// A std::mutex carrying thread-safety capability annotations. Lock/Unlock
/// are public for the rare hand-over-hand sections (e.g. the micro-batcher
/// dropping the lock around a batch execution); scoped sections use
/// MutexLock.
class MG_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() MG_ACQUIRE() { mu_.lock(); }
  void Unlock() MG_RELEASE() { mu_.unlock(); }
  bool TryLock() MG_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped handle, for CondVar's internal re-binding only. Callers
  /// never lock through it — that would bypass the analysis.
  std::mutex& native_handle() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII scoped lock over Mutex (the annotated std::lock_guard).
class MG_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) MG_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() MG_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable for Mutex. Wait* must be called with the mutex held
/// (MG_REQUIRES) and returns with it held — internally the wait adopts the
/// native handle so the fast std::condition_variable path is kept (no
/// condition_variable_any indirection).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, re-acquires `mu`.
  /// Spurious wakeups possible — always wait in a predicate loop.
  void Wait(Mutex& mu) MG_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.native_handle(), std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // the caller still owns the lock, per MG_REQUIRES
  }

  /// Predicate-loop wait: returns once `pred()` holds (pred is evaluated
  /// with the lock held).
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) MG_REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  /// Timed wait; returns std::cv_status::timeout when `deadline` passed.
  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      MG_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.native_handle(), std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lk, deadline);
    lk.release();
    return status;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mocograd

#endif  // MOCOGRAD_BASE_MUTEX_H_
