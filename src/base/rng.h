#ifndef MOCOGRAD_BASE_RNG_H_
#define MOCOGRAD_BASE_RNG_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace mocograd {

/// Deterministic pseudo-random source. Every stochastic component in the
/// library (initializers, samplers, data simulators, RLW, GradDrop) draws
/// from an explicitly passed Rng so experiments are reproducible bit-for-bit
/// given a seed; there is no global RNG state.
class Rng {
 public:
  explicit Rng(uint64_t seed) : gen_(seed) {}

  /// Uniform float in [lo, hi).
  float Uniform(float lo = 0.0f, float hi = 1.0f) {
    return std::uniform_real_distribution<float>(lo, hi)(gen_);
  }

  /// Gaussian sample.
  float Normal(float mean = 0.0f, float stddev = 1.0f) {
    return std::normal_distribution<float>(mean, stddev)(gen_);
  }

  /// Uniform integer in [lo, hi) — half-open like the rest of the library.
  int UniformInt(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi - 1)(gen_);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return std::bernoulli_distribution(p)(gen_); }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), gen_);
  }

  /// Raw 64-bit draw, e.g. to seed a child Rng.
  uint64_t NextUint64() { return gen_(); }

  /// Derives an independent child stream; used to give each dataset split /
  /// component its own reproducible stream.
  Rng Fork() { return Rng(gen_() ^ 0x9e3779b97f4a7c15ull); }

 private:
  std::mt19937_64 gen_;
};

}  // namespace mocograd

#endif  // MOCOGRAD_BASE_RNG_H_
