#include "base/scratch.h"

#include <atomic>
#include <new>

#include "base/check.h"

namespace mocograd {

namespace {

// First chunk size. Big enough that a typical GEMM's packed operands fit
// without growth, small enough that idle threads don't hoard memory.
constexpr size_t kFirstChunkBytes = size_t{1} << 20;  // 1 MiB

std::atomic<int64_t> g_total_chunk_allocs{0};

size_t AlignUp(size_t v, size_t align) { return (v + align - 1) & ~(align - 1); }

}  // namespace

ScratchArena::~ScratchArena() {
  for (Chunk& c : chunks_) {
    ::operator delete[](c.data, std::align_val_t{kDefaultAlign});
  }
}

ScratchArena& ScratchArena::ThreadLocal() {
  static thread_local ScratchArena arena;
  return arena;
}

void ScratchArena::Grow(size_t min_bytes) {
  size_t size = chunks_.empty() ? kFirstChunkBytes : chunks_.back().size * 2;
  if (size < min_bytes) size = AlignUp(min_bytes, kFirstChunkBytes);
  Chunk c;
  c.data = static_cast<std::byte*>(
      ::operator new[](size, std::align_val_t{kDefaultAlign}));
  c.size = size;
  chunks_.push_back(c);
  g_total_chunk_allocs.fetch_add(1, std::memory_order_relaxed);
  active_chunk_ = chunks_.size() - 1;
  offset_ = 0;
}

void* ScratchArena::Alloc(size_t bytes, size_t align) {
  MG_CHECK_GE(align, 1u);
  MG_CHECK((align & (align - 1)) == 0, "scratch alignment must be a power of 2");
  // Chunk bases are kDefaultAlign-aligned, so offset alignment suffices for
  // any align <= kDefaultAlign; larger requests still work because AlignUp
  // is applied to the offset of an aligned base only when align divides it.
  MG_CHECK_LE(align, kDefaultAlign, "scratch alignment above one cache line");
  while (active_chunk_ < chunks_.size()) {
    Chunk& c = chunks_[active_chunk_];
    const size_t at = AlignUp(offset_, align);
    if (at + bytes <= c.size) {
      offset_ = at + bytes;
      return c.data + at;
    }
    // Advance into the next (strictly larger) pre-grown chunk, if any.
    ++active_chunk_;
    offset_ = 0;
  }
  Grow(bytes);
  offset_ = bytes;  // Grow aligned the base; bytes start at offset 0
  return chunks_[active_chunk_].data;
}

void ScratchArena::Release(const Marker& m) {
  MG_CHECK_LE(m.chunk, active_chunk_, "scratch marker released out of order");
  active_chunk_ = m.chunk;
  offset_ = m.offset;
}

size_t ScratchArena::capacity_bytes() const {
  size_t total = 0;
  for (const Chunk& c : chunks_) total += c.size;
  return total;
}

int64_t ScratchArena::TotalChunkAllocs() {
  return g_total_chunk_allocs.load(std::memory_order_relaxed);
}

}  // namespace mocograd
