#include "base/scratch.h"

#include <atomic>
#include <cstring>
#include <new>

#include "base/check.h"

namespace mocograd {

namespace {

// First chunk size. Big enough that a typical GEMM's packed operands fit
// without growth, small enough that idle threads don't hoard memory.
constexpr size_t kFirstChunkBytes = size_t{1} << 20;  // 1 MiB

// Poisoned builds place this many canary bytes after every allocation
// (verified on Release). One cache line, so kDefaultAlign-aligned
// allocations stay cache-line spaced with the canary in between.
constexpr size_t kCanaryBytes = 64;
constexpr unsigned char kCanaryByte = 0xcb;

// Extra bytes Alloc reserves past the user region in poisoned builds.
constexpr size_t kAllocSlack =
    ScratchArena::PoisoningEnabled() ? kCanaryBytes : 0;

std::atomic<int64_t> g_total_chunk_allocs{0};

size_t AlignUp(size_t v, size_t align) { return (v + align - 1) & ~(align - 1); }

// Fills [p, p + bytes) with the signaling-NaN poison pattern (whole words;
// a non-multiple-of-4 tail gets 0xa5 filler bytes).
void PoisonFill(std::byte* p, size_t bytes) {
  const uint32_t word = ScratchArena::kPoisonPattern;
  size_t i = 0;
  for (; i + sizeof(word) <= bytes; i += sizeof(word)) {
    std::memcpy(p + i, &word, sizeof(word));
  }
  if (i < bytes) std::memset(p + i, 0xa5, bytes - i);
}

}  // namespace

ScratchArena::~ScratchArena() {
  for (Chunk& c : chunks_) {
    ::operator delete[](c.data, std::align_val_t{kDefaultAlign});
  }
}

ScratchArena& ScratchArena::ThreadLocal() {
  static thread_local ScratchArena arena;
  return arena;
}

void ScratchArena::Grow(size_t min_bytes) {
  // MG_COLD_PATH: capacity growth. Runs only until the arena warms up to
  // the workload's high-water mark (TotalChunkAllocs() is how the
  // zero-steady-state-alloc tests prove it stops), so its heap work is
  // sanctioned even though Alloc — a hot-path caller — reaches it.
  size_t size = chunks_.empty() ? kFirstChunkBytes : chunks_.back().size * 2;
  if (size < min_bytes) size = AlignUp(min_bytes, kFirstChunkBytes);
  Chunk c;
  c.data = static_cast<std::byte*>(
      ::operator new[](size, std::align_val_t{kDefaultAlign}));
  c.size = size;
  chunks_.push_back(c);
  g_total_chunk_allocs.fetch_add(1, std::memory_order_relaxed);
  active_chunk_ = chunks_.size() - 1;
  offset_ = 0;
  // MG_COLD_PATH_END
}

// MG_HOT_PATH — Alloc/Release are the steady-state bump path; the only
// heap work is the explicitly cold Grow() (outside this region) and the
// debug-only canary bookkeeping below.
void* ScratchArena::Alloc(size_t bytes, size_t align) {
  MG_DCHECK_GE(align, 1u);
  MG_DCHECK((align & (align - 1)) == 0,
            "scratch alignment must be a power of 2");
  // Chunk bases are kDefaultAlign-aligned, so offset alignment suffices for
  // any align <= kDefaultAlign; larger requests still work because AlignUp
  // is applied to the offset of an aligned base only when align divides it.
  MG_DCHECK_LE(align, kDefaultAlign, "scratch alignment above one cache line");
  std::byte* user = nullptr;
  size_t at = 0;
  while (user == nullptr && active_chunk_ < chunks_.size()) {
    Chunk& c = chunks_[active_chunk_];
    at = AlignUp(offset_, align);
    if (at + bytes + kAllocSlack <= c.size) {
      offset_ = at + bytes + kAllocSlack;
      user = c.data + at;
      break;
    }
    // Advance into the next (strictly larger) pre-grown chunk, if any.
    ++active_chunk_;
    offset_ = 0;
  }
  if (user == nullptr) {
    Grow(bytes + kAllocSlack);
    at = 0;  // Grow aligned the base; bytes start at offset 0
    offset_ = bytes + kAllocSlack;
    user = chunks_[active_chunk_].data;
  }
  if constexpr (PoisoningEnabled()) {
    // Read-before-write of scratch must surface as NaN, and a linear
    // overrun of the user region must trip the canary on Release.
    PoisonFill(user, bytes);
    std::memset(user + bytes, kCanaryByte, kCanaryBytes);
    // Debug/sanitized builds only — compiled out of the Release steady
    // state entirely. mg_analyze:allow(hot-path-alloc)
    canaries_.push_back({active_chunk_, at, at + bytes});
  }
  return user;
}

void ScratchArena::Release(const Marker& m) {
  MG_CHECK_LE(m.chunk, active_chunk_, "scratch marker released out of order");
  if constexpr (PoisoningEnabled()) {
    // Verify and retire the canary of every allocation past the marker
    // (LIFO — ScratchScope guarantees release order).
    while (!canaries_.empty()) {
      const CanaryRecord& r = canaries_.back();
      if (r.chunk < m.chunk || (r.chunk == m.chunk && r.start < m.offset)) {
        break;
      }
      const std::byte* canary = chunks_[r.chunk].data + r.canary_offset;
      for (size_t i = 0; i < kCanaryBytes; ++i) {
        MG_CHECK_EQ(static_cast<unsigned>(canary[i]),
                    static_cast<unsigned>(kCanaryByte),
                    "scratch canary overwritten ", i, " bytes past a ",
                    r.canary_offset - r.start, "-byte allocation");
      }
      canaries_.pop_back();
    }
    // Re-poison the rolled-back span so use-after-release reads NaN. The
    // common case releases within one chunk ([m.offset, offset_)); a span
    // that crossed chunks poisons the exhausted chunks to their ends.
    for (size_t ci = m.chunk; ci <= active_chunk_ && ci < chunks_.size();
         ++ci) {
      const size_t lo = ci == m.chunk ? m.offset : 0;
      const size_t hi = ci == active_chunk_ ? offset_ : chunks_[ci].size;
      if (hi > lo) PoisonFill(chunks_[ci].data + lo, hi - lo);
    }
  }
  active_chunk_ = m.chunk;
  offset_ = m.offset;
}
// MG_HOT_PATH_END

size_t ScratchArena::capacity_bytes() const {
  size_t total = 0;
  for (const Chunk& c : chunks_) total += c.size;
  return total;
}

int64_t ScratchArena::TotalChunkAllocs() {
  return g_total_chunk_allocs.load(std::memory_order_relaxed);
}

}  // namespace mocograd
