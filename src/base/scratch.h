#ifndef MOCOGRAD_BASE_SCRATCH_H_
#define MOCOGRAD_BASE_SCRATCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mocograd {

/// Per-thread grow-only bump arena for kernel scratch buffers (packed GEMM
/// operands, GEMV accumulators, the conv backward's col_grad). The point is
/// the steady state: after the first few calls have grown the backing
/// chunks to the high-water mark, every later Alloc is a pointer bump —
/// the hot path never touches the heap again (see the allocation-count
/// assertions in tests/base/scratch_arena_test.cc and
/// tests/tensor/gemm_microkernel_test.cc).
///
/// Usage is strictly scoped and strictly per thread: open a ScratchScope,
/// allocate through it, and let the scope's destructor roll the arena back
/// to where it was. Scopes nest (a conv backward chunk holds col_grad while
/// the Gemm it calls opens its own inner scope on the same arena), which is
/// exactly the bump-pointer discipline. A buffer may be *read or written*
/// by other threads while the owning scope is alive — GEMM packs and reads
/// its shared B buffer from pool workers — but only the owning thread may
/// allocate from or release its arena.
///
/// Growth allocates additional, successively larger chunks and never moves
/// or frees existing ones, so outstanding pointers stay valid across a
/// grow. Memory is returned to the OS only when the thread exits (pool
/// workers live for the process, so in practice each thread settles at its
/// high-water mark).
class ScratchArena {
 public:
  static constexpr size_t kDefaultAlign = 64;  // one cache line

  /// True when this build poisons scratch memory (MOCOGRAD_DEBUG_POISON:
  /// Debug and sanitized builds). Poisoned builds fill every Alloc'd and
  /// every Release'd region with signaling NaNs — a kernel that reads
  /// scratch before writing it computes NaNs instead of silently reusing
  /// stale values — and place a canary word block after each allocation
  /// that Release verifies, catching linear overruns of packed buffers.
  /// See docs/CORRECTNESS.md.
  static constexpr bool PoisoningEnabled() {
#ifdef MOCOGRAD_DEBUG_POISON
    return true;
#else
    return false;
#endif
  }

  /// Bit pattern poisoned float scratch reads back as: a signaling NaN
  /// (quiet bit clear, non-zero payload), so any arithmetic on it yields
  /// NaN and std::isnan flags it.
  static constexpr uint32_t kPoisonPattern = 0x7fa0dead;

  ScratchArena() = default;
  ~ScratchArena();

  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// The calling thread's arena (created on first use, destroyed with the
  /// thread). ScratchScope below is the intended way to use it.
  static ScratchArena& ThreadLocal();

  /// Bump-allocates `bytes` aligned to `align` (a power of two). Pointers
  /// stay valid until the enclosing mark is released, even across growth.
  void* Alloc(size_t bytes, size_t align = kDefaultAlign);

  float* AllocFloats(size_t n) {
    return static_cast<float*>(Alloc(n * sizeof(float)));
  }

  /// Bump-pointer position; Release rolls back to a previous Mark (LIFO —
  /// callers use ScratchScope rather than pairing these by hand).
  struct Marker {
    size_t chunk = 0;
    size_t offset = 0;
  };
  Marker Mark() const { return {active_chunk_, offset_}; }
  void Release(const Marker& m);

  /// Total bytes of backing storage this arena has ever allocated.
  size_t capacity_bytes() const;

  /// Process-wide count of backing-chunk heap allocations across every
  /// thread's arena. Steady-state tests snapshot this, rerun a kernel, and
  /// assert it did not move.
  static int64_t TotalChunkAllocs();

 private:
  struct Chunk {
    std::byte* data = nullptr;
    size_t size = 0;
  };

  // One live allocation's canary record (poisoned builds only): Release
  // verifies the canary block at [chunk.data + canary_offset,
  // + kCanaryBytes) is intact for every allocation it rolls back, then
  // re-poisons the freed span.
  struct CanaryRecord {
    size_t chunk = 0;
    size_t start = 0;          // user region begins here
    size_t canary_offset = 0;  // user region ends here; canary follows
  };

  // Appends a chunk of at least `min_bytes` and makes it active.
  void Grow(size_t min_bytes);

  std::vector<Chunk> chunks_;
  size_t active_chunk_ = 0;
  size_t offset_ = 0;
  std::vector<CanaryRecord> canaries_;  // used only when PoisoningEnabled()
};

/// RAII window onto the calling thread's arena: everything allocated
/// through the scope is reclaimed (pointer-bump rollback, no heap work)
/// when the scope closes. Must be destroyed on the thread that created it,
/// in LIFO order with any nested scopes — plain stack usage guarantees
/// both.
class ScratchScope {
 public:
  ScratchScope() : arena_(&ScratchArena::ThreadLocal()), mark_(arena_->Mark()) {}
  explicit ScratchScope(ScratchArena& arena)
      : arena_(&arena), mark_(arena.Mark()) {}
  ~ScratchScope() { arena_->Release(mark_); }

  ScratchScope(const ScratchScope&) = delete;
  ScratchScope& operator=(const ScratchScope&) = delete;

  void* Alloc(size_t bytes, size_t align = ScratchArena::kDefaultAlign) {
    return arena_->Alloc(bytes, align);
  }
  float* AllocFloats(size_t n) { return arena_->AllocFloats(n); }

 private:
  ScratchArena* arena_;
  ScratchArena::Marker mark_;
};

}  // namespace mocograd

#endif  // MOCOGRAD_BASE_SCRATCH_H_
