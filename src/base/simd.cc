#include "base/simd.h"

#include <atomic>
#include <string>

#include "base/cpu.h"
#include "base/env.h"
#include "base/vec_kernels.h"

namespace mocograd {
namespace simd {

namespace {

// A tier is available when the CPU (and OS register-state support) allows
// it AND the build compiled its kernel TU — the vec table getter returning
// non-null is the build-side proof (the gemm tables are compiled under the
// identical per-file flags, so one probe covers both).
bool TierAvailable(IsaTier tier) {
  if (vec::VecKernelsForTier(tier) == nullptr) return false;
  const cpu::Features& f = cpu::GetFeatures();
  switch (tier) {
    case IsaTier::kScalar:
      return true;
    case IsaTier::kSse:
      return f.sse2;
    case IsaTier::kNeon:
      // Compiled in only on aarch64, where NEON is architecturally baseline.
      return true;
    case IsaTier::kAvx2:
      return f.avx2 && f.fma && f.os_avx;
    case IsaTier::kAvx512:
      return f.avx512f && f.avx512vl && f.avx512dq && f.avx512bw &&
             f.os_avx512;
  }
  return false;
}

// Highest available tier not above `ceiling`. The scalar floor is always
// available, so this always lands somewhere.
IsaTier ClampToAvailable(IsaTier ceiling) {
  for (int t = static_cast<int>(ceiling); t > 0; --t) {
    if (TierAvailable(static_cast<IsaTier>(t))) {
      return static_cast<IsaTier>(t);
    }
  }
  return IsaTier::kScalar;
}

// Best tier the CPU and build support, ignoring env knobs.
IsaTier BestAvailableTier() {
  static const IsaTier best = ClampToAvailable(IsaTier::kAvx512);
  return best;
}

// Best tier after the MOCOGRAD_SIMD_ISA ceiling. "auto", unset, or an
// unrecognized value mean no ceiling — env typos fall back silently, the
// same contract every other knob follows.
IsaTier EnvCeilingBestTier() {
  static const IsaTier best = [] {
    const std::string isa = GetEnvString("MOCOGRAD_SIMD_ISA", "auto");
    IsaTier ceiling = IsaTier::kAvx512;
    if (isa == "scalar") {
      ceiling = IsaTier::kScalar;
    } else if (isa == "sse") {
      ceiling = IsaTier::kSse;
    } else if (isa == "neon") {
      ceiling = IsaTier::kNeon;
    } else if (isa == "avx2") {
      ceiling = IsaTier::kAvx2;
    }
    return ClampToAvailable(ceiling);
  }();
  return best;
}

std::atomic<int>& TierState() {
  // First use reads the knobs: MOCOGRAD_SIMD=0 forces the scalar tier
  // outright (the historical on/off switch); otherwise MOCOGRAD_SIMD_ISA
  // caps the auto-probed tier.
  static std::atomic<int> tier(
      GetEnvInt("MOCOGRAD_SIMD", 1, 0, 1) == 0
          ? static_cast<int>(IsaTier::kScalar)
          : static_cast<int>(EnvCeilingBestTier()));
  return tier;
}

}  // namespace

IsaTier ActiveTier() {
  return static_cast<IsaTier>(TierState().load(std::memory_order_relaxed));
}

void SetTier(IsaTier tier) {
  TierState().store(static_cast<int>(ClampToAvailable(tier)),
                    std::memory_order_relaxed);
}

const char* TierName(IsaTier tier) {
  switch (tier) {
    case IsaTier::kScalar:
      return "scalar";
    case IsaTier::kSse:
      return "sse";
    case IsaTier::kNeon:
      return "neon";
    case IsaTier::kAvx2:
      return "avx2";
    case IsaTier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool Enabled() { return ActiveTier() != IsaTier::kScalar; }

void SetEnabled(bool enabled) {
  TierState().store(static_cast<int>(enabled ? EnvCeilingBestTier()
                                             : IsaTier::kScalar),
                    std::memory_order_relaxed);
}

const char* ActiveBackendName() { return TierName(ActiveTier()); }

}  // namespace simd
}  // namespace mocograd
