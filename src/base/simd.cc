#include "base/simd.h"

#include <atomic>

#include "base/env.h"

namespace mocograd {
namespace simd {

namespace {

std::atomic<bool>& EnabledFlag() {
  // First use reads the MOCOGRAD_SIMD knob (default on); the scalar build
  // ignores the knob entirely — there is nothing to switch.
  static std::atomic<bool> flag(kHasHardwareBackend &&
                                GetEnvInt("MOCOGRAD_SIMD", 1, 0, 1) != 0);
  return flag;
}

}  // namespace

bool Enabled() { return EnabledFlag().load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  EnabledFlag().store(enabled && kHasHardwareBackend,
                      std::memory_order_relaxed);
}

const char* ActiveBackendName() {
  return Enabled() ? HwBackend::kName : ScalarBackend::kName;
}

}  // namespace simd
}  // namespace mocograd
