#ifndef MOCOGRAD_BASE_SIMD_H_
#define MOCOGRAD_BASE_SIMD_H_

// Portable fixed-width SIMD layer: an 8-lane f32 vector (F32x8) and a
// 4-lane f64 accumulator (F64x4) with an AVX2+FMA backend, a NEON backend
// (aarch64) and a scalar fallback that performs the *same lane-blocked
// arithmetic in the same order*. Every operation exposed here is exactly
// rounded per IEEE-754 (add/sub/mul/div/sqrt, fused multiply-add) or a pure
// bit operation (abs/neg) or a comparison-select (Max/Min), so a kernel
// written against this header produces bit-identical results on every
// backend — across ISAs, across the MOCOGRAD_SIMD=0/1 runtime knob, and
// across thread counts (lane blocking never crosses the fixed reduction
// blocks of tensor/ops.cc). See docs/SIMD.md for the full contract and how
// to add a backend.
//
// Semantics pinned down for cross-backend identity:
//  - MulAdd(a, b, c) = a*b + c with a single rounding (hardware FMA on
//    AVX2/NEON, std::fma on the scalar path).
//  - Max(a, b) = (a > b) ? a : b and Min(a, b) = (a < b) ? a : b, i.e. the
//    second operand wins on unordered comparisons — exactly x86
//    MAXPS/MINPS; the NEON backend uses compare+select (not vmaxq, which
//    differs on NaN).
//  - Abs/Neg clear/flip the sign bit only (NaN payloads preserved).
//
// The build keeps `-ffp-contract=off` so the compiler never fuses scalar
// a*b+c expressions behind our back — fusion happens only where a kernel
// asks for MulAdd explicitly.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <type_traits>

#if !defined(MOCOGRAD_SIMD_FORCE_SCALAR)
#if defined(__AVX2__) && defined(__FMA__)
#define MOCOGRAD_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define MOCOGRAD_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace mocograd {
namespace simd {

// ---------------------------------------------------------------------------
// Scalar float helpers mirroring the lane semantics above. Kernels use these
// for the < 8-element tails so tail elements get the exact same arithmetic
// as full lanes, on every backend.
// ---------------------------------------------------------------------------

inline float MulAdd(float a, float b, float c) { return std::fmaf(a, b, c); }
inline double MulAdd(double a, double b, double c) { return std::fma(a, b, c); }
inline float Max(float a, float b) { return a > b ? a : b; }
inline float Min(float a, float b) { return a < b ? a : b; }
inline float Abs(float a) { return std::fabs(a); }
inline float Sqrt(float a) { return std::sqrt(a); }
inline float Neg(float a) { return -a; }

// ---------------------------------------------------------------------------
// Scalar fallback backend: 8 explicit lanes, operated on in lane order.
// ---------------------------------------------------------------------------

struct F32x8Scalar {
  float lane[8];

  static F32x8Scalar Zero() { return Broadcast(0.0f); }
  static F32x8Scalar Broadcast(float v) {
    F32x8Scalar r;
    for (int i = 0; i < 8; ++i) r.lane[i] = v;
    return r;
  }
  static F32x8Scalar Load(const float* p) {
    F32x8Scalar r;
    std::memcpy(r.lane, p, sizeof(r.lane));
    return r;
  }
  void Store(float* p) const { std::memcpy(p, lane, sizeof(lane)); }
};

inline F32x8Scalar operator+(F32x8Scalar a, F32x8Scalar b) {
  for (int i = 0; i < 8; ++i) a.lane[i] += b.lane[i];
  return a;
}
inline F32x8Scalar operator-(F32x8Scalar a, F32x8Scalar b) {
  for (int i = 0; i < 8; ++i) a.lane[i] -= b.lane[i];
  return a;
}
inline F32x8Scalar operator*(F32x8Scalar a, F32x8Scalar b) {
  for (int i = 0; i < 8; ++i) a.lane[i] *= b.lane[i];
  return a;
}
inline F32x8Scalar operator/(F32x8Scalar a, F32x8Scalar b) {
  for (int i = 0; i < 8; ++i) a.lane[i] /= b.lane[i];
  return a;
}
inline F32x8Scalar MulAdd(F32x8Scalar a, F32x8Scalar b, F32x8Scalar c) {
  for (int i = 0; i < 8; ++i) c.lane[i] = std::fmaf(a.lane[i], b.lane[i], c.lane[i]);
  return c;
}
inline F32x8Scalar Max(F32x8Scalar a, F32x8Scalar b) {
  for (int i = 0; i < 8; ++i) b.lane[i] = Max(a.lane[i], b.lane[i]);
  return b;
}
inline F32x8Scalar Min(F32x8Scalar a, F32x8Scalar b) {
  for (int i = 0; i < 8; ++i) b.lane[i] = Min(a.lane[i], b.lane[i]);
  return b;
}
inline F32x8Scalar Abs(F32x8Scalar a) {
  for (int i = 0; i < 8; ++i) a.lane[i] = std::fabs(a.lane[i]);
  return a;
}
inline F32x8Scalar Neg(F32x8Scalar a) {
  for (int i = 0; i < 8; ++i) a.lane[i] = -a.lane[i];
  return a;
}
inline F32x8Scalar Sqrt(F32x8Scalar a) {
  for (int i = 0; i < 8; ++i) a.lane[i] = std::sqrt(a.lane[i]);
  return a;
}

struct F64x4Scalar {
  double lane[4];

  static F64x4Scalar Zero() {
    F64x4Scalar r;
    for (int i = 0; i < 4; ++i) r.lane[i] = 0.0;
    return r;
  }
};

inline F64x4Scalar operator+(F64x4Scalar a, F64x4Scalar b) {
  for (int i = 0; i < 4; ++i) a.lane[i] += b.lane[i];
  return a;
}
inline F64x4Scalar MulAdd(F64x4Scalar a, F64x4Scalar b, F64x4Scalar c) {
  for (int i = 0; i < 4; ++i) c.lane[i] = std::fma(a.lane[i], b.lane[i], c.lane[i]);
  return c;
}
/// Lanes 0..3 of the low/high half of an 8-lane float vector, widened.
inline F64x4Scalar CvtLo(F32x8Scalar v) {
  F64x4Scalar r;
  for (int i = 0; i < 4; ++i) r.lane[i] = static_cast<double>(v.lane[i]);
  return r;
}
inline F64x4Scalar CvtHi(F32x8Scalar v) {
  F64x4Scalar r;
  for (int i = 0; i < 4; ++i) r.lane[i] = static_cast<double>(v.lane[i + 4]);
  return r;
}
/// Sequential lane sum ((l0 + l1) + l2) + l3 — the one place lane order
/// matters; every backend funnels through the same scalar adds.
inline double ReduceAdd(F64x4Scalar v) {
  return ((v.lane[0] + v.lane[1]) + v.lane[2]) + v.lane[3];
}

// ---------------------------------------------------------------------------
// AVX2 + FMA backend.
// ---------------------------------------------------------------------------

#if defined(MOCOGRAD_SIMD_AVX2)

struct F32x8Avx2 {
  __m256 v;

  static F32x8Avx2 Zero() { return {_mm256_setzero_ps()}; }
  static F32x8Avx2 Broadcast(float x) { return {_mm256_set1_ps(x)}; }
  static F32x8Avx2 Load(const float* p) { return {_mm256_loadu_ps(p)}; }
  void Store(float* p) const { _mm256_storeu_ps(p, v); }
};

inline F32x8Avx2 operator+(F32x8Avx2 a, F32x8Avx2 b) { return {_mm256_add_ps(a.v, b.v)}; }
inline F32x8Avx2 operator-(F32x8Avx2 a, F32x8Avx2 b) { return {_mm256_sub_ps(a.v, b.v)}; }
inline F32x8Avx2 operator*(F32x8Avx2 a, F32x8Avx2 b) { return {_mm256_mul_ps(a.v, b.v)}; }
inline F32x8Avx2 operator/(F32x8Avx2 a, F32x8Avx2 b) { return {_mm256_div_ps(a.v, b.v)}; }
inline F32x8Avx2 MulAdd(F32x8Avx2 a, F32x8Avx2 b, F32x8Avx2 c) {
  return {_mm256_fmadd_ps(a.v, b.v, c.v)};
}
// MAXPS/MINPS: second operand wins on unordered — matches the scalar helpers.
inline F32x8Avx2 Max(F32x8Avx2 a, F32x8Avx2 b) { return {_mm256_max_ps(a.v, b.v)}; }
inline F32x8Avx2 Min(F32x8Avx2 a, F32x8Avx2 b) { return {_mm256_min_ps(a.v, b.v)}; }
inline F32x8Avx2 Abs(F32x8Avx2 a) {
  const __m256 mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFFFFFF));
  return {_mm256_and_ps(a.v, mask)};
}
inline F32x8Avx2 Neg(F32x8Avx2 a) {
  const __m256 sign = _mm256_castsi256_ps(_mm256_set1_epi32(0x80000000u));
  return {_mm256_xor_ps(a.v, sign)};
}
inline F32x8Avx2 Sqrt(F32x8Avx2 a) { return {_mm256_sqrt_ps(a.v)}; }

struct F64x4Avx2 {
  __m256d v;
  static F64x4Avx2 Zero() { return {_mm256_setzero_pd()}; }
};

inline F64x4Avx2 operator+(F64x4Avx2 a, F64x4Avx2 b) { return {_mm256_add_pd(a.v, b.v)}; }
inline F64x4Avx2 MulAdd(F64x4Avx2 a, F64x4Avx2 b, F64x4Avx2 c) {
  return {_mm256_fmadd_pd(a.v, b.v, c.v)};
}
inline F64x4Avx2 CvtLo(F32x8Avx2 v) {
  return {_mm256_cvtps_pd(_mm256_castps256_ps128(v.v))};
}
inline F64x4Avx2 CvtHi(F32x8Avx2 v) {
  return {_mm256_cvtps_pd(_mm256_extractf128_ps(v.v, 1))};
}
inline double ReduceAdd(F64x4Avx2 v) {
  double lane[4];
  _mm256_storeu_pd(lane, v.v);
  return ((lane[0] + lane[1]) + lane[2]) + lane[3];
}

#endif  // MOCOGRAD_SIMD_AVX2

// ---------------------------------------------------------------------------
// NEON backend (aarch64: FMA, exact-rounded div/sqrt, f64 vectors).
// ---------------------------------------------------------------------------

#if defined(MOCOGRAD_SIMD_NEON)

struct F32x8Neon {
  float32x4_t lo, hi;

  static F32x8Neon Zero() { return {vdupq_n_f32(0.0f), vdupq_n_f32(0.0f)}; }
  static F32x8Neon Broadcast(float x) { return {vdupq_n_f32(x), vdupq_n_f32(x)}; }
  static F32x8Neon Load(const float* p) { return {vld1q_f32(p), vld1q_f32(p + 4)}; }
  void Store(float* p) const {
    vst1q_f32(p, lo);
    vst1q_f32(p + 4, hi);
  }
};

inline F32x8Neon operator+(F32x8Neon a, F32x8Neon b) {
  return {vaddq_f32(a.lo, b.lo), vaddq_f32(a.hi, b.hi)};
}
inline F32x8Neon operator-(F32x8Neon a, F32x8Neon b) {
  return {vsubq_f32(a.lo, b.lo), vsubq_f32(a.hi, b.hi)};
}
inline F32x8Neon operator*(F32x8Neon a, F32x8Neon b) {
  return {vmulq_f32(a.lo, b.lo), vmulq_f32(a.hi, b.hi)};
}
inline F32x8Neon operator/(F32x8Neon a, F32x8Neon b) {
  return {vdivq_f32(a.lo, b.lo), vdivq_f32(a.hi, b.hi)};
}
inline F32x8Neon MulAdd(F32x8Neon a, F32x8Neon b, F32x8Neon c) {
  return {vfmaq_f32(c.lo, a.lo, b.lo), vfmaq_f32(c.hi, a.hi, b.hi)};
}
// Compare+select, NOT vmaxq/vminq: the contract is "(a > b) ? a : b" with
// the second operand winning on unordered, bit-identical to x86 MAXPS.
inline F32x8Neon Max(F32x8Neon a, F32x8Neon b) {
  return {vbslq_f32(vcgtq_f32(a.lo, b.lo), a.lo, b.lo),
          vbslq_f32(vcgtq_f32(a.hi, b.hi), a.hi, b.hi)};
}
inline F32x8Neon Min(F32x8Neon a, F32x8Neon b) {
  return {vbslq_f32(vcltq_f32(a.lo, b.lo), a.lo, b.lo),
          vbslq_f32(vcltq_f32(a.hi, b.hi), a.hi, b.hi)};
}
inline F32x8Neon Abs(F32x8Neon a) { return {vabsq_f32(a.lo), vabsq_f32(a.hi)}; }
inline F32x8Neon Neg(F32x8Neon a) { return {vnegq_f32(a.lo), vnegq_f32(a.hi)}; }
inline F32x8Neon Sqrt(F32x8Neon a) { return {vsqrtq_f32(a.lo), vsqrtq_f32(a.hi)}; }

struct F64x4Neon {
  float64x2_t lo, hi;
  static F64x4Neon Zero() { return {vdupq_n_f64(0.0), vdupq_n_f64(0.0)}; }
};

inline F64x4Neon operator+(F64x4Neon a, F64x4Neon b) {
  return {vaddq_f64(a.lo, b.lo), vaddq_f64(a.hi, b.hi)};
}
inline F64x4Neon MulAdd(F64x4Neon a, F64x4Neon b, F64x4Neon c) {
  return {vfmaq_f64(c.lo, a.lo, b.lo), vfmaq_f64(c.hi, a.hi, b.hi)};
}
inline F64x4Neon CvtLo(F32x8Neon v) {
  return {vcvt_f64_f32(vget_low_f32(v.lo)), vcvt_high_f64_f32(v.lo)};
}
inline F64x4Neon CvtHi(F32x8Neon v) {
  return {vcvt_f64_f32(vget_low_f32(v.hi)), vcvt_high_f64_f32(v.hi)};
}
inline double ReduceAdd(F64x4Neon v) {
  double lane[4];
  vst1q_f64(lane, v.lo);
  vst1q_f64(lane + 2, v.hi);
  return ((lane[0] + lane[1]) + lane[2]) + lane[3];
}

#endif  // MOCOGRAD_SIMD_NEON

// ---------------------------------------------------------------------------
// Backend selection and runtime dispatch.
// ---------------------------------------------------------------------------

struct ScalarBackend {
  using F32 = F32x8Scalar;
  using F64 = F64x4Scalar;
  static constexpr const char* kName = "scalar";
};

#if defined(MOCOGRAD_SIMD_AVX2)
struct HwBackend {
  using F32 = F32x8Avx2;
  using F64 = F64x4Avx2;
  static constexpr const char* kName = "avx2";
};
#elif defined(MOCOGRAD_SIMD_NEON)
struct HwBackend {
  using F32 = F32x8Neon;
  using F64 = F64x4Neon;
  static constexpr const char* kName = "neon";
};
#else
using HwBackend = ScalarBackend;
#endif

/// True when a hardware backend was compiled in (the MOCOGRAD_SIMD knob has
/// something to switch off).
inline constexpr bool kHasHardwareBackend =
    !std::is_same_v<HwBackend, ScalarBackend>;

/// Runtime switch between the hardware backend and the scalar fallback.
/// Initialized from the MOCOGRAD_SIMD environment variable (default 1);
/// always false when no hardware backend was compiled in. Because both
/// paths perform identical lane-blocked arithmetic, flipping this changes
/// speed, never results.
bool Enabled();

/// Forces the backend at runtime (tests use this to compare paths within
/// one process). Enabling is a no-op without a hardware backend.
void SetEnabled(bool enabled);

/// "avx2" / "neon" / "scalar" — the backend Dispatch currently selects.
const char* ActiveBackendName();

/// Invokes `fn` with the selected backend tag: fn(HwBackend{}) when SIMD is
/// enabled, fn(ScalarBackend{}) otherwise. `fn` is a generic lambda; both
/// instantiations must have the same return type.
template <typename Fn>
decltype(auto) Dispatch(Fn&& fn) {
  if (Enabled()) return fn(HwBackend{});
  return fn(ScalarBackend{});
}

}  // namespace simd
}  // namespace mocograd

#endif  // MOCOGRAD_BASE_SIMD_H_
