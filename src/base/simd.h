#ifndef MOCOGRAD_BASE_SIMD_H_
#define MOCOGRAD_BASE_SIMD_H_

// Portable fixed-width SIMD layer: an 8-lane f32 vector (F32x8) and a
// 4-lane f64 accumulator (F64x4) with AVX-512 / AVX2+FMA / SSE2 backends
// (x86-64), a NEON backend (aarch64) and a scalar fallback that performs
// the *same lane-blocked arithmetic in the same order*. Every operation
// exposed here is exactly rounded per IEEE-754 (add/sub/mul/div/sqrt,
// fused multiply-add) or a pure bit operation (abs/neg) or a
// comparison-select (Max/Min), so a kernel written against this header
// produces bit-identical results on every backend — across ISA tiers,
// across the MOCOGRAD_SIMD / MOCOGRAD_SIMD_ISA runtime knobs, and across
// thread counts (lane blocking never crosses the fixed reduction blocks of
// tensor/ops.cc). See docs/SIMD.md for the full contract and how to add a
// backend.
//
// Which backends exist in a given translation unit depends on the flags
// that TU is compiled with: the per-tier kernel TUs
// (base/vec_kernels_tier_*.cc, tensor/gemm_kernels_tier_*.cc) get per-file
// -m flags from the build, while every other TU sees only the x86-64
// baseline (SSE2). Hot kernels therefore never rely on this header's
// in-TU backend selection — they are routed at runtime through the
// per-tier function tables selected by ActiveTier() below.
//
// Semantics pinned down for cross-backend identity:
//  - MulAdd(a, b, c) = a*b + c with a single rounding (hardware FMA on
//    AVX2/AVX-512/NEON; std::fma on the scalar and SSE paths, which libm
//    rounds correctly — the SSE tier is a compatibility tier for pre-AVX2
//    hardware, not a fast one).
//  - Max(a, b) = (a > b) ? a : b and Min(a, b) = (a < b) ? a : b, i.e. the
//    second operand wins on unordered comparisons — exactly x86
//    MAXPS/MINPS; the NEON backend uses compare+select (not vmaxq, which
//    differs on NaN).
//  - Abs/Neg clear/flip the sign bit only (NaN payloads preserved).
//  - LoadBf16 widens 8 bf16 values to f32 by shifting into the high half —
//    exact on every backend (base/bf16.h).
//
// The build keeps `-ffp-contract=off` so the compiler never fuses scalar
// a*b+c expressions behind our back — fusion happens only where a kernel
// asks for MulAdd explicitly.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "base/bf16.h"

#if !defined(MOCOGRAD_SIMD_FORCE_SCALAR)
#if defined(__SSE2__) || defined(_M_X64)
#define MOCOGRAD_SIMD_SSE 1
#include <immintrin.h>
#endif
#if defined(__AVX2__) && defined(__FMA__)
#define MOCOGRAD_SIMD_AVX2 1
#endif
#if defined(MOCOGRAD_SIMD_AVX2) && defined(__AVX512F__) && \
    defined(__AVX512VL__) && defined(__AVX512DQ__) && defined(__AVX512BW__)
#define MOCOGRAD_SIMD_AVX512 1
#endif
#if !defined(MOCOGRAD_SIMD_SSE) && defined(__aarch64__) && \
    defined(__ARM_NEON)
#define MOCOGRAD_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace mocograd {
namespace simd {

// ---------------------------------------------------------------------------
// Scalar float helpers mirroring the lane semantics above. Kernels use these
// for the < 8-element tails so tail elements get the exact same arithmetic
// as full lanes, on every backend.
// ---------------------------------------------------------------------------

inline float MulAdd(float a, float b, float c) { return std::fmaf(a, b, c); }
inline double MulAdd(double a, double b, double c) { return std::fma(a, b, c); }
inline float Max(float a, float b) { return a > b ? a : b; }
inline float Min(float a, float b) { return a < b ? a : b; }
inline float Abs(float a) { return std::fabs(a); }
inline float Sqrt(float a) { return std::sqrt(a); }
inline float Neg(float a) { return -a; }

// ---------------------------------------------------------------------------
// Scalar fallback backend: 8 explicit lanes, operated on in lane order.
// ---------------------------------------------------------------------------

struct F32x8Scalar {
  float lane[8];

  static F32x8Scalar Zero() { return Broadcast(0.0f); }
  static F32x8Scalar Broadcast(float v) {
    F32x8Scalar r;
    for (int i = 0; i < 8; ++i) r.lane[i] = v;
    return r;
  }
  static F32x8Scalar Load(const float* p) {
    F32x8Scalar r;
    std::memcpy(r.lane, p, sizeof(r.lane));
    return r;
  }
  /// 8 bf16 values widened to f32 (exact).
  static F32x8Scalar LoadBf16(const uint16_t* p) {
    F32x8Scalar r;
    for (int i = 0; i < 8; ++i) r.lane[i] = F32FromBf16(p[i]);
    return r;
  }
  void Store(float* p) const { std::memcpy(p, lane, sizeof(lane)); }
};

inline F32x8Scalar operator+(F32x8Scalar a, F32x8Scalar b) {
  for (int i = 0; i < 8; ++i) a.lane[i] += b.lane[i];
  return a;
}
inline F32x8Scalar operator-(F32x8Scalar a, F32x8Scalar b) {
  for (int i = 0; i < 8; ++i) a.lane[i] -= b.lane[i];
  return a;
}
inline F32x8Scalar operator*(F32x8Scalar a, F32x8Scalar b) {
  for (int i = 0; i < 8; ++i) a.lane[i] *= b.lane[i];
  return a;
}
inline F32x8Scalar operator/(F32x8Scalar a, F32x8Scalar b) {
  for (int i = 0; i < 8; ++i) a.lane[i] /= b.lane[i];
  return a;
}
inline F32x8Scalar MulAdd(F32x8Scalar a, F32x8Scalar b, F32x8Scalar c) {
  for (int i = 0; i < 8; ++i) c.lane[i] = std::fmaf(a.lane[i], b.lane[i], c.lane[i]);
  return c;
}
inline F32x8Scalar Max(F32x8Scalar a, F32x8Scalar b) {
  for (int i = 0; i < 8; ++i) b.lane[i] = Max(a.lane[i], b.lane[i]);
  return b;
}
inline F32x8Scalar Min(F32x8Scalar a, F32x8Scalar b) {
  for (int i = 0; i < 8; ++i) b.lane[i] = Min(a.lane[i], b.lane[i]);
  return b;
}
inline F32x8Scalar Abs(F32x8Scalar a) {
  for (int i = 0; i < 8; ++i) a.lane[i] = std::fabs(a.lane[i]);
  return a;
}
inline F32x8Scalar Neg(F32x8Scalar a) {
  for (int i = 0; i < 8; ++i) a.lane[i] = -a.lane[i];
  return a;
}
inline F32x8Scalar Sqrt(F32x8Scalar a) {
  for (int i = 0; i < 8; ++i) a.lane[i] = std::sqrt(a.lane[i]);
  return a;
}

struct F64x4Scalar {
  double lane[4];

  static F64x4Scalar Zero() {
    F64x4Scalar r;
    for (int i = 0; i < 4; ++i) r.lane[i] = 0.0;
    return r;
  }
};

inline F64x4Scalar operator+(F64x4Scalar a, F64x4Scalar b) {
  for (int i = 0; i < 4; ++i) a.lane[i] += b.lane[i];
  return a;
}
inline F64x4Scalar MulAdd(F64x4Scalar a, F64x4Scalar b, F64x4Scalar c) {
  for (int i = 0; i < 4; ++i) c.lane[i] = std::fma(a.lane[i], b.lane[i], c.lane[i]);
  return c;
}
/// Lanes 0..3 of the low/high half of an 8-lane float vector, widened.
inline F64x4Scalar CvtLo(F32x8Scalar v) {
  F64x4Scalar r;
  for (int i = 0; i < 4; ++i) r.lane[i] = static_cast<double>(v.lane[i]);
  return r;
}
inline F64x4Scalar CvtHi(F32x8Scalar v) {
  F64x4Scalar r;
  for (int i = 0; i < 4; ++i) r.lane[i] = static_cast<double>(v.lane[i + 4]);
  return r;
}
/// Sequential lane sum ((l0 + l1) + l2) + l3 — the one place lane order
/// matters; every backend funnels through the same scalar adds.
inline double ReduceAdd(F64x4Scalar v) {
  return ((v.lane[0] + v.lane[1]) + v.lane[2]) + v.lane[3];
}

// ---------------------------------------------------------------------------
// SSE2 backend: two 128-bit halves per 8-lane vector. SSE has no FMA
// instruction, so MulAdd round-trips through correctly-rounded std::fma —
// bit-identical to the hardware FMA of the wider tiers, at libm-call cost.
// This is the x86-64 baseline every TU compiles against; it exists so one
// binary still runs (vectorized where the ISA allows) on pre-AVX2 fleets.
// ---------------------------------------------------------------------------

#if defined(MOCOGRAD_SIMD_SSE)

struct F32x8Sse {
  __m128 lo, hi;

  static F32x8Sse Zero() { return {_mm_setzero_ps(), _mm_setzero_ps()}; }
  static F32x8Sse Broadcast(float x) { return {_mm_set1_ps(x), _mm_set1_ps(x)}; }
  static F32x8Sse Load(const float* p) {
    return {_mm_loadu_ps(p), _mm_loadu_ps(p + 4)};
  }
  static F32x8Sse LoadBf16(const uint16_t* p) {
    // u16 << 16 into each u32 lane: interleave below a zero half-vector.
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    const __m128i z = _mm_setzero_si128();
    return {_mm_castsi128_ps(_mm_unpacklo_epi16(z, v)),
            _mm_castsi128_ps(_mm_unpackhi_epi16(z, v))};
  }
  void Store(float* p) const {
    _mm_storeu_ps(p, lo);
    _mm_storeu_ps(p + 4, hi);
  }
};

inline F32x8Sse operator+(F32x8Sse a, F32x8Sse b) {
  return {_mm_add_ps(a.lo, b.lo), _mm_add_ps(a.hi, b.hi)};
}
inline F32x8Sse operator-(F32x8Sse a, F32x8Sse b) {
  return {_mm_sub_ps(a.lo, b.lo), _mm_sub_ps(a.hi, b.hi)};
}
inline F32x8Sse operator*(F32x8Sse a, F32x8Sse b) {
  return {_mm_mul_ps(a.lo, b.lo), _mm_mul_ps(a.hi, b.hi)};
}
inline F32x8Sse operator/(F32x8Sse a, F32x8Sse b) {
  return {_mm_div_ps(a.lo, b.lo), _mm_div_ps(a.hi, b.hi)};
}
inline F32x8Sse MulAdd(F32x8Sse a, F32x8Sse b, F32x8Sse c) {
  alignas(16) float la[8], lb[8], lc[8];
  a.Store(la);
  b.Store(lb);
  c.Store(lc);
  for (int i = 0; i < 8; ++i) lc[i] = std::fmaf(la[i], lb[i], lc[i]);
  return F32x8Sse::Load(lc);
}
// MAXPS/MINPS: second operand wins on unordered — matches the scalar helpers.
inline F32x8Sse Max(F32x8Sse a, F32x8Sse b) {
  return {_mm_max_ps(a.lo, b.lo), _mm_max_ps(a.hi, b.hi)};
}
inline F32x8Sse Min(F32x8Sse a, F32x8Sse b) {
  return {_mm_min_ps(a.lo, b.lo), _mm_min_ps(a.hi, b.hi)};
}
inline F32x8Sse Abs(F32x8Sse a) {
  const __m128 mask = _mm_castsi128_ps(_mm_set1_epi32(0x7FFFFFFF));
  return {_mm_and_ps(a.lo, mask), _mm_and_ps(a.hi, mask)};
}
inline F32x8Sse Neg(F32x8Sse a) {
  const __m128 sign = _mm_castsi128_ps(_mm_set1_epi32(0x80000000u));
  return {_mm_xor_ps(a.lo, sign), _mm_xor_ps(a.hi, sign)};
}
inline F32x8Sse Sqrt(F32x8Sse a) {
  return {_mm_sqrt_ps(a.lo), _mm_sqrt_ps(a.hi)};
}

struct F64x4Sse {
  __m128d lo, hi;
  static F64x4Sse Zero() { return {_mm_setzero_pd(), _mm_setzero_pd()}; }
};

inline F64x4Sse operator+(F64x4Sse a, F64x4Sse b) {
  return {_mm_add_pd(a.lo, b.lo), _mm_add_pd(a.hi, b.hi)};
}
inline F64x4Sse MulAdd(F64x4Sse a, F64x4Sse b, F64x4Sse c) {
  alignas(16) double la[4], lb[4], lc[4];
  _mm_storeu_pd(la, a.lo);
  _mm_storeu_pd(la + 2, a.hi);
  _mm_storeu_pd(lb, b.lo);
  _mm_storeu_pd(lb + 2, b.hi);
  _mm_storeu_pd(lc, c.lo);
  _mm_storeu_pd(lc + 2, c.hi);
  for (int i = 0; i < 4; ++i) lc[i] = std::fma(la[i], lb[i], lc[i]);
  return {_mm_loadu_pd(lc), _mm_loadu_pd(lc + 2)};
}
inline F64x4Sse CvtLo(F32x8Sse v) {
  return {_mm_cvtps_pd(v.lo), _mm_cvtps_pd(_mm_movehl_ps(v.lo, v.lo))};
}
inline F64x4Sse CvtHi(F32x8Sse v) {
  return {_mm_cvtps_pd(v.hi), _mm_cvtps_pd(_mm_movehl_ps(v.hi, v.hi))};
}
inline double ReduceAdd(F64x4Sse v) {
  double lane[4];
  _mm_storeu_pd(lane, v.lo);
  _mm_storeu_pd(lane + 2, v.hi);
  return ((lane[0] + lane[1]) + lane[2]) + lane[3];
}

#endif  // MOCOGRAD_SIMD_SSE

// ---------------------------------------------------------------------------
// AVX2 + FMA backend.
// ---------------------------------------------------------------------------

#if defined(MOCOGRAD_SIMD_AVX2)

struct F32x8Avx2 {
  __m256 v;

  static F32x8Avx2 Zero() { return {_mm256_setzero_ps()}; }
  static F32x8Avx2 Broadcast(float x) { return {_mm256_set1_ps(x)}; }
  static F32x8Avx2 Load(const float* p) { return {_mm256_loadu_ps(p)}; }
  static F32x8Avx2 LoadBf16(const uint16_t* p) {
    const __m128i v16 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    return {_mm256_castsi256_ps(
        _mm256_slli_epi32(_mm256_cvtepu16_epi32(v16), 16))};
  }
  void Store(float* p) const { _mm256_storeu_ps(p, v); }
};

inline F32x8Avx2 operator+(F32x8Avx2 a, F32x8Avx2 b) { return {_mm256_add_ps(a.v, b.v)}; }
inline F32x8Avx2 operator-(F32x8Avx2 a, F32x8Avx2 b) { return {_mm256_sub_ps(a.v, b.v)}; }
inline F32x8Avx2 operator*(F32x8Avx2 a, F32x8Avx2 b) { return {_mm256_mul_ps(a.v, b.v)}; }
inline F32x8Avx2 operator/(F32x8Avx2 a, F32x8Avx2 b) { return {_mm256_div_ps(a.v, b.v)}; }
inline F32x8Avx2 MulAdd(F32x8Avx2 a, F32x8Avx2 b, F32x8Avx2 c) {
  return {_mm256_fmadd_ps(a.v, b.v, c.v)};
}
// MAXPS/MINPS: second operand wins on unordered — matches the scalar helpers.
inline F32x8Avx2 Max(F32x8Avx2 a, F32x8Avx2 b) { return {_mm256_max_ps(a.v, b.v)}; }
inline F32x8Avx2 Min(F32x8Avx2 a, F32x8Avx2 b) { return {_mm256_min_ps(a.v, b.v)}; }
inline F32x8Avx2 Abs(F32x8Avx2 a) {
  const __m256 mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFFFFFF));
  return {_mm256_and_ps(a.v, mask)};
}
inline F32x8Avx2 Neg(F32x8Avx2 a) {
  const __m256 sign = _mm256_castsi256_ps(_mm256_set1_epi32(0x80000000u));
  return {_mm256_xor_ps(a.v, sign)};
}
inline F32x8Avx2 Sqrt(F32x8Avx2 a) { return {_mm256_sqrt_ps(a.v)}; }

struct F64x4Avx2 {
  __m256d v;
  static F64x4Avx2 Zero() { return {_mm256_setzero_pd()}; }
};

inline F64x4Avx2 operator+(F64x4Avx2 a, F64x4Avx2 b) { return {_mm256_add_pd(a.v, b.v)}; }
inline F64x4Avx2 MulAdd(F64x4Avx2 a, F64x4Avx2 b, F64x4Avx2 c) {
  return {_mm256_fmadd_pd(a.v, b.v, c.v)};
}
inline F64x4Avx2 CvtLo(F32x8Avx2 v) {
  return {_mm256_cvtps_pd(_mm256_castps256_ps128(v.v))};
}
inline F64x4Avx2 CvtHi(F32x8Avx2 v) {
  return {_mm256_cvtps_pd(_mm256_extractf128_ps(v.v, 1))};
}
inline double ReduceAdd(F64x4Avx2 v) {
  double lane[4];
  _mm256_storeu_pd(lane, v.v);
  return ((lane[0] + lane[1]) + lane[2]) + lane[3];
}

#endif  // MOCOGRAD_SIMD_AVX2

// ---------------------------------------------------------------------------
// AVX-512 additions. The AVX-512 tier keeps the 8-lane F32/F64 types (the
// same F32x8Avx2/F64x4Avx2 structs, emitted as EVEX-encoded code in the
// avx512 TUs) so every reduction and elementwise loop stays bit-identical
// to the other tiers. The only 512-bit type is F32x16, used where a kernel
// can process two adjacent 8-lane groups whose arithmetic chains are
// per-lane independent (the GEMM microkernel's 16-column tiles) — lane j of
// an F32x16 computes exactly what lane j%8 of the corresponding F32x8 pair
// would, so results cannot differ.
// ---------------------------------------------------------------------------

#if defined(MOCOGRAD_SIMD_AVX512)

struct F32x16 {
  __m512 v;

  static F32x16 Zero() { return {_mm512_setzero_ps()}; }
  static F32x16 Broadcast(float x) { return {_mm512_set1_ps(x)}; }
  static F32x16 Load(const float* p) { return {_mm512_loadu_ps(p)}; }
  static F32x16 LoadBf16(const uint16_t* p) {
    const __m256i v16 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    return {_mm512_castsi512_ps(
        _mm512_slli_epi32(_mm512_cvtepu16_epi32(v16), 16))};
  }
  void Store(float* p) const { _mm512_storeu_ps(p, v); }
};

inline F32x16 operator+(F32x16 a, F32x16 b) { return {_mm512_add_ps(a.v, b.v)}; }
inline F32x16 operator-(F32x16 a, F32x16 b) { return {_mm512_sub_ps(a.v, b.v)}; }
inline F32x16 operator*(F32x16 a, F32x16 b) { return {_mm512_mul_ps(a.v, b.v)}; }
inline F32x16 MulAdd(F32x16 a, F32x16 b, F32x16 c) {
  return {_mm512_fmadd_ps(a.v, b.v, c.v)};
}

#endif  // MOCOGRAD_SIMD_AVX512

// ---------------------------------------------------------------------------
// NEON backend (aarch64: FMA, exact-rounded div/sqrt, f64 vectors).
// ---------------------------------------------------------------------------

#if defined(MOCOGRAD_SIMD_NEON)

struct F32x8Neon {
  float32x4_t lo, hi;

  static F32x8Neon Zero() { return {vdupq_n_f32(0.0f), vdupq_n_f32(0.0f)}; }
  static F32x8Neon Broadcast(float x) { return {vdupq_n_f32(x), vdupq_n_f32(x)}; }
  static F32x8Neon Load(const float* p) { return {vld1q_f32(p), vld1q_f32(p + 4)}; }
  // Widen 8 bf16 values to f32 (exact): shift each 16-bit pattern into the
  // high half of a 32-bit lane.
  static F32x8Neon LoadBf16(const uint16_t* p) {
    const uint16x8_t v = vld1q_u16(p);
    return {vreinterpretq_f32_u32(vshll_n_u16(vget_low_u16(v), 16)),
            vreinterpretq_f32_u32(vshll_n_u16(vget_high_u16(v), 16))};
  }
  void Store(float* p) const {
    vst1q_f32(p, lo);
    vst1q_f32(p + 4, hi);
  }
};

inline F32x8Neon operator+(F32x8Neon a, F32x8Neon b) {
  return {vaddq_f32(a.lo, b.lo), vaddq_f32(a.hi, b.hi)};
}
inline F32x8Neon operator-(F32x8Neon a, F32x8Neon b) {
  return {vsubq_f32(a.lo, b.lo), vsubq_f32(a.hi, b.hi)};
}
inline F32x8Neon operator*(F32x8Neon a, F32x8Neon b) {
  return {vmulq_f32(a.lo, b.lo), vmulq_f32(a.hi, b.hi)};
}
inline F32x8Neon operator/(F32x8Neon a, F32x8Neon b) {
  return {vdivq_f32(a.lo, b.lo), vdivq_f32(a.hi, b.hi)};
}
inline F32x8Neon MulAdd(F32x8Neon a, F32x8Neon b, F32x8Neon c) {
  return {vfmaq_f32(c.lo, a.lo, b.lo), vfmaq_f32(c.hi, a.hi, b.hi)};
}
/// Compare+select, NOT vmaxq/vminq: the contract is "(a > b) ? a : b" with
// the second operand winning on unordered, bit-identical to x86 MAXPS.
inline F32x8Neon Max(F32x8Neon a, F32x8Neon b) {
  return {vbslq_f32(vcgtq_f32(a.lo, b.lo), a.lo, b.lo),
          vbslq_f32(vcgtq_f32(a.hi, b.hi), a.hi, b.hi)};
}
inline F32x8Neon Min(F32x8Neon a, F32x8Neon b) {
  return {vbslq_f32(vcltq_f32(a.lo, b.lo), a.lo, b.lo),
          vbslq_f32(vcltq_f32(a.hi, b.hi), a.hi, b.hi)};
}
inline F32x8Neon Abs(F32x8Neon a) { return {vabsq_f32(a.lo), vabsq_f32(a.hi)}; }
inline F32x8Neon Neg(F32x8Neon a) { return {vnegq_f32(a.lo), vnegq_f32(a.hi)}; }
inline F32x8Neon Sqrt(F32x8Neon a) { return {vsqrtq_f32(a.lo), vsqrtq_f32(a.hi)}; }

struct F64x4Neon {
  float64x2_t lo, hi;
  static F64x4Neon Zero() { return {vdupq_n_f64(0.0), vdupq_n_f64(0.0)}; }
};

inline F64x4Neon operator+(F64x4Neon a, F64x4Neon b) {
  return {vaddq_f64(a.lo, b.lo), vaddq_f64(a.hi, b.hi)};
}
inline F64x4Neon MulAdd(F64x4Neon a, F64x4Neon b, F64x4Neon c) {
  return {vfmaq_f64(c.lo, a.lo, b.lo), vfmaq_f64(c.hi, a.hi, b.hi)};
}
inline F64x4Neon CvtLo(F32x8Neon v) {
  return {vcvt_f64_f32(vget_low_f32(v.lo)), vcvt_high_f64_f32(v.lo)};
}
inline F64x4Neon CvtHi(F32x8Neon v) {
  return {vcvt_f64_f32(vget_low_f32(v.hi)), vcvt_high_f64_f32(v.hi)};
}
inline double ReduceAdd(F64x4Neon v) {
  double lane[4];
  vst1q_f64(lane, v.lo);
  vst1q_f64(lane + 2, v.hi);
  return ((lane[0] + lane[1]) + lane[2]) + lane[3];
}

#endif  // MOCOGRAD_SIMD_NEON

// ---------------------------------------------------------------------------
// Backend tags. One tag per kernel tier; which tags exist in a TU depends on
// that TU's compile flags (see the header comment). The per-tier kernel TUs
// instantiate their kernels against exactly one of these.
// ---------------------------------------------------------------------------

struct ScalarBackend {
  using F32 = F32x8Scalar;
  using F64 = F64x4Scalar;
  static constexpr const char* kName = "scalar";
};

#if defined(MOCOGRAD_SIMD_SSE)
struct SseBackend {
  using F32 = F32x8Sse;
  using F64 = F64x4Sse;
  static constexpr const char* kName = "sse";
};
#endif

#if defined(MOCOGRAD_SIMD_AVX2)
struct Avx2Backend {
  using F32 = F32x8Avx2;
  using F64 = F64x4Avx2;
  static constexpr const char* kName = "avx2";
};
#endif

#if defined(MOCOGRAD_SIMD_AVX512)
// 8-lane types on purpose (bit-determinism anchor); F32Wide is the opt-in
// 512-bit type for kernels whose lanes are arithmetic-independent.
struct Avx512Backend {
  using F32 = F32x8Avx2;
  using F64 = F64x4Avx2;
  using F32Wide = F32x16;
  static constexpr const char* kName = "avx512";
};
#endif

#if defined(MOCOGRAD_SIMD_NEON)
struct NeonBackend {
  using F32 = F32x8Neon;
  using F64 = F64x4Neon;
  static constexpr const char* kName = "neon";
};
#endif

// The best backend available *in this TU* — what Dispatch() below uses. In
// baseline TUs on x86-64 this is the SSE backend; only the per-tier kernel
// TUs see AVX2/AVX-512 here.
#if defined(MOCOGRAD_SIMD_AVX2)
using HwBackend = Avx2Backend;
#elif defined(MOCOGRAD_SIMD_NEON)
using HwBackend = NeonBackend;
#elif defined(MOCOGRAD_SIMD_SSE)
using HwBackend = SseBackend;
#else
using HwBackend = ScalarBackend;
#endif

/// True when a hardware backend was compiled in (the MOCOGRAD_SIMD knob has
/// something to switch off).
inline constexpr bool kHasHardwareBackend =
    !std::is_same_v<HwBackend, ScalarBackend>;

// ---------------------------------------------------------------------------
// Runtime kernel-tier state (defined in base/simd.cc). The process probes
// the CPU once (base/cpu.h), intersects it with the tiers the build
// compiled, clamps by the MOCOGRAD_SIMD_ISA knob, and lands on one active
// tier. Hot kernels (base/vec_kernels.h, tensor/gemm_kernels.h) look the
// tier up per call, so tests can flip it mid-process. Every tier computes
// bit-identical results; the tier changes speed, never outputs.
// ---------------------------------------------------------------------------

/// Kernel tiers in preference order. kNeon sorts between the x86 tiers only
/// nominally — on any given host either the x86 tiers or kNeon exist, never
/// both.
enum class IsaTier : int {
  kScalar = 0,
  kSse = 1,
  kNeon = 2,
  kAvx2 = 3,
  kAvx512 = 4,
};

/// The tier hot kernels currently run on.
IsaTier ActiveTier();

/// Forces a tier (tests and benches). Clamped to the best tier the CPU and
/// build support; ignores the MOCOGRAD_SIMD_ISA env ceiling.
void SetTier(IsaTier tier);

/// "avx512" / "avx2" / "sse" / "neon" / "scalar".
const char* TierName(IsaTier tier);

/// True when the active tier is anything above scalar. Initialized from the
/// MOCOGRAD_SIMD (on/off) and MOCOGRAD_SIMD_ISA (ceiling) knobs.
bool Enabled();

/// SetEnabled(false) forces the scalar tier; SetEnabled(true) restores the
/// best tier the CPU, build and MOCOGRAD_SIMD_ISA ceiling allow. Tests use
/// this to compare paths within one process.
void SetEnabled(bool enabled);

/// TierName(ActiveTier()).
const char* ActiveBackendName();

/// Invokes `fn` with this TU's best backend tag when the active tier is
/// above scalar, fn(ScalarBackend{}) otherwise. `fn` is a generic lambda;
/// both instantiations must have the same return type. Cold-path helper —
/// hot kernels route through the per-tier function tables instead, which
/// honour the full tier ladder rather than this TU's compile flags.
template <typename Fn>
decltype(auto) Dispatch(Fn&& fn) {
  if (Enabled()) return fn(HwBackend{});
  return fn(ScalarBackend{});
}

}  // namespace simd
}  // namespace mocograd

#endif  // MOCOGRAD_BASE_SIMD_H_
