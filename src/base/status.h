#ifndef MOCOGRAD_BASE_STATUS_H_
#define MOCOGRAD_BASE_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "base/check.h"

namespace mocograd {

/// Error code taxonomy, modeled after the Arrow/RocksDB Status idiom: cheap
/// to pass by value, `ok()` on the hot path, message only on failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kInternal,
};

/// A recoverable-error carrier for fallible operations (configuration
/// parsing, dataset construction, solver non-convergence). Programmer errors
/// use MG_CHECK instead.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad shape".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or a failure Status (Arrow's Result idiom).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT: implicit
  Result(Status status) : status_(std::move(status)) {  // NOLINT: implicit
    MG_CHECK(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    MG_CHECK(ok(), "Result::value on error: ", status_.ToString());
    return *value_;
  }
  T& value() & {
    MG_CHECK(ok(), "Result::value on error: ", status_.ToString());
    return *value_;
  }
  T&& value() && {
    MG_CHECK(ok(), "Result::value on error: ", status_.ToString());
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace mocograd

#endif  // MOCOGRAD_BASE_STATUS_H_
