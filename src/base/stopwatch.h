#ifndef MOCOGRAD_BASE_STOPWATCH_H_
#define MOCOGRAD_BASE_STOPWATCH_H_

#include <chrono>

namespace mocograd {

/// Wall-clock stopwatch for coarse timing (benchmark harness, backward-time
/// experiment). Started on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mocograd

#endif  // MOCOGRAD_BASE_STOPWATCH_H_
