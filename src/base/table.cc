#include "base/table.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace mocograd {

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
  rows_.clear();
}

void TextTable::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::AddSeparator() { rows_.emplace_back(); }

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::ostringstream oss;
    oss << "|";
    for (size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      oss << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    oss << "\n";
    return oss.str();
  };
  auto rule = [&]() {
    std::ostringstream oss;
    oss << "+";
    for (size_t c = 0; c < header_.size(); ++c) {
      oss << std::string(widths[c] + 2, '-') << "+";
    }
    oss << "\n";
    return oss.str();
  };

  std::ostringstream out;
  out << rule() << render_row(header_) << rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      out << rule();
    } else {
      out << render_row(row);
    }
  }
  out << rule();
  return out.str();
}

std::string TextTable::Num(double v, int precision) {
  if (std::isnan(v)) return "-";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::Percent(double fraction, int precision) {
  if (std::isnan(fraction)) return "-";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace mocograd
