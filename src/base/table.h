#ifndef MOCOGRAD_BASE_TABLE_H_
#define MOCOGRAD_BASE_TABLE_H_

#include <string>
#include <vector>

namespace mocograd {

/// Minimal fixed-width ASCII table used by the benchmark harness to print
/// paper-vs-measured result tables. Columns are sized to their widest cell.
class TextTable {
 public:
  /// Sets the header row; resets any existing rows.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row. Rows shorter than the header are right-padded.
  void AddRow(std::vector<std::string> row);

  /// Appends a horizontal separator line.
  void AddSeparator();

  /// Renders the table, ready for std::cout.
  std::string ToString() const;

  /// Formats a float with the given precision ("-" for NaN).
  static std::string Num(double v, int precision = 4);

  /// Formats a signed percentage, e.g. "+0.48%".
  static std::string Percent(double fraction, int precision = 2);

 private:
  std::vector<std::string> header_;
  // Separator rows are encoded as empty vectors.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mocograd

#endif  // MOCOGRAD_BASE_TABLE_H_
