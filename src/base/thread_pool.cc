#include "base/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "base/check.h"
#include "base/env.h"
// The one sanctioned base→obs edge: pool instrumentation. It lives in this
// .cc only (no header cycle), and obs/ itself depends only on base headers,
// so the layering stays acyclic at link time.
#include "obs/metrics.h"  // mg_analyze:allow(layering)
#include "obs/trace.h"    // mg_analyze:allow(layering)

namespace mocograd {

namespace {

int DefaultNumThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  const int hw_threads = hw == 0 ? 1 : static_cast<int>(hw);
  return GetEnvInt("MOCOGRAD_NUM_THREADS", hw_threads, /*min_value=*/1,
                   /*max_value=*/1024);
}

// The process-wide pool slot and the mutex guarding it, as one annotatable
// unit. Heap-allocated and never freed: workers must not outlive their
// pool's synchronization primitives during static destruction.
struct GlobalPool {
  Mutex mu;
  ThreadPool* pool MG_GUARDED_BY(mu) = nullptr;
};

GlobalPool& GlobalPoolState() {
  // MG_COLD_PATH: one-time creation of the process-wide slot.
  static GlobalPool* g = new GlobalPool;
  // MG_COLD_PATH_END
  return *g;
}

// One ParallelFor invocation. Chunks are claimed by atomically advancing
// `next`; the caller and any helpers drawn from the pool all run
// RunChunks(), so the caller never blocks while work remains and nested
// loops always make progress (the wait graph follows loop nesting, which is
// acyclic).
struct LoopState {
  int64_t end = 0;
  int64_t chunk = 1;
  const std::function<void(int64_t, int64_t)>* body = nullptr;

  std::atomic<int64_t> next{0};
  std::atomic<bool> canceled{false};
  Mutex mu;
  CondVar done_cv;
  int64_t chunks_left MG_GUARDED_BY(mu) = 0;
  std::exception_ptr error MG_GUARDED_BY(mu);  // first failure wins

  void RunChunks() {
    for (;;) {
      const int64_t b = next.fetch_add(chunk, std::memory_order_relaxed);
      if (b >= end) return;
      const int64_t e = std::min(end, b + chunk);
      if (!canceled.load(std::memory_order_relaxed)) {
        try {
          (*body)(b, e);
        } catch (...) {
          MutexLock lk(&mu);
          if (!error) error = std::current_exception();
          canceled.store(true, std::memory_order_relaxed);
        }
      }
      MutexLock lk(&mu);
      if (--chunks_left == 0) done_cv.NotifyAll();
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  MG_CHECK_GE(num_threads, 1, "ThreadPool size");
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lk(&mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lk(&mu_);
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

void ThreadPool::WorkerMain() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lk(&mu_);
      while (!shutdown_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // shutdown, queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    MG_TRACE_SCOPE("pool.worker_task");
    MG_METRIC_COUNT("pool.tasks_executed", 1);
    task();
  }
}

ThreadPool& ThreadPool::Global() {
  GlobalPool& g = GlobalPoolState();
  MutexLock lk(&g.mu);
  if (g.pool == nullptr) {
    // MG_COLD_PATH: first-use creation of the process-wide pool.
    g.pool = new ThreadPool(DefaultNumThreads());
    // MG_COLD_PATH_END
  }
  return *g.pool;
}

void ThreadPool::SetGlobalNumThreads(int n) {
  MG_CHECK_GE(n, 1, "SetGlobalNumThreads");
  GlobalPool& g = GlobalPoolState();
  MutexLock lk(&g.mu);
  if (g.pool != nullptr && g.pool->num_threads() == n) return;
  delete g.pool;  // drains and joins the old workers
  // MG_COLD_PATH: explicit resize, never on a compute path.
  g.pool = new ThreadPool(n);
  // MG_COLD_PATH_END
}

int ThreadPool::GlobalNumThreads() { return Global().num_threads(); }

// Callers arrive through the ParallelFor template in the header, which has
// already handled the empty range, clamped the grain, and run the serial
// fast path — here the loop genuinely fans out.
void internal::ParallelForImpl(int64_t begin, int64_t end, int64_t grain,
                               const std::function<void(int64_t, int64_t)>& body) {
  const int64_t n = end - begin;
  ThreadPool& pool = ThreadPool::Global();
  const int threads = pool.num_threads();

  // Only loops that actually fan out get a span — the serial fallback
  // in the header is the hottest path in the library and stays untouched.
  MG_TRACE_SCOPE("parallel_for");
  MG_METRIC_TIME_SCOPE("parallel_for.seconds");
  MG_METRIC_COUNT("pool.parallel_fors", 1);

  // A few chunks per participant gives dynamic load balancing without
  // dropping below the grain. Chunking never affects results (see the
  // determinism contract in thread_pool.h).
  const int64_t max_chunks = static_cast<int64_t>(threads) * 4;
  const int64_t chunk = std::max(grain, (n + max_chunks - 1) / max_chunks);
  const int64_t num_chunks = (n + chunk - 1) / chunk;

  // MG_COLD_PATH: fan-out setup. The shared state and the type-erased helper
  // tasks are the sanctioned allocations of a parallel dispatch — the
  // provably allocation-free configuration is the pool-of-1 serial path in
  // the ParallelFor template (docs/CORRECTNESS.md "Hot-path allocation").
  auto state = std::make_shared<LoopState>();
  state->end = end;
  state->chunk = chunk;
  state->body = &body;
  state->next.store(begin, std::memory_order_relaxed);
  {
    MutexLock lk(&state->mu);
    state->chunks_left = num_chunks;
  }

  const int64_t helpers =
      std::min<int64_t>(static_cast<int64_t>(threads) - 1, num_chunks - 1);
  for (int64_t i = 0; i < helpers; ++i) {
    pool.Submit([state] { state->RunChunks(); });
  }
  // MG_COLD_PATH_END
  state->RunChunks();

  std::exception_ptr error;
  {
    MutexLock lk(&state->mu);
    while (state->chunks_left != 0) state->done_cv.Wait(state->mu);
    error = state->error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace mocograd
