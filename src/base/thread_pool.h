#ifndef MOCOGRAD_BASE_THREAD_POOL_H_
#define MOCOGRAD_BASE_THREAD_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "base/mutex.h"

namespace mocograd {

/// Fixed-size worker pool behind ParallelFor — the parallel-execution layer
/// every compute kernel (GEMM, elementwise ops, im2col convolution, the
/// trainer's per-task backward) shares.
///
/// One process-wide instance (Global()) is created on first use. Its size
/// comes from the MOCOGRAD_NUM_THREADS environment variable when set to a
/// positive integer, otherwise std::thread::hardware_concurrency(), and can
/// be changed at runtime with SetGlobalNumThreads().
///
/// `num_threads` counts *participants*: the thread calling ParallelFor
/// always executes loop chunks itself, so a pool of size N spawns N−1
/// workers and a pool of size 1 spawns none — ParallelFor then degenerates
/// to a plain serial loop with zero synchronization.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Enqueues a task for the workers. Low-level plumbing with two sanctioned
  /// clients: ParallelFor below (the intended API for index loops) and the
  /// autograd ready-queue executor (autograd/executor.cc), whose helpers
  /// drain per-sweep node queues. Submitted tasks must never block waiting
  /// on other submitted tasks — pool workers are a finite resource, and the
  /// no-deadlock argument for nested waits (see ParallelFor) relies on
  /// every queued task running to completion on its own.
  void Submit(std::function<void()> task);

  /// The process-wide pool, created on first use (see class comment for
  /// sizing). The instance is intentionally never destroyed so that worker
  /// threads cannot race static destruction at process exit.
  static ThreadPool& Global();

  /// Replaces the global pool with one of `n` participants (n >= 1). The
  /// previous pool drains and joins first. Must not be called while a
  /// ParallelFor is in flight (e.g. from inside a loop body).
  static void SetGlobalNumThreads(int n);

  /// Size of the global pool (creates it on first call).
  static int GlobalNumThreads();

 private:
  void WorkerMain();

  const int num_threads_;
  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ MG_GUARDED_BY(mu_);
  bool shutdown_ MG_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;  // written in the ctor only
};

/// Runs `body(chunk_begin, chunk_end)` over a disjoint partition of
/// [begin, end) using the global pool. Blocks until every chunk finished.
///
/// - `grain` is the minimum number of iterations per chunk; ranges of at
///   most `grain` iterations (or a pool of size 1) run inline on the caller
///   with no synchronization at all.
/// - Nesting is allowed and is how task-level and kernel-level parallelism
///   compose: a loop body may itself call ParallelFor (e.g. a per-task
///   backward whose grad_fns call the parallel GEMM). The inner loop's
///   chunks are offered to idle workers, and the inner *caller* keeps
///   claiming its own chunks instead of blocking on the queue, so nested
///   waits always make progress and cannot deadlock.
/// - If a body throws, the first exception is captured, remaining chunks
///   are skipped, and the exception is rethrown on the calling thread after
///   the loop drains.
///
/// Determinism contract: chunk boundaries and thread assignment never
/// influence results. Kernels built on ParallelFor either write each output
/// index independently or (for reductions) use a fixed block decomposition
/// whose partials are combined in block order — see tensor/ops.cc — so any
/// pool size, including 1, produces bit-identical output.
///
/// ParallelFor is a template so the serial fast path never materializes a
/// std::function: wrapping a capturing lambda in std::function heap-allocates
/// once its captures outgrow the small-buffer slot, which would put an
/// allocation on every kernel call even when the loop runs inline (pool of 1,
/// or n <= grain). Only loops that actually fan out pay the type-erasure
/// cost, inside ParallelForImpl.
namespace internal {
void ParallelForImpl(int64_t begin, int64_t end, int64_t grain,
                     const std::function<void(int64_t, int64_t)>& body);
}  // namespace internal

template <typename Body>
void ParallelFor(int64_t begin, int64_t end, int64_t grain, Body&& body) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  if (ThreadPool::Global().num_threads() <= 1 || n <= grain) {
    body(begin, end);  // serial fallback: no state, no synchronization
    return;
  }
  internal::ParallelForImpl(begin, end, grain, body);
}

}  // namespace mocograd

#endif  // MOCOGRAD_BASE_THREAD_POOL_H_
