#include "base/vec_kernels.h"

#include "base/check.h"

namespace mocograd {
namespace vec {

const VecKernels* VecKernelsForTier(simd::IsaTier tier) {
  switch (tier) {
    case simd::IsaTier::kAvx512:
      return GetVecKernelsAvx512();
    case simd::IsaTier::kAvx2:
      return GetVecKernelsAvx2();
    case simd::IsaTier::kNeon:
      return GetVecKernelsNeon();
    case simd::IsaTier::kSse:
      return GetVecKernelsSse();
    case simd::IsaTier::kScalar:
      return GetVecKernelsScalar();
  }
  return nullptr;
}

const VecKernels& ActiveVecKernels() {
  // Walk down from the active tier; the scalar floor always exists. The
  // active tier is clamped to availability at set time, so the walk is a
  // defensive no-op in practice.
  for (int t = static_cast<int>(simd::ActiveTier()); t > 0; --t) {
    const VecKernels* k = VecKernelsForTier(static_cast<simd::IsaTier>(t));
    if (k != nullptr) return *k;
  }
  const VecKernels* scalar = GetVecKernelsScalar();
  MG_CHECK(scalar != nullptr, "scalar kernel tier missing");
  return *scalar;
}

}  // namespace vec
}  // namespace mocograd
