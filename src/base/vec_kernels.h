#ifndef MOCOGRAD_BASE_VEC_KERNELS_H_
#define MOCOGRAD_BASE_VEC_KERNELS_H_

// Per-tier function table behind the vec:: span kernels (base/vec_ops.h)
// and the optimizer update loops (optim/optimizer.cc). Each kernel tier
// (docs/SIMD.md "Runtime dispatch") compiles one instantiation of the
// kernels in base/vec_kernels_impl.h into its own translation unit
// (base/vec_kernels_tier_*.cc) with per-file ISA flags, and exposes it
// through the Get* functions below; tiers the build or target cannot
// produce return nullptr. The selector (vec_kernels.cc) hands callers the
// table for the active tier.
//
// Every tier computes bit-identical results — the kernels are written
// against the exactly-rounded base/simd.h vocabulary with scalar tails
// performing the identical per-element arithmetic — so the tier choice
// changes speed, never outputs.
//
// The kernels are serial over their span: callers that want threads wrap
// them in ParallelFor chunks (elementwise kernels are lane-grouping
// independent; the f64 reductions must be called on the fixed reduction
// blocks of tensor/ops.cc, whose lane decomposition anchors at the span
// start).

#include <cstdint>

#include "base/simd.h"

namespace mocograd {
namespace vec {

struct VecKernels {
  const char* name;  // tier name, equals simd::TierName of the source tier

  // Surgery / reduction spans (see base/vec_ops.h for contracts).
  void (*axpy)(int64_t n, float alpha, const float* x, float* y);
  void (*add)(int64_t n, const float* x, float* y);
  void (*scale)(int64_t n, float alpha, float* y);
  void (*ema)(int64_t n, float beta, const float* g, float* m);
  double (*dot_f64)(int64_t n, const float* a, const float* b);
  double (*sum_f64)(int64_t n, const float* a);

  // Elementwise spans (tensor/ops.cc). o may alias a or b.
  void (*ew_add)(int64_t n, const float* a, const float* b, float* o);
  void (*ew_sub)(int64_t n, const float* a, const float* b, float* o);
  void (*ew_mul)(int64_t n, const float* a, const float* b, float* o);
  void (*ew_div)(int64_t n, const float* a, const float* b, float* o);
  // o[i] = Max(b[i], a[i]): the second operand (a) wins on unordered —
  // preserves tensor/ops.cc Maximum semantics (NaN in a propagates).
  void (*ew_maximum)(int64_t n, const float* a, const float* b, float* o);
  void (*ew_add_scalar)(int64_t n, const float* a, float s, float* o);
  void (*ew_mul_scalar)(int64_t n, const float* a, float s, float* o);
  void (*ew_neg)(int64_t n, const float* a, float* o);
  void (*ew_sqrt)(int64_t n, const float* a, float* o);
  void (*ew_abs)(int64_t n, const float* a, float* o);
  void (*ew_relu)(int64_t n, const float* a, float* o);
  void (*ew_clamp)(int64_t n, const float* a, float lo, float hi, float* o);

  // Optimizer per-tensor update spans (optim/optimizer.cc documents the
  // exact update arithmetic; weight decay folds in via fused multiply-add).
  void (*sgd_momentum)(int64_t n, float lr, float momentum, float wd,
                       const float* g, float* v, float* x);
  void (*sgd_plain)(int64_t n, float lr, float wd, const float* g, float* x);
  void (*adam)(int64_t n, float lr, float b1, float b2, float eps, float wd,
               float bc1, float bc2, const float* g, float* m, float* v,
               float* x);
  void (*adagrad)(int64_t n, float lr, float eps, const float* g, float* a,
                  float* x);
};

// Per-tier tables, defined in base/vec_kernels_tier_*.cc. nullptr when the
// tier is not compiled in (wrong architecture, missing compiler support, or
// a force-scalar build). The scalar table always exists.
const VecKernels* GetVecKernelsScalar();
const VecKernels* GetVecKernelsSse();
const VecKernels* GetVecKernelsAvx2();
const VecKernels* GetVecKernelsAvx512();
const VecKernels* GetVecKernelsNeon();

/// Table for `tier`, or nullptr when that tier was not compiled in. The
/// tier selector (base/simd.cc) uses this to discover the best compiled
/// tier at startup.
const VecKernels* VecKernelsForTier(simd::IsaTier tier);

/// Table for simd::ActiveTier(), walking down to the nearest available
/// tier (defensively — the active tier is already clamped to availability).
const VecKernels& ActiveVecKernels();

}  // namespace vec
}  // namespace mocograd

#endif  // MOCOGRAD_BASE_VEC_KERNELS_H_
