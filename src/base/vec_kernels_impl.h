#ifndef MOCOGRAD_BASE_VEC_KERNELS_IMPL_H_
#define MOCOGRAD_BASE_VEC_KERNELS_IMPL_H_

// Kernel bodies behind the VecKernels table (base/vec_kernels.h),
// templated on a base/simd.h backend tag. Included ONLY by the per-tier
// TUs (base/vec_kernels_tier_*.cc), each of which instantiates
// MakeVecKernels<B> for exactly one backend.
//
// Everything lives in an unnamed namespace on purpose: the tier TUs are
// compiled with per-file ISA flags, and internal linkage guarantees each
// TU keeps its own copies — the linker can never substitute a copy built
// with wider ISA flags into a baseline caller (the classic one-definition
// trap of multi-ISA builds).
//
// The arithmetic here is the determinism contract: 8-lane blocks with a
// scalar tail performing the identical per-element operations, explicit
// MulAdd where lanes fuse, compare-select Max/Min. Any edit must keep
// every tier bit-identical (tests/integration/simd_determinism_test.cc).

#include <cstdint>

#include "base/simd.h"
#include "base/vec_kernels.h"

namespace mocograd {
namespace vec {
namespace {

// MG_HOT_PATH — every kernel below runs on the per-step steady state;
// mg_analyze enforces that no heap allocation or container growth appears
// before the matching end marker (docs/CORRECTNESS.md).

// ---------------------------------------------------------------------------
// Surgery / reduction spans (contracts in base/vec_ops.h).
// ---------------------------------------------------------------------------

// Reduction core shared by DotF64/SumF64: `step_fn(i, lo, hi)` folds one
// 8-float step (already widened to two F64x4) into the accumulator pair,
// `tail_fn(s, i)` folds one trailing element into the running double. The
// lane decomposition is anchored at element 0 of the span, so a given
// (pointer, n) always reduces in the same order.
template <typename B, typename StepFn, typename TailFn>
double ReduceF64T(int64_t n, StepFn step_fn, TailFn tail_fn) {
  using F64 = typename B::F64;
  F64 acc_lo = F64::Zero();
  F64 acc_hi = F64::Zero();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) step_fn(i, &acc_lo, &acc_hi);
  double s = ReduceAdd(acc_lo + acc_hi);
  for (; i < n; ++i) s = tail_fn(s, i);
  return s;
}

template <typename B>
void AxpyT(int64_t n, float alpha, const float* x, float* y) {
  using F32 = typename B::F32;
  const F32 va = F32::Broadcast(alpha);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    MulAdd(va, F32::Load(x + i), F32::Load(y + i)).Store(y + i);
  }
  for (; i < n; ++i) y[i] = simd::MulAdd(alpha, x[i], y[i]);
}

template <typename B>
void AddT(int64_t n, const float* x, float* y) {
  using F32 = typename B::F32;
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    (F32::Load(y + i) + F32::Load(x + i)).Store(y + i);
  }
  for (; i < n; ++i) y[i] += x[i];
}

template <typename B>
void ScaleT(int64_t n, float alpha, float* y) {
  using F32 = typename B::F32;
  const F32 va = F32::Broadcast(alpha);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    (F32::Load(y + i) * va).Store(y + i);
  }
  for (; i < n; ++i) y[i] *= alpha;
}

template <typename B>
void EmaT(int64_t n, float beta, const float* g, float* m) {
  using F32 = typename B::F32;
  const float omb = 1.0f - beta;
  const F32 vb = F32::Broadcast(beta);
  const F32 vomb = F32::Broadcast(omb);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    MulAdd(vb, F32::Load(m + i), vomb * F32::Load(g + i)).Store(m + i);
  }
  for (; i < n; ++i) m[i] = simd::MulAdd(beta, m[i], omb * g[i]);
}

template <typename B>
double DotF64T(int64_t n, const float* a, const float* b) {
  using F32 = typename B::F32;
  using F64 = typename B::F64;
  return ReduceF64T<B>(
      n,
      [&](int64_t i, F64* lo, F64* hi) {
        const F32 va = F32::Load(a + i);
        const F32 vb = F32::Load(b + i);
        *lo = MulAdd(CvtLo(va), CvtLo(vb), *lo);
        *hi = MulAdd(CvtHi(va), CvtHi(vb), *hi);
      },
      [&](double s, int64_t i) {
        return simd::MulAdd(static_cast<double>(a[i]),
                            static_cast<double>(b[i]), s);
      });
}

template <typename B>
double SumF64T(int64_t n, const float* a) {
  using F32 = typename B::F32;
  using F64 = typename B::F64;
  return ReduceF64T<B>(
      n,
      [&](int64_t i, F64* lo, F64* hi) {
        const F32 va = F32::Load(a + i);
        *lo = *lo + CvtLo(va);
        *hi = *hi + CvtHi(va);
      },
      [&](double s, int64_t i) { return s + static_cast<double>(a[i]); });
}

// ---------------------------------------------------------------------------
// Elementwise spans (tensor/ops.cc). Each applies one generic functor —
// valid on both float and 8-lane operands — in 8-lane blocks with a scalar
// tail, so per-element results never depend on lane grouping.
// ---------------------------------------------------------------------------

template <typename B, typename Fn>
void EwBinarySpanT(int64_t n, const float* a, const float* b, float* o,
                   Fn fn) {
  using F32 = typename B::F32;
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    fn(F32::Load(a + i), F32::Load(b + i)).Store(o + i);
  }
  for (; i < n; ++i) o[i] = fn(a[i], b[i]);
}

template <typename B, typename Fn>
void EwUnarySpanT(int64_t n, const float* a, float* o, Fn fn) {
  using F32 = typename B::F32;
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) fn(F32::Load(a + i)).Store(o + i);
  for (; i < n; ++i) o[i] = fn(a[i]);
}

template <typename B>
void EwAddT(int64_t n, const float* a, const float* b, float* o) {
  EwBinarySpanT<B>(n, a, b, o, [](auto x, auto y) { return x + y; });
}
template <typename B>
void EwSubT(int64_t n, const float* a, const float* b, float* o) {
  EwBinarySpanT<B>(n, a, b, o, [](auto x, auto y) { return x - y; });
}
template <typename B>
void EwMulT(int64_t n, const float* a, const float* b, float* o) {
  EwBinarySpanT<B>(n, a, b, o, [](auto x, auto y) { return x * y; });
}
template <typename B>
void EwDivT(int64_t n, const float* a, const float* b, float* o) {
  EwBinarySpanT<B>(n, a, b, o, [](auto x, auto y) { return x / y; });
}
template <typename B>
void EwMaximumT(int64_t n, const float* a, const float* b, float* o) {
  // Max(y, x): second operand (a) wins on unordered — see vec_kernels.h.
  EwBinarySpanT<B>(n, a, b, o,
                   [](auto x, auto y) { return simd::Max(y, x); });
}

template <typename B>
void EwAddScalarT(int64_t n, const float* a, float s, float* o) {
  using F32 = typename B::F32;
  const F32 vs = F32::Broadcast(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) (F32::Load(a + i) + vs).Store(o + i);
  for (; i < n; ++i) o[i] = a[i] + s;
}
template <typename B>
void EwMulScalarT(int64_t n, const float* a, float s, float* o) {
  using F32 = typename B::F32;
  const F32 vs = F32::Broadcast(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) (F32::Load(a + i) * vs).Store(o + i);
  for (; i < n; ++i) o[i] = a[i] * s;
}

template <typename B>
void EwNegT(int64_t n, const float* a, float* o) {
  EwUnarySpanT<B>(n, a, o, [](auto x) { return simd::Neg(x); });
}
template <typename B>
void EwSqrtT(int64_t n, const float* a, float* o) {
  EwUnarySpanT<B>(n, a, o, [](auto x) { return simd::Sqrt(x); });
}
template <typename B>
void EwAbsT(int64_t n, const float* a, float* o) {
  EwUnarySpanT<B>(n, a, o, [](auto x) { return simd::Abs(x); });
}
template <typename B>
void EwReluT(int64_t n, const float* a, float* o) {
  using F32 = typename B::F32;
  const F32 vz = F32::Zero();
  int64_t i = 0;
  // Max(x, 0) = (x > 0) ? x : 0 — NaN inputs map to 0.
  for (; i + 8 <= n; i += 8) simd::Max(F32::Load(a + i), vz).Store(o + i);
  for (; i < n; ++i) o[i] = simd::Max(a[i], 0.0f);
}
template <typename B>
void EwClampT(int64_t n, const float* a, float lo, float hi, float* o) {
  using F32 = typename B::F32;
  const F32 vlo = F32::Broadcast(lo);
  const F32 vhi = F32::Broadcast(hi);
  int64_t i = 0;
  // Min(Max(x, lo), hi): NaN x clamps to lo.
  for (; i + 8 <= n; i += 8) {
    simd::Min(simd::Max(F32::Load(a + i), vlo), vhi).Store(o + i);
  }
  for (; i < n; ++i) o[i] = simd::Min(simd::Max(a[i], lo), hi);
}

// ---------------------------------------------------------------------------
// Optimizer per-tensor update spans (optim/optimizer.cc). Weight decay
// folds into the gradient with a fused multiply-add, matching the lane op.
// ---------------------------------------------------------------------------

template <typename B>
void SgdMomentumT(int64_t n, float lr, float momentum, float wd,
                  const float* g, float* v, float* x) {
  using F32 = typename B::F32;
  const F32 vlr = F32::Broadcast(lr);
  const F32 vmom = F32::Broadcast(momentum);
  const F32 vwd = F32::Broadcast(wd);
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const F32 xx = F32::Load(x + j);
    const F32 grad = MulAdd(vwd, xx, F32::Load(g + j));
    const F32 vel = MulAdd(vmom, F32::Load(v + j), grad);
    vel.Store(v + j);
    (xx - vlr * vel).Store(x + j);
  }
  for (; j < n; ++j) {
    const float grad = simd::MulAdd(wd, x[j], g[j]);
    v[j] = simd::MulAdd(momentum, v[j], grad);
    x[j] -= lr * v[j];
  }
}

template <typename B>
void SgdPlainT(int64_t n, float lr, float wd, const float* g, float* x) {
  using F32 = typename B::F32;
  const F32 vlr = F32::Broadcast(lr);
  const F32 vwd = F32::Broadcast(wd);
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const F32 xx = F32::Load(x + j);
    const F32 grad = MulAdd(vwd, xx, F32::Load(g + j));
    (xx - vlr * grad).Store(x + j);
  }
  for (; j < n; ++j) {
    const float grad = simd::MulAdd(wd, x[j], g[j]);
    x[j] -= lr * grad;
  }
}

template <typename B>
void AdamT(int64_t n, float lr, float b1, float b2, float eps, float wd,
           float bc1, float bc2, const float* g, float* m, float* v,
           float* x) {
  using F32 = typename B::F32;
  const F32 vlr = F32::Broadcast(lr);
  const F32 vb1 = F32::Broadcast(b1);
  const F32 vb2 = F32::Broadcast(b2);
  const F32 vomb1 = F32::Broadcast(1.0f - b1);
  const F32 vomb2 = F32::Broadcast(1.0f - b2);
  const F32 veps = F32::Broadcast(eps);
  const F32 vwd = F32::Broadcast(wd);
  const F32 vbc1 = F32::Broadcast(bc1);
  const F32 vbc2 = F32::Broadcast(bc2);
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const F32 xx = F32::Load(x + j);
    const F32 grad = MulAdd(vwd, xx, F32::Load(g + j));
    const F32 mm = MulAdd(vb1, F32::Load(m + j), vomb1 * grad);
    const F32 vv = MulAdd(vb2, F32::Load(v + j), vomb2 * (grad * grad));
    mm.Store(m + j);
    vv.Store(v + j);
    const F32 mhat = mm / vbc1;
    const F32 vhat = vv / vbc2;
    (xx - (vlr * mhat) / (Sqrt(vhat) + veps)).Store(x + j);
  }
  for (; j < n; ++j) {
    const float grad = simd::MulAdd(wd, x[j], g[j]);
    m[j] = simd::MulAdd(b1, m[j], (1.0f - b1) * grad);
    v[j] = simd::MulAdd(b2, v[j], (1.0f - b2) * (grad * grad));
    const float mhat = m[j] / bc1;
    const float vhat = v[j] / bc2;
    x[j] -= (lr * mhat) / (simd::Sqrt(vhat) + eps);
  }
}

template <typename B>
void AdagradT(int64_t n, float lr, float eps, const float* g, float* a,
              float* x) {
  using F32 = typename B::F32;
  const F32 vlr = F32::Broadcast(lr);
  const F32 veps = F32::Broadcast(eps);
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const F32 gg = F32::Load(g + j);
    const F32 acc = MulAdd(gg, gg, F32::Load(a + j));
    acc.Store(a + j);
    (F32::Load(x + j) - (vlr * gg) / (Sqrt(acc) + veps)).Store(x + j);
  }
  for (; j < n; ++j) {
    a[j] = simd::MulAdd(g[j], g[j], a[j]);
    x[j] -= (lr * g[j]) / (simd::Sqrt(a[j]) + eps);
  }
}

// MG_HOT_PATH_END

template <typename B>
VecKernels MakeVecKernels() {
  VecKernels k;
  k.name = B::kName;
  k.axpy = &AxpyT<B>;
  k.add = &AddT<B>;
  k.scale = &ScaleT<B>;
  k.ema = &EmaT<B>;
  k.dot_f64 = &DotF64T<B>;
  k.sum_f64 = &SumF64T<B>;
  k.ew_add = &EwAddT<B>;
  k.ew_sub = &EwSubT<B>;
  k.ew_mul = &EwMulT<B>;
  k.ew_div = &EwDivT<B>;
  k.ew_maximum = &EwMaximumT<B>;
  k.ew_add_scalar = &EwAddScalarT<B>;
  k.ew_mul_scalar = &EwMulScalarT<B>;
  k.ew_neg = &EwNegT<B>;
  k.ew_sqrt = &EwSqrtT<B>;
  k.ew_abs = &EwAbsT<B>;
  k.ew_relu = &EwReluT<B>;
  k.ew_clamp = &EwClampT<B>;
  k.sgd_momentum = &SgdMomentumT<B>;
  k.sgd_plain = &SgdPlainT<B>;
  k.adam = &AdamT<B>;
  k.adagrad = &AdagradT<B>;
  return k;
}

}  // namespace
}  // namespace vec
}  // namespace mocograd

#endif  // MOCOGRAD_BASE_VEC_KERNELS_IMPL_H_
