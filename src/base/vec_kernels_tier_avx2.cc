// AVX2+FMA kernel tier. This TU (and only TUs like it) is compiled with
// -mavx2 -mfma (src/CMakeLists.txt per-file flags); nothing here may be
// reachable from baseline code except through the table pointer, which the
// selector hands out only after the CPU probe confirms AVX2+FMA support.

#include "base/vec_kernels.h"

#if defined(MOCOGRAD_SIMD_AVX2)
#include "base/vec_kernels_impl.h"
#endif

namespace mocograd {
namespace vec {

#if defined(MOCOGRAD_SIMD_AVX2)
const VecKernels* GetVecKernelsAvx2() {
  static const VecKernels kTable = MakeVecKernels<simd::Avx2Backend>();
  return &kTable;
}
#else
const VecKernels* GetVecKernelsAvx2() { return nullptr; }
#endif

}  // namespace vec
}  // namespace mocograd
