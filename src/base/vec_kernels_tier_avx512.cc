// AVX-512 kernel tier, compiled with -mavx512{f,vl,dq,bw} -mavx2 -mfma
// (src/CMakeLists.txt per-file flags). The vec kernels keep the 8-lane
// types — Avx512Backend::F32 is the AVX2 vector struct, emitted here as
// EVEX-encoded code — so results stay bit-identical to every other tier;
// the 512-bit F32Wide type is used only by the GEMM microkernel.

#include "base/vec_kernels.h"

#if defined(MOCOGRAD_SIMD_AVX512)
#include "base/vec_kernels_impl.h"
#endif

namespace mocograd {
namespace vec {

#if defined(MOCOGRAD_SIMD_AVX512)
const VecKernels* GetVecKernelsAvx512() {
  static const VecKernels kTable = MakeVecKernels<simd::Avx512Backend>();
  return &kTable;
}
#else
const VecKernels* GetVecKernelsAvx512() { return nullptr; }
#endif

}  // namespace vec
}  // namespace mocograd
