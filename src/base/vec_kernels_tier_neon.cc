// NEON kernel tier (aarch64 baseline — no extra ISA flags needed).

#include "base/vec_kernels.h"

#if defined(MOCOGRAD_SIMD_NEON)
#include "base/vec_kernels_impl.h"
#endif

namespace mocograd {
namespace vec {

#if defined(MOCOGRAD_SIMD_NEON)
const VecKernels* GetVecKernelsNeon() {
  static const VecKernels kTable = MakeVecKernels<simd::NeonBackend>();
  return &kTable;
}
#else
const VecKernels* GetVecKernelsNeon() { return nullptr; }
#endif

}  // namespace vec
}  // namespace mocograd
