// Scalar kernel tier: always compiled, no ISA flags. The floor of the tier
// ladder and the reference the other tiers must match bit-for-bit.

#include "base/vec_kernels.h"
#include "base/vec_kernels_impl.h"

namespace mocograd {
namespace vec {

const VecKernels* GetVecKernelsScalar() {
  static const VecKernels kTable = MakeVecKernels<simd::ScalarBackend>();
  return &kTable;
}

}  // namespace vec
}  // namespace mocograd
