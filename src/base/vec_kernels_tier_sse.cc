// SSE2 kernel tier: the x86-64 baseline, compiled with no extra ISA flags.
// A compatibility tier for pre-AVX2 hardware — MulAdd pays a libm std::fma
// per lane to stay bit-identical to the FMA tiers.

#include "base/vec_kernels.h"

#if defined(MOCOGRAD_SIMD_SSE)
#include "base/vec_kernels_impl.h"
#endif

namespace mocograd {
namespace vec {

#if defined(MOCOGRAD_SIMD_SSE)
const VecKernels* GetVecKernelsSse() {
  static const VecKernels kTable = MakeVecKernels<simd::SseBackend>();
  return &kTable;
}
#else
const VecKernels* GetVecKernelsSse() { return nullptr; }
#endif

}  // namespace vec
}  // namespace mocograd
