#include "base/vec_ops.h"

#include "base/vec_kernels.h"

namespace mocograd {
namespace vec {

// Thin front-ends over the per-tier kernel table: each call looks the
// active tier up (one relaxed atomic load) so tests and the MOCOGRAD_SIMD /
// MOCOGRAD_SIMD_ISA knobs can flip the tier mid-process. The kernel bodies
// live in base/vec_kernels_impl.h, compiled once per tier with per-file
// ISA flags.

void Axpy(int64_t n, float alpha, const float* x, float* y) {
  ActiveVecKernels().axpy(n, alpha, x, y);
}

void Add(int64_t n, const float* x, float* y) {
  ActiveVecKernels().add(n, x, y);
}

void Scale(int64_t n, float alpha, float* y) {
  ActiveVecKernels().scale(n, alpha, y);
}

void Ema(int64_t n, float beta, const float* g, float* m) {
  ActiveVecKernels().ema(n, beta, g, m);
}

double DotF64(int64_t n, const float* a, const float* b) {
  return ActiveVecKernels().dot_f64(n, a, b);
}

double SquaredNormF64(int64_t n, const float* a) { return DotF64(n, a, a); }

double SumF64(int64_t n, const float* a) {
  return ActiveVecKernels().sum_f64(n, a);
}

void EwAdd(int64_t n, const float* a, const float* b, float* o) {
  ActiveVecKernels().ew_add(n, a, b, o);
}

void EwSub(int64_t n, const float* a, const float* b, float* o) {
  ActiveVecKernels().ew_sub(n, a, b, o);
}

void EwMul(int64_t n, const float* a, const float* b, float* o) {
  ActiveVecKernels().ew_mul(n, a, b, o);
}

void EwDiv(int64_t n, const float* a, const float* b, float* o) {
  ActiveVecKernels().ew_div(n, a, b, o);
}

void EwMaximum(int64_t n, const float* a, const float* b, float* o) {
  ActiveVecKernels().ew_maximum(n, a, b, o);
}

void EwAddScalar(int64_t n, const float* a, float s, float* o) {
  ActiveVecKernels().ew_add_scalar(n, a, s, o);
}

void EwMulScalar(int64_t n, const float* a, float s, float* o) {
  ActiveVecKernels().ew_mul_scalar(n, a, s, o);
}

void EwNeg(int64_t n, const float* a, float* o) {
  ActiveVecKernels().ew_neg(n, a, o);
}

void EwSqrt(int64_t n, const float* a, float* o) {
  ActiveVecKernels().ew_sqrt(n, a, o);
}

void EwAbs(int64_t n, const float* a, float* o) {
  ActiveVecKernels().ew_abs(n, a, o);
}

void EwRelu(int64_t n, const float* a, float* o) {
  ActiveVecKernels().ew_relu(n, a, o);
}

void EwClamp(int64_t n, const float* a, float lo, float hi, float* o) {
  ActiveVecKernels().ew_clamp(n, a, lo, hi, o);
}

void SgdMomentum(int64_t n, float lr, float momentum, float wd,
                 const float* g, float* v, float* x) {
  ActiveVecKernels().sgd_momentum(n, lr, momentum, wd, g, v, x);
}

void SgdPlain(int64_t n, float lr, float wd, const float* g, float* x) {
  ActiveVecKernels().sgd_plain(n, lr, wd, g, x);
}

void Adam(int64_t n, float lr, float b1, float b2, float eps, float wd,
          float bc1, float bc2, const float* g, float* m, float* v,
          float* x) {
  ActiveVecKernels().adam(n, lr, b1, b2, eps, wd, bc1, bc2, g, m, v, x);
}

void Adagrad(int64_t n, float lr, float eps, const float* g, float* a,
             float* x) {
  ActiveVecKernels().adagrad(n, lr, eps, g, a, x);
}

}  // namespace vec
}  // namespace mocograd
