#include "base/vec_ops.h"

#include "base/simd.h"

namespace mocograd {
namespace vec {

// MG_HOT_PATH — every kernel below runs on the per-step steady state;
// mg_lint enforces that no heap allocation or container growth appears
// before the matching end marker (docs/CORRECTNESS.md).

namespace {

// Reduction core shared by DotF64/SquaredNormF64/SumF64: `lane_fn(acc, lo,
// hi)` folds one 8-float step (already widened to two F64x4) into the
// accumulator pair, `tail_fn(s, i)` folds one trailing element into the
// running double. The lane decomposition is anchored at element 0 of the
// span, so a given (pointer, n) always reduces in the same order.
template <typename B, typename StepFn, typename TailFn>
double ReduceF64(int64_t n, StepFn step_fn, TailFn tail_fn) {
  using F64 = typename B::F64;
  F64 acc_lo = F64::Zero();
  F64 acc_hi = F64::Zero();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) step_fn(i, &acc_lo, &acc_hi);
  double s = ReduceAdd(acc_lo + acc_hi);
  for (; i < n; ++i) s = tail_fn(s, i);
  return s;
}

}  // namespace

void Axpy(int64_t n, float alpha, const float* x, float* y) {
  simd::Dispatch([&](auto backend) {
    using F32 = typename decltype(backend)::F32;
    const F32 va = F32::Broadcast(alpha);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      MulAdd(va, F32::Load(x + i), F32::Load(y + i)).Store(y + i);
    }
    for (; i < n; ++i) y[i] = simd::MulAdd(alpha, x[i], y[i]);
  });
}

void Add(int64_t n, const float* x, float* y) {
  simd::Dispatch([&](auto backend) {
    using F32 = typename decltype(backend)::F32;
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      (F32::Load(y + i) + F32::Load(x + i)).Store(y + i);
    }
    for (; i < n; ++i) y[i] += x[i];
  });
}

void Scale(int64_t n, float alpha, float* y) {
  simd::Dispatch([&](auto backend) {
    using F32 = typename decltype(backend)::F32;
    const F32 va = F32::Broadcast(alpha);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      (F32::Load(y + i) * va).Store(y + i);
    }
    for (; i < n; ++i) y[i] *= alpha;
  });
}

void Ema(int64_t n, float beta, const float* g, float* m) {
  const float omb = 1.0f - beta;
  simd::Dispatch([&](auto backend) {
    using F32 = typename decltype(backend)::F32;
    const F32 vb = F32::Broadcast(beta);
    const F32 vomb = F32::Broadcast(omb);
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
      MulAdd(vb, F32::Load(m + i), vomb * F32::Load(g + i)).Store(m + i);
    }
    for (; i < n; ++i) m[i] = simd::MulAdd(beta, m[i], omb * g[i]);
  });
}

double DotF64(int64_t n, const float* a, const float* b) {
  return simd::Dispatch([&](auto backend) {
    using B = decltype(backend);
    using F32 = typename B::F32;
    using F64 = typename B::F64;
    return ReduceF64<B>(
        n,
        [&](int64_t i, F64* lo, F64* hi) {
          const F32 va = F32::Load(a + i);
          const F32 vb = F32::Load(b + i);
          *lo = MulAdd(CvtLo(va), CvtLo(vb), *lo);
          *hi = MulAdd(CvtHi(va), CvtHi(vb), *hi);
        },
        [&](double s, int64_t i) {
          return simd::MulAdd(static_cast<double>(a[i]),
                              static_cast<double>(b[i]), s);
        });
  });
}

double SquaredNormF64(int64_t n, const float* a) { return DotF64(n, a, a); }

double SumF64(int64_t n, const float* a) {
  return simd::Dispatch([&](auto backend) {
    using B = decltype(backend);
    using F32 = typename B::F32;
    using F64 = typename B::F64;
    return ReduceF64<B>(
        n,
        [&](int64_t i, F64* lo, F64* hi) {
          const F32 va = F32::Load(a + i);
          *lo = *lo + CvtLo(va);
          *hi = *hi + CvtHi(va);
        },
        [&](double s, int64_t i) { return s + static_cast<double>(a[i]); });
  });
}

// MG_HOT_PATH_END

}  // namespace vec
}  // namespace mocograd
