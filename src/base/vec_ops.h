#ifndef MOCOGRAD_BASE_VEC_OPS_H_
#define MOCOGRAD_BASE_VEC_OPS_H_

#include <cstdint>

namespace mocograd {
namespace vec {

// Serial SIMD span kernels shared by the hot paths (tensor/ops.cc,
// core/grad_matrix.cc, the gradient-surgery loops in src/core, and the
// optimizer update loops). Each function processes [0, n) in 8-lane blocks
// via base/simd.h with a scalar tail that performs the identical
// per-element arithmetic, so the result is bit-identical across backends
// and across the MOCOGRAD_SIMD knob. None of these parallelize internally —
// callers that want threads wrap them in ParallelFor chunks (safe for the
// elementwise kernels, whose per-element results do not depend on lane
// grouping) or call them on the fixed reduction blocks (for the dots/sums,
// whose lane decomposition is anchored at the span start).

/// y[i] += alpha * x[i] (fused multiply-add per element).
void Axpy(int64_t n, float alpha, const float* x, float* y);

/// y[i] += x[i].
void Add(int64_t n, const float* x, float* y);

/// y[i] *= alpha.
void Scale(int64_t n, float alpha, float* y);

/// m[i] = beta * m[i] + (1 - beta) * g[i] — the EMA/momentum update
/// (computed as fma(beta, m, (1-beta)*g)).
void Ema(int64_t n, float beta, const float* g, float* m);

/// Σ a[i]·b[i] accumulated in double precision: 8 floats per step widen
/// into two 4-lane double accumulators, combined lane-wise and reduced in
/// fixed lane order at the end; tail elements fold in sequentially.
double DotF64(int64_t n, const float* a, const float* b);

/// Σ a[i]² in double precision (same decomposition as DotF64).
double SquaredNormF64(int64_t n, const float* a);

/// Σ a[i] in double precision (same decomposition as DotF64).
double SumF64(int64_t n, const float* a);

}  // namespace vec
}  // namespace mocograd

#endif  // MOCOGRAD_BASE_VEC_OPS_H_
