#ifndef MOCOGRAD_BASE_VEC_OPS_H_
#define MOCOGRAD_BASE_VEC_OPS_H_

#include <cstdint>

namespace mocograd {
namespace vec {

// Serial SIMD span kernels shared by the hot paths (tensor/ops.cc,
// core/grad_matrix.cc, the gradient-surgery loops in src/core, and the
// optimizer update loops). Each function processes [0, n) in 8-lane blocks
// with a scalar tail that performs the identical per-element arithmetic,
// so the result is bit-identical across kernel tiers and across the
// MOCOGRAD_SIMD / MOCOGRAD_SIMD_ISA knobs. Since the runtime ISA dispatch
// (docs/SIMD.md) these are thin front-ends over the per-tier function
// table in base/vec_kernels.h; the bodies live in base/vec_kernels_impl.h,
// compiled once per tier. None of these parallelize internally — callers
// that want threads wrap them in ParallelFor chunks (safe for the
// elementwise kernels, whose per-element results do not depend on lane
// grouping) or call them on the fixed reduction blocks (for the dots/sums,
// whose lane decomposition is anchored at the span start).

/// y[i] += alpha * x[i] (fused multiply-add per element).
void Axpy(int64_t n, float alpha, const float* x, float* y);

/// y[i] += x[i].
void Add(int64_t n, const float* x, float* y);

/// y[i] *= alpha.
void Scale(int64_t n, float alpha, float* y);

/// m[i] = beta * m[i] + (1 - beta) * g[i] — the EMA/momentum update
/// (computed as fma(beta, m, (1-beta)*g)).
void Ema(int64_t n, float beta, const float* g, float* m);

/// Σ a[i]·b[i] accumulated in double precision: 8 floats per step widen
/// into two 4-lane double accumulators, combined lane-wise and reduced in
/// fixed lane order at the end; tail elements fold in sequentially.
double DotF64(int64_t n, const float* a, const float* b);

/// Σ a[i]² in double precision (same decomposition as DotF64).
double SquaredNormF64(int64_t n, const float* a);

/// Σ a[i] in double precision (same decomposition as DotF64).
double SumF64(int64_t n, const float* a);

// Elementwise spans (tensor/ops.cc fast paths). `o` may alias an input.

/// o[i] = a[i] + b[i].
void EwAdd(int64_t n, const float* a, const float* b, float* o);
/// o[i] = a[i] - b[i].
void EwSub(int64_t n, const float* a, const float* b, float* o);
/// o[i] = a[i] * b[i].
void EwMul(int64_t n, const float* a, const float* b, float* o);
/// o[i] = a[i] / b[i].
void EwDiv(int64_t n, const float* a, const float* b, float* o);
/// o[i] = Max(b[i], a[i]) — the second operand (a) wins on unordered
/// comparisons, preserving tensor/ops.cc Maximum semantics.
void EwMaximum(int64_t n, const float* a, const float* b, float* o);
/// o[i] = a[i] + s.
void EwAddScalar(int64_t n, const float* a, float s, float* o);
/// o[i] = a[i] * s.
void EwMulScalar(int64_t n, const float* a, float s, float* o);
/// o[i] = -a[i] (sign-bit flip).
void EwNeg(int64_t n, const float* a, float* o);
/// o[i] = sqrt(a[i]) (exactly rounded).
void EwSqrt(int64_t n, const float* a, float* o);
/// o[i] = |a[i]| (sign-bit clear).
void EwAbs(int64_t n, const float* a, float* o);
/// o[i] = Max(a[i], 0) — NaN inputs map to 0.
void EwRelu(int64_t n, const float* a, float* o);
/// o[i] = Min(Max(a[i], lo), hi) — NaN inputs clamp to lo.
void EwClamp(int64_t n, const float* a, float lo, float hi, float* o);

// Optimizer per-tensor update spans (optim/optimizer.cc). Weight decay
// folds into the gradient via fused multiply-add, matching the lane op.

/// v = momentum*v + (wd*x + g); x -= lr*v.
void SgdMomentum(int64_t n, float lr, float momentum, float wd,
                 const float* g, float* v, float* x);
/// x -= lr * (wd*x + g).
void SgdPlain(int64_t n, float lr, float wd, const float* g, float* x);
/// Adam moment updates + bias-corrected step (bc1/bc2 precomputed).
void Adam(int64_t n, float lr, float b1, float b2, float eps, float wd,
          float bc1, float bc2, const float* g, float* m, float* v, float* x);
/// a += g²; x -= lr*g / (sqrt(a) + eps).
void Adagrad(int64_t n, float lr, float eps, const float* g, float* a,
             float* x);

}  // namespace vec
}  // namespace mocograd

#endif  // MOCOGRAD_BASE_VEC_OPS_H_
