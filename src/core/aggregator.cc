#include "core/aggregator.h"

namespace mocograd {
namespace core {

AggregationResult EqualWeight::Aggregate(const AggregationContext& ctx) {
  MG_CHECK(ctx.task_grads != nullptr);
  AggregationResult out;
  out.shared_grad = ctx.task_grads->SumRows();
  out.task_weights = OnesWeights(ctx.task_grads->num_tasks());
  return out;
}

}  // namespace core
}  // namespace mocograd
