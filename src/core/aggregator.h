#ifndef MOCOGRAD_CORE_AGGREGATOR_H_
#define MOCOGRAD_CORE_AGGREGATOR_H_

#include <string>
#include <vector>

#include "base/rng.h"
#include "core/grad_matrix.h"
#include "obs/phase_profile.h"
#include "obs/telemetry.h"

namespace mocograd {
namespace core {

/// Inputs available to a gradient-aggregation strategy at one optimization
/// step.
struct AggregationContext {
  /// K×P per-task gradients of the shared parameters. Never null.
  const GradMatrix* task_grads = nullptr;
  /// Current raw per-task losses (size K); loss-weighting methods use them.
  const std::vector<float>* losses = nullptr;
  /// 0-based optimization step index.
  int64_t step = 0;
  /// Randomness source for stochastic methods (task-order shuffles in
  /// PCGrad/MoCoGrad, RLW weight sampling, GradDrop masks). Never null.
  Rng* rng = nullptr;
  /// Optional sub-phase attribution sink. When non-null, methods with
  /// non-trivial inner work add their wall-clock split here (canonical
  /// bucket names: "gram", "solver", "eigen", "surgery", "calibrate",
  /// "momentum", "combine" — see docs/OBSERVABILITY.md). May stay null;
  /// methods must not change behavior based on it.
  obs::PhaseProfile* profile = nullptr;
  /// Optional decision-trace sink (docs/OBSERVABILITY.md "Conflict
  /// telemetry"). When non-null (the trainer calls Begin before
  /// Aggregate), methods report which pairs conflicted, the repair
  /// magnitudes applied, solver iterations/weights, and — when they already
  /// computed them — the raw pairwise cosines. Same contract as `profile`:
  /// may stay null, and methods must not change any computed value, RNG
  /// draw, or accumulation order because of it.
  obs::AggregatorTrace* trace = nullptr;
};

/// Output of one aggregation step.
struct AggregationResult {
  /// Combined gradient for the shared parameters (size P).
  std::vector<float> shared_grad;
  /// Per-task scaling applied to each task's specific-parameter gradients
  /// (and conceptually to its loss); all-ones for pure gradient-surgery
  /// methods, the learned/sampled weights for loss-weighting methods.
  std::vector<float> task_weights;
  /// Number of conflicting (GCD > 1) ordered pairs the method acted on;
  /// 0 for methods that do not inspect conflicts.
  int num_conflicts = 0;
};

/// Strategy interface for combining per-task gradients into a single update
/// direction for the shared parameters. Implementations may keep state
/// across steps (momentum buffers, loss history, EMA targets); Reset()
/// clears it so one instance can be reused across training runs.
class GradientAggregator {
 public:
  virtual ~GradientAggregator() = default;

  /// Canonical lower-case method name (e.g. "mocograd").
  virtual std::string name() const = 0;

  /// Combines the per-task gradients for this step.
  virtual AggregationResult Aggregate(const AggregationContext& ctx) = 0;

  /// Clears any cross-step state. Default: stateless.
  virtual void Reset() {}

 protected:
  /// All-ones task weights helper.
  static std::vector<float> OnesWeights(int k) {
    return std::vector<float>(k, 1.0f);
  }
};

/// Plain joint training (equal weighting): g = Σ_k g_k. The no-surgery
/// baseline every other method is compared against.
class EqualWeight : public GradientAggregator {
 public:
  std::string name() const override { return "ew"; }
  AggregationResult Aggregate(const AggregationContext& ctx) override;
};

}  // namespace core
}  // namespace mocograd

#endif  // MOCOGRAD_CORE_AGGREGATOR_H_
