#include "core/aligned_mtl.h"

#include <cmath>

#include "solvers/eigen.h"

namespace mocograd {
namespace core {

AlignedMtl::AlignedMtl(AlignedMtlOptions options) : options_(options) {}

AggregationResult AlignedMtl::Aggregate(const AggregationContext& ctx) {
  MG_CHECK(ctx.task_grads != nullptr);
  const GradMatrix& g = *ctx.task_grads;
  const int k = g.num_tasks();

  AggregationResult out;
  out.task_weights = OnesWeights(k);
  if (k == 1) {
    out.shared_grad = g.SumRows();
    return out;
  }

  std::vector<std::vector<double>> gram;
  {
    obs::ScopedPhase phase(ctx.profile, "gram");
    gram = g.Gram();
  }
  if (ctx.trace != nullptr) ctx.trace->SetCosinesFromGram(gram);
  solvers::EigenDecomposition eig;
  {
    obs::ScopedPhase eigen_phase(ctx.profile, "eigen");
    eig = solvers::JacobiEigenSymmetric(gram);
  }
  const double lambda_max = std::max(eig.values[0], 0.0);
  if (lambda_max <= 1e-30) {  // all-zero gradients
    out.shared_grad = g.SumRows();
    return out;
  }

  // Smallest retained singular value (σ = √λ over the numerical rank).
  const double cutoff = options_.rank_eps * lambda_max;
  double sigma_min = std::sqrt(lambda_max);
  int rank = 0;
  for (double lam : eig.values) {
    if (lam > cutoff) {
      sigma_min = std::sqrt(lam);
      ++rank;
    }
  }

  // w = σ_min · Σ_r (1/σ_r) u_r (u_rᵀ 1) over the retained components.
  std::vector<double> w(k, 0.0);
  for (int r = 0; r < rank; ++r) {
    const double sigma_r = std::sqrt(eig.values[r]);
    double dot_ones = 0.0;
    for (int i = 0; i < k; ++i) dot_ones += eig.vectors[r][i];
    const double coef = sigma_min / sigma_r * dot_ones;
    for (int i = 0; i < k; ++i) w[i] += coef * eig.vectors[r][i];
  }

  if (ctx.trace != nullptr) {
    ctx.trace->set_solver_weights(w);
    ctx.trace->AddStat("alignedmtl.rank", rank);
    ctx.trace->AddStat("alignedmtl.sigma_min", sigma_min);
  }
  {
    obs::ScopedPhase combine_phase(ctx.profile, "combine");
    out.shared_grad = g.WeightedSumRows(w);
  }
  return out;
}

}  // namespace core
}  // namespace mocograd
