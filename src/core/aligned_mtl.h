#ifndef MOCOGRAD_CORE_ALIGNED_MTL_H_
#define MOCOGRAD_CORE_ALIGNED_MTL_H_

#include <string>

#include "core/aggregator.h"

namespace mocograd {
namespace core {

/// Options for Aligned-MTL.
struct AlignedMtlOptions {
  /// Eigenvalues below eps·λ_max are treated as a rank deficiency.
  double rank_eps = 1e-8;
};

/// Aligned-MTL (Senushkin et al., CVPR 2023) — extension baseline beyond
/// the paper's tables. Conditions the gradient matrix to condition number 1
/// by whitening its principal components: with G = UΣVᵀ (SVD of the K×P
/// task-gradient matrix), the aligned matrix is Ĝ = σ_min·U Vᵀ, and the
/// update is the row-sum of Ĝ. Everything is computed in the K×K Gram
/// space: GGᵀ = U Σ² Uᵀ via a Jacobi eigensolver, and the row-sum of Ĝ
/// equals wᵀG with w = σ_min · U Σ⁻¹ Uᵀ 1.
class AlignedMtl : public GradientAggregator {
 public:
  explicit AlignedMtl(AlignedMtlOptions options = {});

  std::string name() const override { return "alignedmtl"; }
  AggregationResult Aggregate(const AggregationContext& ctx) override;

 private:
  AlignedMtlOptions options_;
};

}  // namespace core
}  // namespace mocograd

#endif  // MOCOGRAD_CORE_ALIGNED_MTL_H_
