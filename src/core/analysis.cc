#include "core/analysis.h"

#include <sstream>

#include "base/check.h"

namespace mocograd {
namespace core {

void ConflictTracker::Record(const GradMatrix& grads) {
  RecordFromCosines(grads.num_tasks(), PairwiseCosines(grads));
}

void ConflictTracker::RecordFromCosines(int num_tasks,
                                        const std::vector<double>& cosines) {
  const int k = num_tasks;
  MG_CHECK_EQ(static_cast<size_t>(k) * k, cosines.size());
  if (num_tasks_ == 0) {
    num_tasks_ = k;
    conflict_counts_.assign(static_cast<size_t>(k) * k, 0);
    gcd_sums_.assign(static_cast<size_t>(k) * k, 0.0);
  }
  MG_CHECK_EQ(num_tasks_, k, "task count changed; call Reset()");

  double total = 0.0;
  int pairs = 0;
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      const double gcd = 1.0 - cosines[Index(i, j)];
      gcd_sums_[Index(i, j)] += gcd;
      gcd_sums_[Index(j, i)] += gcd;
      if (gcd > 1.0) {
        ++conflict_counts_[Index(i, j)];
        ++conflict_counts_[Index(j, i)];
      }
      total += gcd;
      ++pairs;
    }
  }
  gcd_trace_.push_back(pairs > 0 ? total / pairs : 0.0);
  ++num_steps_;
}

double ConflictTracker::ConflictFrequency(int i, int j) const {
  MG_CHECK_GT(num_steps_, 0, "nothing recorded");
  MG_CHECK(i >= 0 && i < num_tasks_ && j >= 0 && j < num_tasks_);
  if (i == j) return 0.0;
  return static_cast<double>(conflict_counts_[Index(i, j)]) / num_steps_;
}

double ConflictTracker::MeanPairGcd(int i, int j) const {
  MG_CHECK_GT(num_steps_, 0, "nothing recorded");
  MG_CHECK(i >= 0 && i < num_tasks_ && j >= 0 && j < num_tasks_);
  if (i == j) return 0.0;
  return gcd_sums_[Index(i, j)] / num_steps_;
}

std::pair<int, int> ConflictTracker::MostConflictingPair() const {
  if (num_steps_ == 0) return {-1, -1};
  std::pair<int, int> best = {-1, -1};
  int64_t best_count = -1;
  for (int i = 0; i < num_tasks_; ++i) {
    for (int j = i + 1; j < num_tasks_; ++j) {
      if (conflict_counts_[Index(i, j)] > best_count) {
        best_count = conflict_counts_[Index(i, j)];
        best = {i, j};
      }
    }
  }
  return best;
}

std::string ConflictTracker::Summary() const {
  std::ostringstream out;
  out << "ConflictTracker: " << num_steps_ << " steps, " << num_tasks_
      << " tasks\n";
  if (num_steps_ == 0) return out.str();
  out << "conflict frequency (rows=i, cols=j):\n";
  for (int i = 0; i < num_tasks_; ++i) {
    out << "  ";
    for (int j = 0; j < num_tasks_; ++j) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.2f ", ConflictFrequency(i, j));
      out << buf;
    }
    out << "\n";
  }
  const auto [i, j] = MostConflictingPair();
  out << "most conflicting pair: (" << i << ", " << j << ") at "
      << ConflictFrequency(i, j) << "\n";
  return out.str();
}

void ConflictTracker::Reset() {
  num_tasks_ = 0;
  num_steps_ = 0;
  gcd_trace_.clear();
  conflict_counts_.clear();
  gcd_sums_.clear();
}

}  // namespace core
}  // namespace mocograd
