#ifndef MOCOGRAD_CORE_ANALYSIS_H_
#define MOCOGRAD_CORE_ANALYSIS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/conflict.h"
#include "core/grad_matrix.h"

namespace mocograd {
namespace core {

/// Accumulates gradient-conflict statistics across training steps: the
/// per-step mean GCD trace and the pairwise conflict-frequency matrix —
/// the raw material of the paper's §III analysis, packaged for research
/// users who want to inspect *which* task pairs fight and when.
class ConflictTracker {
 public:
  /// Records one step's task-gradient matrix. Equivalent to
  /// RecordFromCosines(grads.num_tasks(), PairwiseCosines(grads)).
  void Record(const GradMatrix& grads);

  /// Records one step from an already-computed K×K pairwise cosine matrix
  /// (row-major; GCD = 1 − cos). The dedupe path: when an aggregator
  /// published its cosines through obs::AggregatorTrace, the trainer feeds
  /// them here instead of paying a second O(K²·P) sweep.
  void RecordFromCosines(int num_tasks, const std::vector<double>& cosines);

  int64_t num_steps() const { return num_steps_; }
  int num_tasks() const { return num_tasks_; }

  /// Mean pairwise GCD per recorded step.
  const std::vector<double>& gcd_trace() const { return gcd_trace_; }

  /// Fraction of recorded steps in which tasks i and j conflicted
  /// (GCD > 1). Symmetric; diagonal is 0.
  double ConflictFrequency(int i, int j) const;

  /// Mean GCD between tasks i and j over all recorded steps.
  double MeanPairGcd(int i, int j) const;

  /// The pair with the highest conflict frequency (i < j); {-1, -1} before
  /// any recording.
  std::pair<int, int> MostConflictingPair() const;

  /// Multi-line human-readable summary of the conflict structure.
  std::string Summary() const;

  /// Clears all recorded state.
  void Reset();

 private:
  int64_t Index(int i, int j) const { return i * num_tasks_ + j; }

  int num_tasks_ = 0;
  int64_t num_steps_ = 0;
  std::vector<double> gcd_trace_;
  std::vector<int64_t> conflict_counts_;  // K×K
  std::vector<double> gcd_sums_;          // K×K
};

}  // namespace core
}  // namespace mocograd

#endif  // MOCOGRAD_CORE_ANALYSIS_H_
