#include "core/cagrad.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "solvers/simplex.h"

namespace mocograd {
namespace core {

CaGrad::CaGrad(CaGradOptions options) : options_(options) {
  MG_CHECK_GE(options_.c, 0.0f);
  MG_CHECK_GT(options_.inner_iters, 0);
}

AggregationResult CaGrad::Aggregate(const AggregationContext& ctx) {
  MG_CHECK(ctx.task_grads != nullptr);
  const GradMatrix& g = *ctx.task_grads;
  const int k = g.num_tasks();
  std::vector<std::vector<double>> gram;
  {
    obs::ScopedPhase phase(ctx.profile, "gram");
    gram = g.Gram();
  }
  if (ctx.trace != nullptr) ctx.trace->SetCosinesFromGram(gram);

  // Combined coefficients per task, produced by the inner solver:
  // (u_i + λ w_i) · rescale · K (the K factor restores EW magnitude — u
  // sums to 1, EW sums to K).
  std::vector<double> coef(k);
  {
    obs::ScopedPhase solver_phase(ctx.profile, "solver");
    MG_METRIC_COUNT("solver.cagrad.inner_iters", options_.inner_iters);

    // u = average weights (g0 = G^T u); precompute M u.
    const double uk = 1.0 / static_cast<double>(k);
    std::vector<double> mu(k, 0.0);
    for (int i = 0; i < k; ++i) {
      for (int j = 0; j < k; ++j) mu[i] += gram[i][j] * uk;
    }
    double g0_norm2 = 0.0;
    for (int i = 0; i < k; ++i) g0_norm2 += mu[i] * uk;
    g0_norm2 = std::max(g0_norm2, 0.0);
    const double sqrt_phi =
        static_cast<double>(options_.c) * std::sqrt(g0_norm2);

    // Projected gradient descent on F(w) = wᵀMu + √φ·√(wᵀMw).
    std::vector<double> w(k, uk);
    std::vector<double> mw(k, 0.0);
    std::vector<double> grad(k, 0.0);
    for (int it = 0; it < options_.inner_iters; ++it) {
      double wmw = 0.0;
      for (int i = 0; i < k; ++i) {
        mw[i] = 0.0;
        for (int j = 0; j < k; ++j) mw[i] += gram[i][j] * w[j];
      }
      for (int i = 0; i < k; ++i) wmw += w[i] * mw[i];
      const double gw_norm = std::sqrt(std::max(wmw, 1e-14));
      double max_abs = 1e-12;
      for (int i = 0; i < k; ++i) {
        grad[i] = mu[i] + sqrt_phi * mw[i] / gw_norm;
        max_abs = std::max(max_abs, std::fabs(grad[i]));
      }
      // Normalized step keeps the iteration scale-invariant in ‖G‖.
      const double eta = 0.25 / max_abs;
      for (int i = 0; i < k; ++i) w[i] -= eta * grad[i];
      w = solvers::ProjectToSimplex(std::move(w));
    }

    // d = g0 + (√φ/‖g_w‖) g_w, rescaled by 1/(1+c²).
    double wmw = 0.0;
    for (int i = 0; i < k; ++i) {
      mw[i] = 0.0;
      for (int j = 0; j < k; ++j) mw[i] += gram[i][j] * w[j];
    }
    for (int i = 0; i < k; ++i) wmw += w[i] * mw[i];
    const double gw_norm = std::sqrt(std::max(wmw, 1e-14));
    const double lam = gw_norm > 1e-12 ? sqrt_phi / gw_norm : 0.0;
    const double rescale = 1.0 / (1.0 + options_.c * options_.c);
    for (int i = 0; i < k; ++i) {
      coef[i] = (uk + lam * w[i]) * rescale * static_cast<double>(k);
    }
  }

  if (ctx.trace != nullptr) {
    ctx.trace->set_solver_iterations(options_.inner_iters);
    ctx.trace->set_solver_weights(coef);
  }

  AggregationResult out;
  {
    obs::ScopedPhase combine_phase(ctx.profile, "combine");
    out.shared_grad = g.WeightedSumRows(coef);
  }
  out.task_weights = OnesWeights(k);
  return out;
}

}  // namespace core
}  // namespace mocograd
