#ifndef MOCOGRAD_CORE_CAGRAD_H_
#define MOCOGRAD_CORE_CAGRAD_H_

#include <string>

#include "core/aggregator.h"

namespace mocograd {
namespace core {

/// Options for CAGrad.
struct CaGradOptions {
  /// c parameter of CAGrad (convergence/leeway trade-off); 0.4 is the
  /// original paper's default.
  float c = 0.4f;
  /// Projected-gradient iterations for the inner dual problem.
  int inner_iters = 50;
};

/// Conflict-Averse Gradient descent (Liu et al., NeurIPS 2021). Finds the
/// update d = g₀ + (√φ/‖g_w‖)·g_w, φ = c²‖g₀‖², where g_w = Σ w_i g_i and
/// the simplex weights w minimize the dual objective
///   F(w) = g_wᵀ g₀ + √φ · ‖g_w‖,
/// solved here by projected gradient descent on the Gram matrix. The
/// result is divided by (1 + c²) as in the reference implementation.
class CaGrad : public GradientAggregator {
 public:
  explicit CaGrad(CaGradOptions options = {});

  std::string name() const override { return "cagrad"; }
  AggregationResult Aggregate(const AggregationContext& ctx) override;

 private:
  CaGradOptions options_;
};

}  // namespace core
}  // namespace mocograd

#endif  // MOCOGRAD_CORE_CAGRAD_H_
