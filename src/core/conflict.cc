#include "core/conflict.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"

namespace mocograd {
namespace core {

namespace {
constexpr double kEps = 1e-12;
}  // namespace

double CosineSimilarity(const float* a, const float* b, int64_t n) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  const double denom = std::sqrt(na) * std::sqrt(nb);
  if (denom < kEps) return 0.0;
  return dot / denom;
}

double Gcd(const float* a, const float* b, int64_t n) {
  return 1.0 - CosineSimilarity(a, b, n);
}

bool IsConflicting(const float* a, const float* b, int64_t n) {
  return Gcd(a, b, n) > 1.0;
}

ConflictStats ComputeConflictStats(const GradMatrix& grads) {
  return ConflictStatsFromCosines(grads.num_tasks(), PairwiseCosines(grads));
}

std::vector<double> PairwiseCosines(const GradMatrix& grads) {
  const int k = grads.num_tasks();
  std::vector<double> cosines(static_cast<size_t>(k) * k, 1.0);
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      const double cos =
          CosineSimilarity(grads.Row(i), grads.Row(j), grads.dim());
      cosines[static_cast<size_t>(i) * k + j] = cos;
      cosines[static_cast<size_t>(j) * k + i] = cos;
    }
  }
  return cosines;
}

ConflictStats ConflictStatsFromCosines(int num_tasks,
                                       const std::vector<double>& cosines) {
  MG_CHECK_EQ(static_cast<size_t>(num_tasks) * num_tasks, cosines.size());
  ConflictStats stats;
  double total = 0.0;
  for (int i = 0; i < num_tasks; ++i) {
    for (int j = i + 1; j < num_tasks; ++j) {
      const double gcd = 1.0 - cosines[static_cast<size_t>(i) * num_tasks + j];
      total += gcd;
      stats.max_gcd = std::max(stats.max_gcd, gcd);
      if (gcd > 1.0) ++stats.num_conflicting_pairs;
      ++stats.num_pairs;
    }
  }
  if (stats.num_pairs > 0) total /= stats.num_pairs;
  stats.mean_gcd = total;
  return stats;
}

}  // namespace core
}  // namespace mocograd
