#ifndef MOCOGRAD_CORE_CONFLICT_H_
#define MOCOGRAD_CORE_CONFLICT_H_

#include <cstdint>
#include <vector>

#include "core/grad_matrix.h"

namespace mocograd {
namespace core {

/// Cosine similarity of two flat gradients (0 when either is ~zero).
double CosineSimilarity(const float* a, const float* b, int64_t n);

/// Gradient Conflict Degree, Definition 3 of the paper:
///   GCD(g_i, g_j) = 1 − cos φ_ij.
/// Conflict occurs iff GCD > 1 (equivalently cos φ < 0).
double Gcd(const float* a, const float* b, int64_t n);

/// True when the pair of gradients conflicts under Definition 3.
bool IsConflicting(const float* a, const float* b, int64_t n);

/// Pairwise conflict statistics for one optimization step, the raw material
/// of the paper's Fig. 2 analysis (TCI-vs-GCD correlation).
struct ConflictStats {
  /// Mean pairwise GCD over all i<j pairs.
  double mean_gcd = 0.0;
  /// Maximum pairwise GCD.
  double max_gcd = 0.0;
  /// Number of conflicting pairs (GCD > 1).
  int num_conflicting_pairs = 0;
  /// Total number of pairs considered.
  int num_pairs = 0;
};

/// Computes pairwise conflict statistics over the task-gradient matrix.
/// Equivalent to ConflictStatsFromCosines(PairwiseCosines(grads)).
ConflictStats ComputeConflictStats(const GradMatrix& grads);

/// The full K×K pairwise cosine matrix of the task gradients (row-major,
/// symmetric, diagonal 1). Same per-pair math as CosineSimilarity.
std::vector<double> PairwiseCosines(const GradMatrix& grads);

/// Conflict statistics from an already-computed K×K cosine matrix — the
/// dedupe path for aggregators that publish their cosines through
/// obs::AggregatorTrace (GCD = 1 − cos, pairs visited in i<j row order,
/// matching ComputeConflictStats exactly).
ConflictStats ConflictStatsFromCosines(int num_tasks,
                                       const std::vector<double>& cosines);

}  // namespace core
}  // namespace mocograd

#endif  // MOCOGRAD_CORE_CONFLICT_H_
