#include "core/dwa.h"

#include <cmath>

namespace mocograd {
namespace core {

Dwa::Dwa(DwaOptions options) : options_(options) {
  MG_CHECK_GT(options_.temperature, 0.0f);
}

void Dwa::Reset() {
  prev_losses_.clear();
  prev_prev_losses_.clear();
}

AggregationResult Dwa::Aggregate(const AggregationContext& ctx) {
  MG_CHECK(ctx.task_grads != nullptr);
  MG_CHECK(ctx.losses != nullptr, "DWA needs per-task losses");
  const GradMatrix& g = *ctx.task_grads;
  const int k = g.num_tasks();
  MG_CHECK_EQ(static_cast<int>(ctx.losses->size()), k);

  std::vector<double> w(k, 1.0);
  if (!prev_losses_.empty() && !prev_prev_losses_.empty()) {
    std::vector<double> r(k);
    double mx = -1e30;
    for (int i = 0; i < k; ++i) {
      const double denom = std::max(1e-12f, prev_prev_losses_[i]);
      r[i] = prev_losses_[i] / denom / options_.temperature;
      mx = std::max(mx, r[i]);
    }
    double denom = 0.0;
    for (int i = 0; i < k; ++i) {
      r[i] = std::exp(r[i] - mx);
      denom += r[i];
    }
    for (int i = 0; i < k; ++i) {
      w[i] = static_cast<double>(k) * r[i] / denom;
    }
  }

  prev_prev_losses_ = prev_losses_;
  prev_losses_ = *ctx.losses;

  if (ctx.trace != nullptr) ctx.trace->set_solver_weights(w);
  AggregationResult out;
  out.shared_grad = g.WeightedSumRows(w);
  out.task_weights.resize(k);
  for (int i = 0; i < k; ++i) out.task_weights[i] = static_cast<float>(w[i]);
  return out;
}

}  // namespace core
}  // namespace mocograd
