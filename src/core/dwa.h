#ifndef MOCOGRAD_CORE_DWA_H_
#define MOCOGRAD_CORE_DWA_H_

#include <string>
#include <vector>

#include "core/aggregator.h"

namespace mocograd {
namespace core {

/// Options for Dynamic Weight Average.
struct DwaOptions {
  /// Softmax temperature T (2.0 in Liu et al., CVPR 2019).
  float temperature = 2.0f;
};

/// Dynamic Weight Average (Liu et al., CVPR 2019): task weights follow the
/// relative descending rate of the losses,
///   r_k = L_k(t−1) / L_k(t−2),  w_k = K · softmax(r_k / T),
/// so tasks whose loss stalls get up-weighted. The first two steps use
/// equal weights.
class Dwa : public GradientAggregator {
 public:
  explicit Dwa(DwaOptions options = {});

  std::string name() const override { return "dwa"; }
  AggregationResult Aggregate(const AggregationContext& ctx) override;
  void Reset() override;

 private:
  DwaOptions options_;
  std::vector<float> prev_losses_;       // L(t-1)
  std::vector<float> prev_prev_losses_;  // L(t-2)
};

}  // namespace core
}  // namespace mocograd

#endif  // MOCOGRAD_CORE_DWA_H_
