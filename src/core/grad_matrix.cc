#include "core/grad_matrix.h"

#include <algorithm>
#include <cmath>

#include "base/thread_pool.h"
#include "base/vec_ops.h"

namespace mocograd {
namespace core {

namespace {

// Fixed block length for the dot-product reductions, mirroring the scheme
// in tensor/ops.cc: each block is summed sequentially and the per-block
// partials are combined in block order, so the result is bit-identical for
// any thread-pool size (including the serial path).
constexpr int64_t kReduceBlock = 1 << 15;

// Minimum columns per chunk for the column-parallel row combinations.
constexpr int64_t kColGrain = 1 << 14;

}  // namespace

void GradMatrix::SetRow(int k, const std::vector<float>& src) {
  MG_CHECK_EQ(static_cast<int64_t>(src.size()), dim_, "SetRow size");
  std::copy(src.begin(), src.end(), Row(k));
}

std::vector<float> GradMatrix::RowVector(int k) const {
  const float* r = Row(k);
  return std::vector<float>(r, r + dim_);
}

double GradMatrix::RowDot(int i, int j) const {
  const float* a = Row(i);
  const float* b = Row(j);
  const int64_t num_blocks = (dim_ + kReduceBlock - 1) / kReduceBlock;
  auto block_sum = [a, b](int64_t p0, int64_t p1) {
    return vec::DotF64(p1 - p0, a + p0, b + p0);
  };
  if (num_blocks <= 1) return block_sum(0, dim_);
  std::vector<double> partials(num_blocks);
  ParallelFor(0, num_blocks, 1, [&](int64_t b0, int64_t b1) {
    for (int64_t blk = b0; blk < b1; ++blk) {
      partials[blk] = block_sum(blk * kReduceBlock,
                                std::min(dim_, (blk + 1) * kReduceBlock));
    }
  });
  double s = 0.0;
  for (double p : partials) s += p;
  return s;
}

double GradMatrix::RowNorm(int i) const { return std::sqrt(RowDot(i, i)); }

std::vector<std::vector<double>> GradMatrix::Gram() const {
  std::vector<std::vector<double>> m(num_tasks_,
                                     std::vector<double>(num_tasks_, 0.0));
  for (int i = 0; i < num_tasks_; ++i) {
    for (int j = i; j < num_tasks_; ++j) {
      m[i][j] = m[j][i] = RowDot(i, j);
    }
  }
  return m;
}

std::vector<float> GradMatrix::SumRows() const {
  std::vector<float> out(dim_, 0.0f);
  float* po = out.data();
  // Column ranges are disjoint; every output element accumulates its K
  // contributions in fixed task order, so any partition is bit-identical.
  ParallelFor(0, dim_, kColGrain, [&](int64_t p0, int64_t p1) {
    for (int k = 0; k < num_tasks_; ++k) {
      vec::Add(p1 - p0, Row(k) + p0, po + p0);
    }
  });
  return out;
}

std::vector<float> GradMatrix::WeightedSumRows(
    const std::vector<double>& w) const {
  MG_CHECK_EQ(static_cast<int>(w.size()), num_tasks_, "weight count");
  std::vector<float> out(dim_, 0.0f);
  float* po = out.data();
  ParallelFor(0, dim_, kColGrain, [&](int64_t p0, int64_t p1) {
    for (int k = 0; k < num_tasks_; ++k) {
      vec::Axpy(p1 - p0, static_cast<float>(w[k]), Row(k) + p0, po + p0);
    }
  });
  return out;
}

}  // namespace core
}  // namespace mocograd
