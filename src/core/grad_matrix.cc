#include "core/grad_matrix.h"

#include <cmath>

namespace mocograd {
namespace core {

void GradMatrix::SetRow(int k, const std::vector<float>& src) {
  MG_CHECK_EQ(static_cast<int64_t>(src.size()), dim_, "SetRow size");
  std::copy(src.begin(), src.end(), Row(k));
}

std::vector<float> GradMatrix::RowVector(int k) const {
  const float* r = Row(k);
  return std::vector<float>(r, r + dim_);
}

double GradMatrix::RowDot(int i, int j) const {
  const float* a = Row(i);
  const float* b = Row(j);
  double s = 0.0;
  for (int64_t p = 0; p < dim_; ++p) s += static_cast<double>(a[p]) * b[p];
  return s;
}

double GradMatrix::RowNorm(int i) const { return std::sqrt(RowDot(i, i)); }

std::vector<std::vector<double>> GradMatrix::Gram() const {
  std::vector<std::vector<double>> m(num_tasks_,
                                     std::vector<double>(num_tasks_, 0.0));
  for (int i = 0; i < num_tasks_; ++i) {
    for (int j = i; j < num_tasks_; ++j) {
      m[i][j] = m[j][i] = RowDot(i, j);
    }
  }
  return m;
}

std::vector<float> GradMatrix::SumRows() const {
  std::vector<float> out(dim_, 0.0f);
  for (int k = 0; k < num_tasks_; ++k) {
    const float* r = Row(k);
    for (int64_t p = 0; p < dim_; ++p) out[p] += r[p];
  }
  return out;
}

std::vector<float> GradMatrix::WeightedSumRows(
    const std::vector<double>& w) const {
  MG_CHECK_EQ(static_cast<int>(w.size()), num_tasks_, "weight count");
  std::vector<float> out(dim_, 0.0f);
  for (int k = 0; k < num_tasks_; ++k) {
    const float* r = Row(k);
    const float wk = static_cast<float>(w[k]);
    for (int64_t p = 0; p < dim_; ++p) out[p] += wk * r[p];
  }
  return out;
}

}  // namespace core
}  // namespace mocograd
