#ifndef MOCOGRAD_CORE_GRAD_MATRIX_H_
#define MOCOGRAD_CORE_GRAD_MATRIX_H_

#include <cstdint>
#include <vector>

#include "base/check.h"

namespace mocograd {
namespace core {

/// Dense K×P matrix holding one flattened shared-parameter gradient per
/// task. This is the common currency of every gradient-manipulation method:
/// the trainer fills one row per task-backward pass and hands the matrix to
/// a GradientAggregator.
class GradMatrix {
 public:
  GradMatrix(int num_tasks, int64_t dim)
      : num_tasks_(num_tasks),
        dim_(dim),
        data_(static_cast<size_t>(num_tasks) * dim, 0.0f) {
    MG_CHECK_GT(num_tasks, 0);
    MG_CHECK_GT(dim, 0);
  }

  int num_tasks() const { return num_tasks_; }
  int64_t dim() const { return dim_; }

  float* Row(int k) {
    MG_CHECK_GE(k, 0);
    MG_CHECK_LT(k, num_tasks_);
    return data_.data() + static_cast<size_t>(k) * dim_;
  }
  const float* Row(int k) const {
    MG_CHECK_GE(k, 0);
    MG_CHECK_LT(k, num_tasks_);
    return data_.data() + static_cast<size_t>(k) * dim_;
  }

  /// Copies `src` (size dim) into row k.
  void SetRow(int k, const std::vector<float>& src);

  /// Row k as a std::vector copy.
  std::vector<float> RowVector(int k) const;

  /// g_i · g_j in double precision.
  double RowDot(int i, int j) const;

  /// ‖g_i‖₂.
  double RowNorm(int i) const;

  /// Full K×K Gram matrix.
  std::vector<std::vector<double>> Gram() const;

  /// Σ_k g_k.
  std::vector<float> SumRows() const;

  /// Σ_k w_k g_k with per-task weights.
  std::vector<float> WeightedSumRows(const std::vector<double>& w) const;

 private:
  int num_tasks_;
  int64_t dim_;
  std::vector<float> data_;
};

}  // namespace core
}  // namespace mocograd

#endif  // MOCOGRAD_CORE_GRAD_MATRIX_H_
