#include "core/graddrop.h"

#include <cmath>

namespace mocograd {
namespace core {

AggregationResult GradDrop::Aggregate(const AggregationContext& ctx) {
  MG_CHECK(ctx.task_grads != nullptr);
  MG_CHECK(ctx.rng != nullptr, "GradDrop is stochastic; rng required");
  const GradMatrix& g = *ctx.task_grads;
  const int k = g.num_tasks();
  const int64_t p = g.dim();

  AggregationResult out;
  out.shared_grad.assign(p, 0.0f);
  out.task_weights = OnesWeights(k);

  for (int64_t q = 0; q < p; ++q) {
    double sum = 0.0, abs_sum = 0.0;
    for (int i = 0; i < k; ++i) {
      const float v = g.Row(i)[q];
      sum += v;
      abs_sum += std::fabs(v);
    }
    if (abs_sum <= 1e-12) continue;
    const double purity = 0.5 * (1.0 + sum / abs_sum);
    const bool keep_positive = ctx.rng->Uniform() < purity;
    double kept = 0.0;
    for (int i = 0; i < k; ++i) {
      const float v = g.Row(i)[q];
      if ((keep_positive && v > 0.0f) || (!keep_positive && v < 0.0f)) {
        kept += v;
      }
    }
    out.shared_grad[q] = static_cast<float>(kept);
  }
  return out;
}

}  // namespace core
}  // namespace mocograd
