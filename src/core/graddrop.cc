#include "core/graddrop.h"

#include <cmath>

namespace mocograd {
namespace core {

AggregationResult GradDrop::Aggregate(const AggregationContext& ctx) {
  MG_CHECK(ctx.task_grads != nullptr);
  MG_CHECK(ctx.rng != nullptr, "GradDrop is stochastic; rng required");
  const GradMatrix& g = *ctx.task_grads;
  const int k = g.num_tasks();
  const int64_t p = g.dim();

  AggregationResult out;
  out.shared_grad.assign(p, 0.0f);
  out.task_weights = OnesWeights(k);

  int64_t active_coords = 0;
  int64_t kept_positive_coords = 0;
  for (int64_t q = 0; q < p; ++q) {
    double sum = 0.0, abs_sum = 0.0;
    for (int i = 0; i < k; ++i) {
      const float v = g.Row(i)[q];
      sum += v;
      abs_sum += std::fabs(v);
    }
    if (abs_sum <= 1e-12) continue;
    ++active_coords;
    const double purity = 0.5 * (1.0 + sum / abs_sum);
    const bool keep_positive = ctx.rng->Uniform() < purity;
    if (keep_positive) ++kept_positive_coords;
    double kept = 0.0;
    for (int i = 0; i < k; ++i) {
      const float v = g.Row(i)[q];
      if ((keep_positive && v > 0.0f) || (!keep_positive && v < 0.0f)) {
        kept += v;
      }
    }
    out.shared_grad[q] = static_cast<float>(kept);
  }
  if (ctx.trace != nullptr && active_coords > 0) {
    // GradDrop decides per coordinate, not per pair: report the fraction of
    // active coordinates whose positive sign won the dropout lottery.
    ctx.trace->AddStat("graddrop.keep_positive_frac",
                       static_cast<double>(kept_positive_coords) /
                           static_cast<double>(active_coords));
    ctx.trace->AddStat("graddrop.active_coords",
                       static_cast<double>(active_coords));
  }
  return out;
}

}  // namespace core
}  // namespace mocograd
