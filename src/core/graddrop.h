#ifndef MOCOGRAD_CORE_GRADDROP_H_
#define MOCOGRAD_CORE_GRADDROP_H_

#include <string>

#include "core/aggregator.h"

namespace mocograd {
namespace core {

/// Gradient Sign Dropout (Chen et al., NeurIPS 2020). Per coordinate,
/// computes the sign-purity
///   P = ½ (1 + Σ_k g_k / Σ_k |g_k|)
/// and keeps either the positive or the negative task contributions with
/// probability P / (1−P) respectively, masking the rest.
class GradDrop : public GradientAggregator {
 public:
  std::string name() const override { return "graddrop"; }
  AggregationResult Aggregate(const AggregationContext& ctx) override;
};

}  // namespace core
}  // namespace mocograd

#endif  // MOCOGRAD_CORE_GRADDROP_H_
