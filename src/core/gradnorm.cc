#include "core/gradnorm.h"

#include <algorithm>
#include <cmath>

namespace mocograd {
namespace core {

GradNorm::GradNorm(GradNormOptions options) : options_(options) {
  MG_CHECK_GT(options_.weight_lr, 0.0f);
}

void GradNorm::Reset() {
  initial_losses_.clear();
  weights_.clear();
}

AggregationResult GradNorm::Aggregate(const AggregationContext& ctx) {
  MG_CHECK(ctx.task_grads != nullptr);
  MG_CHECK(ctx.losses != nullptr, "GradNorm needs per-task losses");
  const GradMatrix& g = *ctx.task_grads;
  const int k = g.num_tasks();
  MG_CHECK_EQ(static_cast<int>(ctx.losses->size()), k);

  if (weights_.empty()) {
    weights_.assign(k, 1.0);
    initial_losses_ = *ctx.losses;
    for (float& l : initial_losses_) l = std::max(l, 1e-8f);
  }
  MG_CHECK_EQ(static_cast<int>(weights_.size()), k,
              "task count changed; call Reset()");

  // Inverse training rates r_k = (L_k / L_k(0)) / mean.
  std::vector<double> rate(k);
  double mean_rate = 0.0;
  for (int i = 0; i < k; ++i) {
    rate[i] = (*ctx.losses)[i] / initial_losses_[i];
    mean_rate += rate[i];
  }
  mean_rate = std::max(mean_rate / k, 1e-12);

  // Weighted gradient norms and their target.
  std::vector<double> norms(k);
  double mean_weighted = 0.0;
  for (int i = 0; i < k; ++i) {
    norms[i] = g.RowNorm(i);
    mean_weighted += weights_[i] * norms[i];
  }
  mean_weighted /= k;

  // One gradient step on |w_i * norm_i − target_i| per weight.
  for (int i = 0; i < k; ++i) {
    const double target =
        mean_weighted * std::pow(rate[i] / mean_rate,
                                 static_cast<double>(options_.alpha));
    const double diff = weights_[i] * norms[i] - target;
    const double grad = (diff > 0 ? 1.0 : -1.0) * norms[i];
    weights_[i] -= options_.weight_lr * grad;
    weights_[i] = std::max(weights_[i], 1e-3);
  }
  // Renormalize to sum K (the original paper renormalizes every step).
  double sum = 0.0;
  for (double w : weights_) sum += w;
  for (double& w : weights_) w *= static_cast<double>(k) / sum;

  if (ctx.trace != nullptr) {
    ctx.trace->set_grad_norms(norms);
    ctx.trace->set_solver_weights(weights_);
  }
  AggregationResult out;
  out.shared_grad = g.WeightedSumRows(weights_);
  out.task_weights.resize(k);
  for (int i = 0; i < k; ++i) {
    out.task_weights[i] = static_cast<float>(weights_[i]);
  }
  return out;
}

}  // namespace core
}  // namespace mocograd
