#ifndef MOCOGRAD_CORE_GRADNORM_H_
#define MOCOGRAD_CORE_GRADNORM_H_

#include <string>
#include <vector>

#include "core/aggregator.h"

namespace mocograd {
namespace core {

/// Options for GradNorm.
struct GradNormOptions {
  /// Asymmetry parameter α of the original paper (strength of the
  /// rate-balancing force); 1.5 is a common default.
  float alpha = 1.5f;
  /// Learning rate of the internal weight adaptation.
  float weight_lr = 0.025f;
};

/// GradNorm (Chen et al., ICML 2018) — cited as [44] in the paper's related
/// work; implemented here as an extension baseline beyond the paper's
/// tables. Learns per-task loss weights w_k so that the weighted gradient
/// norms track each task's relative inverse training rate:
///   target_k ∝ ḡ · (L_k(t)/L_k(0) / mean)^α,
/// with the weights updated by gradient descent on |w_k‖g_k‖ − target_k|
/// and renormalized to sum to K.
class GradNorm : public GradientAggregator {
 public:
  explicit GradNorm(GradNormOptions options = {});

  std::string name() const override { return "gradnorm"; }
  AggregationResult Aggregate(const AggregationContext& ctx) override;
  void Reset() override;

 private:
  GradNormOptions options_;
  std::vector<float> initial_losses_;
  std::vector<double> weights_;
};

}  // namespace core
}  // namespace mocograd

#endif  // MOCOGRAD_CORE_GRADNORM_H_
