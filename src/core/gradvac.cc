#include "core/gradvac.h"

#include <cmath>
#include <numeric>

#include "base/vec_ops.h"

namespace mocograd {
namespace core {

namespace {
constexpr double kEps = 1e-12;
}  // namespace

GradVac::GradVac(GradVacOptions options) : options_(options) {
  MG_CHECK_GT(options_.ema_beta, 0.0f);
  MG_CHECK_LE(options_.ema_beta, 1.0f);
}

void GradVac::Reset() {
  target_cos_.clear();
  num_tasks_ = 0;
}

AggregationResult GradVac::Aggregate(const AggregationContext& ctx) {
  MG_CHECK(ctx.task_grads != nullptr);
  MG_CHECK(ctx.rng != nullptr, "GradVac shuffles task order; rng required");
  const GradMatrix& g = *ctx.task_grads;
  const int k = g.num_tasks();
  const int64_t p = g.dim();

  if (target_cos_.empty()) {
    target_cos_.assign(static_cast<size_t>(k) * k, 0.0);
    num_tasks_ = k;
  }
  MG_CHECK_EQ(num_tasks_, k, "task count changed; call Reset()");

  std::vector<double> norms(k);
  for (int i = 0; i < k; ++i) norms[i] = g.RowNorm(i);

  AggregationResult out;
  out.shared_grad.assign(p, 0.0f);
  out.task_weights = OnesWeights(k);

  // The vaccination loop is GradVac's whole cost (no separate combine).
  obs::ScopedPhase surgery_phase(ctx.profile, "surgery");
  std::vector<float> gi(p);
  std::vector<int> others(k);
  std::iota(others.begin(), others.end(), 0);
  // MG_HOT_PATH — the O(K²·p) vaccination sweep; vec:: kernels only.
  for (int i = 0; i < k; ++i) {
    const float* row = g.Row(i);
    std::copy(row, row + p, gi.begin());
    ctx.rng->Shuffle(others);
    for (int j : others) {
      if (j == i) continue;
      const float* gj = g.Row(j);
      if (norms[i] <= kEps || norms[j] <= kEps) continue;
      // Observed cosine uses the current (possibly already vaccinated) g_i.
      const double dot = vec::DotF64(p, gi.data(), gj);
      const double ni2 = vec::SquaredNormF64(p, gi.data());
      const double ni = std::sqrt(ni2);
      if (ni <= kEps) continue;
      const double cos_phi = dot / (ni * norms[j]);
      double& target = target_cos_[static_cast<size_t>(i) * k + j];
      if (cos_phi < target) {
        ++out.num_conflicts;
        const double cos_gamma = target;
        const double sin_gamma =
            std::sqrt(std::max(0.0, 1.0 - cos_gamma * cos_gamma));
        const double sin_phi =
            std::sqrt(std::max(0.0, 1.0 - cos_phi * cos_phi));
        if (sin_gamma > kEps) {
          // Eq. (7) of the paper.
          const double alpha = ni * (cos_gamma * sin_phi - cos_phi * sin_gamma) /
                               (norms[j] * sin_gamma);
          vec::Axpy(p, static_cast<float>(alpha), gj, gi.data());
          if (ctx.trace != nullptr) {
            // cos_phi was measured against the possibly already-vaccinated
            // g_i, so it is the decision-time cosine, not the raw one.
            ctx.trace->RecordPair(i, j, cos_phi, alpha, true);
          }
        } else if (ctx.trace != nullptr) {
          ctx.trace->RecordPair(i, j, cos_phi, 0.0, false);
        }
      }
      // EMA update of the adaptive target from the observed cosine.
      target = (1.0 - options_.ema_beta) * target +
               options_.ema_beta * cos_phi;
    }
    vec::Add(p, gi.data(), out.shared_grad.data());
  }
  // MG_HOT_PATH_END
  return out;
}

}  // namespace core
}  // namespace mocograd
