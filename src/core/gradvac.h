#ifndef MOCOGRAD_CORE_GRADVAC_H_
#define MOCOGRAD_CORE_GRADVAC_H_

#include <string>
#include <vector>

#include "core/aggregator.h"

namespace mocograd {
namespace core {

/// Options for GradVac.
struct GradVacOptions {
  /// EMA rate for the adaptive pairwise cosine targets (β in the GradVac
  /// paper; 1e-2 is the published default).
  float ema_beta = 0.01f;
};

/// Gradient Vaccine (Wang et al., ICLR 2021). Maintains an EMA estimate
/// φ̂_ij of each pairwise cosine similarity; whenever the observed cosine
/// falls below the target, g_i is pushed toward g_j by the Law-of-Sines
/// coefficient of the paper's Eq. (6)/(7):
///   g_i' = g_i + α g_j,
///   α = ‖g_i‖ (cosγ √(1−cos²φ) − cosφ √(1−cos²γ)) / (‖g_j‖ √(1−cos²γ)),
/// where γ is the target angle and φ the observed one.
class GradVac : public GradientAggregator {
 public:
  explicit GradVac(GradVacOptions options = {});

  std::string name() const override { return "gradvac"; }
  AggregationResult Aggregate(const AggregationContext& ctx) override;
  void Reset() override;

 private:
  GradVacOptions options_;
  /// Flattened K×K EMA of pairwise cosine targets.
  std::vector<double> target_cos_;
  int num_tasks_ = 0;
};

}  // namespace core
}  // namespace mocograd

#endif  // MOCOGRAD_CORE_GRADVAC_H_
