#include "core/imtl.h"

#include <cmath>

#include "solvers/linear_solve.h"

namespace mocograd {
namespace core {

AggregationResult Imtl::Aggregate(const AggregationContext& ctx) {
  MG_CHECK(ctx.task_grads != nullptr);
  const GradMatrix& g = *ctx.task_grads;
  const int k = g.num_tasks();

  AggregationResult out;
  out.task_weights = OnesWeights(k);
  if (k == 1) {
    out.shared_grad = g.SumRows();
    return out;
  }

  std::vector<std::vector<double>> gram;
  {
    obs::ScopedPhase phase(ctx.profile, "gram");
    gram = g.Gram();
  }
  if (ctx.trace != nullptr) ctx.trace->SetCosinesFromGram(gram);
  std::vector<double> norms(k);
  bool degenerate = false;
  for (int i = 0; i < k; ++i) {
    norms[i] = std::sqrt(std::max(gram[i][i], 0.0));
    if (norms[i] < 1e-12) degenerate = true;
  }

  std::vector<double> alpha(k, 1.0);
  if (!degenerate) {
    obs::ScopedPhase solver_phase(ctx.profile, "solver");
    // Solve Σ_j α_j (g_j − g_1)ᵀ(u_1 − u_m) = −g_1ᵀ(u_1 − u_m), m = 2..K,
    // using only Gram entries: g_aᵀu_b = gram[a][b]/‖g_b‖.
    auto gu = [&](int a, int b) { return gram[a][b] / norms[b]; };
    const int n = k - 1;
    std::vector<std::vector<double>> a_mat(n, std::vector<double>(n, 0.0));
    std::vector<double> b_vec(n, 0.0);
    for (int m = 1; m < k; ++m) {
      for (int j = 1; j < k; ++j) {
        a_mat[m - 1][j - 1] =
            (gu(j, 0) - gu(j, m)) - (gu(0, 0) - gu(0, m));
      }
      b_vec[m - 1] = -(gu(0, 0) - gu(0, m));
    }
    auto sol = solvers::SolveLinear(a_mat, b_vec);
    if (sol.ok()) {
      double rest = 0.0;
      for (int j = 1; j < k; ++j) {
        alpha[j] = sol.value()[j - 1];
        rest += alpha[j];
      }
      alpha[0] = 1.0 - rest;
      // Rescale Σα from 1 to K so step magnitude matches EW.
      for (double& x : alpha) x *= static_cast<double>(k);
    }
    // else: singular system, keep equal weights (α = 1 each).
  }

  if (ctx.trace != nullptr) ctx.trace->set_solver_weights(alpha);
  {
    obs::ScopedPhase combine_phase(ctx.profile, "combine");
    out.shared_grad = g.WeightedSumRows(alpha);
  }
  return out;
}

}  // namespace core
}  // namespace mocograd
