#ifndef MOCOGRAD_CORE_IMTL_H_
#define MOCOGRAD_CORE_IMTL_H_

#include <string>

#include "core/aggregator.h"

namespace mocograd {
namespace core {

/// IMTL-G (Liu et al., ICLR 2021): impartial multi-task learning. Finds
/// weights α (Σα = 1) such that the aggregated gradient g = Σ α_k g_k has
/// equal projection onto every task's unit gradient u_k = g_k/‖g_k‖:
///   gᵀu_1 = gᵀu_k  ∀k,
/// which reduces to a (K−1)×(K−1) linear system solved in closed form.
/// Falls back to equal weights when the system is singular (e.g. colinear
/// gradients). Weights are rescaled to sum to K for EW-comparable magnitude.
class Imtl : public GradientAggregator {
 public:
  std::string name() const override { return "imtl"; }
  AggregationResult Aggregate(const AggregationContext& ctx) override;
};

}  // namespace core
}  // namespace mocograd

#endif  // MOCOGRAD_CORE_IMTL_H_
