#include "core/metrics.h"

#include <cmath>

#include "base/check.h"

namespace mocograd {
namespace core {

double Tci(double mtl_risk, double stl_risk) { return mtl_risk - stl_risk; }

double DeltaM(const std::vector<MetricComparison>& comparisons) {
  MG_CHECK(!comparisons.empty(), "DeltaM over zero metrics");
  double total = 0.0;
  for (const MetricComparison& c : comparisons) {
    MG_CHECK_GT(std::fabs(c.stl_value), 1e-12,
                "DeltaM baseline metric is zero");
    const double rel = (c.mtl_value - c.stl_value) / std::fabs(c.stl_value);
    total += c.higher_is_better ? rel : -rel;
  }
  return total / static_cast<double>(comparisons.size());
}

}  // namespace core
}  // namespace mocograd
