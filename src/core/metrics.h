#ifndef MOCOGRAD_CORE_METRICS_H_
#define MOCOGRAD_CORE_METRICS_H_

#include <vector>

namespace mocograd {
namespace core {

/// Task Conflict Intensity, Definition 2 of the paper:
///   TCI(T_k, F) = R_k(MTL model) − R_k(STL model).
/// For "lower is better" risks (loss, RMSE), TCI > 0 means joint training
/// hurt the task, i.e. a task conflict occurred.
double Tci(double mtl_risk, double stl_risk);

/// One metric comparison for Δ_M.
struct MetricComparison {
  double mtl_value = 0.0;
  double stl_value = 0.0;
  /// True if a larger metric value is better (AUC, mIoU, accuracy);
  /// false for errors (RMSE, MAE, Abs Err, ...).
  bool higher_is_better = true;
};

/// Δ_M, Eq. (27): mean relative improvement of an MTL method over the STL
/// baselines across all metrics, sign-corrected per metric direction.
double DeltaM(const std::vector<MetricComparison>& comparisons);

}  // namespace core
}  // namespace mocograd

#endif  // MOCOGRAD_CORE_METRICS_H_
