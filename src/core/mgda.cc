#include "core/mgda.h"

#include "obs/phase_profile.h"
#include "solvers/min_norm.h"

namespace mocograd {
namespace core {

AggregationResult Mgda::Aggregate(const AggregationContext& ctx) {
  MG_CHECK(ctx.task_grads != nullptr);
  const GradMatrix& g = *ctx.task_grads;
  const int k = g.num_tasks();

  std::vector<std::vector<double>> gram;
  {
    obs::ScopedPhase phase(ctx.profile, "gram");
    gram = g.Gram();
  }

  if (ctx.trace != nullptr) ctx.trace->SetCosinesFromGram(gram);

  std::vector<double> w;
  {
    obs::ScopedPhase solver_phase(ctx.profile, "solver");
    w = solvers::MinNormWeights(gram);
    // Scale so Σ w_k = K (matches the magnitude of the EW sum).
    for (double& x : w) x *= static_cast<double>(k);
  }
  if (ctx.trace != nullptr) ctx.trace->set_solver_weights(w);

  AggregationResult out;
  {
    obs::ScopedPhase combine_phase(ctx.profile, "combine");
    out.shared_grad = g.WeightedSumRows(w);
  }
  out.task_weights = OnesWeights(k);
  return out;
}

}  // namespace core
}  // namespace mocograd
