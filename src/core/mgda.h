#ifndef MOCOGRAD_CORE_MGDA_H_
#define MOCOGRAD_CORE_MGDA_H_

#include <string>

#include "core/aggregator.h"

namespace mocograd {
namespace core {

/// MGDA (Sener & Koltun, NeurIPS 2018): multi-task learning as
/// multi-objective optimization. The combined gradient is the min-norm
/// point in the convex hull of the task gradients, found with Frank–Wolfe
/// on the Gram matrix — a Pareto-stationary common descent direction.
/// The direction is rescaled by K so its magnitude is comparable to the
/// equal-weight sum (pure min-norm weights average to 1/K).
class Mgda : public GradientAggregator {
 public:
  std::string name() const override { return "mgda"; }
  AggregationResult Aggregate(const AggregationContext& ctx) override;
};

}  // namespace core
}  // namespace mocograd

#endif  // MOCOGRAD_CORE_MGDA_H_
