#include "core/mocograd.h"

#include <cmath>
#include <numeric>

#include "base/vec_ops.h"
#include "core/conflict.h"

namespace mocograd {
namespace core {

namespace {
constexpr double kNormEps = 1e-12;
}  // namespace

MoCoGrad::MoCoGrad(MoCoGradOptions options) : options_(options) {
  MG_CHECK_GT(options_.lambda, 0.0f, "lambda must be in (0, 1]");
  MG_CHECK_LE(options_.lambda, 1.0f, "lambda must be in (0, 1]");
  MG_CHECK_GE(options_.beta1, 0.0f);
  MG_CHECK_LT(options_.beta1, 1.0f);
}

void MoCoGrad::Reset() { momenta_.clear(); }

const std::vector<float>& MoCoGrad::momentum(int k) const {
  MG_CHECK_GE(k, 0);
  MG_CHECK_LT(k, static_cast<int>(momenta_.size()), "momentum not initialized");
  return momenta_[k];
}

AggregationResult MoCoGrad::Aggregate(const AggregationContext& ctx) {
  MG_CHECK(ctx.task_grads != nullptr);
  MG_CHECK(ctx.rng != nullptr, "MoCoGrad shuffles task order; rng required");
  const GradMatrix& g = *ctx.task_grads;
  const int k = g.num_tasks();
  const int64_t p = g.dim();

  if (momenta_.empty()) {
    momenta_.assign(k, std::vector<float>(p, 0.0f));
  }
  MG_CHECK_EQ(static_cast<int>(momenta_.size()), k,
              "task count changed across steps; call Reset()");

  // Pre-compute per-task gradient and momentum norms.
  std::vector<double> g_norm(k), m_norm(k);
  {
    obs::ScopedPhase norms_phase(ctx.profile, "norms");
    for (int i = 0; i < k; ++i) {
      g_norm[i] = g.RowNorm(i);
      m_norm[i] = std::sqrt(vec::SquaredNormF64(p, momenta_[i].data()));
    }
  }
  if (ctx.trace != nullptr) {
    ctx.trace->set_grad_norms(g_norm);
    ctx.trace->set_momentum_norms(m_norm);
  }

  AggregationResult out;
  out.shared_grad.assign(p, 0.0f);
  out.task_weights = OnesWeights(k);

  // Calibrate each task against the others in random order (Algorithm 1).
  // Line 10 of the pseudo-code *sets* ĝ_i = g_i + λ(‖g_j‖/‖m_j‖)m_j (it does
  // not accumulate), so with several conflicting partners the last one in
  // the random order provides the calibration — equivalently, a uniformly
  // random conflicting partner. This is what makes Theorem 1's ‖ĝ‖ ≤
  // K(1+λ)G bound hold (exactly one calibration term per task).
  // Adds the Eq. (8) calibration term for partner j to the output and
  // returns the applied scale λ·‖g_j‖/‖m_j‖ (0 when nothing was added).
  auto add_calibration = [&](int j) -> double {
    // Cold start (‖m_j‖ ≈ 0) falls back to the raw gradient g_j, the
    // history-free limit of Eq. (9).
    const float* dir;
    double dir_norm;
    if (!options_.use_raw_gradient && m_norm[j] > kNormEps) {
      dir = momenta_[j].data();
      dir_norm = m_norm[j];
    } else {
      dir = g.Row(j);
      dir_norm = g_norm[j];
    }
    if (dir_norm <= kNormEps) return 0.0;  // zero gradient: nothing to add
    const float scale =
        static_cast<float>(options_.lambda * g_norm[j] / dir_norm);
    vec::Axpy(p, scale, dir, out.shared_grad.data());
    return scale;
  };

  {
    obs::ScopedPhase calibrate_phase(ctx.profile, "calibrate");
    std::vector<int> others(k);
    std::iota(others.begin(), others.end(), 0);
    // MG_HOT_PATH — the O(K²·p) conflict/calibration sweep; all vector
    // arithmetic goes through the vec:: kernels, no allocation.
    for (int i = 0; i < k; ++i) {
      const float* gi = g.Row(i);
      int chosen = -1;
      ctx.rng->Shuffle(others);
      for (int j : others) {
        if (j == i) continue;
        // GCD(g_i, g_j) > 1 ⇔ g_i · g_j < 0 (Definition 3); the dot product
        // is the numerically robust form of the test.
        const double dot = g.RowDot(i, j);
        if (ctx.trace != nullptr) {
          // The sweep visits every ordered pair, so MoCoGrad publishes the
          // complete raw cosine matrix for free.
          const double denom = g_norm[i] * g_norm[j];
          ctx.trace->SetCosine(i, j, denom <= kNormEps ? 0.0 : dot / denom);
        }
        if (dot >= 0.0) continue;
        ++out.num_conflicts;
        if (options_.accumulate_all_conflicts) {
          const double scale = add_calibration(j);
          if (ctx.trace != nullptr) {
            ctx.trace->RecordPair(i, j, ctx.trace->cosine(i, j), scale,
                                  scale != 0.0);
          }
        } else {
          chosen = j;
          if (ctx.trace != nullptr) {
            ctx.trace->RecordPair(i, j, ctx.trace->cosine(i, j), 0.0, false);
          }
        }
      }
      vec::Add(p, gi, out.shared_grad.data());
      // Eq. (8): ĝ_i = g_i + λ (‖g_j‖/‖m_j‖) m_j for the chosen partner.
      if (chosen >= 0) {
        const double scale = add_calibration(chosen);
        if (ctx.trace != nullptr && scale != 0.0) {
          ctx.trace->MarkActed(i, chosen, scale);
        }
      }
    }
    // MG_HOT_PATH_END
  }

  // Eq. (9): one EMA update per task per step.
  {
    obs::ScopedPhase momentum_phase(ctx.profile, "momentum");
    const float b1 = options_.beta1;
    for (int j = 0; j < k; ++j) {
      vec::Ema(p, b1, g.Row(j), momenta_[j].data());
    }
  }
  return out;
}

}  // namespace core
}  // namespace mocograd
