#ifndef MOCOGRAD_CORE_MOCOGRAD_H_
#define MOCOGRAD_CORE_MOCOGRAD_H_

#include <string>
#include <vector>

#include "core/aggregator.h"

namespace mocograd {
namespace core {

/// Options for the MoCoGrad aggregator (paper §IV-B). The two ablation
/// switches below deviate from the paper and exist for the ablation bench
/// (bench_ablation_mocograd): they isolate how much of MoCoGrad's behavior
/// comes from the momentum direction and from the single-partner rule.
struct MoCoGradOptions {
  /// λ in Eq. (8): calibration strength, λ ∈ (0, 1]. The paper's parameter
  /// study (Fig. 9) finds λ ≈ 0.12 optimal on Office-Home.
  float lambda = 0.12f;
  /// β₁ in Eq. (9): exponential decay rate of the per-task momentum.
  float beta1 = 0.9f;
  /// Ablation: calibrate with the *raw* current gradient g_j instead of the
  /// momentum m_j. This reduces MoCoGrad to a GradVac-like additive repair
  /// and removes the paper's de-noising argument.
  bool use_raw_gradient = false;
  /// Ablation: accumulate one calibration term per conflicting partner
  /// instead of the single (last random) partner of Algorithm 1. Breaks the
  /// Theorem 1 bound for K ≥ 3.
  bool accumulate_all_conflicts = false;
};

/// Momentum-calibrated Conflicting Gradients (MoCoGrad), the paper's
/// contribution (Algorithm 1).
///
/// For every ordered pair (i, j) with conflicting gradients (GCD(g_i,g_j) >
/// 1, i.e. negative cosine), the conflicting gradient is calibrated with the
/// *momentum* of the other task — an EMA of its historical gradients — scaled
/// to the magnitude of the current gradient:
///
///   ĝ_i = g_i + λ · (‖g_j‖ / ‖m_j^{t-1}‖) · m_j^{t-1}        (Eq. 8)
///   m_j^{t} = β₁ · m_j^{t-1} + (1−β₁) · g_j                   (Eq. 9)
///
/// Using the momentum instead of the raw gradient de-noises the calibration
/// direction against mini-batch noise, which is the paper's core argument
/// against PCGrad/GradVac-style current-gradient-only surgery.
///
/// Three documented clean-ups of the paper's pseudo-code (see DESIGN.md §3):
/// momenta are updated once per step (not once per ordered pair); at cold
/// start (‖m_j‖ ≈ 0) the calibration term degenerates to λ·g_j; and when a
/// task has several conflicting partners the calibration uses one uniformly
/// random partner (line 10 sets, not accumulates — the reading under which
/// Theorem 1's ‖ĝ‖ ≤ K(1+λ)G bound holds).
class MoCoGrad : public GradientAggregator {
 public:
  explicit MoCoGrad(MoCoGradOptions options = {});

  std::string name() const override { return "mocograd"; }
  AggregationResult Aggregate(const AggregationContext& ctx) override;
  void Reset() override;

  const MoCoGradOptions& options() const { return options_; }

  /// Momentum buffer of task k (empty before the first step); exposed for
  /// tests and analysis tooling.
  const std::vector<float>& momentum(int k) const;

 private:
  MoCoGradOptions options_;
  /// One momentum buffer per task, lazily sized on the first Aggregate.
  std::vector<std::vector<float>> momenta_;
};

}  // namespace core
}  // namespace mocograd

#endif  // MOCOGRAD_CORE_MOCOGRAD_H_
