#include "core/nash_mtl.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace mocograd {
namespace core {

NashMtl::NashMtl(NashMtlOptions options) : options_(options) {
  MG_CHECK_GT(options_.iters, 0);
}

AggregationResult NashMtl::Aggregate(const AggregationContext& ctx) {
  MG_CHECK(ctx.task_grads != nullptr);
  const GradMatrix& g = *ctx.task_grads;
  const int k = g.num_tasks();
  std::vector<std::vector<double>> gram;
  {
    obs::ScopedPhase phase(ctx.profile, "gram");
    gram = g.Gram();
  }
  if (ctx.trace != nullptr) ctx.trace->SetCosinesFromGram(gram);

  std::vector<double> alpha(k, 1.0 / std::sqrt(static_cast<double>(k)));
  {
    obs::ScopedPhase solver_phase(ctx.profile, "solver");
    MG_METRIC_COUNT("solver.nashmtl.iters", options_.iters);

    // Normalize the Gram matrix so the fixed point is scale-invariant; the
    // final α is un-normalized afterwards (α scales as 1/‖G‖).
    double scale = 0.0;
    for (int i = 0; i < k; ++i) scale = std::max(scale, gram[i][i]);
    scale = std::max(scale, 1e-12);

    std::vector<double> ma(k, 0.0);
    for (int it = 0; it < options_.iters; ++it) {
      for (int i = 0; i < k; ++i) {
        ma[i] = 0.0;
        for (int j = 0; j < k; ++j) ma[i] += gram[i][j] / scale * alpha[j];
      }
      for (int i = 0; i < k; ++i) {
        const double target = 1.0 / std::max(ma[i], options_.alpha_min);
        alpha[i] = 0.5 * (alpha[i] + target);
        alpha[i] = std::max(alpha[i], options_.alpha_min);
      }
    }
    // Undo the Gram normalization: (G Gᵀ/s) α = 1/α ⇒ true α' = α/√s.
    for (double& x : alpha) x /= std::sqrt(scale);

    // Normalize the weights to sum to K (the reference implementation
    // similarly rescales to keep updates bounded).
    double sum = 0.0;
    for (double x : alpha) sum += x;
    if (sum > 1e-12) {
      for (double& x : alpha) x *= static_cast<double>(k) / sum;
    }
  }

  if (ctx.trace != nullptr) {
    ctx.trace->set_solver_iterations(options_.iters);
    ctx.trace->set_solver_weights(alpha);
  }

  AggregationResult out;
  {
    obs::ScopedPhase combine_phase(ctx.profile, "combine");
    out.shared_grad = g.WeightedSumRows(alpha);
  }
  out.task_weights.resize(k);
  for (int i = 0; i < k; ++i) {
    out.task_weights[i] = static_cast<float>(alpha[i]);
  }
  return out;
}

}  // namespace core
}  // namespace mocograd
