#ifndef MOCOGRAD_CORE_NASH_MTL_H_
#define MOCOGRAD_CORE_NASH_MTL_H_

#include <string>

#include "core/aggregator.h"

namespace mocograd {
namespace core {

/// Options for Nash-MTL.
struct NashMtlOptions {
  /// Damped fixed-point iterations for the bargaining solution.
  int iters = 100;
  /// Lower clamp keeping α strictly positive.
  double alpha_min = 1e-6;
};

/// Nash-MTL (Navon et al., ICML 2022): gradient aggregation as a bargaining
/// game whose Nash solution α solves
///   (G Gᵀ) α = 1/α,   α > 0.
/// Solved here with a damped fixed-point iteration on the Gram matrix:
///   α ← ½ (α + 1 ⊘ max(GGᵀα, ε)).
/// This is the most expensive method per step (the paper's Fig. 8 shows it
/// dominating backward time), which this implementation reproduces.
class NashMtl : public GradientAggregator {
 public:
  explicit NashMtl(NashMtlOptions options = {});

  std::string name() const override { return "nashmtl"; }
  AggregationResult Aggregate(const AggregationContext& ctx) override;

 private:
  NashMtlOptions options_;
};

}  // namespace core
}  // namespace mocograd

#endif  // MOCOGRAD_CORE_NASH_MTL_H_
