#include "core/pcgrad.h"

#include <cmath>
#include <numeric>

#include "base/vec_ops.h"

namespace mocograd {
namespace core {

AggregationResult PcGrad::Aggregate(const AggregationContext& ctx) {
  MG_CHECK(ctx.task_grads != nullptr);
  MG_CHECK(ctx.rng != nullptr, "PCGrad shuffles task order; rng required");
  const GradMatrix& g = *ctx.task_grads;
  const int k = g.num_tasks();
  const int64_t p = g.dim();

  AggregationResult out;
  out.shared_grad.assign(p, 0.0f);
  out.task_weights = OnesWeights(k);

  // The projection loop is PCGrad's whole cost; there is no separate
  // combine step (projected gradients accumulate in place).
  obs::ScopedPhase surgery_phase(ctx.profile, "surgery");
  std::vector<float> gi(p);
  std::vector<int> others(k);
  std::iota(others.begin(), others.end(), 0);
  // MG_HOT_PATH — the O(K²·p) projection sweep; vec:: kernels only.
  for (int i = 0; i < k; ++i) {
    const float* row = g.Row(i);
    std::copy(row, row + p, gi.begin());
    ctx.rng->Shuffle(others);
    for (int j : others) {
      if (j == i) continue;
      const float* gj = g.Row(j);
      // Note: projections chain — the dot uses the *current* g_i, matching
      // the original PCGrad algorithm.
      const double dot = vec::DotF64(p, gi.data(), gj);
      const double nj2 = vec::SquaredNormF64(p, gj);
      if (dot >= 0.0 || nj2 <= 1e-12) continue;
      ++out.num_conflicts;
      const float c = static_cast<float>(dot / nj2);
      vec::Axpy(p, -c, gj, gi.data());
      if (ctx.trace != nullptr) {
        // No raw cosine: the dot used the chained-projected g_i. The
        // magnitude is the projection coefficient dot/‖g_j‖².
        ctx.trace->RecordPair(i, j, std::nan(""), dot / nj2, true);
      }
    }
    vec::Add(p, gi.data(), out.shared_grad.data());
  }
  // MG_HOT_PATH_END
  return out;
}

}  // namespace core
}  // namespace mocograd
