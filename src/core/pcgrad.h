#ifndef MOCOGRAD_CORE_PCGRAD_H_
#define MOCOGRAD_CORE_PCGRAD_H_

#include <string>

#include "core/aggregator.h"

namespace mocograd {
namespace core {

/// PCGrad (Yu et al., NeurIPS 2020): when g_i conflicts with g_j
/// (negative dot product), g_i is replaced by its projection onto the
/// normal plane of g_j (paper Eq. 5):
///   g_i' = g_i − (g_i·g_j / ‖g_j‖²) g_j,
/// repeated over the other tasks in random order, then all projected
/// gradients are summed.
class PcGrad : public GradientAggregator {
 public:
  std::string name() const override { return "pcgrad"; }
  AggregationResult Aggregate(const AggregationContext& ctx) override;
};

}  // namespace core
}  // namespace mocograd

#endif  // MOCOGRAD_CORE_PCGRAD_H_
