#include "core/registry.h"

#include "core/graddrop.h"
#include "core/imtl.h"
#include "core/mgda.h"
#include "core/pcgrad.h"
#include "core/rlw.h"

namespace mocograd {
namespace core {

const std::vector<std::string>& AllMethodNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "ew",     "dwa",    "mgda", "pcgrad", "graddrop", "gradvac",
      "cagrad", "imtl",   "rlw",  "nashmtl", "mocograd"};
  return *names;
}

const std::vector<std::string>& PaperMethodNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "dwa",    "mgda", "pcgrad", "graddrop", "gradvac",
      "cagrad", "imtl", "rlw",    "nashmtl",  "mocograd"};
  return *names;
}

const std::vector<std::string>& ExtensionMethodNames() {
  static const std::vector<std::string>* names =
      new std::vector<std::string>{"gradnorm", "uw", "alignedmtl"};
  return *names;
}

Result<std::unique_ptr<GradientAggregator>> MakeAggregator(
    const std::string& name, const AggregatorOptions& options) {
  std::unique_ptr<GradientAggregator> out;
  if (name == "ew") {
    out = std::make_unique<EqualWeight>();
  } else if (name == "mocograd") {
    out = std::make_unique<MoCoGrad>(options.mocograd);
  } else if (name == "pcgrad") {
    out = std::make_unique<PcGrad>();
  } else if (name == "gradvac") {
    out = std::make_unique<GradVac>(options.gradvac);
  } else if (name == "cagrad") {
    out = std::make_unique<CaGrad>(options.cagrad);
  } else if (name == "mgda") {
    out = std::make_unique<Mgda>();
  } else if (name == "graddrop") {
    out = std::make_unique<GradDrop>();
  } else if (name == "imtl") {
    out = std::make_unique<Imtl>();
  } else if (name == "rlw") {
    out = std::make_unique<Rlw>();
  } else if (name == "nashmtl") {
    out = std::make_unique<NashMtl>(options.nashmtl);
  } else if (name == "dwa") {
    out = std::make_unique<Dwa>(options.dwa);
  } else if (name == "gradnorm") {
    out = std::make_unique<GradNorm>(options.gradnorm);
  } else if (name == "uw") {
    out = std::make_unique<UncertaintyWeighting>(options.uw);
  } else if (name == "alignedmtl") {
    out = std::make_unique<AlignedMtl>(options.alignedmtl);
  } else {
    return Status::NotFound("unknown aggregation method: " + name);
  }
  return out;
}

}  // namespace core
}  // namespace mocograd
