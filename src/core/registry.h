#ifndef MOCOGRAD_CORE_REGISTRY_H_
#define MOCOGRAD_CORE_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "core/aggregator.h"
#include "core/aligned_mtl.h"
#include "core/cagrad.h"
#include "core/dwa.h"
#include "core/gradnorm.h"
#include "core/gradvac.h"
#include "core/mocograd.h"
#include "core/nash_mtl.h"
#include "core/uncertainty_weighting.h"

namespace mocograd {
namespace core {

/// Tunables for every aggregation method, with the defaults used throughout
/// the paper's experiments.
struct AggregatorOptions {
  MoCoGradOptions mocograd;
  GradVacOptions gradvac;
  CaGradOptions cagrad;
  DwaOptions dwa;
  NashMtlOptions nashmtl;
  GradNormOptions gradnorm;
  UncertaintyWeightingOptions uw;
  AlignedMtlOptions alignedmtl;
};

/// Canonical method names, in the row order of the paper's tables
/// (excluding the STL baseline, which is a training mode, not an
/// aggregator): dwa, mgda, pcgrad, graddrop, gradvac, cagrad, imtl, rlw,
/// nashmtl, mocograd — plus "ew" (plain joint training).
const std::vector<std::string>& AllMethodNames();

/// Method names in the paper's table order (without "ew").
const std::vector<std::string>& PaperMethodNames();

/// Extension baselines beyond the paper's tables (cited in its related
/// work): "gradnorm" (Chen et al. 2018) and "uw" (Kendall et al. 2018).
const std::vector<std::string>& ExtensionMethodNames();

/// Builds an aggregator by canonical name; NotFound for unknown names.
Result<std::unique_ptr<GradientAggregator>> MakeAggregator(
    const std::string& name, const AggregatorOptions& options = {});

}  // namespace core
}  // namespace mocograd

#endif  // MOCOGRAD_CORE_REGISTRY_H_
