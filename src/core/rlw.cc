#include "core/rlw.h"

#include <cmath>

namespace mocograd {
namespace core {

AggregationResult Rlw::Aggregate(const AggregationContext& ctx) {
  MG_CHECK(ctx.task_grads != nullptr);
  MG_CHECK(ctx.rng != nullptr, "RLW samples weights; rng required");
  const GradMatrix& g = *ctx.task_grads;
  const int k = g.num_tasks();

  std::vector<double> z(k);
  double mx = -1e30;
  for (double& x : z) {
    x = ctx.rng->Normal(0.0f, 1.0f);
    mx = std::max(mx, x);
  }
  double denom = 0.0;
  for (double& x : z) {
    x = std::exp(x - mx);
    denom += x;
  }
  std::vector<double> w(k);
  for (int i = 0; i < k; ++i) {
    w[i] = z[i] / denom * static_cast<double>(k);
  }

  if (ctx.trace != nullptr) ctx.trace->set_solver_weights(w);
  AggregationResult out;
  out.shared_grad = g.WeightedSumRows(w);
  out.task_weights.resize(k);
  for (int i = 0; i < k; ++i) out.task_weights[i] = static_cast<float>(w[i]);
  return out;
}

}  // namespace core
}  // namespace mocograd
