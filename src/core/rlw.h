#ifndef MOCOGRAD_CORE_RLW_H_
#define MOCOGRAD_CORE_RLW_H_

#include <string>

#include "core/aggregator.h"

namespace mocograd {
namespace core {

/// Random Loss Weighting (Lin et al., TMLR 2022): per step, sample task
/// weights w = softmax(z) with z ~ N(0, 1)^K and minimize the weighted sum
/// of losses. Weights are rescaled to sum to K so the expected step
/// magnitude matches equal weighting.
class Rlw : public GradientAggregator {
 public:
  std::string name() const override { return "rlw"; }
  AggregationResult Aggregate(const AggregationContext& ctx) override;
};

}  // namespace core
}  // namespace mocograd

#endif  // MOCOGRAD_CORE_RLW_H_
