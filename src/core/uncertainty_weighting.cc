#include "core/uncertainty_weighting.h"

#include <algorithm>
#include <cmath>

namespace mocograd {
namespace core {

UncertaintyWeighting::UncertaintyWeighting(
    UncertaintyWeightingOptions options)
    : options_(options) {
  MG_CHECK_GT(options_.sigma_lr, 0.0f);
}

void UncertaintyWeighting::Reset() { log_var_.clear(); }

AggregationResult UncertaintyWeighting::Aggregate(
    const AggregationContext& ctx) {
  MG_CHECK(ctx.task_grads != nullptr);
  MG_CHECK(ctx.losses != nullptr, "UW needs per-task losses");
  const GradMatrix& g = *ctx.task_grads;
  const int k = g.num_tasks();
  MG_CHECK_EQ(static_cast<int>(ctx.losses->size()), k);

  if (log_var_.empty()) log_var_.assign(k, 0.0);
  MG_CHECK_EQ(static_cast<int>(log_var_.size()), k,
              "task count changed; call Reset()");

  // One SGD step on the UW objective w.r.t. each s_k.
  for (int i = 0; i < k; ++i) {
    const double grad =
        -std::exp(-log_var_[i]) * (*ctx.losses)[i] + 1.0;
    log_var_[i] += options_.sigma_lr * -grad;
    log_var_[i] = std::clamp(log_var_[i], -4.0, 4.0);
  }

  std::vector<double> w(k);
  double sum = 0.0;
  for (int i = 0; i < k; ++i) {
    w[i] = std::exp(-log_var_[i]);
    sum += w[i];
  }
  for (double& x : w) x *= static_cast<double>(k) / sum;

  if (ctx.trace != nullptr) ctx.trace->set_solver_weights(w);
  AggregationResult out;
  out.shared_grad = g.WeightedSumRows(w);
  out.task_weights.resize(k);
  for (int i = 0; i < k; ++i) out.task_weights[i] = static_cast<float>(w[i]);
  return out;
}

}  // namespace core
}  // namespace mocograd
