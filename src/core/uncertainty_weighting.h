#ifndef MOCOGRAD_CORE_UNCERTAINTY_WEIGHTING_H_
#define MOCOGRAD_CORE_UNCERTAINTY_WEIGHTING_H_

#include <string>
#include <vector>

#include "core/aggregator.h"

namespace mocograd {
namespace core {

/// Options for Uncertainty Weighting.
struct UncertaintyWeightingOptions {
  /// Learning rate of the internal log-variance parameters.
  float sigma_lr = 0.02f;
};

/// Homoscedastic Uncertainty Weighting (Kendall et al., CVPR 2018) — cited
/// as [38] in the paper; implemented as an extension baseline. Each task
/// carries a learnable log-variance s_k, the effective objective is
///   Σ_k exp(−s_k) · L_k + s_k,
/// and the s_k are updated by gradient descent on that objective using the
/// observed losses: ∂/∂s_k = −exp(−s_k) L_k + 1. Task weights are
/// w_k = exp(−s_k), renormalized to sum to K.
class UncertaintyWeighting : public GradientAggregator {
 public:
  explicit UncertaintyWeighting(UncertaintyWeightingOptions options = {});

  std::string name() const override { return "uw"; }
  AggregationResult Aggregate(const AggregationContext& ctx) override;
  void Reset() override;

 private:
  UncertaintyWeightingOptions options_;
  std::vector<double> log_var_;
};

}  // namespace core
}  // namespace mocograd

#endif  // MOCOGRAD_CORE_UNCERTAINTY_WEIGHTING_H_
