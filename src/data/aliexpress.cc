#include "data/aliexpress.h"

#include <cmath>

#include "obs/trace.h"

namespace mocograd {
namespace data {

namespace {

// Deterministic per-country seed perturbation.
uint64_t CountrySalt(const std::string& country) {
  uint64_t h = 1469598103934665603ull;
  for (char c : country) {
    h ^= static_cast<uint64_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

AliExpressSim::AliExpressSim(const AliExpressConfig& config)
    : config_(config) {
  Rng rng(config_.seed ^ CountrySalt(config_.country));

  auto fill = [&](std::vector<float>& v, size_t n, float stddev) {
    v.resize(n);
    for (float& x : v) x = rng.Normal(0.0f, stddev);
  };
  fill(ctr_dense_w_, config_.dense_dim, 1.2f);
  fill(ctr_seg_w_, config_.num_user_segments, 0.9f);
  fill(ctr_cat_w_, config_.num_item_categories, 0.9f);

  // Conversion weights: blend of an anti-correlated component (what makes a
  // user click is partly what makes them bounce) and fresh private signal.
  auto blend = [&](const std::vector<float>& ctr_w, std::vector<float>& out) {
    out.resize(ctr_w.size());
    for (size_t i = 0; i < ctr_w.size(); ++i) {
      out[i] = -config_.conflict * ctr_w[i] +
               (1.0f - config_.conflict) * rng.Normal(0.0f, 1.2f);
    }
  };
  blend(ctr_dense_w_, cvr_dense_w_);
  blend(ctr_seg_w_, cvr_seg_w_);
  blend(ctr_cat_w_, cvr_cat_w_);

  Rng train_rng = rng.Fork();
  Rng test_rng = rng.Fork();
  train_ = GenerateSplit(config_.num_train, train_rng);
  test_ = GenerateSplit(config_.num_test, test_rng);
}

std::vector<Batch> AliExpressSim::GenerateSplit(int count, Rng& rng) const {
  const int d = config_.dense_dim;
  Tensor x = Tensor::Zeros({count, d + 2});
  Tensor click = Tensor::Zeros({count, 1});
  Tensor ctcvr = Tensor::Zeros({count, 1});
  for (int i = 0; i < count; ++i) {
    float* row = x.data() + static_cast<int64_t>(i) * (d + 2);
    const int seg = rng.UniformInt(0, config_.num_user_segments);
    const int cat = rng.UniformInt(0, config_.num_item_categories);
    float ctr_logit = config_.ctr_base + ctr_seg_w_[seg] + ctr_cat_w_[cat];
    float cvr_logit = config_.cvr_base + cvr_seg_w_[seg] + cvr_cat_w_[cat];
    for (int j = 0; j < d; ++j) {
      row[j] = rng.Normal();
      ctr_logit += ctr_dense_w_[j] * row[j];
      cvr_logit += cvr_dense_w_[j] * row[j];
    }
    row[d] = static_cast<float>(seg);
    row[d + 1] = static_cast<float>(cat);

    const bool clicked = rng.Bernoulli(
        Sigmoid(ctr_logit + rng.Normal(0.0f, config_.ctr_logit_noise)));
    const bool converted = clicked && rng.Bernoulli(Sigmoid(cvr_logit));
    click.data()[i] = clicked ? 1.0f : 0.0f;
    ctcvr.data()[i] = converted ? 1.0f : 0.0f;
  }
  Batch ctr_batch{.x = x, .y = click, .labels = {}};
  Batch ctcvr_batch{.x = x, .y = ctcvr, .labels = {}};
  return {ctr_batch, ctcvr_batch};
}

std::vector<Batch> AliExpressSim::SampleTrainBatches(int batch_size,
                                                     Rng& rng) const {
  MG_TRACE_SCOPE("data.sample_batches");
  // Single-input: both tasks score the same sampled impressions.
  const auto idx = SampleIndices(train_[0].size(), batch_size, rng);
  std::vector<Batch> out;
  out.reserve(2);
  for (const Batch& full : train_) out.push_back(SubsetBatch(full, idx));
  return out;
}

}  // namespace data
}  // namespace mocograd
