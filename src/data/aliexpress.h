#ifndef MOCOGRAD_DATA_ALIEXPRESS_H_
#define MOCOGRAD_DATA_ALIEXPRESS_H_

#include <string>
#include <vector>

#include "data/dataset.h"

namespace mocograd {
namespace data {

/// Configuration of the AliExpress CTR/CTCVR simulator for one country
/// scenario.
struct AliExpressConfig {
  /// Country tag: "ES", "FR", "NL" or "US". Selects a deterministic
  /// country-specific drift of the ground-truth weights.
  std::string country = "ES";
  int num_train = 12000;
  int num_test = 4000;
  /// Dense feature width (user + item real-valued features).
  int dense_dim = 8;
  /// Cardinalities of the two categorical features.
  int num_user_segments = 16;
  int num_item_categories = 32;
  /// Base log-odds of click and of conversion-given-click; the defaults
  /// give ~15% clicks and ~35% conversions-of-clicks (≈5% CTCVR), matching
  /// the strong label imbalance of the real traffic logs.
  float ctr_base = -1.5f;
  float cvr_base = -0.6f;
  /// How anti-correlated the conversion weights are with the click weights;
  /// this funnel mismatch is the source of CTR↔CTCVR gradient conflict.
  float conflict = 0.75f;
  /// Stddev of unobserved click confounders (position bias, session mood):
  /// logit noise applied when sampling clicks but invisible in the
  /// features. Caps the achievable CTR AUC the way real traffic logs do and
  /// keeps the two tasks comparably hard.
  float ctr_logit_noise = 1.2f;
  uint64_t seed = 29;
};

/// Stand-in for the AliExpress search-log dataset (paper §V-A): two binary
/// tasks per country, Click-Through Rate and Click-Through&Conversion Rate.
/// Both tasks score the same impressions (single-input MTL) through a
/// funnel: a conversion requires a click, so CTCVR = P(click)·P(conv|click),
/// with conversion weights partially anti-correlated with the click weights
/// (`conflict`). Input is [dense ‖ user-segment id ‖ item-category id] with
/// the ids float-encoded for the EmbeddingHpsModel. Metric: AUC.
class AliExpressSim : public MtlDataset {
 public:
  explicit AliExpressSim(const AliExpressConfig& config);

  std::string name() const override { return "aliexpress_" + config_.country; }
  int num_tasks() const override { return 2; }
  TaskKind task_kind(int) const override {
    return TaskKind::kBinaryLogistic;
  }
  bool single_input() const override { return true; }

  std::vector<Batch> SampleTrainBatches(int batch_size,
                                        Rng& rng) const override;
  std::vector<Batch> TestBatches() const override { return test_; }

  /// Input width: dense features plus the two id columns.
  int64_t input_dim() const { return config_.dense_dim + 2; }
  const AliExpressConfig& config() const { return config_; }

 private:
  /// Generates `count` impressions; fills per-task batches sharing x.
  std::vector<Batch> GenerateSplit(int count, Rng& rng) const;

  AliExpressConfig config_;
  /// Ground-truth weights.
  std::vector<float> ctr_dense_w_, cvr_dense_w_;
  std::vector<float> ctr_seg_w_, cvr_seg_w_;   // per user segment
  std::vector<float> ctr_cat_w_, cvr_cat_w_;   // per item category
  std::vector<Batch> train_;
  std::vector<Batch> test_;
};

}  // namespace data
}  // namespace mocograd

#endif  // MOCOGRAD_DATA_ALIEXPRESS_H_
