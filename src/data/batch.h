#ifndef MOCOGRAD_DATA_BATCH_H_
#define MOCOGRAD_DATA_BATCH_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace mocograd {
namespace data {

/// What kind of supervised task a prediction head solves; selects the loss
/// function and the default evaluation metric.
enum class TaskKind {
  /// Binary logistic task (CTR/CTCVR): head emits one logit, BCE loss, AUC.
  kBinaryLogistic,
  /// Scalar/vector regression trained with MSE (RMSE metric).
  kRegression,
  /// Scalar/vector regression trained with L1 (MAE metric).
  kRegressionL1,
  /// Regression trained with MSE but evaluated with MAE — the QM9 protocol
  /// (squared loss on normalized targets, MAE reporting).
  kRegressionMae,
  /// C-way classification: head emits C logits, softmax CE, accuracy.
  kClassification,
  /// Per-pixel classification on [n,C,H,W] maps (mIoU / PixAcc).
  kPixelClassification,
  /// Per-pixel regression on [n,C,H,W] maps (Abs/Rel Err, normal angles).
  kPixelRegression,
};

/// One mini-batch (or full split) for one task.
struct Batch {
  /// Input features: [n, d] for MLP models, [n, c, h, w] for conv models.
  Tensor x;
  /// Dense targets for regression / logistic tasks (same layout as the
  /// prediction); undefined for pure classification.
  Tensor y;
  /// Integer class labels for (pixel-)classification tasks; for pixel tasks
  /// the length is n*h*w in row-major pixel order.
  std::vector<int64_t> labels;

  int64_t size() const { return x.defined() ? x.Dim(0) : 0; }
};

}  // namespace data
}  // namespace mocograd

#endif  // MOCOGRAD_DATA_BATCH_H_
