#include "data/dataset.h"

#include <algorithm>
#include <numeric>

#include "tensor/ops.h"

namespace mocograd {
namespace data {

Tensor GatherDim0(const Tensor& t, const std::vector<int64_t>& idx) {
  MG_CHECK(t.defined());
  MG_CHECK_GE(t.Rank(), 1);
  const int64_t n = t.Dim(0);
  const int64_t rest = t.NumElements() / std::max<int64_t>(n, 1);
  Tensor flat = t.Reshape({n, rest});
  Tensor gathered = tops::GatherRows(flat, idx);
  std::vector<int64_t> dims = t.shape().dims();
  dims[0] = static_cast<int64_t>(idx.size());
  return gathered.Reshape(dims);
}

Batch SubsetBatch(const Batch& full, const std::vector<int64_t>& idx,
                  int64_t labels_per_row) {
  Batch out;
  out.x = GatherDim0(full.x, idx);
  if (full.y.defined()) out.y = GatherDim0(full.y, idx);
  if (!full.labels.empty()) {
    out.labels.reserve(idx.size() * labels_per_row);
    for (int64_t row : idx) {
      for (int64_t j = 0; j < labels_per_row; ++j) {
        out.labels.push_back(full.labels[row * labels_per_row + j]);
      }
    }
  }
  return out;
}

std::vector<int64_t> SampleIndices(int64_t n, int count, Rng& rng) {
  MG_CHECK_GT(n, 0);
  std::vector<int64_t> idx(count);
  if (count <= n) {
    // Partial Fisher-Yates over a shuffled identity.
    std::vector<int64_t> all(n);
    std::iota(all.begin(), all.end(), 0);
    rng.Shuffle(all);
    std::copy(all.begin(), all.begin() + count, idx.begin());
  } else {
    for (int i = 0; i < count; ++i) {
      idx[i] = rng.UniformInt(0, static_cast<int>(n));
    }
  }
  return idx;
}

}  // namespace data
}  // namespace mocograd
