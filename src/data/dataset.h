#ifndef MOCOGRAD_DATA_DATASET_H_
#define MOCOGRAD_DATA_DATASET_H_

#include <string>
#include <vector>

#include "base/rng.h"
#include "data/batch.h"

namespace mocograd {
namespace data {

/// A multi-task dataset: a train split to sample mini-batches from and a
/// held-out test split. Single-input datasets (all tasks share the same
/// examples) return per-task batches whose `x` tensors alias one another;
/// multi-input datasets (paper §III-A) hold disjoint per-task example sets.
class MtlDataset {
 public:
  virtual ~MtlDataset() = default;

  virtual std::string name() const = 0;
  virtual int num_tasks() const = 0;
  virtual TaskKind task_kind(int task) const = 0;

  /// True when all tasks share the same inputs (Single-Input MTL).
  virtual bool single_input() const = 0;

  /// Samples one training mini-batch per task.
  virtual std::vector<Batch> SampleTrainBatches(int batch_size,
                                                Rng& rng) const = 0;

  /// The full test split, one Batch per task.
  virtual std::vector<Batch> TestBatches() const = 0;

  /// Number of classes of a (pixel-)classification task; 0 when unknown
  /// (the harness then infers it from the labels) or not a classification
  /// task.
  virtual int64_t ClassCount(int task) const {
    (void)task;
    return 0;
  }
};

/// Gathers rows `idx` along dim 0 of a tensor of any rank ≥ 1.
Tensor GatherDim0(const Tensor& t, const std::vector<int64_t>& idx);

/// Row subset of a batch: gathers x, y (if defined) and labels. For pixel
/// tasks, `labels_per_row` is the number of label entries per example
/// (h*w); 1 for ordinary tasks.
Batch SubsetBatch(const Batch& full, const std::vector<int64_t>& idx,
                  int64_t labels_per_row = 1);

/// Draws `count` distinct indices from [0, n) (or with replacement when
/// count > n).
std::vector<int64_t> SampleIndices(int64_t n, int count, Rng& rng);

}  // namespace data
}  // namespace mocograd

#endif  // MOCOGRAD_DATA_DATASET_H_
