#include "data/movielens.h"

#include <cmath>

#include "obs/trace.h"

namespace mocograd {
namespace data {

MovieLensSim::MovieLensSim(const MovieLensConfig& config) : config_(config) {
  MG_CHECK_GT(config_.num_genres, 0);
  MG_CHECK_GE(config_.relatedness, 0.0f);
  MG_CHECK_LE(config_.relatedness, 1.0f);
  Rng rng(config_.seed);

  const int l = config_.latent_dim;
  user_factors_.resize(static_cast<size_t>(config_.num_users) * l);
  for (float& v : user_factors_) v = rng.Normal();
  item_factors_.resize(static_cast<size_t>(config_.num_items) * l);
  for (float& v : item_factors_) v = rng.Normal();

  // Common taste component shared by all genres.
  std::vector<float> common(static_cast<size_t>(l) * l);
  const float scale = 1.0f / std::sqrt(static_cast<float>(l));
  for (float& v : common) v = rng.Normal(0.0f, scale);

  genre_transform_.resize(config_.num_genres);
  genre_bias_.resize(config_.num_genres);
  for (int g = 0; g < config_.num_genres; ++g) {
    genre_transform_[g].resize(static_cast<size_t>(l) * l);
    for (size_t i = 0; i < genre_transform_[g].size(); ++i) {
      const float priv = rng.Normal(0.0f, scale);
      genre_transform_[g][i] = config_.relatedness * common[i] +
                               (1.0f - config_.relatedness) * priv;
    }
    genre_bias_[g] = rng.Normal(0.0f, 0.3f);
  }

  for (int g = 0; g < config_.num_genres; ++g) {
    Rng split_rng = rng.Fork();
    train_.push_back(GenerateSplit(g, config_.train_per_task, split_rng));
    test_.push_back(GenerateSplit(g, config_.test_per_task, split_rng));
  }
}

Batch MovieLensSim::GenerateSplit(int genre, int count, Rng& rng) const {
  const int l = config_.latent_dim;
  Batch batch;
  batch.x = Tensor::Zeros({count, 2 * l});
  batch.y = Tensor::Zeros({count, 1});
  for (int i = 0; i < count; ++i) {
    const int u = rng.UniformInt(0, config_.num_users);
    const int it = rng.UniformInt(0, config_.num_items);
    const float* uf = user_factors_.data() + static_cast<size_t>(u) * l;
    const float* vf = item_factors_.data() + static_cast<size_t>(it) * l;
    float* row = batch.x.data() + static_cast<int64_t>(i) * 2 * l;
    std::copy(uf, uf + l, row);
    std::copy(vf, vf + l, row + l);

    // rating = 3 + 1.5·tanh(uᵀ M_g v + b_g) + noise, clamped to [1, 5].
    double bilinear = 0.0;
    const std::vector<float>& m = genre_transform_[genre];
    for (int a = 0; a < l; ++a) {
      double mv = 0.0;
      for (int b = 0; b < l; ++b) mv += m[a * l + b] * vf[b];
      bilinear += uf[a] * mv;
    }
    float rating = 3.0f +
                   1.5f * std::tanh(static_cast<float>(bilinear) +
                                    genre_bias_[genre]) +
                   rng.Normal(0.0f, config_.noise);
    if (rng.Bernoulli(config_.outlier_fraction)) {
      rating = rng.Uniform(1.0f, 5.0f);  // careless-user outlier
    }
    batch.y.data()[i] = std::min(5.0f, std::max(1.0f, rating));
  }
  return batch;
}

std::vector<Batch> MovieLensSim::SampleTrainBatches(int batch_size,
                                                    Rng& rng) const {
  MG_TRACE_SCOPE("data.sample_batches");
  std::vector<Batch> out;
  out.reserve(train_.size());
  for (const Batch& full : train_) {
    out.push_back(SubsetBatch(full, SampleIndices(full.size(), batch_size,
                                                  rng)));
  }
  return out;
}

}  // namespace data
}  // namespace mocograd
