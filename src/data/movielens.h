#ifndef MOCOGRAD_DATA_MOVIELENS_H_
#define MOCOGRAD_DATA_MOVIELENS_H_

#include <string>
#include <vector>

#include "data/dataset.h"

namespace mocograd {
namespace data {

/// Configuration of the MovieLens rating-regression simulator.
struct MovieLensConfig {
  /// Number of genre tasks (the paper selects 9 genres).
  int num_genres = 9;
  int num_users = 300;
  int num_items = 240;
  /// Latent factor dimensionality of the ground-truth model.
  int latent_dim = 8;
  int train_per_task = 1500;
  int test_per_task = 400;
  /// In [0,1]: how much the genre-specific taste transforms share a common
  /// component. Lower values → less related tasks → stronger gradient
  /// conflict. 0.5 reproduces the "correlate, conflict, or even compete"
  /// regime of the paper's Fig. 1/2 study.
  float relatedness = 0.75f;
  /// Rating noise stddev.
  float noise = 0.35f;
  /// Fraction of ratings replaced by a uniform random rating in [1, 5]
  /// (careless users / bot traffic). These outliers produce the occasional
  /// large, misleading mini-batch gradients whose spurious conflicts the
  /// paper's momentum calibration is designed to absorb.
  float outlier_fraction = 0.1f;
  uint64_t seed = 13;
};

/// Stand-in for the MovieLens-10M 9-genre rating regression benchmark
/// (paper §V-A). Ground truth is a shared user/item latent-factor model;
/// each genre applies its own taste transform, a convex blend of a common
/// matrix and a genre-private one (`relatedness` controls the blend). Each
/// genre task has its own (user, item) sample set — multi-input MTL, as in
/// the paper (disjoint per-genre ratings). Features are the concatenated
/// user and item latent vectors; targets are ratings in roughly [1, 5];
/// metric: RMSE.
class MovieLensSim : public MtlDataset {
 public:
  explicit MovieLensSim(const MovieLensConfig& config);

  std::string name() const override { return "movielens"; }
  int num_tasks() const override { return config_.num_genres; }
  TaskKind task_kind(int) const override { return TaskKind::kRegression; }
  bool single_input() const override { return false; }

  std::vector<Batch> SampleTrainBatches(int batch_size,
                                        Rng& rng) const override;
  std::vector<Batch> TestBatches() const override { return test_; }

  int64_t input_dim() const { return 2 * config_.latent_dim; }

 private:
  Batch GenerateSplit(int genre, int count, Rng& rng) const;

  MovieLensConfig config_;
  /// Ground-truth factors.
  std::vector<float> user_factors_;   // [num_users, latent]
  std::vector<float> item_factors_;   // [num_items, latent]
  /// Per-genre taste transform [latent, latent] and bias.
  std::vector<std::vector<float>> genre_transform_;
  std::vector<float> genre_bias_;
  std::vector<Batch> train_;
  std::vector<Batch> test_;
};

}  // namespace data
}  // namespace mocograd

#endif  // MOCOGRAD_DATA_MOVIELENS_H_
