#include "data/office_home.h"

#include <cmath>

#include "obs/trace.h"

namespace mocograd {
namespace data {

const char* OfficeHomeSim::DomainName(int task) {
  static const char* kNames[] = {"Art", "Clipart", "Product", "RealWorld"};
  MG_CHECK_GE(task, 0);
  MG_CHECK_LT(task, 4);
  return kNames[task];
}

OfficeHomeSim::OfficeHomeSim(const OfficeHomeConfig& config)
    : config_(config) {
  MG_CHECK_GT(config_.num_classes, 1);
  Rng rng(config_.seed);
  const int d = config_.feature_dim;

  prototypes_.resize(static_cast<size_t>(config_.num_classes) * d);
  for (float& v : prototypes_) v = rng.Normal(0.0f, 1.0f);

  for (int dom = 0; dom < config_.num_domains; ++dom) {
    // Style transform: identity plus a random mixing perturbation.
    std::vector<float> m(static_cast<size_t>(d) * d, 0.0f);
    for (int i = 0; i < d; ++i) {
      for (int j = 0; j < d; ++j) {
        m[i * d + j] = (i == j ? 1.0f : 0.0f) +
                       config_.domain_shift *
                           rng.Normal(0.0f, 1.0f / std::sqrt(float(d)));
      }
    }
    std::vector<float> b(d);
    for (float& v : b) v = config_.domain_shift * rng.Normal();
    domain_mat_.push_back(std::move(m));
    domain_bias_.push_back(std::move(b));
  }

  for (int dom = 0; dom < config_.num_domains; ++dom) {
    Rng split_rng = rng.Fork();
    train_.push_back(GenerateSplit(dom, config_.train_per_class_per_domain,
                                   split_rng));
    test_.push_back(GenerateSplit(dom, config_.test_per_class_per_domain,
                                  split_rng));
  }
}

Batch OfficeHomeSim::GenerateSplit(int domain, int per_class,
                                   Rng& rng) const {
  const int d = config_.feature_dim;
  const int n = config_.num_classes * per_class;
  Batch batch;
  batch.x = Tensor::Zeros({n, d});
  batch.labels.resize(n);

  std::vector<float> latent(d);
  int row = 0;
  for (int cls = 0; cls < config_.num_classes; ++cls) {
    const float* proto = prototypes_.data() + static_cast<size_t>(cls) * d;
    for (int s = 0; s < per_class; ++s, ++row) {
      for (int j = 0; j < d; ++j) {
        latent[j] = std::tanh(proto[j] + config_.noise * rng.Normal());
      }
      float* xr = batch.x.data() + static_cast<int64_t>(row) * d;
      const auto& m = domain_mat_[domain];
      const auto& b = domain_bias_[domain];
      for (int i = 0; i < d; ++i) {
        double acc = b[i];
        for (int j = 0; j < d; ++j) acc += m[i * d + j] * latent[j];
        xr[i] = static_cast<float>(acc) + 0.1f * rng.Normal();
      }
      batch.labels[row] = rng.Bernoulli(config_.label_noise)
                              ? rng.UniformInt(0, config_.num_classes)
                              : cls;
    }
  }
  return batch;
}

std::vector<Batch> OfficeHomeSim::SampleTrainBatches(int batch_size,
                                                     Rng& rng) const {
  MG_TRACE_SCOPE("data.sample_batches");
  std::vector<Batch> out;
  out.reserve(train_.size());
  for (const Batch& full : train_) {
    out.push_back(
        SubsetBatch(full, SampleIndices(full.size(), batch_size, rng)));
  }
  return out;
}

}  // namespace data
}  // namespace mocograd
