#ifndef MOCOGRAD_DATA_OFFICE_HOME_H_
#define MOCOGRAD_DATA_OFFICE_HOME_H_

#include <string>
#include <vector>

#include "data/dataset.h"

namespace mocograd {
namespace data {

/// Configuration of the Office-Home domain-classification simulator.
struct OfficeHomeConfig {
  /// Number of object categories (65 in Office-Home).
  int num_classes = 65;
  /// Domains: Art, Clipart, Product, Real-World.
  int num_domains = 4;
  int train_per_class_per_domain = 8;
  int test_per_class_per_domain = 6;
  /// Feature width of the simulated backbone embedding.
  int feature_dim = 24;
  /// How strongly each domain distorts the shared class prototypes; larger
  /// values → less related domain tasks → more conflict.
  float domain_shift = 0.2f;
  /// Within-class sample noise.
  float noise = 0.8f;
  /// Fraction of mislabeled examples (web-crawled label noise).
  float label_noise = 0.25f;
  uint64_t seed = 83;
};

/// Stand-in for the Office-Home dataset (paper §V-A): each of the four
/// domains (Art / Clipart / Product / Real-World) is a 65-way
/// classification task over its own images — multi-input MTL. Ground truth:
/// shared class prototypes pushed through a domain-specific affine +
/// nonlinear "style" transform, so the domains agree on semantics but
/// disagree on feature geometry, reproducing the domain-conflict pattern of
/// the paper's Fig. 5. Metric: per-domain accuracy.
class OfficeHomeSim : public MtlDataset {
 public:
  explicit OfficeHomeSim(const OfficeHomeConfig& config);

  std::string name() const override { return "office_home"; }
  int num_tasks() const override { return config_.num_domains; }
  TaskKind task_kind(int) const override {
    return TaskKind::kClassification;
  }
  bool single_input() const override { return false; }

  std::vector<Batch> SampleTrainBatches(int batch_size,
                                        Rng& rng) const override;
  std::vector<Batch> TestBatches() const override { return test_; }

  int64_t ClassCount(int) const override { return config_.num_classes; }

  int64_t input_dim() const { return config_.feature_dim; }
  int num_classes() const { return config_.num_classes; }
  /// Domain names in task order.
  static const char* DomainName(int task);

 private:
  Batch GenerateSplit(int domain, int per_class, Rng& rng) const;

  OfficeHomeConfig config_;
  std::vector<float> prototypes_;               // [classes, feature_dim]
  std::vector<std::vector<float>> domain_mat_;  // per-domain mixing matrix
  std::vector<std::vector<float>> domain_bias_;
  std::vector<Batch> train_;
  std::vector<Batch> test_;
};

}  // namespace data
}  // namespace mocograd

#endif  // MOCOGRAD_DATA_OFFICE_HOME_H_
