#include "data/qm9.h"

#include <cmath>

#include "obs/trace.h"

namespace mocograd {
namespace data {

Qm9Sim::Qm9Sim(const Qm9Config& config) : config_(config) {
  MG_CHECK_GT(config_.num_properties, 0);
  MG_CHECK_GE(config_.relatedness, 0.0f);
  MG_CHECK_LE(config_.relatedness, 1.0f);
  Rng rng(config_.seed);
  const int d = config_.descriptor_dim;
  const int h = config_.basis_dim;

  // Shared nonlinear basis: the "chemistry" all properties read out from.
  basis_.resize(static_cast<size_t>(h) * d);
  const float bscale = 1.0f / std::sqrt(static_cast<float>(d));
  for (float& v : basis_) v = rng.Normal(0.0f, bscale);

  // Property-common readout direction plus per-property private parts.
  std::vector<float> common(h);
  const float rscale = 1.0f / std::sqrt(static_cast<float>(h));
  for (float& v : common) v = rng.Normal(0.0f, rscale);

  // Heterogeneous output scales the way QM9 properties mix eV, Debye,
  // cal/mol·K and Å² units (about one order of magnitude spread).
  const float base_scales[] = {1.0f, 0.5f, 2.0f, 0.4f, 3.0f, 1.2f,
                               0.3f, 2.5f, 0.7f, 1.6f, 3.5f};
  for (int p = 0; p < config_.num_properties; ++p) {
    scales_.push_back(base_scales[p % 11]);
    std::vector<float> w(h);
    for (int j = 0; j < h; ++j) {
      w[j] = config_.relatedness * common[j] +
             (1.0f - config_.relatedness) * rng.Normal(0.0f, rscale);
    }
    readout_w_.push_back(std::move(w));
    // Real QM9 properties are mostly strictly-positive physical quantities
    // with mean ≫ std (Cv ≈ 31.6 ± 4.1 cal/mol·K, R² ≈ 1200 ± 280 a₀²):
    // each property carries a large offset relative to its variation.
    bias_.push_back(rng.Normal(3.0f, 0.5f));
  }

  for (int p = 0; p < config_.num_properties; ++p) {
    Rng split_rng = rng.Fork();
    train_.push_back(GenerateSplit(p, config_.train_per_task, split_rng));
    test_.push_back(GenerateSplit(p, config_.test_per_task, split_rng));
  }

  if (config_.normalize_targets) {
    // Scale-only normalization with train statistics: each property is
    // divided by its train-split standard deviation so per-task losses are
    // comparable, but the mean is retained — the physical zero point of
    // positive-valued quantities (ZPVE, Cv, R², ...) is meaningful, and
    // QM9 properties have mean ≫ std in raw units.
    for (int p = 0; p < config_.num_properties; ++p) {
      Tensor& ty = train_[p].y;
      double mean = 0.0, var = 0.0;
      const int64_t n = ty.NumElements();
      for (int64_t i = 0; i < n; ++i) mean += ty[i];
      mean /= n;
      for (int64_t i = 0; i < n; ++i) {
        var += (ty[i] - mean) * (ty[i] - mean);
      }
      const float stddev =
          static_cast<float>(std::sqrt(std::max(var / n, 1e-12)));
      auto apply = [&](Tensor& y) {
        for (int64_t i = 0; i < y.NumElements(); ++i) y[i] /= stddev;
      };
      apply(train_[p].y);
      apply(test_[p].y);
    }
  }
}

Batch Qm9Sim::GenerateSplit(int property, int count, Rng& rng) const {
  const int d = config_.descriptor_dim;
  const int h = config_.basis_dim;
  Batch batch;
  batch.x = Tensor::Zeros({count, d});
  batch.y = Tensor::Zeros({count, 1});
  std::vector<float> phi(h);
  for (int i = 0; i < count; ++i) {
    float* row = batch.x.data() + static_cast<int64_t>(i) * d;
    // Simulated GNN readout: molecule-size modulated random descriptor.
    const float size_factor =
        0.5f + 0.1f * static_cast<float>(rng.UniformInt(8, 25));
    for (int j = 0; j < d; ++j) {
      row[j] = rng.Normal(0.0f, 1.0f) * std::sqrt(size_factor) / 1.5f;
    }
    // φ(z) = tanh(B z), the shared basis.
    for (int b = 0; b < h; ++b) {
      double acc = 0.0;
      for (int j = 0; j < d; ++j) acc += basis_[b * d + j] * row[j];
      phi[b] = std::tanh(static_cast<float>(acc));
    }
    double readout = bias_[property];
    const auto& w = readout_w_[property];
    for (int b = 0; b < h; ++b) readout += w[b] * phi[b];
    float value = static_cast<float>(readout) +
                  rng.Normal(0.0f, config_.noise);
    if (rng.Bernoulli(config_.outlier_fraction)) {
      // Measurement mix-up: the value is replaced by an unrelated draw from
      // the property's marginal (sample-swap / failed-pipeline outlier).
      value = bias_[property] + rng.Normal(0.0f, 1.2f);
    }
    batch.y.data()[i] = scales_[property] * value;
  }
  return batch;
}

std::vector<Batch> Qm9Sim::SampleTrainBatches(int batch_size,
                                              Rng& rng) const {
  MG_TRACE_SCOPE("data.sample_batches");
  std::vector<Batch> out;
  out.reserve(train_.size());
  for (const Batch& full : train_) {
    out.push_back(
        SubsetBatch(full, SampleIndices(full.size(), batch_size, rng)));
  }
  return out;
}

}  // namespace data
}  // namespace mocograd
