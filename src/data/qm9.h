#ifndef MOCOGRAD_DATA_QM9_H_
#define MOCOGRAD_DATA_QM9_H_

#include <string>
#include <vector>

#include "data/dataset.h"

namespace mocograd {
namespace data {

/// Configuration of the QM9 molecular-property simulator.
struct Qm9Config {
  /// Number of property-regression tasks (the paper uses 11).
  int num_properties = 11;
  int train_per_task = 1200;
  int test_per_task = 400;
  /// Width of the molecular descriptor vector the simulated "GNN readout"
  /// produces.
  int descriptor_dim = 16;
  /// Width of the shared nonlinear basis all properties are functionals of
  /// (the "chemistry" every property depends on — what makes joint training
  /// profitable).
  int basis_dim = 24;
  /// In [0,1]: weight of the property-common component of each property's
  /// readout weights; the remainder is property-private and the source of
  /// inter-property gradient conflict.
  float relatedness = 0.75f;
  /// Standardize each property's targets to zero mean / unit variance using
  /// train-split statistics — the LibMTL preprocessing the paper builds on.
  /// Raw targets (false) leave the full unit heterogeneity in place, the
  /// regime where loss-balancing methods (IMTL, Nash-MTL) dominate.
  bool normalize_targets = true;
  /// Target noise stddev (relative to each property's scale).
  float noise = 0.1f;
  /// Fraction of measurements replaced by heavy-tailed outliers (failed DFT
  /// convergence / unit mix-ups in real chemistry pipelines).
  float outlier_fraction = 0.2f;
  uint64_t seed = 41;
};

/// Stand-in for the QM9 quantum-chemistry benchmark (paper §V-A): 11
/// regression tasks over molecules, multi-input (each property has its own
/// training molecules). A "molecule" is summarized as a descriptor vector
/// (atom-feature aggregate); each property is a distinct nonlinear
/// functional of the descriptor with its own output scale — QM9's defining
/// difficulty is exactly this scale/shape heterogeneity across properties,
/// which produces the strong task conflicts where the paper's QM9 margins
/// are largest. Trained with L1 loss, evaluated with MAE.
class Qm9Sim : public MtlDataset {
 public:
  explicit Qm9Sim(const Qm9Config& config);

  std::string name() const override { return "qm9"; }
  int num_tasks() const override { return config_.num_properties; }
  TaskKind task_kind(int) const override { return TaskKind::kRegressionMae; }
  bool single_input() const override { return false; }

  std::vector<Batch> SampleTrainBatches(int batch_size,
                                        Rng& rng) const override;
  std::vector<Batch> TestBatches() const override { return test_; }

  int64_t input_dim() const { return config_.descriptor_dim; }
  /// Ground-truth output scale of property `p` (for tests).
  float property_scale(int p) const { return scales_[p]; }

 private:
  Batch GenerateSplit(int property, int count, Rng& rng) const;

  Qm9Config config_;
  /// Shared nonlinear basis: φ(z) = tanh(B z), B [basis_dim, descriptor].
  std::vector<float> basis_;
  /// Per-property readout weights over the shared basis.
  std::vector<std::vector<float>> readout_w_;
  std::vector<float> bias_;
  std::vector<float> scales_;
  std::vector<Batch> train_;
  std::vector<Batch> test_;
};

}  // namespace data
}  // namespace mocograd

#endif  // MOCOGRAD_DATA_QM9_H_
