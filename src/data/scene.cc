#include "data/scene.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"

namespace mocograd {
namespace data {

namespace {

// Fixed, distinguishable class palette (RGB per class id).
void ClassColor(int cls, float* rgb) {
  // Golden-angle hue walk -> stable distinct colors for up to ~20 classes.
  const float h = std::fmod(0.137508f * static_cast<float>(cls + 1), 1.0f);
  rgb[0] = 0.5f + 0.5f * std::sin(6.2832f * h);
  rgb[1] = 0.5f + 0.5f * std::sin(6.2832f * h + 2.094f);
  rgb[2] = 0.5f + 0.5f * std::sin(6.2832f * h + 4.189f);
}

// Small set of plausible surface orientations plus jitter.
void ObjectNormal(int pick, Rng& rng, float* n) {
  static const float kBases[5][3] = {{0, 0, 1},
                                     {0, 0.8f, 0.6f},
                                     {0.7f, 0, 0.71f},
                                     {-0.7f, 0, 0.71f},
                                     {0, -0.6f, 0.8f}};
  const float* b = kBases[pick % 5];
  float v[3];
  double norm = 0.0;
  for (int i = 0; i < 3; ++i) {
    v[i] = b[i] + rng.Normal(0.0f, 0.08f);
    norm += static_cast<double>(v[i]) * v[i];
  }
  const float inv = 1.0f / static_cast<float>(std::sqrt(norm));
  for (int i = 0; i < 3; ++i) n[i] = v[i] * inv;
}

}  // namespace

SceneSim::SceneSim(const SceneConfig& config) : config_(config) {
  MG_CHECK_GE(config_.hw, 8);
  Rng rng(config_.seed);
  Rng train_rng = rng.Fork();
  Rng test_rng = rng.Fork();
  train_ = GenerateSplit(config_.num_train, train_rng);
  test_ = GenerateSplit(config_.num_test, test_rng);
}

TaskKind SceneSim::task_kind(int task) const {
  if (task == 0) return TaskKind::kPixelClassification;  // segmentation
  if (task == 1) return TaskKind::kPixelRegression;      // depth
  MG_CHECK_EQ(config_.mode == SceneMode::kNyu, true, "normals are NYU-only");
  return TaskKind::kPixelRegression;  // surface normals
}

std::vector<Batch> SceneSim::GenerateSplit(int count, Rng& rng) const {
  const int hw = config_.hw;
  const bool nyu = config_.mode == SceneMode::kNyu;
  const int classes = num_classes();

  Tensor images = Tensor::Zeros({count, 3, hw, hw});
  Tensor depth = Tensor::Zeros({count, 1, hw, hw});
  Tensor normals = nyu ? Tensor::Zeros({count, 3, hw, hw}) : Tensor();
  std::vector<int64_t> seg(static_cast<size_t>(count) * hw * hw, 0);

  for (int img = 0; img < count; ++img) {
    // --- Background: class 0, depth falls from top (far) to bottom (near),
    // normals: upper half wall (facing camera), lower half floor.
    std::vector<int> cls(hw * hw, 0);         // annotated (possibly wrong)
    std::vector<int> true_cls(hw * hw, 0);    // what the image renders
    std::vector<float> dep(hw * hw);
    std::vector<float> nrm(hw * hw * 3);
    for (int y = 0; y < hw; ++y) {
      for (int x = 0; x < hw; ++x) {
        const int p = y * hw + x;
        dep[p] = 0.9f - 0.55f * static_cast<float>(y) / (hw - 1);
        const bool floor = y >= hw / 2;
        nrm[p * 3 + 0] = 0.0f;
        nrm[p * 3 + 1] = floor ? 0.9539f : 0.0f;
        nrm[p * 3 + 2] = floor ? 0.3f : 1.0f;
      }
    }

    // --- Objects: draw far-to-near so near ones occlude.
    const int n_obj = 1 + rng.UniformInt(0, config_.max_objects);
    struct Obj {
      int cls, y0, y1, x0, x1, orient;
      float depth;
    };
    std::vector<Obj> objs;
    for (int o = 0; o < n_obj; ++o) {
      Obj ob;
      ob.cls = 1 + rng.UniformInt(0, classes - 1);
      const int oh = 3 + rng.UniformInt(0, hw / 2 - 2);
      const int ow = 3 + rng.UniformInt(0, hw / 2 - 2);
      ob.y0 = rng.UniformInt(0, hw - oh);
      ob.x0 = rng.UniformInt(0, hw - ow);
      ob.y1 = ob.y0 + oh;
      ob.x1 = ob.x0 + ow;
      // Semantics correlate with geometry, as in real indoor/street scenes:
      // each class has a characteristic depth band and surface orientation
      // (floors are flat and near, walls vertical and far, furniture in a
      // mid-depth band). This cross-task structure is what joint training
      // can exploit.
      const float band =
          0.2f + 0.55f * static_cast<float>(ob.cls) / (classes - 1);
      ob.depth = band + rng.Normal(0.0f, 0.06f);
      ob.depth = std::min(0.85f, std::max(0.12f, ob.depth));
      ob.orient = ob.cls % 5;
      objs.push_back(ob);
    }
    std::sort(objs.begin(), objs.end(),
              [](const Obj& a, const Obj& b) { return a.depth > b.depth; });
    for (const Obj& ob : objs) {
      float onrm[3];
      ObjectNormal(ob.orient, rng, onrm);
      // Annotation noise: a mislabeled instance keeps its true geometry but
      // carries a wrong class in the segmentation ground truth.
      const int label_cls = rng.Bernoulli(config_.annotation_noise)
                                ? 1 + rng.UniformInt(0, classes - 1)
                                : ob.cls;
      for (int y = ob.y0; y < ob.y1; ++y) {
        for (int x = ob.x0; x < ob.x1; ++x) {
          const int p = y * hw + x;
          if (ob.depth > dep[p]) continue;  // occluded by nearer surface
          cls[p] = label_cls;
          true_cls[p] = ob.cls;
          dep[p] = ob.depth + 0.03f * rng.Normal();
          for (int c = 0; c < 3; ++c) nrm[p * 3 + c] = onrm[c];
        }
      }
    }

    // --- Render image: class color modulated by depth shading + noise.
    float* img_ptr = images.data() + static_cast<int64_t>(img) * 3 * hw * hw;
    float* dep_ptr = depth.data() + static_cast<int64_t>(img) * hw * hw;
    float* nrm_ptr =
        nyu ? normals.data() + static_cast<int64_t>(img) * 3 * hw * hw
            : nullptr;
    for (int p = 0; p < hw * hw; ++p) {
      float rgb[3];
      ClassColor(true_cls[p], rgb);
      // Lambertian-style rendering: pixel brightness couples depth
      // attenuation with normal-dependent lighting, so recovering any one
      // quantity from the image requires implicitly estimating the others —
      // the cross-task synergy that makes joint training profitable on the
      // real datasets.
      const float ndotl = std::max(
          0.0f, 0.3f * nrm[p * 3 + 0] + 0.5f * nrm[p * 3 + 1] +
                    0.81f * nrm[p * 3 + 2]);
      const float shade = (1.15f - dep[p]) * (0.55f + 0.75f * ndotl);
      for (int c = 0; c < 3; ++c) {
        img_ptr[c * hw * hw + p] =
            rgb[c] * shade + rng.Normal(0.0f, config_.image_noise);
      }
      // Depth is stored in meters (scaled disparity units, range ≈ 0.4–2.7) so the MSE
      // loss has the same O(1) scale as the segmentation CE and the normal
      // loss — matching the loss balance of the real benchmark.
      dep_ptr[p] = 3.0f * dep[p];
      seg[static_cast<size_t>(img) * hw * hw + p] = cls[p];
      if (nyu) {
        for (int c = 0; c < 3; ++c) nrm_ptr[c * hw * hw + p] = nrm[p * 3 + c];
      }
    }
  }

  Batch seg_batch{.x = images, .y = Tensor(), .labels = std::move(seg)};
  Batch depth_batch{.x = images, .y = depth, .labels = {}};
  std::vector<Batch> out = {seg_batch, depth_batch};
  if (nyu) {
    Batch normal_batch{.x = images, .y = normals, .labels = {}};
    out.push_back(normal_batch);
  }
  return out;
}

std::vector<Batch> SceneSim::SampleTrainBatches(int batch_size,
                                                Rng& rng) const {
  MG_TRACE_SCOPE("data.sample_batches");
  const auto idx = SampleIndices(train_[0].size(), batch_size, rng);
  const int64_t ppx = static_cast<int64_t>(config_.hw) * config_.hw;
  std::vector<Batch> out;
  out.reserve(train_.size());
  for (size_t t = 0; t < train_.size(); ++t) {
    out.push_back(SubsetBatch(train_[t], idx, t == 0 ? ppx : 1));
  }
  return out;
}

ScenePixelDataset::ScenePixelDataset(const SceneSim& scene, int window,
                                     int pixels_per_image, uint64_t seed) {
  name_ = scene.name() + "_pixels";
  num_classes_ = scene.num_classes();
  const bool nyu = scene.num_tasks() == 3;
  kinds_ = {TaskKind::kClassification, TaskKind::kRegression};
  if (nyu) kinds_.push_back(TaskKind::kRegression);
  input_dim_ = 3ll * window * window;

  Rng rng(seed);
  train_ = Extract(scene.TrainBatchesFull(), window, pixels_per_image, rng);
  test_ = Extract(scene.TestBatches(), window, pixels_per_image, rng);
}

std::vector<Batch> ScenePixelDataset::Extract(const std::vector<Batch>& dense,
                                              int window,
                                              int pixels_per_image,
                                              Rng& rng) const {
  const Tensor& images = dense[0].x;  // [n, 3, hw, hw]
  const int64_t n = images.Dim(0);
  const int hw = static_cast<int>(images.Dim(2));
  const int half = window / 2;
  const int64_t m = n * pixels_per_image;
  const bool nyu = kinds_.size() == 3;

  Tensor x = Tensor::Zeros({m, input_dim_});
  std::vector<int64_t> labels(m);
  Tensor depth_y = Tensor::Zeros({m, 1});
  Tensor normal_y = nyu ? Tensor::Zeros({m, 3}) : Tensor();

  int64_t row = 0;
  for (int64_t img = 0; img < n; ++img) {
    const float* img_ptr = images.data() + img * 3 * hw * hw;
    for (int s = 0; s < pixels_per_image; ++s, ++row) {
      const int cy = rng.UniformInt(0, hw);
      const int cx = rng.UniformInt(0, hw);
      float* xr = x.data() + row * input_dim_;
      int64_t f = 0;
      for (int c = 0; c < 3; ++c) {
        for (int dy = -half; dy <= half; ++dy) {
          for (int dx = -half; dx <= half; ++dx) {
            const int yy = cy + dy, xx = cx + dx;
            xr[f++] = (yy >= 0 && yy < hw && xx >= 0 && xx < hw)
                          ? img_ptr[c * hw * hw + yy * hw + xx]
                          : 0.0f;
          }
        }
      }
      const int64_t p = static_cast<int64_t>(cy) * hw + cx;
      labels[row] = dense[0].labels[img * hw * hw + p];
      depth_y.data()[row] = dense[1].y.data()[img * hw * hw + p];
      if (nyu) {
        for (int c = 0; c < 3; ++c) {
          normal_y.data()[row * 3 + c] =
              dense[2].y.data()[(img * 3 + c) * hw * hw + p];
        }
      }
    }
  }

  Batch seg{.x = x, .y = Tensor(), .labels = std::move(labels)};
  Batch dep{.x = x, .y = depth_y, .labels = {}};
  std::vector<Batch> out = {seg, dep};
  if (nyu) {
    Batch nrm{.x = x, .y = normal_y, .labels = {}};
    out.push_back(nrm);
  }
  return out;
}

std::vector<Batch> ScenePixelDataset::SampleTrainBatches(int batch_size,
                                                         Rng& rng) const {
  MG_TRACE_SCOPE("data.sample_batches");
  const auto idx = SampleIndices(train_[0].size(), batch_size, rng);
  std::vector<Batch> out;
  out.reserve(train_.size());
  for (const Batch& full : train_) out.push_back(SubsetBatch(full, idx));
  return out;
}

}  // namespace data
}  // namespace mocograd
