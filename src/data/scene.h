#ifndef MOCOGRAD_DATA_SCENE_H_
#define MOCOGRAD_DATA_SCENE_H_

#include <string>
#include <vector>

#include "data/dataset.h"

namespace mocograd {
namespace data {

/// Which scene-understanding benchmark to simulate.
enum class SceneMode {
  /// NYUv2: 13-class segmentation + depth + surface normals (3 tasks).
  kNyu,
  /// CityScapes: 7-class segmentation + depth (2 tasks).
  kCityscapes,
};

/// Configuration of the procedural scene simulator.
struct SceneConfig {
  SceneMode mode = SceneMode::kNyu;
  /// Square image side.
  int hw = 16;
  int num_train = 256;
  int num_test = 96;
  /// Max objects per scene.
  int max_objects = 4;
  /// Pixel noise on the rendered image.
  float image_noise = 0.2f;
  /// Fraction of object instances whose segmentation annotation is wrong
  /// (human labeling error) — the source of spiky, misleading gradients the
  /// momentum calibration absorbs.
  float annotation_noise = 0.15f;
  uint64_t seed = 57;
};

/// Stand-in for NYUv2 / CityScapes dense-prediction benchmarks (paper
/// §V-A). Scenes are procedurally generated: a background with a
/// front-to-back depth gradient plus axis-aligned "objects", each carrying
/// a semantic class, a depth plane and a surface orientation. The rendered
/// 3-channel image mixes class color with depth shading and noise, so all
/// tasks are solvable from the same shared features — but pull the encoder
/// differently (boundary sharpness for segmentation vs. smooth shading for
/// depth vs. orientation cues for normals), which reproduces the gradient
/// conflicts the paper measures on the real datasets. Single-input MTL.
class SceneSim : public MtlDataset {
 public:
  explicit SceneSim(const SceneConfig& config);

  std::string name() const override {
    return config_.mode == SceneMode::kNyu ? "nyuv2" : "cityscapes";
  }
  int num_tasks() const override {
    return config_.mode == SceneMode::kNyu ? 3 : 2;
  }
  TaskKind task_kind(int task) const override;
  bool single_input() const override { return true; }

  std::vector<Batch> SampleTrainBatches(int batch_size,
                                        Rng& rng) const override;
  std::vector<Batch> TestBatches() const override { return test_; }

  /// Full train split (used by ScenePixelDataset).
  const std::vector<Batch>& TrainBatchesFull() const { return train_; }

  int64_t ClassCount(int task) const override {
    return task == 0 ? num_classes() : 0;
  }

  int num_classes() const {
    return config_.mode == SceneMode::kNyu ? 13 : 7;
  }
  int hw() const { return config_.hw; }
  const SceneConfig& config() const { return config_; }

 private:
  std::vector<Batch> GenerateSplit(int count, Rng& rng) const;

  SceneConfig config_;
  std::vector<Batch> train_;
  std::vector<Batch> test_;
};

/// Pixel-window view of a SceneSim: each example is one pixel with its
/// local (window×window×3) image patch as features, and the pixel's class /
/// depth / normal as the per-task targets. This turns dense prediction into
/// ordinary vector MTL so that every architecture (MMoE, Cross-stitch,
/// CGC, ...) applies uniformly — the form used for the paper's Fig. 7
/// architecture sweep.
class ScenePixelDataset : public MtlDataset {
 public:
  ScenePixelDataset(const SceneSim& scene, int window = 5,
                    int pixels_per_image = 24, uint64_t seed = 71);

  std::string name() const override { return name_; }
  int num_tasks() const override { return static_cast<int>(kinds_.size()); }
  TaskKind task_kind(int task) const override { return kinds_[task]; }
  bool single_input() const override { return true; }

  std::vector<Batch> SampleTrainBatches(int batch_size,
                                        Rng& rng) const override;
  std::vector<Batch> TestBatches() const override { return test_; }

  int64_t ClassCount(int task) const override {
    return task == 0 ? num_classes_ : 0;
  }

  int64_t input_dim() const { return input_dim_; }
  int num_classes() const { return num_classes_; }

 private:
  std::vector<Batch> Extract(const std::vector<Batch>& dense, int window,
                             int pixels_per_image, Rng& rng) const;

  std::string name_;
  std::vector<TaskKind> kinds_;
  int num_classes_ = 0;
  int64_t input_dim_ = 0;
  std::vector<Batch> train_;
  std::vector<Batch> test_;
};

}  // namespace data
}  // namespace mocograd

#endif  // MOCOGRAD_DATA_SCENE_H_
