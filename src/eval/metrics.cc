#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "base/check.h"
#include "tensor/ops.h"

namespace mocograd {
namespace eval {

double Auc(const Tensor& scores, const Tensor& labels) {
  MG_CHECK_EQ(scores.NumElements(), labels.NumElements());
  const int64_t n = scores.NumElements();
  MG_CHECK_GT(n, 0);

  // Rank-based (Mann-Whitney) AUC with average ranks for ties.
  std::vector<int64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  const float* s = scores.data();
  const float* y = labels.data();
  std::sort(order.begin(), order.end(),
            [&](int64_t a, int64_t b) { return s[a] < s[b]; });

  double pos_rank_sum = 0.0;
  int64_t num_pos = 0;
  int64_t i = 0;
  while (i < n) {
    int64_t j = i;
    while (j < n && s[order[j]] == s[order[i]]) ++j;
    const double avg_rank = 0.5 * (i + j - 1) + 1.0;  // 1-based average rank
    for (int64_t t = i; t < j; ++t) {
      if (y[order[t]] > 0.5f) {
        pos_rank_sum += avg_rank;
        ++num_pos;
      }
    }
    i = j;
  }
  const int64_t num_neg = n - num_pos;
  if (num_pos == 0 || num_neg == 0) return 0.5;
  return (pos_rank_sum - 0.5 * num_pos * (num_pos + 1)) /
         (static_cast<double>(num_pos) * num_neg);
}

double Rmse(const Tensor& pred, const Tensor& target) {
  MG_CHECK_EQ(pred.NumElements(), target.NumElements());
  const int64_t n = pred.NumElements();
  double s = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double d = pred[i] - target[i];
    s += d * d;
  }
  return std::sqrt(s / n);
}

double Mae(const Tensor& pred, const Tensor& target) {
  MG_CHECK_EQ(pred.NumElements(), target.NumElements());
  const int64_t n = pred.NumElements();
  double s = 0.0;
  for (int64_t i = 0; i < n; ++i) s += std::fabs(pred[i] - target[i]);
  return s / n;
}

double AbsErr(const Tensor& pred, const Tensor& target) {
  return Mae(pred, target);
}

double RelErr(const Tensor& pred, const Tensor& target) {
  MG_CHECK_EQ(pred.NumElements(), target.NumElements());
  const int64_t n = pred.NumElements();
  double s = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    s += std::fabs(pred[i] - target[i]) /
         std::max(1e-6f, std::fabs(target[i]));
  }
  return 100.0 * s / n;
}

double Accuracy(const Tensor& logits, const std::vector<int64_t>& labels) {
  MG_CHECK_EQ(logits.Dim(0), static_cast<int64_t>(labels.size()));
  const auto preds = tops::ArgMaxRows(logits);
  int64_t correct = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (preds[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / labels.size();
}

namespace {

// Flattens [n, C, H, W] logits into per-pixel argmax predictions in the
// same row-major pixel order as the label vector.
std::vector<int64_t> PixelArgmax(const Tensor& logits) {
  MG_CHECK_EQ(logits.Rank(), 4);
  const int64_t n = logits.Dim(0), c = logits.Dim(1), h = logits.Dim(2),
                w = logits.Dim(3);
  std::vector<int64_t> preds(n * h * w);
  const float* p = logits.data();
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t pix = 0; pix < h * w; ++pix) {
      int64_t best = 0;
      float best_v = p[(b * c) * h * w + pix];
      for (int64_t ch = 1; ch < c; ++ch) {
        const float v = p[(b * c + ch) * h * w + pix];
        if (v > best_v) {
          best_v = v;
          best = ch;
        }
      }
      preds[b * h * w + pix] = best;
    }
  }
  return preds;
}

}  // namespace

double PixelAccuracy(const Tensor& logits,
                     const std::vector<int64_t>& labels) {
  const auto preds = PixelArgmax(logits);
  MG_CHECK_EQ(preds.size(), labels.size());
  int64_t correct = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (preds[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / labels.size();
}

double MeanIou(const Tensor& logits, const std::vector<int64_t>& labels,
               int num_classes) {
  const auto preds = PixelArgmax(logits);
  MG_CHECK_EQ(preds.size(), labels.size());
  std::vector<int64_t> inter(num_classes, 0), uni(num_classes, 0);
  for (size_t i = 0; i < labels.size(); ++i) {
    const int64_t t = labels[i], p = preds[i];
    MG_CHECK_LT(t, num_classes);
    if (t == p) {
      ++inter[t];
      ++uni[t];
    } else {
      ++uni[t];
      if (p < num_classes) ++uni[p];
    }
  }
  double iou_sum = 0.0;
  int present = 0;
  for (int c = 0; c < num_classes; ++c) {
    if (uni[c] == 0) continue;
    iou_sum += static_cast<double>(inter[c]) / uni[c];
    ++present;
  }
  return present > 0 ? iou_sum / present : 0.0;
}

NormalStats NormalAngles(const Tensor& pred, const Tensor& target) {
  MG_CHECK_EQ(pred.Rank(), 4);
  MG_CHECK(pred.shape() == target.shape(), "normal map shape mismatch");
  MG_CHECK_EQ(pred.Dim(1), 3);
  const int64_t n = pred.Dim(0), h = pred.Dim(2), w = pred.Dim(3);
  const float* pp = pred.data();
  const float* pt = target.data();

  std::vector<double> angles;
  angles.reserve(n * h * w);
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t pix = 0; pix < h * w; ++pix) {
      double dp = 0.0, np = 0.0, nt = 0.0;
      for (int64_t c = 0; c < 3; ++c) {
        const double pv = pp[(b * 3 + c) * h * w + pix];
        const double tv = pt[(b * 3 + c) * h * w + pix];
        dp += pv * tv;
        np += pv * pv;
        nt += tv * tv;
      }
      const double denom = std::sqrt(np) * std::sqrt(nt);
      double cosv = denom > 1e-12 ? dp / denom : 0.0;
      cosv = std::clamp(cosv, -1.0, 1.0);
      angles.push_back(std::acos(cosv) * 180.0 / M_PI);
    }
  }
  NormalStats stats;
  double sum = 0.0;
  int64_t w11 = 0, w22 = 0, w30 = 0;
  for (double a : angles) {
    sum += a;
    if (a < 11.25) ++w11;
    if (a < 22.5) ++w22;
    if (a < 30.0) ++w30;
  }
  const double count = static_cast<double>(angles.size());
  stats.mean_deg = sum / count;
  std::nth_element(angles.begin(), angles.begin() + angles.size() / 2,
                   angles.end());
  stats.median_deg = angles[angles.size() / 2];
  stats.within_11 = w11 / count;
  stats.within_22 = w22 / count;
  stats.within_30 = w30 / count;
  return stats;
}

}  // namespace eval
}  // namespace mocograd
