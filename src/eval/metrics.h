#ifndef MOCOGRAD_EVAL_METRICS_H_
#define MOCOGRAD_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace mocograd {
namespace eval {

/// Area under the ROC curve for scores (logits or probabilities, any
/// monotone scale) against {0,1} labels. Computed exactly via the
/// Mann-Whitney statistic with tie correction. Returns 0.5 when one class
/// is absent.
double Auc(const Tensor& scores, const Tensor& labels);

/// Root mean squared error.
double Rmse(const Tensor& pred, const Tensor& target);

/// Mean absolute error.
double Mae(const Tensor& pred, const Tensor& target);

/// Mean |pred − target| over a dense map — the "Abs Err" of the scene
/// benchmarks (identical to Mae; named for table parity).
double AbsErr(const Tensor& pred, const Tensor& target);

/// Mean |pred − target| / |target| (%), the scene benchmarks' "Rel Err".
double RelErr(const Tensor& pred, const Tensor& target);

/// Top-1 accuracy of [n, c] logits against labels.
double Accuracy(const Tensor& logits, const std::vector<int64_t>& labels);

/// Per-pixel metrics of [n, C, H, W] segmentation logits against labels of
/// length n*H*W.
double PixelAccuracy(const Tensor& logits, const std::vector<int64_t>& labels);

/// Mean intersection-over-union over classes present in labels/preds.
double MeanIou(const Tensor& logits, const std::vector<int64_t>& labels,
               int num_classes);

/// Surface-normal angle statistics between predicted and target normal maps
/// ([n, 3, H, W]); predictions are L2-normalized per pixel first.
struct NormalStats {
  double mean_deg = 0.0;
  double median_deg = 0.0;
  double within_11 = 0.0;  // fraction of pixels within 11.25°
  double within_22 = 0.0;  // within 22.5°
  double within_30 = 0.0;  // within 30°
};
NormalStats NormalAngles(const Tensor& pred, const Tensor& target);

}  // namespace eval
}  // namespace mocograd

#endif  // MOCOGRAD_EVAL_METRICS_H_
