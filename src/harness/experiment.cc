#include "harness/experiment.h"

#include <algorithm>
#include <cmath>

#include "autograd/executor.h"
#include "base/env.h"
#include "eval/metrics.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "mtl/cgc.h"
#include "mtl/cross_stitch.h"
#include "mtl/embedding_hps.h"
#include "mtl/hps.h"
#include "mtl/mmoe.h"
#include "mtl/mtan.h"
#include "mtl/scene_model.h"
#include "mtl/trainer.h"
#include "optim/optimizer.h"
#include "optim/scheduler.h"

namespace mocograd {
namespace harness {

using data::Batch;
using data::TaskKind;

namespace {

// Filters per-task containers down to the selected subset.
template <typename T>
std::vector<T> Select(const std::vector<T>& all, const std::vector<int>& idx) {
  std::vector<T> out;
  out.reserve(idx.size());
  for (int i : idx) {
    MG_CHECK_GE(i, 0);
    MG_CHECK_LT(i, static_cast<int>(all.size()));
    out.push_back(all[i]);
  }
  return out;
}

int64_t InferNumClasses(const Batch& train_batch, const Batch& test_batch) {
  int64_t mx = 0;
  for (int64_t l : train_batch.labels) mx = std::max(mx, l);
  for (int64_t l : test_batch.labels) mx = std::max(mx, l);
  return mx + 1;
}

std::unique_ptr<optim::Optimizer> MakeOptimizer(
    const std::string& name, std::vector<autograd::Variable*> params,
    float lr) {
  if (name == "adam") {
    return std::make_unique<optim::Adam>(std::move(params), lr);
  }
  if (name == "sgd") {
    return std::make_unique<optim::Sgd>(std::move(params), lr,
                                        /*momentum=*/0.9f);
  }
  if (name == "adagrad") {
    return std::make_unique<optim::Adagrad>(std::move(params), lr);
  }
  MG_FATAL("unknown optimizer: ", name);
}

// Evaluates one task's test batch given predictions.
TaskMetrics EvaluateTask(TaskKind kind, const Tensor& pred,
                         const Batch& test) {
  TaskMetrics out;
  switch (kind) {
    case TaskKind::kBinaryLogistic:
      out.push_back({"auc", eval::Auc(pred, test.y)});
      break;
    case TaskKind::kRegression:
      out.push_back({"rmse", eval::Rmse(pred, test.y)});
      break;
    case TaskKind::kRegressionL1:
    case TaskKind::kRegressionMae:
      out.push_back({"mae", eval::Mae(pred, test.y)});
      break;
    case TaskKind::kClassification:
      out.push_back({"acc", eval::Accuracy(pred, test.labels)});
      break;
    case TaskKind::kPixelClassification: {
      const int classes = static_cast<int>(pred.Dim(1));
      out.push_back({"miou", eval::MeanIou(pred, test.labels, classes)});
      out.push_back({"pixacc", eval::PixelAccuracy(pred, test.labels)});
      break;
    }
    case TaskKind::kPixelRegression:
      if (pred.Dim(1) == 3) {
        const eval::NormalStats s = eval::NormalAngles(pred, test.y);
        out.push_back({"normal_mean", s.mean_deg});
        out.push_back({"normal_median", s.median_deg});
        out.push_back({"within_11.25", s.within_11});
        out.push_back({"within_22.5", s.within_22});
        out.push_back({"within_30", s.within_30});
      } else {
        out.push_back({"abs_err", eval::AbsErr(pred, test.y)});
        out.push_back({"rel_err", eval::RelErr(pred, test.y)});
      }
      break;
  }
  return out;
}

// Applies TrainConfig::autograd_executor for the lifetime of one run and
// restores the previous process-wide setting afterwards (the setting is
// global, so a scoped override keeps concurrent configs from leaking into
// each other across sequential runs).
class ScopedExecutorOverride {
 public:
  explicit ScopedExecutorOverride(const std::string& name)
      : previous_(autograd::CurrentBackwardExecutor()) {
    if (name.empty()) return;
    MG_CHECK(name == "seq" || name == "ready",
             "TrainConfig::autograd_executor must be \"\", \"seq\" or "
             "\"ready\", got: ", name);
    active_ = true;
    autograd::SetBackwardExecutor(name == "seq"
                                      ? autograd::BackwardExecutor::kSequential
                                      : autograd::BackwardExecutor::kReadyQueue);
  }
  ~ScopedExecutorOverride() {
    if (active_) autograd::SetBackwardExecutor(previous_);
  }
  ScopedExecutorOverride(const ScopedExecutorOverride&) = delete;
  ScopedExecutorOverride& operator=(const ScopedExecutorOverride&) = delete;

 private:
  autograd::BackwardExecutor previous_;
  bool active_ = false;
};

}  // namespace

std::vector<int64_t> TaskOutputDims(const data::MtlDataset& dataset,
                                    const std::vector<int>& tasks) {
  const auto test = dataset.TestBatches();
  std::vector<int64_t> out;
  out.reserve(tasks.size());
  for (int t : tasks) {
    switch (dataset.task_kind(t)) {
      case TaskKind::kBinaryLogistic:
        out.push_back(1);
        break;
      case TaskKind::kRegression:
      case TaskKind::kRegressionL1:
      case TaskKind::kRegressionMae:
        out.push_back(test[t].y.Rank() >= 2 ? test[t].y.Dim(1) : 1);
        break;
      case TaskKind::kClassification:
      case TaskKind::kPixelClassification: {
        const int64_t known = dataset.ClassCount(t);
        out.push_back(known > 0 ? known
                                : InferNumClasses(test[t], test[t]));
        break;
      }
      case TaskKind::kPixelRegression:
        out.push_back(test[t].y.Dim(1));
        break;
    }
  }
  return out;
}

bool HigherIsBetter(const std::string& metric) {
  return metric == "auc" || metric == "acc" || metric == "miou" ||
         metric == "pixacc" || metric.rfind("within_", 0) == 0;
}

RunResult TrainAndEvaluate(const data::MtlDataset& dataset,
                           const std::vector<int>& tasks,
                           core::GradientAggregator* aggregator,
                           const ModelFactory& factory,
                           const TrainConfig& config) {
  MG_CHECK(!tasks.empty());
  ScopedExecutorOverride executor_override(config.autograd_executor);
  Rng init_rng(config.seed);
  Rng data_rng(config.seed ^ 0x5bd1e995u);

  std::vector<int64_t> out_dims = TaskOutputDims(dataset, tasks);
  std::unique_ptr<mtl::MtlModel> model = factory(out_dims, init_rng);
  MG_CHECK_EQ(model->num_tasks(), static_cast<int>(tasks.size()));

  std::vector<TaskKind> kinds;
  for (int t : tasks) kinds.push_back(dataset.task_kind(t));

  auto optimizer = MakeOptimizer(config.optimizer, model->Parameters(),
                                 config.lr);
  std::unique_ptr<optim::LrScheduler> scheduler;
  if (config.lr_schedule == "cosine") {
    scheduler = std::make_unique<optim::CosineLr>(optimizer.get(),
                                                  config.steps);
  } else if (config.lr_schedule == "invsqrt") {
    scheduler = std::make_unique<optim::InverseSqrtLr>(optimizer.get());
  } else if (config.lr_schedule == "step") {
    scheduler = std::make_unique<optim::StepDecayLr>(
        optimizer.get(), std::max(1, config.steps / 3), 0.5f);
  } else {
    MG_CHECK(config.lr_schedule == "constant", "unknown lr_schedule: ",
             config.lr_schedule);
  }
  mtl::MtlTrainer trainer(model.get(), aggregator, optimizer.get(), kinds,
                          config.seed ^ 0x9e3779b9u);

  // Optional per-step metrics JSONL (config wins over MOCOGRAD_METRICS),
  // sampled every `metrics_every` steps (config wins over
  // MOCOGRAD_METRICS_EVERY).
  const std::string metrics_path =
      !config.metrics_jsonl_path.empty() ? config.metrics_jsonl_path
                                         : GetEnvString("MOCOGRAD_METRICS");
  const int metrics_every =
      config.metrics_every > 0
          ? config.metrics_every
          : GetEnvInt("MOCOGRAD_METRICS_EVERY", 1, 1, 1 << 30);
  std::unique_ptr<obs::StepMetricsSink> metrics_sink;
  if (!metrics_path.empty()) {
    metrics_sink = std::make_unique<obs::StepMetricsSink>(metrics_path);
    if (!metrics_sink->ok()) {
      std::fprintf(stderr, "mocograd: metrics sink disabled: %s\n",
                   metrics_sink->status().ToString().c_str());
      metrics_sink.reset();
    }
  }

  // Optional conflict-telemetry JSONL (config wins over MOCOGRAD_TELEMETRY /
  // MOCOGRAD_TELEMETRY_EVERY). Attached to the trainer; observation-only.
  const std::string telemetry_path =
      !config.telemetry_jsonl_path.empty()
          ? config.telemetry_jsonl_path
          : GetEnvString("MOCOGRAD_TELEMETRY");
  const int telemetry_every =
      config.telemetry_every > 0
          ? config.telemetry_every
          : GetEnvInt("MOCOGRAD_TELEMETRY_EVERY", 1, 1, 1 << 30);
  std::unique_ptr<obs::TelemetrySink> telemetry_sink;
  if (!telemetry_path.empty()) {
    telemetry_sink =
        std::make_unique<obs::TelemetrySink>(telemetry_path, telemetry_every);
    if (!telemetry_sink->ok()) {
      std::fprintf(stderr, "mocograd: telemetry sink disabled: %s\n",
                   telemetry_sink->status().ToString().c_str());
      telemetry_sink.reset();
    }
    trainer.set_telemetry_sink(telemetry_sink.get());
  }

  RunResult result;
  double gcd_sum = 0.0;
  double backward_sum = 0.0;
  for (int step = 0; step < config.steps; ++step) {
    mtl::StepStats stats;
    {
      MG_TRACE_SCOPE("harness.train_step");
      auto all_batches =
          dataset.SampleTrainBatches(config.batch_size, data_rng);
      auto batches = Select(all_batches, tasks);
      stats = trainer.Step(batches);
      if (scheduler) scheduler->Step();
    }
    gcd_sum += stats.conflicts.mean_gcd;
    backward_sum += stats.backward_seconds;
    result.mean_phase.Accumulate(stats.phase);
    if (config.loss_curve_every > 0 &&
        step % config.loss_curve_every == 0) {
      result.loss_curve.push_back(stats.losses);
    }
    if (step + 1 == config.steps) result.final_losses = stats.losses;
    if (metrics_sink && step % metrics_every == 0) {
      std::vector<std::pair<std::string, double>> fields;
      for (size_t t = 0; t < stats.losses.size(); ++t) {
        fields.emplace_back("loss_" + std::to_string(t), stats.losses[t]);
      }
      fields.emplace_back("phase_forward", stats.phase.forward);
      fields.emplace_back("phase_backward", stats.phase.backward);
      fields.emplace_back("phase_flatten", stats.phase.flatten);
      fields.emplace_back("phase_conflict_stats", stats.phase.conflict_stats);
      fields.emplace_back("phase_aggregate", stats.phase.aggregate);
      fields.emplace_back("phase_write_back", stats.phase.write_back);
      fields.emplace_back("phase_clip", stats.phase.clip);
      fields.emplace_back("phase_optimizer", stats.phase.optimizer);
      fields.emplace_back("mean_gcd", stats.conflicts.mean_gcd);
      metrics_sink->WriteStep(step, fields);
    }
  }
  result.mean_gcd = gcd_sum / config.steps;
  result.mean_backward_seconds = backward_sum / config.steps;
  result.mean_phase.Scale(1.0 / config.steps);

  // Evaluate on the test split.
  const auto test_all = dataset.TestBatches();
  const auto test = Select(test_all, tasks);
  std::vector<Tensor> preds = trainer.Predict(test);
  for (size_t i = 0; i < tasks.size(); ++i) {
    result.task_metrics.push_back(EvaluateTask(kinds[i], preds[i], test[i]));
    result.test_risks.push_back(
        mtl::TaskLoss(kinds[i], autograd::Variable(preds[i], false), test[i])
            .value()
            .Item());
  }
  return result;
}

RunResult RunMethod(const data::MtlDataset& dataset,
                    const std::vector<int>& tasks, const std::string& method,
                    const ModelFactory& factory, const TrainConfig& config,
                    const core::AggregatorOptions& agg_options) {
  auto agg = core::MakeAggregator(method, agg_options);
  MG_CHECK(agg.ok(), agg.status().ToString());
  return TrainAndEvaluate(dataset, tasks, agg.value().get(), factory, config);
}

RunResult StlBaseline(const data::MtlDataset& dataset,
                      const std::vector<int>& tasks,
                      const ModelFactory& factory, const TrainConfig& config) {
  RunResult merged;
  double gcd = 0.0, backward = 0.0;
  for (size_t i = 0; i < tasks.size(); ++i) {
    TrainConfig cfg = config;
    cfg.seed = config.seed + 1000 * (i + 1);
    core::EqualWeight ew;
    RunResult r = TrainAndEvaluate(dataset, {tasks[i]}, &ew, factory, cfg);
    merged.task_metrics.push_back(r.task_metrics[0]);
    merged.test_risks.push_back(r.test_risks[0]);
    merged.final_losses.push_back(r.final_losses[0]);
    gcd += r.mean_gcd;
    backward += r.mean_backward_seconds;
    merged.mean_phase.Accumulate(r.mean_phase);
  }
  merged.mean_gcd = gcd / tasks.size();
  merged.mean_backward_seconds = backward / tasks.size();
  merged.mean_phase.Scale(1.0 / tasks.size());
  return merged;
}

double ComputeDeltaM(const std::vector<TaskMetrics>& mtl,
                     const std::vector<TaskMetrics>& stl) {
  MG_CHECK_EQ(mtl.size(), stl.size());
  std::vector<core::MetricComparison> cmp;
  for (size_t t = 0; t < mtl.size(); ++t) {
    MG_CHECK_EQ(mtl[t].size(), stl[t].size());
    for (size_t m = 0; m < mtl[t].size(); ++m) {
      MG_CHECK(mtl[t][m].name == stl[t][m].name, "metric order mismatch");
      cmp.push_back({.mtl_value = mtl[t][m].value,
                     .stl_value = stl[t][m].value,
                     .higher_is_better = HigherIsBetter(mtl[t][m].name)});
    }
  }
  return core::DeltaM(cmp);
}

ModelFactory MlpHpsFactory(int64_t input_dim,
                           std::vector<int64_t> shared_dims,
                           std::vector<int64_t> head_hidden) {
  return [=](const std::vector<int64_t>& out_dims, Rng& rng) {
    mtl::HpsConfig cfg;
    cfg.input_dim = input_dim;
    cfg.shared_dims = shared_dims;
    cfg.head_hidden = head_hidden;
    cfg.task_output_dims = out_dims;
    return std::make_unique<mtl::HpsModel>(cfg, rng);
  };
}

ModelFactory EmbeddingHpsFactory(int64_t dense_dim, int64_t num_user_segments,
                                 int64_t num_item_categories) {
  return [=](const std::vector<int64_t>& out_dims, Rng& rng) {
    mtl::EmbeddingHpsConfig cfg;
    cfg.dense_dim = dense_dim;
    cfg.cat_specs = {{num_user_segments, 8}, {num_item_categories, 8}};
    cfg.shared_dims = {64, 32};
    cfg.task_output_dims = out_dims;
    return std::make_unique<mtl::EmbeddingHpsModel>(cfg, rng);
  };
}

ModelFactory SceneConvFactory(int64_t in_channels, int64_t width,
                              int num_encoder_layers) {
  return [=](const std::vector<int64_t>& out_dims, Rng& rng) {
    mtl::SceneConvConfig cfg;
    cfg.in_channels = in_channels;
    cfg.width = width;
    cfg.num_encoder_layers = num_encoder_layers;
    cfg.task_out_channels = out_dims;
    return std::make_unique<mtl::SceneConvModel>(cfg, rng);
  };
}

ModelFactory ArchitectureFactory(const std::string& architecture,
                                 int64_t input_dim) {
  if (architecture == "hps") return MlpHpsFactory(input_dim);
  if (architecture == "cross_stitch") {
    return [=](const std::vector<int64_t>& out_dims, Rng& rng) {
      mtl::CrossStitchConfig cfg;
      cfg.input_dim = input_dim;
      cfg.tower_dims = {48, 32};
      cfg.task_output_dims = out_dims;
      return std::make_unique<mtl::CrossStitchModel>(cfg, rng);
    };
  }
  if (architecture == "mtan") {
    return [=](const std::vector<int64_t>& out_dims, Rng& rng) {
      mtl::MtanConfig cfg;
      cfg.input_dim = input_dim;
      cfg.shared_dims = {64, 32};
      cfg.task_output_dims = out_dims;
      return std::make_unique<mtl::MtanModel>(cfg, rng);
    };
  }
  if (architecture == "mmoe") {
    return [=](const std::vector<int64_t>& out_dims, Rng& rng) {
      mtl::MmoeConfig cfg;
      cfg.input_dim = input_dim;
      cfg.num_experts = 6;
      cfg.expert_dims = {64, 32};
      cfg.task_output_dims = out_dims;
      return std::make_unique<mtl::MmoeModel>(cfg, rng);
    };
  }
  if (architecture == "cgc") {
    return [=](const std::vector<int64_t>& out_dims, Rng& rng) {
      mtl::CgcConfig cfg;
      cfg.input_dim = input_dim;
      cfg.num_shared_experts = 3;
      cfg.num_task_experts = 1;
      cfg.expert_dims = {64, 32};
      cfg.task_output_dims = out_dims;
      return std::make_unique<mtl::CgcModel>(cfg, rng);
    };
  }
  MG_FATAL("unknown architecture: ", architecture);
}

const std::vector<std::string>& AllArchitectureNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "hps", "cross_stitch", "mtan", "mmoe", "cgc"};
  return *names;
}

}  // namespace harness
}  // namespace mocograd
