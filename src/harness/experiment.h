#ifndef MOCOGRAD_HARNESS_EXPERIMENT_H_
#define MOCOGRAD_HARNESS_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/metrics.h"
#include "core/registry.h"
#include "data/dataset.h"
#include "mtl/model.h"
#include "mtl/trainer.h"

namespace mocograd {
namespace harness {

/// Training hyper-parameters for one run.
struct TrainConfig {
  int steps = 400;
  int batch_size = 64;
  float lr = 1e-2f;
  /// "adam" | "sgd" | "adagrad".
  std::string optimizer = "adam";
  /// "constant" | "cosine" | "invsqrt" | "step" (×0.5 every steps/3).
  std::string lr_schedule = "constant";
  uint64_t seed = 1;
  /// Record per-task training losses every `loss_curve_every` steps
  /// (0 = off); used by the convergence figure.
  int loss_curve_every = 0;
  /// Per-step metrics JSONL destination ("-" = stdout, empty = fall back to
  /// the MOCOGRAD_METRICS env var; off when both are empty). Each training
  /// step appends one record with losses, phase times, and counter deltas —
  /// see docs/OBSERVABILITY.md.
  std::string metrics_jsonl_path;
  /// Sampling stride for the metrics sink: write every `metrics_every`-th
  /// step (0 = fall back to MOCOGRAD_METRICS_EVERY, default 1 = every step).
  int metrics_every = 0;
  /// Conflict-telemetry JSONL destination ("-" = stdout, empty = fall back
  /// to the MOCOGRAD_TELEMETRY env var; off when both are empty). Sampled
  /// steps append one typed record with losses, per-task gradient/momentum
  /// norms, the pairwise cosine matrix, and the aggregator's decision trace
  /// — see docs/OBSERVABILITY.md "Conflict telemetry". Observation-only:
  /// enabling it never changes computed results.
  std::string telemetry_jsonl_path;
  /// Telemetry sampling stride (0 = fall back to MOCOGRAD_TELEMETRY_EVERY,
  /// default 1). Watchdog events are written regardless of the stride.
  int telemetry_every = 0;
  /// Backward-executor override for this run: "" keeps the process-wide
  /// setting (MOCOGRAD_AUTOGRAD_EXEC / SetBackwardExecutor), "seq" forces
  /// the linear tape replay, "ready" forces the ready-queue engine. The
  /// previous setting is restored when the run finishes. Both executors are
  /// bit-identical (docs/AUTOGRAD.md); this knob exists for A/B timing runs
  /// like bench_backward.
  std::string autograd_executor;
};

/// One named metric value.
struct MetricValue {
  std::string name;
  double value = 0.0;
};

/// Per-task evaluation results.
using TaskMetrics = std::vector<MetricValue>;

/// Everything a benchmark needs from one training run.
struct RunResult {
  /// Per-task metrics on the test split.
  std::vector<TaskMetrics> task_metrics;
  /// Final training losses.
  std::vector<float> final_losses;
  /// Mean test loss per task (expected-risk estimate used for TCI).
  std::vector<double> test_risks;
  /// loss_curve[i] = per-task losses at the i-th recorded step.
  std::vector<std::vector<float>> loss_curve;
  /// Mean pairwise GCD of task gradients over training (Fig. 2 signal).
  double mean_gcd = 0.0;
  /// Mean seconds spent per step in backward + aggregation (Fig. 8).
  double mean_backward_seconds = 0.0;
  /// Mean per-phase step breakdown over training (forward, backward, ...,
  /// optimizer, plus aggregator sub-phases).
  mtl::StepPhaseTimes mean_phase;
};

/// Builds a fresh model given the per-task head output widths (the task
/// subset under training) and an Rng for initialization.
using ModelFactory = std::function<std::unique_ptr<mtl::MtlModel>(
    const std::vector<int64_t>& task_output_dims, Rng& rng)>;

/// Head output width for each selected task, inferred from the dataset
/// (1 for logits/scalar regression, #classes for classification, channel
/// count for dense maps).
std::vector<int64_t> TaskOutputDims(const data::MtlDataset& dataset,
                                    const std::vector<int>& tasks);

/// True if a larger value of the named metric is better.
bool HigherIsBetter(const std::string& metric);

/// Trains `aggregator` on the selected task subset of `dataset` and
/// evaluates on the test split.
RunResult TrainAndEvaluate(const data::MtlDataset& dataset,
                           const std::vector<int>& tasks,
                           core::GradientAggregator* aggregator,
                           const ModelFactory& factory,
                           const TrainConfig& config);

/// Convenience: builds the named aggregator and runs TrainAndEvaluate.
RunResult RunMethod(const data::MtlDataset& dataset,
                    const std::vector<int>& tasks, const std::string& method,
                    const ModelFactory& factory, const TrainConfig& config,
                    const core::AggregatorOptions& agg_options = {});

/// Single-task baselines: trains one independent model per selected task
/// (the paper's STL rows) and returns per-task metrics/risks in the same
/// order.
RunResult StlBaseline(const data::MtlDataset& dataset,
                      const std::vector<int>& tasks,
                      const ModelFactory& factory, const TrainConfig& config);

/// Δ_M (Eq. 27) of an MTL run against the STL baseline, pairing metrics by
/// name and position.
double ComputeDeltaM(const std::vector<TaskMetrics>& mtl,
                     const std::vector<TaskMetrics>& stl);

/// --- Standard model factories ----------------------------------------------

/// Plain MLP hard-parameter sharing.
ModelFactory MlpHpsFactory(int64_t input_dim,
                           std::vector<int64_t> shared_dims = {64, 32},
                           std::vector<int64_t> head_hidden = {});

/// Embedding + MLP HPS for the AliExpress workload.
ModelFactory EmbeddingHpsFactory(int64_t dense_dim, int64_t num_user_segments,
                                 int64_t num_item_categories);

/// Convolutional HPS for dense scene prediction.
ModelFactory SceneConvFactory(int64_t in_channels = 3, int64_t width = 16,
                              int num_encoder_layers = 2);

/// MLP architecture by name for the Fig. 7 sweep:
/// "hps" | "cross_stitch" | "mtan" | "mmoe" | "cgc".
ModelFactory ArchitectureFactory(const std::string& architecture,
                                 int64_t input_dim);

/// Architecture names in the Fig. 7 order.
const std::vector<std::string>& AllArchitectureNames();

}  // namespace harness
}  // namespace mocograd

#endif  // MOCOGRAD_HARNESS_EXPERIMENT_H_
