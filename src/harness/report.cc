#include "harness/report.h"

#include <cstdio>
#include <sstream>

namespace mocograd {
namespace harness {

std::string RunsToCsv(const std::vector<LabeledRun>& runs,
                      const RunResult* stl_baseline) {
  std::ostringstream out;
  out << "label,task,metric,value,higher_is_better\n";
  auto emit = [&](const std::string& label, const std::string& task,
                  const std::string& metric, double value, int hib) {
    out << label << "," << task << "," << metric << "," << value << ","
        << hib << "\n";
  };
  for (const LabeledRun& run : runs) {
    for (size_t t = 0; t < run.result.task_metrics.size(); ++t) {
      for (const MetricValue& mv : run.result.task_metrics[t]) {
        emit(run.label, std::to_string(t), mv.name, mv.value,
             HigherIsBetter(mv.name) ? 1 : 0);
      }
    }
    emit(run.label, "-", "mean_gcd", run.result.mean_gcd, 0);
    emit(run.label, "-", "mean_backward_seconds",
         run.result.mean_backward_seconds, 0);
    // Per-phase step attribution (omitted entirely for hand-built results
    // that never timed a step).
    const mtl::StepPhaseTimes& ph = run.result.mean_phase;
    if (ph.Total() > 0.0) {
      emit(run.label, "-", "phase_forward_seconds", ph.forward, 0);
      emit(run.label, "-", "phase_backward_seconds", ph.backward, 0);
      emit(run.label, "-", "phase_flatten_seconds", ph.flatten, 0);
      emit(run.label, "-", "phase_conflict_stats_seconds", ph.conflict_stats,
           0);
      emit(run.label, "-", "phase_aggregate_seconds", ph.aggregate, 0);
      emit(run.label, "-", "phase_write_back_seconds", ph.write_back, 0);
      emit(run.label, "-", "phase_clip_seconds", ph.clip, 0);
      emit(run.label, "-", "phase_optimizer_seconds", ph.optimizer, 0);
      for (const auto& sub : ph.aggregator.entries()) {
        emit(run.label, "-", "phase_agg_" + sub.first + "_seconds",
             sub.second, 0);
      }
    }
    if (stl_baseline != nullptr) {
      emit(run.label, "-", "delta_m",
           ComputeDeltaM(run.result.task_metrics,
                         stl_baseline->task_metrics),
           1);
    }
  }
  return out.str();
}

Status WriteCsvReport(const std::vector<LabeledRun>& runs,
                      const std::string& path,
                      const RunResult* stl_baseline) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open for writing: " + path);
  }
  const std::string csv = RunsToCsv(runs, stl_baseline);
  const bool ok = std::fwrite(csv.data(), 1, csv.size(), f) == csv.size();
  std::fclose(f);
  if (!ok) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

}  // namespace harness
}  // namespace mocograd
