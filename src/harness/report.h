#ifndef MOCOGRAD_HARNESS_REPORT_H_
#define MOCOGRAD_HARNESS_REPORT_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "harness/experiment.h"

namespace mocograd {
namespace harness {

/// One labeled run in a report (method name → its RunResult).
struct LabeledRun {
  std::string label;
  RunResult result;
};

/// Serializes a set of runs to CSV with one row per (run, task, metric):
///   label,task,metric,value,higher_is_better
/// plus per-run summary rows (delta_m when a baseline is given, mean_gcd,
/// backward_seconds, and — when the run timed its steps — one
/// phase_*_seconds row per step phase and aggregator sub-phase). Suited
/// for downstream plotting of the figures.
std::string RunsToCsv(const std::vector<LabeledRun>& runs,
                      const RunResult* stl_baseline = nullptr);

/// Writes RunsToCsv output to a file.
Status WriteCsvReport(const std::vector<LabeledRun>& runs,
                      const std::string& path,
                      const RunResult* stl_baseline = nullptr);

}  // namespace harness
}  // namespace mocograd

#endif  // MOCOGRAD_HARNESS_REPORT_H_
