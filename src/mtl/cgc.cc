#include "mtl/cgc.h"

#include <memory>
#include <string>

#include "autograd/ops.h"

namespace mocograd {
namespace mtl {

namespace ag = autograd;

CgcModel::CgcModel(const CgcConfig& config, Rng& rng) {
  MG_CHECK_GT(config.input_dim, 0);
  MG_CHECK_GT(config.num_shared_experts, 0);
  MG_CHECK_GE(config.num_task_experts, 0);
  MG_CHECK(!config.expert_dims.empty());
  const int k = static_cast<int>(config.task_output_dims.size());
  MG_CHECK_GT(k, 0);

  std::vector<int64_t> expert_dims = {config.input_dim};
  expert_dims.insert(expert_dims.end(), config.expert_dims.begin(),
                     config.expert_dims.end());
  for (int e = 0; e < config.num_shared_experts; ++e) {
    shared_experts_.push_back(RegisterModule(
        "shared_expert" + std::to_string(e),
        std::make_unique<nn::Mlp>(expert_dims, rng)));
  }
  task_experts_.resize(k);
  const int gate_width = config.num_shared_experts + config.num_task_experts;
  const int64_t feat = config.expert_dims.back();
  for (int t = 0; t < k; ++t) {
    for (int e = 0; e < config.num_task_experts; ++e) {
      task_experts_[t].push_back(RegisterModule(
          "task" + std::to_string(t) + "_expert" + std::to_string(e),
          std::make_unique<nn::Mlp>(expert_dims, rng)));
    }
    gates_.push_back(RegisterModule(
        "gate" + std::to_string(t),
        std::make_unique<nn::Linear>(config.input_dim, gate_width, rng)));
    std::vector<int64_t> head_dims = {feat};
    head_dims.insert(head_dims.end(), config.head_hidden.begin(),
                     config.head_hidden.end());
    head_dims.push_back(config.task_output_dims[t]);
    heads_.push_back(RegisterModule("head" + std::to_string(t),
                                    std::make_unique<nn::Mlp>(head_dims, rng)));
  }
}

std::vector<Variable> CgcModel::Forward(const std::vector<Variable>& inputs) {
  const int k = num_tasks();
  MG_CHECK_EQ(static_cast<int>(inputs.size()), k);
  std::vector<Variable> outputs;
  outputs.reserve(k);
  for (int t = 0; t < k; ++t) {
    const Variable& x = inputs[t];
    Variable gate = ag::SoftmaxRows(gates_[t]->Forward(x));
    Variable fused;
    int64_t slot = 0;
    auto mix_in = [&](nn::Mlp* expert) {
      Variable z = ag::Relu(expert->Forward(x));
      Variable w = ag::SliceCols(gate, slot++, 1);
      Variable contrib = ag::Mul(z, w);
      fused = fused.defined() ? ag::Add(fused, contrib) : contrib;
    };
    for (nn::Mlp* e : shared_experts_) mix_in(e);
    for (nn::Mlp* e : task_experts_[t]) mix_in(e);
    outputs.push_back(heads_[t]->Forward(fused));
  }
  return outputs;
}

std::vector<Variable*> CgcModel::SharedParameters() {
  std::vector<Variable*> out;
  for (nn::Mlp* e : shared_experts_) {
    auto p = e->Parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

std::vector<Variable*> CgcModel::TaskParameters(int k) {
  MG_CHECK_GE(k, 0);
  MG_CHECK_LT(k, num_tasks());
  std::vector<Variable*> out;
  for (nn::Mlp* e : task_experts_[k]) {
    auto p = e->Parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  auto g = gates_[k]->Parameters();
  out.insert(out.end(), g.begin(), g.end());
  auto h = heads_[k]->Parameters();
  out.insert(out.end(), h.begin(), h.end());
  return out;
}

}  // namespace mtl
}  // namespace mocograd
