#ifndef MOCOGRAD_MTL_CGC_H_
#define MOCOGRAD_MTL_CGC_H_

#include <vector>

#include "base/rng.h"
#include "mtl/model.h"
#include "nn/linear.h"
#include "nn/mlp.h"

namespace mocograd {
namespace mtl {

/// Configuration of a CGC model.
struct CgcConfig {
  int64_t input_dim = 0;
  /// Number of experts shared by all tasks.
  int num_shared_experts = 2;
  /// Number of experts private to each task.
  int num_task_experts = 1;
  /// Widths of every expert MLP (ending in the feature width).
  std::vector<int64_t> expert_dims = {32};
  /// Hidden widths of each task head.
  std::vector<int64_t> head_hidden;
  /// Output width per task.
  std::vector<int64_t> task_output_dims;
};

/// Customized Gate Control (Tang et al., RecSys 2020), the single-level
/// core of PLE: each task gates over the shared experts plus its own
/// private experts. Shared experts are the shared parameters; private
/// experts, gates and heads belong to their task.
class CgcModel : public MtlModel {
 public:
  CgcModel(const CgcConfig& config, Rng& rng);

  int num_tasks() const override { return static_cast<int>(heads_.size()); }
  std::vector<Variable> Forward(const std::vector<Variable>& inputs) override;
  std::vector<Variable*> SharedParameters() override;
  std::vector<Variable*> TaskParameters(int k) override;

 private:
  std::vector<nn::Mlp*> shared_experts_;
  /// task_experts_[k]: private experts of task k.
  std::vector<std::vector<nn::Mlp*>> task_experts_;
  std::vector<nn::Linear*> gates_;
  std::vector<nn::Mlp*> heads_;
};

}  // namespace mtl
}  // namespace mocograd

#endif  // MOCOGRAD_MTL_CGC_H_
