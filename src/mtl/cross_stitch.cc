#include "mtl/cross_stitch.h"

#include <memory>
#include <string>

#include "autograd/ops.h"

namespace mocograd {
namespace mtl {

namespace ag = autograd;

CrossStitchModel::CrossStitchModel(const CrossStitchConfig& config, Rng& rng) {
  MG_CHECK_GT(config.input_dim, 0);
  MG_CHECK(!config.tower_dims.empty());
  const int k = static_cast<int>(config.task_output_dims.size());
  MG_CHECK_GT(k, 0);
  num_layers_ = static_cast<int>(config.tower_dims.size());

  towers_.resize(k);
  for (int t = 0; t < k; ++t) {
    int64_t prev = config.input_dim;
    for (int l = 0; l < num_layers_; ++l) {
      towers_[t].push_back(RegisterModule(
          "tower" + std::to_string(t) + "_l" + std::to_string(l),
          std::make_unique<nn::Linear>(prev, config.tower_dims[l], rng)));
      prev = config.tower_dims[l];
    }
  }

  // Stitch units start near-diagonal so early training behaves like
  // independent towers.
  for (int l = 0; l < num_layers_; ++l) {
    Tensor init(Shape{k, k});
    const float off = k > 1
                          ? (1.0f - config.stitch_self_init) / (k - 1)
                          : 0.0f;
    for (int i = 0; i < k; ++i) {
      for (int j = 0; j < k; ++j) {
        init.At(i, j) = i == j ? config.stitch_self_init : off;
      }
    }
    stitches_.push_back(
        RegisterParameter("stitch" + std::to_string(l), init));
  }

  const int64_t feat = config.tower_dims.back();
  for (int t = 0; t < k; ++t) {
    std::vector<int64_t> head_dims = {feat};
    head_dims.insert(head_dims.end(), config.head_hidden.begin(),
                     config.head_hidden.end());
    head_dims.push_back(config.task_output_dims[t]);
    heads_.push_back(RegisterModule("head" + std::to_string(t),
                                    std::make_unique<nn::Mlp>(head_dims, rng)));
  }
}

std::vector<Variable> CrossStitchModel::Forward(
    const std::vector<Variable>& inputs) {
  const int k = num_tasks();
  MG_CHECK_EQ(static_cast<int>(inputs.size()), k);
  std::vector<Variable> h(inputs.begin(), inputs.end());
  for (int l = 0; l < num_layers_; ++l) {
    // Per-task layer + nonlinearity.
    std::vector<Variable> z(k);
    for (int t = 0; t < k; ++t) {
      z[t] = ag::Relu(towers_[t][l]->Forward(h[t]));
    }
    // Stitch: h_t' = Σ_m α[t,m] z_m with α the K×K stitch matrix. The
    // scalar α[t,m] is sliced out as a [1,1] Variable and broadcast.
    Variable alpha_flat = ag::Reshape(*stitches_[l], {1, k * k});
    for (int t = 0; t < k; ++t) {
      Variable mixed;
      for (int m = 0; m < k; ++m) {
        Variable a = ag::SliceCols(alpha_flat, t * k + m, 1);  // [1,1]
        Variable contrib = ag::Mul(z[m], a);
        mixed = mixed.defined() ? ag::Add(mixed, contrib) : contrib;
      }
      h[t] = mixed;
    }
  }
  std::vector<Variable> outputs;
  outputs.reserve(k);
  for (int t = 0; t < k; ++t) outputs.push_back(heads_[t]->Forward(h[t]));
  return outputs;
}

std::vector<Variable*> CrossStitchModel::SharedParameters() {
  std::vector<Variable*> out;
  for (auto& tower : towers_) {
    for (nn::Linear* l : tower) {
      auto p = l->Parameters();
      out.insert(out.end(), p.begin(), p.end());
    }
  }
  out.insert(out.end(), stitches_.begin(), stitches_.end());
  return out;
}

std::vector<Variable*> CrossStitchModel::TaskParameters(int k) {
  MG_CHECK_GE(k, 0);
  MG_CHECK_LT(k, num_tasks());
  return heads_[k]->Parameters();
}

}  // namespace mtl
}  // namespace mocograd
