#ifndef MOCOGRAD_MTL_CROSS_STITCH_H_
#define MOCOGRAD_MTL_CROSS_STITCH_H_

#include <vector>

#include "base/rng.h"
#include "mtl/model.h"
#include "nn/linear.h"
#include "nn/mlp.h"

namespace mocograd {
namespace mtl {

/// Configuration of a Cross-stitch model.
struct CrossStitchConfig {
  int64_t input_dim = 0;
  /// Width of each tower layer; the towers have dims.size() layers.
  std::vector<int64_t> tower_dims = {32, 32};
  /// Hidden widths of each task head.
  std::vector<int64_t> head_hidden;
  /// Output width per task.
  std::vector<int64_t> task_output_dims;
  /// Initial self-weight of the stitch units (rest split evenly).
  float stitch_self_init = 0.9f;
};

/// Cross-stitch networks (Misra et al., CVPR 2016): one tower per task,
/// with learnable K×K "stitch" units after every layer linearly recombining
/// the task activations. Towers and stitch units are coupled across tasks,
/// so they all count as shared parameters; only the heads are task-specific.
class CrossStitchModel : public MtlModel {
 public:
  CrossStitchModel(const CrossStitchConfig& config, Rng& rng);

  int num_tasks() const override { return static_cast<int>(heads_.size()); }
  std::vector<Variable> Forward(const std::vector<Variable>& inputs) override;
  std::vector<Variable*> SharedParameters() override;
  std::vector<Variable*> TaskParameters(int k) override;

 private:
  int num_layers_;
  /// towers_[k][l]: layer l of task k's tower.
  std::vector<std::vector<nn::Linear*>> towers_;
  /// stitches_[l]: K×K stitch matrix applied after layer l.
  std::vector<Variable*> stitches_;
  std::vector<nn::Mlp*> heads_;
};

}  // namespace mtl
}  // namespace mocograd

#endif  // MOCOGRAD_MTL_CROSS_STITCH_H_
