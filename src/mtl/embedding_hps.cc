#include "mtl/embedding_hps.h"

#include <cmath>
#include <memory>
#include <string>

#include "autograd/ops.h"

namespace mocograd {
namespace mtl {

namespace ag = autograd;

EmbeddingHpsModel::EmbeddingHpsModel(const EmbeddingHpsConfig& config,
                                     Rng& rng)
    : config_(config) {
  MG_CHECK_GT(config.dense_dim, 0);
  MG_CHECK(!config.task_output_dims.empty());

  int64_t feat_in = config.dense_dim;
  for (size_t c = 0; c < config.cat_specs.size(); ++c) {
    const auto& spec = config.cat_specs[c];
    MG_CHECK_GT(spec.cardinality, 0);
    embeddings_.push_back(RegisterModule(
        "emb" + std::to_string(c),
        std::make_unique<nn::Embedding>(spec.cardinality, spec.embedding_dim,
                                        rng)));
    feat_in += spec.embedding_dim;
  }

  std::vector<int64_t> trunk_dims = {feat_in};
  trunk_dims.insert(trunk_dims.end(), config.shared_dims.begin(),
                    config.shared_dims.end());
  trunk_ = RegisterModule("trunk", std::make_unique<nn::Mlp>(trunk_dims, rng));

  const int64_t feat = config.shared_dims.back();
  for (size_t k = 0; k < config.task_output_dims.size(); ++k) {
    std::vector<int64_t> head_dims = {feat};
    head_dims.insert(head_dims.end(), config.head_hidden.begin(),
                     config.head_hidden.end());
    head_dims.push_back(config.task_output_dims[k]);
    heads_.push_back(RegisterModule("head" + std::to_string(k),
                                    std::make_unique<nn::Mlp>(head_dims, rng)));
  }
}

std::vector<Variable> EmbeddingHpsModel::Forward(
    const std::vector<Variable>& inputs) {
  MG_CHECK_EQ(static_cast<int>(inputs.size()), num_tasks());
  std::vector<Variable> outputs;
  outputs.reserve(heads_.size());
  for (size_t k = 0; k < heads_.size(); ++k) {
    const Variable& x = inputs[k];
    const int64_t expected =
        config_.dense_dim + static_cast<int64_t>(config_.cat_specs.size());
    MG_CHECK_EQ(x.shape().Dim(1), expected, "EmbeddingHps input width");

    std::vector<Variable> parts;
    parts.push_back(ag::SliceCols(x, 0, config_.dense_dim));
    // Categorical ids ride in the input as float-encoded columns; they are
    // indices, so no gradient flows through them.
    const Tensor& xv = x.value();
    const int64_t n = xv.Dim(0);
    const int64_t w = xv.Dim(1);
    for (size_t c = 0; c < config_.cat_specs.size(); ++c) {
      std::vector<int64_t> ids(n);
      for (int64_t i = 0; i < n; ++i) {
        const float raw = xv.data()[i * w + config_.dense_dim + c];
        const int64_t id = static_cast<int64_t>(std::lround(raw));
        MG_CHECK_GE(id, 0, "categorical id must be non-negative");
        MG_CHECK_LT(id, config_.cat_specs[c].cardinality,
                    "categorical id out of range");
        ids[i] = id;
      }
      parts.push_back(embeddings_[c]->Forward(ids));
    }
    Variable z = ag::Relu(trunk_->Forward(ag::Concat(parts, 1)));
    outputs.push_back(heads_[k]->Forward(z));
  }
  return outputs;
}

std::vector<Variable*> EmbeddingHpsModel::SharedParameters() {
  std::vector<Variable*> out;
  for (nn::Embedding* e : embeddings_) {
    auto p = e->Parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  auto t = trunk_->Parameters();
  out.insert(out.end(), t.begin(), t.end());
  return out;
}

std::vector<Variable*> EmbeddingHpsModel::TaskParameters(int k) {
  MG_CHECK_GE(k, 0);
  MG_CHECK_LT(k, num_tasks());
  return heads_[k]->Parameters();
}

}  // namespace mtl
}  // namespace mocograd
