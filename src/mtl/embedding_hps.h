#ifndef MOCOGRAD_MTL_EMBEDDING_HPS_H_
#define MOCOGRAD_MTL_EMBEDDING_HPS_H_

#include <vector>

#include "base/rng.h"
#include "mtl/model.h"
#include "nn/embedding.h"
#include "nn/mlp.h"

namespace mocograd {
namespace mtl {

/// Configuration of the embedding + MLP recommendation model.
struct EmbeddingHpsConfig {
  /// One categorical feature column.
  struct CatSpec {
    int64_t cardinality = 0;
    int64_t embedding_dim = 8;
  };

  /// Width of the dense (real-valued) feature prefix of the input.
  int64_t dense_dim = 0;
  /// Categorical columns; the input carries their ids as float-encoded
  /// values in the columns following the dense prefix.
  std::vector<CatSpec> cat_specs;
  /// Trunk widths after the [dense ‖ embeddings] concatenation.
  std::vector<int64_t> shared_dims = {64, 32};
  /// Hidden widths of each task head.
  std::vector<int64_t> head_hidden;
  /// Output width per task.
  std::vector<int64_t> task_output_dims;
};

/// Embedding-layer + MLP hard-parameter-sharing model, the CTR/CTCVR
/// architecture used on the AliExpress workload (paper §V-D: "an embedding
/// layer followed by two-layer MLP as task-shared layers"). Embedding
/// tables and the trunk are shared; each task owns its head.
class EmbeddingHpsModel : public MtlModel {
 public:
  EmbeddingHpsModel(const EmbeddingHpsConfig& config, Rng& rng);

  int num_tasks() const override { return static_cast<int>(heads_.size()); }
  std::vector<Variable> Forward(const std::vector<Variable>& inputs) override;
  std::vector<Variable*> SharedParameters() override;
  std::vector<Variable*> TaskParameters(int k) override;

 private:
  EmbeddingHpsConfig config_;
  std::vector<nn::Embedding*> embeddings_;
  nn::Mlp* trunk_;
  std::vector<nn::Mlp*> heads_;
};

}  // namespace mtl
}  // namespace mocograd

#endif  // MOCOGRAD_MTL_EMBEDDING_HPS_H_
