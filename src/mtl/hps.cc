#include "mtl/hps.h"

#include <memory>
#include <string>

#include "autograd/ops.h"

namespace mocograd {
namespace mtl {

HpsModel::HpsModel(const HpsConfig& config, Rng& rng) {
  MG_CHECK_GT(config.input_dim, 0);
  MG_CHECK(!config.shared_dims.empty(), "HPS needs a trunk");
  MG_CHECK(!config.task_output_dims.empty(), "HPS needs at least one task");

  std::vector<int64_t> trunk_dims = {config.input_dim};
  trunk_dims.insert(trunk_dims.end(), config.shared_dims.begin(),
                    config.shared_dims.end());
  trunk_ = RegisterModule("trunk", std::make_unique<nn::Mlp>(trunk_dims, rng));

  const int64_t feat = config.shared_dims.back();
  for (size_t k = 0; k < config.task_output_dims.size(); ++k) {
    std::vector<int64_t> head_dims = {feat};
    head_dims.insert(head_dims.end(), config.head_hidden.begin(),
                     config.head_hidden.end());
    head_dims.push_back(config.task_output_dims[k]);
    heads_.push_back(RegisterModule("head" + std::to_string(k),
                                    std::make_unique<nn::Mlp>(head_dims, rng)));
  }
}

std::vector<Variable> HpsModel::Forward(const std::vector<Variable>& inputs) {
  MG_CHECK_EQ(static_cast<int>(inputs.size()), num_tasks());
  std::vector<Variable> outputs;
  outputs.reserve(heads_.size());
  // Multi-input MTL: each task may carry its own batch, so the trunk runs
  // per task; single-input callers pass the same Variable and pay one extra
  // forward per task (matching how LibMTL handles the multi-input setting).
  for (size_t k = 0; k < heads_.size(); ++k) {
    Variable z = autograd::Relu(trunk_->Forward(inputs[k]));
    outputs.push_back(heads_[k]->Forward(z));
  }
  return outputs;
}

std::vector<Variable*> HpsModel::SharedParameters() {
  return trunk_->Parameters();
}

std::vector<Variable*> HpsModel::TaskParameters(int k) {
  MG_CHECK_GE(k, 0);
  MG_CHECK_LT(k, num_tasks());
  return heads_[k]->Parameters();
}

}  // namespace mtl
}  // namespace mocograd
