#ifndef MOCOGRAD_MTL_HPS_H_
#define MOCOGRAD_MTL_HPS_H_

#include <vector>

#include "base/rng.h"
#include "mtl/model.h"
#include "nn/mlp.h"

namespace mocograd {
namespace mtl {

/// Configuration of a hard-parameter-sharing MLP model.
struct HpsConfig {
  /// Input feature width.
  int64_t input_dim = 0;
  /// Trunk widths, ending in the shared representation width, e.g. {64, 32}.
  std::vector<int64_t> shared_dims;
  /// Hidden widths of each task head (may be empty for a linear head).
  std::vector<int64_t> head_hidden;
  /// Output width per task (1 for scalar regression / binary logit,
  /// #classes for classification).
  std::vector<int64_t> task_output_dims;
};

/// Hard-parameter sharing (HPS): one shared MLP trunk, one light MLP head
/// per task — the architecture used for the paper's main tables.
class HpsModel : public MtlModel {
 public:
  HpsModel(const HpsConfig& config, Rng& rng);

  int num_tasks() const override { return static_cast<int>(heads_.size()); }
  std::vector<Variable> Forward(const std::vector<Variable>& inputs) override;
  std::vector<Variable*> SharedParameters() override;
  std::vector<Variable*> TaskParameters(int k) override;

 private:
  nn::Mlp* trunk_;
  std::vector<nn::Mlp*> heads_;
};

}  // namespace mtl
}  // namespace mocograd

#endif  // MOCOGRAD_MTL_HPS_H_
