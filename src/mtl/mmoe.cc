#include "mtl/mmoe.h"

#include <memory>
#include <string>

#include "autograd/ops.h"

namespace mocograd {
namespace mtl {

namespace ag = autograd;

MmoeModel::MmoeModel(const MmoeConfig& config, Rng& rng) {
  MG_CHECK_GT(config.input_dim, 0);
  MG_CHECK_GT(config.num_experts, 0);
  MG_CHECK(!config.expert_dims.empty());
  MG_CHECK(!config.task_output_dims.empty());

  std::vector<int64_t> expert_dims = {config.input_dim};
  expert_dims.insert(expert_dims.end(), config.expert_dims.begin(),
                     config.expert_dims.end());
  for (int e = 0; e < config.num_experts; ++e) {
    experts_.push_back(RegisterModule(
        "expert" + std::to_string(e),
        std::make_unique<nn::Mlp>(expert_dims, rng)));
  }
  const int64_t feat = config.expert_dims.back();
  for (size_t k = 0; k < config.task_output_dims.size(); ++k) {
    gates_.push_back(RegisterModule(
        "gate" + std::to_string(k),
        std::make_unique<nn::Linear>(config.input_dim, config.num_experts,
                                     rng)));
    std::vector<int64_t> head_dims = {feat};
    head_dims.insert(head_dims.end(), config.head_hidden.begin(),
                     config.head_hidden.end());
    head_dims.push_back(config.task_output_dims[k]);
    heads_.push_back(RegisterModule("head" + std::to_string(k),
                                    std::make_unique<nn::Mlp>(head_dims, rng)));
  }
}

std::vector<Variable> MmoeModel::Forward(
    const std::vector<Variable>& inputs) {
  MG_CHECK_EQ(static_cast<int>(inputs.size()), num_tasks());
  std::vector<Variable> outputs;
  outputs.reserve(heads_.size());
  for (size_t k = 0; k < heads_.size(); ++k) {
    const Variable& x = inputs[k];
    // Gate weights over the experts for this task.
    Variable gate = ag::SoftmaxRows(gates_[k]->Forward(x));  // [n, E]
    Variable fused;
    for (size_t e = 0; e < experts_.size(); ++e) {
      Variable ze = ag::Relu(experts_[e]->Forward(x));  // [n, feat]
      Variable we = ag::SliceCols(gate, static_cast<int64_t>(e), 1);  // [n,1]
      Variable contrib = ag::Mul(ze, we);
      fused = fused.defined() ? ag::Add(fused, contrib) : contrib;
    }
    outputs.push_back(heads_[k]->Forward(fused));
  }
  return outputs;
}

std::vector<Variable*> MmoeModel::SharedParameters() {
  std::vector<Variable*> out;
  for (nn::Mlp* e : experts_) {
    auto p = e->Parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

std::vector<Variable*> MmoeModel::TaskParameters(int k) {
  MG_CHECK_GE(k, 0);
  MG_CHECK_LT(k, num_tasks());
  std::vector<Variable*> out = gates_[k]->Parameters();
  auto h = heads_[k]->Parameters();
  out.insert(out.end(), h.begin(), h.end());
  return out;
}

}  // namespace mtl
}  // namespace mocograd
