#ifndef MOCOGRAD_MTL_MMOE_H_
#define MOCOGRAD_MTL_MMOE_H_

#include <vector>

#include "base/rng.h"
#include "mtl/model.h"
#include "nn/linear.h"
#include "nn/mlp.h"

namespace mocograd {
namespace mtl {

/// Configuration of an MMoE model.
struct MmoeConfig {
  int64_t input_dim = 0;
  /// Number of expert networks.
  int num_experts = 4;
  /// Widths of each expert MLP (ending in the shared feature width).
  std::vector<int64_t> expert_dims = {32};
  /// Hidden widths of each task head.
  std::vector<int64_t> head_hidden;
  /// Output width per task.
  std::vector<int64_t> task_output_dims;
};

/// Multi-gate Mixture-of-Experts (Ma et al., KDD 2018): E shared experts
/// fused per task by a learned softmax gate over the input. Experts are the
/// shared parameters; each task owns its gate and head.
class MmoeModel : public MtlModel {
 public:
  MmoeModel(const MmoeConfig& config, Rng& rng);

  int num_tasks() const override { return static_cast<int>(heads_.size()); }
  std::vector<Variable> Forward(const std::vector<Variable>& inputs) override;
  std::vector<Variable*> SharedParameters() override;
  std::vector<Variable*> TaskParameters(int k) override;

 private:
  std::vector<nn::Mlp*> experts_;
  std::vector<nn::Linear*> gates_;
  std::vector<nn::Mlp*> heads_;
};

}  // namespace mtl
}  // namespace mocograd

#endif  // MOCOGRAD_MTL_MMOE_H_
