#ifndef MOCOGRAD_MTL_MODEL_H_
#define MOCOGRAD_MTL_MODEL_H_

#include <vector>

#include "nn/module.h"

namespace mocograd {
namespace mtl {

using autograd::Variable;

/// A multi-task model: shared representation plus per-task branches.
///
/// Forward takes one input Variable per task (multi-input MTL); single-input
/// datasets pass the same Variable K times. The shared/task parameter split
/// is what the gradient-surgery trainer operates on: per-task gradients are
/// taken w.r.t. SharedParameters() and combined by a GradientAggregator,
/// while TaskParameters(k) only ever receive task k's own gradient.
class MtlModel : public nn::Module {
 public:
  virtual int num_tasks() const = 0;

  /// One prediction per task. `inputs.size()` must equal num_tasks().
  virtual std::vector<Variable> Forward(
      const std::vector<Variable>& inputs) = 0;

  /// Parameters updated by all tasks (trunk, experts, stitch units, ...).
  virtual std::vector<Variable*> SharedParameters() = 0;

  /// Parameters owned by task `k` (its head, gate, attention module, ...).
  virtual std::vector<Variable*> TaskParameters(int k) = 0;

  /// Total size of the flattened shared-parameter vector.
  int64_t SharedDim() {
    int64_t n = 0;
    for (Variable* p : SharedParameters()) n += p->NumElements();
    return n;
  }
};

}  // namespace mtl
}  // namespace mocograd

#endif  // MOCOGRAD_MTL_MODEL_H_
