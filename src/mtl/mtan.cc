#include "mtl/mtan.h"

#include <memory>
#include <string>

#include "autograd/ops.h"

namespace mocograd {
namespace mtl {

namespace ag = autograd;

MtanModel::MtanModel(const MtanConfig& config, Rng& rng) {
  MG_CHECK_GT(config.input_dim, 0);
  MG_CHECK(!config.shared_dims.empty());
  MG_CHECK(!config.task_output_dims.empty());

  std::vector<int64_t> trunk_dims = {config.input_dim};
  trunk_dims.insert(trunk_dims.end(), config.shared_dims.begin(),
                    config.shared_dims.end());
  trunk_ = RegisterModule("trunk", std::make_unique<nn::Mlp>(trunk_dims, rng));

  const int64_t feat = config.shared_dims.back();
  for (size_t k = 0; k < config.task_output_dims.size(); ++k) {
    attentions_.push_back(
        RegisterModule("attn" + std::to_string(k),
                       std::make_unique<nn::Linear>(feat, feat, rng)));
    std::vector<int64_t> head_dims = {feat};
    head_dims.insert(head_dims.end(), config.head_hidden.begin(),
                     config.head_hidden.end());
    head_dims.push_back(config.task_output_dims[k]);
    heads_.push_back(RegisterModule("head" + std::to_string(k),
                                    std::make_unique<nn::Mlp>(head_dims, rng)));
  }
}

std::vector<Variable> MtanModel::Forward(const std::vector<Variable>& inputs) {
  MG_CHECK_EQ(static_cast<int>(inputs.size()), num_tasks());
  std::vector<Variable> outputs;
  outputs.reserve(heads_.size());
  for (size_t k = 0; k < heads_.size(); ++k) {
    Variable z = ag::Relu(trunk_->Forward(inputs[k]));
    Variable mask = ag::Sigmoid(attentions_[k]->Forward(z));
    outputs.push_back(heads_[k]->Forward(ag::Mul(mask, z)));
  }
  return outputs;
}

std::vector<Variable*> MtanModel::SharedParameters() {
  return trunk_->Parameters();
}

std::vector<Variable*> MtanModel::TaskParameters(int k) {
  MG_CHECK_GE(k, 0);
  MG_CHECK_LT(k, num_tasks());
  std::vector<Variable*> out = attentions_[k]->Parameters();
  auto h = heads_[k]->Parameters();
  out.insert(out.end(), h.begin(), h.end());
  return out;
}

}  // namespace mtl
}  // namespace mocograd
