#ifndef MOCOGRAD_MTL_MTAN_H_
#define MOCOGRAD_MTL_MTAN_H_

#include <vector>

#include "base/rng.h"
#include "mtl/model.h"
#include "nn/linear.h"
#include "nn/mlp.h"

namespace mocograd {
namespace mtl {

/// Configuration of an MTAN-style model.
struct MtanConfig {
  int64_t input_dim = 0;
  /// Shared trunk widths (ending in the feature width).
  std::vector<int64_t> shared_dims = {64, 32};
  /// Hidden widths of each task head.
  std::vector<int64_t> head_hidden;
  /// Output width per task.
  std::vector<int64_t> task_output_dims;
};

/// Multi-Task Attention Network (Liu et al., CVPR 2019), MLP variant: a
/// shared trunk plus one sigmoid attention module per task that selects the
/// task-relevant slice of the shared features:
///   h_k = σ(W_k z) ⊙ z.
/// The trunk is shared; attention modules and heads are task-specific.
class MtanModel : public MtlModel {
 public:
  MtanModel(const MtanConfig& config, Rng& rng);

  int num_tasks() const override { return static_cast<int>(heads_.size()); }
  std::vector<Variable> Forward(const std::vector<Variable>& inputs) override;
  std::vector<Variable*> SharedParameters() override;
  std::vector<Variable*> TaskParameters(int k) override;

 private:
  nn::Mlp* trunk_;
  std::vector<nn::Linear*> attentions_;
  std::vector<nn::Mlp*> heads_;
};

}  // namespace mtl
}  // namespace mocograd

#endif  // MOCOGRAD_MTL_MTAN_H_
