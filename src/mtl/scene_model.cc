#include "mtl/scene_model.h"

#include <memory>
#include <string>

#include "autograd/ops.h"

namespace mocograd {
namespace mtl {

namespace ag = autograd;

SceneConvModel::SceneConvModel(const SceneConvConfig& config, Rng& rng) {
  MG_CHECK_GT(config.in_channels, 0);
  MG_CHECK_GT(config.num_encoder_layers, 0);
  MG_CHECK(!config.task_out_channels.empty());

  int64_t prev = config.in_channels;
  for (int l = 0; l < config.num_encoder_layers; ++l) {
    encoder_.push_back(RegisterModule(
        "enc" + std::to_string(l),
        std::make_unique<nn::Conv2d>(prev, config.width, /*kernel=*/3,
                                     /*stride=*/1, /*padding=*/1, rng)));
    prev = config.width;
  }
  for (size_t k = 0; k < config.task_out_channels.size(); ++k) {
    heads_.push_back(RegisterModule(
        "head" + std::to_string(k),
        std::make_unique<nn::Conv2d>(config.width,
                                     config.task_out_channels[k],
                                     /*kernel=*/3, /*stride=*/1,
                                     /*padding=*/1, rng)));
  }
}

std::vector<Variable> SceneConvModel::Forward(
    const std::vector<Variable>& inputs) {
  MG_CHECK_EQ(static_cast<int>(inputs.size()), num_tasks());
  // Scene understanding is single-input MTL: all tasks see the same image
  // batch, so the encoder runs once on inputs[0].
  Variable z = inputs[0];
  for (nn::Conv2d* conv : encoder_) {
    z = ag::Relu(conv->Forward(z));
  }
  std::vector<Variable> outputs;
  outputs.reserve(heads_.size());
  for (nn::Conv2d* head : heads_) outputs.push_back(head->Forward(z));
  return outputs;
}

std::vector<Variable*> SceneConvModel::SharedParameters() {
  std::vector<Variable*> out;
  for (nn::Conv2d* c : encoder_) {
    auto p = c->Parameters();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

std::vector<Variable*> SceneConvModel::TaskParameters(int k) {
  MG_CHECK_GE(k, 0);
  MG_CHECK_LT(k, num_tasks());
  return heads_[k]->Parameters();
}

}  // namespace mtl
}  // namespace mocograd
