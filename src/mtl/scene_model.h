#ifndef MOCOGRAD_MTL_SCENE_MODEL_H_
#define MOCOGRAD_MTL_SCENE_MODEL_H_

#include <vector>

#include "base/rng.h"
#include "mtl/model.h"
#include "nn/conv.h"

namespace mocograd {
namespace mtl {

/// Configuration of the dense-prediction (scene understanding) model.
struct SceneConvConfig {
  int64_t in_channels = 3;
  /// Encoder channel width.
  int64_t width = 16;
  /// Number of 3×3 stride-1 encoder convolutions.
  int num_encoder_layers = 2;
  /// Output channels per task (e.g. {13, 1, 3} for NYUv2's segmentation /
  /// depth / surface normals).
  std::vector<int64_t> task_out_channels;
};

/// Convolutional hard-parameter-sharing model for dense prediction: a
/// shared fully-convolutional encoder (spatial dims preserved) and one
/// 3×3 conv head per task producing a per-pixel map — the laptop-scale
/// stand-in for the paper's ResNet-50 + ASPP backbone on NYUv2/CityScapes.
class SceneConvModel : public MtlModel {
 public:
  SceneConvModel(const SceneConvConfig& config, Rng& rng);

  int num_tasks() const override { return static_cast<int>(heads_.size()); }
  std::vector<Variable> Forward(const std::vector<Variable>& inputs) override;
  std::vector<Variable*> SharedParameters() override;
  std::vector<Variable*> TaskParameters(int k) override;

 private:
  std::vector<nn::Conv2d*> encoder_;
  std::vector<nn::Conv2d*> heads_;
};

}  // namespace mtl
}  // namespace mocograd

#endif  // MOCOGRAD_MTL_SCENE_MODEL_H_
