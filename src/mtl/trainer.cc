#include "mtl/trainer.h"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "autograd/ops.h"
#include "base/stopwatch.h"
#include "base/thread_pool.h"
#include "core/grad_matrix.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mocograd {
namespace mtl {

namespace ag = autograd;
using data::Batch;
using data::TaskKind;

Variable TaskLoss(TaskKind kind, const Variable& pred, const Batch& batch) {
  switch (kind) {
    case TaskKind::kBinaryLogistic:
      return ag::BceWithLogits(pred, batch.y);
    case TaskKind::kRegression:
    case TaskKind::kRegressionMae:
      return ag::MseLoss(pred, batch.y);
    case TaskKind::kRegressionL1:
      return ag::L1Loss(pred, batch.y);
    case TaskKind::kClassification:
      return ag::SoftmaxCrossEntropy(pred, batch.labels);
    case TaskKind::kPixelClassification:
      return ag::SoftmaxCrossEntropy(ag::ChannelsToLast(pred), batch.labels);
    case TaskKind::kPixelRegression:
      return ag::MseLoss(pred, batch.y);
  }
  MG_FATAL("unhandled TaskKind");
}

MtlTrainer::MtlTrainer(MtlModel* model, core::GradientAggregator* aggregator,
                       optim::Optimizer* optimizer,
                       std::vector<data::TaskKind> kinds, uint64_t seed)
    : model_(model),
      aggregator_(aggregator),
      optimizer_(optimizer),
      kinds_(std::move(kinds)),
      rng_(seed) {
  MG_CHECK(model_ != nullptr && aggregator_ != nullptr &&
           optimizer_ != nullptr);
  method_name_ = aggregator_->name();
  MG_CHECK_EQ(static_cast<int>(kinds_.size()), model_->num_tasks(),
              "one TaskKind per task");
}

StepStats MtlTrainer::Step(const std::vector<Batch>& batches) {
  MG_TRACE_SCOPE("trainer.step");
  MG_METRIC_COUNT("trainer.steps", 1);
  const int k = model_->num_tasks();
  MG_CHECK_EQ(static_cast<int>(batches.size()), k, "one batch per task");

  StepStats stats;
  Stopwatch phase_timer;

  // Forward all tasks on one shared tape.
  std::vector<Variable> preds;
  std::vector<Variable> losses;
  {
    MG_TRACE_SCOPE("trainer.forward");
    std::vector<Variable> inputs;
    inputs.reserve(k);
    for (const Batch& b : batches) {
      inputs.emplace_back(b.x, /*requires_grad=*/false);
    }
    preds = model_->Forward(inputs);
    MG_CHECK_EQ(static_cast<int>(preds.size()), k);

    losses.reserve(k);
    for (int t = 0; t < k; ++t) {
      losses.push_back(TaskLoss(kinds_[t], preds[t], batches[t]));
      stats.losses.push_back(losses.back().value().Item());
    }
  }
  stats.phase.forward = phase_timer.ElapsedSeconds();

  Stopwatch backward_timer;

  // One backward per task. Each task's sweep only *reads* the shared tape —
  // leaf gradients are routed into a per-task sink instead of the nodes'
  // grad buffers — so the K sweeps launch concurrently on the pool, with
  // each task's flattened gradients written straight into its own GradMatrix
  // row (a merge that is deterministic by construction: row t belongs to
  // task t). Under the default ready-queue executor the sweeps additionally
  // overlap at tape-node granularity: every sweep feeds its ready nodes to
  // the shared pool, so workers drain whichever task currently has runnable
  // branches instead of being pinned one-per-task, and the GEMMs inside each
  // grad_fn still parallelize underneath (nested ParallelFor). Results are
  // bit-identical to a serial ZeroGrad+Backward loop for any pool size and
  // either executor — see docs/AUTOGRAD.md.
  std::vector<Variable*> shared = model_->SharedParameters();
  int64_t shared_dim = 0;
  for (Variable* p : shared) shared_dim += p->NumElements();
  core::GradMatrix task_grads(k, shared_dim);
  std::vector<std::vector<Tensor>> task_specific_grads(k);

  {
    MG_TRACE_SCOPE("trainer.backward");
    // Per-task backward/flatten split, accumulated per task and summed in
    // task order below so the reported phase times are independent of how
    // the pool interleaved the sweeps.
    std::vector<double> bwd_seconds(k, 0.0);
    std::vector<double> flat_seconds(k, 0.0);
    std::vector<Variable::GradSink> sinks(k);
    ParallelFor(0, k, 1, [&](int64_t t0, int64_t t1) {
      for (int64_t t = t0; t < t1; ++t) {
        MG_TRACE_SCOPE("trainer.task_backward");
        MG_METRIC_TIME_SCOPE("trainer.task_backward.seconds");
        Stopwatch task_timer;
        Variable::GradSink& sink = sinks[t];
        losses[t].BackwardInto(&sink);
        bwd_seconds[t] = task_timer.ElapsedSeconds();

        MG_TRACE_SCOPE("trainer.task_flatten");
        task_timer.Restart();
        float* row = task_grads.Row(static_cast<int>(t));
        int64_t off = 0;
        for (Variable* p : shared) {
          const int64_t n = p->NumElements();
          auto it = sink.find(p->node().get());
          if (it != sink.end()) {
            std::memcpy(row + off, it->second.data(), n * sizeof(float));
          } else {
            std::memset(row + off, 0, n * sizeof(float));
          }
          off += n;
        }
        for (Variable* p : model_->TaskParameters(static_cast<int>(t))) {
          auto it = sink.find(p->node().get());
          // The sink tensor is freshly allocated per sweep, so sharing its
          // storage (no Clone) is safe.
          task_specific_grads[t].push_back(
              it != sink.end() ? it->second : Tensor::Zeros(p->shape()));
        }
        flat_seconds[t] = task_timer.ElapsedSeconds();
      }
    });
    for (int t = 0; t < k; ++t) {
      stats.phase.backward += bwd_seconds[t];
      stats.phase.flatten += flat_seconds[t];
    }
  }

  // Aggregate. The decision trace is attached unconditionally — it is
  // observation-only by contract, and always filling it keeps every
  // downstream value identical whether or not a telemetry sink is attached.
  core::AggregationResult agg;
  {
    MG_TRACE_SCOPE("trainer.aggregate");
    phase_timer.Restart();
    trace_.Begin(method_name_, k);
    core::AggregationContext ctx;
    ctx.task_grads = &task_grads;
    ctx.losses = &stats.losses;
    ctx.step = step_;
    ctx.rng = &rng_;
    ctx.profile = &stats.phase.aggregator;
    ctx.trace = &trace_;
    agg = aggregator_->Aggregate(ctx);
    stats.phase.aggregate = phase_timer.ElapsedSeconds();
  }
  stats.aggregator_conflicts = agg.num_conflicts;
  MG_METRIC_COUNT("trainer.aggregator_conflicts", agg.num_conflicts);
  MG_CHECK_EQ(static_cast<int64_t>(agg.shared_grad.size()), shared_dim);
  MG_CHECK_EQ(static_cast<int>(agg.task_weights.size()), k);

  // Conflict statistics, deduped against the aggregator's own pairwise
  // sweep: when the method published a complete cosine matrix through the
  // trace (MoCoGrad's calibration scan, the Gram-based solvers), those
  // cosines are reused; otherwise one O(K²·P) PairwiseCosines pass covers
  // stats, tracker, and telemetry together.
  const bool telemetry_sampled = telemetry_ != nullptr && telemetry_->ok() &&
                                 telemetry_->ShouldSample(step_);
  std::vector<double> fallback_cosines;
  const std::vector<double>* cosines = nullptr;
  if (conflict_stats_enabled_ || tracker_ != nullptr || telemetry_sampled) {
    MG_TRACE_SCOPE("trainer.conflict_stats");
    phase_timer.Restart();
    if (trace_.cosines_complete()) {
      cosines = &trace_.cosine_matrix();
    } else {
      fallback_cosines = core::PairwiseCosines(task_grads);
      cosines = &fallback_cosines;
    }
    if (conflict_stats_enabled_) {
      stats.conflicts = core::ConflictStatsFromCosines(k, *cosines);
      MG_METRIC_COUNT("trainer.conflicting_pairs",
                      stats.conflicts.num_conflicting_pairs);
    }
    if (tracker_ != nullptr) tracker_->RecordFromCosines(k, *cosines);
    stats.phase.conflict_stats = phase_timer.ElapsedSeconds();
  }

  stats.backward_seconds = backward_timer.ElapsedSeconds();

  // Watchdog scan over this step's losses and aggregated gradient.
  // Observation-only unless abort_on_event is set.
  if (watchdog_.options().enabled) {
    stats.watchdog_events = watchdog_.Observe(step_, stats.losses,
                                              agg.shared_grad);
    if (!stats.watchdog_events.empty()) {
      MG_METRIC_COUNT("trainer.watchdog_events",
                      static_cast<int64_t>(stats.watchdog_events.size()));
      for (const obs::WatchdogEvent& ev : stats.watchdog_events) {
        std::fprintf(stderr,
                     "mocograd: watchdog: step %lld: %s (task %d, value %g, "
                     "threshold %g)\n",
                     static_cast<long long>(ev.step), ev.kind.c_str(), ev.task,
                     ev.value, ev.threshold);
        if (telemetry_ != nullptr && telemetry_->ok()) {
          telemetry_->WriteWatchdogEvent(method_name_, ev);
        }
      }
      if (watchdog_.options().abort_on_event) {
        MG_FATAL("watchdog abort: ", stats.watchdog_events.size(),
                 " anomalies at step ", step_, " (first: ",
                 stats.watchdog_events.front().kind, ")");
      }
    }
  }

  // Write the combined gradient back onto the parameters and step.
  {
    MG_TRACE_SCOPE("trainer.write_back");
    phase_timer.Restart();
    model_->ZeroGrad();
    {
      int64_t off = 0;
      for (Variable* p : shared) {
        const int64_t n = p->NumElements();
        std::memcpy(p->mutable_grad().data(), agg.shared_grad.data() + off,
                    n * sizeof(float));
        off += n;
      }
    }
    for (int t = 0; t < k; ++t) {
      auto params = model_->TaskParameters(t);
      MG_CHECK_EQ(params.size(), task_specific_grads[t].size());
      for (size_t i = 0; i < params.size(); ++i) {
        Tensor& g = params[i]->mutable_grad();
        g.CopyFrom(task_specific_grads[t][i]);
        tops::ScaleInPlace(g, agg.task_weights[t]);
      }
    }
    stats.phase.write_back = phase_timer.ElapsedSeconds();
  }
  if (max_grad_norm_ > 0.0f) {
    MG_TRACE_SCOPE("trainer.clip");
    phase_timer.Restart();
    // Global-norm clipping over every parameter gradient about to be
    // applied (the LibMTL-style safety net against aggregation spikes).
    double total = 0.0;
    for (Variable* p : model_->Parameters()) {
      if (!p->has_grad()) continue;
      const float n = tops::Norm(p->grad());
      total += static_cast<double>(n) * n;
    }
    const double norm = std::sqrt(total);
    if (norm > max_grad_norm_) {
      const float scale = max_grad_norm_ / static_cast<float>(norm);
      for (Variable* p : model_->Parameters()) {
        if (p->has_grad()) tops::ScaleInPlace(p->mutable_grad(), scale);
      }
    }
    stats.phase.clip = phase_timer.ElapsedSeconds();
  }

  {
    MG_TRACE_SCOPE("trainer.optimizer");
    phase_timer.Restart();
    optimizer_->Step();
    stats.phase.optimizer = phase_timer.ElapsedSeconds();
  }

  // Telemetry record, written last so the phase breakdown is complete.
  // Everything here *reads* finished step state — nothing feeds back.
  if (telemetry_sampled) {
    obs::TelemetryRecord rec;
    rec.step = step_;
    rec.method = method_name_;
    rec.num_tasks = k;
    rec.losses = stats.losses;
    rec.task_weights = agg.task_weights;
    rec.grad_norms = trace_.grad_norms();
    if (rec.grad_norms.empty()) {
      rec.grad_norms.reserve(k);
      for (int t = 0; t < k; ++t) {
        rec.grad_norms.push_back(task_grads.RowNorm(t));
      }
    }
    rec.momentum_norms = trace_.momentum_norms();
    if (cosines != nullptr) {
      rec.cosines = *cosines;
      const core::ConflictStats cs =
          conflict_stats_enabled_
              ? stats.conflicts
              : core::ConflictStatsFromCosines(k, *cosines);
      rec.mean_gcd = cs.mean_gcd;
      rec.max_gcd = cs.max_gcd;
      rec.num_conflicting_pairs = cs.num_conflicting_pairs;
      rec.num_pairs = cs.num_pairs;
    }
    rec.trace = &trace_;
    rec.phase_seconds = {{"forward", stats.phase.forward},
                         {"backward", stats.phase.backward},
                         {"flatten", stats.phase.flatten},
                         {"conflict_stats", stats.phase.conflict_stats},
                         {"aggregate", stats.phase.aggregate},
                         {"write_back", stats.phase.write_back},
                         {"clip", stats.phase.clip},
                         {"optimizer", stats.phase.optimizer}};
    telemetry_->WriteRecord(rec);
  }
  ++step_;
  return stats;
}

std::vector<Tensor> MtlTrainer::Predict(const std::vector<Batch>& batches) {
  const int k = model_->num_tasks();
  MG_CHECK_EQ(static_cast<int>(batches.size()), k);
  std::vector<Variable> inputs;
  inputs.reserve(k);
  for (const Batch& b : batches) {
    inputs.emplace_back(b.x, /*requires_grad=*/false);
  }
  std::vector<Variable> preds = model_->Forward(inputs);
  std::vector<Tensor> out;
  out.reserve(k);
  for (const Variable& p : preds) out.push_back(p.value());
  return out;
}

}  // namespace mtl
}  // namespace mocograd
