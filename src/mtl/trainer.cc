#include "mtl/trainer.h"

#include <cmath>
#include <cstring>

#include "autograd/ops.h"
#include "base/stopwatch.h"
#include "base/thread_pool.h"
#include "core/grad_matrix.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mocograd {
namespace mtl {

namespace ag = autograd;
using data::Batch;
using data::TaskKind;

Variable TaskLoss(TaskKind kind, const Variable& pred, const Batch& batch) {
  switch (kind) {
    case TaskKind::kBinaryLogistic:
      return ag::BceWithLogits(pred, batch.y);
    case TaskKind::kRegression:
    case TaskKind::kRegressionMae:
      return ag::MseLoss(pred, batch.y);
    case TaskKind::kRegressionL1:
      return ag::L1Loss(pred, batch.y);
    case TaskKind::kClassification:
      return ag::SoftmaxCrossEntropy(pred, batch.labels);
    case TaskKind::kPixelClassification:
      return ag::SoftmaxCrossEntropy(ag::ChannelsToLast(pred), batch.labels);
    case TaskKind::kPixelRegression:
      return ag::MseLoss(pred, batch.y);
  }
  MG_FATAL("unhandled TaskKind");
}

MtlTrainer::MtlTrainer(MtlModel* model, core::GradientAggregator* aggregator,
                       optim::Optimizer* optimizer,
                       std::vector<data::TaskKind> kinds, uint64_t seed)
    : model_(model),
      aggregator_(aggregator),
      optimizer_(optimizer),
      kinds_(std::move(kinds)),
      rng_(seed) {
  MG_CHECK(model_ != nullptr && aggregator_ != nullptr &&
           optimizer_ != nullptr);
  MG_CHECK_EQ(static_cast<int>(kinds_.size()), model_->num_tasks(),
              "one TaskKind per task");
}

StepStats MtlTrainer::Step(const std::vector<Batch>& batches) {
  MG_TRACE_SCOPE("trainer.step");
  MG_METRIC_COUNT("trainer.steps", 1);
  const int k = model_->num_tasks();
  MG_CHECK_EQ(static_cast<int>(batches.size()), k, "one batch per task");

  StepStats stats;
  Stopwatch phase_timer;

  // Forward all tasks on one shared tape.
  std::vector<Variable> preds;
  std::vector<Variable> losses;
  {
    MG_TRACE_SCOPE("trainer.forward");
    std::vector<Variable> inputs;
    inputs.reserve(k);
    for (const Batch& b : batches) {
      inputs.emplace_back(b.x, /*requires_grad=*/false);
    }
    preds = model_->Forward(inputs);
    MG_CHECK_EQ(static_cast<int>(preds.size()), k);

    losses.reserve(k);
    for (int t = 0; t < k; ++t) {
      losses.push_back(TaskLoss(kinds_[t], preds[t], batches[t]));
      stats.losses.push_back(losses.back().value().Item());
    }
  }
  stats.phase.forward = phase_timer.ElapsedSeconds();

  Stopwatch backward_timer;

  // One backward per task. Each task's sweep only *reads* the shared tape —
  // leaf gradients are routed into a per-task sink instead of the nodes'
  // grad buffers — so the K sweeps launch concurrently on the pool, with
  // each task's flattened gradients written straight into its own GradMatrix
  // row (a merge that is deterministic by construction: row t belongs to
  // task t). Under the default ready-queue executor the sweeps additionally
  // overlap at tape-node granularity: every sweep feeds its ready nodes to
  // the shared pool, so workers drain whichever task currently has runnable
  // branches instead of being pinned one-per-task, and the GEMMs inside each
  // grad_fn still parallelize underneath (nested ParallelFor). Results are
  // bit-identical to a serial ZeroGrad+Backward loop for any pool size and
  // either executor — see docs/AUTOGRAD.md.
  std::vector<Variable*> shared = model_->SharedParameters();
  int64_t shared_dim = 0;
  for (Variable* p : shared) shared_dim += p->NumElements();
  core::GradMatrix task_grads(k, shared_dim);
  std::vector<std::vector<Tensor>> task_specific_grads(k);

  {
    MG_TRACE_SCOPE("trainer.backward");
    // Per-task backward/flatten split, accumulated per task and summed in
    // task order below so the reported phase times are independent of how
    // the pool interleaved the sweeps.
    std::vector<double> bwd_seconds(k, 0.0);
    std::vector<double> flat_seconds(k, 0.0);
    std::vector<Variable::GradSink> sinks(k);
    ParallelFor(0, k, 1, [&](int64_t t0, int64_t t1) {
      for (int64_t t = t0; t < t1; ++t) {
        MG_TRACE_SCOPE("trainer.task_backward");
        MG_METRIC_TIME_SCOPE("trainer.task_backward.seconds");
        Stopwatch task_timer;
        Variable::GradSink& sink = sinks[t];
        losses[t].BackwardInto(&sink);
        bwd_seconds[t] = task_timer.ElapsedSeconds();

        MG_TRACE_SCOPE("trainer.task_flatten");
        task_timer.Restart();
        float* row = task_grads.Row(static_cast<int>(t));
        int64_t off = 0;
        for (Variable* p : shared) {
          const int64_t n = p->NumElements();
          auto it = sink.find(p->node().get());
          if (it != sink.end()) {
            std::memcpy(row + off, it->second.data(), n * sizeof(float));
          } else {
            std::memset(row + off, 0, n * sizeof(float));
          }
          off += n;
        }
        for (Variable* p : model_->TaskParameters(static_cast<int>(t))) {
          auto it = sink.find(p->node().get());
          // The sink tensor is freshly allocated per sweep, so sharing its
          // storage (no Clone) is safe.
          task_specific_grads[t].push_back(
              it != sink.end() ? it->second : Tensor::Zeros(p->shape()));
        }
        flat_seconds[t] = task_timer.ElapsedSeconds();
      }
    });
    for (int t = 0; t < k; ++t) {
      stats.phase.backward += bwd_seconds[t];
      stats.phase.flatten += flat_seconds[t];
    }
  }

  if (conflict_stats_enabled_) {
    MG_TRACE_SCOPE("trainer.conflict_stats");
    phase_timer.Restart();
    stats.conflicts = core::ComputeConflictStats(task_grads);
    stats.phase.conflict_stats = phase_timer.ElapsedSeconds();
    MG_METRIC_COUNT("trainer.conflicting_pairs",
                    stats.conflicts.num_conflicting_pairs);
  }
  if (tracker_ != nullptr) tracker_->Record(task_grads);

  // Aggregate.
  core::AggregationResult agg;
  {
    MG_TRACE_SCOPE("trainer.aggregate");
    phase_timer.Restart();
    core::AggregationContext ctx;
    ctx.task_grads = &task_grads;
    ctx.losses = &stats.losses;
    ctx.step = step_;
    ctx.rng = &rng_;
    ctx.profile = &stats.phase.aggregator;
    agg = aggregator_->Aggregate(ctx);
    stats.phase.aggregate = phase_timer.ElapsedSeconds();
  }
  stats.aggregator_conflicts = agg.num_conflicts;
  MG_METRIC_COUNT("trainer.aggregator_conflicts", agg.num_conflicts);
  MG_CHECK_EQ(static_cast<int64_t>(agg.shared_grad.size()), shared_dim);
  MG_CHECK_EQ(static_cast<int>(agg.task_weights.size()), k);

  stats.backward_seconds = backward_timer.ElapsedSeconds();

  // Write the combined gradient back onto the parameters and step.
  {
    MG_TRACE_SCOPE("trainer.write_back");
    phase_timer.Restart();
    model_->ZeroGrad();
    {
      int64_t off = 0;
      for (Variable* p : shared) {
        const int64_t n = p->NumElements();
        std::memcpy(p->mutable_grad().data(), agg.shared_grad.data() + off,
                    n * sizeof(float));
        off += n;
      }
    }
    for (int t = 0; t < k; ++t) {
      auto params = model_->TaskParameters(t);
      MG_CHECK_EQ(params.size(), task_specific_grads[t].size());
      for (size_t i = 0; i < params.size(); ++i) {
        Tensor& g = params[i]->mutable_grad();
        g.CopyFrom(task_specific_grads[t][i]);
        tops::ScaleInPlace(g, agg.task_weights[t]);
      }
    }
    stats.phase.write_back = phase_timer.ElapsedSeconds();
  }
  if (max_grad_norm_ > 0.0f) {
    MG_TRACE_SCOPE("trainer.clip");
    phase_timer.Restart();
    // Global-norm clipping over every parameter gradient about to be
    // applied (the LibMTL-style safety net against aggregation spikes).
    double total = 0.0;
    for (Variable* p : model_->Parameters()) {
      if (!p->has_grad()) continue;
      const float n = tops::Norm(p->grad());
      total += static_cast<double>(n) * n;
    }
    const double norm = std::sqrt(total);
    if (norm > max_grad_norm_) {
      const float scale = max_grad_norm_ / static_cast<float>(norm);
      for (Variable* p : model_->Parameters()) {
        if (p->has_grad()) tops::ScaleInPlace(p->mutable_grad(), scale);
      }
    }
    stats.phase.clip = phase_timer.ElapsedSeconds();
  }

  {
    MG_TRACE_SCOPE("trainer.optimizer");
    phase_timer.Restart();
    optimizer_->Step();
    stats.phase.optimizer = phase_timer.ElapsedSeconds();
  }
  ++step_;
  return stats;
}

std::vector<Tensor> MtlTrainer::Predict(const std::vector<Batch>& batches) {
  const int k = model_->num_tasks();
  MG_CHECK_EQ(static_cast<int>(batches.size()), k);
  std::vector<Variable> inputs;
  inputs.reserve(k);
  for (const Batch& b : batches) {
    inputs.emplace_back(b.x, /*requires_grad=*/false);
  }
  std::vector<Variable> preds = model_->Forward(inputs);
  std::vector<Tensor> out;
  out.reserve(k);
  for (const Variable& p : preds) out.push_back(p.value());
  return out;
}

}  // namespace mtl
}  // namespace mocograd
