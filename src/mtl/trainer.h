#ifndef MOCOGRAD_MTL_TRAINER_H_
#define MOCOGRAD_MTL_TRAINER_H_

#include <memory>
#include <string>
#include <vector>

#include "base/rng.h"
#include "core/aggregator.h"
#include "core/analysis.h"
#include "core/conflict.h"
#include "data/batch.h"
#include "mtl/model.h"
#include "mtl/watchdog.h"
#include "obs/phase_profile.h"
#include "obs/telemetry.h"
#include "optim/optimizer.h"

namespace mocograd {
namespace mtl {

/// Wall-clock attribution of one MtlTrainer::Step, phase by phase. The
/// eight buckets partition the step: Total() matches the step's wall-clock
/// on a single-core pool, and sums *CPU* time when the per-task backward
/// sweeps run on several workers (backward/flatten accumulate per task).
struct StepPhaseTimes {
  /// Forward pass of all K tasks (including loss evaluation).
  double forward = 0.0;
  /// Per-task tape walks (BackwardInto), summed over tasks.
  double backward = 0.0;
  /// Flattening leaf gradients into GradMatrix rows / task-specific grad
  /// collection, summed over tasks.
  double flatten = 0.0;
  /// ComputeConflictStats on the task-gradient matrix (Fig. 2 signal).
  double conflict_stats = 0.0;
  /// GradientAggregator::Aggregate — see `aggregator` for its sub-phases.
  double aggregate = 0.0;
  /// Writing the combined + task-specific gradients back onto parameters.
  double write_back = 0.0;
  /// Optional global-norm clipping.
  double clip = 0.0;
  /// Optimizer step.
  double optimizer = 0.0;

  /// Aggregator-internal sub-phases ("gram", "solver", "combine", ...),
  /// filled by methods that support AggregationContext::profile. A subset
  /// of `aggregate`, not an addition to Total().
  obs::PhaseProfile aggregator;

  /// Sum of the eight top-level buckets.
  double Total() const {
    return forward + backward + flatten + conflict_stats + aggregate +
           write_back + clip + optimizer;
  }

  /// Accumulates another step's times bucket-by-bucket (harness averaging).
  void Accumulate(const StepPhaseTimes& other) {
    forward += other.forward;
    backward += other.backward;
    flatten += other.flatten;
    conflict_stats += other.conflict_stats;
    aggregate += other.aggregate;
    write_back += other.write_back;
    clip += other.clip;
    optimizer += other.optimizer;
    aggregator.Merge(other.aggregator);
  }

  /// Scales every bucket (including aggregator sub-phases) by `s`.
  void Scale(double s) {
    forward *= s;
    backward *= s;
    flatten *= s;
    conflict_stats *= s;
    aggregate *= s;
    write_back *= s;
    clip *= s;
    optimizer *= s;
    aggregator.ScaleAll(s);
  }
};

/// Statistics of one optimization step.
struct StepStats {
  /// Raw per-task loss values.
  std::vector<float> losses;
  /// Pairwise conflict statistics of the per-task shared gradients — the
  /// GCD signal used in the paper's analysis (Fig. 2). All-zero when the
  /// trainer's conflict-stats pass is disabled.
  core::ConflictStats conflicts;
  /// Conflicts the aggregation method itself acted on.
  int aggregator_conflicts = 0;
  /// Wall-clock seconds spent in the K backward passes + aggregation (the
  /// quantity of the paper's Fig. 8).
  double backward_seconds = 0.0;
  /// Per-phase wall-clock breakdown of the whole step.
  StepPhaseTimes phase;
  /// Anomalies the TrainingWatchdog flagged this step (empty when healthy
  /// or when the watchdog is disabled).
  std::vector<obs::WatchdogEvent> watchdog_events;
};

/// The per-task loss for a prediction given its batch and task kind.
autograd::Variable TaskLoss(data::TaskKind kind,
                            const autograd::Variable& pred,
                            const data::Batch& batch);

/// Orchestrates gradient-surgery training:
///   forward all tasks → one backward per task → flatten shared-parameter
///   gradients into a GradMatrix → GradientAggregator → write combined
///   gradient back → optimizer step.
/// Task-specific parameters receive only their own task's gradient, scaled
/// by the aggregator's task weights (loss-weighting methods).
class MtlTrainer {
 public:
  /// Borrows all components; they must outlive the trainer. `seed` drives
  /// the trainer's private Rng handed to stochastic aggregators.
  MtlTrainer(MtlModel* model, core::GradientAggregator* aggregator,
             optim::Optimizer* optimizer, std::vector<data::TaskKind> kinds,
             uint64_t seed);

  /// Runs one optimization step on one batch per task (single-input callers
  /// pass batches sharing the same `x`).
  StepStats Step(const std::vector<data::Batch>& batches);

  /// Forward pass only (no tape kept on parameters), for evaluation.
  std::vector<Tensor> Predict(const std::vector<data::Batch>& batches);

  MtlModel* model() { return model_; }
  int64_t steps_done() const { return step_; }

  /// Optional: record every step's task-gradient matrix into a
  /// ConflictTracker (borrowed; pass nullptr to stop tracking).
  void set_conflict_tracker(core::ConflictTracker* tracker) {
    tracker_ = tracker;
  }

  /// Toggles the per-step ComputeConflictStats pass (default on). The pass
  /// is O(K²·P) analysis-only work; throughput benchmarks that never read
  /// `StepStats::conflicts` can switch it off. Does not affect the
  /// ConflictTracker or any training result.
  void set_conflict_stats_enabled(bool enabled) {
    conflict_stats_enabled_ = enabled;
  }
  bool conflict_stats_enabled() const { return conflict_stats_enabled_; }

  /// Optional global-norm gradient clipping applied to the aggregated
  /// update (shared + task-specific gradients jointly) before the
  /// optimizer step; 0 disables (default).
  void set_max_grad_norm(float max_norm) {
    MG_CHECK_GE(max_norm, 0.0f);
    max_grad_norm_ = max_norm;
  }
  float max_grad_norm() const { return max_grad_norm_; }

  /// Optional: stream sampled per-step telemetry records (and every watchdog
  /// event) into `sink` (borrowed; pass nullptr to stop). Observation-only:
  /// attaching a sink never changes RNG streams, accumulation order, or any
  /// computed result.
  void set_telemetry_sink(obs::TelemetrySink* sink) { telemetry_ = sink; }

  /// The watchdog scanning each step's losses and aggregated gradient.
  /// Mutable so callers can tune thresholds or disable it entirely.
  TrainingWatchdog* watchdog() { return &watchdog_; }

  /// The decision trace the aggregator filled during the most recent Step
  /// (cosines, per-pair calibration/projection decisions, solver weights).
  const obs::AggregatorTrace& last_trace() const { return trace_; }

 private:
  MtlModel* model_;
  core::GradientAggregator* aggregator_;
  optim::Optimizer* optimizer_;
  std::vector<data::TaskKind> kinds_;
  Rng rng_;
  int64_t step_ = 0;
  core::ConflictTracker* tracker_ = nullptr;
  float max_grad_norm_ = 0.0f;
  bool conflict_stats_enabled_ = true;
  std::string method_name_;       // cached aggregator_->name()
  obs::AggregatorTrace trace_;    // reused across steps (no per-step alloc)
  TrainingWatchdog watchdog_;     // options from env by default
  obs::TelemetrySink* telemetry_ = nullptr;
};

}  // namespace mtl
}  // namespace mocograd

#endif  // MOCOGRAD_MTL_TRAINER_H_
