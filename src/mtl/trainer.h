#ifndef MOCOGRAD_MTL_TRAINER_H_
#define MOCOGRAD_MTL_TRAINER_H_

#include <memory>
#include <vector>

#include "base/rng.h"
#include "core/aggregator.h"
#include "core/analysis.h"
#include "core/conflict.h"
#include "data/batch.h"
#include "mtl/model.h"
#include "optim/optimizer.h"

namespace mocograd {
namespace mtl {

/// Statistics of one optimization step.
struct StepStats {
  /// Raw per-task loss values.
  std::vector<float> losses;
  /// Pairwise conflict statistics of the per-task shared gradients — the
  /// GCD signal used in the paper's analysis (Fig. 2).
  core::ConflictStats conflicts;
  /// Conflicts the aggregation method itself acted on.
  int aggregator_conflicts = 0;
  /// Wall-clock seconds spent in the K backward passes + aggregation (the
  /// quantity of the paper's Fig. 8).
  double backward_seconds = 0.0;
};

/// The per-task loss for a prediction given its batch and task kind.
autograd::Variable TaskLoss(data::TaskKind kind,
                            const autograd::Variable& pred,
                            const data::Batch& batch);

/// Orchestrates gradient-surgery training:
///   forward all tasks → one backward per task → flatten shared-parameter
///   gradients into a GradMatrix → GradientAggregator → write combined
///   gradient back → optimizer step.
/// Task-specific parameters receive only their own task's gradient, scaled
/// by the aggregator's task weights (loss-weighting methods).
class MtlTrainer {
 public:
  /// Borrows all components; they must outlive the trainer. `seed` drives
  /// the trainer's private Rng handed to stochastic aggregators.
  MtlTrainer(MtlModel* model, core::GradientAggregator* aggregator,
             optim::Optimizer* optimizer, std::vector<data::TaskKind> kinds,
             uint64_t seed);

  /// Runs one optimization step on one batch per task (single-input callers
  /// pass batches sharing the same `x`).
  StepStats Step(const std::vector<data::Batch>& batches);

  /// Forward pass only (no tape kept on parameters), for evaluation.
  std::vector<Tensor> Predict(const std::vector<data::Batch>& batches);

  MtlModel* model() { return model_; }
  int64_t steps_done() const { return step_; }

  /// Optional: record every step's task-gradient matrix into a
  /// ConflictTracker (borrowed; pass nullptr to stop tracking).
  void set_conflict_tracker(core::ConflictTracker* tracker) {
    tracker_ = tracker;
  }

  /// Optional global-norm gradient clipping applied to the aggregated
  /// update (shared + task-specific gradients jointly) before the
  /// optimizer step; 0 disables (default).
  void set_max_grad_norm(float max_norm) {
    MG_CHECK_GE(max_norm, 0.0f);
    max_grad_norm_ = max_norm;
  }
  float max_grad_norm() const { return max_grad_norm_; }

 private:
  MtlModel* model_;
  core::GradientAggregator* aggregator_;
  optim::Optimizer* optimizer_;
  std::vector<data::TaskKind> kinds_;
  Rng rng_;
  int64_t step_ = 0;
  core::ConflictTracker* tracker_ = nullptr;
  float max_grad_norm_ = 0.0f;
};

}  // namespace mtl
}  // namespace mocograd

#endif  // MOCOGRAD_MTL_TRAINER_H_
