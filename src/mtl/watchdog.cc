#include "mtl/watchdog.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/env.h"

namespace mocograd {
namespace mtl {

WatchdogOptions TrainingWatchdog::OptionsFromEnv() {
  WatchdogOptions opts;
  opts.enabled = GetEnvInt("MOCOGRAD_WATCHDOG", 1, 0, 1) != 0;
  opts.abort_on_event = GetEnvInt("MOCOGRAD_WATCHDOG_ABORT", 0, 0, 1) != 0;
  return opts;
}

std::vector<obs::WatchdogEvent> TrainingWatchdog::Observe(
    int64_t step, const std::vector<float>& losses,
    const std::vector<float>& aggregated_grad) {
  std::vector<obs::WatchdogEvent> events;
  if (!options_.enabled) return events;

  MutexLock lk(&mu_);
  const int k = static_cast<int>(losses.size());
  if (static_cast<int>(min_loss_.size()) != k) {
    min_loss_.assign(k, std::numeric_limits<double>::infinity());
  }
  const bool armed = steps_seen_ >= options_.warmup_steps;

  for (int t = 0; t < k; ++t) {
    const double loss = losses[t];
    if (!std::isfinite(loss)) {
      events.push_back({step, "nonfinite_loss", t, loss, 0.0});
      continue;
    }
    // Divergence is measured against the best loss *seen so far* (checked
    // before the min update so the first step can never self-trigger).
    const double floor = std::max(min_loss_[t], 1e-8);
    const double threshold = options_.loss_divergence_factor * floor;
    if (armed && loss > threshold) {
      events.push_back({step, "loss_divergence", t, loss, threshold});
    }
    min_loss_[t] = std::min(min_loss_[t], loss);
  }

  // One pass over the aggregated gradient: non-finite census + norm.
  int64_t nonfinite = 0;
  double sum2 = 0.0;
  for (const float v : aggregated_grad) {
    if (!std::isfinite(v)) {
      ++nonfinite;
      continue;
    }
    sum2 += static_cast<double>(v) * v;
  }
  if (nonfinite > 0) {
    events.push_back({step, "nonfinite_grad", -1,
                      static_cast<double>(nonfinite), 0.0});
  } else {
    const double norm = std::sqrt(sum2);
    // The 1e-8 floor keeps a converged run (EMA ≈ 0) from flagging an
    // ordinary mini-batch gradient as an explosion.
    const double threshold =
        options_.grad_explosion_factor * std::max(norm_ema_, 1e-8);
    if (armed && norm_ema_valid_ && norm > threshold) {
      events.push_back({step, "grad_explosion", -1, norm, threshold});
    }
    if (norm_ema_valid_) {
      norm_ema_ = options_.norm_ema_beta * norm_ema_ +
                  (1.0 - options_.norm_ema_beta) * norm;
    } else {
      norm_ema_ = norm;
      norm_ema_valid_ = true;
    }
  }

  ++steps_seen_;
  return events;
}

void TrainingWatchdog::Reset() {
  MutexLock lk(&mu_);
  min_loss_.clear();
  norm_ema_ = 0.0;
  norm_ema_valid_ = false;
  steps_seen_ = 0;
}

}  // namespace mtl
}  // namespace mocograd
