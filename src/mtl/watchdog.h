#ifndef MOCOGRAD_MTL_WATCHDOG_H_
#define MOCOGRAD_MTL_WATCHDOG_H_

#include <cstdint>
#include <vector>

#include "base/mutex.h"
#include "obs/telemetry.h"

namespace mocograd {
namespace mtl {

/// Anomaly-detection thresholds for TrainingWatchdog. The defaults are
/// deliberately loose: the watchdog flags runs that are *rotting* (NaNs,
/// runaway losses, exploding updates), not runs that are merely noisy.
struct WatchdogOptions {
  /// Master switch (MOCOGRAD_WATCHDOG; default on — the clean-run cost is
  /// one O(P) finite-check/norm pass per step).
  bool enabled = true;
  /// Abort the process (MG_FATAL) on any event instead of just reporting
  /// (MOCOGRAD_WATCHDOG_ABORT; default off).
  bool abort_on_event = false;
  /// A task's loss diverges when it exceeds `loss_divergence_factor ×` its
  /// running minimum (after warmup).
  double loss_divergence_factor = 100.0;
  /// The aggregated gradient explodes when its norm exceeds
  /// `grad_explosion_factor ×` its EMA (after warmup).
  double grad_explosion_factor = 1000.0;
  /// Steps before the divergence/explosion detectors arm; the non-finite
  /// sentinels are always armed.
  int warmup_steps = 20;
  /// EMA coefficient for the gradient-norm baseline.
  double norm_ema_beta = 0.9;
};

/// Per-run anomaly watchdog over training dynamics: a NaN/Inf sentinel on
/// losses and the aggregated gradient, a loss-divergence detector against
/// each task's running-minimum loss, and a gradient-explosion detector
/// against an EMA of the aggregated-gradient norm.
///
/// Observation-only: Observe never touches RNG streams, accumulation order,
/// or any training value — its state (running minima, norm EMA) feeds back
/// only into which events it reports. The one behavioral knob,
/// `abort_on_event`, is opt-in and handled by the caller (MtlTrainer).
class TrainingWatchdog {
 public:
  TrainingWatchdog() : TrainingWatchdog(OptionsFromEnv()) {}
  explicit TrainingWatchdog(const WatchdogOptions& options)
      : options_(options) {}

  /// Reads MOCOGRAD_WATCHDOG / MOCOGRAD_WATCHDOG_ABORT (defaults otherwise).
  static WatchdogOptions OptionsFromEnv();

  const WatchdogOptions& options() const { return options_; }
  void set_options(const WatchdogOptions& options) { options_ = options; }

  /// Scans one step's losses and aggregated shared-parameter gradient.
  /// Returns the anomalies detected this step (empty for a healthy step, and
  /// always empty when disabled).
  std::vector<obs::WatchdogEvent> Observe(
      int64_t step, const std::vector<float>& losses,
      const std::vector<float>& aggregated_grad);

  /// Clears the running minima / EMA (reuse across training runs).
  void Reset();

 private:
  WatchdogOptions options_;
  // Detector state, updated once per Observe. A single trainer drives the
  // watchdog today, but Observe is callable from concurrent training loops
  // sharing one instance (e.g. a future async data pipeline's monitor
  // thread), so the running state is lock-protected — uncontended in the
  // single-trainer case.
  Mutex mu_;
  // Per-task running min of finite losses.
  std::vector<double> min_loss_ MG_GUARDED_BY(mu_);
  double norm_ema_ MG_GUARDED_BY(mu_) = 0.0;
  bool norm_ema_valid_ MG_GUARDED_BY(mu_) = false;
  int64_t steps_seen_ MG_GUARDED_BY(mu_) = 0;
};

}  // namespace mtl
}  // namespace mocograd

#endif  // MOCOGRAD_MTL_WATCHDOG_H_
