#ifndef MOCOGRAD_NN_ACTIVATION_H_
#define MOCOGRAD_NN_ACTIVATION_H_

#include "autograd/ops.h"
#include "nn/module.h"

namespace mocograd {
namespace nn {

/// Stateless activation layers so nonlinearities can live in Sequential.

class ReluLayer : public Layer {
 public:
  Variable Forward(const Variable& x) override { return autograd::Relu(x); }
};

class TanhLayer : public Layer {
 public:
  Variable Forward(const Variable& x) override { return autograd::Tanh(x); }
};

class SigmoidLayer : public Layer {
 public:
  Variable Forward(const Variable& x) override {
    return autograd::Sigmoid(x);
  }
};

}  // namespace nn
}  // namespace mocograd

#endif  // MOCOGRAD_NN_ACTIVATION_H_
