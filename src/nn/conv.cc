#include "nn/conv.h"

#include "autograd/ops.h"
#include "nn/init.h"

namespace mocograd {
namespace nn {

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
               int64_t stride, int64_t padding, Rng& rng) {
  spec_.in_channels = in_channels;
  spec_.out_channels = out_channels;
  spec_.kernel = kernel;
  spec_.stride = stride;
  spec_.padding = padding;
  const int64_t fan_in = in_channels * kernel * kernel;
  weight_ = RegisterParameter(
      "weight",
      HeNormal(Shape{out_channels, in_channels, kernel, kernel}, fan_in, rng));
  bias_ = RegisterParameter("bias", Tensor::Zeros(Shape{out_channels}));
}

Variable Conv2d::Forward(const Variable& x) {
  return autograd::Conv2d(x, *weight_, *bias_, spec_);
}

}  // namespace nn
}  // namespace mocograd
