#ifndef MOCOGRAD_NN_CONV_H_
#define MOCOGRAD_NN_CONV_H_

#include "base/rng.h"
#include "nn/module.h"
#include "tensor/ops.h"

namespace mocograd {
namespace nn {

/// 2-D convolution layer (NCHW), square kernel, zero padding.
class Conv2d : public Layer {
 public:
  Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
         int64_t stride, int64_t padding, Rng& rng);

  Variable Forward(const Variable& x) override;

  const tops::Conv2dSpec& spec() const { return spec_; }

 private:
  tops::Conv2dSpec spec_;
  Variable* weight_;
  Variable* bias_;
};

}  // namespace nn
}  // namespace mocograd

#endif  // MOCOGRAD_NN_CONV_H_
