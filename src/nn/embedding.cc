#include "nn/embedding.h"

#include "autograd/ops.h"

namespace mocograd {
namespace nn {

Embedding::Embedding(int64_t num_embeddings, int64_t dim, Rng& rng)
    : num_embeddings_(num_embeddings), dim_(dim) {
  // Small-variance normal init, the standard choice for embedding tables.
  table_ = RegisterParameter(
      "table", Tensor::Randn(Shape{num_embeddings, dim}, rng, 0.0f, 0.1f));
}

Variable Embedding::Forward(const std::vector<int64_t>& ids) {
  return autograd::GatherRows(*table_, ids);
}

}  // namespace nn
}  // namespace mocograd
