#ifndef MOCOGRAD_NN_EMBEDDING_H_
#define MOCOGRAD_NN_EMBEDDING_H_

#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "nn/module.h"

namespace mocograd {
namespace nn {

/// Lookup table mapping integer ids to dense vectors; backward scatters
/// gradients into the selected rows only.
class Embedding : public Module {
 public:
  Embedding(int64_t num_embeddings, int64_t dim, Rng& rng);

  /// Rows for the given ids, as a [ids.size(), dim] Variable.
  Variable Forward(const std::vector<int64_t>& ids);

  int64_t num_embeddings() const { return num_embeddings_; }
  int64_t dim() const { return dim_; }
  Variable* table() { return table_; }

 private:
  int64_t num_embeddings_;
  int64_t dim_;
  Variable* table_;
};

}  // namespace nn
}  // namespace mocograd

#endif  // MOCOGRAD_NN_EMBEDDING_H_
