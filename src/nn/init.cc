#include "nn/init.h"

#include <cmath>

#include "base/check.h"

namespace mocograd {
namespace nn {

Tensor GlorotUniform(Shape shape, int64_t fan_in, int64_t fan_out, Rng& rng) {
  MG_CHECK_GT(fan_in + fan_out, 0);
  const float a =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::Rand(std::move(shape), rng, -a, a);
}

Tensor HeNormal(Shape shape, int64_t fan_in, Rng& rng) {
  MG_CHECK_GT(fan_in, 0);
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return Tensor::Randn(std::move(shape), rng, 0.0f, stddev);
}

}  // namespace nn
}  // namespace mocograd
