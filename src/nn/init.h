#ifndef MOCOGRAD_NN_INIT_H_
#define MOCOGRAD_NN_INIT_H_

#include "base/rng.h"
#include "tensor/tensor.h"

namespace mocograd {
namespace nn {

/// Glorot/Xavier uniform initialization: U(-a, a), a = sqrt(6/(fan_in+fan_out)).
Tensor GlorotUniform(Shape shape, int64_t fan_in, int64_t fan_out, Rng& rng);

/// He/Kaiming normal initialization: N(0, sqrt(2/fan_in)). Used ahead of
/// ReLU nonlinearities.
Tensor HeNormal(Shape shape, int64_t fan_in, Rng& rng);

}  // namespace nn
}  // namespace mocograd

#endif  // MOCOGRAD_NN_INIT_H_
