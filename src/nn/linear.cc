#include "nn/linear.h"

#include "autograd/ops.h"
#include "nn/init.h"

namespace mocograd {
namespace nn {

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng, bool bias)
    : in_features_(in_features), out_features_(out_features) {
  weight_ = RegisterParameter(
      "weight", GlorotUniform(Shape{in_features, out_features}, in_features,
                              out_features, rng));
  if (bias) {
    bias_ = RegisterParameter("bias", Tensor::Zeros(Shape{out_features}));
  }
}

Variable Linear::Forward(const Variable& x) {
  MG_CHECK_EQ(x.shape().Rank(), 2, "Linear expects [n, in] input");
  MG_CHECK_EQ(x.shape().Dim(1), in_features_, "Linear input width");
  Variable y = autograd::MatMul(x, *weight_);
  if (bias_ != nullptr) y = autograd::Add(y, *bias_);
  return y;
}

}  // namespace nn
}  // namespace mocograd
