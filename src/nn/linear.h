#ifndef MOCOGRAD_NN_LINEAR_H_
#define MOCOGRAD_NN_LINEAR_H_

#include "base/rng.h"
#include "nn/module.h"

namespace mocograd {
namespace nn {

/// Fully connected layer: y = x W + b, with x [n, in], W [in, out], b [out].
class Linear : public Layer {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng,
         bool bias = true);

  Variable Forward(const Variable& x) override;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  Variable* weight() { return weight_; }
  Variable* bias() { return bias_; }  // nullptr when bias=false

 private:
  int64_t in_features_;
  int64_t out_features_;
  Variable* weight_;
  Variable* bias_ = nullptr;
};

}  // namespace nn
}  // namespace mocograd

#endif  // MOCOGRAD_NN_LINEAR_H_
