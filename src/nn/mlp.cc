#include "nn/mlp.h"

#include <memory>
#include <string>

#include "autograd/ops.h"

namespace mocograd {
namespace nn {

Mlp::Mlp(std::vector<int64_t> dims, Rng& rng) : dims_(std::move(dims)) {
  MG_CHECK_GE(dims_.size(), 2u, "Mlp needs at least {in, out} dims");
  for (size_t i = 0; i + 1 < dims_.size(); ++i) {
    layers_.push_back(RegisterModule(
        "fc" + std::to_string(i),
        std::make_unique<Linear>(dims_[i], dims_[i + 1], rng)));
  }
}

Variable Mlp::Forward(const Variable& x) {
  Variable cur = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    cur = layers_[i]->Forward(cur);
    if (i + 1 < layers_.size()) cur = autograd::Relu(cur);
  }
  return cur;
}

}  // namespace nn
}  // namespace mocograd
