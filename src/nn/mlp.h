#ifndef MOCOGRAD_NN_MLP_H_
#define MOCOGRAD_NN_MLP_H_

#include <vector>

#include "base/rng.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace mocograd {
namespace nn {

/// Multi-layer perceptron: Linear layers with ReLU between them. The last
/// layer is linear (no activation) so it can produce logits / regressands.
class Mlp : public Layer {
 public:
  /// `dims` = {in, hidden..., out}; needs at least {in, out}.
  Mlp(std::vector<int64_t> dims, Rng& rng);

  Variable Forward(const Variable& x) override;

  const std::vector<int64_t>& dims() const { return dims_; }

 private:
  std::vector<int64_t> dims_;
  std::vector<Linear*> layers_;
};

}  // namespace nn
}  // namespace mocograd

#endif  // MOCOGRAD_NN_MLP_H_
