#include "nn/module.h"

namespace mocograd {
namespace nn {

std::vector<Variable*> Module::Parameters() {
  std::vector<Variable*> out;
  for (auto& [name, p] : params_) out.push_back(p.get());
  for (auto& [name, child] : children_) {
    auto sub = child->Parameters();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

std::vector<std::pair<std::string, Variable*>> Module::NamedParameters() {
  std::vector<std::pair<std::string, Variable*>> out;
  AppendNamedParameters("", &out);
  return out;
}

void Module::AppendNamedParameters(
    const std::string& prefix,
    std::vector<std::pair<std::string, Variable*>>* out) {
  for (auto& [name, p] : params_) out->emplace_back(prefix + name, p.get());
  for (auto& [name, child] : children_) {
    child->AppendNamedParameters(prefix + name + ".", out);
  }
}

int64_t Module::NumParameters() {
  int64_t n = 0;
  for (Variable* p : Parameters()) n += p->NumElements();
  return n;
}

void Module::ZeroGrad() {
  for (Variable* p : Parameters()) p->ZeroGrad();
}

Variable* Module::RegisterParameter(std::string name, Tensor init) {
  params_.emplace_back(
      std::move(name),
      std::make_unique<Variable>(std::move(init), /*requires_grad=*/true));
  return params_.back().second.get();
}

}  // namespace nn
}  // namespace mocograd
