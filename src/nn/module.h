#ifndef MOCOGRAD_NN_MODULE_H_
#define MOCOGRAD_NN_MODULE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"

namespace mocograd {
namespace nn {

using autograd::Variable;

/// Base class for neural-network components. A Module owns named parameters
/// (leaf Variables with requires_grad) and child modules; Parameters()
/// walks the tree in registration order, which gives every composite model a
/// stable, deterministic parameter ordering — the gradient-surgery code
/// relies on that ordering to flatten per-task gradients consistently.
class Module {
 public:
  virtual ~Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All parameters of this module and its children, depth-first.
  std::vector<Variable*> Parameters();

  /// Parameters() with the dotted registration path of every parameter
  /// ("trunk.fc0.weight"), in the same depth-first order. The paths give
  /// each parameter a stable human-readable identity that checkpoint and
  /// serving tooling can validate against (serve::ServeModel matches its
  /// packed-arena layout to these names — see docs/SERVING.md).
  std::vector<std::pair<std::string, Variable*>> NamedParameters();

  /// Total number of scalar parameters.
  int64_t NumParameters();

  /// Zeroes the gradient of every parameter.
  void ZeroGrad();

 protected:
  Module() = default;

  /// Registers a parameter; the returned pointer stays valid for the
  /// module's lifetime.
  Variable* RegisterParameter(std::string name, Tensor init);

  /// Registers a child module and returns a typed borrow.
  template <typename M>
  M* RegisterModule(std::string name, std::unique_ptr<M> child) {
    M* raw = child.get();
    children_.emplace_back(std::move(name), std::move(child));
    return raw;
  }

 private:
  void AppendNamedParameters(
      const std::string& prefix,
      std::vector<std::pair<std::string, Variable*>>* out);

  std::vector<std::pair<std::string, std::unique_ptr<Variable>>> params_;
  std::vector<std::pair<std::string, std::unique_ptr<Module>>> children_;
};

/// A Module with the common one-tensor-in / one-tensor-out signature, the
/// building block Sequential chains together.
class Layer : public Module {
 public:
  virtual Variable Forward(const Variable& x) = 0;
};

}  // namespace nn
}  // namespace mocograd

#endif  // MOCOGRAD_NN_MODULE_H_
