#include "nn/norm.h"

#include <cmath>

#include "autograd/ops.h"

namespace mocograd {
namespace nn {

namespace ag = autograd;

LayerNorm::LayerNorm(int64_t dim, float eps) : dim_(dim), eps_(eps) {
  MG_CHECK_GT(dim, 0);
  gamma_ = RegisterParameter("gamma", Tensor::Ones(Shape{dim}));
  beta_ = RegisterParameter("beta", Tensor::Zeros(Shape{dim}));
}

Variable LayerNorm::Forward(const Variable& x) {
  MG_CHECK_EQ(x.shape().Rank(), 2, "LayerNorm expects [n, d]");
  MG_CHECK_EQ(x.shape().Dim(1), dim_, "LayerNorm width");
  // Composed from differentiable primitives so the backward pass needs no
  // bespoke gradient code.
  Variable mu = ag::MeanAxis(x, 1, /*keepdims=*/true);            // [n,1]
  Variable centered = ag::Sub(x, mu);                             // [n,d]
  Variable var = ag::MeanAxis(ag::Mul(centered, centered), 1,
                              /*keepdims=*/true);                 // [n,1]
  Variable inv_std = ag::Div(
      Variable(Tensor::Ones({x.shape().Dim(0), 1}), false),
      ag::Sqrt(ag::AddScalar(var, eps_)));
  Variable norm = ag::Mul(centered, inv_std);
  return ag::Add(ag::Mul(norm, *gamma_), *beta_);
}

Dropout::Dropout(float p, Rng& rng) : p_(p), rng_(&rng) {
  MG_CHECK_GE(p, 0.0f);
  MG_CHECK_LT(p, 1.0f);
}

Variable Dropout::Forward(const Variable& x) {
  if (!training_ || p_ == 0.0f) return x;
  Tensor mask(x.shape());
  const float scale = 1.0f / (1.0f - p_);
  float* m = mask.data();
  for (int64_t i = 0; i < mask.NumElements(); ++i) {
    m[i] = rng_->Bernoulli(p_) ? 0.0f : scale;
  }
  return ag::Mul(x, Variable(mask, false));
}

}  // namespace nn
}  // namespace mocograd
