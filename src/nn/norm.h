#ifndef MOCOGRAD_NN_NORM_H_
#define MOCOGRAD_NN_NORM_H_

#include "base/rng.h"
#include "nn/module.h"

namespace mocograd {
namespace nn {

/// Layer normalization over the last axis of a [n, d] input:
///   y = γ ⊙ (x − μ_row) / √(σ²_row + ε) + β.
/// γ initializes to ones, β to zeros.
class LayerNorm : public Layer {
 public:
  explicit LayerNorm(int64_t dim, float eps = 1e-5f);

  Variable Forward(const Variable& x) override;

  Variable* gamma() { return gamma_; }
  Variable* beta() { return beta_; }

 private:
  int64_t dim_;
  float eps_;
  Variable* gamma_;
  Variable* beta_;
};

/// Inverted dropout: during training each activation is zeroed with
/// probability p and survivors are scaled by 1/(1−p); in eval mode the
/// layer is the identity. Randomness comes from the Rng passed at
/// construction (no global state).
class Dropout : public Layer {
 public:
  Dropout(float p, Rng& rng);

  Variable Forward(const Variable& x) override;

  void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

 private:
  float p_;
  Rng* rng_;
  bool training_ = true;
};

}  // namespace nn
}  // namespace mocograd

#endif  // MOCOGRAD_NN_NORM_H_
