#ifndef MOCOGRAD_NN_SEQUENTIAL_H_
#define MOCOGRAD_NN_SEQUENTIAL_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/module.h"

namespace mocograd {
namespace nn {

/// Chains Layers: Forward applies each child in order.
class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer; returns a typed borrow for later inspection.
  template <typename L>
  L* Add(std::unique_ptr<L> layer) {
    L* raw = RegisterModule("layer" + std::to_string(size_++),
                            std::move(layer));
    layers_.push_back(raw);
    return raw;
  }

  Variable Forward(const Variable& x) override {
    Variable cur = x;
    for (Layer* l : layers_) cur = l->Forward(cur);
    return cur;
  }

  int size() const { return size_; }

 private:
  int size_ = 0;
  std::vector<Layer*> layers_;
};

}  // namespace nn
}  // namespace mocograd

#endif  // MOCOGRAD_NN_SEQUENTIAL_H_
