#include "nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

namespace mocograd {
namespace nn {

namespace {

constexpr uint32_t kMagic = 0x4d4f4347;  // "MOCG"

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteU32(std::FILE* f, uint32_t v) {
  return std::fwrite(&v, sizeof(v), 1, f) == 1;
}
bool ReadU32(std::FILE* f, uint32_t* v) {
  return std::fread(v, sizeof(*v), 1, f) == 1;
}

}  // namespace

Status SaveParameters(Module& module, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::Internal("cannot open for writing: " + path);

  const auto params = module.Parameters();
  if (!WriteU32(f.get(), kMagic) ||
      !WriteU32(f.get(), static_cast<uint32_t>(params.size()))) {
    return Status::Internal("write failed: " + path);
  }
  for (autograd::Variable* p : params) {
    const Tensor& t = p->value();
    if (!WriteU32(f.get(), static_cast<uint32_t>(t.Rank()))) {
      return Status::Internal("write failed: " + path);
    }
    for (int i = 0; i < t.Rank(); ++i) {
      if (!WriteU32(f.get(), static_cast<uint32_t>(t.Dim(i)))) {
        return Status::Internal("write failed: " + path);
      }
    }
    const size_t n = static_cast<size_t>(t.NumElements());
    if (std::fwrite(t.data(), sizeof(float), n, f.get()) != n) {
      return Status::Internal("write failed: " + path);
    }
  }
  return Status::Ok();
}

Status LoadParameters(Module& module, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::NotFound("cannot open: " + path);

  uint32_t magic = 0, count = 0;
  if (!ReadU32(f.get(), &magic) || magic != kMagic) {
    return Status::InvalidArgument("not a mocograd checkpoint: " + path);
  }
  if (!ReadU32(f.get(), &count)) {
    return Status::InvalidArgument("truncated checkpoint: " + path);
  }
  const auto params = module.Parameters();
  if (count != params.size()) {
    return Status::InvalidArgument(
        "parameter count mismatch: checkpoint has " + std::to_string(count) +
        ", module has " + std::to_string(params.size()));
  }
  for (autograd::Variable* p : params) {
    uint32_t rank = 0;
    if (!ReadU32(f.get(), &rank)) {
      return Status::InvalidArgument("truncated checkpoint: " + path);
    }
    std::vector<int64_t> dims(rank);
    for (uint32_t i = 0; i < rank; ++i) {
      uint32_t d = 0;
      if (!ReadU32(f.get(), &d)) {
        return Status::InvalidArgument("truncated checkpoint: " + path);
      }
      dims[i] = d;
    }
    if (Shape(dims) != p->value().shape()) {
      return Status::InvalidArgument(
          "shape mismatch for a parameter: checkpoint " +
          Shape(dims).ToString() + " vs module " +
          p->value().shape().ToString());
    }
    Tensor& t = p->mutable_value();
    const size_t n = static_cast<size_t>(t.NumElements());
    if (std::fread(t.data(), sizeof(float), n, f.get()) != n) {
      return Status::InvalidArgument("truncated checkpoint: " + path);
    }
  }
  return Status::Ok();
}

}  // namespace nn
}  // namespace mocograd
