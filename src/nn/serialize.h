#ifndef MOCOGRAD_NN_SERIALIZE_H_
#define MOCOGRAD_NN_SERIALIZE_H_

#include <string>

#include "base/status.h"
#include "nn/module.h"

namespace mocograd {
namespace nn {

/// Saves a module's parameters to a binary checkpoint. The format is a
/// small header (magic, parameter count) followed by, per parameter, its
/// rank, dims and raw float32 data — tied to the module's deterministic
/// registration order (Module::Parameters()).
Status SaveParameters(Module& module, const std::string& path);

/// Loads parameters saved by SaveParameters into a module with the same
/// architecture (same parameter count and shapes, checked).
Status LoadParameters(Module& module, const std::string& path);

}  // namespace nn
}  // namespace mocograd

#endif  // MOCOGRAD_NN_SERIALIZE_H_
