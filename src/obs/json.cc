#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mocograd {
namespace obs {

namespace {

// Recursive-descent JSON parser. With a null `out` it is a pure syntax
// checker (no allocation beyond the recursion); with a non-null `out` it
// additionally builds the JsonValue DOM. Tracks position for error
// reporting; depth is bounded to reject pathological nesting.
class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Status Run(JsonValue* out) {
    SkipWs();
    Status st = ParseValue(0, out);
    if (!st.ok()) return st;
    SkipWs();
    if (pos_ != s_.size()) return Fail("trailing characters");
    return Status::Ok();
  }

 private:
  static constexpr int kMaxDepth = 256;

  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  bool Eof() const { return pos_ >= s_.size(); }
  char Peek() const { return s_[pos_]; }

  void SkipWs() {
    while (!Eof()) {
      const char c = s_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    const size_t n = std::strlen(word);
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  Status ParseValue(int depth, JsonValue* out) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (Eof()) return Fail("unexpected end of input");
    const char c = Peek();
    switch (c) {
      case '{':
        if (out != nullptr) out->kind = JsonValue::Kind::kObject;
        return ParseObject(depth, out);
      case '[':
        if (out != nullptr) out->kind = JsonValue::Kind::kArray;
        return ParseArray(depth, out);
      case '"':
        if (out != nullptr) out->kind = JsonValue::Kind::kString;
        return ParseString(out != nullptr ? &out->string_value : nullptr);
      case 't':
        if (!Literal("true")) return Fail("bad literal");
        if (out != nullptr) {
          out->kind = JsonValue::Kind::kBool;
          out->bool_value = true;
        }
        return Status::Ok();
      case 'f':
        if (!Literal("false")) return Fail("bad literal");
        if (out != nullptr) {
          out->kind = JsonValue::Kind::kBool;
          out->bool_value = false;
        }
        return Status::Ok();
      case 'n':
        if (!Literal("null")) return Fail("bad literal");
        if (out != nullptr) out->kind = JsonValue::Kind::kNull;
        return Status::Ok();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(int depth, JsonValue* out) {
    ++pos_;  // '{'
    SkipWs();
    if (!Eof() && Peek() == '}') {
      ++pos_;
      return Status::Ok();
    }
    for (;;) {
      SkipWs();
      if (Eof() || Peek() != '"') return Fail("expected object key");
      std::string key;
      Status st = ParseString(out != nullptr ? &key : nullptr);
      if (!st.ok()) return st;
      SkipWs();
      if (Eof() || Peek() != ':') return Fail("expected ':'");
      ++pos_;
      SkipWs();
      JsonValue* slot = nullptr;
      if (out != nullptr) {
        out->members.emplace_back(std::move(key), JsonValue());
        slot = &out->members.back().second;
      }
      st = ParseValue(depth + 1, slot);
      if (!st.ok()) return st;
      SkipWs();
      if (Eof()) return Fail("unterminated object");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return Status::Ok();
      }
      return Fail("expected ',' or '}'");
    }
  }

  Status ParseArray(int depth, JsonValue* out) {
    ++pos_;  // '['
    SkipWs();
    if (!Eof() && Peek() == ']') {
      ++pos_;
      return Status::Ok();
    }
    for (;;) {
      SkipWs();
      JsonValue* slot = nullptr;
      if (out != nullptr) {
        out->items.emplace_back();
        slot = &out->items.back();
      }
      Status st = ParseValue(depth + 1, slot);
      if (!st.ok()) return st;
      SkipWs();
      if (Eof()) return Fail("unterminated array");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return Status::Ok();
      }
      return Fail("expected ',' or ']'");
    }
  }

  // Appends a Unicode code point to `decoded` as UTF-8.
  static void AppendUtf8(std::string* decoded, uint32_t cp) {
    if (cp < 0x80) {
      decoded->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      decoded->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      decoded->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      decoded->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      decoded->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      decoded->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      decoded->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      decoded->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      decoded->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      decoded->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  // Parses the four hex digits after `\u`; pos_ is on the 'u' on entry and
  // on the last hex digit on success (the caller's ++pos_ advances past it).
  Status ParseHex4(uint32_t* cp) {
    *cp = 0;
    for (int i = 0; i < 4; ++i) {
      ++pos_;
      if (Eof() || !std::isxdigit(static_cast<unsigned char>(s_[pos_]))) {
        return Fail("bad \\u escape");
      }
      const char h = s_[pos_];
      uint32_t digit;
      if (h >= '0' && h <= '9') {
        digit = h - '0';
      } else {
        digit = (std::tolower(static_cast<unsigned char>(h)) - 'a') + 10;
      }
      *cp = (*cp << 4) | digit;
    }
    return Status::Ok();
  }

  Status ParseString(std::string* decoded) {
    ++pos_;  // '"'
    while (!Eof()) {
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::Ok();
      }
      if (c < 0x20) return Fail("raw control character in string");
      if (c == '\\') {
        ++pos_;
        if (Eof()) return Fail("unterminated escape");
        const char e = s_[pos_];
        if (e == 'u') {
          uint32_t cp;
          Status st = ParseHex4(&cp);
          if (!st.ok()) return st;
          // Combine a UTF-16 surrogate pair when the low half follows.
          if (cp >= 0xD800 && cp <= 0xDBFF && pos_ + 2 < s_.size() &&
              s_[pos_ + 1] == '\\' && s_[pos_ + 2] == 'u') {
            pos_ += 2;
            uint32_t lo;
            st = ParseHex4(&lo);
            if (!st.ok()) return st;
            if (lo >= 0xDC00 && lo <= 0xDFFF) {
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              return Fail("unpaired surrogate");
            }
          }
          if (decoded != nullptr) AppendUtf8(decoded, cp);
        } else if (std::strchr("\"\\/bfnrt", e) != nullptr) {
          if (decoded != nullptr) {
            switch (e) {
              case 'b':
                decoded->push_back('\b');
                break;
              case 'f':
                decoded->push_back('\f');
                break;
              case 'n':
                decoded->push_back('\n');
                break;
              case 'r':
                decoded->push_back('\r');
                break;
              case 't':
                decoded->push_back('\t');
                break;
              default:
                decoded->push_back(e);
            }
          }
        } else {
          return Fail("bad escape character");
        }
      } else if (decoded != nullptr) {
        decoded->push_back(static_cast<char>(c));
      }
      ++pos_;
    }
    return Fail("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (!Eof() && Peek() == '-') ++pos_;
    if (Eof() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Fail("expected digit");
    }
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (!Eof() && Peek() == '.') {
      ++pos_;
      if (Eof() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Fail("expected fraction digits");
      }
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (!Eof() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!Eof() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (Eof() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Fail("expected exponent digits");
      }
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (pos_ <= start) return Fail("bad number");
    if (out != nullptr) {
      out->kind = JsonValue::Kind::kNumber;
      // The grammar above only accepts strtod-compatible spellings.
      out->number_value = std::strtod(s_.substr(start, pos_ - start).c_str(),
                                      nullptr);
    }
    return Status::Ok();
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

Status ValidateJson(const std::string& text) {
  return Parser(text).Run(nullptr);
}

Result<JsonValue> ParseJson(const std::string& text) {
  JsonValue root;
  Status st = Parser(text).Run(&root);
  if (!st.ok()) return st;
  return root;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::NumberOr(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->number_value : fallback;
}

std::string JsonValue::StringOr(const std::string& key,
                                const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->string_value : fallback;
}

void AppendJsonKey(std::string* out, const std::string& key) {
  AppendJsonString(out, key);
  *out += ':';
}

void AppendJsonNumber(std::string* out, double v) {
  if (!std::isfinite(v)) {
    *out += "null";
    return;
  }
  char buf[40];
  // %.17g round-trips doubles; integers print without exponent noise.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  *out += buf;
}

void AppendJsonString(std::string* out, const std::string& s) {
  *out += '"';
  for (char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      *out += '\\';
      *out += c;
    } else if (u < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", u);
      *out += buf;
    } else {
      *out += c;
    }
  }
  *out += '"';
}

}  // namespace obs
}  // namespace mocograd
