#include "obs/json.h"

#include <cctype>
#include <cstring>

namespace mocograd {
namespace obs {

namespace {

// Recursive-descent JSON syntax checker. Tracks position for error
// reporting; depth is bounded to reject pathological nesting.
class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Status Run() {
    SkipWs();
    Status st = ParseValue(0);
    if (!st.ok()) return st;
    SkipWs();
    if (pos_ != s_.size()) return Fail("trailing characters");
    return Status::Ok();
  }

 private:
  static constexpr int kMaxDepth = 256;

  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  bool Eof() const { return pos_ >= s_.size(); }
  char Peek() const { return s_[pos_]; }

  void SkipWs() {
    while (!Eof()) {
      const char c = s_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    const size_t n = std::strlen(word);
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  Status ParseValue(int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (Eof()) return Fail("unexpected end of input");
    const char c = Peek();
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"':
        return ParseString();
      case 't':
        return Literal("true") ? Status::Ok() : Fail("bad literal");
      case 'f':
        return Literal("false") ? Status::Ok() : Fail("bad literal");
      case 'n':
        return Literal("null") ? Status::Ok() : Fail("bad literal");
      default:
        return ParseNumber();
    }
  }

  Status ParseObject(int depth) {
    ++pos_;  // '{'
    SkipWs();
    if (!Eof() && Peek() == '}') {
      ++pos_;
      return Status::Ok();
    }
    for (;;) {
      SkipWs();
      if (Eof() || Peek() != '"') return Fail("expected object key");
      Status st = ParseString();
      if (!st.ok()) return st;
      SkipWs();
      if (Eof() || Peek() != ':') return Fail("expected ':'");
      ++pos_;
      SkipWs();
      st = ParseValue(depth + 1);
      if (!st.ok()) return st;
      SkipWs();
      if (Eof()) return Fail("unterminated object");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return Status::Ok();
      }
      return Fail("expected ',' or '}'");
    }
  }

  Status ParseArray(int depth) {
    ++pos_;  // '['
    SkipWs();
    if (!Eof() && Peek() == ']') {
      ++pos_;
      return Status::Ok();
    }
    for (;;) {
      SkipWs();
      Status st = ParseValue(depth + 1);
      if (!st.ok()) return st;
      SkipWs();
      if (Eof()) return Fail("unterminated array");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return Status::Ok();
      }
      return Fail("expected ',' or ']'");
    }
  }

  Status ParseString() {
    ++pos_;  // '"'
    while (!Eof()) {
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::Ok();
      }
      if (c < 0x20) return Fail("raw control character in string");
      if (c == '\\') {
        ++pos_;
        if (Eof()) return Fail("unterminated escape");
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (Eof() || !std::isxdigit(static_cast<unsigned char>(s_[pos_]))) {
              return Fail("bad \\u escape");
            }
          }
        } else if (std::strchr("\"\\/bfnrt", e) == nullptr) {
          return Fail("bad escape character");
        }
      }
      ++pos_;
    }
    return Fail("unterminated string");
  }

  Status ParseNumber() {
    const size_t start = pos_;
    if (!Eof() && Peek() == '-') ++pos_;
    if (Eof() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Fail("expected digit");
    }
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (!Eof() && Peek() == '.') {
      ++pos_;
      if (Eof() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Fail("expected fraction digits");
      }
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (!Eof() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!Eof() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (Eof() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Fail("expected exponent digits");
      }
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start ? Status::Ok() : Fail("bad number");
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

Status ValidateJson(const std::string& text) { return Parser(text).Run(); }

}  // namespace obs
}  // namespace mocograd
