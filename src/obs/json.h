#ifndef MOCOGRAD_OBS_JSON_H_
#define MOCOGRAD_OBS_JSON_H_

#include <string>

#include "base/status.h"

namespace mocograd {
namespace obs {

/// Validates that `text` is one complete, syntactically well-formed JSON
/// value (RFC 8259 grammar: objects, arrays, strings with escapes, numbers,
/// true/false/null). Used by the trace/metrics tests and the
/// `validate_json` tool to check emitted artifacts without a JSON library
/// dependency. Returns InvalidArgument with a byte offset on failure.
Status ValidateJson(const std::string& text);

}  // namespace obs
}  // namespace mocograd

#endif  // MOCOGRAD_OBS_JSON_H_
