#ifndef MOCOGRAD_OBS_JSON_H_
#define MOCOGRAD_OBS_JSON_H_

#include <string>
#include <utility>
#include <vector>

#include "base/status.h"

namespace mocograd {
namespace obs {

/// Validates that `text` is one complete, syntactically well-formed JSON
/// value (RFC 8259 grammar: objects, arrays, strings with escapes, numbers,
/// true/false/null). Used by the trace/metrics tests and the
/// `validate_json` tool to check emitted artifacts without a JSON library
/// dependency. Returns InvalidArgument with a byte offset on failure.
Status ValidateJson(const std::string& text);

/// A parsed JSON value (small DOM). Objects keep their members in source
/// order; duplicate keys are kept as-is (Find returns the first). Numbers
/// are doubles — JSONL telemetry/metrics records only carry doubles and
/// step indices, both of which round-trip.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> items;                           // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup: nullptr when absent or this is not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Number of the named member, or `fallback` when absent / not a number.
  double NumberOr(const std::string& key, double fallback) const;

  /// String of the named member, or `fallback` when absent / not a string.
  std::string StringOr(const std::string& key,
                       const std::string& fallback) const;
};

/// Parses one complete JSON value into a DOM (same grammar as
/// ValidateJson). `\u` escapes decode to UTF-8; surrogate pairs are
/// combined. Returns InvalidArgument with a byte offset on failure.
Result<JsonValue> ParseJson(const std::string& text);

/// --- Serialization helpers shared by the JSONL writers ---------------------
/// (metrics sink, telemetry sink, tools). All append to `out`.

/// Appends `"key":` with `"` and `\` escaped.
void AppendJsonKey(std::string* out, const std::string& key);

/// Appends a number; non-finite values become `null` (RFC 8259 has no
/// NaN/Inf), integers print without exponent noise, and `%.17g` round-trips
/// everything else.
void AppendJsonNumber(std::string* out, double v);

/// Appends a quoted string with control characters, `"` and `\` escaped.
void AppendJsonString(std::string* out, const std::string& s);

}  // namespace obs
}  // namespace mocograd

#endif  // MOCOGRAD_OBS_JSON_H_
