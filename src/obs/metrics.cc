#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <memory>

#include "base/check.h"
#include "base/mutex.h"
#include "obs/json.h"

namespace mocograd {
namespace obs {

namespace internal {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace internal

void SetMetricsEnabled(bool enabled) {
  internal::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

namespace {

double BitsToDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

uint64_t DoubleToBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// CAS-loop accumulate: std::atomic<double>::fetch_add is C++20-library
// dependent, so spell it portably.
void AtomicAddDouble(std::atomic<uint64_t>* bits, double delta) {
  uint64_t cur = bits->load(std::memory_order_relaxed);
  for (;;) {
    const uint64_t next = DoubleToBits(BitsToDouble(cur) + delta);
    if (bits->compare_exchange_weak(cur, next, std::memory_order_relaxed)) {
      return;
    }
  }
}

void AtomicMinDouble(std::atomic<uint64_t>* bits, double v) {
  uint64_t cur = bits->load(std::memory_order_relaxed);
  while (v < BitsToDouble(cur)) {
    if (bits->compare_exchange_weak(cur, DoubleToBits(v),
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

void AtomicMaxDouble(std::atomic<uint64_t>* bits, double v) {
  uint64_t cur = bits->load(std::memory_order_relaxed);
  while (v > BitsToDouble(cur)) {
    if (bits->compare_exchange_weak(cur, DoubleToBits(v),
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace

double Histogram::BucketBound(int i) {
  return kFirstBound * std::ldexp(1.0, i);  // kFirstBound * 2^i
}

void Histogram::Record(double v) {
  if (!(v >= 0.0)) v = 0.0;  // clamp negatives and NaN to the first bucket
  int b = 0;
  while (b < kNumBuckets - 1 && v > BucketBound(b)) ++b;
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_bits_, v);
  AtomicMinDouble(&min_bits_, v);
  AtomicMaxDouble(&max_bits_, v);
}

double Histogram::sum() const {
  return BitsToDouble(sum_bits_.load(std::memory_order_relaxed));
}

double Histogram::min() const {
  return count() == 0
             ? 0.0
             : BitsToDouble(min_bits_.load(std::memory_order_relaxed));
}

double Histogram::max() const {
  return count() == 0
             ? 0.0
             : BitsToDouble(max_bits_.load(std::memory_order_relaxed));
}

double Histogram::Percentile(double p) const {
  const int64_t n = count();
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the requested percentile (1-based, nearest-rank).
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(p * static_cast<double>(n))));
  int64_t cum = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    const int64_t in_bucket = buckets_[b].load(std::memory_order_relaxed);
    if (cum + in_bucket >= rank) {
      const double lo = b == 0 ? 0.0 : BucketBound(b - 1);
      const double hi =
          b == kNumBuckets - 1 ? std::max(max(), BucketBound(b - 1)) : BucketBound(b);
      // Linear interpolation of the rank inside the bucket.
      const double frac =
          in_bucket == 0
              ? 1.0
              : static_cast<double>(rank - cum) / static_cast<double>(in_bucket);
      const double est = lo + frac * (hi - lo);
      return std::clamp(est, min(), max());
    }
    cum += in_bucket;
  }
  return max();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
  min_bits_.store(0x7FF0000000000000ull, std::memory_order_relaxed);
  max_bits_.store(0xFFF0000000000000ull, std::memory_order_relaxed);
}

struct MetricsRegistry::Impl {
  Mutex mu;
  // The maps' *structure* is guarded; the pointed-to instruments are
  // lock-free atomics updated without mu (that is the whole point of
  // handing out stable Counter*/Histogram* pointers).
  std::map<std::string, std::unique_ptr<Counter>> counters MG_GUARDED_BY(mu);
  std::map<std::string, std::unique_ptr<Gauge>> gauges MG_GUARDED_BY(mu);
  std::map<std::string, std::unique_ptr<Histogram>> histograms
      MG_GUARDED_BY(mu);
};

MetricsRegistry::Impl& MetricsRegistry::impl() {
  static Impl* impl = new Impl;
  return *impl;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  Impl& i = impl();
  MutexLock lk(&i.mu);
  MG_CHECK(i.gauges.count(name) == 0 && i.histograms.count(name) == 0,
           "metric registered with a different kind: ", name);
  auto& slot = i.counters[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  Impl& i = impl();
  MutexLock lk(&i.mu);
  MG_CHECK(i.counters.count(name) == 0 && i.histograms.count(name) == 0,
           "metric registered with a different kind: ", name);
  auto& slot = i.gauges[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  Impl& i = impl();
  MutexLock lk(&i.mu);
  MG_CHECK(i.counters.count(name) == 0 && i.gauges.count(name) == 0,
           "metric registered with a different kind: ", name);
  auto& slot = i.histograms[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::vector<MetricSample> MetricsRegistry::Snapshot() {
  Impl& i = impl();
  MutexLock lk(&i.mu);
  std::vector<MetricSample> out;
  out.reserve(i.counters.size() + i.gauges.size() + 4 * i.histograms.size());
  for (const auto& [name, c] : i.counters) {
    out.push_back({name, static_cast<double>(c->value())});
  }
  for (const auto& [name, g] : i.gauges) {
    out.push_back({name, g->value()});
  }
  for (const auto& [name, h] : i.histograms) {
    out.push_back({name + ".count", static_cast<double>(h->count())});
    out.push_back({name + ".sum", h->sum()});
    out.push_back({name + ".p50", h->Percentile(0.50)});
    out.push_back({name + ".p99", h->Percentile(0.99)});
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

std::vector<MetricSample> MetricsRegistry::SnapshotCounters() {
  Impl& i = impl();
  MutexLock lk(&i.mu);
  std::vector<MetricSample> out;
  out.reserve(i.counters.size());
  for (const auto& [name, c] : i.counters) {
    out.push_back({name, static_cast<double>(c->value())});
  }
  return out;  // std::map iteration is already name-sorted
}

std::vector<HistogramSample> MetricsRegistry::SnapshotHistograms() {
  Impl& i = impl();
  MutexLock lk(&i.mu);
  std::vector<HistogramSample> out;
  out.reserve(i.histograms.size());
  for (const auto& [name, h] : i.histograms) {
    out.push_back({name, h->count(), h->sum(), h->Percentile(0.50),
                   h->Percentile(0.99)});
  }
  return out;  // std::map iteration is already name-sorted
}

void MetricsRegistry::ResetAll() {
  Impl& i = impl();
  MutexLock lk(&i.mu);
  for (auto& [name, c] : i.counters) c->Reset();
  for (auto& [name, g] : i.gauges) g->Reset();
  for (auto& [name, h] : i.histograms) h->Reset();
}

StepMetricsSink::StepMetricsSink(const std::string& path) {
  if (path == "-") {
    file_ = stdout;
  } else {
    // Append: one process often runs several training loops (baselines +
    // methods), each opening its own sink on the same MOCOGRAD_METRICS path.
    file_ = std::fopen(path.c_str(), "a");
    owns_file_ = true;
  }
  if (file_ == nullptr) {
    status_ = Status::Internal("cannot open metrics sink: " + path);
    return;
  }
  SetMetricsEnabled(true);
  prev_counters_ = MetricsRegistry::Global().SnapshotCounters();
}

StepMetricsSink::~StepMetricsSink() {
  if (file_ != nullptr && owns_file_) std::fclose(file_);
}

void StepMetricsSink::WriteStep(
    int64_t step, const std::vector<std::pair<std::string, double>>& fields) {
  if (file_ == nullptr) return;
  std::string line = "{\"step\":";
  AppendJsonNumber(&line, static_cast<double>(step));
  for (const auto& [key, value] : fields) {
    line += ',';
    AppendJsonKey(&line, key);
    AppendJsonNumber(&line, value);
  }
  // Counter deltas since the previous WriteStep (first call: since the sink
  // opened). Snapshot() is sorted by name, so the two lists merge linearly.
  const std::vector<MetricSample> now =
      MetricsRegistry::Global().SnapshotCounters();
  line += ",\"counters\":{";
  bool first = true;
  size_t pi = 0;
  for (const MetricSample& cur : now) {
    double prev = 0.0;
    while (pi < prev_counters_.size() && prev_counters_[pi].name < cur.name) {
      ++pi;
    }
    if (pi < prev_counters_.size() && prev_counters_[pi].name == cur.name) {
      prev = prev_counters_[pi].value;
    }
    const double delta = cur.value - prev;
    if (delta == 0.0) continue;
    if (!first) line += ',';
    first = false;
    AppendJsonKey(&line, cur.name);
    AppendJsonNumber(&line, delta);
  }
  line += '}';
  // Per-kernel latency summary from the span histograms (gemm /
  // parallel_for / per-task backward), cumulative since process start:
  // percentiles are distribution properties, so unlike counters they are
  // reported as-is rather than diffed.
  const std::vector<HistogramSample> hists =
      MetricsRegistry::Global().SnapshotHistograms();
  bool any = false;
  for (const HistogramSample& h : hists) {
    if (h.count == 0) continue;
    line += any ? "," : ",\"kernels\":{";
    any = true;
    AppendJsonKey(&line, h.name);
    line += "{\"count\":";
    AppendJsonNumber(&line, static_cast<double>(h.count));
    line += ",\"p50\":";
    AppendJsonNumber(&line, h.p50);
    line += ",\"p99\":";
    AppendJsonNumber(&line, h.p99);
    line += '}';
  }
  if (any) line += '}';
  line += "}\n";
  prev_counters_ = now;
  std::fwrite(line.data(), 1, line.size(), file_);
}

}  // namespace obs
}  // namespace mocograd
