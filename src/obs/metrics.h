#ifndef MOCOGRAD_OBS_METRICS_H_
#define MOCOGRAD_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "base/status.h"

namespace mocograd {
namespace obs {

namespace internal {
/// Hot-path kill switch: kernels guard their counter updates behind one
/// relaxed load of this flag, so metrics cost nothing when nobody reads
/// them. Off by default; flipped on by MOCOGRAD_METRICS=<path> or
/// SetMetricsEnabled(true).
extern std::atomic<bool> g_metrics_enabled;
}  // namespace internal

inline bool MetricsEnabled() {
  return internal::g_metrics_enabled.load(std::memory_order_relaxed);
}
void SetMetricsEnabled(bool enabled);

/// Monotonic counter (relaxed atomic adds; merged values only — no
/// cross-metric ordering is implied).
class Counter {
 public:
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) { bits_.store(Encode(v), std::memory_order_relaxed); }
  double value() const {
    return Decode(bits_.load(std::memory_order_relaxed));
  }
  void Reset() { Set(0.0); }

 private:
  static uint64_t Encode(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    return bits;
  }
  static double Decode(uint64_t bits) {
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::atomic<uint64_t> bits_{0};
};

/// Exponential-bucket histogram for non-negative samples (durations,
/// sizes). Buckets double from kFirstBound upward; Percentile() linearly
/// interpolates inside the bucket containing the requested rank and clamps
/// to the observed min/max, so exact answers are only guaranteed at the
/// bucket resolution (factor-of-2).
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;
  static constexpr double kFirstBound = 1e-9;

  void Record(double v);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  double min() const;
  double max() const;
  /// p in [0, 1]; returns 0 when empty.
  double Percentile(double p) const;
  void Reset();

  /// Upper bound of bucket `i` (the last bucket is unbounded).
  static double BucketBound(int i);

 private:
  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};      // double, CAS-accumulated
  std::atomic<uint64_t> min_bits_{0x7FF0000000000000ull};   // +inf
  std::atomic<uint64_t> max_bits_{0xFFF0000000000000ull};   // -inf
};

/// One sampled metric value in a registry snapshot.
struct MetricSample {
  std::string name;  // histograms expand to name.count / name.sum / name.p50
  double value = 0.0;
};

/// One histogram's summary in a registry snapshot (latency tracking of hot
/// kernels: gemm / parallel_for / per-task backward, all in seconds).
struct HistogramSample {
  std::string name;
  int64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
};

/// Process-wide name → metric registry. Get*() interns the metric on first
/// use (callers cache the returned pointer in a function-local static, so
/// the registry mutex is off the hot path); pointers stay valid for the
/// process lifetime. Re-requesting a name with a different kind aborts.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// All current values, sorted by name (histograms expanded to
  /// .count/.sum/.p50/.p99).
  std::vector<MetricSample> Snapshot();

  /// Counters only, sorted by name — the delta-friendly subset the JSONL
  /// sink diffs between steps.
  std::vector<MetricSample> SnapshotCounters();

  /// Histograms only, sorted by name, each summarized as
  /// count/sum/p50/p99 — what the JSONL sink reports per kernel.
  std::vector<HistogramSample> SnapshotHistograms();

  /// Zeroes every registered metric (registration is kept).
  void ResetAll();

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl& impl();
};

/// Adds `n` to the named counter iff metrics are enabled. `name` must be a
/// literal; the counter pointer is resolved once per call site.
#define MG_METRIC_COUNT(name, n)                                         \
  do {                                                                   \
    if (::mocograd::obs::MetricsEnabled()) {                             \
      static ::mocograd::obs::Counter* mg_metric_counter =               \
          ::mocograd::obs::MetricsRegistry::Global().GetCounter(name);   \
      mg_metric_counter->Add(n);                                         \
    }                                                                    \
  } while (0)

/// RAII duration sampler: records the scope's wall-clock seconds into a
/// histogram on destruction; a null histogram makes both ends no-ops.
/// MG_METRIC_TIME_SCOPE below is the intended API.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist) : hist_(hist) {
    if (hist_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (hist_ == nullptr) return;
    hist_->Record(std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_{};
};

#define MG_METRIC_CONCAT_INNER(a, b) a##b
#define MG_METRIC_CONCAT(a, b) MG_METRIC_CONCAT_INNER(a, b)

/// Feeds the enclosing scope's duration (seconds) into the named histogram
/// iff metrics are enabled; one relaxed atomic load otherwise. `name` must
/// be a literal; the histogram pointer is resolved once per call site.
#define MG_METRIC_TIME_SCOPE(name)                                         \
  ::mocograd::obs::ScopedTimer MG_METRIC_CONCAT(mg_metric_timer_,          \
                                                __LINE__)(                 \
      ::mocograd::obs::MetricsEnabled()                                    \
          ? []() -> ::mocograd::obs::Histogram* {                          \
              static ::mocograd::obs::Histogram* mg_hist =                 \
                  ::mocograd::obs::MetricsRegistry::Global().GetHistogram( \
                      name);                                               \
              return mg_hist;                                              \
            }()                                                            \
          : nullptr)

/// Per-step JSONL sink: one JSON object per WriteStep call, holding the
/// caller's fields plus the delta of every registered counter since the
/// previous step (key "counters") and, when span histograms are populated,
/// a "kernels" object with cumulative count/p50/p99 per histogram (the
/// percentile of a duration distribution has no meaningful delta). Opening
/// a sink enables metrics collection for the process.
class StepMetricsSink {
 public:
  /// Opens `path` for appending ("-" writes to stdout). Check ok() before
  /// use.
  explicit StepMetricsSink(const std::string& path);
  ~StepMetricsSink();

  StepMetricsSink(const StepMetricsSink&) = delete;
  StepMetricsSink& operator=(const StepMetricsSink&) = delete;

  bool ok() const { return file_ != nullptr; }
  const Status& status() const { return status_; }

  /// Appends one JSONL record: {"step":N,<fields...>,"counters":{...}}.
  void WriteStep(int64_t step,
                 const std::vector<std::pair<std::string, double>>& fields);

 private:
  std::FILE* file_ = nullptr;
  bool owns_file_ = false;
  Status status_;
  std::vector<MetricSample> prev_counters_;
};

}  // namespace obs
}  // namespace mocograd

#endif  // MOCOGRAD_OBS_METRICS_H_
