#ifndef MOCOGRAD_OBS_PHASE_PROFILE_H_
#define MOCOGRAD_OBS_PHASE_PROFILE_H_

#include <string>
#include <utility>
#include <vector>

#include "base/stopwatch.h"
#include "obs/trace.h"

namespace mocograd {
namespace obs {

/// Named wall-clock buckets an instrumented routine fills for its caller —
/// the per-phase attribution channel between aggregators and the trainer /
/// benches ("gram", "solver", "combine", ...). Small and value-typed: a
/// handful of entries, merged by name in insertion order.
class PhaseProfile {
 public:
  void Add(const std::string& name, double seconds) {
    for (auto& e : entries_) {
      if (e.first == name) {
        e.second += seconds;
        return;
      }
    }
    entries_.emplace_back(name, seconds);
  }

  /// Accumulated seconds for `name` (0 when never recorded).
  double Get(const std::string& name) const {
    for (const auto& e : entries_) {
      if (e.first == name) return e.second;
    }
    return 0.0;
  }

  double Total() const {
    double s = 0.0;
    for (const auto& e : entries_) s += e.second;
    return s;
  }

  void Merge(const PhaseProfile& other) {
    for (const auto& e : other.entries_) Add(e.first, e.second);
  }

  void ScaleAll(double s) {
    for (auto& e : entries_) e.second *= s;
  }

  void Clear() { entries_.clear(); }
  bool empty() const { return entries_.empty(); }

  const std::vector<std::pair<std::string, double>>& entries() const {
    return entries_;
  }

 private:
  std::vector<std::pair<std::string, double>> entries_;
};

/// RAII phase timer: opens a trace span named `name` and, when `profile` is
/// non-null, adds the elapsed wall-clock to that bucket on destruction.
/// Null-profile cost is the span's (one relaxed load when tracing is off)
/// plus one steady-clock read pair.
class ScopedPhase {
 public:
  ScopedPhase(PhaseProfile* profile, const char* name)
      : profile_(profile), name_(name), trace_(name) {}
  ~ScopedPhase() {
    if (profile_ != nullptr) profile_->Add(name_, watch_.ElapsedSeconds());
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseProfile* profile_;
  const char* name_;
  TraceScope trace_;
  Stopwatch watch_;
};

}  // namespace obs
}  // namespace mocograd

#endif  // MOCOGRAD_OBS_PHASE_PROFILE_H_
