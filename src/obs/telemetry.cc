#include "obs/telemetry.h"

#include <cmath>
#include <limits>

#include "base/check.h"
#include "base/simd.h"
#include "obs/json.h"

namespace mocograd {
namespace obs {

namespace {
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kNormEps = 1e-12;
}  // namespace

void AggregatorTrace::Begin(const std::string& method, int num_tasks) {
  MG_CHECK_GE(num_tasks, 0);
  method_ = method;
  num_tasks_ = num_tasks;
  known_cosines_ = 0;
  pairs_.clear();
  // clear() keeps capacity, so RecordPair/MarkActed stop allocating once the
  // vector reaches its high-water mark; the reserve makes the common k-task
  // sweep (≤ k² pair decisions) allocation-free from the first step.
  pairs_.reserve(static_cast<size_t>(num_tasks) * num_tasks);
  cosines_.assign(static_cast<size_t>(num_tasks) * num_tasks, kNan);
  for (int i = 0; i < num_tasks; ++i) {
    cosines_[static_cast<size_t>(i) * num_tasks + i] = 1.0;
  }
  solver_weights_.clear();
  grad_norms_.clear();
  momentum_norms_.clear();
  stats_.clear();
  solver_iterations_ = 0;
}

// MG_COLD_PATH: pair recording is amortized — Begin reserves k² slots and
// clear() retains capacity, so aggregation-sweep callers stop hitting the
// allocator after the first step (the steady-state alloc tests pin this).
void AggregatorTrace::RecordPair(int i, int j, double cosine, double magnitude,
                                 bool acted) {
  pairs_.push_back({i, j, cosine, magnitude, acted});
}
// MG_COLD_PATH_END

// MG_COLD_PATH: same amortization argument as RecordPair — the fallback
// push_back reuses the capacity Begin reserved.
void AggregatorTrace::MarkActed(int i, int j, double magnitude) {
  // Scan from the back: the pair being upgraded was recorded this task's
  // sweep, i.e. among the most recent entries.
  for (auto it = pairs_.rbegin(); it != pairs_.rend(); ++it) {
    if (it->i == i && it->j == j) {
      it->acted = true;
      it->magnitude = magnitude;
      return;
    }
  }
  pairs_.push_back({i, j, kNan, magnitude, true});
}
// MG_COLD_PATH_END

void AggregatorTrace::SetCosine(int i, int j, double cosine) {
  MG_DCHECK(i >= 0 && i < num_tasks_ && j >= 0 && j < num_tasks_);
  if (i == j) return;
  const size_t a = static_cast<size_t>(i) * num_tasks_ + j;
  const size_t b = static_cast<size_t>(j) * num_tasks_ + i;
  if (std::isnan(cosines_[a])) ++known_cosines_;
  cosines_[a] = cosine;
  cosines_[b] = cosine;
}

void AggregatorTrace::SetCosinesFromGram(
    const std::vector<std::vector<double>>& gram) {
  const int k = static_cast<int>(gram.size());
  MG_CHECK_EQ(k, num_tasks_, "Gram size must match Begin's task count");
  for (int i = 0; i < k; ++i) {
    const double ni = std::sqrt(std::max(gram[i][i], 0.0));
    for (int j = i + 1; j < k; ++j) {
      const double nj = std::sqrt(std::max(gram[j][j], 0.0));
      const double denom = ni * nj;
      SetCosine(i, j, denom < kNormEps ? 0.0 : gram[i][j] / denom);
    }
  }
}

double AggregatorTrace::cosine(int i, int j) const {
  MG_CHECK(i >= 0 && i < num_tasks_ && j >= 0 && j < num_tasks_);
  if (i == j) return 1.0;
  return cosines_[static_cast<size_t>(i) * num_tasks_ + j];
}

void AggregatorTrace::AddStat(const std::string& name, double value) {
  stats_.emplace_back(name, value);
}

TelemetrySink::TelemetrySink(const std::string& path, int every)
    : every_(every < 1 ? 1 : every) {
  if (path == "-") {
    file_ = stdout;
  } else {
    // Append, like StepMetricsSink: one process often runs several training
    // loops (baselines + methods) against the same MOCOGRAD_TELEMETRY path.
    file_ = std::fopen(path.c_str(), "a");
    owns_file_ = true;
  }
  if (file_ == nullptr) {
    status_ = Status::Internal("cannot open telemetry sink: " + path);
  }
}

TelemetrySink::~TelemetrySink() {
  if (file_ != nullptr && owns_file_) std::fclose(file_);
}

namespace {

void AppendDoubleArray(std::string* out, const char* key,
                       const std::vector<double>& v) {
  *out += ',';
  AppendJsonKey(out, key);
  *out += '[';
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) *out += ',';
    AppendJsonNumber(out, v[i]);
  }
  *out += ']';
}

void AppendFloatArray(std::string* out, const char* key,
                      const std::vector<float>& v) {
  *out += ',';
  AppendJsonKey(out, key);
  *out += '[';
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) *out += ',';
    AppendJsonNumber(out, v[i]);
  }
  *out += ']';
}

}  // namespace

void TelemetrySink::WriteRecord(const TelemetryRecord& record) {
  if (file_ == nullptr) return;
  std::string line = "{\"type\":\"step\",\"step\":";
  AppendJsonNumber(&line, static_cast<double>(record.step));
  line += ',';
  AppendJsonKey(&line, "method");
  AppendJsonString(&line, record.method);
  // Active kernel tier of the runtime ISA dispatch (docs/SIMD.md): results
  // are bit-identical across tiers, but recording the tier lets a replay
  // diff rule the kernel path in or out immediately.
  line += ',';
  AppendJsonKey(&line, "isa_tier");
  AppendJsonString(&line, simd::ActiveBackendName());
  AppendFloatArray(&line, "losses", record.losses);
  if (!record.task_weights.empty()) {
    AppendFloatArray(&line, "task_weights", record.task_weights);
  }
  if (!record.grad_norms.empty()) {
    AppendDoubleArray(&line, "grad_norms", record.grad_norms);
  }
  if (!record.momentum_norms.empty()) {
    AppendDoubleArray(&line, "momentum_norms", record.momentum_norms);
  }
  line += ",\"gcd\":{\"mean\":";
  AppendJsonNumber(&line, record.mean_gcd);
  line += ",\"max\":";
  AppendJsonNumber(&line, record.max_gcd);
  line += ",\"conflicting_pairs\":";
  AppendJsonNumber(&line, record.num_conflicting_pairs);
  line += ",\"pairs\":";
  AppendJsonNumber(&line, record.num_pairs);
  line += '}';
  // Pairwise cosines as [i, j, cos] triplets over the known i<j cells (the
  // GCD heat-map's raw material; GCD = 1 − cos).
  if (!record.cosines.empty() && record.num_tasks > 1) {
    const int k = record.num_tasks;
    line += ",\"cosines\":[";
    bool first = true;
    for (int i = 0; i < k; ++i) {
      for (int j = i + 1; j < k; ++j) {
        const double c = record.cosines[static_cast<size_t>(i) * k + j];
        if (std::isnan(c)) continue;
        if (!first) line += ',';
        first = false;
        line += '[';
        AppendJsonNumber(&line, i);
        line += ',';
        AppendJsonNumber(&line, j);
        line += ',';
        AppendJsonNumber(&line, c);
        line += ']';
      }
    }
    line += ']';
  }
  if (record.trace != nullptr) {
    const AggregatorTrace& t = *record.trace;
    if (!t.pairs().empty()) {
      line += ",\"decisions\":[";
      bool first = true;
      for (const PairDecision& d : t.pairs()) {
        if (!first) line += ',';
        first = false;
        line += "{\"i\":";
        AppendJsonNumber(&line, d.i);
        line += ",\"j\":";
        AppendJsonNumber(&line, d.j);
        line += ",\"cos\":";
        AppendJsonNumber(&line, d.cosine);  // NaN → null (unknown)
        line += ",\"mag\":";
        AppendJsonNumber(&line, d.magnitude);
        line += ",\"acted\":";
        line += d.acted ? "true" : "false";
        line += '}';
      }
      line += ']';
    }
    if (t.solver_iterations() > 0 || !t.solver_weights().empty()) {
      line += ",\"solver\":{\"iterations\":";
      AppendJsonNumber(&line, static_cast<double>(t.solver_iterations()));
      if (!t.solver_weights().empty()) {
        AppendDoubleArray(&line, "weights", t.solver_weights());
      }
      line += '}';
    }
    if (!t.stats().empty()) {
      line += ",\"stats\":{";
      bool first = true;
      for (const auto& [name, value] : t.stats()) {
        if (!first) line += ',';
        first = false;
        AppendJsonKey(&line, name);
        AppendJsonNumber(&line, value);
      }
      line += '}';
    }
  }
  if (!record.phase_seconds.empty()) {
    line += ",\"phase\":{";
    bool first = true;
    for (const auto& [name, seconds] : record.phase_seconds) {
      if (!first) line += ',';
      first = false;
      AppendJsonKey(&line, name);
      AppendJsonNumber(&line, seconds);
    }
    line += '}';
  }
  line += "}\n";
  MutexLock lk(&mu_);
  std::fwrite(line.data(), 1, line.size(), file_);
}

void TelemetrySink::WriteWatchdogEvent(const std::string& method,
                                       const WatchdogEvent& ev) {
  if (file_ == nullptr) return;
  std::string line = "{\"type\":\"watchdog\",\"step\":";
  AppendJsonNumber(&line, static_cast<double>(ev.step));
  line += ',';
  AppendJsonKey(&line, "method");
  AppendJsonString(&line, method);
  line += ',';
  AppendJsonKey(&line, "kind");
  AppendJsonString(&line, ev.kind);
  line += ",\"task\":";
  AppendJsonNumber(&line, ev.task);
  line += ",\"value\":";
  AppendJsonNumber(&line, ev.value);  // NaN loss → null
  line += ",\"threshold\":";
  AppendJsonNumber(&line, ev.threshold);
  line += "}\n";
  MutexLock lk(&mu_);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);  // anomalies must survive a crashing run
}

}  // namespace obs
}  // namespace mocograd
