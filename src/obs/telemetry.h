#ifndef MOCOGRAD_OBS_TELEMETRY_H_
#define MOCOGRAD_OBS_TELEMETRY_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "base/mutex.h"
#include "base/status.h"

namespace mocograd {
namespace obs {

/// One ordered-pair decision reported by a gradient aggregator: task i was
/// inspected against task j, the pair conflicted, and (when `acted`) the
/// method applied a repair of the given magnitude — MoCoGrad's Eq. 8 scale
/// `λ·‖g_j‖/‖m_j‖`, PCGrad's projection coefficient, GradVac's α.
struct PairDecision {
  int i = 0;
  int j = 0;
  /// cos φ_ij observed at decision time. NaN when the method's test runs on
  /// an already-repaired g_i and a raw cosine is not available (PCGrad,
  /// GradVac project in sequence).
  double cosine = 0.0;
  /// Method-specific repair magnitude; 0 when the pair was only detected.
  double magnitude = 0.0;
  /// True when the method changed a gradient because of this pair.
  bool acted = false;
};

/// Per-step decision trace filled by GradientAggregator::Aggregate through
/// AggregationContext::trace. Observation-only by the same contract as
/// PhaseProfile: aggregators may record into it but must never change any
/// computed value, RNG draw, or accumulation order because of it. The
/// trainer re-uses a single instance across steps (Begin clears it), so
/// steady-state recording does not allocate.
class AggregatorTrace {
 public:
  /// Starts a fresh step: clears prior state, remembers the method name and
  /// task count, and marks every pairwise cosine unknown.
  void Begin(const std::string& method, int num_tasks);

  const std::string& method() const { return method_; }
  int num_tasks() const { return num_tasks_; }

  /// Records one inspected pair (see PairDecision). Pass NaN for `cosine`
  /// when the raw cosine is unknown.
  void RecordPair(int i, int j, double cosine, double magnitude, bool acted);

  /// Upgrades an already-recorded (i, j) pair to acted with the given
  /// magnitude — for methods that pick one partner after scanning all of
  /// them (MoCoGrad chooses the last conflicting partner in shuffle order).
  void MarkActed(int i, int j, double magnitude);

  const std::vector<PairDecision>& pairs() const { return pairs_; }

  /// Publishes the raw pairwise cosine cos φ_ij (both symmetric cells).
  /// Aggregators that already compute all pairwise dot products (MoCoGrad)
  /// or a Gram matrix (CAGrad, MGDA, Nash-MTL, IMTL, AlignedMTL) publish
  /// them here so the trainer's conflict statistics can skip their own
  /// O(K²·P) recomputation.
  void SetCosine(int i, int j, double cosine);

  /// Publishes every pairwise cosine from a K×K Gram matrix
  /// (cos = Gᵢⱼ/√(Gᵢᵢ·Gⱼⱼ); ~zero-norm rows get cosine 0 like
  /// core::CosineSimilarity).
  void SetCosinesFromGram(const std::vector<std::vector<double>>& gram);

  /// True when every i<j pairwise cosine has been published this step
  /// (trivially true for K < 2).
  bool cosines_complete() const {
    return known_cosines_ == num_tasks_ * (num_tasks_ - 1) / 2;
  }

  /// cos φ_ij; NaN when not published. i == j returns 1.
  double cosine(int i, int j) const;

  /// The full K×K cosine matrix (row-major, diagonal 1, NaN = unknown).
  const std::vector<double>& cosine_matrix() const { return cosines_; }

  /// Inner-solver iteration count (CAGrad PGD, Nash-MTL fixed point, ...);
  /// 0 when the method has no inner solver.
  void set_solver_iterations(int64_t n) { solver_iterations_ = n; }
  int64_t solver_iterations() const { return solver_iterations_; }

  /// Combination weights produced by a solver / weighting rule (per task).
  void set_solver_weights(const std::vector<double>& w) {
    solver_weights_ = w;
  }
  const std::vector<double>& solver_weights() const { return solver_weights_; }

  /// Per-task ‖g_i‖ / ‖m_i‖, published by methods that already computed
  /// them (MoCoGrad's norms phase). Empty when not published.
  void set_grad_norms(const std::vector<double>& v) { grad_norms_ = v; }
  const std::vector<double>& grad_norms() const { return grad_norms_; }
  void set_momentum_norms(const std::vector<double>& v) {
    momentum_norms_ = v;
  }
  const std::vector<double>& momentum_norms() const { return momentum_norms_; }

  /// Named scalar extras (e.g. "graddrop.keep_positive_frac").
  void AddStat(const std::string& name, double value);
  const std::vector<std::pair<std::string, double>>& stats() const {
    return stats_;
  }

 private:
  std::string method_;
  int num_tasks_ = 0;
  int known_cosines_ = 0;
  std::vector<PairDecision> pairs_;
  std::vector<double> cosines_;  // K×K, NaN = unknown
  std::vector<double> solver_weights_;
  std::vector<double> grad_norms_;
  std::vector<double> momentum_norms_;
  std::vector<std::pair<std::string, double>> stats_;
  int64_t solver_iterations_ = 0;
};

/// One anomaly detected by the training watchdog (src/mtl/watchdog.h).
struct WatchdogEvent {
  int64_t step = 0;
  /// "nonfinite_loss" | "nonfinite_grad" | "loss_divergence" |
  /// "grad_explosion".
  std::string kind;
  /// Task index the event concerns; -1 for the aggregated gradient.
  int task = -1;
  /// Observed value (the loss, the gradient norm, the non-finite count).
  double value = 0.0;
  /// Threshold the value breached (0 for non-finite sentinels).
  double threshold = 0.0;
};

/// Everything one sampled step contributes to the telemetry stream. The
/// trainer fills it from values it already has; fields left empty are
/// omitted from the serialized record.
struct TelemetryRecord {
  int64_t step = 0;
  std::string method;
  std::vector<float> losses;
  std::vector<double> grad_norms;
  std::vector<double> momentum_norms;
  std::vector<float> task_weights;
  /// K×K pairwise cosine matrix (row-major, NaN = unknown); empty when no
  /// source computed it this step.
  std::vector<double> cosines;
  int num_tasks = 0;
  /// Summary conflict statistics (mean/max GCD = 1 − cos over i<j pairs).
  double mean_gcd = 0.0;
  double max_gcd = 0.0;
  int num_conflicting_pairs = 0;
  int num_pairs = 0;
  /// Aggregator decision trace for this step (borrowed; may be null).
  const AggregatorTrace* trace = nullptr;
  /// Per-phase wall-clock seconds ({name, seconds}; empty = omitted).
  std::vector<std::pair<std::string, double>> phase_seconds;
};

/// Appends typed training-dynamics records as JSONL — the "conflict
/// observatory" channel (docs/OBSERVABILITY.md "Conflict telemetry").
/// Observation-only: writing a record never touches RNG streams or any
/// computed value. Two record shapes share the file, discriminated by a
/// "type" key: "step" (TelemetryRecord) and "watchdog" (WatchdogEvent).
class TelemetrySink {
 public:
  /// Opens `path` in append mode ("-" = stdout), like StepMetricsSink: one
  /// process may run several training loops against the same path. `every`
  /// is the sampling stride (record steps where step % every == 0).
  TelemetrySink(const std::string& path, int every);
  ~TelemetrySink();

  TelemetrySink(const TelemetrySink&) = delete;
  TelemetrySink& operator=(const TelemetrySink&) = delete;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  int every() const { return every_; }

  /// True when `step` falls on the sampling stride.
  bool ShouldSample(int64_t step) const { return step % every_ == 0; }

  /// Appends one {"type":"step",...} record.
  void WriteRecord(const TelemetryRecord& record);

  /// Appends one {"type":"watchdog",...} record (watchdog events are never
  /// sampled away — an anomaly on an unsampled step still gets a line).
  void WriteWatchdogEvent(const std::string& method, const WatchdogEvent& ev);

 private:
  std::FILE* file_ = nullptr;  // set once in the ctor, then read-only
  bool owns_file_ = false;
  Status status_;
  int every_ = 1;
  // Serializes the stream writes: each record is serialized into a local
  // buffer first, then appended with a single fwrite under mu_, so records
  // from concurrent writers (trainer + watchdog) never interleave bytes.
  Mutex mu_;
};

}  // namespace obs
}  // namespace mocograd

#endif  // MOCOGRAD_OBS_TELEMETRY_H_
