#include "obs/trace.h"

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "base/env.h"
#include "base/mutex.h"

namespace mocograd {
namespace obs {

namespace internal {
std::atomic<bool> g_trace_enabled{false};
}  // namespace internal

namespace {

using Clock = std::chrono::steady_clock;

// Session epoch: fixed at first use so span timestamps stay small enough
// for the microsecond doubles in the Chrome JSON.
Clock::time_point Epoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

// Escapes a span name for embedding in a JSON string literal.
void AppendJsonEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
}

}  // namespace

// Per-thread span buffer. Lives as a thread_local; on thread exit the
// collected spans retire into the session so short-lived threads (tests,
// future pool resizes) never lose data. The per-log mutex is uncontended in
// steady state — the owning thread appends, and only export/clear takes it
// from outside.
struct TraceSession::ThreadLog {
  Mutex mu;
  std::vector<TraceSpan> spans MG_GUARDED_BY(mu);
  int tid = 0;  // written once at registration, before the log is shared
};

namespace {

struct SessionState {
  Mutex mu;
  std::vector<std::shared_ptr<TraceSession::ThreadLog>> logs
      MG_GUARDED_BY(mu);
  std::vector<TraceSpan> retired MG_GUARDED_BY(mu);
  int next_tid MG_GUARDED_BY(mu) = 0;
};

SessionState& State() {
  static SessionState* state = new SessionState;
  return *state;
}

struct ThreadLogHandle {
  std::shared_ptr<TraceSession::ThreadLog> log;
  ~ThreadLogHandle() {
    if (log == nullptr) return;
    SessionState& state = State();
    MutexLock lk(&state.mu);
    MutexLock log_lk(&log->mu);
    state.retired.insert(state.retired.end(),
                         std::make_move_iterator(log->spans.begin()),
                         std::make_move_iterator(log->spans.end()));
    log->spans.clear();
  }
};

// MOCOGRAD_TRACE=<path>: start collecting at process init, export at exit.
// Runs from a static initializer in this TU; any binary linking a kernel
// that calls MG_TRACE_SCOPE pulls this object file in.
struct EnvTraceAutoStart {
  EnvTraceAutoStart() {
    static std::string path;  // static: read by the atexit hook
    path = GetEnvString("MOCOGRAD_TRACE");
    if (path.empty()) return;
    TraceSession::Global().Start();
    std::atexit([] {
      Status s = TraceSession::Global().ExportChromeTrace(path);
      if (!s.ok()) {
        std::fprintf(stderr, "MOCOGRAD_TRACE export failed: %s\n",
                     s.ToString().c_str());
      } else {
        std::fprintf(stderr, "MOCOGRAD_TRACE: wrote %zu spans to %s\n",
                     TraceSession::Global().span_count(), path.c_str());
      }
    });
  }
};
EnvTraceAutoStart g_env_trace_auto_start;

}  // namespace

TraceSession::TraceSession() { Epoch(); }

TraceSession& TraceSession::Global() {
  static TraceSession* session = new TraceSession;
  return *session;
}

int64_t TraceSession::NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              Epoch())
      .count();
}

TraceSession::ThreadLog& TraceSession::LogForThisThread() {
  thread_local ThreadLogHandle handle;
  if (handle.log == nullptr) {
    handle.log = std::make_shared<ThreadLog>();
    SessionState& state = State();
    MutexLock lk(&state.mu);
    handle.log->tid = state.next_tid++;
    state.logs.push_back(handle.log);
  }
  return *handle.log;
}

void TraceSession::Record(TraceSpan span) {
  ThreadLog& log = LogForThisThread();
  MutexLock lk(&log.mu);
  span.tid = log.tid;
  log.spans.push_back(std::move(span));
}

void TraceSession::Start() {
  Clear();
  internal::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void TraceSession::Stop() {
  internal::g_trace_enabled.store(false, std::memory_order_relaxed);
}

void TraceSession::Clear() {
  SessionState& state = State();
  MutexLock lk(&state.mu);
  state.retired.clear();
  for (auto& log : state.logs) {
    MutexLock log_lk(&log->mu);
    log->spans.clear();
  }
}

std::vector<TraceSpan> TraceSession::CollectSpans() {
  SessionState& state = State();
  MutexLock lk(&state.mu);
  std::vector<TraceSpan> out = state.retired;
  for (auto& log : state.logs) {
    MutexLock log_lk(&log->mu);
    out.insert(out.end(), log->spans.begin(), log->spans.end());
  }
  return out;
}

size_t TraceSession::span_count() {
  SessionState& state = State();
  MutexLock lk(&state.mu);
  size_t n = state.retired.size();
  for (auto& log : state.logs) {
    MutexLock log_lk(&log->mu);
    n += log->spans.size();
  }
  return n;
}

std::string TraceSession::ToChromeTraceJson() {
  const std::vector<TraceSpan> spans = CollectSpans();
  std::string out;
  out.reserve(spans.size() * 96 + 64);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[128];
  bool first = true;
  for (const TraceSpan& s : spans) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(&out, s.label());
    // Complete ("X") events with microsecond ts/dur, one pid, tid = the
    // session's per-thread id (0 is whichever thread traced first).
    std::snprintf(buf, sizeof(buf),
                  "\",\"cat\":\"mocograd\",\"ph\":\"X\",\"ts\":%.3f,"
                  "\"dur\":%.3f,\"pid\":1,\"tid\":%d}",
                  s.start_ns / 1e3, s.dur_ns / 1e3, s.tid);
    out += buf;
  }
  out += "]}";
  return out;
}

Status TraceSession::ExportChromeTrace(const std::string& path) {
  const std::string json = ToChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open trace file for writing: " + path);
  }
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (!ok) return Status::Internal("trace write failed: " + path);
  return Status::Ok();
}

}  // namespace obs
}  // namespace mocograd
