#ifndef MOCOGRAD_OBS_TRACE_H_
#define MOCOGRAD_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"

namespace mocograd {
namespace obs {

/// One completed span. `name` points at a static string literal for the
/// common `MG_TRACE_SCOPE("...")` case; spans opened with a runtime name
/// own it in `dyn_name` (and leave `name` null).
struct TraceSpan {
  const char* name = nullptr;
  std::string dyn_name;
  int64_t start_ns = 0;  // steady-clock, relative to the session start
  int64_t dur_ns = 0;
  int tid = 0;  // small per-thread id assigned on first span

  const char* label() const { return name != nullptr ? name : dyn_name.c_str(); }
};

namespace internal {
/// The one word the whole tracer costs when idle: every MG_TRACE_SCOPE
/// does exactly one relaxed load of this flag and nothing else.
extern std::atomic<bool> g_trace_enabled;
}  // namespace internal

/// True while a trace session is collecting spans.
inline bool TracingEnabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Process-wide span collector. Spans are appended to per-thread buffers
/// (one uncontended mutex each; the global registry mutex is only taken
/// when a new thread records its first span), so enabling tracing never
/// serializes pool workers against each other.
///
/// Tracing records wall-clock timestamps only — it never touches RNG
/// streams, accumulation order, or any computed value, so the library's
/// bit-identical determinism guarantee holds with tracing on or off.
///
/// Enable either programmatically (Start/Stop/ExportChromeTrace) or by
/// setting MOCOGRAD_TRACE=<path>: the session then starts at process init
/// and exports the Chrome trace-event JSON to <path> at exit.
class TraceSession {
 public:
  static TraceSession& Global();

  /// Clears previously collected spans and begins collecting.
  void Start();

  /// Stops collecting. Collected spans stay available for export.
  void Stop();

  /// Drops every collected span (does not change the enabled state).
  void Clear();

  /// Snapshot of all spans collected so far, in per-thread recording order.
  std::vector<TraceSpan> CollectSpans();

  /// Number of spans collected so far.
  size_t span_count();

  /// Chrome trace-event JSON ("traceEvents" array of complete events),
  /// loadable in Perfetto / chrome://tracing.
  std::string ToChromeTraceJson();

  /// Writes ToChromeTraceJson() to `path`.
  Status ExportChromeTrace(const std::string& path);

  /// Appends one completed span for the calling thread. Internal plumbing —
  /// TraceScope / MG_TRACE_SCOPE is the intended API.
  void Record(TraceSpan span);

  /// Nanoseconds since the session epoch (steady clock).
  static int64_t NowNs();

  /// Opaque per-thread span buffer (defined in trace.cc; public only so
  /// the implementation's registry can name it).
  struct ThreadLog;

 private:
  TraceSession();
  ThreadLog& LogForThisThread();
};

/// RAII scope: records a span from construction to destruction when tracing
/// is enabled; a single relaxed atomic load otherwise.
class TraceScope {
 public:
  explicit TraceScope(const char* static_name) {
    if (TracingEnabled()) {
      name_ = static_name;
      start_ns_ = TraceSession::NowNs();
    }
  }
  /// Runtime-named span (e.g. per-method labels). The name is copied.
  explicit TraceScope(std::string dyn_name) {
    if (TracingEnabled()) {
      dyn_name_ = std::move(dyn_name);
      active_dyn_ = true;
      start_ns_ = TraceSession::NowNs();
    }
  }
  ~TraceScope() {
    if (name_ == nullptr && !active_dyn_) return;
    TraceSpan span;
    span.name = name_;
    span.dyn_name = std::move(dyn_name_);
    span.start_ns = start_ns_;
    span.dur_ns = TraceSession::NowNs() - start_ns_;
    TraceSession::Global().Record(std::move(span));
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const char* name_ = nullptr;
  std::string dyn_name_;
  bool active_dyn_ = false;
  int64_t start_ns_ = 0;
};

#define MG_TRACE_CONCAT_INNER(a, b) a##b
#define MG_TRACE_CONCAT(a, b) MG_TRACE_CONCAT_INNER(a, b)

/// Opens a span covering the rest of the enclosing block. `name` must be a
/// string literal (it is stored by pointer); use
/// `TraceScope scope(std::string(...))` for runtime names.
#define MG_TRACE_SCOPE(name) \
  ::mocograd::obs::TraceScope MG_TRACE_CONCAT(mg_trace_scope_, __LINE__)(name)

}  // namespace obs
}  // namespace mocograd

#endif  // MOCOGRAD_OBS_TRACE_H_
