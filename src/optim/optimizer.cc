#include "optim/optimizer.h"

#include <cmath>

#include "base/check.h"
#include "base/simd.h"

namespace mocograd {
namespace optim {

namespace {

// Per-tensor update kernels, templated on the simd backend tag. Each runs 8
// lanes at a time with a scalar tail performing the identical per-element
// arithmetic (explicit MulAdd where lanes fuse), so updates are
// bit-identical across backends and the MOCOGRAD_SIMD knob. Weight decay
// folds into the gradient with a fused multiply-add, matching the lane op.
// MG_HOT_PATH — per-step parameter updates; no allocation.

template <typename B>
void SgdMomentumSpan(int64_t n, float lr, float momentum, float wd,
                     const float* g, float* v, float* x) {
  using F32 = typename B::F32;
  const F32 vlr = F32::Broadcast(lr);
  const F32 vmom = F32::Broadcast(momentum);
  const F32 vwd = F32::Broadcast(wd);
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const F32 xx = F32::Load(x + j);
    const F32 grad = MulAdd(vwd, xx, F32::Load(g + j));
    const F32 vel = MulAdd(vmom, F32::Load(v + j), grad);
    vel.Store(v + j);
    (xx - vlr * vel).Store(x + j);
  }
  for (; j < n; ++j) {
    const float grad = simd::MulAdd(wd, x[j], g[j]);
    v[j] = simd::MulAdd(momentum, v[j], grad);
    x[j] -= lr * v[j];
  }
}

template <typename B>
void SgdPlainSpan(int64_t n, float lr, float wd, const float* g, float* x) {
  using F32 = typename B::F32;
  const F32 vlr = F32::Broadcast(lr);
  const F32 vwd = F32::Broadcast(wd);
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const F32 xx = F32::Load(x + j);
    const F32 grad = MulAdd(vwd, xx, F32::Load(g + j));
    (xx - vlr * grad).Store(x + j);
  }
  for (; j < n; ++j) {
    const float grad = simd::MulAdd(wd, x[j], g[j]);
    x[j] -= lr * grad;
  }
}

template <typename B>
void AdamSpan(int64_t n, float lr, float b1, float b2, float eps, float wd,
              float bc1, float bc2, const float* g, float* m, float* v,
              float* x) {
  using F32 = typename B::F32;
  const F32 vlr = F32::Broadcast(lr);
  const F32 vb1 = F32::Broadcast(b1);
  const F32 vb2 = F32::Broadcast(b2);
  const F32 vomb1 = F32::Broadcast(1.0f - b1);
  const F32 vomb2 = F32::Broadcast(1.0f - b2);
  const F32 veps = F32::Broadcast(eps);
  const F32 vwd = F32::Broadcast(wd);
  const F32 vbc1 = F32::Broadcast(bc1);
  const F32 vbc2 = F32::Broadcast(bc2);
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const F32 xx = F32::Load(x + j);
    const F32 grad = MulAdd(vwd, xx, F32::Load(g + j));
    const F32 mm = MulAdd(vb1, F32::Load(m + j), vomb1 * grad);
    const F32 vv = MulAdd(vb2, F32::Load(v + j), vomb2 * (grad * grad));
    mm.Store(m + j);
    vv.Store(v + j);
    const F32 mhat = mm / vbc1;
    const F32 vhat = vv / vbc2;
    (xx - (vlr * mhat) / (Sqrt(vhat) + veps)).Store(x + j);
  }
  for (; j < n; ++j) {
    const float grad = simd::MulAdd(wd, x[j], g[j]);
    m[j] = simd::MulAdd(b1, m[j], (1.0f - b1) * grad);
    v[j] = simd::MulAdd(b2, v[j], (1.0f - b2) * (grad * grad));
    const float mhat = m[j] / bc1;
    const float vhat = v[j] / bc2;
    x[j] -= (lr * mhat) / (simd::Sqrt(vhat) + eps);
  }
}

template <typename B>
void AdagradSpan(int64_t n, float lr, float eps, const float* g, float* a,
                 float* x) {
  using F32 = typename B::F32;
  const F32 vlr = F32::Broadcast(lr);
  const F32 veps = F32::Broadcast(eps);
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const F32 gg = F32::Load(g + j);
    const F32 acc = MulAdd(gg, gg, F32::Load(a + j));
    acc.Store(a + j);
    (F32::Load(x + j) - (vlr * gg) / (Sqrt(acc) + veps)).Store(x + j);
  }
  for (; j < n; ++j) {
    a[j] = simd::MulAdd(g[j], g[j], a[j]);
    x[j] -= (lr * g[j]) / (simd::Sqrt(a[j]) + eps);
  }
}
// MG_HOT_PATH_END

}  // namespace

Optimizer::Optimizer(std::vector<Variable*> params, float lr)
    : params_(std::move(params)), lr_(lr) {
  for (Variable* p : params_) {
    MG_CHECK(p != nullptr && p->defined(), "null parameter in optimizer");
    MG_CHECK(p->requires_grad(), "optimizer over non-trainable parameter");
  }
}

void Optimizer::ZeroGrad() {
  for (Variable* p : params_) p->ZeroGrad();
}

Sgd::Sgd(std::vector<Variable*> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params), lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.resize(params_.size());
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable* p = params_[i];
    if (!p->has_grad()) continue;
    const Tensor& g = p->grad();
    Tensor& x = p->mutable_value();
    float* px = x.data();
    const float* pg = g.data();
    const int64_t n = x.NumElements();
    if (momentum_ > 0.0f) {
      if (!velocity_[i].defined()) velocity_[i] = Tensor::Zeros(x.shape());
      float* v = velocity_[i].data();
      simd::Dispatch([&](auto backend) {
        SgdMomentumSpan<decltype(backend)>(n, lr_, momentum_, weight_decay_,
                                           pg, v, px);
      });
    } else {
      simd::Dispatch([&](auto backend) {
        SgdPlainSpan<decltype(backend)>(n, lr_, weight_decay_, pg, px);
      });
    }
  }
}

Adam::Adam(std::vector<Variable*> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params), lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.resize(params_.size());
  v_.resize(params_.size());
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable* p = params_[i];
    if (!p->has_grad()) continue;
    const Tensor& g = p->grad();
    Tensor& x = p->mutable_value();
    if (!m_[i].defined()) {
      m_[i] = Tensor::Zeros(x.shape());
      v_[i] = Tensor::Zeros(x.shape());
    }
    float* px = x.data();
    const float* pg = g.data();
    float* pm = m_[i].data();
    float* pv = v_[i].data();
    const int64_t n = x.NumElements();
    simd::Dispatch([&](auto backend) {
      AdamSpan<decltype(backend)>(n, lr_, beta1_, beta2_, eps_, weight_decay_,
                                  bc1, bc2, pg, pm, pv, px);
    });
  }
}

Adagrad::Adagrad(std::vector<Variable*> params, float lr, float eps)
    : Optimizer(std::move(params), lr), eps_(eps) {
  accum_.resize(params_.size());
}

void Adagrad::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable* p = params_[i];
    if (!p->has_grad()) continue;
    const Tensor& g = p->grad();
    Tensor& x = p->mutable_value();
    if (!accum_[i].defined()) accum_[i] = Tensor::Zeros(x.shape());
    float* px = x.data();
    const float* pg = g.data();
    float* pa = accum_[i].data();
    const int64_t n = x.NumElements();
    simd::Dispatch([&](auto backend) {
      AdagradSpan<decltype(backend)>(n, lr_, eps_, pg, pa, px);
    });
  }
}

}  // namespace optim
}  // namespace mocograd
