#include "optim/optimizer.h"

#include <cmath>

#include "base/check.h"
#include "base/vec_ops.h"

namespace mocograd {
namespace optim {

// The per-tensor update spans (vec::SgdMomentum / SgdPlain / Adam /
// Adagrad) live in base/vec_kernels_impl.h, compiled once per kernel tier
// and routed through the runtime ISA dispatch; updates stay bit-identical
// across tiers and the MOCOGRAD_SIMD / MOCOGRAD_SIMD_ISA knobs.

Optimizer::Optimizer(std::vector<Variable*> params, float lr)
    : params_(std::move(params)), lr_(lr) {
  for (Variable* p : params_) {
    MG_CHECK(p != nullptr && p->defined(), "null parameter in optimizer");
    MG_CHECK(p->requires_grad(), "optimizer over non-trainable parameter");
  }
}

void Optimizer::ZeroGrad() {
  for (Variable* p : params_) p->ZeroGrad();
}

Sgd::Sgd(std::vector<Variable*> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params), lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.resize(params_.size());
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable* p = params_[i];
    if (!p->has_grad()) continue;
    const Tensor& g = p->grad();
    Tensor& x = p->mutable_value();
    float* px = x.data();
    const float* pg = g.data();
    const int64_t n = x.NumElements();
    if (momentum_ > 0.0f) {
      if (!velocity_[i].defined()) velocity_[i] = Tensor::Zeros(x.shape());
      float* v = velocity_[i].data();
      vec::SgdMomentum(n, lr_, momentum_, weight_decay_, pg, v, px);
    } else {
      vec::SgdPlain(n, lr_, weight_decay_, pg, px);
    }
  }
}

Adam::Adam(std::vector<Variable*> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params), lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.resize(params_.size());
  v_.resize(params_.size());
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable* p = params_[i];
    if (!p->has_grad()) continue;
    const Tensor& g = p->grad();
    Tensor& x = p->mutable_value();
    if (!m_[i].defined()) {
      m_[i] = Tensor::Zeros(x.shape());
      v_[i] = Tensor::Zeros(x.shape());
    }
    float* px = x.data();
    const float* pg = g.data();
    float* pm = m_[i].data();
    float* pv = v_[i].data();
    const int64_t n = x.NumElements();
    vec::Adam(n, lr_, beta1_, beta2_, eps_, weight_decay_, bc1, bc2, pg, pm,
              pv, px);
  }
}

Adagrad::Adagrad(std::vector<Variable*> params, float lr, float eps)
    : Optimizer(std::move(params), lr), eps_(eps) {
  accum_.resize(params_.size());
}

void Adagrad::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Variable* p = params_[i];
    if (!p->has_grad()) continue;
    const Tensor& g = p->grad();
    Tensor& x = p->mutable_value();
    if (!accum_[i].defined()) accum_[i] = Tensor::Zeros(x.shape());
    float* px = x.data();
    const float* pg = g.data();
    float* pa = accum_[i].data();
    const int64_t n = x.NumElements();
    vec::Adagrad(n, lr_, eps_, pg, pa, px);
  }
}

}  // namespace optim
}  // namespace mocograd
