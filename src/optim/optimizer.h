#ifndef MOCOGRAD_OPTIM_OPTIMIZER_H_
#define MOCOGRAD_OPTIM_OPTIMIZER_H_

#include <vector>

#include "autograd/variable.h"

namespace mocograd {
namespace optim {

using autograd::Variable;

/// First-order optimizer over a fixed parameter list. Step() consumes the
/// gradients currently stored on the parameters (the MTL trainer writes the
/// aggregated gradient there before stepping). Parameters that have no
/// gradient buffer yet are skipped.
class Optimizer {
 public:
  Optimizer(std::vector<Variable*> params, float lr);
  virtual ~Optimizer() = default;
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update from the stored gradients.
  virtual void Step() = 0;

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  float learning_rate() const { return lr_; }
  void set_learning_rate(float lr) { lr_ = lr; }

  const std::vector<Variable*>& params() const { return params_; }

 protected:
  std::vector<Variable*> params_;
  float lr_;
};

/// SGD with optional classical momentum and decoupled weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Variable*> params, float lr, float momentum = 0.0f,
      float weight_decay = 0.0f);

  void Step() override;

 private:
  float momentum_;
  float weight_decay_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba, 2015) with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Variable*> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void Step() override;

 private:
  float beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

/// Adagrad (Duchi et al., 2011).
class Adagrad : public Optimizer {
 public:
  Adagrad(std::vector<Variable*> params, float lr, float eps = 1e-10f);

  void Step() override;

 private:
  float eps_;
  std::vector<Tensor> accum_;
};

}  // namespace optim
}  // namespace mocograd

#endif  // MOCOGRAD_OPTIM_OPTIMIZER_H_
