#include "optim/scheduler.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"

namespace mocograd {
namespace optim {

LrScheduler::LrScheduler(Optimizer* optimizer)
    : optimizer_(optimizer), base_lr_(optimizer->learning_rate()) {
  MG_CHECK(optimizer != nullptr);
}

void LrScheduler::Step() {
  ++step_;
  optimizer_->set_learning_rate(LrAt(step_));
}

float LrScheduler::current_lr() const { return optimizer_->learning_rate(); }

StepDecayLr::StepDecayLr(Optimizer* optimizer, int64_t period, float gamma)
    : LrScheduler(optimizer), period_(period), gamma_(gamma) {
  MG_CHECK_GT(period, 0);
  MG_CHECK_GT(gamma, 0.0f);
}

float StepDecayLr::LrAt(int64_t t) const {
  return base_lr() * std::pow(gamma_, static_cast<float>(t / period_));
}

float InverseSqrtLr::LrAt(int64_t t) const {
  return base_lr() / std::sqrt(static_cast<float>(t + 1));
}

CosineLr::CosineLr(Optimizer* optimizer, int64_t total_steps, float min_lr)
    : LrScheduler(optimizer), total_steps_(total_steps), min_lr_(min_lr) {
  MG_CHECK_GT(total_steps, 0);
}

float CosineLr::LrAt(int64_t t) const {
  const float progress =
      std::min(1.0f, static_cast<float>(t) / static_cast<float>(total_steps_));
  return min_lr_ + 0.5f * (base_lr() - min_lr_) *
                       (1.0f + std::cos(progress * 3.14159265358979f));
}

}  // namespace optim
}  // namespace mocograd
