#ifndef MOCOGRAD_OPTIM_SCHEDULER_H_
#define MOCOGRAD_OPTIM_SCHEDULER_H_

#include <cstdint>

#include "optim/optimizer.h"

namespace mocograd {
namespace optim {

/// Learning-rate schedule over optimization steps. Call Step() once per
/// optimizer step; the scheduler writes the new rate into the optimizer.
class LrScheduler {
 public:
  explicit LrScheduler(Optimizer* optimizer);
  virtual ~LrScheduler() = default;

  /// Advances one step and updates the optimizer's learning rate.
  void Step();

  int64_t step_count() const { return step_; }
  float current_lr() const;

 protected:
  /// The learning rate to use at step t (0-based), given the base rate.
  virtual float LrAt(int64_t t) const = 0;

  float base_lr() const { return base_lr_; }

 private:
  Optimizer* optimizer_;
  float base_lr_;
  int64_t step_ = 0;
};

/// Constant rate (identity schedule), useful as a default.
class ConstantLr : public LrScheduler {
 public:
  using LrScheduler::LrScheduler;

 protected:
  float LrAt(int64_t) const override { return base_lr(); }
};

/// Multiplies the rate by `gamma` every `period` steps.
class StepDecayLr : public LrScheduler {
 public:
  StepDecayLr(Optimizer* optimizer, int64_t period, float gamma);

 protected:
  float LrAt(int64_t t) const override;

 private:
  int64_t period_;
  float gamma_;
};

/// μ_t = μ / √(t+1) — the schedule of the paper's Corollary 1, under which
/// MoCoGrad's average regret vanishes.
class InverseSqrtLr : public LrScheduler {
 public:
  using LrScheduler::LrScheduler;

 protected:
  float LrAt(int64_t t) const override;
};

/// Cosine decay from the base rate to `min_lr` over `total_steps`.
class CosineLr : public LrScheduler {
 public:
  CosineLr(Optimizer* optimizer, int64_t total_steps, float min_lr = 0.0f);

 protected:
  float LrAt(int64_t t) const override;

 private:
  int64_t total_steps_;
  float min_lr_;
};

}  // namespace optim
}  // namespace mocograd

#endif  // MOCOGRAD_OPTIM_SCHEDULER_H_
