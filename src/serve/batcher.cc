#include "serve/batcher.h"

#include <cstring>

#include "base/check.h"
#include "base/env.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mocograd {
namespace serve {

MicroBatcher::MicroBatcher(const ServeModel& model, BatcherOptions options)
    : model_(&model),
      session_(model),
      max_batch_(options.max_batch > 0
                     ? options.max_batch
                     : GetEnvInt("MOCOGRAD_SERVE_BATCH", 32, 1, 4096)),
      deadline_us_(options.deadline_us >= 0
                       ? options.deadline_us
                       : GetEnvInt("MOCOGRAD_SERVE_DEADLINE_US", 200, 0,
                                   10000000)),
      input_dim_(model.input_dim()) {
  for (int s = 0; s < 2; ++s) {
    staging_[s].resize(static_cast<size_t>(max_batch_) * input_dim_);
    slot_outputs_[s].resize(max_batch_, nullptr);
  }
  int64_t out_total = 0;
  for (int k = 0; k < model.num_tasks(); ++k) {
    out_total += model.task_output_dim(k);
  }
  out_slab_.resize(static_cast<size_t>(max_batch_) * out_total);
  out_ptrs_.reserve(model.num_tasks());
  int64_t off = 0;
  for (int k = 0; k < model.num_tasks(); ++k) {
    out_ptrs_.push_back(out_slab_.data() + off);
    off += max_batch_ * model.task_output_dim(k);
  }
}

void MicroBatcher::Infer(const float* row, float* const* outputs) {
  const Clock::time_point enqueue_time = Clock::now();
  MutexLock lock(&mu_);
  // The active slab is full only while its filler waits for a previous
  // flush to finish; the swap that starts our flush frees it.
  while (count_ == max_batch_) cv_.Wait(mu_);

  const int slot = count_++;
  const int64_t my_batch = next_batch_id_;
  if (slot == 0) batch_open_ = enqueue_time;
  std::memcpy(staging_[active_].data() + slot * input_dim_, row,
              static_cast<size_t>(input_dim_) * sizeof(float));
  slot_outputs_[active_][slot] = outputs;

  if (count_ == max_batch_) {
    // Size trigger: this requester executes the batch inline.
    FlushBatch(my_batch);
    return;
  }
  const Clock::time_point deadline =
      batch_open_ + std::chrono::microseconds(deadline_us_);
  while (executed_batch_id_ < my_batch) {
    if (cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout &&
        executed_batch_id_ < my_batch) {
      // Deadline trigger: force the flush (possibly after an in-flight
      // one drains).
      FlushBatch(my_batch);
      return;
    }
  }
}

void MicroBatcher::FlushBatch(int64_t batch_id) {
  while (executed_batch_id_ < batch_id) {
    if (!flushing_ && next_batch_id_ == batch_id && count_ > 0) {
      // Claim the flush: swap slabs so arrivals keep queueing while we
      // execute without the lock.
      flushing_ = true;
      const int slab = active_;
      const int n = count_;
      const Clock::time_point open = batch_open_;
      active_ ^= 1;
      count_ = 0;
      ++next_batch_id_;
      mu_.Unlock();
      cv_.NotifyAll();  // the freed slab unblocks space waiters
      ExecuteBatch(slab, n, open);
      mu_.Lock();
      executed_batch_id_ = batch_id;
      flushing_ = false;
      cv_.NotifyAll();
    } else {
      // Another requester owns the pending flush (or an earlier batch is
      // still executing) — wait for it.
      cv_.Wait(mu_);
    }
  }
}

void MicroBatcher::ExecuteBatch(int slab, int n, Clock::time_point open) {
  MG_TRACE_SCOPE("serve.flush");
  MG_METRIC_TIME_SCOPE("serve.flush");
  if (obs::MetricsEnabled()) {
    static obs::Histogram* batch_hist =
        obs::MetricsRegistry::Global().GetHistogram("serve.batch_size");
    static obs::Histogram* wait_hist =
        obs::MetricsRegistry::Global().GetHistogram("serve.queue_wait");
    batch_hist->Record(static_cast<double>(n));
    wait_hist->Record(
        std::chrono::duration<double>(Clock::now() - open).count());
  }
  MG_METRIC_COUNT("serve.rows", n);
  MG_METRIC_COUNT("serve.batches", 1);

  session_.Forward(staging_[slab].data(), n, out_ptrs_.data());
  // Scatter each requester's rows out of the batched per-task outputs.
  const int num_tasks = model_->num_tasks();
  for (int k = 0; k < num_tasks; ++k) {
    const int64_t w = model_->task_output_dim(k);
    const float* batch_out = out_ptrs_[k];
    for (int i = 0; i < n; ++i) {
      std::memcpy(slot_outputs_[slab][i][k], batch_out + i * w,
                  static_cast<size_t>(w) * sizeof(float));
    }
  }
  batches_.fetch_add(1, std::memory_order_relaxed);
  rows_.fetch_add(n, std::memory_order_relaxed);
}

}  // namespace serve
}  // namespace mocograd
