#ifndef MOCOGRAD_SERVE_BATCHER_H_
#define MOCOGRAD_SERVE_BATCHER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "base/mutex.h"
#include "serve/engine.h"

namespace mocograd {
namespace serve {

/// Micro-batcher knobs. Zero/negative fields fall back to the
/// MOCOGRAD_SERVE_BATCH / MOCOGRAD_SERVE_DEADLINE_US environment knobs
/// (README "Runtime knobs").
struct BatcherOptions {
  int max_batch = 0;     // rows per batch; <= 0: MOCOGRAD_SERVE_BATCH (32)
  int deadline_us = -1;  // flush deadline; < 0: MOCOGRAD_SERVE_DEADLINE_US
                         // (200); 0 flushes every request immediately
};

/// Coalesces concurrent single-row queries into GEMM-friendly batches.
///
/// A batch flushes when it reaches `max_batch` rows or when `deadline_us`
/// has elapsed since its first row arrived — production dynamic batching.
/// Execution is cooperative: the requester that fills the batch (or the
/// first requester whose deadline fires) runs the batched forward inline
/// and scatters results to every waiting requester; the forward's GEMMs
/// fan out over the global ThreadPool as usual. This keeps the batcher
/// deadlock-free at any pool size (no Submit'd task ever blocks on another
/// task, honoring the ThreadPool::Submit contract) and keeps the request
/// path heap-allocation-free in steady state: the two staging slabs and the
/// scatter tables are preallocated at construction, and the forward runs on
/// arena scratch (docs/SERVING.md "The micro-batcher").
///
/// Bit-exact contract: a batched forward of N queued rows equals N
/// single-row InferenceSession::Forward calls bitwise whenever
/// PlanIsBatchInvariant(plan) holds — enforced by
/// tests/serve/serve_batcher_determinism_test.cc across pool sizes and
/// SIMD backends.
class MicroBatcher {
 public:
  explicit MicroBatcher(const ServeModel& model, BatcherOptions options = {});

  /// Blocking single-row inference: queues `row` (input_dim floats), waits
  /// for its batch to execute, and writes task k's prediction to
  /// outputs[k] (task_output_dim(k) floats). Safe to call from any number
  /// of threads; both pointers must stay valid until return.
  void Infer(const float* row, float* const* outputs);

  /// Cumulative counters (batch occupancy = rows / batches).
  int64_t batches_executed() const {
    return batches_.load(std::memory_order_relaxed);
  }
  int64_t rows_executed() const {
    return rows_.load(std::memory_order_relaxed);
  }

  int max_batch() const { return max_batch_; }
  int64_t deadline_us() const { return deadline_us_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// Blocks until batch `batch_id` has executed, claiming and running the
  /// flush inline when it is this thread's turn. Enters and exits with mu_
  /// held; drops it hand-over-hand around the ExecuteBatch call.
  void FlushBatch(int64_t batch_id) MG_REQUIRES(mu_);

  /// Runs the batched forward for `n` rows of staging slab `slab` and
  /// scatters per-task rows to the queued requesters. Called without the
  /// lock; serialized by flushing_.
  void ExecuteBatch(int slab, int n, Clock::time_point open);

  const ServeModel* model_;
  InferenceSession session_;
  int max_batch_;
  int64_t deadline_us_;
  int64_t input_dim_;

  Mutex mu_;
  CondVar cv_;
  // Double-buffered pending batch: enqueuers fill staging_[active_] under
  // the lock while a flush may be executing the other slab without it. The
  // slabs deliberately carry no MG_GUARDED_BY: the inactive slab is read
  // lock-free by the (flushing_-serialized) executor, a ping-pong protocol
  // beyond what guarded_by expresses — its safety is covered by the TSan leg
  // and serve_batcher_determinism_test.
  std::vector<float> staging_[2];
  std::vector<float* const*> slot_outputs_[2];
  int active_ MG_GUARDED_BY(mu_) = 0;
  int count_ MG_GUARDED_BY(mu_) = 0;        // rows in the active slab
  int64_t next_batch_id_ MG_GUARDED_BY(mu_) = 0;  // batch currently filling
  int64_t executed_batch_id_ MG_GUARDED_BY(mu_) = -1;
  bool flushing_ MG_GUARDED_BY(mu_) = false;
  // Arrival of the active batch's first row.
  Clock::time_point batch_open_ MG_GUARDED_BY(mu_){};

  // Per-task batched outputs the forward writes before the scatter; one set
  // suffices because flushes are serialized.
  std::vector<float> out_slab_;
  std::vector<float*> out_ptrs_;

  std::atomic<int64_t> batches_{0};
  std::atomic<int64_t> rows_{0};
};

}  // namespace serve
}  // namespace mocograd

#endif  // MOCOGRAD_SERVE_BATCHER_H_
