#include "serve/engine.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>

#include "base/bf16.h"
#include "base/env.h"
#include "base/scratch.h"
#include "base/simd.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/gemm.h"

namespace mocograd {
namespace serve {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

constexpr uint32_t kCheckpointMagic = 0x4d4f4347;  // "MOCG", nn/serialize.cc

bool ReadU32(std::FILE* f, uint32_t* v) {
  return std::fread(v, sizeof(*v), 1, f) == 1;
}

std::string ShapeString(const ParamSpec& spec) {
  std::string s = "[";
  s += std::to_string(spec.rows);
  if (spec.cols != 0) {
    s += ", ";
    s += std::to_string(spec.cols);
  }
  s += "]";
  return s;
}

std::vector<int64_t> ParamOffsets(const ServePlan& plan) {
  std::vector<int64_t> offsets;
  offsets.reserve(plan.params.size());
  int64_t off = 0;
  for (const ParamSpec& p : plan.params) {
    offsets.push_back(off);
    off += p.NumElements();
  }
  return offsets;
}

}  // namespace

ServePrecision DefaultServePrecision() {
  return GetEnvString("MOCOGRAD_SERVE_PRECISION", "fp32") == "bf16"
             ? ServePrecision::kBf16
             : ServePrecision::kFp32;
}

const char* ServePrecisionName(ServePrecision p) {
  return p == ServePrecision::kBf16 ? "bf16" : "fp32";
}

ServeModel::ServeModel(ServePlan plan, std::vector<float> arena,
                       std::vector<int64_t> offsets, ServePrecision precision)
    : plan_(std::move(plan)),
      arena_(std::move(arena)),
      offsets_(std::move(offsets)),
      precision_(precision) {
  if (precision_ == ServePrecision::kBf16) {
    // One-time storage rounding (round-to-nearest-even); the f32 copy is
    // released so a bf16 model holds half the weight bytes.
    arena_bf16_.resize(arena_.size());
    for (size_t i = 0; i < arena_.size(); ++i) {
      arena_bf16_[i] = Bf16FromF32(arena_[i]);
    }
    arena_.clear();
    arena_.shrink_to_fit();
  }
}

Result<ServeModel> ServeModel::FromModule(const ServePlan& plan,
                                          nn::Module& module,
                                          ServePrecision precision) {
  const auto named = module.NamedParameters();
  if (named.size() != plan.params.size()) {
    return Status::InvalidArgument(
        "parameter count mismatch: module has " +
        std::to_string(named.size()) + ", plan expects " +
        std::to_string(plan.params.size()));
  }
  std::vector<float> arena(plan.TotalParamElements());
  std::vector<int64_t> offsets = ParamOffsets(plan);
  for (size_t i = 0; i < named.size(); ++i) {
    const ParamSpec& spec = plan.params[i];
    const auto& [name, var] = named[i];
    if (name != spec.name) {
      return Status::InvalidArgument("parameter name mismatch at index " +
                                     std::to_string(i) + ": module has \"" +
                                     name + "\", plan expects \"" + spec.name +
                                     "\"");
    }
    const Tensor& t = var->value();
    const bool shape_ok =
        spec.cols == 0
            ? (t.Rank() == 1 && t.Dim(0) == spec.rows)
            : (t.Rank() == 2 && t.Dim(0) == spec.rows && t.Dim(1) == spec.cols);
    if (!shape_ok) {
      return Status::InvalidArgument("shape mismatch for \"" + spec.name +
                                     "\": plan expects " + ShapeString(spec));
    }
    std::memcpy(arena.data() + offsets[i], t.data(),
                static_cast<size_t>(t.NumElements()) * sizeof(float));
  }
  return ServeModel(plan, std::move(arena), std::move(offsets), precision);
}

Result<ServeModel> ServeModel::FromCheckpoint(const ServePlan& plan,
                                              const std::string& path,
                                              ServePrecision precision) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::NotFound("cannot open: " + path);

  uint32_t magic = 0, count = 0;
  if (!ReadU32(f.get(), &magic) || magic != kCheckpointMagic) {
    return Status::InvalidArgument("not a mocograd checkpoint: " + path);
  }
  if (!ReadU32(f.get(), &count)) {
    return Status::InvalidArgument("truncated checkpoint: " + path);
  }
  if (count != plan.params.size()) {
    return Status::InvalidArgument(
        "parameter count mismatch: checkpoint has " + std::to_string(count) +
        ", plan expects " + std::to_string(plan.params.size()));
  }
  std::vector<float> arena(plan.TotalParamElements());
  std::vector<int64_t> offsets = ParamOffsets(plan);
  for (size_t i = 0; i < plan.params.size(); ++i) {
    const ParamSpec& spec = plan.params[i];
    uint32_t rank = 0;
    if (!ReadU32(f.get(), &rank)) {
      return Status::InvalidArgument("truncated checkpoint: " + path);
    }
    std::vector<int64_t> dims(rank);
    for (uint32_t d = 0; d < rank; ++d) {
      uint32_t v = 0;
      if (!ReadU32(f.get(), &v)) {
        return Status::InvalidArgument("truncated checkpoint: " + path);
      }
      dims[d] = v;
    }
    const bool shape_ok =
        spec.cols == 0
            ? (rank == 1 && dims[0] == spec.rows)
            : (rank == 2 && dims[0] == spec.rows && dims[1] == spec.cols);
    if (!shape_ok) {
      return Status::InvalidArgument("shape mismatch for \"" + spec.name +
                                     "\": plan expects " + ShapeString(spec));
    }
    const size_t n = static_cast<size_t>(spec.NumElements());
    if (std::fread(arena.data() + offsets[i], sizeof(float), n, f.get()) !=
        n) {
      return Status::InvalidArgument("truncated checkpoint: " + path);
    }
  }
  return ServeModel(plan, std::move(arena), std::move(offsets), precision);
}

InferenceSession::InferenceSession(const ServeModel& model) : model_(&model) {
  const ServePlan& plan = model.plan();
  // Buffer 0 is the caller's input, read in place — the scratch slab only
  // holds buffers 1..N. That is sound because no op ever writes buffer 0,
  // which the plan builders guarantee and this loop enforces.
  buffer_prefix_.reserve(plan.buffer_widths.size());
  buffer_prefix_.push_back(0);
  for (size_t b = 1; b < plan.buffer_widths.size(); ++b) {
    buffer_prefix_.push_back(total_width_);
    total_width_ += plan.buffer_widths[b];
  }
  for (const PlanOp& op : plan.ops) {
    const bool writes_input =
        ((op.kind == PlanOp::Kind::kRelu || op.kind == PlanOp::Kind::kSoftmax)
             ? op.in
             : op.out) == 0 &&
        op.kind != PlanOp::Kind::kCopyOut;
    MG_CHECK(!writes_input, "plan op writes the input buffer");
  }
}

void InferenceSession::Forward(const float* input, int64_t rows,
                               float* const* outputs) const {
  MG_CHECK_GT(rows, 0);
  MG_TRACE_SCOPE("serve.forward");
  MG_METRIC_TIME_SCOPE("serve.forward");
  const ServePlan& plan = model_->plan();
  ScratchScope scope;
  float* slab = scope.AllocFloats(static_cast<size_t>(rows * total_width_));
  // Buffer b >= 1 holds its [rows, width_b] activations contiguously at
  // rows * prefix_b; buffer 0 aliases the caller's input, which no op
  // writes (checked in the constructor) — the cast only unifies the
  // return type.
  const auto buf = [&](int b) {
    return b == 0 ? const_cast<float*>(input)
                  : slab + rows * buffer_prefix_[b];
  };

  // MG_HOT_PATH — the request path: no tape, no heap, no input copy.
  // Activations come from the scratch slab above; Gemm's packing buffers
  // come from its own nested ScratchScope on the same arena. Every kernel
  // below mirrors its training-time counterpart in tensor/ops.cc
  // bit-for-bit (same summation order and rounding) — see docs/SERVING.md
  // "Bit-exactness".
  for (const PlanOp& op : plan.ops) {
    switch (op.kind) {
      case PlanOp::Kind::kLinear: {
        const int64_t k = plan.buffer_widths[op.in];
        const int64_t n = plan.buffer_widths[op.out];
        float* out = buf(op.out);
        if (model_->precision() == ServePrecision::kBf16) {
          // Reduced-precision serving (docs/SERVING.md): weights stored
          // bf16, widened to f32 on load (exact), f32 accumulation. The
          // same per-element chains as the fp32 branch below — including
          // the n == 1 scalar path and the batch-invariance of
          // GemmBf16B's m == 1 / m >= 2 pair — so a served row's bits
          // never depend on its batch-mates; only the weights' one-time
          // storage rounding differs from fp32 serving.
          const uint16_t* w = model_->param_data_bf16(op.weight);
          if (n == 1) {
            const float* src = buf(op.in);
            for (int64_t i = 0; i < rows; ++i) {
              float acc = 0.0f;
              const float* row = src + i * k;
              for (int64_t p = 0; p < k; ++p) {
                acc = simd::MulAdd(row[p], F32FromBf16(w[p]), acc);
              }
              out[i] = acc;
            }
          } else {
            GemmBf16B(rows, n, k, buf(op.in), k, w, n, out, n);
          }
          if (op.bias >= 0) {
            const uint16_t* bias = model_->param_data_bf16(op.bias);
            for (int64_t i = 0; i < rows; ++i) {
              float* row = out + i * n;
              for (int64_t j = 0; j < n; ++j) row[j] += F32FromBf16(bias[j]);
            }
          }
          break;
        }
        if (n == 1) {
          // Per-row ascending-k scalar FMA chain — exactly what a lone
          // rows=1 Gemm does for this shape (GemvRowAxpy's n=1 tail). A
          // batched Gemm would dispatch to GemvColDot, whose lane-blocked
          // dot reduces in a different order: the one shape in our plans
          // where Gemm's result depends on the row count, and the serving
          // contract (a row's bits never depend on its batch-mates) forbids
          // that. See docs/SERVING.md "Bit-exactness".
          const float* src = buf(op.in);
          const float* w = model_->param_data(op.weight);
          for (int64_t i = 0; i < rows; ++i) {
            float acc = 0.0f;
            const float* row = src + i * k;
            for (int64_t p = 0; p < k; ++p) acc = simd::MulAdd(row[p], w[p], acc);
            out[i] = acc;
          }
        } else {
          Gemm(false, false, rows, n, k, 1.0f, buf(op.in), k,
               model_->param_data(op.weight), n, 0.0f, out, n);
        }
        if (op.bias >= 0) {
          // Broadcast bias add, scalar: addition is exactly rounded, so the
          // result matches the training path's vectorized Add.
          const float* bias = model_->param_data(op.bias);
          for (int64_t i = 0; i < rows; ++i) {
            float* row = out + i * n;
            for (int64_t j = 0; j < n; ++j) row[j] += bias[j];
          }
        }
        break;
      }
      case PlanOp::Kind::kRelu: {
        // (x > 0) ? x : 0 — simd::Max(x, 0) semantics: NaN and -0 map to +0.
        const int64_t w = plan.buffer_widths[op.in];
        float* p = buf(op.in);
        const int64_t n = rows * w;
        for (int64_t i = 0; i < n; ++i) p[i] = p[i] > 0.0f ? p[i] : 0.0f;
        break;
      }
      case PlanOp::Kind::kSoftmax: {
        // Per-row mirror of tensor SoftmaxRows: max-shift, exp, sequential
        // double-precision denominator, multiply by float(1/denom).
        const int64_t c = plan.buffer_widths[op.in];
        float* p = buf(op.in);
        for (int64_t i = 0; i < rows; ++i) {
          float* row = p + i * c;
          const float mx = *std::max_element(row, row + c);
          double denom = 0.0;
          for (int64_t j = 0; j < c; ++j) {
            row[j] = std::exp(row[j] - mx);
            denom += row[j];
          }
          const float inv = static_cast<float>(1.0 / denom);
          for (int64_t j = 0; j < c; ++j) row[j] *= inv;
        }
        break;
      }
      case PlanOp::Kind::kGateMulAcc: {
        // contrib = z * gate[:, col] rounded, then acc += contrib rounded —
        // two roundings, exactly like the training graph's Mul then Add
        // (an FMA here would produce different bits).
        const int64_t w = plan.buffer_widths[op.in];
        const int64_t gw = plan.buffer_widths[op.gate];
        const float* src = buf(op.in);
        const float* gate = buf(op.gate);
        float* acc = buf(op.out);
        for (int64_t i = 0; i < rows; ++i) {
          const float g = gate[i * gw + op.gate_col];
          const float* zrow = src + i * w;
          float* arow = acc + i * w;
          if (op.first) {
            for (int64_t j = 0; j < w; ++j) arow[j] = zrow[j] * g;
          } else {
            for (int64_t j = 0; j < w; ++j) {
              const float contrib = zrow[j] * g;
              arow[j] = arow[j] + contrib;
            }
          }
        }
        break;
      }
      case PlanOp::Kind::kCopyOut: {
        const int64_t w = plan.buffer_widths[op.in];
        std::memcpy(outputs[op.task], buf(op.in),
                    static_cast<size_t>(rows * w) * sizeof(float));
        break;
      }
    }
  }
  // MG_HOT_PATH_END
}

}  // namespace serve
}  // namespace mocograd
