#ifndef MOCOGRAD_SERVE_ENGINE_H_
#define MOCOGRAD_SERVE_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "nn/module.h"
#include "serve/plan.h"

namespace mocograd {
namespace serve {

/// A frozen model ready to serve: a ServePlan plus every parameter packed
/// into one immutable contiguous float arena (cache-friendly sequential
/// layout, no Variable / autograd machinery, no shared_ptr indirection per
/// layer). Snapshot a trained model with FromModule, or load a
/// nn/serialize checkpoint directly with FromCheckpoint — both validate
/// the parameter names/shapes against the plan before packing
/// (docs/SERVING.md).
class ServeModel {
 public:
  /// Packs the live parameters of `module` (typically the trained
  /// MtlModel the plan was built for). Names and shapes from
  /// Module::NamedParameters() must match the plan's ParamSpecs.
  static Result<ServeModel> FromModule(const ServePlan& plan,
                                       nn::Module& module);

  /// Reads a checkpoint written by nn::SaveParameters straight into the
  /// arena — no module instantiation, no RNG, no tape. Shapes must match
  /// the plan's ParamSpecs in order.
  static Result<ServeModel> FromCheckpoint(const ServePlan& plan,
                                           const std::string& path);

  const ServePlan& plan() const { return plan_; }
  int64_t input_dim() const { return plan_.input_dim; }
  int num_tasks() const { return plan_.num_tasks(); }
  int64_t task_output_dim(int k) const { return plan_.task_output_dims[k]; }

  /// Start of parameter `idx` in the arena.
  const float* param_data(int idx) const {
    return arena_.data() + offsets_[idx];
  }

 private:
  ServeModel(ServePlan plan, std::vector<float> arena,
             std::vector<int64_t> offsets)
      : plan_(std::move(plan)),
        arena_(std::move(arena)),
        offsets_(std::move(offsets)) {}

  ServePlan plan_;
  std::vector<float> arena_;
  std::vector<int64_t> offsets_;
};

/// Executes a ServeModel's plan over batches of feature rows. Construction
/// precomputes the activation-buffer layout ("build once"); Forward is the
/// run-many hot path: activations live in the calling thread's
/// ScratchArena, so after warm-up a forward performs zero heap allocations
/// regardless of batch size (the steady-state assertion in
/// tests/serve/serve_engine_test.cc). Forward is safe to call concurrently
/// from several threads — all mutable state is per-call scratch.
class InferenceSession {
 public:
  explicit InferenceSession(const ServeModel& model);

  /// Runs the plan on `input` ([rows, input_dim], row-major) and writes
  /// task k's predictions to outputs[k] ([rows, task_output_dim(k)]).
  /// Two bitwise guarantees (docs/SERVING.md "Bit-exactness"): a rows == 1
  /// call reproduces the training model's single-row Forward exactly, and
  /// a batched call reproduces `rows` independent single-row calls exactly
  /// whenever PlanIsBatchInvariant(plan) holds — so every served row gets
  /// the training model's single-row bits at any batch size. The input is
  /// read in place (never copied or written).
  void Forward(const float* input, int64_t rows, float* const* outputs) const;

  const ServeModel& model() const { return *model_; }

 private:
  const ServeModel* model_;
  std::vector<int64_t> buffer_prefix_;  // per-row float offset of each buffer
  int64_t total_width_ = 0;
};

}  // namespace serve
}  // namespace mocograd

#endif  // MOCOGRAD_SERVE_ENGINE_H_
