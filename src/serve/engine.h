#ifndef MOCOGRAD_SERVE_ENGINE_H_
#define MOCOGRAD_SERVE_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "nn/module.h"
#include "serve/plan.h"

namespace mocograd {
namespace serve {

/// Storage precision of a ServeModel's parameter arena (docs/SERVING.md
/// "Reduced precision"). kFp32 is bit-exact against training; kBf16 stores
/// weights as bf16 (round-to-nearest-even truncation of the f32 pattern,
/// half the bytes and memory traffic) and widens them to f32 on load —
/// activations and accumulation stay f32, so the only deviation from fp32
/// serving is each weight's one-time storage rounding. Training is never
/// affected: precision is a property of the frozen snapshot only.
enum class ServePrecision { kFp32, kBf16 };

/// Precision selected by MOCOGRAD_SERVE_PRECISION ("fp32" | "bf16";
/// default, unset, and unrecognized values all mean fp32).
ServePrecision DefaultServePrecision();

/// "fp32" or "bf16" (telemetry / bench labels).
const char* ServePrecisionName(ServePrecision p);

/// A frozen model ready to serve: a ServePlan plus every parameter packed
/// into one immutable contiguous float arena (cache-friendly sequential
/// layout, no Variable / autograd machinery, no shared_ptr indirection per
/// layer). Snapshot a trained model with FromModule, or load a
/// nn/serialize checkpoint directly with FromCheckpoint — both validate
/// the parameter names/shapes against the plan before packing
/// (docs/SERVING.md).
class ServeModel {
 public:
  /// Packs the live parameters of `module` (typically the trained
  /// MtlModel the plan was built for). Names and shapes from
  /// Module::NamedParameters() must match the plan's ParamSpecs.
  /// Validation always runs at full precision; a kBf16 snapshot converts
  /// the arena after packing.
  static Result<ServeModel> FromModule(
      const ServePlan& plan, nn::Module& module,
      ServePrecision precision = DefaultServePrecision());

  /// Reads a checkpoint written by nn::SaveParameters straight into the
  /// arena — no module instantiation, no RNG, no tape. Shapes must match
  /// the plan's ParamSpecs in order.
  static Result<ServeModel> FromCheckpoint(
      const ServePlan& plan, const std::string& path,
      ServePrecision precision = DefaultServePrecision());

  const ServePlan& plan() const { return plan_; }
  int64_t input_dim() const { return plan_.input_dim; }
  int num_tasks() const { return plan_.num_tasks(); }
  int64_t task_output_dim(int k) const { return plan_.task_output_dims[k]; }

  ServePrecision precision() const { return precision_; }

  /// Start of parameter `idx` in the f32 arena. Valid only for a kFp32
  /// model (a kBf16 model keeps no f32 copy — halving resident weight
  /// bytes is the point).
  const float* param_data(int idx) const {
    return arena_.data() + offsets_[idx];
  }

  /// Start of parameter `idx` in the bf16 arena. Valid only for kBf16.
  const uint16_t* param_data_bf16(int idx) const {
    return arena_bf16_.data() + offsets_[idx];
  }

 private:
  ServeModel(ServePlan plan, std::vector<float> arena,
             std::vector<int64_t> offsets, ServePrecision precision);

  ServePlan plan_;
  std::vector<float> arena_;
  std::vector<uint16_t> arena_bf16_;  // non-empty iff precision_ == kBf16
  std::vector<int64_t> offsets_;
  ServePrecision precision_ = ServePrecision::kFp32;
};

/// Executes a ServeModel's plan over batches of feature rows. Construction
/// precomputes the activation-buffer layout ("build once"); Forward is the
/// run-many hot path: activations live in the calling thread's
/// ScratchArena, so after warm-up a forward performs zero heap allocations
/// regardless of batch size (the steady-state assertion in
/// tests/serve/serve_engine_test.cc). Forward is safe to call concurrently
/// from several threads — all mutable state is per-call scratch.
class InferenceSession {
 public:
  explicit InferenceSession(const ServeModel& model);

  /// Runs the plan on `input` ([rows, input_dim], row-major) and writes
  /// task k's predictions to outputs[k] ([rows, task_output_dim(k)]).
  /// Two bitwise guarantees (docs/SERVING.md "Bit-exactness"): a rows == 1
  /// call reproduces the training model's single-row Forward exactly, and
  /// a batched call reproduces `rows` independent single-row calls exactly
  /// whenever PlanIsBatchInvariant(plan) holds — so every served row gets
  /// the training model's single-row bits at any batch size. The input is
  /// read in place (never copied or written).
  void Forward(const float* input, int64_t rows, float* const* outputs) const;

  const ServeModel& model() const { return *model_; }

 private:
  const ServeModel* model_;
  std::vector<int64_t> buffer_prefix_;  // per-row float offset of each buffer
  int64_t total_width_ = 0;
};

}  // namespace serve
}  // namespace mocograd

#endif  // MOCOGRAD_SERVE_ENGINE_H_
