#include "serve/plan.h"

#include <string>

#include "base/check.h"
#include "tensor/gemm.h"

namespace mocograd {
namespace serve {

namespace {

/// Incremental plan assembly. Parameters must be added in the exact order
/// the corresponding modules register them (experts before gates/heads,
/// "weight" before "bias") so that a packed arena filled from
/// Module::Parameters() or a nn/serialize checkpoint lines up index-for-
/// index with the plan's ParamSpecs.
class PlanBuilder {
 public:
  explicit PlanBuilder(ServePlan* plan) : plan_(plan) {}

  int AddBuffer(int64_t width) {
    plan_->buffer_widths.push_back(width);
    return static_cast<int>(plan_->buffer_widths.size()) - 1;
  }

  int AddParam(std::string name, int64_t rows, int64_t cols) {
    plan_->params.push_back({std::move(name), rows, cols});
    return static_cast<int>(plan_->params.size()) - 1;
  }

  /// Emits the ops of one nn::Mlp chain (Linear / ReLU / ... / Linear, no
  /// activation after the last layer) reading from buffer `in`, registering
  /// parameters under `prefix` ("trunk", "expert0", ...). Returns the
  /// output buffer.
  int Mlp(const std::string& prefix, int in,
          const std::vector<int64_t>& dims) {
    MG_CHECK_GE(dims.size(), 2u);
    int cur = in;
    for (size_t i = 0; i + 1 < dims.size(); ++i) {
      const std::string fc = prefix + ".fc" + std::to_string(i) + ".";
      const int w = AddParam(fc + "weight", dims[i], dims[i + 1]);
      const int b = AddParam(fc + "bias", dims[i + 1], 0);
      const int out = AddBuffer(dims[i + 1]);
      PlanOp op;
      op.kind = PlanOp::Kind::kLinear;
      op.in = cur;
      op.out = out;
      op.weight = w;
      op.bias = b;
      plan_->ops.push_back(op);
      cur = out;
      if (i + 2 < dims.size()) Relu(cur);
    }
    return cur;
  }

  void Relu(int buf) {
    PlanOp op;
    op.kind = PlanOp::Kind::kRelu;
    op.in = buf;
    plan_->ops.push_back(op);
  }

  void Softmax(int buf) {
    PlanOp op;
    op.kind = PlanOp::Kind::kSoftmax;
    op.in = buf;
    plan_->ops.push_back(op);
  }

  void GateMulAcc(int src, int gate, int gate_col, int acc, bool first) {
    PlanOp op;
    op.kind = PlanOp::Kind::kGateMulAcc;
    op.in = src;
    op.out = acc;
    op.gate = gate;
    op.gate_col = gate_col;
    op.first = first;
    plan_->ops.push_back(op);
  }

  void CopyOut(int buf, int task) {
    PlanOp op;
    op.kind = PlanOp::Kind::kCopyOut;
    op.in = buf;
    op.task = task;
    plan_->ops.push_back(op);
  }

 private:
  ServePlan* plan_;
};

std::vector<int64_t> ChainDims(int64_t in, const std::vector<int64_t>& hidden,
                               int64_t out) {
  std::vector<int64_t> dims = {in};
  dims.insert(dims.end(), hidden.begin(), hidden.end());
  dims.push_back(out);
  return dims;
}

}  // namespace

int64_t ServePlan::TotalParamElements() const {
  int64_t n = 0;
  for (const ParamSpec& p : params) n += p.NumElements();
  return n;
}

int64_t ServePlan::TotalBufferWidth() const {
  int64_t n = 0;
  for (int64_t w : buffer_widths) n += w;
  return n;
}

ServePlan BuildHpsPlan(const mtl::HpsConfig& config) {
  MG_CHECK_GT(config.input_dim, 0);
  MG_CHECK(!config.shared_dims.empty());
  MG_CHECK(!config.task_output_dims.empty());
  ServePlan plan;
  plan.architecture = "hps";
  plan.input_dim = config.input_dim;
  plan.task_output_dims = config.task_output_dims;
  PlanBuilder b(&plan);

  const int x = b.AddBuffer(config.input_dim);
  // Shared trunk runs once; HpsModel::Forward applies an extra ReLU on the
  // trunk output before the heads.
  std::vector<int64_t> trunk_dims = {config.input_dim};
  trunk_dims.insert(trunk_dims.end(), config.shared_dims.begin(),
                    config.shared_dims.end());
  const int z = b.Mlp("trunk", x, trunk_dims);
  b.Relu(z);
  const int64_t feat = config.shared_dims.back();
  for (size_t k = 0; k < config.task_output_dims.size(); ++k) {
    const int out =
        b.Mlp("head" + std::to_string(k), z,
              ChainDims(feat, config.head_hidden, config.task_output_dims[k]));
    b.CopyOut(out, static_cast<int>(k));
  }
  return plan;
}

ServePlan BuildMmoePlan(const mtl::MmoeConfig& config) {
  MG_CHECK_GT(config.input_dim, 0);
  MG_CHECK_GT(config.num_experts, 0);
  MG_CHECK(!config.expert_dims.empty());
  MG_CHECK(!config.task_output_dims.empty());
  ServePlan plan;
  plan.architecture = "mmoe";
  plan.input_dim = config.input_dim;
  plan.task_output_dims = config.task_output_dims;
  PlanBuilder b(&plan);

  const int x = b.AddBuffer(config.input_dim);
  // Experts run once (MmoeModel::Forward recomputes them per task on the
  // same input — identical floats). Expert outputs are ReLU'd in the mix.
  std::vector<int64_t> expert_dims = {config.input_dim};
  expert_dims.insert(expert_dims.end(), config.expert_dims.begin(),
                     config.expert_dims.end());
  std::vector<int> z(config.num_experts);
  for (int e = 0; e < config.num_experts; ++e) {
    z[e] = b.Mlp("expert" + std::to_string(e), x, expert_dims);
    b.Relu(z[e]);
  }
  const int64_t feat = config.expert_dims.back();
  for (size_t k = 0; k < config.task_output_dims.size(); ++k) {
    const std::string gate = "gate" + std::to_string(k) + ".";
    const int gw = b.AddParam(gate + "weight", config.input_dim,
                              config.num_experts);
    const int gb = b.AddParam(gate + "bias", config.num_experts, 0);
    const int gbuf = b.AddBuffer(config.num_experts);
    PlanOp op;
    op.kind = PlanOp::Kind::kLinear;
    op.in = x;
    op.out = gbuf;
    op.weight = gw;
    op.bias = gb;
    plan.ops.push_back(op);
    b.Softmax(gbuf);
    const int fused = b.AddBuffer(feat);
    for (int e = 0; e < config.num_experts; ++e) {
      b.GateMulAcc(z[e], gbuf, e, fused, /*first=*/e == 0);
    }
    const int out =
        b.Mlp("head" + std::to_string(k), fused,
              ChainDims(feat, config.head_hidden, config.task_output_dims[k]));
    b.CopyOut(out, static_cast<int>(k));
  }
  return plan;
}

ServePlan BuildCgcPlan(const mtl::CgcConfig& config) {
  MG_CHECK_GT(config.input_dim, 0);
  MG_CHECK_GT(config.num_shared_experts, 0);
  MG_CHECK_GE(config.num_task_experts, 0);
  MG_CHECK(!config.expert_dims.empty());
  MG_CHECK(!config.task_output_dims.empty());
  ServePlan plan;
  plan.architecture = "cgc";
  plan.input_dim = config.input_dim;
  plan.task_output_dims = config.task_output_dims;
  PlanBuilder b(&plan);

  const int x = b.AddBuffer(config.input_dim);
  std::vector<int64_t> expert_dims = {config.input_dim};
  expert_dims.insert(expert_dims.end(), config.expert_dims.begin(),
                     config.expert_dims.end());
  // Shared experts run once and are reused by every task's gate mix.
  std::vector<int> shared_z(config.num_shared_experts);
  for (int e = 0; e < config.num_shared_experts; ++e) {
    shared_z[e] = b.Mlp("shared_expert" + std::to_string(e), x, expert_dims);
    b.Relu(shared_z[e]);
  }
  const int gate_width = config.num_shared_experts + config.num_task_experts;
  const int64_t feat = config.expert_dims.back();
  for (size_t t = 0; t < config.task_output_dims.size(); ++t) {
    // Registration order within a task: private experts, gate, head
    // (CgcModel constructor).
    std::vector<int> task_z(config.num_task_experts);
    for (int e = 0; e < config.num_task_experts; ++e) {
      task_z[e] = b.Mlp("task" + std::to_string(t) + "_expert" +
                            std::to_string(e),
                        x, expert_dims);
      b.Relu(task_z[e]);
    }
    const std::string gate = "gate" + std::to_string(t) + ".";
    const int gw = b.AddParam(gate + "weight", config.input_dim, gate_width);
    const int gb = b.AddParam(gate + "bias", gate_width, 0);
    const int gbuf = b.AddBuffer(gate_width);
    PlanOp op;
    op.kind = PlanOp::Kind::kLinear;
    op.in = x;
    op.out = gbuf;
    op.weight = gw;
    op.bias = gb;
    plan.ops.push_back(op);
    b.Softmax(gbuf);
    // Gate slots: shared experts first, then this task's private experts
    // (CgcModel::Forward's mix_in order).
    const int fused = b.AddBuffer(feat);
    int slot = 0;
    for (int e = 0; e < config.num_shared_experts; ++e) {
      b.GateMulAcc(shared_z[e], gbuf, slot, fused, /*first=*/slot == 0);
      ++slot;
    }
    for (int e = 0; e < config.num_task_experts; ++e) {
      b.GateMulAcc(task_z[e], gbuf, slot, fused, /*first=*/slot == 0);
      ++slot;
    }
    const int out =
        b.Mlp("head" + std::to_string(t), fused,
              ChainDims(feat, config.head_hidden, config.task_output_dims[t]));
    b.CopyOut(out, static_cast<int>(t));
  }
  return plan;
}

bool PlanIsBatchInvariant(const ServePlan& plan) {
  // Mirrors the path-selection constants of tensor/gemm.cc: the kc-sliced
  // macro-kernel needs m >= kPackBMinRows (16) rows, n >= kBlockedMinCols
  // (256) columns and more than kc depth. Serving batches can exceed 16
  // rows, so a plan is invariant iff no layer has both n >= 256 and k > kc.
  constexpr int64_t kBlockedMinCols = 256;
  const int64_t kc = GemmBlocking().kc;
  for (const PlanOp& op : plan.ops) {
    if (op.kind != PlanOp::Kind::kLinear) continue;
    const int64_t k = plan.buffer_widths[op.in];
    const int64_t n = plan.buffer_widths[op.out];
    if (n >= kBlockedMinCols && k > kc) return false;
  }
  return true;
}

}  // namespace serve
}  // namespace mocograd
