#ifndef MOCOGRAD_SERVE_PLAN_H_
#define MOCOGRAD_SERVE_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mtl/cgc.h"
#include "mtl/hps.h"
#include "mtl/mmoe.h"

namespace mocograd {
namespace serve {

/// A ServePlan is the frozen, forward-only execution recipe of one MTL
/// architecture: a flat list of ops over a table of per-row activation
/// buffers, plus the spec of every parameter in the model's deterministic
/// registration order (nn::Module::NamedParameters()). Building the plan is
/// the "build-graph-once" half of serving; InferenceSession::Forward is the
/// "run-many" half — it replays the op list over a batch with no autograd
/// tape and no heap allocations (docs/SERVING.md).
///
/// Each op mirrors the training-time tensor kernel bit-for-bit (same
/// summation order, same rounding), and shared-trunk work that the training
/// Forward recomputes per task (HPS trunk, MMoE/CGC shared experts on a
/// single-input batch) is computed once and reused — the floats are
/// identical, so serve outputs equal training outputs bitwise.
struct PlanOp {
  enum class Kind {
    kLinear,      // out = in * W (+ bias broadcast over rows)
    kRelu,        // in-place: x = (x > 0) ? x : 0
    kSoftmax,     // in-place per-row softmax (tensor SoftmaxRows mirror)
    kGateMulAcc,  // acc (+)= in * gate[:, gate_col]  (first: assign)
    kCopyOut,     // copy buffer `in` to the caller's task output
  };
  Kind kind;
  int in = -1;        // input buffer index
  int out = -1;       // output buffer index (kLinear, kGateMulAcc acc)
  int weight = -1;    // parameter index of the [in, out] weight (kLinear)
  int bias = -1;      // parameter index of the [out] bias, or -1
  int gate = -1;      // gate buffer index (kGateMulAcc)
  int gate_col = 0;   // column of the gate buffer (kGateMulAcc)
  bool first = false; // kGateMulAcc: first contribution assigns instead of +=
  int task = -1;      // task index (kCopyOut)
};

/// Shape and dotted name of one parameter, in registration order.
struct ParamSpec {
  std::string name;  // dotted path, e.g. "expert0.fc0.weight"
  int64_t rows = 0;
  int64_t cols = 0;  // 0 for rank-1 (bias) parameters
  int64_t NumElements() const { return cols == 0 ? rows : rows * cols; }
};

struct ServePlan {
  std::string architecture;  // "hps" | "mmoe" | "cgc"
  int64_t input_dim = 0;
  std::vector<int64_t> task_output_dims;
  std::vector<int64_t> buffer_widths;  // per-row float width of each buffer
  std::vector<ParamSpec> params;
  std::vector<PlanOp> ops;

  int num_tasks() const { return static_cast<int>(task_output_dims.size()); }
  int64_t TotalParamElements() const;
  /// Sum of buffer widths: per-row floats of activation scratch a forward
  /// needs.
  int64_t TotalBufferWidth() const;
};

/// Plan builders for the architectures the serving layer supports. The op
/// list reproduces the corresponding MtlModel::Forward (single-input
/// setting: one feature row in, one prediction per task out).
ServePlan BuildHpsPlan(const mtl::HpsConfig& config);
ServePlan BuildMmoePlan(const mtl::MmoeConfig& config);
ServePlan BuildCgcPlan(const mtl::CgcConfig& config);

/// True when a batched forward of this plan is bitwise identical to N
/// single-row forwards under the current GEMM blocking. Every per-element
/// GEMM result is an ascending-k FMA chain — identical across the m == 1
/// GEMV paths and the batched microkernel — except on the cache-blocked
/// macro-kernel's kc-sliced path (taken only when m >= 16, n >= 256 and
/// k > kc), which breaks the chain with per-slice roundings. A plan is
/// batch-invariant when no kLinear op can reach that path, i.e. every
/// layer has n < 256 or k <= kc (docs/SERVING.md "Bit-exactness").
///
/// Width-1 linears (the task heads) would also diverge — Gemm's n == 1
/// dispatch reduces in a lane-blocked order for m >= 2 — but the engine
/// never routes those through Gemm: InferenceSession runs its own per-row
/// scalar chain for n == 1, so they do not factor into this predicate.
bool PlanIsBatchInvariant(const ServePlan& plan);

}  // namespace serve
}  // namespace mocograd

#endif  // MOCOGRAD_SERVE_PLAN_H_
