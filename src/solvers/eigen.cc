#include "solvers/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "base/check.h"
#include "obs/metrics.h"

namespace mocograd {
namespace solvers {

EigenDecomposition JacobiEigenSymmetric(std::vector<std::vector<double>> a,
                                        int max_sweeps, double tol) {
  const size_t n = a.size();
  MG_CHECK_GT(n, 0u, "empty matrix");
  for (const auto& row : a) MG_CHECK_EQ(row.size(), n, "matrix not square");

  // V accumulates the rotations; starts as identity.
  std::vector<std::vector<double>> v(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) v[i][i] = 1.0;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    // Sum of squared off-diagonal entries.
    double off = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) off += a[i][j] * a[i][j];
    }
    if (off < tol) break;
    MG_METRIC_COUNT("solver.jacobi.sweeps", 1);

    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        if (std::fabs(a[p][q]) < 1e-300) continue;
        // Rotation angle zeroing a[p][q].
        const double theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // A ← Jᵀ A J applied to rows/cols p and q.
        for (size_t k = 0; k < n; ++k) {
          const double akp = a[k][p], akq = a[k][q];
          a[k][p] = c * akp - s * akq;
          a[k][q] = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double apk = a[p][k], aqk = a[q][k];
          a[p][k] = c * apk - s * aqk;
          a[q][k] = s * apk + c * aqk;
        }
        // V ← V J.
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v[k][p], vkq = v[k][q];
          v[k][p] = c * vkp - s * vkq;
          v[k][q] = s * vkp + c * vkq;
        }
      }
    }
  }

  // Collect and sort by eigenvalue, descending.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return a[x][x] > a[y][y]; });

  EigenDecomposition out;
  out.values.resize(n);
  out.vectors.assign(n, std::vector<double>(n, 0.0));
  for (size_t r = 0; r < n; ++r) {
    out.values[r] = a[order[r]][order[r]];
    for (size_t k = 0; k < n; ++k) out.vectors[r][k] = v[k][order[r]];
  }
  return out;
}

}  // namespace solvers
}  // namespace mocograd
