#ifndef MOCOGRAD_SOLVERS_EIGEN_H_
#define MOCOGRAD_SOLVERS_EIGEN_H_

#include <vector>

namespace mocograd {
namespace solvers {

/// Eigen-decomposition of a small symmetric matrix.
struct EigenDecomposition {
  /// Eigenvalues in descending order.
  std::vector<double> values;
  /// vectors[i] is the unit eigenvector of values[i].
  std::vector<std::vector<double>> vectors;
};

/// Cyclic Jacobi rotation method for a dense symmetric matrix (sized for
/// the K×K Gram matrices of the gradient aggregators). Converges to machine
/// precision in a handful of sweeps for K ≤ a few dozen.
EigenDecomposition JacobiEigenSymmetric(std::vector<std::vector<double>> a,
                                        int max_sweeps = 50,
                                        double tol = 1e-20);

}  // namespace solvers
}  // namespace mocograd

#endif  // MOCOGRAD_SOLVERS_EIGEN_H_
