#include "solvers/linear_solve.h"

#include <cmath>

#include "base/check.h"

namespace mocograd {
namespace solvers {

Result<std::vector<double>> SolveLinear(std::vector<std::vector<double>> a,
                                        std::vector<double> b) {
  const size_t n = a.size();
  MG_CHECK_EQ(b.size(), n, "SolveLinear dimension mismatch");
  for (const auto& row : a) MG_CHECK_EQ(row.size(), n, "A not square");

  for (size_t col = 0; col < n; ++col) {
    // Partial pivot.
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (std::fabs(a[pivot][col]) < 1e-12) {
      return Status::InvalidArgument("singular system in SolveLinear");
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);

    const double inv = 1.0 / a[col][col];
    for (size_t r = col + 1; r < n; ++r) {
      const double f = a[r][col] * inv;
      if (f == 0.0) continue;
      for (size_t c = col; c < n; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }

  std::vector<double> x(n, 0.0);
  for (size_t ri = n; ri-- > 0;) {
    double s = b[ri];
    for (size_t c = ri + 1; c < n; ++c) s -= a[ri][c] * x[c];
    x[ri] = s / a[ri][ri];
  }
  return x;
}

}  // namespace solvers
}  // namespace mocograd
