#ifndef MOCOGRAD_SOLVERS_LINEAR_SOLVE_H_
#define MOCOGRAD_SOLVERS_LINEAR_SOLVE_H_

#include <vector>

#include "base/status.h"

namespace mocograd {
namespace solvers {

/// Solves the dense system A x = b by Gaussian elimination with partial
/// pivoting (A is n×n, row-major, modified in place conceptually — the
/// function works on copies). Sized for the small (K-1)×(K-1) systems of
/// IMTL-G. Returns InvalidArgument on singular systems.
Result<std::vector<double>> SolveLinear(std::vector<std::vector<double>> a,
                                        std::vector<double> b);

}  // namespace solvers
}  // namespace mocograd

#endif  // MOCOGRAD_SOLVERS_LINEAR_SOLVE_H_
