#include "solvers/min_norm.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"
#include "obs/metrics.h"

namespace mocograd {
namespace solvers {

std::vector<double> MinNormWeights(const std::vector<std::vector<double>>& gram,
                                   int max_iters, double tol) {
  const size_t k = gram.size();
  MG_CHECK_GT(k, 0u, "MinNormWeights on empty Gram matrix");
  for (const auto& row : gram) MG_CHECK_EQ(row.size(), k, "Gram not square");
  if (k == 1) return {1.0};

  std::vector<double> w(k, 1.0 / static_cast<double>(k));
  std::vector<double> mw(k, 0.0);  // M w
  auto refresh_mw = [&]() {
    for (size_t i = 0; i < k; ++i) {
      double s = 0.0;
      for (size_t j = 0; j < k; ++j) s += gram[i][j] * w[j];
      mw[i] = s;
    }
  };

  for (int it = 0; it < max_iters; ++it) {
    MG_METRIC_COUNT("solver.minnorm.iters", 1);
    refresh_mw();
    // Frank–Wolfe vertex: coordinate with the smallest gradient (Mw)_t.
    const size_t t =
        std::min_element(mw.begin(), mw.end()) - mw.begin();
    // Direction d = e_t - w; exact line search on γ ∈ [0, 1]:
    //   γ* = -(dᵀ M w) / (dᵀ M d)
    double d_mw = mw[t];
    double w_mw = 0.0;
    for (size_t i = 0; i < k; ++i) w_mw += w[i] * mw[i];
    d_mw -= w_mw;  // dᵀ M w with d = e_t - w
    // dᵀ M d = M_tt - 2 (Mw)_t + wᵀMw
    const double d_md = gram[t][t] - 2.0 * mw[t] + w_mw;
    if (d_md <= 0.0) break;  // degenerate (colinear) — w already optimal
    double gamma = -d_mw / d_md;
    gamma = std::clamp(gamma, 0.0, 1.0);
    if (gamma < tol) break;
    for (size_t i = 0; i < k; ++i) w[i] *= (1.0 - gamma);
    w[t] += gamma;
  }
  return w;
}

}  // namespace solvers
}  // namespace mocograd
