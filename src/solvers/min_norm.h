#ifndef MOCOGRAD_SOLVERS_MIN_NORM_H_
#define MOCOGRAD_SOLVERS_MIN_NORM_H_

#include <vector>

namespace mocograd {
namespace solvers {

/// Finds simplex weights w minimizing ||Σ_i w_i g_i||² given the Gram
/// matrix M (M[i][j] = g_i · g_j) via Frank–Wolfe with exact line search.
/// This is the solver at the heart of MGDA (Sener & Koltun, 2018).
std::vector<double> MinNormWeights(const std::vector<std::vector<double>>& gram,
                                   int max_iters = 250, double tol = 1e-7);

}  // namespace solvers
}  // namespace mocograd

#endif  // MOCOGRAD_SOLVERS_MIN_NORM_H_
