#include "solvers/simplex.h"

#include <algorithm>

#include "base/check.h"

namespace mocograd {
namespace solvers {

std::vector<double> ProjectToSimplex(std::vector<double> v) {
  MG_CHECK(!v.empty(), "ProjectToSimplex on empty vector");
  std::vector<double> u = v;
  std::sort(u.begin(), u.end(), std::greater<double>());
  double css = 0.0;
  double theta = 0.0;
  int rho = 0;
  for (size_t i = 0; i < u.size(); ++i) {
    css += u[i];
    const double t = (css - 1.0) / static_cast<double>(i + 1);
    if (u[i] - t > 0.0) {
      rho = static_cast<int>(i + 1);
      theta = t;
    }
  }
  MG_CHECK_GT(rho, 0, "simplex projection internal error");
  for (double& x : v) x = std::max(0.0, x - theta);
  return v;
}

}  // namespace solvers
}  // namespace mocograd
