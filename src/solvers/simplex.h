#ifndef MOCOGRAD_SOLVERS_SIMPLEX_H_
#define MOCOGRAD_SOLVERS_SIMPLEX_H_

#include <vector>

namespace mocograd {
namespace solvers {

/// Euclidean projection of v onto the probability simplex
/// {w : w_i >= 0, sum w_i = 1} (Duchi et al., 2008, O(n log n)).
/// Used by CAGrad's inner dual optimization.
std::vector<double> ProjectToSimplex(std::vector<double> v);

}  // namespace solvers
}  // namespace mocograd

#endif  // MOCOGRAD_SOLVERS_SIMPLEX_H_
