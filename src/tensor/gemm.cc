#include "tensor/gemm.h"

#include <algorithm>
#include <cstring>

#include "base/bf16.h"
#include "base/check.h"
#include "base/env.h"
#include "base/scratch.h"
#include "base/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/gemm_kernels.h"

// Cache-hierarchy-aware GEMM (docs/SIMD.md "The GEMM macro-kernel"):
//
//   - a 6×16 register-blocked microkernel (12 vector accumulators) at the
//     core, identical on every SIMD backend;
//   - a Goto-style macro-kernel around it for m >= kPackBMinRows: the k
//     dimension is split into ~kc-deep slices accumulated into C in slice
//     order, mc×kc blocks of op(A) are packed per slice into a per-thread
//     scratch arena in microkernel order, op(B) is packed once into
//     contiguous k×16 panels, and C columns are walked in nc-wide groups —
//     mc/kc/nc chosen so the A block and the B slice stay L1/L2 resident
//     (MOCOGRAD_GEMM_BLOCK overrides them for testing/tuning);
//   - shape-specialized paths that bypass packing entirely: SIMD GEMV
//     kernels for m == 1 and n == 1, and a rank-update path for k <=
//     kRankUpdateMaxK, so no shape class pays packing cost it cannot
//     amortize (the m == 1 case used to be slower than the seed kernel).
//
// This file is the orchestration front-end: path selection, grain sizes,
// ParallelFor partitioning, scratch allocation, and B packing. The compute
// bodies live behind the per-tier GemmKernels table
// (tensor/gemm_kernels.h) — chunk-level kernels compiled once per ISA tier
// and selected at runtime (docs/SIMD.md "Runtime dispatch").
//
// All scratch (packed operands, GEMV accumulators) lives in grow-only
// per-thread arenas (base/scratch.h): zero heap allocations on the
// steady-state path.
//
// Determinism: block sizes are process-wide constants, independent of
// thread count and ISA. Each output element's value depends only on its
// row/column and the fixed (kc, nc, panel) decomposition — never on the
// ParallelFor partition, the mc/kMR row grouping, the backend, or the
// dispatch tier — so any pool size and any tier produce bit-identical
// results for a given block configuration (changing MOCOGRAD_GEMM_BLOCK
// changes the accumulation tree, like swapping BLAS versions would).

namespace mocograd {

namespace {

// Minimum multiply-adds a parallel chunk should amortize; below this the
// range runs on the calling thread.
constexpr int64_t kMinFlopsPerChunk = 1 << 16;

// Below this many C rows, packing a non-transposed B into panels costs more
// than the in-place strided reads it saves (each B element is only reused
// m times), and the blocked macro-kernel's A packing cannot amortize
// either — such shapes take the streaming full-k path. m == 1 peels off
// earlier into the GEMV kernels, so the in-place path serves 2 <= m < 16;
// BENCH_gemm.json's cutover_12x512x256 row records the heuristic's win.
constexpr int64_t kPackBMinRows = 16;

// The blocked macro-kernel packs mc×kc blocks of op(A); every packed
// element is reused once per 16-column panel, so the (gather-order) pack
// only amortizes when op(B) is at least this wide — 16 panels, one full
// default column group. Narrower shapes (tall_512x32x64 in
// BENCH_gemm.json is the cautionary datapoint: n = 32 gives two reuses
// per packed element, and packing cost it a third of its throughput) take
// the streaming full-k path, which reads A in place and re-reads it once
// per panel instead — few panels is exactly when that is cheap.
constexpr int64_t kBlockedMinCols = 256;

// Default macro-kernel blocking, sized for typical 32–48 KiB L1d / >=512
// KiB L2: the packed B slice of one column group (kc×nc×4 = 256 KiB) plus
// one packed A block (mc×kc×4 = 96 KiB) stay L2-resident, while the
// microkernel streams one kc×16 B panel (16 KiB) from L1 against six
// packed A rows.
constexpr GemmBlockSizes kDefaultBlocks = {96, 256, 256};

GemmBlockSizes Sanitize(GemmBlockSizes b) {
  b.mc = std::clamp<int64_t>(b.mc, 1, 1 << 16);
  b.kc = std::clamp<int64_t>(b.kc, 1, 1 << 16);
  b.nc = std::clamp<int64_t>(b.nc, 1, 1 << 20);
  b.nc = (b.nc + kNR - 1) / kNR * kNR;
  return b;
}

GemmBlockSizes BlocksFromEnv() {
  const std::vector<int> v =
      GetEnvIntList("MOCOGRAD_GEMM_BLOCK", 1, 1 << 20);
  GemmBlockSizes b = kDefaultBlocks;
  if (v.size() == 1) {
    b = {v[0], v[0], v[0]};
  } else if (v.size() == 3) {
    b = {v[0], v[1], v[2]};
  }
  return Sanitize(b);
}

GemmBlockSizes& BlockConfig() {
  // MG_COLD_PATH: magic-static init — the env parse (which allocates) runs
  // exactly once, on the first GEMM; every later call just loads the ref.
  static GemmBlockSizes cfg = BlocksFromEnv();
  // MG_COLD_PATH_END
  return cfg;
}

// MG_HOT_PATH — everything below is the per-step steady state: all scratch
// must come from ScratchScope, never the heap (docs/CORRECTNESS.md; the
// steady-state allocation tests in tests/tensor/gemm_microkernel_test.cc
// measure the same contract dynamically).

// Packs columns [j0, j0+cols) of op(B) into dst as a k×kNR panel,
// zero-padding columns past `cols`. Pure copies — deterministic for any
// caller-side parallelization over panels.
void PackPanel(const float* b, int64_t ldb, bool trans_b, int64_t k,
               int64_t j0, int64_t cols, float* dst) {
  for (int64_t p = 0; p < k; ++p) {
    float* row = dst + p * kNR;
    if (trans_b) {
      for (int64_t j = 0; j < cols; ++j) row[j] = b[(j0 + j) * ldb + p];
    } else {
      const float* src = b + p * ldb + j0;
      for (int64_t j = 0; j < cols; ++j) row[j] = src[j];
    }
    for (int64_t j = cols; j < kNR; ++j) row[j] = 0.0f;
  }
}

// m == 1 front end: packs the op(A) row when it is strided, then fans the
// axpy (op(B) = B) or dot (op(B) = Bᵀ) kernel over disjoint j-chunks.
void GemvRow(const GemmKernels& kern, bool trans_a, bool trans_b, int64_t n,
             int64_t k, float alpha, const float* a, int64_t lda,
             const float* b, int64_t ldb, float beta, float* c) {
  ScratchScope scope;
  if (!trans_b) {
    const int64_t a_stride = trans_a ? lda : 1;
    const int64_t grain =
        std::max<int64_t>(kNR, kMinFlopsPerChunk / std::max<int64_t>(1, k));
    ParallelFor(0, n, grain, [&](int64_t j0, int64_t j1) {
      ScratchScope chunk_scope;
      float* acc = chunk_scope.AllocFloats(static_cast<size_t>(j1 - j0));
      kern.gemv_row_axpy(j0, j1, k, alpha, a, a_stride, b, ldb, beta, c,
                         acc);
    });
    return;
  }
  const float* a_vec = a;
  if (trans_a) {
    float* packed = scope.AllocFloats(static_cast<size_t>(k));
    for (int64_t p = 0; p < k; ++p) packed[p] = a[p * lda];
    a_vec = packed;
  }
  const int64_t grain =
      std::max<int64_t>(1, kMinFlopsPerChunk / std::max<int64_t>(1, k));
  ParallelFor(0, n, grain, [&](int64_t j0, int64_t j1) {
    kern.gemv_row_dot(j0, j1, k, alpha, a_vec, b, ldb, beta, c);
  });
}

// n == 1 front end: packs the op(B) column when it is strided, then fans
// the axpy (op(A) = Aᵀ) or dot (op(A) = A) kernel over disjoint i-chunks.
void GemvCol(const GemmKernels& kern, bool trans_a, bool trans_b, int64_t m,
             int64_t k, float alpha, const float* a, int64_t lda,
             const float* b, int64_t ldb, float beta, float* c,
             int64_t ldc) {
  ScratchScope scope;
  if (trans_a) {
    const int64_t b_stride = trans_b ? 1 : ldb;
    const int64_t grain =
        std::max<int64_t>(kNR, kMinFlopsPerChunk / std::max<int64_t>(1, k));
    ParallelFor(0, m, grain, [&](int64_t i0, int64_t i1) {
      ScratchScope chunk_scope;
      float* acc = chunk_scope.AllocFloats(static_cast<size_t>(i1 - i0));
      kern.gemv_col_axpy(i0, i1, k, alpha, a, lda, b, b_stride, beta, c,
                         ldc, acc);
    });
    return;
  }
  // op(B) column: stored contiguously when trans_b (B is 1×k), strided
  // by ldb otherwise.
  const float* b_vec = b;
  if (!trans_b && ldb != 1) {
    float* packed = scope.AllocFloats(static_cast<size_t>(k));
    for (int64_t p = 0; p < k; ++p) packed[p] = b[p * ldb];
    b_vec = packed;
  }
  const int64_t grain =
      std::max<int64_t>(1, kMinFlopsPerChunk / std::max<int64_t>(1, k));
  ParallelFor(0, m, grain, [&](int64_t i0, int64_t i1) {
    kern.gemv_col_dot(i0, i1, k, alpha, a, lda, b_vec, beta, c, ldc);
  });
}

}  // namespace

GemmBlockSizes GemmBlocking() { return BlockConfig(); }

// MG_COLD_PATH: test-only configuration hook, never on the request path —
// re-parsing the env knob (which allocates) is fine here even though it
// lexically sits inside the file's hot region.
void SetGemmBlockingForTest(int64_t mc, int64_t kc, int64_t nc) {
  if (mc < 1 || kc < 1 || nc < 1) {
    BlockConfig() = BlocksFromEnv();
  } else {
    BlockConfig() = Sanitize({mc, kc, nc});
  }
}
// MG_COLD_PATH_END

void Gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          float alpha, const float* a, int64_t lda, const float* b,
          int64_t ldb, float beta, float* c, int64_t ldc) {
  MG_CHECK_GE(m, 0);
  MG_CHECK_GE(n, 0);
  MG_CHECK_GE(k, 0);
  if (m == 0 || n == 0) return;
  MG_CHECK(c != nullptr, "Gemm: null C for m=", m, " n=", n);
  MG_CHECK_GE(ldc, n, "Gemm: ldc below row width");
  if (k > 0) {
    MG_CHECK(a != nullptr && b != nullptr, "Gemm: null operand for m=", m,
             " n=", n, " k=", k);
    MG_CHECK_GE(lda, trans_a ? m : k, "Gemm: lda below op(A) row width");
    MG_CHECK_GE(ldb, trans_b ? k : n, "Gemm: ldb below op(B) row width");
  }
  MG_TRACE_SCOPE("gemm");
  MG_METRIC_TIME_SCOPE("gemm.seconds");
  MG_METRIC_COUNT("gemm.calls", 1);
  MG_METRIC_COUNT("gemm.flops", 2 * m * n * k);
  if (k == 0 || alpha == 0.0f) {
    // Pure C-scaling; rows are independent.
    if (beta != 1.0f) {
      const int64_t grain = std::max<int64_t>(1, kMinFlopsPerChunk / n);
      ParallelFor(0, m, grain, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          float* c_row = c + i * ldc;
          for (int64_t j = 0; j < n; ++j) c_row[j] *= beta;
        }
      });
    }
    return;
  }

  // One table lookup per call (a relaxed atomic load behind ActiveTier);
  // the tier is stable for the duration of the call.
  const GemmKernels& kern = ActiveGemmKernels();

  // Degenerate output shapes take the packing-free GEMV kernels.
  if (m == 1) {
    return GemvRow(kern, trans_a, trans_b, n, k, alpha, a, lda, b, ldb,
                   beta, c);
  }
  if (n == 1) {
    return GemvCol(kern, trans_a, trans_b, m, k, alpha, a, lda, b, ldb,
                   beta, c, ldc);
  }
  if (k <= kRankUpdateMaxK && !trans_b) {
    const int64_t grain = std::max<int64_t>(
        1, kMinFlopsPerChunk / std::max<int64_t>(1, n * k));
    ParallelFor(0, m, grain, [&](int64_t i0, int64_t i1) {
      kern.rank_update_rows(i0, i1, n, k, alpha, a, lda, trans_a, b, ldb,
                            beta, c, ldc);
    });
    return;
  }

  const GemmBlockSizes bs = BlockConfig();
  // The macro-kernel needs both dimensions: enough rows that packed B
  // panels amortize, and enough columns that packed A blocks do. Anything
  // narrower streams A in place over the full k extent.
  const bool blocked = m >= kPackBMinRows && n >= kBlockedMinCols;
  const int64_t num_panels = (n + kNR - 1) / kNR;
  const int64_t num_full_panels = n / kNR;

  // The blocked macro-kernel interleaves packing and compute per k-slice:
  // for each ~kc-deep slice, B's panels for that slice are packed (in
  // parallel) into the caller's arena and then immediately consumed by the
  // row-parallel compute pass while still cache-hot. Packing B upfront in
  // full is a trap this layout dodges: a conv-sized B (1 MiB+) packed
  // whole falls out of L2 between pack and use, and the im2col shape lost
  // a third of its throughput to exactly that before the slice
  // interleave. Packed and in-place reads see the same values in the same
  // order, and packing happens before the row partition, so neither the
  // pack choice nor chunk boundaries ever affect results.
  if (blocked) {
    ScratchScope scope;
    const int64_t num_kb = (k + bs.kc - 1) / bs.kc;
    const int64_t kc_max = (k + num_kb - 1) / num_kb;
    float* b_slice =
        scope.AllocFloats(static_cast<size_t>(num_panels) * kc_max * kNR);
    const int64_t grain = std::max<int64_t>(
        bs.mc, kMinFlopsPerChunk / std::max<int64_t>(1, n * k));
    for (int64_t kb = 0; kb < num_kb; ++kb) {
      // Near-equal slices (each <= kc): k=288 with kc=256 becomes
      // 144+144, not 256+32, so no slice degenerates.
      const int64_t p0 = kb * k / num_kb;
      const int64_t kc = (kb + 1) * k / num_kb - p0;
      {
        MG_TRACE_SCOPE("gemm.pack");
        MG_METRIC_TIME_SCOPE("gemm.pack.seconds");
        // Rows [p0, p0+kc) of op(B): offsetting the base pointer reduces
        // the slice to a fresh k=kc pack.
        const float* b_base = trans_b ? b + p0 : b + p0 * ldb;
        const int64_t panel_grain = std::max<int64_t>(
            1, kMinFlopsPerChunk / std::max<int64_t>(1, kc * kNR));
        ParallelFor(0, num_panels, panel_grain, [&](int64_t q0, int64_t q1) {
          for (int64_t jp = q0; jp < q1; ++jp) {
            PackPanel(b_base, ldb, trans_b, kc, jp * kNR,
                      std::min<int64_t>(kNR, n - jp * kNR),
                      b_slice + jp * kc * kNR);
          }
        });
      }
      MG_TRACE_SCOPE("gemm.compute");
      MG_METRIC_TIME_SCOPE("gemm.compute.seconds");
      const bool accumulate = kb > 0;
      ParallelFor(0, m, grain, [&](int64_t i0, int64_t i1) {
        ScratchScope chunk_scope;
        float* a_buf =
            chunk_scope.AllocFloats(static_cast<size_t>(bs.mc) * bs.kc);
        kern.blocked_slice_rows(i0, i1, n, kc, alpha, a, lda, trans_a, p0,
                                b_slice, beta, c, ldc, bs.mc, bs.nc,
                                accumulate, a_buf);
      });
    }
    return;
  }

  // Streaming full-k path. B panels: packed panel-major whenever the cost
  // amortizes — a transposed B always, a non-transposed B once enough C
  // rows reuse it (kPackBMinRows). Below the cutover a non-transposed B
  // is read in place (the microkernel strides by ldb) with only the
  // ragged n % kNR edge packed zero-padded.
  ScratchScope scope;
  float* b_packed = nullptr;
  const float* b_inplace = nullptr;
  const float* a_eff = a;
  int64_t lda_eff = lda;
  {
    MG_TRACE_SCOPE("gemm.pack");
    MG_METRIC_TIME_SCOPE("gemm.pack.seconds");
    if (trans_b || m >= kPackBMinRows) {
      b_packed =
          scope.AllocFloats(static_cast<size_t>(num_panels) * k * kNR);
      const int64_t panel_grain = std::max<int64_t>(
          1, kMinFlopsPerChunk / std::max<int64_t>(1, k * kNR));
      ParallelFor(0, num_panels, panel_grain, [&](int64_t p0, int64_t p1) {
        for (int64_t jp = p0; jp < p1; ++jp) {
          PackPanel(b, ldb, trans_b, k, jp * kNR,
                    std::min<int64_t>(kNR, n - jp * kNR),
                    b_packed + jp * k * kNR);
        }
      });
    } else {
      b_inplace = b;
      if (num_full_panels < num_panels) {
        b_packed = scope.AllocFloats(static_cast<size_t>(k) * kNR);
        PackPanel(b, ldb, /*trans_b=*/false, k, num_full_panels * kNR,
                  n - num_full_panels * kNR, b_packed);
      }
    }

    // A transposed operand: the blocked macro-kernel's per-block packing
    // gathers op(A) directly, but the streaming path reads A in place, so
    // it gets a row-major copy of op(A) here (pure copies, parallel over
    // rows) — no path keeps a whole-matrix transposed copy beyond the
    // call.
    if (trans_a) {
      float* a_packed = scope.AllocFloats(static_cast<size_t>(m) * k);
      const int64_t row_grain =
          std::max<int64_t>(1, kMinFlopsPerChunk / std::max<int64_t>(1, k));
      ParallelFor(0, m, row_grain, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          for (int64_t p = 0; p < k; ++p) {
            a_packed[i * k + p] = a[p * lda + i];
          }
        }
      });
      a_eff = a_packed;
      lda_eff = k;
    }
  }

  // Disjoint C row ranges per chunk; each row's accumulation tree is fixed
  // independent of the partition, so any chunking — and any dispatch
  // tier — is bit-identical.
  MG_TRACE_SCOPE("gemm.compute");
  MG_METRIC_TIME_SCOPE("gemm.compute.seconds");
  const int64_t grain =
      std::max<int64_t>(1, kMinFlopsPerChunk / std::max<int64_t>(1, n * k));
  ParallelFor(0, m, grain, [&](int64_t i0, int64_t i1) {
    kern.gemm_rows(i0, i1, n, k, alpha, a_eff, lda_eff, b_inplace, ldb,
                   b_packed, num_full_panels, beta, c, ldc);
  });
}

void GemmBf16B(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
               const uint16_t* b, int64_t ldb, float* c, int64_t ldc) {
  MG_CHECK_GE(m, 0);
  MG_CHECK_GE(n, 0);
  MG_CHECK_GE(k, 0);
  if (m == 0 || n == 0) return;
  MG_CHECK(c != nullptr, "GemmBf16B: null C for m=", m, " n=", n);
  MG_CHECK_GE(ldc, n, "GemmBf16B: ldc below row width");
  if (k == 0) {
    // alpha = 1, beta = 0 semantics: C = A·B over zero terms is zero.
    for (int64_t i = 0; i < m; ++i) {
      std::memset(c + i * ldc, 0, static_cast<size_t>(n) * sizeof(float));
    }
    return;
  }
  MG_CHECK(a != nullptr && b != nullptr, "GemmBf16B: null operand for m=", m,
           " n=", n, " k=", k);
  MG_CHECK_GE(lda, k, "GemmBf16B: lda below A row width");
  MG_CHECK_GE(ldb, n, "GemmBf16B: ldb below B row width");
  MG_TRACE_SCOPE("gemm.bf16");
  MG_METRIC_TIME_SCOPE("gemm.seconds");
  MG_METRIC_COUNT("gemm.calls", 1);
  MG_METRIC_COUNT("gemm.flops", 2 * m * n * k);

  const GemmKernels& kern = ActiveGemmKernels();

  if (m == 1) {
    const int64_t grain =
        std::max<int64_t>(kNR, kMinFlopsPerChunk / std::max<int64_t>(1, k));
    ParallelFor(0, n, grain, [&](int64_t j0, int64_t j1) {
      ScratchScope chunk_scope;
      float* acc = chunk_scope.AllocFloats(static_cast<size_t>(j1 - j0));
      kern.gemv_row_axpy_bf16(j0, j1, k, a, b, ldb, c, acc);
    });
    return;
  }

  // Streaming rows path: full 16-column panels widen bf16 on load in
  // place; only a ragged n % kNR edge panel is pre-widened (scalar, exact)
  // and zero-padded here, so tier TUs never duplicate the pack logic.
  ScratchScope scope;
  float* b_edge = nullptr;
  const int64_t num_full_panels = n / kNR;
  const int64_t edge_cols = n - num_full_panels * kNR;
  if (edge_cols > 0) {
    b_edge = scope.AllocFloats(static_cast<size_t>(k) * kNR);
    const int64_t j0 = num_full_panels * kNR;
    for (int64_t p = 0; p < k; ++p) {
      const uint16_t* src = b + p * ldb + j0;
      float* row = b_edge + p * kNR;
      for (int64_t j = 0; j < edge_cols; ++j) row[j] = F32FromBf16(src[j]);
      for (int64_t j = edge_cols; j < kNR; ++j) row[j] = 0.0f;
    }
  }
  const int64_t grain =
      std::max<int64_t>(1, kMinFlopsPerChunk / std::max<int64_t>(1, n * k));
  ParallelFor(0, m, grain, [&](int64_t i0, int64_t i1) {
    kern.gemm_rows_bf16(i0, i1, n, k, a, lda, b, ldb, b_edge, c, ldc);
  });
}

// MG_HOT_PATH_END

}  // namespace mocograd
