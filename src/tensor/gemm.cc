#include "tensor/gemm.h"

#include <algorithm>
#include <vector>

#include "base/check.h"
#include "base/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mocograd {

namespace {

// Minimum multiply-adds a parallel chunk should amortize; below this the
// row range runs on the calling thread.
constexpr int64_t kMinFlopsPerChunk = 1 << 16;

// Core kernel for rows [i0, i1) of row-major C[m,n] += alpha * A[m,k] *
// B[k,n]. The i-k-j loop order streams B and C rows sequentially, which
// vectorizes well and is cache-friendly for the small-to-medium matrices
// this library works with. Every C row depends only on its own A row, so
// disjoint row ranges can run on different threads with no shared writes —
// and because the per-row j/k order never changes, the result is
// bit-identical for any partition.
void GemmRows(int64_t i0, int64_t i1, int64_t n, int64_t k, float alpha,
              const float* a, int64_t lda, const float* b, int64_t ldb,
              float beta, float* c, int64_t ldc) {
  for (int64_t i = i0; i < i1; ++i) {
    const float* a_row = a + i * lda;
    float* c_row = c + i * ldc;
    if (beta != 1.0f) {
      for (int64_t j = 0; j < n; ++j) c_row[j] *= beta;
    }
    for (int64_t p = 0; p < k; ++p) {
      const float av = alpha * a_row[p];
      if (av == 0.0f) continue;
      const float* b_row = b + p * ldb;
      for (int64_t j = 0; j < n; ++j) {
        c_row[j] += av * b_row[j];
      }
    }
  }
}

// Packs op(X) into a contiguous rows×cols row-major buffer.
std::vector<float> PackTransposed(const float* x, int64_t rows, int64_t cols,
                                  int64_t ldx) {
  // x is stored as cols×rows with leading dimension ldx; output is
  // rows×cols contiguous (i.e. the transpose of the stored matrix).
  std::vector<float> out(static_cast<size_t>(rows) * cols);
  for (int64_t r = 0; r < cols; ++r) {
    const float* src = x + r * ldx;
    for (int64_t c = 0; c < rows; ++c) {
      out[c * cols + r] = src[c];
    }
  }
  return out;
}

}  // namespace

void Gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          float alpha, const float* a, int64_t lda, const float* b,
          int64_t ldb, float beta, float* c, int64_t ldc) {
  MG_CHECK_GE(m, 0);
  MG_CHECK_GE(n, 0);
  MG_CHECK_GE(k, 0);
  if (m == 0 || n == 0) return;
  MG_TRACE_SCOPE("gemm");
  MG_METRIC_COUNT("gemm.calls", 1);
  MG_METRIC_COUNT("gemm.flops", 2 * m * n * k);
  if (k == 0 || alpha == 0.0f) {
    // Pure C-scaling; rows are independent.
    if (beta != 1.0f) {
      const int64_t grain = std::max<int64_t>(1, kMinFlopsPerChunk / n);
      ParallelFor(0, m, grain, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          float* c_row = c + i * ldc;
          for (int64_t j = 0; j < n; ++j) c_row[j] *= beta;
        }
      });
    }
    return;
  }

  // Transposed operands are packed once so the hot loop is always the
  // no-transpose kernel; for this library's sizes the packing cost is noise.
  std::vector<float> a_packed;
  std::vector<float> b_packed;
  const float* a_eff = a;
  int64_t lda_eff = lda;
  if (trans_a) {
    a_packed = PackTransposed(a, m, k, lda);
    a_eff = a_packed.data();
    lda_eff = k;
  }
  const float* b_eff = b;
  int64_t ldb_eff = ldb;
  if (trans_b) {
    b_packed = PackTransposed(b, k, n, ldb);
    b_eff = b_packed.data();
    ldb_eff = n;
  }

  // Row-blocked parallel kernel: disjoint C row ranges per chunk, each
  // handling its own beta-scaling so per-row work stays contiguous.
  const int64_t grain =
      std::max<int64_t>(1, kMinFlopsPerChunk / std::max<int64_t>(1, n * k));
  ParallelFor(0, m, grain, [&](int64_t i0, int64_t i1) {
    GemmRows(i0, i1, n, k, alpha, a_eff, lda_eff, b_eff, ldb_eff, beta, c,
             ldc);
  });
}

}  // namespace mocograd
