#include "tensor/gemm.h"

#include <algorithm>
#include <vector>

#include "base/check.h"
#include "base/simd.h"
#include "base/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mocograd {

namespace {

// Minimum multiply-adds a parallel chunk should amortize; below this the
// row range runs on the calling thread.
constexpr int64_t kMinFlopsPerChunk = 1 << 16;

// Register-blocked microkernel tile: 6 C rows × 16 C columns (two 8-lane
// vectors), i.e. 12 vector accumulators plus two B vectors and one
// broadcast A value in flight — 15 of the 16 architectural vector
// registers.
constexpr int64_t kMR = 6;
constexpr int64_t kNR = 16;

// Below this many C rows, packing a non-transposed B into panels costs more
// than the in-place strided reads it saves (each B element is only reused
// m times).
constexpr int64_t kPackBMinRows = 16;

// One 16-column panel of op(B): `data` points at row p=0, rows are `stride`
// floats apart. Full panels of a non-transposed B are read in place
// (stride = ldb); transposed and edge panels are packed to stride = kNR
// with zero padding past the matrix edge.
struct PanelView {
  const float* data;
  int64_t stride;
};

// Packs columns [j0, j0+cols) of op(B) into dst as a k×kNR panel,
// zero-padding columns past `cols`. Pure copies — deterministic for any
// caller-side parallelization over panels.
void PackPanel(const float* b, int64_t ldb, bool trans_b, int64_t k,
               int64_t j0, int64_t cols, float* dst) {
  for (int64_t p = 0; p < k; ++p) {
    float* row = dst + p * kNR;
    if (trans_b) {
      for (int64_t j = 0; j < cols; ++j) row[j] = b[(j0 + j) * ldb + p];
    } else {
      const float* src = b + p * ldb + j0;
      for (int64_t j = 0; j < cols; ++j) row[j] = src[j];
    }
    for (int64_t j = cols; j < kNR; ++j) row[j] = 0.0f;
  }
}

// Accumulates the MR×kNR tile Σ_p a[r][p] · b[p][j] into `tile`. Per-row
// arithmetic is one fused multiply-add per (p, lane) in ascending p order,
// independent of MR — grouping rows into blocks (or splitting them across
// ParallelFor chunks) never changes a row's result.
template <typename B, int MR>
void MicroKernel(int64_t k, const float* a, int64_t lda, PanelView b,
                 float* tile) {
  using F32 = typename B::F32;
  F32 acc[MR][2];
  for (int r = 0; r < MR; ++r) {
    acc[r][0] = F32::Zero();
    acc[r][1] = F32::Zero();
  }
  const float* bp = b.data;
  for (int64_t p = 0; p < k; ++p, bp += b.stride) {
    const F32 b0 = F32::Load(bp);
    const F32 b1 = F32::Load(bp + 8);
    for (int r = 0; r < MR; ++r) {
      const F32 av = F32::Broadcast(a[r * lda + p]);
      acc[r][0] = MulAdd(av, b0, acc[r][0]);
      acc[r][1] = MulAdd(av, b1, acc[r][1]);
    }
  }
  for (int r = 0; r < MR; ++r) {
    acc[r][0].Store(tile + r * kNR);
    acc[r][1].Store(tile + r * kNR + 8);
  }
}

// Rows [i0, i1) of C. Panels iterate outermost so a packed panel (k×kNR,
// one L1-sized strip) stays hot across every row block of the chunk. The
// write-out applies alpha/beta: C = alpha·acc + beta·C, with beta == 0
// meaning C is overwritten without being read (BLAS semantics — stale
// NaN/Inf in the output buffer cannot leak through). Each output element
// gets one exactly-rounded multiply (or fused multiply-add), identical on
// the vector and scalar write-out paths and on every backend.
template <typename B>
void GemmRows(int64_t i0, int64_t i1, int64_t n, int64_t k, float alpha,
              const float* a, int64_t lda, const float* b_inplace,
              int64_t ldb, const float* b_packed, int64_t num_full_panels,
              float beta, float* c, int64_t ldc) {
  using F32 = typename B::F32;
  alignas(32) float tile[kMR * kNR];
  const int64_t num_panels = (n + kNR - 1) / kNR;
  const F32 valpha = F32::Broadcast(alpha);
  const F32 vbeta = F32::Broadcast(beta);
  for (int64_t jp = 0; jp < num_panels; ++jp) {
    const int64_t j0 = jp * kNR;
    const int64_t nr = std::min<int64_t>(kNR, n - j0);
    PanelView panel;
    if (b_inplace != nullptr && jp < num_full_panels) {
      panel = {b_inplace + j0, ldb};
    } else {
      // Packed panels: when B was packed panel-major all panels live in
      // b_packed; otherwise only the ragged edge panel does (index 0).
      const int64_t idx = b_inplace != nullptr ? 0 : jp;
      panel = {b_packed + idx * k * kNR, kNR};
    }
    for (int64_t i = i0; i < i1; i += kMR) {
      const int64_t mr = std::min<int64_t>(kMR, i1 - i);
      const float* a_block = a + i * lda;
      switch (mr) {
        case 1: MicroKernel<B, 1>(k, a_block, lda, panel, tile); break;
        case 2: MicroKernel<B, 2>(k, a_block, lda, panel, tile); break;
        case 3: MicroKernel<B, 3>(k, a_block, lda, panel, tile); break;
        case 4: MicroKernel<B, 4>(k, a_block, lda, panel, tile); break;
        case 5: MicroKernel<B, 5>(k, a_block, lda, panel, tile); break;
        default: MicroKernel<B, 6>(k, a_block, lda, panel, tile); break;
      }
      for (int64_t r = 0; r < mr; ++r) {
        float* c_row = c + (i + r) * ldc + j0;
        const float* t_row = tile + r * kNR;
        if (nr == kNR) {
          const F32 t0 = F32::Load(t_row);
          const F32 t1 = F32::Load(t_row + 8);
          if (beta == 0.0f) {
            (valpha * t0).Store(c_row);
            (valpha * t1).Store(c_row + 8);
          } else {
            MulAdd(vbeta, F32::Load(c_row), valpha * t0).Store(c_row);
            MulAdd(vbeta, F32::Load(c_row + 8), valpha * t1).Store(c_row + 8);
          }
        } else if (beta == 0.0f) {
          for (int64_t j = 0; j < nr; ++j) c_row[j] = alpha * t_row[j];
        } else {
          for (int64_t j = 0; j < nr; ++j) {
            c_row[j] = simd::MulAdd(beta, c_row[j], alpha * t_row[j]);
          }
        }
      }
    }
  }
}

// Packs op(X) into a contiguous rows×cols row-major buffer.
std::vector<float> PackTransposed(const float* x, int64_t rows, int64_t cols,
                                  int64_t ldx) {
  // x is stored as cols×rows with leading dimension ldx; output is
  // rows×cols contiguous (i.e. the transpose of the stored matrix).
  std::vector<float> out(static_cast<size_t>(rows) * cols);
  for (int64_t r = 0; r < cols; ++r) {
    const float* src = x + r * ldx;
    for (int64_t c = 0; c < rows; ++c) {
      out[c * cols + r] = src[c];
    }
  }
  return out;
}

}  // namespace

void Gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          float alpha, const float* a, int64_t lda, const float* b,
          int64_t ldb, float beta, float* c, int64_t ldc) {
  MG_CHECK_GE(m, 0);
  MG_CHECK_GE(n, 0);
  MG_CHECK_GE(k, 0);
  if (m == 0 || n == 0) return;
  MG_TRACE_SCOPE("gemm");
  MG_METRIC_TIME_SCOPE("gemm.seconds");
  MG_METRIC_COUNT("gemm.calls", 1);
  MG_METRIC_COUNT("gemm.flops", 2 * m * n * k);
  if (k == 0 || alpha == 0.0f) {
    // Pure C-scaling; rows are independent.
    if (beta != 1.0f) {
      const int64_t grain = std::max<int64_t>(1, kMinFlopsPerChunk / n);
      ParallelFor(0, m, grain, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          float* c_row = c + i * ldc;
          for (int64_t j = 0; j < n; ++j) c_row[j] *= beta;
        }
      });
    }
    return;
  }

  // A transposed operand is packed once so the microkernel always streams
  // contiguous A rows; for this library's sizes the packing cost is noise.
  std::vector<float> a_packed;
  const float* a_eff = a;
  int64_t lda_eff = lda;
  if (trans_a) {
    a_packed = PackTransposed(a, m, k, lda);
    a_eff = a_packed.data();
    lda_eff = k;
  }

  // B panels: packed panel-major (each panel a contiguous k×kNR strip the
  // microkernel streams sequentially) whenever the packing cost amortizes —
  // a transposed B always, a non-transposed B once enough C rows reuse it.
  // For short C (few rows) a non-transposed B is read in place (the
  // microkernel strides by ldb) with only the ragged n % kNR edge packed
  // zero-padded, so the microkernel always works on full kNR-wide panels.
  // Packed and in-place reads see the same values in the same order, so the
  // choice never affects results. Packing happens once, before the row
  // partition, so chunk boundaries cannot affect it either.
  const int64_t num_panels = (n + kNR - 1) / kNR;
  const int64_t num_full_panels = n / kNR;
  std::vector<float> b_packed;
  const float* b_inplace = nullptr;
  if (trans_b || m >= kPackBMinRows) {
    b_packed.resize(static_cast<size_t>(num_panels) * k * kNR);
    const int64_t panel_grain =
        std::max<int64_t>(1, kMinFlopsPerChunk / std::max<int64_t>(1, k * kNR));
    ParallelFor(0, num_panels, panel_grain, [&](int64_t p0, int64_t p1) {
      for (int64_t jp = p0; jp < p1; ++jp) {
        PackPanel(b, ldb, trans_b, k, jp * kNR,
                  std::min<int64_t>(kNR, n - jp * kNR),
                  b_packed.data() + jp * k * kNR);
      }
    });
  } else {
    b_inplace = b;
    if (num_full_panels < num_panels) {
      b_packed.resize(static_cast<size_t>(k) * kNR);
      PackPanel(b, ldb, /*trans_b=*/false, k, num_full_panels * kNR,
                n - num_full_panels * kNR, b_packed.data());
    }
  }

  // Row-blocked parallel microkernel: disjoint C row ranges per chunk; each
  // row's accumulation order is fixed (ascending k, 8-lane j blocks), so
  // any partition — and either SIMD backend — is bit-identical.
  const int64_t grain =
      std::max<int64_t>(1, kMinFlopsPerChunk / std::max<int64_t>(1, n * k));
  simd::Dispatch([&](auto backend) {
    using B = decltype(backend);
    ParallelFor(0, m, grain, [&](int64_t i0, int64_t i1) {
      GemmRows<B>(i0, i1, n, k, alpha, a_eff, lda_eff, b_inplace, ldb,
                  b_packed.data(), num_full_panels, beta, c, ldc);
    });
  });
}

}  // namespace mocograd
