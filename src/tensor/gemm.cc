#include "tensor/gemm.h"

#include <algorithm>
#include <cstring>

#include "base/check.h"
#include "base/env.h"
#include "base/scratch.h"
#include "base/simd.h"
#include "base/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

// Cache-hierarchy-aware GEMM (docs/SIMD.md "The GEMM macro-kernel"):
//
//   - a 6×16 register-blocked microkernel (12 vector accumulators) at the
//     core, identical on every SIMD backend;
//   - a Goto-style macro-kernel around it for m >= kPackBMinRows: the k
//     dimension is split into ~kc-deep slices accumulated into C in slice
//     order, mc×kc blocks of op(A) are packed per slice into a per-thread
//     scratch arena in microkernel order, op(B) is packed once into
//     contiguous k×16 panels, and C columns are walked in nc-wide groups —
//     mc/kc/nc chosen so the A block and the B slice stay L1/L2 resident
//     (MOCOGRAD_GEMM_BLOCK overrides them for testing/tuning);
//   - shape-specialized paths that bypass packing entirely: SIMD GEMV
//     kernels for m == 1 and n == 1, and a rank-update path for k <=
//     kRankUpdateMaxK, so no shape class pays packing cost it cannot
//     amortize (the m == 1 case used to be slower than the seed kernel).
//
// All scratch (packed operands, GEMV accumulators) lives in grow-only
// per-thread arenas (base/scratch.h): zero heap allocations on the
// steady-state path.
//
// Determinism: block sizes are process-wide constants, independent of
// thread count and ISA. Each output element's value depends only on its
// row/column and the fixed (kc, nc, panel) decomposition — never on the
// ParallelFor partition, the mc/kMR row grouping, or the backend — so any
// pool size and either backend produce bit-identical results for a given
// block configuration (changing MOCOGRAD_GEMM_BLOCK changes the
// accumulation tree, like swapping BLAS versions would).

namespace mocograd {

namespace {

// Minimum multiply-adds a parallel chunk should amortize; below this the
// range runs on the calling thread.
constexpr int64_t kMinFlopsPerChunk = 1 << 16;

// Register-blocked microkernel tile: 6 C rows × 16 C columns (two 8-lane
// vectors), i.e. 12 vector accumulators plus two B vectors and one
// broadcast A value in flight — 15 of the 16 architectural vector
// registers.
constexpr int64_t kMR = 6;
constexpr int64_t kNR = 16;

// Below this many C rows, packing a non-transposed B into panels costs more
// than the in-place strided reads it saves (each B element is only reused
// m times), and the blocked macro-kernel's A packing cannot amortize
// either — such shapes take the streaming full-k path. m == 1 peels off
// earlier into the GEMV kernels, so the in-place path serves 2 <= m < 16;
// BENCH_gemm.json's cutover_12x512x256 row records the heuristic's win.
constexpr int64_t kPackBMinRows = 16;

// The blocked macro-kernel packs mc×kc blocks of op(A); every packed
// element is reused once per 16-column panel, so the (gather-order) pack
// only amortizes when op(B) is at least this wide — 16 panels, one full
// default column group. Narrower shapes (tall_512x32x64 in
// BENCH_gemm.json is the cautionary datapoint: n = 32 gives two reuses
// per packed element, and packing cost it a third of its throughput) take
// the streaming full-k path, which reads A in place and re-reads it once
// per panel instead — few panels is exactly when that is cheap.
constexpr int64_t kBlockedMinCols = 256;

// With at most this many rank-1 terms, the packing and tile machinery
// costs more than it saves; the rank-update path streams op(B) rows in
// place instead.
constexpr int64_t kRankUpdateMaxK = 6;

// Default macro-kernel blocking, sized for typical 32–48 KiB L1d / >=512
// KiB L2: the packed B slice of one column group (kc×nc×4 = 256 KiB) plus
// one packed A block (mc×kc×4 = 96 KiB) stay L2-resident, while the
// microkernel streams one kc×16 B panel (16 KiB) from L1 against six
// packed A rows.
constexpr GemmBlockSizes kDefaultBlocks = {96, 256, 256};

GemmBlockSizes Sanitize(GemmBlockSizes b) {
  b.mc = std::clamp<int64_t>(b.mc, 1, 1 << 16);
  b.kc = std::clamp<int64_t>(b.kc, 1, 1 << 16);
  b.nc = std::clamp<int64_t>(b.nc, 1, 1 << 20);
  b.nc = (b.nc + kNR - 1) / kNR * kNR;
  return b;
}

GemmBlockSizes BlocksFromEnv() {
  const std::vector<int> v =
      GetEnvIntList("MOCOGRAD_GEMM_BLOCK", 1, 1 << 20);
  GemmBlockSizes b = kDefaultBlocks;
  if (v.size() == 1) {
    b = {v[0], v[0], v[0]};
  } else if (v.size() == 3) {
    b = {v[0], v[1], v[2]};
  }
  return Sanitize(b);
}

GemmBlockSizes& BlockConfig() {
  static GemmBlockSizes cfg = BlocksFromEnv();
  return cfg;
}

// MG_HOT_PATH — everything below (pack, microkernel, macro-kernel, GEMV and
// rank-update paths, and Gemm itself) is the per-step steady state: all
// scratch must come from ScratchScope, never the heap (docs/CORRECTNESS.md;
// the steady-state allocation tests in tests/tensor/gemm_microkernel_test.cc
// measure the same contract dynamically).

// One 16-column panel of op(B): `data` points at row p=0, rows are `stride`
// floats apart. Full panels of a non-transposed B are read in place
// (stride = ldb) on the small-m path; transposed, blocked-path, and edge
// panels are packed to stride = kNR with zero padding past the matrix edge.
struct PanelView {
  const float* data;
  int64_t stride;
};

// op(A) as the microkernel reads it: element (r, p) at
// data[r * row_stride + p * p_stride]. In-place rows use {a + i*lda, lda,
// 1}; packed microkernel-order blocks use {block, 1, mr} (each k step's mr
// row values contiguous — one stream instead of mr strided ones).
struct AView {
  const float* data;
  int64_t row_stride;
  int64_t p_stride;
};

// Packs columns [j0, j0+cols) of op(B) into dst as a k×kNR panel,
// zero-padding columns past `cols`. Pure copies — deterministic for any
// caller-side parallelization over panels.
void PackPanel(const float* b, int64_t ldb, bool trans_b, int64_t k,
               int64_t j0, int64_t cols, float* dst) {
  for (int64_t p = 0; p < k; ++p) {
    float* row = dst + p * kNR;
    if (trans_b) {
      for (int64_t j = 0; j < cols; ++j) row[j] = b[(j0 + j) * ldb + p];
    } else {
      const float* src = b + p * ldb + j0;
      for (int64_t j = 0; j < cols; ++j) row[j] = src[j];
    }
    for (int64_t j = cols; j < kNR; ++j) row[j] = 0.0f;
  }
}

// Rows in the next microkernel tile when `left` rows remain. Full kMR
// tiles, except a trailing remainder of kMR + 2 rows splits 4 + 4 rather
// than 6 + 2: a 2-row tile issues only a third of the FMAs of a 6-row one
// per B load, so the balanced split keeps e.g. m == 32 (the im2col conv
// shape) at full port utilization. Tiling never affects results — each C
// row's arithmetic is independent of how rows are grouped.
int64_t NextMr(int64_t left) {
  if (left == kMR + 2) return 4;
  return std::min<int64_t>(kMR, left);
}

// Packs rows [i0, i0+rows) × k-slice [p0, p0+kc) of op(A) into dst in
// microkernel order: NextMr-row sub-blocks, each stored p-major with its
// mr row values contiguous per k step (sub-block element (r, p) at
// [p * mr + r]). Handles both transpose flags, which is what retired the
// whole-matrix transposed-A copy. Pure copies — layout never affects
// results.
void PackABlock(const float* a, int64_t lda, bool trans_a, int64_t i0,
                int64_t rows, int64_t p0, int64_t kc, float* dst) {
  for (int64_t ir = 0; ir < rows;) {
    const int64_t mr = NextMr(rows - ir);
    float* blk = dst + ir * kc;
    if (trans_a) {
      for (int64_t p = 0; p < kc; ++p) {
        const float* src = a + (p0 + p) * lda + i0 + ir;
        float* out = blk + p * mr;
        for (int64_t r = 0; r < mr; ++r) out[r] = src[r];
      }
    } else {
      for (int64_t r = 0; r < mr; ++r) {
        const float* src = a + (i0 + ir + r) * lda + p0;
        for (int64_t p = 0; p < kc; ++p) blk[p * mr + r] = src[p];
      }
    }
    ir += mr;
  }
}

// Accumulates the MR×kNR tile Σ_p a[r][p] · b[p][j] into `tile`. Per-row
// arithmetic is one fused multiply-add per (p, lane) in ascending p order,
// independent of MR — grouping rows into blocks (or splitting them across
// ParallelFor chunks) never changes a row's result.
template <typename B, int MR>
void MicroKernel(int64_t k, AView a, PanelView b, float* tile) {
  using F32 = typename B::F32;
  F32 acc[MR][2];
  for (int r = 0; r < MR; ++r) {
    acc[r][0] = F32::Zero();
    acc[r][1] = F32::Zero();
  }
  const float* bp = b.data;
  const float* ap = a.data;
  for (int64_t p = 0; p < k; ++p, bp += b.stride, ap += a.p_stride) {
    const F32 b0 = F32::Load(bp);
    const F32 b1 = F32::Load(bp + 8);
    for (int r = 0; r < MR; ++r) {
      const F32 av = F32::Broadcast(ap[r * a.row_stride]);
      acc[r][0] = MulAdd(av, b0, acc[r][0]);
      acc[r][1] = MulAdd(av, b1, acc[r][1]);
    }
  }
  for (int r = 0; r < MR; ++r) {
    acc[r][0].Store(tile + r * kNR);
    acc[r][1].Store(tile + r * kNR + 8);
  }
}

// Cache-prefetch hint; architecturally a no-op, so it can never affect
// results.
inline void PrefetchLine(const float* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

template <typename B>
void RunMicroKernel(int64_t mr, int64_t k, AView a, PanelView b,
                    float* tile) {
  switch (mr) {
    case 1: MicroKernel<B, 1>(k, a, b, tile); break;
    case 2: MicroKernel<B, 2>(k, a, b, tile); break;
    case 3: MicroKernel<B, 3>(k, a, b, tile); break;
    case 4: MicroKernel<B, 4>(k, a, b, tile); break;
    case 5: MicroKernel<B, 5>(k, a, b, tile); break;
    default: MicroKernel<B, 6>(k, a, b, tile); break;
  }
}

// Applies an mr×nr tile to C at `c` (row stride ldc). Three modes, each
// with one fused or exactly-rounded operation per element, mirrored
// exactly by the scalar tail so every backend and the vector/tail split
// agree bit for bit:
//   - first k-slice, beta == 0:  C = alpha·tile (C never read — stale
//     NaN/Inf cannot leak through, BLAS semantics);
//   - first k-slice, beta != 0:  C = fma(beta, C, alpha·tile);
//   - accumulate (later slices): C = fma(alpha, tile, C).
template <typename B>
void StoreTile(const float* tile, float* c, int64_t ldc, int64_t mr,
               int64_t nr, float alpha, float beta, bool accumulate) {
  using F32 = typename B::F32;
  const F32 valpha = F32::Broadcast(alpha);
  const F32 vbeta = F32::Broadcast(beta);
  for (int64_t r = 0; r < mr; ++r) {
    float* c_row = c + r * ldc;
    const float* t_row = tile + r * kNR;
    if (nr == kNR) {
      const F32 t0 = F32::Load(t_row);
      const F32 t1 = F32::Load(t_row + 8);
      if (accumulate) {
        MulAdd(valpha, t0, F32::Load(c_row)).Store(c_row);
        MulAdd(valpha, t1, F32::Load(c_row + 8)).Store(c_row + 8);
      } else if (beta == 0.0f) {
        (valpha * t0).Store(c_row);
        (valpha * t1).Store(c_row + 8);
      } else {
        MulAdd(vbeta, F32::Load(c_row), valpha * t0).Store(c_row);
        MulAdd(vbeta, F32::Load(c_row + 8), valpha * t1).Store(c_row + 8);
      }
    } else if (accumulate) {
      for (int64_t j = 0; j < nr; ++j) {
        c_row[j] = simd::MulAdd(alpha, t_row[j], c_row[j]);
      }
    } else if (beta == 0.0f) {
      for (int64_t j = 0; j < nr; ++j) c_row[j] = alpha * t_row[j];
    } else {
      for (int64_t j = 0; j < nr; ++j) {
        c_row[j] = simd::MulAdd(beta, c_row[j], alpha * t_row[j]);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Streaming full-k path (m < kPackBMinRows or n < kBlockedMinCols): panels
// iterate outermost so a panel stays hot across every row tile of the
// chunk, and A is read in place — shapes on this path are exactly the ones
// where A packing and k blocking cannot amortize.
// ---------------------------------------------------------------------------

// Rows [i0, i1) of C, streaming the full k dimension per panel.
template <typename B>
void GemmRows(int64_t i0, int64_t i1, int64_t n, int64_t k, float alpha,
              const float* a, int64_t lda, const float* b_inplace,
              int64_t ldb, const float* b_packed, int64_t num_full_panels,
              float beta, float* c, int64_t ldc) {
  alignas(32) float tile[kMR * kNR];
  const int64_t num_panels = (n + kNR - 1) / kNR;
  for (int64_t jp = 0; jp < num_panels; ++jp) {
    const int64_t j0 = jp * kNR;
    const int64_t nr = std::min<int64_t>(kNR, n - j0);
    PanelView panel;
    if (b_inplace != nullptr && jp < num_full_panels) {
      panel = {b_inplace + j0, ldb};
    } else {
      // Packed panels: when B was packed panel-major all panels live in
      // b_packed; otherwise only the ragged edge panel does (index 0).
      const int64_t idx = b_inplace != nullptr ? 0 : jp;
      panel = {b_packed + idx * k * kNR, kNR};
    }
    for (int64_t i = i0; i < i1;) {
      const int64_t mr = NextMr(i1 - i);
      RunMicroKernel<B>(mr, k, AView{a + i * lda, lda, 1}, panel, tile);
      StoreTile<B>(tile, c + i * ldc + j0, ldc, mr, nr, alpha, beta,
                   /*accumulate=*/false);
      i += mr;
    }
  }
}

// ---------------------------------------------------------------------------
// Blocked macro-kernel path (m >= kPackBMinRows).
// ---------------------------------------------------------------------------

// Rows [i0, i1) of C for one ~kc-deep k-slice of the macro-kernel, against
// the slice's freshly packed B panels. Loop order per chunk: mc row
// blocks, each mc×kc piece of op(A) packed exactly once into this
// thread's arena → nc-wide column groups → 16-column panels → microkernel
// row tiles. Packing sits above the column loops, so each gathered op(A)
// element is reused across every panel of the slice — the reuse
// kBlockedMinCols guarantees. Accumulation order is fixed by the k-slice
// boundaries alone (k and kc), so every element's value is independent of
// the row partition and of mc/nc.
template <typename B>
void BlockedSliceRows(int64_t i0, int64_t i1, int64_t n, int64_t kc,
                      float alpha, const float* a, int64_t lda, bool trans_a,
                      int64_t p0, const float* b_slice, float beta, float* c,
                      int64_t ldc, const GemmBlockSizes& bs,
                      bool accumulate) {
  alignas(32) float tile[kMR * kNR];
  ScratchScope scope;
  float* a_buf = scope.AllocFloats(static_cast<size_t>(bs.mc) * bs.kc);
  const int64_t num_panels = (n + kNR - 1) / kNR;
  for (int64_t ic = i0; ic < i1; ic += bs.mc) {
    const int64_t mc = std::min(bs.mc, i1 - ic);
    PackABlock(a, lda, trans_a, ic, mc, p0, kc, a_buf);
    // Spread prefetches of the next panel's slice across this panel's
    // tiles, so its first tile finds the slice already in L1. Without the
    // hint, that first tile streams its ~kc cache lines at L2 latency —
    // a fixed per-panel cost that only m/kMR tiles amortize, which is
    // exactly what held the m = 32 im2col shape ~15% under the larger-m
    // shapes.
    const int64_t tiles = (mc + kMR - 1) / kMR;
    const int64_t pf_per_tile = (kc + tiles - 1) / tiles;
    for (int64_t jc = 0; jc < n; jc += bs.nc) {
      const int64_t jc_end = std::min(n, jc + bs.nc);
      for (int64_t j0 = jc; j0 < jc_end; j0 += kNR) {
        const int64_t jp = j0 / kNR;
        const int64_t nr = std::min<int64_t>(kNR, n - j0);
        const PanelView panel{b_slice + jp * kc * kNR, kNR};
        // Each packed panel row is kNR floats — exactly one cache line.
        const float* next_panel =
            jp + 1 < num_panels ? b_slice + (jp + 1) * kc * kNR : nullptr;
        int64_t pf_line = 0;
        for (int64_t ir = 0; ir < mc;) {
          const int64_t mr = NextMr(mc - ir);
          RunMicroKernel<B>(mr, kc, AView{a_buf + ir * kc, 1, mr}, panel,
                            tile);
          StoreTile<B>(tile, c + (ic + ir) * ldc + j0, ldc, mr, nr, alpha,
                       beta, accumulate);
          if (next_panel != nullptr) {
            const int64_t end = std::min(kc, pf_line + pf_per_tile);
            for (; pf_line < end; ++pf_line) {
              PrefetchLine(next_panel + pf_line * kNR);
            }
          }
          ir += mr;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Shape-specialized paths: GEMV (m == 1 / n == 1) and small-k rank update.
// None of them pack B or touch tiles; all scratch comes from the arena.
// ---------------------------------------------------------------------------

// Lane-blocked f32 dot product: 8-lane fused multiply-adds over the body,
// the 8 lane partials combined left to right, then the <8 tail folded in
// with scalar fma — the same fixed tree on every backend.
template <typename B>
float DotF32(const float* x, const float* y, int64_t k) {
  using F32 = typename B::F32;
  F32 acc = F32::Zero();
  int64_t p = 0;
  for (; p + 8 <= k; p += 8) {
    acc = MulAdd(F32::Load(x + p), F32::Load(y + p), acc);
  }
  alignas(32) float lane[8];
  acc.Store(lane);
  float s = lane[0];
  for (int i = 1; i < 8; ++i) s += lane[i];
  for (; p < k; ++p) s = simd::MulAdd(x[p], y[p], s);
  return s;
}

// out[j] = alpha·acc[j] + beta·out[j] write-out shared by the axpy-style
// GEMV kernels; vector body and scalar tail perform the same per-element
// arithmetic.
template <typename B>
void StoreRow(const float* acc, float* out, int64_t len, float alpha,
              float beta) {
  using F32 = typename B::F32;
  const F32 valpha = F32::Broadcast(alpha);
  const F32 vbeta = F32::Broadcast(beta);
  int64_t j = 0;
  if (beta == 0.0f) {
    for (; j + 8 <= len; j += 8) {
      (valpha * F32::Load(acc + j)).Store(out + j);
    }
    for (; j < len; ++j) out[j] = alpha * acc[j];
  } else {
    for (; j + 8 <= len; j += 8) {
      MulAdd(vbeta, F32::Load(out + j), valpha * F32::Load(acc + j))
          .Store(out + j);
    }
    for (; j < len; ++j) out[j] = simd::MulAdd(beta, out[j], alpha * acc[j]);
  }
}

// m == 1, op(B) = B: one C row via axpy accumulation — ascending-p fused
// multiply-adds of op(A)[p] · B row p into a raw accumulator, streaming B's
// rows contiguously (this shape used to crawl through 16-column panel
// strides at 0.64× the seed kernel). Disjoint j-chunks parallelize it.
template <typename B>
void GemvRowAxpy(int64_t n, int64_t k, float alpha, const float* a,
                 int64_t a_stride, const float* b, int64_t ldb, float beta,
                 float* c) {
  using F32 = typename B::F32;
  const int64_t grain =
      std::max<int64_t>(kNR, kMinFlopsPerChunk / std::max<int64_t>(1, k));
  ParallelFor(0, n, grain, [&](int64_t j0, int64_t j1) {
    const int64_t len = j1 - j0;
    ScratchScope scope;
    float* acc = scope.AllocFloats(static_cast<size_t>(len));
    std::memset(acc, 0, static_cast<size_t>(len) * sizeof(float));
    for (int64_t p = 0; p < k; ++p) {
      const float av = a[p * a_stride];
      const F32 vav = F32::Broadcast(av);
      const float* brow = b + p * ldb + j0;
      int64_t j = 0;
      for (; j + 8 <= len; j += 8) {
        MulAdd(vav, F32::Load(brow + j), F32::Load(acc + j)).Store(acc + j);
      }
      for (; j < len; ++j) acc[j] = simd::MulAdd(av, brow[j], acc[j]);
    }
    StoreRow<B>(acc, c + j0, len, alpha, beta);
  });
}

// m == 1, op(B) = Bᵀ: C row of dot products between the op(A) row and B's
// stored rows (both contiguous).
template <typename B>
void GemvRowDot(int64_t n, int64_t k, float alpha, const float* a_vec,
                const float* b, int64_t ldb, float beta, float* c) {
  const int64_t grain =
      std::max<int64_t>(1, kMinFlopsPerChunk / std::max<int64_t>(1, k));
  ParallelFor(0, n, grain, [&](int64_t j0, int64_t j1) {
    for (int64_t j = j0; j < j1; ++j) {
      const float dot = DotF32<B>(a_vec, b + j * ldb, k);
      c[j] = beta == 0.0f ? alpha * dot : simd::MulAdd(beta, c[j], alpha * dot);
    }
  });
}

// n == 1, op(A) = A: C column of dot products between A's stored rows and
// the (packed-contiguous) op(B) column.
template <typename B>
void GemvColDot(int64_t m, int64_t k, float alpha, const float* a,
                int64_t lda, const float* b_vec, float beta, float* c,
                int64_t ldc) {
  const int64_t grain =
      std::max<int64_t>(1, kMinFlopsPerChunk / std::max<int64_t>(1, k));
  ParallelFor(0, m, grain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const float dot = DotF32<B>(a + i * lda, b_vec, k);
      float* out = c + i * ldc;
      *out = beta == 0.0f ? alpha * dot : simd::MulAdd(beta, *out, alpha * dot);
    }
  });
}

// n == 1, op(A) = Aᵀ: axpy accumulation over A's stored rows (contiguous
// m-length spans), disjoint i-chunks in parallel; the strided C column is
// written scalar with the same per-element arithmetic as StoreRow's tail.
template <typename B>
void GemvColAxpy(int64_t m, int64_t k, float alpha, const float* a,
                 int64_t lda, const float* b, int64_t b_stride, float beta,
                 float* c, int64_t ldc) {
  using F32 = typename B::F32;
  const int64_t grain =
      std::max<int64_t>(kNR, kMinFlopsPerChunk / std::max<int64_t>(1, k));
  ParallelFor(0, m, grain, [&](int64_t i0, int64_t i1) {
    const int64_t len = i1 - i0;
    ScratchScope scope;
    float* acc = scope.AllocFloats(static_cast<size_t>(len));
    std::memset(acc, 0, static_cast<size_t>(len) * sizeof(float));
    for (int64_t p = 0; p < k; ++p) {
      const float bv = b[p * b_stride];
      const F32 vbv = F32::Broadcast(bv);
      const float* arow = a + p * lda + i0;
      int64_t i = 0;
      for (; i + 8 <= len; i += 8) {
        MulAdd(vbv, F32::Load(arow + i), F32::Load(acc + i)).Store(acc + i);
      }
      for (; i < len; ++i) acc[i] = simd::MulAdd(bv, arow[i], acc[i]);
    }
    for (int64_t i = 0; i < len; ++i) {
      float* out = c + (i0 + i) * ldc;
      *out = beta == 0.0f ? alpha * acc[i]
                          : simd::MulAdd(beta, *out, alpha * acc[i]);
    }
  });
}

// k <= kRankUpdateMaxK, op(B) = B: per C row, an ascending-p chain of at
// most kRankUpdateMaxK broadcast-FMAs over in-place B rows — identical
// per-element arithmetic to the microkernel, minus every packing and tile
// cost the tiny k could never repay.
template <typename B>
void RankUpdateRows(int64_t m, int64_t n, int64_t k, float alpha,
                    const float* a, int64_t lda, bool trans_a,
                    const float* b, int64_t ldb, float beta, float* c,
                    int64_t ldc) {
  using F32 = typename B::F32;
  const int64_t grain = std::max<int64_t>(
      1, kMinFlopsPerChunk / std::max<int64_t>(1, n * k));
  ParallelFor(0, m, grain, [&](int64_t i0, int64_t i1) {
    const F32 valpha = F32::Broadcast(alpha);
    const F32 vbeta = F32::Broadcast(beta);
    float av[kRankUpdateMaxK];
    for (int64_t i = i0; i < i1; ++i) {
      for (int64_t p = 0; p < k; ++p) {
        av[p] = trans_a ? a[p * lda + i] : a[i * lda + p];
      }
      float* c_row = c + i * ldc;
      int64_t j = 0;
      for (; j + 8 <= n; j += 8) {
        F32 acc = F32::Zero();
        for (int64_t p = 0; p < k; ++p) {
          acc = MulAdd(F32::Broadcast(av[p]), F32::Load(b + p * ldb + j), acc);
        }
        if (beta == 0.0f) {
          (valpha * acc).Store(c_row + j);
        } else {
          MulAdd(vbeta, F32::Load(c_row + j), valpha * acc).Store(c_row + j);
        }
      }
      for (; j < n; ++j) {
        float s = 0.0f;
        for (int64_t p = 0; p < k; ++p) {
          s = simd::MulAdd(av[p], b[p * ldb + j], s);
        }
        c_row[j] = beta == 0.0f ? alpha * s
                                : simd::MulAdd(beta, c_row[j], alpha * s);
      }
    }
  });
}

// m == 1 front end: packs the op(A) row when it is strided, then runs the
// axpy (op(B) = B) or dot (op(B) = Bᵀ) kernel.
void GemvRow(bool trans_a, bool trans_b, int64_t n, int64_t k, float alpha,
             const float* a, int64_t lda, const float* b, int64_t ldb,
             float beta, float* c) {
  ScratchScope scope;
  simd::Dispatch([&](auto backend) {
    using B = decltype(backend);
    if (!trans_b) {
      GemvRowAxpy<B>(n, k, alpha, a, trans_a ? lda : 1, b, ldb, beta, c);
      return;
    }
    const float* a_vec = a;
    if (trans_a) {
      float* packed = scope.AllocFloats(static_cast<size_t>(k));
      for (int64_t p = 0; p < k; ++p) packed[p] = a[p * lda];
      a_vec = packed;
    }
    GemvRowDot<B>(n, k, alpha, a_vec, b, ldb, beta, c);
  });
}

// n == 1 front end: packs the op(B) column when it is strided, then runs
// the axpy (op(A) = Aᵀ) or dot (op(A) = A) kernel.
void GemvCol(bool trans_a, bool trans_b, int64_t m, int64_t k, float alpha,
             const float* a, int64_t lda, const float* b, int64_t ldb,
             float beta, float* c, int64_t ldc) {
  ScratchScope scope;
  simd::Dispatch([&](auto backend) {
    using B = decltype(backend);
    if (trans_a) {
      GemvColAxpy<B>(m, k, alpha, a, lda, b, trans_b ? 1 : ldb, beta, c, ldc);
      return;
    }
    // op(B) column: stored contiguously when trans_b (B is 1×k), strided
    // by ldb otherwise.
    const float* b_vec = b;
    if (!trans_b && ldb != 1) {
      float* packed = scope.AllocFloats(static_cast<size_t>(k));
      for (int64_t p = 0; p < k; ++p) packed[p] = b[p * ldb];
      b_vec = packed;
    }
    GemvColDot<B>(m, k, alpha, a, lda, b_vec, beta, c, ldc);
  });
}

}  // namespace

GemmBlockSizes GemmBlocking() { return BlockConfig(); }

void SetGemmBlockingForTest(int64_t mc, int64_t kc, int64_t nc) {
  if (mc < 1 || kc < 1 || nc < 1) {
    BlockConfig() = BlocksFromEnv();
  } else {
    BlockConfig() = Sanitize({mc, kc, nc});
  }
}

void Gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          float alpha, const float* a, int64_t lda, const float* b,
          int64_t ldb, float beta, float* c, int64_t ldc) {
  MG_CHECK_GE(m, 0);
  MG_CHECK_GE(n, 0);
  MG_CHECK_GE(k, 0);
  if (m == 0 || n == 0) return;
  MG_CHECK(c != nullptr, "Gemm: null C for m=", m, " n=", n);
  MG_CHECK_GE(ldc, n, "Gemm: ldc below row width");
  if (k > 0) {
    MG_CHECK(a != nullptr && b != nullptr, "Gemm: null operand for m=", m,
             " n=", n, " k=", k);
    MG_CHECK_GE(lda, trans_a ? m : k, "Gemm: lda below op(A) row width");
    MG_CHECK_GE(ldb, trans_b ? k : n, "Gemm: ldb below op(B) row width");
  }
  MG_TRACE_SCOPE("gemm");
  MG_METRIC_TIME_SCOPE("gemm.seconds");
  MG_METRIC_COUNT("gemm.calls", 1);
  MG_METRIC_COUNT("gemm.flops", 2 * m * n * k);
  if (k == 0 || alpha == 0.0f) {
    // Pure C-scaling; rows are independent.
    if (beta != 1.0f) {
      const int64_t grain = std::max<int64_t>(1, kMinFlopsPerChunk / n);
      ParallelFor(0, m, grain, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          float* c_row = c + i * ldc;
          for (int64_t j = 0; j < n; ++j) c_row[j] *= beta;
        }
      });
    }
    return;
  }

  // Degenerate output shapes take the packing-free GEMV kernels.
  if (m == 1) return GemvRow(trans_a, trans_b, n, k, alpha, a, lda, b, ldb,
                             beta, c);
  if (n == 1) return GemvCol(trans_a, trans_b, m, k, alpha, a, lda, b, ldb,
                             beta, c, ldc);
  if (k <= kRankUpdateMaxK && !trans_b) {
    simd::Dispatch([&](auto backend) {
      RankUpdateRows<decltype(backend)>(m, n, k, alpha, a, lda, trans_a, b,
                                        ldb, beta, c, ldc);
    });
    return;
  }

  const GemmBlockSizes bs = BlockConfig();
  // The macro-kernel needs both dimensions: enough rows that packed B
  // panels amortize, and enough columns that packed A blocks do. Anything
  // narrower streams A in place over the full k extent.
  const bool blocked = m >= kPackBMinRows && n >= kBlockedMinCols;
  const int64_t num_panels = (n + kNR - 1) / kNR;
  const int64_t num_full_panels = n / kNR;

  // The blocked macro-kernel interleaves packing and compute per k-slice:
  // for each ~kc-deep slice, B's panels for that slice are packed (in
  // parallel) into the caller's arena and then immediately consumed by the
  // row-parallel compute pass while still cache-hot. Packing B upfront in
  // full is a trap this layout dodges: a conv-sized B (1 MiB+) packed
  // whole falls out of L2 between pack and use, and the im2col shape lost
  // a third of its throughput to exactly that before the slice
  // interleave. Packed and in-place reads see the same values in the same
  // order, and packing happens before the row partition, so neither the
  // pack choice nor chunk boundaries ever affect results.
  if (blocked) {
    ScratchScope scope;
    const int64_t num_kb = (k + bs.kc - 1) / bs.kc;
    const int64_t kc_max = (k + num_kb - 1) / num_kb;
    float* b_slice =
        scope.AllocFloats(static_cast<size_t>(num_panels) * kc_max * kNR);
    const int64_t grain = std::max<int64_t>(
        bs.mc, kMinFlopsPerChunk / std::max<int64_t>(1, n * k));
    for (int64_t kb = 0; kb < num_kb; ++kb) {
      // Near-equal slices (each <= kc): k=288 with kc=256 becomes
      // 144+144, not 256+32, so no slice degenerates.
      const int64_t p0 = kb * k / num_kb;
      const int64_t kc = (kb + 1) * k / num_kb - p0;
      {
        MG_TRACE_SCOPE("gemm.pack");
        MG_METRIC_TIME_SCOPE("gemm.pack.seconds");
        // Rows [p0, p0+kc) of op(B): offsetting the base pointer reduces
        // the slice to a fresh k=kc pack.
        const float* b_base = trans_b ? b + p0 : b + p0 * ldb;
        const int64_t panel_grain = std::max<int64_t>(
            1, kMinFlopsPerChunk / std::max<int64_t>(1, kc * kNR));
        ParallelFor(0, num_panels, panel_grain, [&](int64_t q0, int64_t q1) {
          for (int64_t jp = q0; jp < q1; ++jp) {
            PackPanel(b_base, ldb, trans_b, kc, jp * kNR,
                      std::min<int64_t>(kNR, n - jp * kNR),
                      b_slice + jp * kc * kNR);
          }
        });
      }
      MG_TRACE_SCOPE("gemm.compute");
      MG_METRIC_TIME_SCOPE("gemm.compute.seconds");
      simd::Dispatch([&](auto backend) {
        using B = decltype(backend);
        ParallelFor(0, m, grain, [&](int64_t i0, int64_t i1) {
          BlockedSliceRows<B>(i0, i1, n, kc, alpha, a, lda, trans_a, p0,
                              b_slice, beta, c, ldc, bs, /*accumulate=*/kb > 0);
        });
      });
    }
    return;
  }

  // Streaming full-k path. B panels: packed panel-major whenever the cost
  // amortizes — a transposed B always, a non-transposed B once enough C
  // rows reuse it (kPackBMinRows). Below the cutover a non-transposed B
  // is read in place (the microkernel strides by ldb) with only the
  // ragged n % kNR edge packed zero-padded.
  ScratchScope scope;
  float* b_packed = nullptr;
  const float* b_inplace = nullptr;
  const float* a_eff = a;
  int64_t lda_eff = lda;
  {
    MG_TRACE_SCOPE("gemm.pack");
    MG_METRIC_TIME_SCOPE("gemm.pack.seconds");
    if (trans_b || m >= kPackBMinRows) {
      b_packed =
          scope.AllocFloats(static_cast<size_t>(num_panels) * k * kNR);
      const int64_t panel_grain = std::max<int64_t>(
          1, kMinFlopsPerChunk / std::max<int64_t>(1, k * kNR));
      ParallelFor(0, num_panels, panel_grain, [&](int64_t p0, int64_t p1) {
        for (int64_t jp = p0; jp < p1; ++jp) {
          PackPanel(b, ldb, trans_b, k, jp * kNR,
                    std::min<int64_t>(kNR, n - jp * kNR),
                    b_packed + jp * k * kNR);
        }
      });
    } else {
      b_inplace = b;
      if (num_full_panels < num_panels) {
        b_packed = scope.AllocFloats(static_cast<size_t>(k) * kNR);
        PackPanel(b, ldb, /*trans_b=*/false, k, num_full_panels * kNR,
                  n - num_full_panels * kNR, b_packed);
      }
    }

    // A transposed operand: the blocked macro-kernel's per-block packing
    // gathers op(A) directly, but the streaming path reads A in place, so
    // it gets a row-major copy of op(A) here (pure copies, parallel over
    // rows) — no path keeps a whole-matrix transposed copy beyond the
    // call.
    if (trans_a) {
      float* a_packed = scope.AllocFloats(static_cast<size_t>(m) * k);
      const int64_t row_grain =
          std::max<int64_t>(1, kMinFlopsPerChunk / std::max<int64_t>(1, k));
      ParallelFor(0, m, row_grain, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          for (int64_t p = 0; p < k; ++p) {
            a_packed[i * k + p] = a[p * lda + i];
          }
        }
      });
      a_eff = a_packed;
      lda_eff = k;
    }
  }

  // Disjoint C row ranges per chunk; each row's accumulation tree is fixed
  // independent of the partition, so any chunking — and either SIMD
  // backend — is bit-identical.
  MG_TRACE_SCOPE("gemm.compute");
  MG_METRIC_TIME_SCOPE("gemm.compute.seconds");
  const int64_t grain =
      std::max<int64_t>(1, kMinFlopsPerChunk / std::max<int64_t>(1, n * k));
  simd::Dispatch([&](auto backend) {
    ParallelFor(0, m, grain, [&](int64_t i0, int64_t i1) {
      GemmRows<decltype(backend)>(i0, i1, n, k, alpha, a_eff, lda_eff,
                                  b_inplace, ldb, b_packed, num_full_panels,
                                  beta, c, ldc);
    });
  });
}

// MG_HOT_PATH_END

}  // namespace mocograd
