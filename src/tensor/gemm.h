#ifndef MOCOGRAD_TENSOR_GEMM_H_
#define MOCOGRAD_TENSOR_GEMM_H_

#include <cstdint>

namespace mocograd {

/// Single-precision general matrix multiply:
///   C = alpha * op(A) * op(B) + beta * C
/// with op(X) = X or Xᵀ. A is m×k (after op), B is k×n (after op), C is m×n.
/// All matrices are dense row-major with the given leading dimensions
/// (elements per row of the *stored* matrix). This is the single compute
/// kernel behind Linear, Conv2d (via im2col) and their backward passes.
void Gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          float alpha, const float* a, int64_t lda, const float* b,
          int64_t ldb, float beta, float* c, int64_t ldc);

}  // namespace mocograd

#endif  // MOCOGRAD_TENSOR_GEMM_H_
