#ifndef MOCOGRAD_TENSOR_GEMM_H_
#define MOCOGRAD_TENSOR_GEMM_H_

#include <cstdint>

namespace mocograd {

/// Single-precision general matrix multiply:
///   C = alpha * op(A) * op(B) + beta * C
/// with op(X) = X or Xᵀ. A is m×k (after op), B is k×n (after op), C is m×n.
/// All matrices are dense row-major with the given leading dimensions
/// (elements per row of the *stored* matrix). This is the single compute
/// kernel behind Linear, Conv2d (via im2col) and their backward passes.
void Gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          float alpha, const float* a, int64_t lda, const float* b,
          int64_t ldb, float beta, float* c, int64_t ldc);

/// C = A · B with B stored as bf16 (bit pattern of the high 16 bits of an
/// f32), no transposes, alpha = 1, beta = 0. B's values are widened to f32
/// on load (exact) and all accumulation is f32, so the only precision loss
/// is B's storage rounding. Per-element accumulation chains match across
/// the m == 1 and m >= 2 paths, preserving batched ≡ single-row serving
/// (docs/SERVING.md "Reduced precision"). Serving-only: the training path
/// never calls this.
void GemmBf16B(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
               const uint16_t* b, int64_t ldb, float* c, int64_t ldc);

/// Cache-blocking factors of the Gemm macro-kernel (docs/SIMD.md): the k
/// dimension is split into ~kc-deep slices whose partial products are
/// accumulated into C in slice order, mc rows of A are packed per block,
/// and C columns are walked in nc-wide groups. Fixed per process — defaults
/// tuned for L1/L2 residency, overridable via MOCOGRAD_GEMM_BLOCK
/// ("mc,kc,nc", or one value for all three; read once at first use).
struct GemmBlockSizes {
  int64_t mc = 0;
  int64_t kc = 0;
  int64_t nc = 0;  // always a multiple of the 16-column panel width
};

/// The block sizes the next Gemm call will use.
GemmBlockSizes GemmBlocking();

/// Overrides the blocking at runtime (tests force tiny/ragged blocks with
/// this). Any value < 1 resets to the MOCOGRAD_GEMM_BLOCK / default
/// configuration. nc is rounded up to a multiple of the panel width. Not
/// thread-safe — call only while no Gemm is in flight.
void SetGemmBlockingForTest(int64_t mc, int64_t kc, int64_t nc);

}  // namespace mocograd

#endif  // MOCOGRAD_TENSOR_GEMM_H_
