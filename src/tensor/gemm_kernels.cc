#include "tensor/gemm_kernels.h"

#include "base/check.h"

namespace mocograd {

const GemmKernels* GemmKernelsForTier(simd::IsaTier tier) {
  switch (tier) {
    case simd::IsaTier::kAvx512:
      return GetGemmKernelsAvx512();
    case simd::IsaTier::kAvx2:
      return GetGemmKernelsAvx2();
    case simd::IsaTier::kNeon:
      return GetGemmKernelsNeon();
    case simd::IsaTier::kSse:
      return GetGemmKernelsSse();
    case simd::IsaTier::kScalar:
      return GetGemmKernelsScalar();
  }
  return nullptr;
}

const GemmKernels& ActiveGemmKernels() {
  // Walk down from the active tier; the scalar floor always exists. The
  // active tier is clamped to availability at set time, so the walk is a
  // defensive no-op in practice.
  for (int t = static_cast<int>(simd::ActiveTier()); t > 0; --t) {
    const GemmKernels* k = GemmKernelsForTier(static_cast<simd::IsaTier>(t));
    if (k != nullptr) return *k;
  }
  const GemmKernels* scalar = GetGemmKernelsScalar();
  MG_CHECK(scalar != nullptr, "scalar kernel tier missing");
  return *scalar;
}

}  // namespace mocograd
