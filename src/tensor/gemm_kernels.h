#ifndef MOCOGRAD_TENSOR_GEMM_KERNELS_H_
#define MOCOGRAD_TENSOR_GEMM_KERNELS_H_

// Per-tier function table behind the Gemm front-end (tensor/gemm.cc) —
// the GEMM side of the runtime ISA dispatch (docs/SIMD.md "Runtime
// dispatch"; base/vec_kernels.h is the elementwise side). Each entry is a
// *chunk-level* kernel: the front-end owns every orchestration decision —
// path selection, grain sizes, ParallelFor partitioning, ScratchScope
// allocation, B packing — and hands each chunk (plus any scratch it needs)
// to the table. Tier TUs therefore never touch the thread pool or the
// scratch arenas, which keeps the per-TU ISA flags from leaking inline
// copies of shared infrastructure into baseline callers.
//
// Bit-determinism: every tier implements the identical per-element
// accumulation chains (ascending-k fused multiply-adds, the fixed
// lane-combine of DotF32), so the tier choice — like the ParallelFor
// partition — can never change results. The AVX-512 tier's 16-column-wide
// microkernel variant computes lane j exactly as lane j%8 of the 8-lane
// pair it replaces.
//
// The bf16 entries serve the reduced-precision serving path
// (docs/SERVING.md "Reduced precision"): B is stored as bf16 and widened
// to f32 *on load* (exact), all accumulation stays f32, alpha = 1 and
// beta = 0 are implied.

#include <cstdint>

#include "base/simd.h"

namespace mocograd {

// Register-blocked microkernel tile: 6 C rows × 16 C columns (two 8-lane
// vectors), i.e. 12 vector accumulators plus two B vectors and one
// broadcast A value in flight — 15 of the 16 architectural vector
// registers of the 8-lane tiers (the AVX-512 tier fuses each row's pair
// into one 16-lane register).
inline constexpr int64_t kMR = 6;
inline constexpr int64_t kNR = 16;

// With at most this many rank-1 terms, the packing and tile machinery
// costs more than it saves; the rank-update path streams op(B) rows in
// place instead.
inline constexpr int64_t kRankUpdateMaxK = 6;

struct GemmKernels {
  const char* name;  // tier name, equals simd::TierName of the source tier

  // Streaming full-k path: rows [i0, i1) of C, panels outermost. Full
  // panels of a non-transposed B read in place via b_inplace (stride ldb)
  // when non-null and jp < num_full_panels; other panels come from
  // b_packed (k×kNR each, zero-padded; index 0 holds the ragged edge when
  // b_inplace is set, panel jp otherwise).
  void (*gemm_rows)(int64_t i0, int64_t i1, int64_t n, int64_t k,
                    float alpha, const float* a, int64_t lda,
                    const float* b_inplace, int64_t ldb,
                    const float* b_packed, int64_t num_full_panels,
                    float beta, float* c, int64_t ldc);

  // Blocked macro-kernel path: rows [i0, i1) of C for one ~kc-deep k-slice
  // against the slice's packed B panels. a_buf is caller scratch of
  // mc_block*kc floats for the microkernel-order op(A) packs; mc_block /
  // nc_block are the GemmBlockSizes factors.
  void (*blocked_slice_rows)(int64_t i0, int64_t i1, int64_t n, int64_t kc,
                             float alpha, const float* a, int64_t lda,
                             bool trans_a, int64_t p0, const float* b_slice,
                             float beta, float* c, int64_t ldc,
                             int64_t mc_block, int64_t nc_block,
                             bool accumulate, float* a_buf);

  // m == 1, op(B) = B: columns [j0, j1) of the C row via ascending-p axpy
  // accumulation. acc is caller scratch of j1-j0 floats.
  void (*gemv_row_axpy)(int64_t j0, int64_t j1, int64_t k, float alpha,
                        const float* a, int64_t a_stride, const float* b,
                        int64_t ldb, float beta, float* c, float* acc);

  // m == 1, op(B) = Bᵀ: columns [j0, j1) of the C row as dot products
  // (a_vec contiguous).
  void (*gemv_row_dot)(int64_t j0, int64_t j1, int64_t k, float alpha,
                       const float* a_vec, const float* b, int64_t ldb,
                       float beta, float* c);

  // n == 1, op(A) = A: rows [i0, i1) of the C column as dot products
  // (b_vec contiguous).
  void (*gemv_col_dot)(int64_t i0, int64_t i1, int64_t k, float alpha,
                       const float* a, int64_t lda, const float* b_vec,
                       float beta, float* c, int64_t ldc);

  // n == 1, op(A) = Aᵀ: rows [i0, i1) of the C column via axpy
  // accumulation over A's stored rows. acc is caller scratch of i1-i0
  // floats.
  void (*gemv_col_axpy)(int64_t i0, int64_t i1, int64_t k, float alpha,
                        const float* a, int64_t lda, const float* b,
                        int64_t b_stride, float beta, float* c, int64_t ldc,
                        float* acc);

  // k <= kRankUpdateMaxK, op(B) = B: rows [i0, i1) of C as short
  // broadcast-FMA chains over in-place B rows.
  void (*rank_update_rows)(int64_t i0, int64_t i1, int64_t n, int64_t k,
                           float alpha, const float* a, int64_t lda,
                           bool trans_a, const float* b, int64_t ldb,
                           float beta, float* c, int64_t ldc);

  // bf16-B variants (alpha = 1, beta = 0 implied; a stays f32). Same
  // per-element ascending-k chains as the f32 kernels, with B widened on
  // load — m == 1 and m >= 2 paths agree per element, preserving
  // batched ≡ single-row serving.
  void (*gemv_row_axpy_bf16)(int64_t j0, int64_t j1, int64_t k,
                             const float* a, const uint16_t* b, int64_t ldb,
                             float* c, float* acc);
  // Full 16-column panels read in place from the bf16 B (stride ldb); the
  // ragged n % kNR edge panel, if any, is pre-widened by the front-end
  // into b_edge_packed (k×kNR f32, zero-padded).
  void (*gemm_rows_bf16)(int64_t i0, int64_t i1, int64_t n, int64_t k,
                         const float* a, int64_t lda, const uint16_t* b,
                         int64_t ldb, const float* b_edge_packed, float* c,
                         int64_t ldc);
};

// Per-tier tables, defined in tensor/gemm_kernels_tier_*.cc; nullptr when
// the tier is not compiled in. The scalar table always exists.
const GemmKernels* GetGemmKernelsScalar();
const GemmKernels* GetGemmKernelsSse();
const GemmKernels* GetGemmKernelsAvx2();
const GemmKernels* GetGemmKernelsAvx512();
const GemmKernels* GetGemmKernelsNeon();

/// Table for `tier`, or nullptr when that tier was not compiled in.
const GemmKernels* GemmKernelsForTier(simd::IsaTier tier);

/// Table for simd::ActiveTier(), walking down to the nearest available
/// tier (defensively — the active tier is already clamped to availability).
const GemmKernels& ActiveGemmKernels();

}  // namespace mocograd

#endif  // MOCOGRAD_TENSOR_GEMM_KERNELS_H_
