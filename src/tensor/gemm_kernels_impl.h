#ifndef MOCOGRAD_TENSOR_GEMM_KERNELS_IMPL_H_
#define MOCOGRAD_TENSOR_GEMM_KERNELS_IMPL_H_

// Chunk-level GEMM kernel bodies behind the GemmKernels table
// (tensor/gemm_kernels.h), templated on a base/simd.h backend tag.
// Included ONLY by the per-tier TUs (tensor/gemm_kernels_tier_*.cc).
//
// Everything lives in an unnamed namespace on purpose: the tier TUs are
// compiled with per-file ISA flags, and internal linkage guarantees each
// TU keeps its own copies — the linker can never substitute a copy built
// with wider ISA flags into a baseline caller. For the same reason nothing
// here may call ParallelFor or open a ScratchScope; the front-end
// (tensor/gemm.cc) owns orchestration and passes chunks and scratch in.
//
// Determinism invariants (docs/SIMD.md): each C element's value depends
// only on its row/column and the fixed (kc, nc, panel) decomposition —
// never on the row grouping (kMR tiles), the chunk partition, or the
// backend. The wide (16-lane) microkernel variants compute lane j exactly
// as lane j%8 of the 8-lane pair they replace, so they are bit-identical
// too. Any edit must keep every tier bit-identical
// (tests/integration/simd_determinism_test.cc).

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "base/bf16.h"
#include "base/simd.h"
#include "tensor/gemm_kernels.h"

namespace mocograd {
namespace {

// MG_HOT_PATH — per-step steady state; no allocation, no container growth
// (docs/CORRECTNESS.md).

// Detects a backend exposing a 16-lane F32Wide type (the AVX-512 tier).
template <typename B, typename = void>
struct HasWideF32 : std::false_type {};
template <typename B>
struct HasWideF32<B, std::void_t<typename B::F32Wide>> : std::true_type {};

// One 16-column panel of op(B): `data` points at row p=0, rows are
// `stride` floats apart. Full panels of a non-transposed B are read in
// place (stride = ldb) on the small-m path; transposed, blocked-path, and
// edge panels are packed to stride = kNR with zero padding past the
// matrix edge.
struct PanelView {
  const float* data;
  int64_t stride;
};

// A bf16-storage panel, widened to f32 on load (exact).
struct Bf16PanelView {
  const uint16_t* data;
  int64_t stride;
};

// op(A) as the microkernel reads it: element (r, p) at
// data[r * row_stride + p * p_stride]. In-place rows use {a + i*lda, lda,
// 1}; packed microkernel-order blocks use {block, 1, mr} (each k step's mr
// row values contiguous — one stream instead of mr strided ones).
struct AView {
  const float* data;
  int64_t row_stride;
  int64_t p_stride;
};

// Rows in the next microkernel tile when `left` rows remain. Full kMR
// tiles, except a trailing remainder of kMR + 2 rows splits 4 + 4 rather
// than 6 + 2: a 2-row tile issues only a third of the FMAs of a 6-row one
// per B load, so the balanced split keeps e.g. m == 32 (the im2col conv
// shape) at full port utilization. Tiling never affects results — each C
// row's arithmetic is independent of how rows are grouped.
int64_t NextMr(int64_t left) {
  if (left == kMR + 2) return 4;
  return std::min<int64_t>(kMR, left);
}

// Packs rows [i0, i0+rows) × k-slice [p0, p0+kc) of op(A) into dst in
// microkernel order: NextMr-row sub-blocks, each stored p-major with its
// mr row values contiguous per k step (sub-block element (r, p) at
// [p * mr + r]). Pure copies — layout never affects results.
void PackABlock(const float* a, int64_t lda, bool trans_a, int64_t i0,
                int64_t rows, int64_t p0, int64_t kc, float* dst) {
  for (int64_t ir = 0; ir < rows;) {
    const int64_t mr = NextMr(rows - ir);
    float* blk = dst + ir * kc;
    if (trans_a) {
      for (int64_t p = 0; p < kc; ++p) {
        const float* src = a + (p0 + p) * lda + i0 + ir;
        float* out = blk + p * mr;
        for (int64_t r = 0; r < mr; ++r) out[r] = src[r];
      }
    } else {
      for (int64_t r = 0; r < mr; ++r) {
        const float* src = a + (i0 + ir + r) * lda + p0;
        for (int64_t p = 0; p < kc; ++p) blk[p * mr + r] = src[p];
      }
    }
    ir += mr;
  }
}

// Accumulates the MR×kNR tile Σ_p a[r][p] · b[p][j] into `tile`. Per-row
// arithmetic is one fused multiply-add per (p, lane) in ascending p order,
// independent of MR — grouping rows into blocks (or splitting them across
// chunks) never changes a row's result. The Panel type supplies the B row
// loads: f32 in place/packed, or bf16 widened on load.
template <typename B, int MR>
void MicroKernel(int64_t k, AView a, PanelView b, float* tile) {
  using F32 = typename B::F32;
  F32 acc[MR][2];
  for (int r = 0; r < MR; ++r) {
    acc[r][0] = F32::Zero();
    acc[r][1] = F32::Zero();
  }
  const float* bp = b.data;
  const float* ap = a.data;
  for (int64_t p = 0; p < k; ++p, bp += b.stride, ap += a.p_stride) {
    const F32 b0 = F32::Load(bp);
    const F32 b1 = F32::Load(bp + 8);
    for (int r = 0; r < MR; ++r) {
      const F32 av = F32::Broadcast(ap[r * a.row_stride]);
      acc[r][0] = MulAdd(av, b0, acc[r][0]);
      acc[r][1] = MulAdd(av, b1, acc[r][1]);
    }
  }
  for (int r = 0; r < MR; ++r) {
    acc[r][0].Store(tile + r * kNR);
    acc[r][1].Store(tile + r * kNR + 8);
  }
}

template <typename B, int MR>
void MicroKernelBf16(int64_t k, AView a, Bf16PanelView b, float* tile) {
  using F32 = typename B::F32;
  F32 acc[MR][2];
  for (int r = 0; r < MR; ++r) {
    acc[r][0] = F32::Zero();
    acc[r][1] = F32::Zero();
  }
  const uint16_t* bp = b.data;
  const float* ap = a.data;
  for (int64_t p = 0; p < k; ++p, bp += b.stride, ap += a.p_stride) {
    const F32 b0 = F32::LoadBf16(bp);
    const F32 b1 = F32::LoadBf16(bp + 8);
    for (int r = 0; r < MR; ++r) {
      const F32 av = F32::Broadcast(ap[r * a.row_stride]);
      acc[r][0] = MulAdd(av, b0, acc[r][0]);
      acc[r][1] = MulAdd(av, b1, acc[r][1]);
    }
  }
  for (int r = 0; r < MR; ++r) {
    acc[r][0].Store(tile + r * kNR);
    acc[r][1].Store(tile + r * kNR + 8);
  }
}

// 16-lane variants (AVX-512 tier): one register per tile row instead of a
// pair. Lane j runs the identical ascending-p FMA chain as lane j%8 of the
// 8-lane pair — bit-identical by construction. Panel rows are kNR
// contiguous floats in both the in-place and packed layouts, so one wide
// load replaces the b0/b1 pair.
template <typename B, int MR>
void MicroKernelWide(int64_t k, AView a, PanelView b, float* tile) {
  using W = typename B::F32Wide;
  W acc[MR];
  for (int r = 0; r < MR; ++r) acc[r] = W::Zero();
  const float* bp = b.data;
  const float* ap = a.data;
  for (int64_t p = 0; p < k; ++p, bp += b.stride, ap += a.p_stride) {
    const W bw = W::Load(bp);
    for (int r = 0; r < MR; ++r) {
      acc[r] = MulAdd(W::Broadcast(ap[r * a.row_stride]), bw, acc[r]);
    }
  }
  for (int r = 0; r < MR; ++r) acc[r].Store(tile + r * kNR);
}

template <typename B, int MR>
void MicroKernelWideBf16(int64_t k, AView a, Bf16PanelView b, float* tile) {
  using W = typename B::F32Wide;
  W acc[MR];
  for (int r = 0; r < MR; ++r) acc[r] = W::Zero();
  const uint16_t* bp = b.data;
  const float* ap = a.data;
  for (int64_t p = 0; p < k; ++p, bp += b.stride, ap += a.p_stride) {
    const W bw = W::LoadBf16(bp);
    for (int r = 0; r < MR; ++r) {
      acc[r] = MulAdd(W::Broadcast(ap[r * a.row_stride]), bw, acc[r]);
    }
  }
  for (int r = 0; r < MR; ++r) acc[r].Store(tile + r * kNR);
}

// Cache-prefetch hint; architecturally a no-op, so it can never affect
// results.
inline void PrefetchLine(const float* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

template <typename B>
void RunMicroKernel(int64_t mr, int64_t k, AView a, PanelView b,
                    float* tile) {
  if constexpr (HasWideF32<B>::value) {
    switch (mr) {
      case 1: MicroKernelWide<B, 1>(k, a, b, tile); break;
      case 2: MicroKernelWide<B, 2>(k, a, b, tile); break;
      case 3: MicroKernelWide<B, 3>(k, a, b, tile); break;
      case 4: MicroKernelWide<B, 4>(k, a, b, tile); break;
      case 5: MicroKernelWide<B, 5>(k, a, b, tile); break;
      default: MicroKernelWide<B, 6>(k, a, b, tile); break;
    }
  } else {
    switch (mr) {
      case 1: MicroKernel<B, 1>(k, a, b, tile); break;
      case 2: MicroKernel<B, 2>(k, a, b, tile); break;
      case 3: MicroKernel<B, 3>(k, a, b, tile); break;
      case 4: MicroKernel<B, 4>(k, a, b, tile); break;
      case 5: MicroKernel<B, 5>(k, a, b, tile); break;
      default: MicroKernel<B, 6>(k, a, b, tile); break;
    }
  }
}

template <typename B>
void RunMicroKernelBf16(int64_t mr, int64_t k, AView a, Bf16PanelView b,
                        float* tile) {
  if constexpr (HasWideF32<B>::value) {
    switch (mr) {
      case 1: MicroKernelWideBf16<B, 1>(k, a, b, tile); break;
      case 2: MicroKernelWideBf16<B, 2>(k, a, b, tile); break;
      case 3: MicroKernelWideBf16<B, 3>(k, a, b, tile); break;
      case 4: MicroKernelWideBf16<B, 4>(k, a, b, tile); break;
      case 5: MicroKernelWideBf16<B, 5>(k, a, b, tile); break;
      default: MicroKernelWideBf16<B, 6>(k, a, b, tile); break;
    }
  } else {
    switch (mr) {
      case 1: MicroKernelBf16<B, 1>(k, a, b, tile); break;
      case 2: MicroKernelBf16<B, 2>(k, a, b, tile); break;
      case 3: MicroKernelBf16<B, 3>(k, a, b, tile); break;
      case 4: MicroKernelBf16<B, 4>(k, a, b, tile); break;
      case 5: MicroKernelBf16<B, 5>(k, a, b, tile); break;
      default: MicroKernelBf16<B, 6>(k, a, b, tile); break;
    }
  }
}

// Applies an mr×nr tile to C at `c` (row stride ldc). Three modes, each
// with one fused or exactly-rounded operation per element, mirrored
// exactly by the scalar tail so every backend and the vector/tail split
// agree bit for bit:
//   - first k-slice, beta == 0:  C = alpha·tile (C never read — stale
//     NaN/Inf cannot leak through, BLAS semantics);
//   - first k-slice, beta != 0:  C = fma(beta, C, alpha·tile);
//   - accumulate (later slices): C = fma(alpha, tile, C).
template <typename B>
void StoreTile(const float* tile, float* c, int64_t ldc, int64_t mr,
               int64_t nr, float alpha, float beta, bool accumulate) {
  using F32 = typename B::F32;
  const F32 valpha = F32::Broadcast(alpha);
  const F32 vbeta = F32::Broadcast(beta);
  for (int64_t r = 0; r < mr; ++r) {
    float* c_row = c + r * ldc;
    const float* t_row = tile + r * kNR;
    if (nr == kNR) {
      const F32 t0 = F32::Load(t_row);
      const F32 t1 = F32::Load(t_row + 8);
      if (accumulate) {
        MulAdd(valpha, t0, F32::Load(c_row)).Store(c_row);
        MulAdd(valpha, t1, F32::Load(c_row + 8)).Store(c_row + 8);
      } else if (beta == 0.0f) {
        (valpha * t0).Store(c_row);
        (valpha * t1).Store(c_row + 8);
      } else {
        MulAdd(vbeta, F32::Load(c_row), valpha * t0).Store(c_row);
        MulAdd(vbeta, F32::Load(c_row + 8), valpha * t1).Store(c_row + 8);
      }
    } else if (accumulate) {
      for (int64_t j = 0; j < nr; ++j) {
        c_row[j] = simd::MulAdd(alpha, t_row[j], c_row[j]);
      }
    } else if (beta == 0.0f) {
      for (int64_t j = 0; j < nr; ++j) c_row[j] = alpha * t_row[j];
    } else {
      for (int64_t j = 0; j < nr; ++j) {
        c_row[j] = simd::MulAdd(beta, c_row[j], alpha * t_row[j]);
      }
    }
  }
}

// Streaming full-k path: rows [i0, i1) of C, panels outermost so a panel
// stays hot across every row tile of the chunk, A read in place.
template <typename B>
void GemmRowsT(int64_t i0, int64_t i1, int64_t n, int64_t k, float alpha,
               const float* a, int64_t lda, const float* b_inplace,
               int64_t ldb, const float* b_packed, int64_t num_full_panels,
               float beta, float* c, int64_t ldc) {
  alignas(64) float tile[kMR * kNR];
  const int64_t num_panels = (n + kNR - 1) / kNR;
  for (int64_t jp = 0; jp < num_panels; ++jp) {
    const int64_t j0 = jp * kNR;
    const int64_t nr = std::min<int64_t>(kNR, n - j0);
    PanelView panel;
    if (b_inplace != nullptr && jp < num_full_panels) {
      panel = {b_inplace + j0, ldb};
    } else {
      // Packed panels: when B was packed panel-major all panels live in
      // b_packed; otherwise only the ragged edge panel does (index 0).
      const int64_t idx = b_inplace != nullptr ? 0 : jp;
      panel = {b_packed + idx * k * kNR, kNR};
    }
    for (int64_t i = i0; i < i1;) {
      const int64_t mr = NextMr(i1 - i);
      RunMicroKernel<B>(mr, k, AView{a + i * lda, lda, 1}, panel, tile);
      StoreTile<B>(tile, c + i * ldc + j0, ldc, mr, nr, alpha, beta,
                   /*accumulate=*/false);
      i += mr;
    }
  }
}

// Streaming path over bf16 B (alpha = 1, beta = 0): full panels widen on
// load in place; the ragged edge panel arrives pre-widened and packed.
// Per-element chains match GemvRowAxpyBf16T exactly, so m == 1 and m >= 2
// serving paths agree bit for bit.
template <typename B>
void GemmRowsBf16T(int64_t i0, int64_t i1, int64_t n, int64_t k,
                   const float* a, int64_t lda, const uint16_t* b,
                   int64_t ldb, const float* b_edge_packed, float* c,
                   int64_t ldc) {
  alignas(64) float tile[kMR * kNR];
  const int64_t num_panels = (n + kNR - 1) / kNR;
  const int64_t num_full_panels = n / kNR;
  for (int64_t jp = 0; jp < num_panels; ++jp) {
    const int64_t j0 = jp * kNR;
    const int64_t nr = std::min<int64_t>(kNR, n - j0);
    if (jp < num_full_panels) {
      const Bf16PanelView panel{b + j0, ldb};
      for (int64_t i = i0; i < i1;) {
        const int64_t mr = NextMr(i1 - i);
        RunMicroKernelBf16<B>(mr, k, AView{a + i * lda, lda, 1}, panel,
                              tile);
        StoreTile<B>(tile, c + i * ldc + j0, ldc, mr, nr, 1.0f, 0.0f,
                     /*accumulate=*/false);
        i += mr;
      }
    } else {
      const PanelView panel{b_edge_packed, kNR};
      for (int64_t i = i0; i < i1;) {
        const int64_t mr = NextMr(i1 - i);
        RunMicroKernel<B>(mr, k, AView{a + i * lda, lda, 1}, panel, tile);
        StoreTile<B>(tile, c + i * ldc + j0, ldc, mr, nr, 1.0f, 0.0f,
                     /*accumulate=*/false);
        i += mr;
      }
    }
  }
}

// Blocked macro-kernel path: rows [i0, i1) of C for one ~kc-deep k-slice
// against the slice's freshly packed B panels. Loop order per chunk: mc
// row blocks, each mc×kc piece of op(A) packed exactly once into the
// caller-provided a_buf → nc-wide column groups → 16-column panels →
// microkernel row tiles. Accumulation order is fixed by the k-slice
// boundaries alone (k and kc), so every element's value is independent of
// the row partition and of mc/nc.
template <typename B>
void BlockedSliceRowsT(int64_t i0, int64_t i1, int64_t n, int64_t kc,
                       float alpha, const float* a, int64_t lda,
                       bool trans_a, int64_t p0, const float* b_slice,
                       float beta, float* c, int64_t ldc, int64_t mc_block,
                       int64_t nc_block, bool accumulate, float* a_buf) {
  alignas(64) float tile[kMR * kNR];
  const int64_t num_panels = (n + kNR - 1) / kNR;
  for (int64_t ic = i0; ic < i1; ic += mc_block) {
    const int64_t mc = std::min(mc_block, i1 - ic);
    PackABlock(a, lda, trans_a, ic, mc, p0, kc, a_buf);
    // Spread prefetches of the next panel's slice across this panel's
    // tiles, so its first tile finds the slice already in L1. Without the
    // hint, that first tile streams its ~kc cache lines at L2 latency —
    // a fixed per-panel cost that only m/kMR tiles amortize, which is
    // exactly what held the m = 32 im2col shape ~15% under the larger-m
    // shapes.
    const int64_t tiles = (mc + kMR - 1) / kMR;
    const int64_t pf_per_tile = (kc + tiles - 1) / tiles;
    for (int64_t jc = 0; jc < n; jc += nc_block) {
      const int64_t jc_end = std::min(n, jc + nc_block);
      for (int64_t j0 = jc; j0 < jc_end; j0 += kNR) {
        const int64_t jp = j0 / kNR;
        const int64_t nr = std::min<int64_t>(kNR, n - j0);
        const PanelView panel{b_slice + jp * kc * kNR, kNR};
        // Each packed panel row is kNR floats — exactly one cache line.
        const float* next_panel =
            jp + 1 < num_panels ? b_slice + (jp + 1) * kc * kNR : nullptr;
        int64_t pf_line = 0;
        for (int64_t ir = 0; ir < mc;) {
          const int64_t mr = NextMr(mc - ir);
          RunMicroKernel<B>(mr, kc, AView{a_buf + ir * kc, 1, mr}, panel,
                            tile);
          StoreTile<B>(tile, c + (ic + ir) * ldc + j0, ldc, mr, nr, alpha,
                       beta, accumulate);
          if (next_panel != nullptr) {
            const int64_t end = std::min(kc, pf_line + pf_per_tile);
            for (; pf_line < end; ++pf_line) {
              PrefetchLine(next_panel + pf_line * kNR);
            }
          }
          ir += mr;
        }
      }
    }
  }
}

// Lane-blocked f32 dot product: 8-lane fused multiply-adds over the body,
// the 8 lane partials combined left to right, then the <8 tail folded in
// with scalar fma — the same fixed tree on every backend.
template <typename B>
float DotF32(const float* x, const float* y, int64_t k) {
  using F32 = typename B::F32;
  F32 acc = F32::Zero();
  int64_t p = 0;
  for (; p + 8 <= k; p += 8) {
    acc = MulAdd(F32::Load(x + p), F32::Load(y + p), acc);
  }
  alignas(32) float lane[8];
  acc.Store(lane);
  float s = lane[0];
  for (int i = 1; i < 8; ++i) s += lane[i];
  for (; p < k; ++p) s = simd::MulAdd(x[p], y[p], s);
  return s;
}

// out[j] = alpha·acc[j] + beta·out[j] write-out shared by the axpy-style
// GEMV kernels; vector body and scalar tail perform the same per-element
// arithmetic.
template <typename B>
void StoreRow(const float* acc, float* out, int64_t len, float alpha,
              float beta) {
  using F32 = typename B::F32;
  const F32 valpha = F32::Broadcast(alpha);
  const F32 vbeta = F32::Broadcast(beta);
  int64_t j = 0;
  if (beta == 0.0f) {
    for (; j + 8 <= len; j += 8) {
      (valpha * F32::Load(acc + j)).Store(out + j);
    }
    for (; j < len; ++j) out[j] = alpha * acc[j];
  } else {
    for (; j + 8 <= len; j += 8) {
      MulAdd(vbeta, F32::Load(out + j), valpha * F32::Load(acc + j))
          .Store(out + j);
    }
    for (; j < len; ++j) out[j] = simd::MulAdd(beta, out[j], alpha * acc[j]);
  }
}

// m == 1, op(B) = B: columns [j0, j1) of the C row via axpy accumulation —
// ascending-p fused multiply-adds of op(A)[p] · B row p into the
// caller-provided accumulator, streaming B's rows contiguously.
template <typename B>
void GemvRowAxpyT(int64_t j0, int64_t j1, int64_t k, float alpha,
                  const float* a, int64_t a_stride, const float* b,
                  int64_t ldb, float beta, float* c, float* acc) {
  using F32 = typename B::F32;
  const int64_t len = j1 - j0;
  std::memset(acc, 0, static_cast<size_t>(len) * sizeof(float));
  for (int64_t p = 0; p < k; ++p) {
    const float av = a[p * a_stride];
    const F32 vav = F32::Broadcast(av);
    const float* brow = b + p * ldb + j0;
    int64_t j = 0;
    for (; j + 8 <= len; j += 8) {
      MulAdd(vav, F32::Load(brow + j), F32::Load(acc + j)).Store(acc + j);
    }
    for (; j < len; ++j) acc[j] = simd::MulAdd(av, brow[j], acc[j]);
  }
  StoreRow<B>(acc, c + j0, len, alpha, beta);
}

// bf16-B variant of GemvRowAxpyT (alpha = 1, beta = 0, a contiguous): the
// identical ascending-p chain with B widened on load.
template <typename B>
void GemvRowAxpyBf16T(int64_t j0, int64_t j1, int64_t k, const float* a,
                      const uint16_t* b, int64_t ldb, float* c, float* acc) {
  using F32 = typename B::F32;
  const int64_t len = j1 - j0;
  std::memset(acc, 0, static_cast<size_t>(len) * sizeof(float));
  for (int64_t p = 0; p < k; ++p) {
    const float av = a[p];
    const F32 vav = F32::Broadcast(av);
    const uint16_t* brow = b + p * ldb + j0;
    int64_t j = 0;
    for (; j + 8 <= len; j += 8) {
      MulAdd(vav, F32::LoadBf16(brow + j), F32::Load(acc + j))
          .Store(acc + j);
    }
    for (; j < len; ++j) {
      acc[j] = simd::MulAdd(av, F32FromBf16(brow[j]), acc[j]);
    }
  }
  StoreRow<B>(acc, c + j0, len, 1.0f, 0.0f);
}

// m == 1, op(B) = Bᵀ: columns [j0, j1) of the C row as dot products
// between the op(A) row and B's stored rows (both contiguous).
template <typename B>
void GemvRowDotT(int64_t j0, int64_t j1, int64_t k, float alpha,
                 const float* a_vec, const float* b, int64_t ldb, float beta,
                 float* c) {
  for (int64_t j = j0; j < j1; ++j) {
    const float dot = DotF32<B>(a_vec, b + j * ldb, k);
    c[j] = beta == 0.0f ? alpha * dot : simd::MulAdd(beta, c[j], alpha * dot);
  }
}

// n == 1, op(A) = A: rows [i0, i1) of the C column as dot products between
// A's stored rows and the (packed-contiguous) op(B) column.
template <typename B>
void GemvColDotT(int64_t i0, int64_t i1, int64_t k, float alpha,
                 const float* a, int64_t lda, const float* b_vec, float beta,
                 float* c, int64_t ldc) {
  for (int64_t i = i0; i < i1; ++i) {
    const float dot = DotF32<B>(a + i * lda, b_vec, k);
    float* out = c + i * ldc;
    *out = beta == 0.0f ? alpha * dot : simd::MulAdd(beta, *out, alpha * dot);
  }
}

// n == 1, op(A) = Aᵀ: rows [i0, i1) of the C column via axpy accumulation
// over A's stored rows (contiguous spans) into the caller-provided
// accumulator; the strided C column is written scalar with the same
// per-element arithmetic as StoreRow's tail.
template <typename B>
void GemvColAxpyT(int64_t i0, int64_t i1, int64_t k, float alpha,
                  const float* a, int64_t lda, const float* b,
                  int64_t b_stride, float beta, float* c, int64_t ldc,
                  float* acc) {
  using F32 = typename B::F32;
  const int64_t len = i1 - i0;
  std::memset(acc, 0, static_cast<size_t>(len) * sizeof(float));
  for (int64_t p = 0; p < k; ++p) {
    const float bv = b[p * b_stride];
    const F32 vbv = F32::Broadcast(bv);
    const float* arow = a + p * lda + i0;
    int64_t i = 0;
    for (; i + 8 <= len; i += 8) {
      MulAdd(vbv, F32::Load(arow + i), F32::Load(acc + i)).Store(acc + i);
    }
    for (; i < len; ++i) acc[i] = simd::MulAdd(bv, arow[i], acc[i]);
  }
  for (int64_t i = 0; i < len; ++i) {
    float* out = c + (i0 + i) * ldc;
    *out = beta == 0.0f ? alpha * acc[i]
                        : simd::MulAdd(beta, *out, alpha * acc[i]);
  }
}

// k <= kRankUpdateMaxK, op(B) = B: per C row, an ascending-p chain of at
// most kRankUpdateMaxK broadcast-FMAs over in-place B rows — identical
// per-element arithmetic to the microkernel, minus every packing and tile
// cost the tiny k could never repay.
template <typename B>
void RankUpdateRowsT(int64_t i0, int64_t i1, int64_t n, int64_t k,
                     float alpha, const float* a, int64_t lda, bool trans_a,
                     const float* b, int64_t ldb, float beta, float* c,
                     int64_t ldc) {
  using F32 = typename B::F32;
  const F32 valpha = F32::Broadcast(alpha);
  const F32 vbeta = F32::Broadcast(beta);
  float av[kRankUpdateMaxK];
  for (int64_t i = i0; i < i1; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      av[p] = trans_a ? a[p * lda + i] : a[i * lda + p];
    }
    float* c_row = c + i * ldc;
    int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
      F32 acc = F32::Zero();
      for (int64_t p = 0; p < k; ++p) {
        acc = MulAdd(F32::Broadcast(av[p]), F32::Load(b + p * ldb + j), acc);
      }
      if (beta == 0.0f) {
        (valpha * acc).Store(c_row + j);
      } else {
        MulAdd(vbeta, F32::Load(c_row + j), valpha * acc).Store(c_row + j);
      }
    }
    for (; j < n; ++j) {
      float s = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        s = simd::MulAdd(av[p], b[p * ldb + j], s);
      }
      c_row[j] = beta == 0.0f ? alpha * s
                              : simd::MulAdd(beta, c_row[j], alpha * s);
    }
  }
}

// MG_HOT_PATH_END

template <typename B>
GemmKernels MakeGemmKernels() {
  GemmKernels k;
  k.name = B::kName;
  k.gemm_rows = &GemmRowsT<B>;
  k.blocked_slice_rows = &BlockedSliceRowsT<B>;
  k.gemv_row_axpy = &GemvRowAxpyT<B>;
  k.gemv_row_dot = &GemvRowDotT<B>;
  k.gemv_col_dot = &GemvColDotT<B>;
  k.gemv_col_axpy = &GemvColAxpyT<B>;
  k.rank_update_rows = &RankUpdateRowsT<B>;
  k.gemv_row_axpy_bf16 = &GemvRowAxpyBf16T<B>;
  k.gemm_rows_bf16 = &GemmRowsBf16T<B>;
  return k;
}

}  // namespace
}  // namespace mocograd

#endif  // MOCOGRAD_TENSOR_GEMM_KERNELS_IMPL_H_
