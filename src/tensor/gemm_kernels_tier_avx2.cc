// AVX2+FMA GEMM kernel tier, compiled with -mavx2 -mfma
// (src/CMakeLists.txt per-file flags). The workhorse tier on most x86-64
// hardware: 8-lane hardware-FMA microkernel.

#include "tensor/gemm_kernels.h"

#if defined(MOCOGRAD_SIMD_AVX2)
#include "tensor/gemm_kernels_impl.h"
#endif

namespace mocograd {

#if defined(MOCOGRAD_SIMD_AVX2)
const GemmKernels* GetGemmKernelsAvx2() {
  static const GemmKernels kTable = MakeGemmKernels<simd::Avx2Backend>();
  return &kTable;
}
#else
const GemmKernels* GetGemmKernelsAvx2() { return nullptr; }
#endif

}  // namespace mocograd
