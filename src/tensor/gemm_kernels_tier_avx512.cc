// AVX-512 GEMM kernel tier, compiled with -mavx512{f,vl,dq,bw} -mavx2
// -mfma (src/CMakeLists.txt per-file flags). Avx512Backend::F32Wide fuses
// each microkernel row's 8-lane pair into one 16-lane register (half the
// FMA issue count per tile); lane j computes exactly lane j%8 of the pair,
// so results stay bit-identical to every other tier.

#include "tensor/gemm_kernels.h"

#if defined(MOCOGRAD_SIMD_AVX512)
#include "tensor/gemm_kernels_impl.h"
#endif

namespace mocograd {

#if defined(MOCOGRAD_SIMD_AVX512)
const GemmKernels* GetGemmKernelsAvx512() {
  static const GemmKernels kTable = MakeGemmKernels<simd::Avx512Backend>();
  return &kTable;
}
#else
const GemmKernels* GetGemmKernelsAvx512() { return nullptr; }
#endif

}  // namespace mocograd
