// NEON GEMM kernel tier: compiled on aarch64 where NEON is baseline (no
// extra flags). vfmaq_f32 is a true fused multiply-add, bit-identical to
// the x86 FMA and scalar libm-fma tiers.

#include "tensor/gemm_kernels.h"

#if defined(MOCOGRAD_SIMD_NEON)
#include "tensor/gemm_kernels_impl.h"
#endif

namespace mocograd {

#if defined(MOCOGRAD_SIMD_NEON)
const GemmKernels* GetGemmKernelsNeon() {
  static const GemmKernels kTable = MakeGemmKernels<simd::NeonBackend>();
  return &kTable;
}
#else
const GemmKernels* GetGemmKernelsNeon() { return nullptr; }
#endif

}  // namespace mocograd
