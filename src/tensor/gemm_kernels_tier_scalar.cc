// Scalar GEMM kernel tier: always compiled, no ISA flags — the portable
// floor of the runtime dispatch and the bit-exactness reference for every
// vector tier (scalar MulAdd is a correctly-rounded libm fma, matching
// hardware FMA lanes exactly).

#include "tensor/gemm_kernels.h"
#include "tensor/gemm_kernels_impl.h"

namespace mocograd {

const GemmKernels* GetGemmKernelsScalar() {
  static const GemmKernels kTable = MakeGemmKernels<simd::ScalarBackend>();
  return &kTable;
}

}  // namespace mocograd
