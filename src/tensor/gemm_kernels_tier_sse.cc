// SSE2 GEMM kernel tier: compiled whenever the x86-64 baseline provides
// SSE2 (no extra flags needed). MulAdd is per-lane libm fma — slower than
// hardware FMA but bit-identical, which is what makes this a usable
// compatibility tier on pre-AVX2 machines.

#include "tensor/gemm_kernels.h"

#if defined(MOCOGRAD_SIMD_SSE)
#include "tensor/gemm_kernels_impl.h"
#endif

namespace mocograd {

#if defined(MOCOGRAD_SIMD_SSE)
const GemmKernels* GetGemmKernelsSse() {
  static const GemmKernels kTable = MakeGemmKernels<simd::SseBackend>();
  return &kTable;
}
#else
const GemmKernels* GetGemmKernelsSse() { return nullptr; }
#endif

}  // namespace mocograd
