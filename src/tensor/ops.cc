#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "base/simd.h"
#include "base/thread_pool.h"
#include "base/vec_ops.h"
#include "tensor/gemm.h"

namespace mocograd {
namespace tops {

namespace {

// Minimum elements per parallel chunk for elementwise loops; smaller
// tensors run inline on the caller.
constexpr int64_t kElemGrain = 1 << 14;

// Fixed block length for reductions. Every reduction below sums each block
// sequentially and then combines the per-block partials in block order —
// the same decomposition regardless of thread count — so serial and
// parallel runs are bit-identical for any pool size.
constexpr int64_t kReduceBlock = 1 << 15;

// Blocked reduction over [0, n): `block_fn(begin, end)` returns one block's
// partial (computed sequentially); partials are combined in block order.
template <typename BlockFn>
double BlockedReduce(int64_t n, BlockFn block_fn) {
  const int64_t num_blocks = (n + kReduceBlock - 1) / kReduceBlock;
  if (num_blocks <= 1) return n > 0 ? block_fn(int64_t{0}, n) : 0.0;
  std::vector<double> partials(num_blocks);
  ParallelFor(0, num_blocks, 1, [&](int64_t b0, int64_t b1) {
    for (int64_t b = b0; b < b1; ++b) {
      partials[b] =
          block_fn(b * kReduceBlock, std::min(n, (b + 1) * kReduceBlock));
    }
  });
  double s = 0.0;
  for (double p : partials) s += p;
  return s;
}

// Applies one elementwise op over the broadcast of a and b. `span_fn(n,
// pa, pb, po)` is the op's vectorized span kernel (a vec::Ew* front-end
// routed through the per-tier table — 8-lane blocks with a scalar tail
// doing the identical per-element arithmetic); `fn(x, y)` is the same op
// on one float pair, used by the strided broadcast walk. Shapes are padded
// to a common rank; strides of broadcast (size-1) axes are zero. Every
// output element is written independently, so flat-index ranges
// parallelize with bit-identical results.
template <typename SpanFn, typename Fn>
Tensor BroadcastBinary(const Tensor& a, const Tensor& b, SpanFn span_fn,
                       Fn fn) {
  MG_CHECK(a.defined() && b.defined());
  const Shape out_shape = Shape::Broadcast(a.shape(), b.shape());
  Tensor out(out_shape);

  // Fast path: identical shapes — vectorized.
  if (a.shape() == b.shape()) {
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    const int64_t n = out.NumElements();
    ParallelFor(0, n, kElemGrain, [&](int64_t i0, int64_t i1) {
      span_fn(i1 - i0, pa + i0, pb + i0, po + i0);
    });
    return out;
  }

  const int rank = out_shape.Rank();
  auto padded_strides = [&](const Tensor& t) {
    std::vector<int64_t> s(rank, 0);
    const auto native = t.shape().Strides();
    const int off = rank - t.Rank();
    for (int i = 0; i < t.Rank(); ++i) {
      s[off + i] = t.shape().Dim(i) == 1 ? 0 : native[i];
    }
    return s;
  };
  const std::vector<int64_t> sa = padded_strides(a);
  const std::vector<int64_t> sb = padded_strides(b);
  const std::vector<int64_t> so = out_shape.Strides();

  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const int64_t n = out.NumElements();
  ParallelFor(0, n, kElemGrain, [&](int64_t f0, int64_t f1) {
    for (int64_t flat = f0; flat < f1; ++flat) {
      int64_t oa = 0, ob = 0;
      int64_t rem = flat;
      for (int d = 0; d < rank; ++d) {
        const int64_t i = rem / so[d];
        rem -= i * so[d];
        oa += i * sa[d];
        ob += i * sb[d];
      }
      po[flat] = fn(pa[oa], pb[ob]);
    }
  });
  return out;
}

template <typename Fn>
Tensor Unary(const Tensor& a, Fn fn) {
  MG_CHECK(a.defined());
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  const int64_t n = a.NumElements();
  ParallelFor(0, n, kElemGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) po[i] = fn(pa[i]);
  });
  return out;
}

// Vectorized Unary for ops with a vec::Ew* span kernel; `span_fn(n, pa,
// po)` processes one chunk (transcendental ops stay on scalar Unary).
template <typename SpanFn>
Tensor UnaryV(const Tensor& a, SpanFn span_fn) {
  MG_CHECK(a.defined());
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  const int64_t n = a.NumElements();
  ParallelFor(0, n, kElemGrain, [&](int64_t i0, int64_t i1) {
    span_fn(i1 - i0, pa + i0, po + i0);
  });
  return out;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, vec::EwAdd,
                         [](float x, float y) { return x + y; });
}
Tensor Sub(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, vec::EwSub,
                         [](float x, float y) { return x - y; });
}
Tensor Mul(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, vec::EwMul,
                         [](float x, float y) { return x * y; });
}
Tensor Div(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, vec::EwDiv,
                         [](float x, float y) { return x / y; });
}
Tensor Maximum(const Tensor& a, const Tensor& b) {
  // simd::Max(y, x) ≡ std::max(x, y) lane-for-lane, NaN handling included
  // (the second operand — x — wins on unordered comparisons).
  return BroadcastBinary(a, b, vec::EwMaximum, [](float x, float y) {
    return simd::Max(y, x);
  });
}

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryV(a, [s](int64_t n, const float* pa, float* po) {
    vec::EwAddScalar(n, pa, s, po);
  });
}
Tensor MulScalar(const Tensor& a, float s) {
  return UnaryV(a, [s](int64_t n, const float* pa, float* po) {
    vec::EwMulScalar(n, pa, s, po);
  });
}
Tensor PowScalar(const Tensor& a, float exponent) {
  return Unary(a, [exponent](float x) { return std::pow(x, exponent); });
}

Tensor Neg(const Tensor& a) { return UnaryV(a, vec::EwNeg); }
Tensor Exp(const Tensor& a) {
  return Unary(a, [](float x) { return std::exp(x); });
}
Tensor Log(const Tensor& a) {
  return Unary(a, [](float x) { return std::log(x); });
}
Tensor Sqrt(const Tensor& a) { return UnaryV(a, vec::EwSqrt); }
Tensor Tanh(const Tensor& a) {
  return Unary(a, [](float x) { return std::tanh(x); });
}
Tensor Sigmoid(const Tensor& a) {
  return Unary(a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}
Tensor Relu(const Tensor& a) {
  // Max(x, 0) = (x > 0) ? x : 0 — NaN inputs map to 0, exactly the
  // behavior of the previous scalar ternary.
  return UnaryV(a, vec::EwRelu);
}
Tensor Abs(const Tensor& a) { return UnaryV(a, vec::EwAbs); }
Tensor Sign(const Tensor& a) {
  return Unary(a, [](float x) { return x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f); });
}
Tensor Clamp(const Tensor& a, float lo, float hi) {
  // Min(Max(x, lo), hi) matches std::min(hi, std::max(lo, x)) lane-for-lane
  // (NaN x clamps to lo on both).
  return UnaryV(a, [lo, hi](int64_t n, const float* pa, float* po) {
    vec::EwClamp(n, pa, lo, hi, po);
  });
}

void Axpy(float alpha, const Tensor& x, Tensor& y) {
  MG_CHECK_EQ(x.NumElements(), y.NumElements(), "Axpy size mismatch");
  const float* px = x.data();
  float* py = y.data();
  const int64_t n = x.NumElements();
  ParallelFor(0, n, kElemGrain, [&](int64_t i0, int64_t i1) {
    vec::Axpy(i1 - i0, alpha, px + i0, py + i0);
  });
}

void ScaleInPlace(Tensor& y, float s) {
  float* py = y.data();
  const int64_t n = y.NumElements();
  ParallelFor(0, n, kElemGrain, [&](int64_t i0, int64_t i1) {
    vec::Scale(i1 - i0, s, py + i0);
  });
}

void AddInPlace(Tensor& y, const Tensor& x) { Axpy(1.0f, x, y); }

Tensor MatMul(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  MG_CHECK_EQ(a.Rank(), 2, "MatMul expects 2-D lhs, got ",
              a.shape().ToString());
  MG_CHECK_EQ(b.Rank(), 2, "MatMul expects 2-D rhs, got ",
              b.shape().ToString());
  const int64_t m = trans_a ? a.Dim(1) : a.Dim(0);
  const int64_t k = trans_a ? a.Dim(0) : a.Dim(1);
  const int64_t kb = trans_b ? b.Dim(1) : b.Dim(0);
  const int64_t n = trans_b ? b.Dim(0) : b.Dim(1);
  MG_CHECK_EQ(k, kb, "MatMul inner dims: ", a.shape().ToString(), " x ",
              b.shape().ToString());
  Tensor out(Shape{m, n});
  Gemm(trans_a, trans_b, m, n, k, 1.0f, a.data(), a.Dim(1), b.data(),
       b.Dim(1), 0.0f, out.data(), n);
  return out;
}

Tensor Transpose2D(const Tensor& a) {
  MG_CHECK_EQ(a.Rank(), 2);
  const int64_t r = a.Dim(0), c = a.Dim(1);
  Tensor out(Shape{c, r});
  const float* pa = a.data();
  float* po = out.data();
  const int64_t grain = std::max<int64_t>(1, kElemGrain / std::max<int64_t>(1, c));
  ParallelFor(0, r, grain, [&](int64_t r0, int64_t r1) {
    // Each source row scatters into its own output column — disjoint writes.
    for (int64_t i = r0; i < r1; ++i) {
      for (int64_t j = 0; j < c; ++j) po[j * r + i] = pa[i * c + j];
    }
  });
  return out;
}

float SumAll(const Tensor& a) {
  const float* p = a.data();
  return static_cast<float>(
      BlockedReduce(a.NumElements(), [p](int64_t b, int64_t e) {
        return vec::SumF64(e - b, p + b);
      }));
}

float MeanAll(const Tensor& a) {
  MG_CHECK_GT(a.NumElements(), 0);
  return SumAll(a) / static_cast<float>(a.NumElements());
}

float MaxAll(const Tensor& a) {
  MG_CHECK_GT(a.NumElements(), 0);
  const float* p = a.data();
  return *std::max_element(p, p + a.NumElements());
}

float Norm(const Tensor& a) {
  const float* p = a.data();
  return static_cast<float>(
      std::sqrt(BlockedReduce(a.NumElements(), [p](int64_t b, int64_t e) {
        return vec::SquaredNormF64(e - b, p + b);
      })));
}

float Dot(const Tensor& a, const Tensor& b) {
  MG_CHECK_EQ(a.NumElements(), b.NumElements(), "Dot size mismatch");
  const float* pa = a.data();
  const float* pb = b.data();
  return static_cast<float>(
      BlockedReduce(a.NumElements(), [pa, pb](int64_t b, int64_t e) {
        return vec::DotF64(e - b, pa + b, pb + b);
      }));
}

Tensor Sum(const Tensor& a, int axis, bool keepdims) {
  MG_CHECK_GE(axis, 0);
  MG_CHECK_LT(axis, a.Rank());
  // Collapse the shape to [outer, axis, inner].
  int64_t outer = 1, inner = 1;
  for (int i = 0; i < axis; ++i) outer *= a.Dim(i);
  for (int i = axis + 1; i < a.Rank(); ++i) inner *= a.Dim(i);
  const int64_t mid = a.Dim(axis);

  std::vector<int64_t> out_dims;
  for (int i = 0; i < a.Rank(); ++i) {
    if (i == axis) {
      if (keepdims) out_dims.push_back(1);
    } else {
      out_dims.push_back(a.Dim(i));
    }
  }
  Tensor out(Shape(std::move(out_dims)));
  const float* pa = a.data();
  float* po = out.data();
  // One independent reduction per output element (fixed m-order), so output
  // ranges parallelize bit-identically.
  const int64_t grain = std::max<int64_t>(1, kElemGrain / std::max<int64_t>(1, mid));
  ParallelFor(0, outer * inner, grain, [&](int64_t f0, int64_t f1) {
    for (int64_t flat = f0; flat < f1; ++flat) {
      const int64_t o = flat / inner;
      const int64_t in = flat - o * inner;
      double s = 0.0;
      for (int64_t m = 0; m < mid; ++m) {
        s += pa[(o * mid + m) * inner + in];
      }
      po[flat] = static_cast<float>(s);
    }
  });
  return out;
}

Tensor Mean(const Tensor& a, int axis, bool keepdims) {
  Tensor s = Sum(a, axis, keepdims);
  ScaleInPlace(s, 1.0f / static_cast<float>(a.Dim(axis)));
  return s;
}

Tensor SumToShape(const Tensor& a, const Shape& target) {
  if (a.shape() == target) return a;
  MG_CHECK(Shape::BroadcastsTo(target, a.shape()),
           "SumToShape: ", target.ToString(), " does not broadcast to ",
           a.shape().ToString());
  // Reduce leading extra axes, then axes where target has size 1.
  Tensor cur = a;
  while (cur.Rank() > target.Rank()) {
    cur = Sum(cur, 0, /*keepdims=*/false);
  }
  for (int i = 0; i < target.Rank(); ++i) {
    if (target.Dim(i) == 1 && cur.Dim(i) != 1) {
      cur = Sum(cur, i, /*keepdims=*/true);
    }
  }
  MG_CHECK(cur.shape() == target, "SumToShape internal error");
  return cur;
}

std::vector<int64_t> ArgMaxRows(const Tensor& a) {
  MG_CHECK_EQ(a.Rank(), 2);
  const int64_t n = a.Dim(0), c = a.Dim(1);
  std::vector<int64_t> out(n);
  const float* p = a.data();
  const int64_t grain = std::max<int64_t>(1, kElemGrain / std::max<int64_t>(1, c));
  ParallelFor(0, n, grain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const float* row = p + i * c;
      out[i] = std::max_element(row, row + c) - row;
    }
  });
  return out;
}

Tensor SoftmaxRows(const Tensor& a) {
  MG_CHECK_EQ(a.Rank(), 2);
  const int64_t n = a.Dim(0), c = a.Dim(1);
  Tensor out(a.shape());
  const float* p = a.data();
  float* po = out.data();
  const int64_t grain = std::max<int64_t>(1, kElemGrain / std::max<int64_t>(1, c));
  ParallelFor(0, n, grain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const float* row = p + i * c;
      float* orow = po + i * c;
      const float mx = *std::max_element(row, row + c);
      double denom = 0.0;
      for (int64_t j = 0; j < c; ++j) {
        orow[j] = std::exp(row[j] - mx);
        denom += orow[j];
      }
      const float inv = static_cast<float>(1.0 / denom);
      for (int64_t j = 0; j < c; ++j) orow[j] *= inv;
    }
  });
  return out;
}

Tensor LogSoftmaxRows(const Tensor& a) {
  MG_CHECK_EQ(a.Rank(), 2);
  const int64_t n = a.Dim(0), c = a.Dim(1);
  Tensor out(a.shape());
  const float* p = a.data();
  float* po = out.data();
  const int64_t grain = std::max<int64_t>(1, kElemGrain / std::max<int64_t>(1, c));
  ParallelFor(0, n, grain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const float* row = p + i * c;
      float* orow = po + i * c;
      const float mx = *std::max_element(row, row + c);
      double denom = 0.0;
      for (int64_t j = 0; j < c; ++j) denom += std::exp(row[j] - mx);
      const float lse = mx + static_cast<float>(std::log(denom));
      for (int64_t j = 0; j < c; ++j) orow[j] = row[j] - lse;
    }
  });
  return out;
}

Tensor GatherRows(const Tensor& a, const std::vector<int64_t>& indices) {
  MG_CHECK_EQ(a.Rank(), 2);
  const int64_t d = a.Dim(1);
  Tensor out(Shape{static_cast<int64_t>(indices.size()), d});
  const float* pa = a.data();
  float* po = out.data();
  const int64_t grain = std::max<int64_t>(1, kElemGrain / std::max<int64_t>(1, d));
  ParallelFor(0, static_cast<int64_t>(indices.size()), grain,
              [&](int64_t i0, int64_t i1) {
                for (int64_t i = i0; i < i1; ++i) {
                  const int64_t r = indices[i];
                  MG_CHECK_GE(r, 0);
                  MG_CHECK_LT(r, a.Dim(0), "GatherRows index out of range");
                  std::copy(pa + r * d, pa + (r + 1) * d, po + i * d);
                }
              });
  return out;
}

Tensor ScatterAddRows(const Tensor& g, const std::vector<int64_t>& indices,
                      int64_t num_rows) {
  MG_CHECK_EQ(g.Rank(), 2);
  MG_CHECK_EQ(g.Dim(0), static_cast<int64_t>(indices.size()));
  const int64_t d = g.Dim(1);
  Tensor out(Shape{num_rows, d});
  const float* pg = g.data();
  float* po = out.data();
  // Deliberately serial: duplicate indices make output rows race under a
  // naive parallel split, and a deterministic parallel scatter would need a
  // sort-by-destination pass that costs more than it saves at this
  // library's embedding sizes.
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t r = indices[i];
    MG_CHECK_GE(r, 0);
    MG_CHECK_LT(r, num_rows, "ScatterAddRows index out of range");
    for (int64_t j = 0; j < d; ++j) po[r * d + j] += pg[i * d + j];
  }
  return out;
}

Tensor SliceCols(const Tensor& a, int64_t start, int64_t len) {
  MG_CHECK_EQ(a.Rank(), 2);
  MG_CHECK_GE(start, 0);
  MG_CHECK_LE(start + len, a.Dim(1), "SliceCols out of range");
  const int64_t n = a.Dim(0), c = a.Dim(1);
  Tensor out(Shape{n, len});
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t i = 0; i < n; ++i) {
    std::copy(pa + i * c + start, pa + i * c + start + len, po + i * len);
  }
  return out;
}

Tensor Concat(const std::vector<Tensor>& parts, int axis) {
  MG_CHECK(!parts.empty(), "Concat of zero tensors");
  const int rank = parts[0].Rank();
  MG_CHECK_GE(axis, 0);
  MG_CHECK_LT(axis, rank);
  int64_t axis_total = 0;
  for (const Tensor& t : parts) {
    MG_CHECK_EQ(t.Rank(), rank, "Concat rank mismatch");
    for (int i = 0; i < rank; ++i) {
      if (i != axis) {
        MG_CHECK_EQ(t.Dim(i), parts[0].Dim(i), "Concat dim mismatch");
      }
    }
    axis_total += t.Dim(axis);
  }
  std::vector<int64_t> out_dims = parts[0].shape().dims();
  out_dims[axis] = axis_total;
  Tensor out{Shape(out_dims)};

  int64_t outer = 1, inner = 1;
  for (int i = 0; i < axis; ++i) outer *= parts[0].Dim(i);
  for (int i = axis + 1; i < rank; ++i) inner *= parts[0].Dim(i);

  float* po = out.data();
  const int64_t out_row = axis_total * inner;
  int64_t axis_off = 0;
  for (const Tensor& t : parts) {
    const int64_t mid = t.Dim(axis);
    const float* pt = t.data();
    for (int64_t o = 0; o < outer; ++o) {
      std::copy(pt + o * mid * inner, pt + (o + 1) * mid * inner,
                po + o * out_row + axis_off * inner);
    }
    axis_off += mid;
  }
  return out;
}

std::vector<Tensor> Split(const Tensor& a, int axis,
                          const std::vector<int64_t>& sizes) {
  MG_CHECK_GE(axis, 0);
  MG_CHECK_LT(axis, a.Rank());
  int64_t total = 0;
  for (int64_t s : sizes) total += s;
  MG_CHECK_EQ(total, a.Dim(axis), "Split sizes must cover the axis");

  int64_t outer = 1, inner = 1;
  for (int i = 0; i < axis; ++i) outer *= a.Dim(i);
  for (int i = axis + 1; i < a.Rank(); ++i) inner *= a.Dim(i);

  std::vector<Tensor> out;
  out.reserve(sizes.size());
  const float* pa = a.data();
  const int64_t in_row = a.Dim(axis) * inner;
  int64_t axis_off = 0;
  for (int64_t s : sizes) {
    std::vector<int64_t> dims = a.shape().dims();
    dims[axis] = s;
    Tensor part{Shape(dims)};
    float* pp = part.data();
    for (int64_t o = 0; o < outer; ++o) {
      std::copy(pa + o * in_row + axis_off * inner,
                pa + o * in_row + (axis_off + s) * inner, pp + o * s * inner);
    }
    axis_off += s;
    out.push_back(std::move(part));
  }
  return out;
}

void Im2Col(const float* input, const Conv2dSpec& spec, int64_t h, int64_t w,
            float* columns) {
  const int64_t oh = spec.OutDim(h);
  const int64_t ow = spec.OutDim(w);
  const int64_t k = spec.kernel;
  const int64_t c = spec.in_channels;
  // columns layout: [c*k*k, oh*ow], row index = (ch*k + ki)*k + kj.
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int64_t ki = 0; ki < k; ++ki) {
      for (int64_t kj = 0; kj < k; ++kj) {
        float* col_row = columns + ((ch * k + ki) * k + kj) * oh * ow;
        for (int64_t oy = 0; oy < oh; ++oy) {
          const int64_t iy = oy * spec.stride + ki - spec.padding;
          for (int64_t ox = 0; ox < ow; ++ox) {
            const int64_t ix = ox * spec.stride + kj - spec.padding;
            float v = 0.0f;
            if (iy >= 0 && iy < h && ix >= 0 && ix < w) {
              v = input[(ch * h + iy) * w + ix];
            }
            col_row[oy * ow + ox] = v;
          }
        }
      }
    }
  }
}

void Col2Im(const float* columns, const Conv2dSpec& spec, int64_t h,
            int64_t w, float* input_grad) {
  const int64_t oh = spec.OutDim(h);
  const int64_t ow = spec.OutDim(w);
  const int64_t k = spec.kernel;
  const int64_t c = spec.in_channels;
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int64_t ki = 0; ki < k; ++ki) {
      for (int64_t kj = 0; kj < k; ++kj) {
        const float* col_row = columns + ((ch * k + ki) * k + kj) * oh * ow;
        for (int64_t oy = 0; oy < oh; ++oy) {
          const int64_t iy = oy * spec.stride + ki - spec.padding;
          if (iy < 0 || iy >= h) continue;
          for (int64_t ox = 0; ox < ow; ++ox) {
            const int64_t ix = ox * spec.stride + kj - spec.padding;
            if (ix < 0 || ix >= w) continue;
            input_grad[(ch * h + iy) * w + ix] += col_row[oy * ow + ox];
          }
        }
      }
    }
  }
}

}  // namespace tops
}  // namespace mocograd
