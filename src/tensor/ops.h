#ifndef MOCOGRAD_TENSOR_OPS_H_
#define MOCOGRAD_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace mocograd {
namespace tops {

/// Tensor-level math kernels (no autograd). The autograd layer in
/// src/autograd builds differentiable ops on top of these. Binary
/// elementwise ops broadcast NumPy-style.

// --- Elementwise binary (broadcasting) -----------------------------------
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
Tensor Maximum(const Tensor& a, const Tensor& b);

// --- Scalar variants ------------------------------------------------------
Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);
Tensor PowScalar(const Tensor& a, float exponent);

// --- Elementwise unary ----------------------------------------------------
Tensor Neg(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor Abs(const Tensor& a);
Tensor Sign(const Tensor& a);
Tensor Clamp(const Tensor& a, float lo, float hi);

// --- In-place helpers (same shape, no broadcast) --------------------------

/// y += alpha * x.
void Axpy(float alpha, const Tensor& x, Tensor& y);
/// y *= s.
void ScaleInPlace(Tensor& y, float s);
/// y += x.
void AddInPlace(Tensor& y, const Tensor& x);

// --- Linear algebra --------------------------------------------------------

/// 2-D matrix product: [m,k] x [k,n] -> [m,n]. Optional transposes apply to
/// the stored operands.
Tensor MatMul(const Tensor& a, const Tensor& b, bool trans_a = false,
              bool trans_b = false);

/// 2-D transpose (copies).
Tensor Transpose2D(const Tensor& a);

// --- Reductions -------------------------------------------------------------
float SumAll(const Tensor& a);
float MeanAll(const Tensor& a);
float MaxAll(const Tensor& a);

/// L2 norm of all elements.
float Norm(const Tensor& a);

/// Dot product over all elements (shapes must match).
float Dot(const Tensor& a, const Tensor& b);

/// Sum over one axis. With keepdims the axis stays as size 1.
Tensor Sum(const Tensor& a, int axis, bool keepdims = false);
Tensor Mean(const Tensor& a, int axis, bool keepdims = false);

/// Reduces `a` (whose shape broadcasts to `a.shape()`) down to `target` by
/// summing over the broadcast axes; used for broadcast-aware backward.
Tensor SumToShape(const Tensor& a, const Shape& target);

/// Row-wise argmax of a [n, c] tensor.
std::vector<int64_t> ArgMaxRows(const Tensor& a);

/// Numerically stable row-wise softmax of a [n, c] tensor.
Tensor SoftmaxRows(const Tensor& a);

/// Numerically stable row-wise log-softmax of a [n, c] tensor.
Tensor LogSoftmaxRows(const Tensor& a);

// --- Indexing / layout ------------------------------------------------------

/// Gathers rows of a [n, d] tensor: out[i] = a[indices[i]].
Tensor GatherRows(const Tensor& a, const std::vector<int64_t>& indices);

/// Backward of GatherRows: out is [n, d] zeros with out[indices[i]] += g[i].
Tensor ScatterAddRows(const Tensor& g, const std::vector<int64_t>& indices,
                      int64_t num_rows);

/// Columns [start, start+len) of a 2-D tensor (copies).
Tensor SliceCols(const Tensor& a, int64_t start, int64_t len);

/// Concatenation along an axis; all inputs share the other dims.
Tensor Concat(const std::vector<Tensor>& parts, int axis);

/// Splits along an axis into parts of the given sizes (inverse of Concat).
std::vector<Tensor> Split(const Tensor& a, int axis,
                          const std::vector<int64_t>& sizes);

// --- Convolution support ----------------------------------------------------

/// Layout of a conv: NCHW input [n, c, h, w], kernel k, stride s, zero
/// padding p. Output spatial dims follow the usual formula.
struct Conv2dSpec {
  int64_t in_channels = 0;
  int64_t out_channels = 0;
  int64_t kernel = 3;
  int64_t stride = 1;
  int64_t padding = 1;

  int64_t OutDim(int64_t in) const {
    return (in + 2 * padding - kernel) / stride + 1;
  }
};

/// im2col for one sample: input [c, h, w] -> columns [c*k*k, oh*ow].
void Im2Col(const float* input, const Conv2dSpec& spec, int64_t h, int64_t w,
            float* columns);

/// col2im for one sample: columns [c*k*k, oh*ow] accumulated into [c, h, w].
void Col2Im(const float* columns, const Conv2dSpec& spec, int64_t h,
            int64_t w, float* input_grad);

}  // namespace tops
}  // namespace mocograd

#endif  // MOCOGRAD_TENSOR_OPS_H_
