#include "tensor/shape.h"

#include <algorithm>
#include <sstream>

namespace mocograd {

std::string Shape::ToString() const {
  std::ostringstream oss;
  oss << "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i) oss << ", ";
    oss << dims_[i];
  }
  oss << "]";
  return oss.str();
}

Shape Shape::Broadcast(const Shape& a, const Shape& b) {
  const int rank = std::max(a.Rank(), b.Rank());
  std::vector<int64_t> out(rank, 1);
  for (int i = 0; i < rank; ++i) {
    const int64_t da = i < rank - a.Rank() ? 1 : a.Dim(i - (rank - a.Rank()));
    const int64_t db = i < rank - b.Rank() ? 1 : b.Dim(i - (rank - b.Rank()));
    MG_CHECK(da == db || da == 1 || db == 1, "cannot broadcast ",
             a.ToString(), " with ", b.ToString());
    out[i] = std::max(da, db);
  }
  return Shape(std::move(out));
}

bool Shape::BroadcastsTo(const Shape& a, const Shape& target) {
  if (a.Rank() > target.Rank()) return false;
  const int off = target.Rank() - a.Rank();
  for (int i = 0; i < a.Rank(); ++i) {
    if (a.Dim(i) != 1 && a.Dim(i) != target.Dim(i + off)) return false;
  }
  return true;
}

}  // namespace mocograd
