#ifndef MOCOGRAD_TENSOR_SHAPE_H_
#define MOCOGRAD_TENSOR_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "base/check.h"

namespace mocograd {

/// Dimension list of a dense row-major tensor. Rank 0 denotes a scalar.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) : dims_(dims) { Validate(); }
  explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {
    Validate();
  }

  int Rank() const { return static_cast<int>(dims_.size()); }

  int64_t Dim(int i) const {
    MG_CHECK_GE(i, 0);
    MG_CHECK_LT(i, Rank());
    return dims_[i];
  }

  int64_t operator[](int i) const { return Dim(i); }

  const std::vector<int64_t>& dims() const { return dims_; }

  /// Total element count (1 for scalars).
  int64_t NumElements() const {
    int64_t n = 1;
    for (int64_t d : dims_) n *= d;
    return n;
  }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// Row-major strides, e.g. {2,3,4} -> {12,4,1}.
  std::vector<int64_t> Strides() const {
    std::vector<int64_t> strides(dims_.size(), 1);
    for (int i = Rank() - 2; i >= 0; --i) {
      strides[i] = strides[i + 1] * dims_[i + 1];
    }
    return strides;
  }

  /// "[2, 3, 4]"
  std::string ToString() const;

  /// NumPy-style broadcast of two shapes; MG_CHECK-fails if incompatible.
  static Shape Broadcast(const Shape& a, const Shape& b);

  /// True iff `a` broadcasts to exactly `target`.
  static bool BroadcastsTo(const Shape& a, const Shape& target);

 private:
  void Validate() const {
    for (int64_t d : dims_) MG_CHECK_GE(d, 0, "negative dimension in shape");
  }

  std::vector<int64_t> dims_;
};

}  // namespace mocograd

#endif  // MOCOGRAD_TENSOR_SHAPE_H_
