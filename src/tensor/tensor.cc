#include "tensor/tensor.h"

#include <algorithm>
#include <sstream>

namespace mocograd {

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::FromVector(Shape shape, std::vector<float> values) {
  MG_CHECK_EQ(shape.NumElements(), static_cast<int64_t>(values.size()),
              "FromVector size mismatch for shape ", shape.ToString());
  Tensor t;
  t.shape_ = std::move(shape);
  t.storage_ = std::make_shared<std::vector<float>>(std::move(values));
  return t;
}

Tensor Tensor::Randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  float* p = t.data();
  const int64_t n = t.NumElements();
  for (int64_t i = 0; i < n; ++i) p[i] = rng.Normal(mean, stddev);
  return t;
}

Tensor Tensor::Rand(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  float* p = t.data();
  const int64_t n = t.NumElements();
  for (int64_t i = 0; i < n; ++i) p[i] = rng.Uniform(lo, hi);
  return t;
}

Tensor Tensor::Arange(int64_t n) {
  Tensor t(Shape{n});
  float* p = t.data();
  for (int64_t i = 0; i < n; ++i) p[i] = static_cast<float>(i);
  return t;
}

Tensor Tensor::Clone() const {
  MG_CHECK(defined(), "Clone of undefined tensor");
  Tensor t;
  t.shape_ = shape_;
  t.storage_ = std::make_shared<std::vector<float>>(*storage_);
  return t;
}

Tensor Tensor::Reshape(std::vector<int64_t> dims) const {
  MG_CHECK(defined(), "Reshape of undefined tensor");
  int64_t known = 1;
  int infer = -1;
  for (size_t i = 0; i < dims.size(); ++i) {
    if (dims[i] == -1) {
      MG_CHECK_EQ(infer, -1, "at most one -1 dimension in Reshape");
      infer = static_cast<int>(i);
    } else {
      known *= dims[i];
    }
  }
  if (infer >= 0) {
    MG_CHECK_GT(known, 0);
    MG_CHECK_EQ(NumElements() % known, 0, "cannot infer dim in Reshape");
    dims[infer] = NumElements() / known;
  }
  Shape new_shape(std::move(dims));
  MG_CHECK_EQ(new_shape.NumElements(), NumElements(), "Reshape from ",
              shape_.ToString(), " to ", new_shape.ToString());
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.storage_ = storage_;
  return t;
}

void Tensor::CopyFrom(const Tensor& src) {
  MG_CHECK(defined() && src.defined());
  MG_CHECK_EQ(NumElements(), src.NumElements(), "CopyFrom size mismatch");
  std::copy(src.data(), src.data() + src.NumElements(), data());
}

void Tensor::Fill(float value) {
  MG_CHECK(defined());
  std::fill(storage_->begin(), storage_->end(), value);
}

std::vector<float> Tensor::ToVector() const {
  MG_CHECK(defined());
  return *storage_;
}

std::string Tensor::ToString(int64_t limit) const {
  std::ostringstream oss;
  oss << "Tensor" << shape_.ToString() << " {";
  if (defined()) {
    const int64_t n = std::min<int64_t>(limit, NumElements());
    for (int64_t i = 0; i < n; ++i) {
      if (i) oss << ", ";
      oss << data()[i];
    }
    if (n < NumElements()) oss << ", ...";
  } else {
    oss << "undefined";
  }
  oss << "}";
  return oss.str();
}

}  // namespace mocograd
