#ifndef MOCOGRAD_TENSOR_TENSOR_H_
#define MOCOGRAD_TENSOR_TENSOR_H_

#include <memory>
#include <string>
#include <vector>

#include "base/check.h"
#include "base/rng.h"
#include "tensor/shape.h"

namespace mocograd {

/// Dense, contiguous, row-major float32 tensor with shared storage.
///
/// Copying a Tensor is cheap: it shares the underlying buffer (like
/// torch.Tensor). Use Clone() for a deep copy. All views produced by
/// Reshape() alias the same storage; slicing operations in ops.h copy.
/// An empty (default-constructed) Tensor has null storage and is only valid
/// as a placeholder.
class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)),
        storage_(std::make_shared<std::vector<float>>(shape_.NumElements(),
                                                      0.0f)) {}

  /// --- Factories -------------------------------------------------------

  static Tensor Zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor Ones(Shape shape) { return Full(std::move(shape), 1.0f); }
  static Tensor Full(Shape shape, float value);
  static Tensor Scalar(float value) { return Full(Shape{}, value); }

  /// Takes ownership of `values`; size must equal shape.NumElements().
  static Tensor FromVector(Shape shape, std::vector<float> values);

  /// I.i.d. N(mean, stddev) entries.
  static Tensor Randn(Shape shape, Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f);

  /// I.i.d. U[lo, hi) entries.
  static Tensor Rand(Shape shape, Rng& rng, float lo = 0.0f, float hi = 1.0f);

  /// [0, 1, ..., n-1] as a rank-1 tensor.
  static Tensor Arange(int64_t n);

  /// --- Accessors -------------------------------------------------------

  bool defined() const { return storage_ != nullptr; }
  const Shape& shape() const { return shape_; }
  int64_t NumElements() const { return shape_.NumElements(); }
  int Rank() const { return shape_.Rank(); }
  int64_t Dim(int i) const { return shape_.Dim(i); }

  float* data() {
    MG_CHECK(defined(), "access to undefined tensor");
    return storage_->data();
  }
  const float* data() const {
    MG_CHECK(defined(), "access to undefined tensor");
    return storage_->data();
  }

  /// Element access by flat index. Bounds are MG_DCHECK'd: enforced in
  /// Debug and sanitized builds, free in Release (these accessors sit on
  /// per-element hot paths).
  float& operator[](int64_t i) {
    MG_DCHECK_GE(i, 0, "index into ", shape_.ToString());
    MG_DCHECK_LT(i, NumElements(), "index into ", shape_.ToString());
    return data()[i];
  }
  float operator[](int64_t i) const {
    MG_DCHECK_GE(i, 0, "index into ", shape_.ToString());
    MG_DCHECK_LT(i, NumElements(), "index into ", shape_.ToString());
    return data()[i];
  }

  /// 2-D element access; tensor must be rank 2 (bounds MG_DCHECK'd).
  float& At(int64_t r, int64_t c) {
    MG_DCHECK_EQ(Rank(), 2, "At() on ", shape_.ToString());
    MG_DCHECK(r >= 0 && r < Dim(0) && c >= 0 && c < Dim(1), "At(", r, ", ",
              c, ") out of bounds for ", shape_.ToString());
    return data()[r * Dim(1) + c];
  }
  float At(int64_t r, int64_t c) const {
    MG_DCHECK_EQ(Rank(), 2, "At() on ", shape_.ToString());
    MG_DCHECK(r >= 0 && r < Dim(0) && c >= 0 && c < Dim(1), "At(", r, ", ",
              c, ") out of bounds for ", shape_.ToString());
    return data()[r * Dim(1) + c];
  }

  /// The single value of a one-element tensor.
  float Item() const {
    MG_CHECK_EQ(NumElements(), 1, "Item() on non-scalar ", shape_.ToString());
    return data()[0];
  }

  /// --- Transformations --------------------------------------------------

  /// Deep copy with fresh storage.
  Tensor Clone() const;

  /// View with a different shape (same element count, shared storage).
  /// One dimension may be -1 and is inferred.
  Tensor Reshape(std::vector<int64_t> dims) const;

  /// Copies `src` (same shape) into this tensor's storage.
  void CopyFrom(const Tensor& src);

  /// Sets every element to `value`.
  void Fill(float value);

  /// Copies all elements out as a std::vector.
  std::vector<float> ToVector() const;

  /// Pretty printer for debugging: shape plus up to `limit` elements.
  std::string ToString(int64_t limit = 16) const;

  /// True when both tensors share the same storage buffer.
  bool SharesStorageWith(const Tensor& other) const {
    return storage_ != nullptr && storage_ == other.storage_;
  }

 private:
  Shape shape_;
  std::shared_ptr<std::vector<float>> storage_;
};

}  // namespace mocograd

#endif  // MOCOGRAD_TENSOR_TENSOR_H_
