// The backward-executor contract (autograd/executor.h, docs/AUTOGRAD.md):
// the ready-queue engine must be *bit-identical* to the sequential tape
// replay on every graph shape — diamonds, wide fan-in, aliasing grad_fns —
// for any pool size, because its fixed per-edge accumulation slots replay
// the sequential engine's accumulation order exactly.

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <stdexcept>
#include <vector>

#include "autograd/executor.h"
#include "autograd/ops.h"
#include "autograd/variable.h"
#include "base/rng.h"
#include "base/thread_pool.h"
#include "tensor/tensor.h"

namespace mocograd {
namespace {

using autograd::BackwardExecutor;
using autograd::Variable;
namespace ag = autograd;

bool BitIdentical(const Tensor& a, const Tensor& b) {
  return a.NumElements() == b.NumElements() &&
         std::memcmp(a.data(), b.data(),
                     a.NumElements() * sizeof(float)) == 0;
}

// Restores the process-wide executor and pool size after each test so the
// fixture order cannot leak into other tests in this binary.
class AutogradExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_ = autograd::CurrentBackwardExecutor();
  }
  void TearDown() override {
    autograd::SetBackwardExecutor(previous_);
    ThreadPool::SetGlobalNumThreads(1);
  }

 private:
  BackwardExecutor previous_ = BackwardExecutor::kReadyQueue;
};

// Runs `build` to make a fresh graph, backwards it on `exec`, and returns
// the leaf gradients in the order `build` reported the leaves.
std::vector<Tensor> GradsOn(
    BackwardExecutor exec,
    const std::function<Variable(std::vector<Variable>*)>& build) {
  autograd::SetBackwardExecutor(exec);
  std::vector<Variable> leaves;
  Variable root = build(&leaves);
  root.Backward();
  std::vector<Tensor> grads;
  for (Variable& leaf : leaves) {
    EXPECT_TRUE(leaf.has_grad());
    grads.push_back(leaf.grad().Clone());
  }
  return grads;
}

void ExpectSeqReadyIdentical(
    const std::function<Variable(std::vector<Variable>*)>& build) {
  for (int threads : {1, 2, 8}) {
    ThreadPool::SetGlobalNumThreads(threads);
    std::vector<Tensor> seq = GradsOn(BackwardExecutor::kSequential, build);
    std::vector<Tensor> ready = GradsOn(BackwardExecutor::kReadyQueue, build);
    ASSERT_EQ(seq.size(), ready.size());
    for (size_t i = 0; i < seq.size(); ++i) {
      EXPECT_TRUE(BitIdentical(seq[i], ready[i]))
          << "leaf " << i << " differs at " << threads << " threads";
    }
  }
}

TEST_F(AutogradExecutorTest, EnvDefaultIsReadyQueue) {
  // The suite runs without MOCOGRAD_AUTOGRAD_EXEC set (or run_tests.sh sets
  // it explicitly); either way CurrentBackwardExecutor returns a valid mode
  // and SetBackwardExecutor round-trips.
  autograd::SetBackwardExecutor(BackwardExecutor::kSequential);
  EXPECT_EQ(autograd::CurrentBackwardExecutor(),
            BackwardExecutor::kSequential);
  autograd::SetBackwardExecutor(BackwardExecutor::kReadyQueue);
  EXPECT_EQ(autograd::CurrentBackwardExecutor(),
            BackwardExecutor::kReadyQueue);
}

TEST_F(AutogradExecutorTest, DiamondGraphBitIdentical) {
  // Classic diamond: two independent branches re-joining at one node. The
  // ready-queue engine runs the branches concurrently; the join must merge
  // the two contributions in the sequential accumulation order.
  ExpectSeqReadyIdentical([](std::vector<Variable>* leaves) {
    Rng rng(31);
    Variable x(Tensor::Randn({64}, rng), /*requires_grad=*/true);
    leaves->push_back(x);
    Variable a = ag::Sigmoid(x);
    Variable b = ag::Tanh(x);
    return ag::SumAll(ag::Mul(a, b));
  });
}

TEST_F(AutogradExecutorTest, WideFanInBitIdentical) {
  // Eight parallel branches off one leaf, summed pairwise into a tree: the
  // leaf receives eight contributions whose accumulation order is the whole
  // determinism contract.
  ExpectSeqReadyIdentical([](std::vector<Variable>* leaves) {
    Rng rng(47);
    Variable x(Tensor::Randn({128}, rng), /*requires_grad=*/true);
    leaves->push_back(x);
    std::vector<Variable> branches;
    branches.push_back(ag::Sigmoid(x));
    branches.push_back(ag::Tanh(x));
    branches.push_back(ag::Relu(x));
    branches.push_back(ag::Exp(ag::MulScalar(x, 0.1f)));
    branches.push_back(ag::Softplus(x));
    branches.push_back(ag::Mul(x, x));
    branches.push_back(ag::MulScalar(x, -2.5f));
    branches.push_back(ag::PowScalar(ag::AddScalar(ag::Mul(x, x), 1.0f),
                                     0.5f));
    Variable acc = branches[0];
    for (size_t i = 1; i < branches.size(); ++i) {
      acc = ag::Add(acc, branches[i]);
    }
    return ag::SumAll(acc);
  });
}

TEST_F(AutogradExecutorTest, AliasingGradFnBitIdentical) {
  // Add's grad_fn passes the upstream gradient through unchanged when the
  // shapes already match (SumToShape returns an alias), so the same tensor
  // reaches two accumulation slots. Both engines must clone before mutating
  // or one slot's merge corrupts the other.
  ExpectSeqReadyIdentical([](std::vector<Variable>* leaves) {
    Rng rng(59);
    Variable x(Tensor::Randn({96}, rng), /*requires_grad=*/true);
    leaves->push_back(x);
    Variable y = ag::Add(ag::Add(ag::Sigmoid(x), ag::Tanh(x)), x);
    return ag::SumAll(ag::Mul(y, y));
  });
}

TEST_F(AutogradExecutorTest, MatMulChainMultipleLeavesBitIdentical) {
  // A small MLP-shaped graph: several leaves, interior fan-out, kernel-level
  // parallelism (GEMMs) nested inside the node-level parallelism.
  ExpectSeqReadyIdentical([](std::vector<Variable>* leaves) {
    Rng rng(73);
    Variable w1(Tensor::Randn({32, 48}, rng), /*requires_grad=*/true);
    Variable w2(Tensor::Randn({48, 8}, rng), /*requires_grad=*/true);
    leaves->push_back(w1);
    leaves->push_back(w2);
    Variable x(Tensor::Randn({16, 32}, rng), /*requires_grad=*/false);
    Variable h = ag::Tanh(ag::MatMul(x, w1));
    Variable out = ag::MatMul(h, w2);
    // h feeds two consumers so the shared trunk has real fan-out.
    Variable reg = ag::SumAll(ag::Mul(h, h));
    return ag::Add(ag::MseLoss(out, Tensor::Zeros(out.shape())), reg);
  });
}

TEST_F(AutogradExecutorTest, BackwardIntoMatchesBackwardOnReadyQueue) {
  autograd::SetBackwardExecutor(BackwardExecutor::kReadyQueue);
  ThreadPool::SetGlobalNumThreads(4);
  Rng rng(5);
  Variable w(Tensor::Randn({24, 12}, rng), /*requires_grad=*/true);
  Variable x(Tensor::Randn({32, 24}, rng), /*requires_grad=*/false);
  Variable loss =
      ag::MseLoss(ag::Tanh(ag::MatMul(x, w)), Tensor::Zeros({32, 12}));

  loss.Backward();
  Tensor reference = w.grad().Clone();

  Variable::GradSink sink;
  loss.BackwardInto(&sink);
  auto it = sink.find(w.node().get());
  ASSERT_NE(it, sink.end());
  EXPECT_TRUE(BitIdentical(reference, it->second));
}

TEST_F(AutogradExecutorTest, SinkAccumulatesAcrossRootsOnReadyQueue) {
  // Two BackwardInto calls with the same sink must sum, exactly like two
  // Backward() calls sum into the persistent grad buffer.
  autograd::SetBackwardExecutor(BackwardExecutor::kReadyQueue);
  ThreadPool::SetGlobalNumThreads(2);
  Variable x(Tensor::FromVector({2}, {1, 1}), /*requires_grad=*/true);
  Variable l1 = ag::SumAll(ag::MulScalar(x, 3.0f));
  Variable l2 = ag::SumAll(ag::MulScalar(x, 4.0f));

  Variable::GradSink sink;
  l1.BackwardInto(&sink);
  l2.BackwardInto(&sink);
  auto it = sink.find(x.node().get());
  ASSERT_NE(it, sink.end());
  EXPECT_FLOAT_EQ(it->second[0], 7.0f);
  EXPECT_FLOAT_EQ(it->second[1], 7.0f);
}

TEST_F(AutogradExecutorTest, NoGradLeafStaysUntouched) {
  autograd::SetBackwardExecutor(BackwardExecutor::kReadyQueue);
  Variable x(Tensor::FromVector({1}, {2}), /*requires_grad=*/true);
  Variable c(Tensor::FromVector({1}, {5}), /*requires_grad=*/false);
  Variable y = ag::SumAll(ag::Mul(x, c));
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 5.0f);
  EXPECT_FALSE(c.has_grad());
}

TEST_F(AutogradExecutorTest, PoolResizeAfterSweepDoesNotDeadlock) {
  // Regression: a straggling helper that wakes after its sweep finished used
  // to reach for ThreadPool::Global() while submitting follow-on helpers —
  // deadlocking against SetGlobalNumThreads, which holds the global pool
  // mutex across the worker join. The executor now pins the pool per sweep.
  // The window is a few instructions wide, so hammer it: wide-fan-in sweeps
  // (which spawn helpers) immediately followed by a pool resize.
  autograd::SetBackwardExecutor(BackwardExecutor::kReadyQueue);
  Rng rng(113);
  Tensor x0 = Tensor::Randn({64}, rng);
  for (int iter = 0; iter < 200; ++iter) {
    ThreadPool::SetGlobalNumThreads(2 + (iter & 1));
    Variable x(x0, /*requires_grad=*/true);
    Variable acc = ag::Sigmoid(x);
    acc = ag::Add(acc, ag::Tanh(x));
    acc = ag::Add(acc, ag::Relu(x));
    acc = ag::Add(acc, ag::Mul(x, x));
    ag::SumAll(acc).Backward();
  }
}

TEST_F(AutogradExecutorTest, GradFnErrorPropagatesFromWorkers) {
  // A grad_fn that throws must surface on the calling thread (and not hang
  // the sweep) even when pool workers are draining the queue.
  autograd::SetBackwardExecutor(BackwardExecutor::kReadyQueue);
  ThreadPool::SetGlobalNumThreads(4);
  Rng rng(91);
  Variable x(Tensor::Randn({8}, rng), /*requires_grad=*/true);
  Variable bad = Variable::MakeOp(
      "bad_op", ag::Tanh(x).value(), {ag::Tanh(x)},
      [](const Tensor&) -> std::vector<Tensor> {
        throw std::runtime_error("boom");
      });
  Variable y = ag::SumAll(bad);
  EXPECT_THROW(y.Backward(), std::runtime_error);
}

}  // namespace
}  // namespace mocograd
