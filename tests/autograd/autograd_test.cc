#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "testing/gradcheck.h"

namespace mocograd {
namespace {

using autograd::Variable;
namespace ag = autograd;
namespace t = tops;

TEST(VariableTest, LeafBasics) {
  Variable v(Tensor::FromVector({2}, {1, 2}), /*requires_grad=*/true);
  EXPECT_TRUE(v.defined());
  EXPECT_TRUE(v.requires_grad());
  EXPECT_FALSE(v.has_grad());
  v.mutable_grad();
  EXPECT_TRUE(v.has_grad());
  EXPECT_FLOAT_EQ(v.grad()[0], 0.0f);
}

TEST(VariableTest, CopySharesNode) {
  Variable a(Tensor::FromVector({1}, {3}), true);
  Variable b = a;
  b.mutable_value()[0] = 5.0f;
  EXPECT_FLOAT_EQ(a.value()[0], 5.0f);
}

TEST(VariableTest, SimpleChainRule) {
  // y = sum((2x)^2) => dy/dx = 8x
  Variable x(Tensor::FromVector({3}, {1, 2, 3}), true);
  Variable two_x = ag::MulScalar(x, 2.0f);
  Variable sq = ag::Mul(two_x, two_x);
  Variable y = ag::SumAll(sq);
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 8.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 16.0f);
  EXPECT_FLOAT_EQ(x.grad()[2], 24.0f);
}

TEST(VariableTest, GradAccumulatesAcrossBackwardCalls) {
  // Two roots over the same leaf: grads must add (the per-task pattern).
  Variable x(Tensor::FromVector({2}, {1, 1}), true);
  Variable l1 = ag::SumAll(ag::MulScalar(x, 3.0f));
  Variable l2 = ag::SumAll(ag::MulScalar(x, 4.0f));
  l1.Backward();
  l2.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 7.0f);
  x.ZeroGrad();
  l1.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 3.0f);
}

TEST(VariableTest, DiamondGraphSumsPaths) {
  // y = sum(x*x + x*x); dy/dx = 4x
  Variable x(Tensor::FromVector({1}, {3}), true);
  Variable a = ag::Mul(x, x);
  Variable y = ag::SumAll(ag::Add(a, a));
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 12.0f);
}

TEST(VariableTest, NoGradThroughConstLeaf) {
  Variable x(Tensor::FromVector({1}, {2}), true);
  Variable c(Tensor::FromVector({1}, {5}), false);
  Variable y = ag::SumAll(ag::Mul(x, c));
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 5.0f);
  EXPECT_FALSE(c.has_grad());
}

// --- Parameterized numerical gradient checks over unary ops ---------------

struct UnaryCase {
  const char* name;
  Variable (*fn)(const Variable&);
  float lo, hi;  // sampling range keeping the op well-conditioned
};

class UnaryGradTest : public ::testing::TestWithParam<UnaryCase> {};

TEST_P(UnaryGradTest, MatchesFiniteDifference) {
  const UnaryCase& c = GetParam();
  Rng rng(42);
  Tensor x = Tensor::Rand({3, 4}, rng, c.lo, c.hi);
  testing::ExpectGradientsClose(
      [&](const std::vector<Variable>& v) {
        return ag::MeanAll(c.fn(v[0]));
      },
      {x});
}

INSTANTIATE_TEST_SUITE_P(
    AllUnaryOps, UnaryGradTest,
    ::testing::Values(
        UnaryCase{"Neg", &ag::Neg, -2.0f, 2.0f},
        UnaryCase{"Exp", &ag::Exp, -1.0f, 1.0f},
        UnaryCase{"Log", &ag::Log, 0.5f, 3.0f},
        UnaryCase{"Sqrt", &ag::Sqrt, 0.5f, 4.0f},
        UnaryCase{"Tanh", &ag::Tanh, -2.0f, 2.0f},
        UnaryCase{"Sigmoid", &ag::Sigmoid, -3.0f, 3.0f},
        UnaryCase{"Relu", &ag::Relu, 0.2f, 2.0f}),  // stay off the kink
    [](const ::testing::TestParamInfo<UnaryCase>& info) {
      return info.param.name;
    });

// --- Binary ops with broadcasting ------------------------------------------

TEST(BinaryGradTest, AddBroadcastRow) {
  Rng rng(1);
  Tensor a = Tensor::Randn({3, 4}, rng);
  Tensor b = Tensor::Randn({4}, rng);
  testing::ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        return ag::MeanAll(ag::Add(v[0], v[1]));
      },
      {a, b});
}

TEST(BinaryGradTest, MulBroadcastCol) {
  Rng rng(2);
  Tensor a = Tensor::Randn({3, 4}, rng);
  Tensor b = Tensor::Randn({3, 1}, rng);
  testing::ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        return ag::MeanAll(ag::Mul(v[0], v[1]));
      },
      {a, b});
}

TEST(BinaryGradTest, SubAndDiv) {
  Rng rng(3);
  Tensor a = Tensor::Rand({2, 3}, rng, 1.0f, 2.0f);
  Tensor b = Tensor::Rand({2, 3}, rng, 1.0f, 2.0f);
  testing::ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        return ag::MeanAll(ag::Div(ag::Sub(v[0], v[1]), v[1]));
      },
      {a, b});
}

TEST(MatMulGradTest, MatchesFiniteDifference) {
  Rng rng(4);
  Tensor a = Tensor::Randn({3, 5}, rng, 0.0f, 0.5f);
  Tensor b = Tensor::Randn({5, 2}, rng, 0.0f, 0.5f);
  testing::ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        return ag::MeanAll(ag::MatMul(v[0], v[1]));
      },
      {a, b});
}

TEST(ShapeOpsGradTest, ReshapeTransposeConcatSlice) {
  Rng rng(5);
  Tensor a = Tensor::Randn({2, 6}, rng);
  Tensor b = Tensor::Randn({2, 2}, rng);
  testing::ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        Variable r = ag::Reshape(v[0], {4, 3});
        Variable tr = ag::Transpose2D(r);              // [3,4]
        Variable sl = ag::SliceCols(tr, 1, 2);         // [3,2]
        Variable cat = ag::Concat({sl, sl}, 0);        // [6,2]
        Variable mixed = ag::Concat({cat, ag::Concat({v[1], v[1], v[1]}, 0)},
                                    1);                // [6,4]
        return ag::MeanAll(ag::Tanh(mixed));
      },
      {a, b});
}

TEST(GatherRowsGradTest, ScattersBack) {
  Tensor table = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Variable t_var(table, true);
  Variable g = ag::GatherRows(t_var, {2, 2, 0});
  Variable loss = ag::SumAll(g);
  loss.Backward();
  EXPECT_FLOAT_EQ(t_var.grad().At(2, 0), 2.0f);  // picked twice
  EXPECT_FLOAT_EQ(t_var.grad().At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(t_var.grad().At(1, 0), 0.0f);
}

TEST(SoftmaxRowsGradTest, MatchesFiniteDifference) {
  Rng rng(6);
  Tensor a = Tensor::Randn({3, 4}, rng);
  Tensor w = Tensor::Randn({3, 4}, rng);  // random projection for the loss
  testing::ExpectGradientsClose(
      [&](const std::vector<Variable>& v) {
        return ag::MeanAll(
            ag::Mul(ag::SoftmaxRows(v[0]), Variable(w, false)));
      },
      {a});
}

TEST(LossGradTest, SoftmaxCrossEntropy) {
  Rng rng(7);
  Tensor logits = Tensor::Randn({4, 3}, rng);
  std::vector<int64_t> labels = {0, 2, 1, 2};
  testing::ExpectGradientsClose(
      [&](const std::vector<Variable>& v) {
        return ag::SoftmaxCrossEntropy(v[0], labels);
      },
      {logits});
}

TEST(LossGradTest, SoftmaxCrossEntropyValue) {
  // Uniform logits over c classes -> loss = log(c).
  Tensor logits = Tensor::Zeros({2, 4});
  Variable v(logits, true);
  Variable loss = ag::SoftmaxCrossEntropy(v, {1, 3});
  EXPECT_NEAR(loss.value().Item(), std::log(4.0f), 1e-5);
}

TEST(LossGradTest, BceWithLogits) {
  Rng rng(8);
  Tensor logits = Tensor::Randn({5, 1}, rng);
  Tensor targets = Tensor::FromVector({5, 1}, {1, 0, 1, 1, 0});
  testing::ExpectGradientsClose(
      [&](const std::vector<Variable>& v) {
        return ag::BceWithLogits(v[0], targets);
      },
      {logits});
}

TEST(LossGradTest, BceWithLogitsValue) {
  // logit 0 -> loss = log 2 regardless of target.
  Variable v(Tensor::Zeros({3, 1}), true);
  Variable loss = ag::BceWithLogits(v, Tensor::FromVector({3, 1}, {1, 0, 1}));
  EXPECT_NEAR(loss.value().Item(), std::log(2.0f), 1e-5);
}

TEST(LossGradTest, MseAndL1) {
  Rng rng(9);
  Tensor pred = Tensor::Randn({4, 2}, rng);
  Tensor target = Tensor::Randn({4, 2}, rng);
  testing::ExpectGradientsClose(
      [&](const std::vector<Variable>& v) {
        return ag::MseLoss(v[0], target);
      },
      {pred});

  // L1 at points away from zero-crossings.
  Tensor pred2 = Tensor::FromVector({3}, {1.0f, -2.0f, 0.5f});
  Tensor target2 = Tensor::FromVector({3}, {0.0f, 1.0f, -1.0f});
  testing::ExpectGradientsClose(
      [&](const std::vector<Variable>& v) {
        return ag::L1Loss(v[0], target2);
      },
      {pred2});
}

TEST(Conv2dGradTest, MatchesFiniteDifference) {
  tops::Conv2dSpec spec;
  spec.in_channels = 2;
  spec.out_channels = 3;
  spec.kernel = 3;
  spec.stride = 1;
  spec.padding = 1;
  Rng rng(10);
  Tensor x = Tensor::Randn({2, 2, 4, 4}, rng, 0.0f, 0.5f);
  Tensor w = Tensor::Randn({3, 2, 3, 3}, rng, 0.0f, 0.3f);
  Tensor b = Tensor::Randn({3}, rng, 0.0f, 0.1f);
  testing::ExpectGradientsClose(
      [&](const std::vector<Variable>& v) {
        return ag::MeanAll(ag::Conv2d(v[0], v[1], v[2], spec));
      },
      {x, w, b});
}

TEST(Conv2dGradTest, StridedConvGradcheck) {
  tops::Conv2dSpec spec;
  spec.in_channels = 1;
  spec.out_channels = 2;
  spec.kernel = 3;
  spec.stride = 2;
  spec.padding = 1;
  Rng rng(11);
  Tensor x = Tensor::Randn({1, 1, 5, 5}, rng, 0.0f, 0.5f);
  Tensor w = Tensor::Randn({2, 1, 3, 3}, rng, 0.0f, 0.3f);
  Tensor b = Tensor::Zeros({2});
  testing::ExpectGradientsClose(
      [&](const std::vector<Variable>& v) {
        return ag::MeanAll(ag::Conv2d(v[0], v[1], v[2], spec));
      },
      {x, w, b});
}

TEST(Conv2dTest, KnownValueIdentityKernel) {
  // 1x1 conv with unit weight copies the input channel.
  tops::Conv2dSpec spec;
  spec.in_channels = 1;
  spec.out_channels = 1;
  spec.kernel = 1;
  spec.stride = 1;
  spec.padding = 0;
  Tensor x = Tensor::Arange(9).Reshape({1, 1, 3, 3});
  Variable xv(x, false);
  Variable w(Tensor::Ones({1, 1, 1, 1}), false);
  Variable b(Tensor::Zeros({1}), false);
  Variable y = ag::Conv2d(xv, w, b, spec);
  for (int64_t i = 0; i < 9; ++i) {
    EXPECT_FLOAT_EQ(y.value()[i], static_cast<float>(i));
  }
}

TEST(ChannelsToLastGradTest, RoundTripAndGrad) {
  Rng rng(12);
  Tensor x = Tensor::Randn({2, 3, 2, 2}, rng);
  Variable xv(x, true);
  Variable y = ag::ChannelsToLast(xv);
  EXPECT_EQ(y.shape(), (Shape{8, 3}));
  // Value check: element (n=1, c=2, h=0, w=1).
  EXPECT_FLOAT_EQ(y.value().At(1 * 4 + 0 * 2 + 1, 2),
                  x.data()[((1 * 3 + 2) * 2 + 0) * 2 + 1]);
  testing::ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        return ag::MeanAll(ag::Tanh(ag::ChannelsToLast(v[0])));
      },
      {x});
}

TEST(BackwardSeedTest, ExplicitSeedScalesGrad) {
  Variable x(Tensor::FromVector({2}, {1, 2}), true);
  Variable y = ag::MulScalar(x, 3.0f);
  y.Backward(Tensor::FromVector({2}, {1.0f, 10.0f}));
  EXPECT_FLOAT_EQ(x.grad()[0], 3.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 30.0f);
}

}  // namespace
}  // namespace mocograd
