// Property test: the im2col-GEMM convolution must match a direct
// quadruple-loop convolution oracle over a grid of shapes/strides/paddings.

#include <gtest/gtest.h>

#include <tuple>

#include "autograd/ops.h"

namespace mocograd {
namespace {

using autograd::Variable;

// (in_channels, out_channels, kernel, stride, padding, h, w)
using ConvCase = std::tuple<int, int, int, int, int, int, int>;

Tensor ReferenceConv(const Tensor& x, const Tensor& w, const Tensor& b,
                     const tops::Conv2dSpec& spec) {
  const int64_t n = x.Dim(0), c = x.Dim(1), h = x.Dim(2), ww = x.Dim(3);
  const int64_t f = spec.out_channels, k = spec.kernel;
  const int64_t oh = spec.OutDim(h), ow = spec.OutDim(ww);
  Tensor out(Shape{n, f, oh, ow});
  for (int64_t bi = 0; bi < n; ++bi) {
    for (int64_t fo = 0; fo < f; ++fo) {
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          double acc = b[fo];
          for (int64_t ci = 0; ci < c; ++ci) {
            for (int64_t ky = 0; ky < k; ++ky) {
              for (int64_t kx = 0; kx < k; ++kx) {
                const int64_t iy = oy * spec.stride + ky - spec.padding;
                const int64_t ix = ox * spec.stride + kx - spec.padding;
                if (iy < 0 || iy >= h || ix < 0 || ix >= ww) continue;
                acc += static_cast<double>(
                           x.data()[((bi * c + ci) * h + iy) * ww + ix]) *
                       w.data()[((fo * c + ci) * k + ky) * k + kx];
              }
            }
          }
          out.data()[((bi * f + fo) * oh + oy) * ow + ox] =
              static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

class ConvOracleTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvOracleTest, MatchesDirectConvolution) {
  const auto [ci, co, k, s, p, h, w] = GetParam();
  tops::Conv2dSpec spec;
  spec.in_channels = ci;
  spec.out_channels = co;
  spec.kernel = k;
  spec.stride = s;
  spec.padding = p;
  Rng rng(static_cast<uint64_t>(ci * 7 + co * 5 + k * 3 + s + p + h + w));
  Tensor x = Tensor::Randn({2, ci, h, w}, rng);
  Tensor wt = Tensor::Randn({co, ci, k, k}, rng);
  Tensor b = Tensor::Randn({co}, rng);

  Variable y = autograd::Conv2d(Variable(x, false), Variable(wt, false),
                                Variable(b, false), spec);
  Tensor ref = ReferenceConv(x, wt, b, spec);
  ASSERT_EQ(y.shape(), ref.shape());
  for (int64_t i = 0; i < ref.NumElements(); ++i) {
    ASSERT_NEAR(y.value()[i], ref[i], 1e-3f + 1e-4f * std::fabs(ref[i]))
        << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapeGrid, ConvOracleTest,
    ::testing::Values(ConvCase{1, 1, 1, 1, 0, 4, 4},
                      ConvCase{2, 3, 3, 1, 1, 6, 6},
                      ConvCase{3, 2, 3, 2, 1, 7, 5},
                      ConvCase{1, 4, 5, 1, 2, 8, 8},
                      ConvCase{2, 2, 3, 3, 0, 9, 9},
                      ConvCase{4, 1, 3, 1, 0, 5, 7}));

}  // namespace
}  // namespace mocograd
