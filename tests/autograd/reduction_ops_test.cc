#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "testing/gradcheck.h"

namespace mocograd {
namespace {

using autograd::Variable;
namespace ag = autograd;

TEST(SumAxisTest, ValuesMatchTensorOps) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Variable v(a, true);
  Variable s0 = ag::SumAxis(v, 0);
  EXPECT_EQ(s0.shape(), (Shape{3}));
  EXPECT_FLOAT_EQ(s0.value()[0], 5.0f);
  Variable s1k = ag::SumAxis(v, 1, /*keepdims=*/true);
  EXPECT_EQ(s1k.shape(), (Shape{2, 1}));
  EXPECT_FLOAT_EQ(s1k.value()[1], 15.0f);
  Variable m1 = ag::MeanAxis(v, 1);
  EXPECT_FLOAT_EQ(m1.value()[0], 2.0f);
}

TEST(SumAxisTest, BackwardBroadcastsGradient) {
  Variable v(Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6}), true);
  ag::SumAll(ag::SumAxis(v, 0)).Backward();
  for (int64_t i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(v.grad()[i], 1.0f);
}

// Gradcheck over axes × keepdims.
class SumAxisGradTest
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(SumAxisGradTest, MatchesFiniteDifference) {
  const auto [axis, keepdims] = GetParam();
  Rng rng(31 + axis);
  Tensor x = Tensor::Randn({3, 4, 2}, rng);
  testing::ExpectGradientsClose(
      [axis = axis, keepdims = keepdims](const std::vector<Variable>& v) {
        return ag::MeanAll(ag::Tanh(ag::SumAxis(v[0], axis, keepdims)));
      },
      {x});
}

INSTANTIATE_TEST_SUITE_P(
    AxesAndKeepdims, SumAxisGradTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(false, true)));

TEST(MeanAxisGradTest, MatchesFiniteDifference) {
  Rng rng(37);
  Tensor x = Tensor::Randn({4, 5}, rng);
  testing::ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        return ag::SumAll(ag::MeanAxis(v[0], 1));
      },
      {x});
}

}  // namespace
}  // namespace mocograd
