#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "testing/gradcheck.h"

namespace mocograd {
namespace {

using autograd::Variable;
namespace ag = autograd;

TEST(SoftplusTest, ValuesAndStability) {
  Tensor x = Tensor::FromVector({4}, {-50.0f, -1.0f, 0.0f, 50.0f});
  Variable y = ag::Softplus(Variable(x, false));
  EXPECT_NEAR(y.value()[0], 0.0f, 1e-6);        // large negative → 0
  EXPECT_NEAR(y.value()[1], std::log1p(std::exp(-1.0f)), 1e-6);
  EXPECT_NEAR(y.value()[2], std::log(2.0f), 1e-6);
  EXPECT_NEAR(y.value()[3], 50.0f, 1e-4);       // large positive → x
  EXPECT_TRUE(std::isfinite(y.value()[3]));
}

TEST(SoftplusTest, Gradcheck) {
  Rng rng(71);
  Tensor x = Tensor::Randn({3, 4}, rng);
  testing::ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        return ag::MeanAll(ag::Softplus(v[0]));
      },
      {x});
}

TEST(PowScalarTest, ValuesAndGradcheck) {
  Tensor x = Tensor::FromVector({3}, {1.0f, 4.0f, 9.0f});
  Variable y = ag::PowScalar(Variable(x, false), 0.5f);
  EXPECT_NEAR(y.value()[1], 2.0f, 1e-6);
  EXPECT_NEAR(y.value()[2], 3.0f, 1e-6);

  Rng rng(73);
  Tensor pos = Tensor::Rand({2, 3}, rng, 0.5f, 2.0f);
  testing::ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        return ag::MeanAll(ag::PowScalar(v[0], 1.7f));
      },
      {pos});
}

TEST(ClampOpTest, ValuesAndGradientMask) {
  Variable x(Tensor::FromVector({4}, {-2.0f, -0.5f, 0.5f, 2.0f}), true);
  Variable y = ag::Clamp(x, -1.0f, 1.0f);
  EXPECT_FLOAT_EQ(y.value()[0], -1.0f);
  EXPECT_FLOAT_EQ(y.value()[3], 1.0f);
  ag::SumAll(y).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);  // clamped: no gradient
  EXPECT_FLOAT_EQ(x.grad()[1], 1.0f);  // inside: pass-through
  EXPECT_FLOAT_EQ(x.grad()[2], 1.0f);
  EXPECT_FLOAT_EQ(x.grad()[3], 0.0f);
}

TEST(ClampOpTest, GradcheckInsideInterval) {
  Rng rng(79);
  Tensor x = Tensor::Rand({3, 3}, rng, -0.8f, 0.8f);  // strictly inside
  testing::ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        return ag::MeanAll(ag::Clamp(v[0], -1.0f, 1.0f));
      },
      {x});
}

TEST(ClampOpTest, InvalidBoundsAbort) {
  Variable x(Tensor::Zeros({2}), true);
  EXPECT_DEATH(ag::Clamp(x, 1.0f, -1.0f), "Clamp bounds");
}

// End-to-end model-level gradient check: an entire HPS forward + loss must
// agree with finite differences on every parameter of a small model.
TEST(ModelLevelGradcheckTest, TwoLayerNetworkMatchesFiniteDifference) {
  Rng rng(83);
  Tensor w1 = Tensor::Randn({3, 4}, rng, 0.0f, 0.5f);
  Tensor b1 = Tensor::Randn({4}, rng, 0.0f, 0.2f);
  Tensor w2 = Tensor::Randn({4, 2}, rng, 0.0f, 0.5f);
  Tensor x = Tensor::Randn({5, 3}, rng);
  Tensor target = Tensor::Randn({5, 2}, rng);
  testing::ExpectGradientsClose(
      [&](const std::vector<Variable>& v) {
        Variable h = ag::Tanh(ag::Add(ag::MatMul(Variable(x, false), v[0]),
                                      v[1]));
        Variable out = ag::MatMul(h, v[2]);
        return ag::MseLoss(out, target);
      },
      {w1, b1, w2});
}

}  // namespace
}  // namespace mocograd
