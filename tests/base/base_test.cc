#include <gtest/gtest.h>

#include <set>

#include "base/check.h"
#include "base/rng.h"
#include "base/status.h"
#include "base/stopwatch.h"
#include "base/table.h"

namespace mocograd {
namespace {

TEST(CheckTest, PassingConditionsAreSilent) {
  MG_CHECK(true);
  MG_CHECK_EQ(1, 1);
  MG_CHECK_NE(1, 2);
  MG_CHECK_LT(1, 2);
  MG_CHECK_LE(2, 2);
  MG_CHECK_GT(3, 2);
  MG_CHECK_GE(3, 3);
}

TEST(CheckDeathTest, FailuresAbortWithMessage) {
  EXPECT_DEATH(MG_CHECK(false, "custom message"), "custom message");
  EXPECT_DEATH(MG_CHECK_EQ(1, 2), "1 vs 2");
  EXPECT_DEATH(MG_CHECK_LT(5, 3, "context"), "context");
  EXPECT_DEATH(MG_FATAL("unreachable branch"), "unreachable branch");
}

TEST(StatusTest, CodesAndMessages) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ(Status::Ok().ToString(), "OK");
  Status s = Status::InvalidArgument("bad shape");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad shape");
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);

  Result<int> err = Status::NotFound("missing");
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> err = Status::Internal("boom");
  EXPECT_DEATH(err.value(), "boom");
}

TEST(RngTest, DeterminismAndForkIndependence) {
  Rng a(7), b(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
  Rng base(9);
  Rng child = base.Fork();
  // Child stream differs from the continued parent stream.
  bool differs = false;
  Rng parent_copy(9);
  parent_copy.Fork();
  for (int i = 0; i < 5; ++i) {
    if (child.NextUint64() != base.NextUint64()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, DistributionsInRange) {
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const float u = rng.Uniform(2.0f, 3.0f);
    EXPECT_GE(u, 2.0f);
    EXPECT_LT(u, 3.0f);
    const int v = rng.UniformInt(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LT(v, 9);
  }
  // Bernoulli(1) / Bernoulli(0) are deterministic.
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_FALSE(rng.Bernoulli(0.0));
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(1.0f, 2.0f);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.06);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + i;
  EXPECT_GT(sw.ElapsedSeconds(), 0.0);
  EXPECT_NEAR(sw.ElapsedMillis(), sw.ElapsedSeconds() * 1e3,
              sw.ElapsedMillis() * 0.5);
  sw.Restart();
  EXPECT_LT(sw.ElapsedSeconds(), 1.0);
}

TEST(TextTableTest, RendersAlignedTable) {
  TextTable t;
  t.SetHeader({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddSeparator();
  t.AddRow({"long-name", "2"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| name      | value |"), std::string::npos);
  EXPECT_NE(s.find("| long-name | 2     |"), std::string::npos);
  // 3 rules (top, under header, bottom) plus the explicit separator:
  // count lines beginning with '+'.
  int rules = 0;
  size_t pos = 0;
  while (pos < s.size()) {
    if (s[pos] == '+') ++rules;
    pos = s.find('\n', pos);
    if (pos == std::string::npos) break;
    ++pos;
  }
  EXPECT_EQ(rules, 4);
}

TEST(TextTableTest, ShortRowsArePadded) {
  TextTable t;
  t.SetHeader({"a", "b", "c"});
  t.AddRow({"x"});
  EXPECT_NE(t.ToString().find("| x |"), std::string::npos);
}

TEST(TextTableTest, NumberFormatting) {
  EXPECT_EQ(TextTable::Num(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::Num(std::nan(""), 2), "-");
  EXPECT_EQ(TextTable::Percent(0.0123), "+1.23%");
  EXPECT_EQ(TextTable::Percent(-0.5, 1), "-50.0%");
}

}  // namespace
}  // namespace mocograd
