// bf16 storage conversion (base/bf16.h): round-to-nearest-even truncation
// on narrow, exact widening, and the special-value corners the serving
// arena can encounter (docs/SERVING.md "Reduced precision").

#include "base/bf16.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include <gtest/gtest.h>

namespace mocograd {
namespace {

uint32_t BitsOf(float f) {
  uint32_t b;
  std::memcpy(&b, &f, sizeof(b));
  return b;
}

float FromBits(uint32_t b) {
  float f;
  std::memcpy(&f, &b, sizeof(f));
  return f;
}

TEST(Bf16Test, ExactValuesRoundTrip) {
  // Any f32 whose low 16 mantissa bits are zero is exactly representable.
  const float exact[] = {0.0f,  1.0f,   -1.0f,  0.5f,    2.0f,
                         -3.5f, 128.0f, 0.125f, -256.0f, 1.5f};
  for (float f : exact) {
    EXPECT_EQ(F32FromBf16(Bf16FromF32(f)), f) << f;
  }
}

TEST(Bf16Test, WideningIsHighHalfShift) {
  // F32FromBf16 must reproduce the bf16 pattern in the f32 high half.
  for (uint32_t hi = 0; hi < 0x100; ++hi) {
    const uint16_t b = static_cast<uint16_t>(hi << 8 | 0x3f);
    EXPECT_EQ(BitsOf(F32FromBf16(b)), static_cast<uint32_t>(b) << 16);
  }
}

TEST(Bf16Test, RoundsToNearest) {
  // 1.0f + one ulp-of-bf16/4: low bits 0x4000 sit exactly halfway below
  // the tie region? No — 0x4000 is below half of 0x10000 only jointly
  // with the tie logic; spell the cases out explicitly instead.
  // Pattern 0x3f800000 is 1.0; bf16 ulp at 1.0 is 1/128.
  const float ulp = 1.0f / 128.0f;
  // Just under half an ulp above 1.0 rounds down to 1.0.
  EXPECT_EQ(F32FromBf16(Bf16FromF32(1.0f + 0.49f * ulp)), 1.0f);
  // Just over half an ulp rounds up.
  EXPECT_EQ(F32FromBf16(Bf16FromF32(1.0f + 0.51f * ulp)), 1.0f + ulp);
}

TEST(Bf16Test, TieRoundsToEven) {
  // Exactly halfway between two bf16 values: low 16 bits == 0x8000.
  // 1.0 + ulp/2 (pattern 0x3f808000) is halfway between 0x3f80 (even) and
  // 0x3f81 (odd) → rounds to the even 0x3f80.
  EXPECT_EQ(Bf16FromF32(FromBits(0x3f808000u)), 0x3f80);
  // 0x3f818000 is halfway between 0x3f81 (odd) and 0x3f82 (even) → 0x3f82.
  EXPECT_EQ(Bf16FromF32(FromBits(0x3f818000u)), 0x3f82);
}

TEST(Bf16Test, SignedZeroPreserved) {
  EXPECT_EQ(Bf16FromF32(0.0f), 0x0000);
  EXPECT_EQ(Bf16FromF32(-0.0f), 0x8000);
  EXPECT_EQ(BitsOf(F32FromBf16(0x8000)), 0x80000000u);
  EXPECT_TRUE(std::signbit(F32FromBf16(0x8000)));
}

TEST(Bf16Test, InfinityPreserved) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(F32FromBf16(Bf16FromF32(inf)), inf);
  EXPECT_EQ(F32FromBf16(Bf16FromF32(-inf)), -inf);
  // Rounding must never overflow a large finite value into infinity ulp
  // games aside: the largest bf16-representable finite value survives.
  const float big = FromBits(0x7f7f0000u);
  EXPECT_EQ(F32FromBf16(Bf16FromF32(big)), big);
}

TEST(Bf16Test, LargestFiniteBelowTieRoundsToInf) {
  // 0x7f7fffff (max finite f32) is above the halfway point between
  // 0x7f7f and the next step (infinity) — IEEE RNE narrows it to +inf,
  // matching hardware bf16 conversion.
  EXPECT_EQ(Bf16FromF32(FromBits(0x7f7fffffu)), 0x7f80);
  EXPECT_TRUE(std::isinf(F32FromBf16(0x7f80)));
}

TEST(Bf16Test, NanStaysNanAndCanonicalizes) {
  const float qnan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(std::isnan(F32FromBf16(Bf16FromF32(qnan))));
  // A NaN whose payload lives only in the low 16 bits must not collapse
  // to infinity on truncation.
  const float low_payload_nan = FromBits(0x7f800001u);
  ASSERT_TRUE(std::isnan(low_payload_nan));
  EXPECT_TRUE(std::isnan(F32FromBf16(Bf16FromF32(low_payload_nan))));
  // Sign of the NaN is preserved.
  const float neg_nan = FromBits(0xff800001u);
  const uint16_t b = Bf16FromF32(neg_nan);
  EXPECT_TRUE(std::isnan(F32FromBf16(b)));
  EXPECT_TRUE(std::signbit(F32FromBf16(b)));
}

TEST(Bf16Test, DenormalsRoundNotFlush) {
  // f32 denormals narrow by the same RNE rule (no flush-to-zero): the
  // largest f32 denormal rounds to the smallest bf16 denormal step.
  const float denorm = FromBits(0x007fffffu);
  const uint16_t b = Bf16FromF32(denorm);
  EXPECT_EQ(b, 0x0080);  // rounds up into the smallest normal bf16
  // Tiny denormals round to zero.
  EXPECT_EQ(Bf16FromF32(FromBits(0x00000001u)), 0x0000);
  EXPECT_EQ(Bf16FromF32(FromBits(0x80000001u)), 0x8000);
}

TEST(Bf16Test, MaxAbsErrorBoundedByRelativeUlp) {
  // |x - bf16(x)| <= 2^-8 · |x| for normal values (half a bf16 ulp).
  for (int i = 0; i < 1000; ++i) {
    const float x = std::ldexp(1.0f + 0.001f * static_cast<float>(i),
                               (i % 15) - 7);
    const float err = std::fabs(x - F32FromBf16(Bf16FromF32(x)));
    EXPECT_LE(err, std::ldexp(std::fabs(x), -8)) << x;
  }
}

}  // namespace
}  // namespace mocograd
