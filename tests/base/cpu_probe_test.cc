// cpuid feature probe (base/cpu.h) and the tier policy built on it
// (base/simd.h "Runtime dispatch"): the probe must agree with the kernel's
// /proc/cpuinfo flags, and the MOCOGRAD_SIMD_ISA ceiling semantics must
// clamp-and-fall-back rather than ever selecting an unusable tier.

#include "base/cpu.h"

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "base/simd.h"
#include "base/vec_kernels.h"
#include "tensor/gemm_kernels.h"

namespace mocograd {
namespace {

// Flags field of /proc/cpuinfo (first processor), or "" when unavailable
// (non-Linux or non-x86 hosts).
std::string ProcCpuinfoFlags() {
  std::ifstream in("/proc/cpuinfo");
  if (!in) return "";
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("flags", 0) == 0 || line.rfind("Features", 0) == 0) {
      return " " + line + " ";
    }
  }
  return "";
}

bool HasFlag(const std::string& flags, const std::string& f) {
  return flags.find(" " + f + " ") != std::string::npos ||
         flags.find(" " + f + "\n") != std::string::npos;
}

TEST(CpuProbeTest, AgreesWithProcCpuinfo) {
  const std::string flags = ProcCpuinfoFlags();
  if (flags.empty()) {
    GTEST_SKIP() << "/proc/cpuinfo flags unavailable on this host";
  }
  const cpu::Features& f = cpu::GetFeatures();
#if defined(__x86_64__) || defined(_M_X64)
  EXPECT_EQ(f.sse2, HasFlag(flags, "sse2"));
  EXPECT_EQ(f.avx2, HasFlag(flags, "avx2"));
  EXPECT_EQ(f.fma, HasFlag(flags, "fma"));
  EXPECT_EQ(f.avx512f, HasFlag(flags, "avx512f"));
  EXPECT_EQ(f.avx512vl, HasFlag(flags, "avx512vl"));
  EXPECT_EQ(f.avx512dq, HasFlag(flags, "avx512dq"));
  EXPECT_EQ(f.avx512bw, HasFlag(flags, "avx512bw"));
#else
  GTEST_SKIP() << "x86 flag comparison not applicable";
#endif
}

TEST(CpuProbeTest, OsSupportImpliesCpuSupport) {
  const cpu::Features& f = cpu::GetFeatures();
  if (f.os_avx512) EXPECT_TRUE(f.os_avx);
  if (f.avx2) EXPECT_TRUE(f.sse2);
  if (f.avx512f) EXPECT_TRUE(f.avx2) << "no AVX-512 hardware lacks AVX2";
}

TEST(CpuProbeTest, ActiveTierIsUsable) {
  // Whatever tier the startup policy selected, both kernel tables must
  // exist for it and the CPU must actually support it — the selector can
  // never leave the process on a tier that would fault.
  const simd::IsaTier t = simd::ActiveTier();
  EXPECT_NE(vec::VecKernelsForTier(t), nullptr);
  EXPECT_NE(GemmKernelsForTier(t), nullptr);
  const cpu::Features& f = cpu::GetFeatures();
  switch (t) {
    case simd::IsaTier::kAvx512:
      EXPECT_TRUE(f.avx512f && f.avx512vl && f.avx512dq && f.avx512bw &&
                  f.os_avx512);
      break;
    case simd::IsaTier::kAvx2:
      EXPECT_TRUE(f.avx2 && f.fma && f.os_avx);
      break;
    case simd::IsaTier::kSse:
      EXPECT_TRUE(f.sse2);
      break;
    case simd::IsaTier::kNeon:
    case simd::IsaTier::kScalar:
      break;
  }
}

TEST(CpuProbeTest, SetTierClampsToAvailable) {
  const simd::IsaTier initial = simd::ActiveTier();
  // Requesting the widest tier lands on some available tier at or below it.
  simd::SetTier(simd::IsaTier::kAvx512);
  const simd::IsaTier best = simd::ActiveTier();
  EXPECT_NE(vec::VecKernelsForTier(best), nullptr);
  // Scalar is always grantable.
  simd::SetTier(simd::IsaTier::kScalar);
  EXPECT_EQ(simd::ActiveTier(), simd::IsaTier::kScalar);
  EXPECT_FALSE(simd::Enabled());
  EXPECT_STREQ(simd::ActiveBackendName(), "scalar");
  // SetEnabled(true) restores the env-ceilinged best tier; when the
  // process started with SIMD enabled that is exactly the startup tier.
  // (Under MOCOGRAD_SIMD=0 the startup tier is scalar instead, so only
  // availability can be asserted.)
  simd::SetEnabled(true);
  EXPECT_NE(vec::VecKernelsForTier(simd::ActiveTier()), nullptr);
  if (initial != simd::IsaTier::kScalar) {
    EXPECT_EQ(simd::ActiveTier(), initial);
  } else {
    simd::SetEnabled(false);  // restore a scalar start state
  }
}

TEST(CpuProbeTest, TierNamesAreStable) {
  EXPECT_STREQ(simd::TierName(simd::IsaTier::kScalar), "scalar");
  EXPECT_STREQ(simd::TierName(simd::IsaTier::kSse), "sse");
  EXPECT_STREQ(simd::TierName(simd::IsaTier::kNeon), "neon");
  EXPECT_STREQ(simd::TierName(simd::IsaTier::kAvx2), "avx2");
  EXPECT_STREQ(simd::TierName(simd::IsaTier::kAvx512), "avx512");
}

}  // namespace
}  // namespace mocograd
