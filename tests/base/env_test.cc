#include "base/env.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace mocograd {
namespace {

// setenv/unsetenv are process-global; each test uses its own variable name.

TEST(EnvTest, IntParsesValueInRange) {
  ASSERT_EQ(setenv("MG_ENV_TEST_INT", "12", 1), 0);
  EXPECT_EQ(GetEnvInt("MG_ENV_TEST_INT", 3, 1, 64), 12);
  unsetenv("MG_ENV_TEST_INT");
}

TEST(EnvTest, IntUnsetUsesFallback) {
  unsetenv("MG_ENV_TEST_UNSET");
  EXPECT_EQ(GetEnvInt("MG_ENV_TEST_UNSET", 7, 1, 64), 7);
}

TEST(EnvTest, IntMalformedUsesFallback) {
  ASSERT_EQ(setenv("MG_ENV_TEST_BAD", "four", 1), 0);
  EXPECT_EQ(GetEnvInt("MG_ENV_TEST_BAD", 5, 1, 64), 5);
  ASSERT_EQ(setenv("MG_ENV_TEST_BAD", "12abc", 1), 0);
  EXPECT_EQ(GetEnvInt("MG_ENV_TEST_BAD", 5, 1, 64), 5);
  ASSERT_EQ(setenv("MG_ENV_TEST_BAD", "", 1), 0);
  EXPECT_EQ(GetEnvInt("MG_ENV_TEST_BAD", 5, 1, 64), 5);
  unsetenv("MG_ENV_TEST_BAD");
}

TEST(EnvTest, IntOutOfRangeUsesFallback) {
  ASSERT_EQ(setenv("MG_ENV_TEST_RANGE", "0", 1), 0);
  EXPECT_EQ(GetEnvInt("MG_ENV_TEST_RANGE", 2, 1, 64), 2);
  ASSERT_EQ(setenv("MG_ENV_TEST_RANGE", "65", 1), 0);
  EXPECT_EQ(GetEnvInt("MG_ENV_TEST_RANGE", 2, 1, 64), 2);
  unsetenv("MG_ENV_TEST_RANGE");
}

TEST(EnvTest, StringReturnsValueOrFallback) {
  ASSERT_EQ(setenv("MG_ENV_TEST_STR", "/tmp/trace.json", 1), 0);
  EXPECT_EQ(GetEnvString("MG_ENV_TEST_STR"), "/tmp/trace.json");
  unsetenv("MG_ENV_TEST_STR");
  EXPECT_EQ(GetEnvString("MG_ENV_TEST_STR"), "");
  EXPECT_EQ(GetEnvString("MG_ENV_TEST_STR", "fallback"), "fallback");
}

TEST(EnvTest, StringEmptyValueIsReturnedAsIs) {
  ASSERT_EQ(setenv("MG_ENV_TEST_EMPTY", "", 1), 0);
  EXPECT_EQ(GetEnvString("MG_ENV_TEST_EMPTY", "fallback"), "");
  unsetenv("MG_ENV_TEST_EMPTY");
}

}  // namespace
}  // namespace mocograd
