#include "base/env.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace mocograd {
namespace {

// setenv/unsetenv are process-global; each test uses its own variable name.

TEST(EnvTest, IntParsesValueInRange) {
  ASSERT_EQ(setenv("MG_ENV_TEST_INT", "12", 1), 0);
  EXPECT_EQ(GetEnvInt("MG_ENV_TEST_INT", 3, 1, 64), 12);
  unsetenv("MG_ENV_TEST_INT");
}

TEST(EnvTest, IntUnsetUsesFallback) {
  unsetenv("MG_ENV_TEST_UNSET");
  EXPECT_EQ(GetEnvInt("MG_ENV_TEST_UNSET", 7, 1, 64), 7);
}

TEST(EnvTest, IntMalformedUsesFallback) {
  ASSERT_EQ(setenv("MG_ENV_TEST_BAD", "four", 1), 0);
  EXPECT_EQ(GetEnvInt("MG_ENV_TEST_BAD", 5, 1, 64), 5);
  ASSERT_EQ(setenv("MG_ENV_TEST_BAD", "12abc", 1), 0);
  EXPECT_EQ(GetEnvInt("MG_ENV_TEST_BAD", 5, 1, 64), 5);
  ASSERT_EQ(setenv("MG_ENV_TEST_BAD", "", 1), 0);
  EXPECT_EQ(GetEnvInt("MG_ENV_TEST_BAD", 5, 1, 64), 5);
  unsetenv("MG_ENV_TEST_BAD");
}

TEST(EnvTest, IntOutOfRangeUsesFallback) {
  ASSERT_EQ(setenv("MG_ENV_TEST_RANGE", "0", 1), 0);
  EXPECT_EQ(GetEnvInt("MG_ENV_TEST_RANGE", 2, 1, 64), 2);
  ASSERT_EQ(setenv("MG_ENV_TEST_RANGE", "65", 1), 0);
  EXPECT_EQ(GetEnvInt("MG_ENV_TEST_RANGE", 2, 1, 64), 2);
  unsetenv("MG_ENV_TEST_RANGE");
}

TEST(EnvTest, ListParsesCommaSeparatedValues) {
  ASSERT_EQ(setenv("MG_ENV_TEST_LIST", "10,24,32", 1), 0);
  const std::vector<int> v = GetEnvIntList("MG_ENV_TEST_LIST", 1, 1 << 20);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 10);
  EXPECT_EQ(v[1], 24);
  EXPECT_EQ(v[2], 32);
  unsetenv("MG_ENV_TEST_LIST");
}

TEST(EnvTest, ListSingleElement) {
  ASSERT_EQ(setenv("MG_ENV_TEST_LIST1", "64", 1), 0);
  const std::vector<int> v = GetEnvIntList("MG_ENV_TEST_LIST1", 1, 1 << 20);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 64);
  unsetenv("MG_ENV_TEST_LIST1");
}

TEST(EnvTest, ListUnsetOrEmptyIsEmpty) {
  unsetenv("MG_ENV_TEST_LIST_UNSET");
  EXPECT_TRUE(GetEnvIntList("MG_ENV_TEST_LIST_UNSET", 1, 64).empty());
  ASSERT_EQ(setenv("MG_ENV_TEST_LIST_UNSET", "", 1), 0);
  EXPECT_TRUE(GetEnvIntList("MG_ENV_TEST_LIST_UNSET", 1, 64).empty());
  unsetenv("MG_ENV_TEST_LIST_UNSET");
}

// Any malformed element rejects the whole list — a partially-applied knob
// would be worse than a silently ignored one.
TEST(EnvTest, ListMalformedIsEmpty) {
  const char* bad[] = {"banana", "1,two,3", "1,,3",  "1,2,",
                       ",1,2",   "1;2",     "1,2 3", "1.5,2,3"};
  for (const char* value : bad) {
    ASSERT_EQ(setenv("MG_ENV_TEST_LIST_BAD", value, 1), 0);
    EXPECT_TRUE(GetEnvIntList("MG_ENV_TEST_LIST_BAD", 1, 1 << 20).empty())
        << "value: " << value;
  }
  unsetenv("MG_ENV_TEST_LIST_BAD");
}

// Out-of-range elements reject the whole list, including values too large
// for long (strtol clamps to LONG_MAX, which is above any sane max).
TEST(EnvTest, ListOutOfRangeIsEmpty) {
  const char* bad[] = {"0,24,32", "-3,24,32", "10,24,2000000",
                       "99999999999999999999"};
  for (const char* value : bad) {
    ASSERT_EQ(setenv("MG_ENV_TEST_LIST_RANGE", value, 1), 0);
    EXPECT_TRUE(GetEnvIntList("MG_ENV_TEST_LIST_RANGE", 1, 1 << 20).empty())
        << "value: " << value;
  }
  unsetenv("MG_ENV_TEST_LIST_RANGE");
}

TEST(EnvTest, StringReturnsValueOrFallback) {
  ASSERT_EQ(setenv("MG_ENV_TEST_STR", "/tmp/trace.json", 1), 0);
  EXPECT_EQ(GetEnvString("MG_ENV_TEST_STR"), "/tmp/trace.json");
  unsetenv("MG_ENV_TEST_STR");
  EXPECT_EQ(GetEnvString("MG_ENV_TEST_STR"), "");
  EXPECT_EQ(GetEnvString("MG_ENV_TEST_STR", "fallback"), "fallback");
}

TEST(EnvTest, StringEmptyValueIsReturnedAsIs) {
  ASSERT_EQ(setenv("MG_ENV_TEST_EMPTY", "", 1), 0);
  EXPECT_EQ(GetEnvString("MG_ENV_TEST_EMPTY", "fallback"), "");
  unsetenv("MG_ENV_TEST_EMPTY");
}

}  // namespace
}  // namespace mocograd
