// Tests for the per-thread scratch arena (base/scratch.h): alignment,
// pointer stability across growth, LIFO mark/release reuse, the
// steady-state no-new-chunks guarantee the kernels rely on, and
// thread-locality of the backing storage.

#include "base/scratch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

namespace mocograd {
namespace {

TEST(ScratchArenaTest, AllocationsAreAligned) {
  ScratchArena arena;
  for (size_t align : {size_t{8}, size_t{16}, size_t{32}, size_t{64}}) {
    for (size_t bytes : {size_t{1}, size_t{7}, size_t{64}, size_t{1000}}) {
      void* p = arena.Alloc(bytes, align);
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u)
          << "bytes=" << bytes << " align=" << align;
    }
  }
  // Default alignment is a cache line.
  EXPECT_EQ(reinterpret_cast<uintptr_t>(arena.AllocFloats(3)) %
                ScratchArena::kDefaultAlign,
            0u);
}

TEST(ScratchArenaTest, PointersSurviveGrowth) {
  ScratchArena arena;
  // Fill early allocations with a pattern, then force repeated growth well
  // past the first chunk; the early pointers must still read back intact
  // (growth appends chunks, never reallocates).
  float* first = arena.AllocFloats(1024);
  for (int i = 0; i < 1024; ++i) first[i] = static_cast<float>(i) * 0.5f;
  const size_t before = arena.capacity_bytes();
  std::vector<float*> big;
  while (arena.capacity_bytes() < 8 * before) {
    big.push_back(arena.AllocFloats(1 << 18));
  }
  ASSERT_GT(arena.capacity_bytes(), before);
  big.back()[0] = 42.0f;  // the new chunks are writable
  for (int i = 0; i < 1024; ++i) {
    ASSERT_EQ(first[i], static_cast<float>(i) * 0.5f) << "at " << i;
  }
}

TEST(ScratchArenaTest, ReleaseReusesStorageWithoutNewChunks) {
  ScratchArena arena;
  // Grow to the high-water mark once.
  {
    ScratchScope scope(arena);
    scope.AllocFloats(1 << 16);
    scope.AllocFloats(1 << 16);
  }
  const size_t settled = arena.capacity_bytes();
  const int64_t chunks_before = ScratchArena::TotalChunkAllocs();
  // Every later same-sized scope must be a pure pointer bump: same
  // capacity, no new backing chunks anywhere in the process.
  for (int round = 0; round < 50; ++round) {
    ScratchScope scope(arena);
    float* a = scope.AllocFloats(1 << 16);
    float* b = scope.AllocFloats(1 << 16);
    a[0] = 1.0f;
    b[(1 << 16) - 1] = 2.0f;
  }
  EXPECT_EQ(arena.capacity_bytes(), settled);
  EXPECT_EQ(ScratchArena::TotalChunkAllocs(), chunks_before);
}

TEST(ScratchArenaTest, NestedScopesRollBackInLifoOrder) {
  ScratchArena arena;
  ScratchScope outer(arena);
  float* held = outer.AllocFloats(16);
  held[0] = 7.0f;
  float* inner_ptr = nullptr;
  {
    ScratchScope inner(arena);
    inner_ptr = inner.AllocFloats(16);
    ASSERT_NE(inner_ptr, held);
  }
  // After the inner scope closed, its storage is handed out again while the
  // outer allocation is untouched.
  float* reused = outer.AllocFloats(16);
  EXPECT_EQ(reused, inner_ptr);
  EXPECT_EQ(held[0], 7.0f);
}

TEST(ScratchArenaTest, ThreadLocalArenasAreDistinct) {
  float* main_ptr = nullptr;
  {
    ScratchScope scope;
    main_ptr = scope.AllocFloats(64);
    main_ptr[0] = 1.0f;
    float* other_ptr = nullptr;
    std::thread t([&] {
      ScratchScope other;
      other_ptr = other.AllocFloats(64);
      other_ptr[0] = 2.0f;
    });
    t.join();
    EXPECT_NE(main_ptr, other_ptr);
    EXPECT_EQ(main_ptr[0], 1.0f);
  }
}

// --- Debug poisoning (MOCOGRAD_DEBUG_POISON; Debug and sanitized builds).
// These tests prove the poisoning contract of docs/CORRECTNESS.md: scratch
// read before it is written is a signaling NaN, released scratch reads as
// NaN again, and writing past an allocation trips the bounds canary. They
// skip in Release builds, where poisoning compiles out.

TEST(ScratchArenaTest, PoisonCatchesReadBeforeWrite) {
  if (!ScratchArena::PoisoningEnabled()) {
    GTEST_SKIP() << "poisoning compiled out (Release build)";
  }
  ScratchArena arena;
  ScratchScope scope(arena);
  float* p = scope.AllocFloats(256);
  for (int i = 0; i < 256; ++i) {
    ASSERT_TRUE(std::isnan(p[i])) << "read-before-write not NaN at " << i;
    uint32_t bits;
    std::memcpy(&bits, &p[i], sizeof(bits));
    ASSERT_EQ(bits, ScratchArena::kPoisonPattern) << "at " << i;
  }
  // The poison survives arithmetic: a kernel accumulating stale scratch
  // produces NaN output instead of a silently wrong number.
  EXPECT_TRUE(std::isnan(p[0] * 0.0f + 1.0f));
}

TEST(ScratchArenaTest, ReleasedScratchIsRepoisoned) {
  if (!ScratchArena::PoisoningEnabled()) {
    GTEST_SKIP() << "poisoning compiled out (Release build)";
  }
  ScratchArena arena;
  float* p = nullptr;
  {
    ScratchScope scope(arena);
    p = scope.AllocFloats(64);
    for (int i = 0; i < 64; ++i) p[i] = 1.0f;
  }
  // The chunk still backs the arena, so the pointer is dereferenceable —
  // but a use-after-release computes NaN, not yesterday's values.
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(std::isnan(p[i])) << "stale value visible at " << i;
  }
}

#if GTEST_HAS_DEATH_TEST
TEST(ScratchArenaDeathTest, CanaryCatchesOverrun) {
  if (!ScratchArena::PoisoningEnabled()) {
    GTEST_SKIP() << "poisoning compiled out (Release build)";
  }
  EXPECT_DEATH(
      {
        ScratchArena arena;
        ScratchScope scope(arena);
        float* p = scope.AllocFloats(8);
        p[8] = 1.0f;  // first byte past the allocation
      },
      "scratch canary overwritten");
}
#endif  // GTEST_HAS_DEATH_TEST

}  // namespace
}  // namespace mocograd
