// Compile-and-run smoke for base/mutex.h and the thread-safety annotation
// macros (base/check.h). Under GCC the attributes are no-ops, so what this
// test pins is (a) the annotated API shapes stay usable from ordinary code
// and (b) Mutex/MutexLock/CondVar behave like the std primitives they wrap.
// The Clang release CI leg is what turns the annotations into hard errors.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "base/check.h"
#include "base/mutex.h"

namespace mocograd {
namespace {

// An annotated component in miniature: every guarded member names its mutex,
// the private helper states its lock requirement. Compiling this TU (GCC:
// macros expand to nothing; Clang: analysis passes) is the test.
class Counter {
 public:
  void Add(int n) {
    MutexLock lock(&mu_);
    value_ += n;
    cv_.NotifyAll();
  }

  int Get() const {
    MutexLock lock(&mu_);
    return value_;
  }

  // Blocks until the counter reaches at least `target`.
  void AwaitAtLeast(int target) {
    MutexLock lock(&mu_);
    while (value_ < target) cv_.Wait(mu_);
  }

  void AddTwice(int n) {
    MutexLock lock(&mu_);
    AddLocked(n);
    AddLocked(n);
  }

 private:
  void AddLocked(int n) MG_REQUIRES(mu_) { value_ += n; }

  mutable Mutex mu_;
  CondVar cv_;
  int value_ MG_GUARDED_BY(mu_) = 0;
};

TEST(ThreadAnnotationsTest, MutexLockSerializesWriters) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 2500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncrements; ++i) c.Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Get(), kThreads * kIncrements);
}

TEST(ThreadAnnotationsTest, CondVarWaitWakesOnNotify) {
  Counter c;
  std::thread waiter([&c] { c.AwaitAtLeast(3); });
  c.Add(1);
  c.Add(1);
  c.Add(1);
  waiter.join();
  EXPECT_GE(c.Get(), 3);
}

TEST(ThreadAnnotationsTest, RequiresAnnotatedHelperCallableUnderLock) {
  Counter c;
  c.AddTwice(5);
  EXPECT_EQ(c.Get(), 10);
}

TEST(ThreadAnnotationsTest, TryLockReportsContention) {
  Mutex mu;
  mu.Lock();
  bool acquired = true;
  std::thread other([&mu, &acquired] {
    acquired = mu.TryLock();
    if (acquired) mu.Unlock();
  });
  other.join();
  EXPECT_FALSE(acquired);
  mu.Unlock();
  // Uncontended TryLock succeeds.
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(ThreadAnnotationsTest, WaitUntilTimesOutWithoutNotify) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(&mu);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  EXPECT_EQ(cv.WaitUntil(mu, deadline), std::cv_status::timeout);
}

TEST(ThreadAnnotationsTest, NativeHandleInteroperatesWithStd) {
  // CondVar wraps std::condition_variable via Mutex::native_handle();
  // adopting the handle directly must stay coherent with Lock/Unlock.
  Mutex mu;
  mu.Lock();
  {
    std::unique_lock<std::mutex> lk(mu.native_handle(), std::adopt_lock);
    lk.release();
  }
  mu.Unlock();
}

}  // namespace
}  // namespace mocograd
