#include "base/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

namespace mocograd {
namespace {

TEST(ThreadPoolTest, SetGlobalNumThreadsTakesEffect) {
  ThreadPool::SetGlobalNumThreads(3);
  EXPECT_EQ(ThreadPool::GlobalNumThreads(), 3);
  ThreadPool::SetGlobalNumThreads(1);
  EXPECT_EQ(ThreadPool::GlobalNumThreads(), 1);
}

TEST(ParallelForTest, EmptyRangeNeverCallsBody) {
  ThreadPool::SetGlobalNumThreads(4);
  int calls = 0;
  ParallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  ParallelFor(7, 3, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, PoolSize1RunsInlineInOneChunk) {
  ThreadPool::SetGlobalNumThreads(1);
  const std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  int64_t b = -1, e = -1;
  ParallelFor(3, 103, 1, [&](int64_t cb, int64_t ce) {
    ++calls;
    b = cb;
    e = ce;
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(b, 3);
  EXPECT_EQ(e, 103);
}

TEST(ParallelForTest, RangeAtMostGrainRunsInline) {
  ThreadPool::SetGlobalNumThreads(4);
  const std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  ParallelFor(0, 64, 64, [&](int64_t cb, int64_t ce) {
    ++calls;
    EXPECT_EQ(cb, 0);
    EXPECT_EQ(ce, 64);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  ThreadPool::SetGlobalNumThreads(4);
  constexpr int64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  ParallelFor(0, kN, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ChunksRespectGrainAndDisjointness) {
  ThreadPool::SetGlobalNumThreads(4);
  std::atomic<int64_t> total{0};
  std::atomic<int> chunks{0};
  ParallelFor(0, 1000, 10, [&](int64_t b, int64_t e) {
    EXPECT_GE(e - b, 1);
    // Every chunk except possibly the last must hold at least the grain.
    if (e != 1000) {
      EXPECT_GE(e - b, 10);
    }
    total.fetch_add(e - b);
    chunks.fetch_add(1);
  });
  EXPECT_EQ(total.load(), 1000);
  EXPECT_GT(chunks.load(), 1);
}

TEST(ParallelForTest, ExceptionPropagatesToCaller) {
  ThreadPool::SetGlobalNumThreads(4);
  EXPECT_THROW(
      ParallelFor(0, 1000, 1,
                  [&](int64_t b, int64_t) {
                    if (b == 0) throw std::runtime_error("boom");
                  }),
      std::runtime_error);

  // The pool survives a failed loop and keeps running new ones.
  std::atomic<int64_t> total{0};
  ParallelFor(0, 100, 1, [&](int64_t b, int64_t e) {
    total.fetch_add(e - b);
  });
  EXPECT_EQ(total.load(), 100);
}

TEST(ParallelForTest, NestedLoopsComposeWithoutDeadlock) {
  ThreadPool::SetGlobalNumThreads(4);
  constexpr int64_t kOuter = 8;
  constexpr int64_t kInner = 500;
  std::atomic<int64_t> count{0};
  ParallelFor(0, kOuter, 1, [&](int64_t b, int64_t e) {
    for (int64_t o = b; o < e; ++o) {
      ParallelFor(0, kInner, 1, [&](int64_t ib, int64_t ie) {
        count.fetch_add(ie - ib);
      });
    }
  });
  EXPECT_EQ(count.load(), kOuter * kInner);
}

TEST(ParallelForTest, NestedExceptionPropagatesThroughBothLevels) {
  ThreadPool::SetGlobalNumThreads(4);
  EXPECT_THROW(
      ParallelFor(0, 4, 1,
                  [&](int64_t, int64_t) {
                    ParallelFor(0, 100, 1, [&](int64_t ib, int64_t) {
                      if (ib == 0) throw std::runtime_error("inner boom");
                    });
                  }),
      std::runtime_error);
}

TEST(ParallelForTest, ManySmallLoopsStress) {
  ThreadPool::SetGlobalNumThreads(4);
  for (int iter = 0; iter < 200; ++iter) {
    std::atomic<int64_t> total{0};
    ParallelFor(0, 64, 1, [&](int64_t b, int64_t e) {
      total.fetch_add(e - b);
    });
    ASSERT_EQ(total.load(), 64);
  }
}

}  // namespace
}  // namespace mocograd
