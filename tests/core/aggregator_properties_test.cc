// Cross-method property sweeps: scale behavior, determinism under a fixed
// rng, and Reset() semantics for the stateful aggregators.

#include <gtest/gtest.h>

#include <cmath>

#include "core/registry.h"

namespace mocograd {
namespace {

using core::AggregationContext;
using core::GradMatrix;

GradMatrix RandomGrads(int k, int64_t p, uint64_t seed, float scale = 1.0f) {
  Rng rng(seed);
  GradMatrix g(k, p);
  for (int i = 0; i < k; ++i) {
    for (int64_t q = 0; q < p; ++q) {
      g.Row(i)[q] = scale * rng.Normal();
    }
  }
  return g;
}

core::AggregationResult RunAgg(core::GradientAggregator& agg,
                               const GradMatrix& g, uint64_t seed = 1,
                               int64_t step = 0) {
  std::vector<float> losses(g.num_tasks(), 1.0f);
  Rng rng(seed);
  AggregationContext ctx;
  ctx.task_grads = &g;
  ctx.losses = &losses;
  ctx.step = step;
  ctx.rng = &rng;
  return agg.Aggregate(ctx);
}

double Cosine(const std::vector<float>& a, const std::vector<float>& b) {
  double dot = 0, na = 0, nb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += double(a[i]) * b[i];
    na += double(a[i]) * a[i];
    nb += double(b[i]) * b[i];
  }
  return dot / std::sqrt(na * nb + 1e-30);
}

// Positively scaling every task gradient must not change the *direction* of
// the combined update (all implemented methods are positively homogeneous
// in direction; stateful methods are tested from a cold start).
class ScaleDirectionTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ScaleDirectionTest, DirectionInvariantToUniformScale) {
  for (uint64_t trial = 0; trial < 5; ++trial) {
    auto agg1 = core::MakeAggregator(GetParam()).value();
    auto agg2 = core::MakeAggregator(GetParam()).value();
    GradMatrix g1 = RandomGrads(4, 12, 100 + trial, 1.0f);
    GradMatrix g2 = RandomGrads(4, 12, 100 + trial, 3.0f);  // same draws x3
    auto r1 = RunAgg(*agg1, g1, trial);
    auto r2 = RunAgg(*agg2, g2, trial);
    EXPECT_NEAR(Cosine(r1.shared_grad, r2.shared_grad), 1.0, 1e-4)
        << GetParam() << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, ScaleDirectionTest,
                         ::testing::ValuesIn(core::AllMethodNames()));

// Same inputs + same rng seed ⇒ bitwise-identical outputs.
class DeterminismTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DeterminismTest, SameSeedSameOutput) {
  auto agg1 = core::MakeAggregator(GetParam()).value();
  auto agg2 = core::MakeAggregator(GetParam()).value();
  GradMatrix g = RandomGrads(5, 10, 7);
  for (int step = 0; step < 3; ++step) {
    auto r1 = RunAgg(*agg1, g, 42 + step, step);
    auto r2 = RunAgg(*agg2, g, 42 + step, step);
    ASSERT_EQ(r1.shared_grad.size(), r2.shared_grad.size());
    for (size_t i = 0; i < r1.shared_grad.size(); ++i) {
      ASSERT_EQ(r1.shared_grad[i], r2.shared_grad[i])
          << GetParam() << " step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, DeterminismTest,
                         ::testing::ValuesIn(core::AllMethodNames()));

// Reset() restores cold-start behavior for the stateful methods.
class ResetSemanticsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ResetSemanticsTest, ResetRestoresColdStart) {
  auto agg = core::MakeAggregator(GetParam()).value();
  GradMatrix g = RandomGrads(3, 8, 11);
  auto cold = RunAgg(*agg, g, 5, 0);
  // Warm the state with different inputs.
  GradMatrix warm = RandomGrads(3, 8, 12);
  RunAgg(*agg, warm, 6, 1);
  RunAgg(*agg, warm, 7, 2);
  agg->Reset();
  auto after = RunAgg(*agg, g, 5, 0);
  ASSERT_EQ(cold.shared_grad.size(), after.shared_grad.size());
  for (size_t i = 0; i < cold.shared_grad.size(); ++i) {
    ASSERT_EQ(cold.shared_grad[i], after.shared_grad[i]) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(
    StatefulMethods, ResetSemanticsTest,
    ::testing::Values("mocograd", "gradvac", "dwa", "gradnorm", "uw"));

// Permuting the task order permutes nothing structural: the EW result is
// exactly permutation-invariant, and deterministic order-free methods agree
// up to float accumulation order.
TEST(PermutationTest, EwIsTaskOrderInvariant) {
  GradMatrix g = RandomGrads(4, 6, 13);
  GradMatrix perm(4, 6);
  const int order[4] = {2, 0, 3, 1};
  for (int i = 0; i < 4; ++i) perm.SetRow(i, g.RowVector(order[i]));
  core::EqualWeight ew;
  auto r1 = RunAgg(ew, g);
  auto r2 = RunAgg(ew, perm);
  for (size_t i = 0; i < r1.shared_grad.size(); ++i) {
    EXPECT_NEAR(r1.shared_grad[i], r2.shared_grad[i], 1e-6);
  }
}

}  // namespace
}  // namespace mocograd
