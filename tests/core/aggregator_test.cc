#include <gtest/gtest.h>

#include <cmath>

#include "core/conflict.h"
#include "core/metrics.h"
#include "core/registry.h"

namespace mocograd {
namespace {

using core::AggregationContext;
using core::AggregationResult;
using core::GradMatrix;

// Builds a GradMatrix from explicit rows.
GradMatrix MakeGrads(const std::vector<std::vector<float>>& rows) {
  GradMatrix g(static_cast<int>(rows.size()),
               static_cast<int64_t>(rows[0].size()));
  for (size_t i = 0; i < rows.size(); ++i) {
    g.SetRow(static_cast<int>(i), rows[i]);
  }
  return g;
}

AggregationResult RunAgg(core::GradientAggregator& agg, const GradMatrix& g,
                      std::vector<float> losses = {}, uint64_t seed = 1,
                      int64_t step = 0) {
  if (losses.empty()) losses.assign(g.num_tasks(), 1.0f);
  Rng rng(seed);
  AggregationContext ctx;
  ctx.task_grads = &g;
  ctx.losses = &losses;
  ctx.step = step;
  ctx.rng = &rng;
  return agg.Aggregate(ctx);
}

double Dot(const std::vector<float>& a, const std::vector<float>& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += double(a[i]) * b[i];
  return s;
}

double Norm(const std::vector<float>& a) { return std::sqrt(Dot(a, a)); }

TEST(GradMatrixTest, RowAccessAndGram) {
  GradMatrix g = MakeGrads({{1, 0}, {0, 2}});
  EXPECT_EQ(g.num_tasks(), 2);
  EXPECT_EQ(g.dim(), 2);
  EXPECT_DOUBLE_EQ(g.RowDot(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(g.RowNorm(1), 2.0);
  auto gram = g.Gram();
  EXPECT_DOUBLE_EQ(gram[0][0], 1.0);
  EXPECT_DOUBLE_EQ(gram[1][1], 4.0);
  auto sum = g.SumRows();
  EXPECT_FLOAT_EQ(sum[0], 1.0f);
  EXPECT_FLOAT_EQ(sum[1], 2.0f);
  auto wsum = g.WeightedSumRows({2.0, 0.5});
  EXPECT_FLOAT_EQ(wsum[0], 2.0f);
  EXPECT_FLOAT_EQ(wsum[1], 1.0f);
}

TEST(ConflictTest, GcdDefinition) {
  const float a[] = {1, 0};
  const float b[] = {0, 1};
  const float c[] = {-1, 0};
  EXPECT_NEAR(core::Gcd(a, b, 2), 1.0, 1e-9);          // orthogonal
  EXPECT_NEAR(core::Gcd(a, c, 2), 2.0, 1e-9);          // opposed
  EXPECT_NEAR(core::Gcd(a, a, 2), 0.0, 1e-9);          // aligned
  EXPECT_FALSE(core::IsConflicting(a, b, 2));
  EXPECT_TRUE(core::IsConflicting(a, c, 2));
}

TEST(ConflictTest, ZeroGradientIsNeutral) {
  const float a[] = {1, 0};
  const float z[] = {0, 0};
  EXPECT_NEAR(core::CosineSimilarity(a, z, 2), 0.0, 1e-12);
  EXPECT_FALSE(core::IsConflicting(a, z, 2));
}

TEST(ConflictTest, StatsCountPairs) {
  GradMatrix g = MakeGrads({{1, 0}, {-1, 0}, {0, 1}});
  auto stats = core::ComputeConflictStats(g);
  EXPECT_EQ(stats.num_pairs, 3);
  EXPECT_EQ(stats.num_conflicting_pairs, 1);
  EXPECT_NEAR(stats.max_gcd, 2.0, 1e-9);
  EXPECT_NEAR(stats.mean_gcd, (2.0 + 1.0 + 1.0) / 3.0, 1e-9);
}

TEST(MetricsTest, TciSign) {
  EXPECT_GT(core::Tci(0.9, 0.8), 0.0);  // MTL worse (lower=better): conflict
  EXPECT_LT(core::Tci(0.7, 0.8), 0.0);
}

TEST(MetricsTest, DeltaMMatchesEq27) {
  // One higher-better metric improved 10%, one lower-better worsened 5%.
  std::vector<core::MetricComparison> cmp = {
      {.mtl_value = 1.1, .stl_value = 1.0, .higher_is_better = true},
      {.mtl_value = 1.05, .stl_value = 1.0, .higher_is_better = false},
  };
  EXPECT_NEAR(core::DeltaM(cmp), (0.10 - 0.05) / 2.0, 1e-9);
}

TEST(RegistryTest, BuildsEveryMethod) {
  for (const std::string& name : core::AllMethodNames()) {
    auto agg = core::MakeAggregator(name);
    ASSERT_TRUE(agg.ok()) << name;
    EXPECT_EQ(agg.value()->name(), name);
  }
  EXPECT_FALSE(core::MakeAggregator("bogus").ok());
}

TEST(RegistryTest, PaperOrderHasTenMethods) {
  EXPECT_EQ(core::PaperMethodNames().size(), 10u);
  EXPECT_EQ(core::PaperMethodNames().back(), "mocograd");
}

// Every method must reduce to (a scaling of) the single gradient when K=1
// and produce finite output.
class SingleTaskEdgeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SingleTaskEdgeTest, DegeneratesGracefully) {
  auto agg = core::MakeAggregator(GetParam()).value();
  GradMatrix g = MakeGrads({{1.0f, -2.0f, 3.0f}});
  auto r = RunAgg(*agg, g);
  ASSERT_EQ(r.shared_grad.size(), 3u);
  // Direction must match g (positive multiple).
  const double cos = Dot(r.shared_grad, {1.0f, -2.0f, 3.0f}) /
                     (Norm(r.shared_grad) * std::sqrt(14.0));
  EXPECT_NEAR(cos, 1.0, 1e-5) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllMethods, SingleTaskEdgeTest,
                         ::testing::ValuesIn(core::AllMethodNames()));

// With orthogonal (non-conflicting) gradients, surgery methods must return
// the plain sum.
class NonConflictingTest : public ::testing::TestWithParam<std::string> {};

TEST_P(NonConflictingTest, SurgeryMethodsPreserveSum) {
  auto agg = core::MakeAggregator(GetParam()).value();
  GradMatrix g = MakeGrads({{1, 0, 0}, {0, 2, 0}});
  auto r = RunAgg(*agg, g);
  EXPECT_EQ(r.num_conflicts, 0);
  EXPECT_NEAR(r.shared_grad[0], 1.0f, 1e-5);
  EXPECT_NEAR(r.shared_grad[1], 2.0f, 1e-5);
  EXPECT_NEAR(r.shared_grad[2], 0.0f, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(SurgeryMethods, NonConflictingTest,
                         ::testing::Values("ew", "pcgrad", "mocograd"));

// All methods: finite output on random conflicting inputs.
class FinitenessTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FinitenessTest, OutputAlwaysFinite) {
  auto agg = core::MakeAggregator(GetParam()).value();
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    agg->Reset();  // task count varies across trials
    const int k = 2 + trial % 4;
    const int64_t p = 16;
    GradMatrix g(k, p);
    for (int i = 0; i < k; ++i) {
      for (int64_t q = 0; q < p; ++q) g.Row(i)[q] = rng.Normal(0.0f, 2.0f);
    }
    std::vector<float> losses(k, 0.5f + trial * 0.1f);
    auto r = RunAgg(*agg, g, losses, trial, trial);
    ASSERT_EQ(r.shared_grad.size(), static_cast<size_t>(p));
    ASSERT_EQ(r.task_weights.size(), static_cast<size_t>(k));
    for (float v : r.shared_grad) EXPECT_TRUE(std::isfinite(v)) << GetParam();
    for (float v : r.task_weights) EXPECT_TRUE(std::isfinite(v)) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, FinitenessTest,
                         ::testing::ValuesIn(core::AllMethodNames()));

// All methods: all-zero gradients must not produce NaNs.
class ZeroGradEdgeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ZeroGradEdgeTest, HandlesAllZeroGradients) {
  auto agg = core::MakeAggregator(GetParam()).value();
  GradMatrix g(3, 8);  // zeros
  auto r = RunAgg(*agg, g);
  for (float v : r.shared_grad) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_NEAR(v, 0.0f, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, ZeroGradEdgeTest,
                         ::testing::ValuesIn(core::AllMethodNames()));

// --- PCGrad-specific properties --------------------------------------------

TEST(PcGradTest, TwoTaskProjectionRemovesConflict) {
  // After projecting g1 onto the normal plane of g2, the projected g1 must
  // be orthogonal to g2 (two-task case is order-independent).
  GradMatrix g = MakeGrads({{1, 0}, {-0.5f, 0.8f}});
  auto agg = core::MakeAggregator("pcgrad").value();
  auto r = RunAgg(*agg, g);
  EXPECT_EQ(r.num_conflicts, 2);
  // Expected: g1' = g1 - (g1.g2/||g2||^2) g2; g2' symmetric; sum:
  const float d = (1 * -0.5f + 0 * 0.8f);
  const float n2 = 0.25f + 0.64f;
  std::vector<float> g1p = {1 - d / n2 * -0.5f, -d / n2 * 0.8f};
  std::vector<float> g2p = {-0.5f - d * 1.0f, 0.8f};
  EXPECT_NEAR(r.shared_grad[0], g1p[0] + g2p[0], 1e-5);
  EXPECT_NEAR(r.shared_grad[1], g1p[1] + g2p[1], 1e-5);
  // Orthogonality of each projected gradient to the other original one:
  EXPECT_NEAR(g1p[0] * -0.5f + g1p[1] * 0.8f, 0.0f, 1e-6);
}

TEST(PcGradTest, OutputNotWorseForAnyTaskTwoTasks) {
  // For two tasks, PCGrad's combined direction has non-negative dot with
  // both original gradients (Yu et al., Lemma 1).
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    GradMatrix g(2, 6);
    for (int i = 0; i < 2; ++i) {
      for (int64_t q = 0; q < 6; ++q) g.Row(i)[q] = rng.Normal(0.0f, 1.0f);
    }
    auto agg = core::MakeAggregator("pcgrad").value();
    auto r = RunAgg(*agg, g, {}, trial);
    EXPECT_GE(Dot(r.shared_grad, g.RowVector(0)), -1e-4);
    EXPECT_GE(Dot(r.shared_grad, g.RowVector(1)), -1e-4);
  }
}

// --- MGDA-specific -----------------------------------------------------------

TEST(MgdaTest, OpposedGradientsNearZeroDirection) {
  // Exactly opposed equal-norm gradients: min-norm point is the origin.
  GradMatrix g = MakeGrads({{1, 0}, {-1, 0}});
  auto agg = core::MakeAggregator("mgda").value();
  auto r = RunAgg(*agg, g);
  EXPECT_NEAR(Norm(r.shared_grad), 0.0, 1e-3);
}

TEST(MgdaTest, CommonDescentDirection) {
  // MGDA's direction must not increase any task loss: dot(d, g_k) >= 0.
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    GradMatrix g(3, 5);
    for (int i = 0; i < 3; ++i) {
      for (int64_t q = 0; q < 5; ++q) g.Row(i)[q] = rng.Normal(0.0f, 1.0f);
    }
    auto agg = core::MakeAggregator("mgda").value();
    auto r = RunAgg(*agg, g);
    for (int i = 0; i < 3; ++i) {
      EXPECT_GE(Dot(r.shared_grad, g.RowVector(i)), -1e-3);
    }
  }
}

// --- CAGrad ---------------------------------------------------------------------

TEST(CaGradTest, CZeroReducesToAverage) {
  core::AggregatorOptions opts;
  opts.cagrad.c = 0.0f;
  auto agg = core::MakeAggregator("cagrad", opts).value();
  GradMatrix g = MakeGrads({{1, 0}, {0, 1}});
  auto r = RunAgg(*agg, g);
  // With c=0 the update is g0 * K = sum of gradients.
  EXPECT_NEAR(r.shared_grad[0], 1.0f, 1e-4);
  EXPECT_NEAR(r.shared_grad[1], 1.0f, 1e-4);
}

TEST(CaGradTest, WorstTaskImprovementNotNegative) {
  // CAGrad direction keeps min_k <d, g_k> at least as good as it is for the
  // plain average direction (that is its objective).
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    GradMatrix g(3, 6);
    for (int i = 0; i < 3; ++i) {
      for (int64_t q = 0; q < 6; ++q) g.Row(i)[q] = rng.Normal(0.0f, 1.0f);
    }
    auto agg = core::MakeAggregator("cagrad").value();
    auto r = RunAgg(*agg, g);
    auto avg = g.SumRows();
    for (auto& v : avg) v /= 3.0f;
    double min_ca = 1e30, min_avg = 1e30;
    for (int i = 0; i < 3; ++i) {
      min_ca = std::min(min_ca, Dot(r.shared_grad, g.RowVector(i)) /
                                    std::max(1e-9, Norm(r.shared_grad)));
      min_avg = std::min(min_avg, Dot(avg, g.RowVector(i)) /
                                      std::max(1e-9, Norm(avg)));
    }
    EXPECT_GE(min_ca, min_avg - 5e-2);
  }
}

// --- IMTL ------------------------------------------------------------------------

TEST(ImtlTest, EqualProjectionsProperty) {
  Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    GradMatrix g(3, 6);
    for (int i = 0; i < 3; ++i) {
      for (int64_t q = 0; q < 6; ++q) g.Row(i)[q] = rng.Normal(0.0f, 1.0f);
    }
    auto agg = core::MakeAggregator("imtl").value();
    auto r = RunAgg(*agg, g);
    // g^T u_k equal across k.
    std::vector<double> proj(3);
    for (int i = 0; i < 3; ++i) {
      proj[i] = Dot(r.shared_grad, g.RowVector(i)) / g.RowNorm(i);
    }
    EXPECT_NEAR(proj[0], proj[1], 1e-3 * (1.0 + std::fabs(proj[0])));
    EXPECT_NEAR(proj[0], proj[2], 1e-3 * (1.0 + std::fabs(proj[0])));
  }
}

TEST(ImtlTest, ColinearFallsBackToEqualWeights) {
  GradMatrix g = MakeGrads({{1, 0}, {2, 0}});  // colinear: singular system
  auto agg = core::MakeAggregator("imtl").value();
  auto r = RunAgg(*agg, g);
  EXPECT_NEAR(r.shared_grad[0], 3.0f, 1e-4);
}

// --- RLW / DWA --------------------------------------------------------------------

TEST(RlwTest, WeightsSumToKAndVary) {
  auto agg = core::MakeAggregator("rlw").value();
  GradMatrix g = MakeGrads({{1, 0}, {0, 1}, {1, 1}});
  auto r1 = RunAgg(*agg, g, {}, 1);
  auto r2 = RunAgg(*agg, g, {}, 2);
  double s = 0.0;
  for (float w : r1.task_weights) {
    EXPECT_GT(w, 0.0f);
    s += w;
  }
  EXPECT_NEAR(s, 3.0, 1e-5);
  // Different seeds give different weights.
  bool differs = false;
  for (int i = 0; i < 3; ++i) {
    if (std::fabs(r1.task_weights[i] - r2.task_weights[i]) > 1e-6) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(DwaTest, UpweightsStalledTask) {
  core::AggregatorOptions opts;
  auto agg = core::MakeAggregator("dwa", opts).value();
  GradMatrix g = MakeGrads({{1, 0}, {0, 1}});
  // Step 0/1: warmup with equal weights.
  RunAgg(*agg, g, {1.0f, 1.0f}, 1, 0);
  RunAgg(*agg, g, {0.5f, 1.0f}, 1, 1);  // task 0 halves, task 1 stalls
  auto r = RunAgg(*agg, g, {0.4f, 1.0f}, 1, 2);
  // Task 1's loss ratio (1.0) > task 0's (0.5): task 1 gets more weight.
  EXPECT_GT(r.task_weights[1], r.task_weights[0]);
  const double sum = r.task_weights[0] + r.task_weights[1];
  EXPECT_NEAR(sum, 2.0, 1e-5);
}

TEST(DwaTest, FirstStepsEqualWeights) {
  auto agg = core::MakeAggregator("dwa").value();
  GradMatrix g = MakeGrads({{1, 0}, {0, 1}});
  auto r = RunAgg(*agg, g, {2.0f, 1.0f}, 1, 0);
  EXPECT_FLOAT_EQ(r.task_weights[0], 1.0f);
  EXPECT_FLOAT_EQ(r.task_weights[1], 1.0f);
}

// --- Nash-MTL ------------------------------------------------------------------------

TEST(NashMtlTest, SolvesBargainingFixedPoint) {
  // Orthogonal unit gradients: GG^T = I, so α = 1/α ⇒ α_i = 1; after the
  // sum-to-K normalization weights are all 1.
  GradMatrix g = MakeGrads({{1, 0}, {0, 1}});
  auto agg = core::MakeAggregator("nashmtl").value();
  auto r = RunAgg(*agg, g);
  EXPECT_NEAR(r.task_weights[0], 1.0f, 1e-2);
  EXPECT_NEAR(r.task_weights[1], 1.0f, 1e-2);
}

TEST(NashMtlTest, SmallerGradientGetsLargerWeight) {
  // Nash bargaining is scale-invariant-ish: tasks with small gradients get
  // upweighted (α_i ~ 1/(Gα)_i).
  GradMatrix g = MakeGrads({{10, 0}, {0, 0.1f}});
  auto agg = core::MakeAggregator("nashmtl").value();
  auto r = RunAgg(*agg, g);
  EXPECT_GT(r.task_weights[1], r.task_weights[0]);
}

// --- GradDrop ---------------------------------------------------------------------------

TEST(GradDropTest, PureSignCoordinatesPassThrough) {
  // All tasks agree in sign on every coordinate -> mask keeps everything.
  GradMatrix g = MakeGrads({{1, -1}, {2, -2}});
  auto agg = core::MakeAggregator("graddrop").value();
  auto r = RunAgg(*agg, g);
  EXPECT_FLOAT_EQ(r.shared_grad[0], 3.0f);
  EXPECT_FLOAT_EQ(r.shared_grad[1], -3.0f);
}

TEST(GradDropTest, MaskedOutputKeepsOneSignPerCoordinate) {
  Rng rng(31);
  GradMatrix g(4, 32);
  for (int i = 0; i < 4; ++i) {
    for (int64_t q = 0; q < 32; ++q) g.Row(i)[q] = rng.Normal(0.0f, 1.0f);
  }
  auto agg = core::MakeAggregator("graddrop").value();
  auto r = RunAgg(*agg, g);
  for (int64_t q = 0; q < 32; ++q) {
    double pos = 0.0, neg = 0.0;
    for (int i = 0; i < 4; ++i) {
      const float v = g.Row(i)[q];
      if (v > 0) pos += v;
      if (v < 0) neg += v;
    }
    // Output is either the positive or the negative part, never a blend.
    EXPECT_TRUE(std::fabs(r.shared_grad[q] - pos) < 1e-5 ||
                std::fabs(r.shared_grad[q] - neg) < 1e-5);
  }
}

}  // namespace
}  // namespace mocograd
