#include "core/aligned_mtl.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/registry.h"

namespace mocograd {
namespace {

using core::AggregationContext;
using core::AlignedMtl;
using core::GradMatrix;

GradMatrix MakeGrads(const std::vector<std::vector<float>>& rows) {
  GradMatrix g(static_cast<int>(rows.size()),
               static_cast<int64_t>(rows[0].size()));
  for (size_t i = 0; i < rows.size(); ++i) {
    g.SetRow(static_cast<int>(i), rows[i]);
  }
  return g;
}

core::AggregationResult RunAgg(core::GradientAggregator& agg,
                               const GradMatrix& g) {
  std::vector<float> losses(g.num_tasks(), 1.0f);
  Rng rng(1);
  AggregationContext ctx;
  ctx.task_grads = &g;
  ctx.losses = &losses;
  ctx.rng = &rng;
  return agg.Aggregate(ctx);
}

TEST(AlignedMtlTest, OrthonormalGradientsAreFixedPoint) {
  // Already perfectly conditioned (σ identical): Ĝ = G, update = sum.
  AlignedMtl agg;
  GradMatrix g = MakeGrads({{1, 0}, {0, 1}});
  auto r = RunAgg(agg, g);
  EXPECT_NEAR(r.shared_grad[0], 1.0f, 1e-5);
  EXPECT_NEAR(r.shared_grad[1], 1.0f, 1e-5);
}

TEST(AlignedMtlTest, WhiteningEqualizesComponentScales) {
  // Orthogonal but badly scaled gradients: whitening makes both components
  // contribute at the σ_min scale.
  AlignedMtl agg;
  GradMatrix g = MakeGrads({{10, 0}, {0, 0.5f}});
  auto r = RunAgg(agg, g);
  EXPECT_NEAR(std::fabs(r.shared_grad[0]), 0.5f, 1e-4);
  EXPECT_NEAR(std::fabs(r.shared_grad[1]), 0.5f, 1e-4);
}

TEST(AlignedMtlTest, CommonDescentProperty) {
  // The aligned update must not increase any task's loss.
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    GradMatrix g(3, 6);
    for (int i = 0; i < 3; ++i) {
      for (int64_t q = 0; q < 6; ++q) g.Row(i)[q] = rng.Normal();
    }
    AlignedMtl agg;
    auto r = RunAgg(agg, g);
    for (int i = 0; i < 3; ++i) {
      double dot = 0.0;
      for (int64_t q = 0; q < 6; ++q) {
        dot += double(r.shared_grad[q]) * g.Row(i)[q];
      }
      EXPECT_GE(dot, -1e-4) << "task " << i << " trial " << trial;
    }
  }
}

TEST(AlignedMtlTest, DegenerateCases) {
  AlignedMtl agg;
  // Single task: identity.
  GradMatrix one = MakeGrads({{2, -1}});
  auto r1 = RunAgg(agg, one);
  EXPECT_FLOAT_EQ(r1.shared_grad[0], 2.0f);
  // All zero: zero output, no NaNs.
  GradMatrix zeros(2, 4);
  auto rz = RunAgg(agg, zeros);
  for (float v : rz.shared_grad) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_FLOAT_EQ(v, 0.0f);
  }
  // Colinear gradients (rank 1): finite output along the common direction.
  GradMatrix col = MakeGrads({{1, 0}, {2, 0}});
  auto rc = RunAgg(agg, col);
  EXPECT_TRUE(std::isfinite(rc.shared_grad[0]));
  EXPECT_NEAR(rc.shared_grad[1], 0.0f, 1e-6);
}

TEST(AlignedMtlTest, RegisteredAsExtension) {
  auto agg = core::MakeAggregator("alignedmtl");
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg.value()->name(), "alignedmtl");
  const auto& ext = core::ExtensionMethodNames();
  EXPECT_NE(std::find(ext.begin(), ext.end(), "alignedmtl"), ext.end());
}

}  // namespace
}  // namespace mocograd
