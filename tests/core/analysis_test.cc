#include "core/analysis.h"

#include <gtest/gtest.h>

namespace mocograd {
namespace {

using core::ConflictTracker;
using core::GradMatrix;

GradMatrix MakeGrads(const std::vector<std::vector<float>>& rows) {
  GradMatrix g(static_cast<int>(rows.size()),
               static_cast<int64_t>(rows[0].size()));
  for (size_t i = 0; i < rows.size(); ++i) {
    g.SetRow(static_cast<int>(i), rows[i]);
  }
  return g;
}

TEST(ConflictTrackerTest, CountsConflictsPerPair) {
  ConflictTracker t;
  // Step 1: tasks 0 and 1 conflict; 2 is orthogonal to both.
  t.Record(MakeGrads({{1, 0}, {-1, 0}, {0, 1}}));
  // Step 2: no conflicts.
  t.Record(MakeGrads({{1, 0}, {1, 0.5f}, {0, 1}}));
  EXPECT_EQ(t.num_steps(), 2);
  EXPECT_EQ(t.num_tasks(), 3);
  EXPECT_DOUBLE_EQ(t.ConflictFrequency(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(t.ConflictFrequency(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(t.ConflictFrequency(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(t.ConflictFrequency(0, 0), 0.0);
  EXPECT_EQ(t.MostConflictingPair(), (std::pair<int, int>{0, 1}));
}

TEST(ConflictTrackerTest, GcdTraceAndPairMeans) {
  ConflictTracker t;
  t.Record(MakeGrads({{1, 0}, {-1, 0}}));  // GCD = 2
  t.Record(MakeGrads({{1, 0}, {0, 1}}));   // GCD = 1
  ASSERT_EQ(t.gcd_trace().size(), 2u);
  EXPECT_NEAR(t.gcd_trace()[0], 2.0, 1e-9);
  EXPECT_NEAR(t.gcd_trace()[1], 1.0, 1e-9);
  EXPECT_NEAR(t.MeanPairGcd(0, 1), 1.5, 1e-9);
}

TEST(ConflictTrackerTest, SummaryAndReset) {
  ConflictTracker t;
  t.Record(MakeGrads({{1, 0}, {-1, 0}}));
  const std::string s = t.Summary();
  EXPECT_NE(s.find("1 steps, 2 tasks"), std::string::npos);
  EXPECT_NE(s.find("most conflicting pair: (0, 1)"), std::string::npos);
  t.Reset();
  EXPECT_EQ(t.num_steps(), 0);
  EXPECT_EQ(t.MostConflictingPair(), (std::pair<int, int>{-1, -1}));
  // After reset a different task count is accepted.
  t.Record(MakeGrads({{1}, {1}, {1}}));
  EXPECT_EQ(t.num_tasks(), 3);
}

TEST(ConflictTrackerTest, TaskCountChangeAborts) {
  ConflictTracker t;
  t.Record(MakeGrads({{1, 0}, {0, 1}}));
  EXPECT_DEATH(t.Record(MakeGrads({{1}, {1}, {1}})), "task count changed");
}

TEST(ConflictTrackerTest, QueriesBeforeRecordingAbort) {
  ConflictTracker t;
  EXPECT_DEATH(t.ConflictFrequency(0, 1), "nothing recorded");
}

}  // namespace
}  // namespace mocograd
