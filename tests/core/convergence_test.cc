// Empirical checks of the paper's theory section: Theorem 2 (monotone
// convergence of MoCoGrad-driven gradient descent in the convex case) and
// Corollary 1 (vanishing average regret with μ_t = μ/√t).

#include <gtest/gtest.h>

#include <cmath>

#include "core/mocograd.h"

namespace mocograd {
namespace {

using core::AggregationContext;
using core::GradMatrix;
using core::MoCoGrad;
using core::MoCoGradOptions;

// Two-task convex quadratic problem: L_k(θ) = ½‖θ − c_k‖² (L-smooth, L=1).
struct TwoTaskQuadratic {
  std::vector<float> c1, c2;

  double Loss1(const std::vector<float>& x) const {
    double s = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
      s += 0.5 * (x[i] - c1[i]) * (x[i] - c1[i]);
    }
    return s;
  }
  double Loss2(const std::vector<float>& x) const {
    double s = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
      s += 0.5 * (x[i] - c2[i]) * (x[i] - c2[i]);
    }
    return s;
  }
};

TEST(Theorem2Test, ConvexTwoTaskLossMonotoneAndConverges) {
  // Opposed anchors create persistent gradient conflict along x.
  TwoTaskQuadratic prob{{2.0f, 0.0f}, {-2.0f, 1.0f}};
  MoCoGradOptions opts;
  opts.lambda = 0.5f;
  MoCoGrad agg(opts);
  Rng rng(1);

  std::vector<float> theta = {5.0f, -4.0f};
  const float mu = 0.5f;  // μ ≤ 1/L with L = 1 per task (sum L = 2): safe

  const double initial_total = prob.Loss1(theta) + prob.Loss2(theta);
  double prev_total = initial_total;
  for (int t = 0; t < 300; ++t) {
    GradMatrix g(2, 2);
    for (int i = 0; i < 2; ++i) {
      g.Row(0)[i] = theta[i] - prob.c1[i];
      g.Row(1)[i] = theta[i] - prob.c2[i];
    }
    std::vector<float> losses = {static_cast<float>(prob.Loss1(theta)),
                                 static_cast<float>(prob.Loss2(theta))};
    AggregationContext ctx;
    ctx.task_grads = &g;
    ctx.losses = &losses;
    ctx.step = t;
    ctx.rng = &rng;
    auto r = agg.Aggregate(ctx);
    for (int i = 0; i < 2; ++i) theta[i] -= mu * 0.5f * r.shared_grad[i];

    const double total = prob.Loss1(theta) + prob.Loss2(theta);
    // Theorem 2 guarantees descent with exact momentum; with the EMA warming
    // up, transient wiggles are possible in the first steps, so monotonicity
    // is asserted once the momentum has converged.
    if (t >= 50) {
      EXPECT_LE(total, prev_total + 1e-5) << "step " << t;
    }
    prev_total = total;
  }
  EXPECT_LT(prev_total, initial_total);
  // Optimum of L1+L2 is the midpoint of the anchors.
  EXPECT_NEAR(theta[0], 0.0f, 0.05f);
  EXPECT_NEAR(theta[1], 0.5f, 0.05f);
}

TEST(Theorem2Test, EachLossConvergesToItsOptimalValue) {
  TwoTaskQuadratic prob{{1.0f, 0.0f}, {-1.0f, 0.0f}};
  MoCoGrad agg;
  Rng rng(2);
  std::vector<float> theta = {3.0f, 3.0f};
  for (int t = 0; t < 500; ++t) {
    GradMatrix g(2, 2);
    for (int i = 0; i < 2; ++i) {
      g.Row(0)[i] = theta[i] - prob.c1[i];
      g.Row(1)[i] = theta[i] - prob.c2[i];
    }
    std::vector<float> losses = {static_cast<float>(prob.Loss1(theta)),
                                 static_cast<float>(prob.Loss2(theta))};
    AggregationContext ctx;
    ctx.task_grads = &g;
    ctx.losses = &losses;
    ctx.step = t;
    ctx.rng = &rng;
    auto r = agg.Aggregate(ctx);
    for (int i = 0; i < 2; ++i) theta[i] -= 0.25f * r.shared_grad[i];
  }
  // θ* = (0, 0); each task's loss at θ* is 0.5.
  EXPECT_NEAR(prob.Loss1(theta), 0.5, 1e-2);
  EXPECT_NEAR(prob.Loss2(theta), 0.5, 1e-2);
}

TEST(Corollary1Test, AverageRegretVanishesWithSqrtTStepSize) {
  // Online convex setting: at step t the adversary presents
  // L^t(θ) = ½‖θ − c_t‖² with c_t bouncing between two conflicting anchors
  // (split across two tasks). Average regret R(T)/T must shrink as T grows
  // when μ_t = μ/√t.
  MoCoGradOptions opts;
  opts.lambda = 0.2f;

  auto run = [&](int total_steps) {
    MoCoGrad agg(opts);
    Rng rng(3);
    Rng noise(4);
    std::vector<float> theta = {2.0f, -2.0f};
    // Comparator θ* = time-average anchor = (0, 0); its per-step loss is
    // computable in closed form below.
    double regret = 0.0;
    for (int t = 1; t <= total_steps; ++t) {
      const float flip = (t % 2 == 0) ? 1.0f : -1.0f;
      std::vector<float> a1 = {flip * 1.0f + noise.Normal(0.0f, 0.1f),
                               0.5f + noise.Normal(0.0f, 0.1f)};
      std::vector<float> a2 = {-flip * 1.0f + noise.Normal(0.0f, 0.1f),
                               -0.5f + noise.Normal(0.0f, 0.1f)};
      GradMatrix g(2, 2);
      for (int i = 0; i < 2; ++i) {
        g.Row(0)[i] = theta[i] - a1[i];
        g.Row(1)[i] = theta[i] - a2[i];
      }
      auto loss_at = [&](const std::vector<float>& x) {
        double s = 0.0;
        for (int i = 0; i < 2; ++i) {
          s += 0.5 * (x[i] - a1[i]) * (x[i] - a1[i]) +
               0.5 * (x[i] - a2[i]) * (x[i] - a2[i]);
        }
        return s;
      };
      std::vector<float> losses = {0.0f, 0.0f};
      AggregationContext ctx;
      ctx.task_grads = &g;
      ctx.losses = &losses;
      ctx.step = t;
      ctx.rng = &rng;
      auto r = agg.Aggregate(ctx);
      regret += loss_at(theta) - loss_at({0.0f, 0.0f});
      const float mu_t = 0.4f / std::sqrt(static_cast<float>(t));
      for (int i = 0; i < 2; ++i) theta[i] -= mu_t * r.shared_grad[i];
    }
    return regret / total_steps;
  };

  const double avg_regret_small = run(100);
  const double avg_regret_large = run(4000);
  EXPECT_LT(avg_regret_large, avg_regret_small);
  EXPECT_LT(avg_regret_large, 0.2);
}

}  // namespace
}  // namespace mocograd
