// Tests for the extension baselines (GradNorm, Uncertainty Weighting) and
// the MoCoGrad ablation switches.

#include <gtest/gtest.h>

#include <cmath>

#include "core/mocograd.h"
#include "core/registry.h"

namespace mocograd {
namespace {

using core::AggregationContext;
using core::GradMatrix;

GradMatrix MakeGrads(const std::vector<std::vector<float>>& rows) {
  GradMatrix g(static_cast<int>(rows.size()),
               static_cast<int64_t>(rows[0].size()));
  for (size_t i = 0; i < rows.size(); ++i) {
    g.SetRow(static_cast<int>(i), rows[i]);
  }
  return g;
}

core::AggregationResult RunAgg(core::GradientAggregator& agg,
                               const GradMatrix& g, std::vector<float> losses,
                               int64_t step = 0, uint64_t seed = 1) {
  Rng rng(seed);
  AggregationContext ctx;
  ctx.task_grads = &g;
  ctx.losses = &losses;
  ctx.step = step;
  ctx.rng = &rng;
  return agg.Aggregate(ctx);
}

TEST(RegistryExtensionsTest, BuildsExtensionMethods) {
  for (const std::string& name : core::ExtensionMethodNames()) {
    auto agg = core::MakeAggregator(name);
    ASSERT_TRUE(agg.ok()) << name;
    EXPECT_EQ(agg.value()->name(), name);
  }
}

TEST(GradNormTest, UpweightsSlowTask) {
  // Task 0's loss stays flat while task 1's halves: GradNorm must grow
  // task 0's weight relative to task 1's.
  auto agg = core::MakeAggregator("gradnorm").value();
  GradMatrix g = MakeGrads({{1, 0}, {0, 1}});
  RunAgg(*agg, g, {1.0f, 1.0f}, 0);
  core::AggregationResult r;
  for (int s = 1; s <= 20; ++s) {
    r = RunAgg(*agg, g, {1.0f, 1.0f / (1 + 0.2f * s)}, s);
  }
  EXPECT_GT(r.task_weights[0], r.task_weights[1]);
  const double sum = r.task_weights[0] + r.task_weights[1];
  EXPECT_NEAR(sum, 2.0, 1e-4);
}

TEST(GradNormTest, EqualRatesStayBalanced) {
  auto agg = core::MakeAggregator("gradnorm").value();
  GradMatrix g = MakeGrads({{1, 0}, {0, 1}});
  core::AggregationResult r;
  for (int s = 0; s < 10; ++s) {
    r = RunAgg(*agg, g, {0.9f, 0.9f}, s);
  }
  EXPECT_NEAR(r.task_weights[0], r.task_weights[1], 1e-4);
}

TEST(UncertaintyWeightingTest, HighLossTaskGetsLowerWeightAtEquilibrium) {
  // UW's stationary point sets exp(-s_k) = 1/L_k, so the noisier (higher
  // loss) task ends with the smaller weight.
  auto agg = core::MakeAggregator("uw").value();
  GradMatrix g = MakeGrads({{1, 0}, {0, 1}});
  core::AggregationResult r;
  for (int s = 0; s < 400; ++s) {
    r = RunAgg(*agg, g, {4.0f, 1.0f}, s);
  }
  EXPECT_LT(r.task_weights[0], r.task_weights[1]);
  EXPECT_NEAR(r.task_weights[0] + r.task_weights[1], 2.0, 1e-4);
  // Ratio approaches L_1/L_0 = 1/4.
  EXPECT_NEAR(r.task_weights[0] / r.task_weights[1], 0.25, 0.05);
}

TEST(MoCoGradAblationTest, RawGradientVariantIgnoresMomentum) {
  // Build momentum pointing +y for task 1, then feed a conflicting raw
  // gradient pointing -x. With use_raw_gradient the calibration must follow
  // g_1 (-x), not m_1 (+y).
  core::MoCoGradOptions opts;
  opts.lambda = 1.0f;
  opts.beta1 = 0.5f;
  opts.use_raw_gradient = true;
  core::MoCoGrad agg(opts);
  GradMatrix warm = MakeGrads({{1, 0}, {0, 1}});
  RunAgg(agg, warm, {1, 1}, 0);
  GradMatrix g = MakeGrads({{1, 0}, {-1, 0}});
  auto r = RunAgg(agg, g, {1, 1}, 1);
  // ĝ0 = g0 + 1.0*g1 = 0; ĝ1 = g1 + 1.0*g0 = 0 ⇒ sum = 0 (pure raw mode).
  EXPECT_NEAR(r.shared_grad[0], 0.0f, 1e-5);
  EXPECT_NEAR(r.shared_grad[1], 0.0f, 1e-5);
}

TEST(MoCoGradAblationTest, AccumulateAllBreaksTheorem1Bound) {
  // With K=4 opposed gradients, the accumulate-all variant can exceed the
  // single-partner variant's norm (and the Theorem 1 bound no longer
  // applies); the faithful variant stays within K(1+λ)G.
  core::MoCoGradOptions faithful;
  faithful.lambda = 1.0f;
  core::MoCoGradOptions accumulate = faithful;
  accumulate.accumulate_all_conflicts = true;

  GradMatrix g = MakeGrads({{1, 0, 0},
                            {-0.9f, 0.1f, 0},
                            {-0.9f, -0.1f, 0.1f},
                            {-0.9f, 0, -0.1f}});
  double gmax = 0;
  for (int i = 0; i < 4; ++i) gmax = std::max(gmax, g.RowNorm(i));

  core::MoCoGrad a(faithful);
  auto ra = RunAgg(a, g, {1, 1, 1, 1});
  double na = 0;
  for (float v : ra.shared_grad) na += double(v) * v;
  EXPECT_LE(std::sqrt(na), 4 * (1 + 1.0) * gmax + 1e-4);

  core::MoCoGrad b(accumulate);
  auto rb = RunAgg(b, g, {1, 1, 1, 1});
  EXPECT_EQ(ra.num_conflicts, rb.num_conflicts);
}

TEST(MoCoGradAblationTest, VariantsAgreeWithoutConflicts) {
  core::MoCoGradOptions opts;
  opts.accumulate_all_conflicts = true;
  core::MoCoGrad acc(opts);
  core::MoCoGrad plain;
  GradMatrix g = MakeGrads({{1, 0}, {0, 1}});
  auto ra = RunAgg(acc, g, {1, 1});
  auto rb = RunAgg(plain, g, {1, 1});
  for (size_t i = 0; i < ra.shared_grad.size(); ++i) {
    EXPECT_FLOAT_EQ(ra.shared_grad[i], rb.shared_grad[i]);
  }
}

}  // namespace
}  // namespace mocograd
