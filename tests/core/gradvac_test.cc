#include "core/gradvac.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mocograd {
namespace {

using core::AggregationContext;
using core::GradMatrix;
using core::GradVac;
using core::GradVacOptions;

GradMatrix MakeGrads(const std::vector<std::vector<float>>& rows) {
  GradMatrix g(static_cast<int>(rows.size()),
               static_cast<int64_t>(rows[0].size()));
  for (size_t i = 0; i < rows.size(); ++i) {
    g.SetRow(static_cast<int>(i), rows[i]);
  }
  return g;
}

core::AggregationResult Step(GradVac& agg, const GradMatrix& g,
                             uint64_t seed = 1) {
  std::vector<float> losses(g.num_tasks(), 1.0f);
  Rng rng(seed);
  AggregationContext ctx;
  ctx.task_grads = &g;
  ctx.losses = &losses;
  ctx.rng = &rng;
  return agg.Aggregate(ctx);
}

TEST(GradVacTest, InitialTargetZeroActsLikePcGradTrigger) {
  // With target cosine 0 (initial EMA), only negative-cosine pairs are
  // vaccinated — same trigger as PCGrad.
  GradVac agg;
  GradMatrix g = MakeGrads({{1, 0}, {0, 1}});  // orthogonal: cos = 0
  auto r = Step(agg, g);
  EXPECT_EQ(r.num_conflicts, 0);
  EXPECT_FLOAT_EQ(r.shared_grad[0], 1.0f);
  EXPECT_FLOAT_EQ(r.shared_grad[1], 1.0f);
}

TEST(GradVacTest, Eq7AlignsToTargetCosine) {
  // Two-task case with a conflict: after vaccination with target cos γ, the
  // manipulated g_0' must satisfy cos(g_0', g_1) == γ (here γ = 0, the
  // initial EMA target), i.e. reduce exactly to PCGrad's projection.
  GradVac agg;
  GradMatrix g = MakeGrads({{1, 0}, {-0.6f, 0.8f}});
  auto r = Step(agg, g);
  EXPECT_EQ(r.num_conflicts, 2);
  // g0' = g0 + a*g1 with cos(g0', g1) = 0; g1' symmetric.
  // Therefore both manipulated gradients are orthogonal to their partner:
  // verify via reconstruction: sum - g1_contribution...
  // Direct check: compute g0' from Eq. (7) with cos γ = 0:
  // α = ||g0|| (0*sinφ − cosφ*1)/(||g1||*1) = −||g0|| cosφ / ||g1||.
  const double cos_phi = -0.6;  // unit vectors here
  const double alpha = -1.0 * cos_phi / 1.0;
  const double g0p_x = 1.0 + alpha * -0.6;
  const double g0p_y = alpha * 0.8;
  // cos(g0', g1) == 0:
  EXPECT_NEAR(g0p_x * -0.6 + g0p_y * 0.8, 0.0, 1e-9);
  // And the aggregate contains g0' + g1' (g1' computed symmetrically).
  const double g1p_x = -0.6 + alpha * 1.0;
  const double g1p_y = 0.8;
  EXPECT_NEAR(r.shared_grad[0], g0p_x + g1p_x, 1e-5);
  EXPECT_NEAR(r.shared_grad[1], g0p_y + g1p_y, 1e-5);
}

TEST(GradVacTest, EmaTargetsAdaptTowardObservedCosine) {
  // Feed consistently positively-correlated gradients: the EMA target
  // rises, so a later mildly-positive pair can still trigger vaccination.
  GradVacOptions opts;
  opts.ema_beta = 0.5f;  // fast adaptation for the test
  GradVac agg(opts);
  GradMatrix aligned = MakeGrads({{1, 0}, {0.9f, 0.4359f}});  // cos ≈ 0.9
  for (int i = 0; i < 6; ++i) Step(agg, aligned);
  // Now a pair with cos ≈ 0.3 is below the adapted target -> vaccinated.
  GradMatrix mild = MakeGrads({{1, 0}, {0.3f, 0.954f}});
  auto r = Step(agg, mild);
  EXPECT_GT(r.num_conflicts, 0);
}

TEST(GradVacTest, ZeroGradientRowsAreSkipped) {
  GradVac agg;
  GradMatrix g = MakeGrads({{0, 0}, {1, 1}});
  auto r = Step(agg, g);
  for (float v : r.shared_grad) EXPECT_TRUE(std::isfinite(v));
  EXPECT_FLOAT_EQ(r.shared_grad[0], 1.0f);
}

TEST(GradVacTest, TaskCountChangeAborts) {
  GradVac agg;
  GradMatrix g2 = MakeGrads({{1, 0}, {0, 1}});
  Step(agg, g2);
  GradMatrix g3 = MakeGrads({{1, 0}, {0, 1}, {1, 1}});
  EXPECT_DEATH(Step(agg, g3), "task count changed");
}

}  // namespace
}  // namespace mocograd
