// Deeper per-method properties: Nash-MTL's bargaining fixed point, CAGrad's
// c parameter, IMTL weight structure, GradDrop purity statistics, and the
// trainer's gradient clipping.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/registry.h"
#include "mtl/hps.h"
#include "mtl/trainer.h"
#include "optim/optimizer.h"

namespace mocograd {
namespace {

using core::AggregationContext;
using core::GradMatrix;

GradMatrix RandomGrads(int k, int64_t p, uint64_t seed) {
  Rng rng(seed);
  GradMatrix g(k, p);
  for (int i = 0; i < k; ++i) {
    for (int64_t q = 0; q < p; ++q) g.Row(i)[q] = rng.Normal();
  }
  return g;
}

core::AggregationResult RunAgg(core::GradientAggregator& agg,
                               const GradMatrix& g, uint64_t seed = 1) {
  std::vector<float> losses(g.num_tasks(), 1.0f);
  Rng rng(seed);
  AggregationContext ctx;
  ctx.task_grads = &g;
  ctx.losses = &losses;
  ctx.rng = &rng;
  return agg.Aggregate(ctx);
}

TEST(NashMtlDetailTest, BargainingStationarityUpToScale) {
  // The Nash solution satisfies α_i (GGᵀα)_i = const across i (the raw
  // fixed point is α_i (Mα)_i = 1; the post-hoc sum normalization scales
  // that constant but keeps it uniform). The fixed point is only feasible
  // when Mα stays positive — the damped iteration clamps otherwise — so
  // the check applies to feasible instances; infeasible ones still must
  // produce positive finite weights.
  int feasible = 0;
  for (uint64_t trial = 0; trial < 20; ++trial) {
    GradMatrix g = RandomGrads(4 + trial % 3, 10, 200 + trial);
    auto agg = core::MakeAggregator("nashmtl").value();
    auto r = RunAgg(*agg, g, trial);
    const int k = g.num_tasks();
    const auto gram = g.Gram();
    std::vector<double> products(k, 0.0);
    bool all_positive = true;
    for (int i = 0; i < k; ++i) {
      double ma = 0.0;
      for (int j = 0; j < k; ++j) ma += gram[i][j] * r.task_weights[j];
      products[i] = r.task_weights[i] * ma;
      if (products[i] <= 0.0) all_positive = false;
      EXPECT_GT(r.task_weights[i], 0.0f) << "trial " << trial;
      EXPECT_TRUE(std::isfinite(r.task_weights[i]));
    }
    if (!all_positive) continue;
    const double mx = *std::max_element(products.begin(), products.end());
    const double mn = *std::min_element(products.begin(), products.end());
    if (mx / mn < 1.5) ++feasible;  // near-uniform bargaining products
  }
  // A majority of random instances are feasible and near the fixed point.
  EXPECT_GE(feasible, 8);
}

TEST(CaGradDetailTest, LargerCMovesFurtherFromAverage) {
  // c controls how far CAGrad may deviate from the plain average toward the
  // worst task: the angle to the EW direction must grow with c.
  GradMatrix g = RandomGrads(3, 8, 33);
  auto ew_dir = g.SumRows();
  auto cosine_to_ew = [&](float c) {
    core::AggregatorOptions opts;
    opts.cagrad.c = c;
    auto agg = core::MakeAggregator("cagrad", opts).value();
    auto r = RunAgg(*agg, g);
    double dot = 0, na = 0, nb = 0;
    for (size_t i = 0; i < ew_dir.size(); ++i) {
      dot += double(r.shared_grad[i]) * ew_dir[i];
      na += double(r.shared_grad[i]) * r.shared_grad[i];
      nb += double(ew_dir[i]) * ew_dir[i];
    }
    return dot / std::sqrt(na * nb);
  };
  const double cos_small = cosine_to_ew(0.1f);
  const double cos_large = cosine_to_ew(0.8f);
  EXPECT_GE(cos_small, cos_large - 1e-6);
  EXPECT_NEAR(cosine_to_ew(0.0f), 1.0, 1e-6);  // c=0 is exactly EW/average
}

TEST(ImtlDetailTest, WeightsSumToK) {
  for (uint64_t trial = 0; trial < 10; ++trial) {
    GradMatrix g = RandomGrads(3 + trial % 4, 9, 300 + trial);
    auto agg = core::MakeAggregator("imtl").value();
    auto r = RunAgg(*agg, g);
    // IMTL-G's α sums to 1 before the K rescale; verify via projections:
    // combined gradient has equal projections (already covered) and finite
    // output here.
    for (float v : r.shared_grad) ASSERT_TRUE(std::isfinite(v));
  }
}

TEST(GradDropDetailTest, KeepProbabilityTracksPurity) {
  // For a coordinate where all tasks agree in sign, purity is 1 and the
  // positive side is always kept; with exact cancellation purity is 0.5 and
  // both sides are kept about equally often across seeds.
  GradMatrix g(2, 2);
  g.Row(0)[0] = 1.0f;   // coordinate 0: agreement (+1, +2)
  g.Row(1)[0] = 2.0f;
  g.Row(0)[1] = 1.0f;   // coordinate 1: exact cancellation (+1, -1)
  g.Row(1)[1] = -1.0f;
  auto agg = core::MakeAggregator("graddrop").value();
  int positive_kept = 0;
  const int trials = 400;
  for (int s = 0; s < trials; ++s) {
    auto r = RunAgg(*agg, g, 1000 + s);
    EXPECT_FLOAT_EQ(r.shared_grad[0], 3.0f);  // agreement always passes
    if (r.shared_grad[1] > 0) ++positive_kept;
  }
  EXPECT_GT(positive_kept, trials * 0.4);
  EXPECT_LT(positive_kept, trials * 0.6);
}

TEST(TrainerClippingTest, GlobalNormClipBoundsTheUpdate) {
  Rng rng(71);
  mtl::HpsConfig cfg;
  cfg.input_dim = 4;
  cfg.shared_dims = {8};
  cfg.task_output_dims = {1, 1};
  mtl::HpsModel model(cfg, rng);
  // Huge targets force huge gradients.
  data::Batch b;
  b.x = Tensor::Randn({8, 4}, rng);
  b.y = Tensor::Full({8, 1}, 1e4f);
  core::EqualWeight agg;
  optim::Sgd opt(model.Parameters(), 1.0f);
  mtl::MtlTrainer trainer(&model, &agg, &opt,
                          {data::TaskKind::kRegression,
                           data::TaskKind::kRegression},
                          3);
  trainer.set_max_grad_norm(1.0f);

  std::vector<Tensor> before;
  for (auto* p : model.Parameters()) before.push_back(p->value().Clone());
  trainer.Step({b, b});
  // With lr=1 and global grad norm clipped to 1, the total parameter
  // movement is at most 1 (+ tiny numerical slack).
  double moved = 0.0;
  auto params = model.Parameters();
  for (size_t i = 0; i < params.size(); ++i) {
    for (int64_t j = 0; j < params[i]->NumElements(); ++j) {
      const double d = params[i]->value()[j] - before[i][j];
      moved += d * d;
    }
  }
  EXPECT_LE(std::sqrt(moved), 1.0 + 1e-4);
  EXPECT_GT(std::sqrt(moved), 0.5);  // it did move, up to the clip
}

TEST(TrainerClippingTest, NoClipBelowThreshold) {
  Rng rng(73);
  mtl::HpsConfig cfg;
  cfg.input_dim = 3;
  cfg.shared_dims = {4};
  cfg.task_output_dims = {1};
  mtl::HpsModel a(cfg, rng);
  Rng rng2(73);
  mtl::HpsModel b(cfg, rng2);

  data::Batch batch;
  Rng drng(5);
  batch.x = Tensor::Randn({4, 3}, drng);
  batch.y = Tensor::Randn({4, 1}, drng);

  core::EqualWeight agg1, agg2;
  optim::Sgd oa(a.Parameters(), 0.01f), ob(b.Parameters(), 0.01f);
  mtl::MtlTrainer ta(&a, &agg1, &oa, {data::TaskKind::kRegression}, 3);
  mtl::MtlTrainer tb(&b, &agg2, &ob, {data::TaskKind::kRegression}, 3);
  tb.set_max_grad_norm(1e6f);  // threshold far above actual norms
  ta.Step({batch});
  tb.Step({batch});
  auto pa = a.Parameters(), pb = b.Parameters();
  for (size_t i = 0; i < pa.size(); ++i) {
    for (int64_t j = 0; j < pa[i]->NumElements(); ++j) {
      EXPECT_FLOAT_EQ(pa[i]->value()[j], pb[i]->value()[j]);
    }
  }
}

}  // namespace
}  // namespace mocograd
