#include "core/mocograd.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/conflict.h"

namespace mocograd {
namespace {

using core::AggregationContext;
using core::GradMatrix;
using core::MoCoGrad;
using core::MoCoGradOptions;

GradMatrix MakeGrads(const std::vector<std::vector<float>>& rows) {
  GradMatrix g(static_cast<int>(rows.size()),
               static_cast<int64_t>(rows[0].size()));
  for (size_t i = 0; i < rows.size(); ++i) {
    g.SetRow(static_cast<int>(i), rows[i]);
  }
  return g;
}

core::AggregationResult Step(MoCoGrad& agg, const GradMatrix& g,
                             Rng& rng, int64_t step = 0) {
  std::vector<float> losses(g.num_tasks(), 1.0f);
  AggregationContext ctx;
  ctx.task_grads = &g;
  ctx.losses = &losses;
  ctx.step = step;
  ctx.rng = &rng;
  return agg.Aggregate(ctx);
}

double Dot(const std::vector<float>& a, const std::vector<float>& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += double(a[i]) * b[i];
  return s;
}

double Norm(const std::vector<float>& a) { return std::sqrt(Dot(a, a)); }

TEST(MoCoGradTest, NonConflictingGradientsUntouched) {
  MoCoGrad agg;
  Rng rng(1);
  GradMatrix g = MakeGrads({{1, 0}, {0, 1}});
  auto r = Step(agg, g, rng);
  EXPECT_EQ(r.num_conflicts, 0);
  EXPECT_FLOAT_EQ(r.shared_grad[0], 1.0f);
  EXPECT_FLOAT_EQ(r.shared_grad[1], 1.0f);
}

TEST(MoCoGradTest, ColdStartFallsBackToRawGradient) {
  // First step, conflicting pair, momenta are zero: Eq. (8) must fall back
  // to λ·g_j. With g1=(1,0), g2=(-1,0.1), λ=0.5:
  // ĝ1 = g1 + 0.5*g2 ; ĝ2 = g2 + 0.5*g1 ; sum = 1.5*(g1+g2).
  MoCoGradOptions opts;
  opts.lambda = 0.5f;
  MoCoGrad agg(opts);
  Rng rng(2);
  GradMatrix g = MakeGrads({{1, 0}, {-1, 0.1f}});
  auto r = Step(agg, g, rng);
  EXPECT_EQ(r.num_conflicts, 2);
  EXPECT_NEAR(r.shared_grad[0], 1.5f * 0.0f, 1e-5);
  EXPECT_NEAR(r.shared_grad[1], 1.5f * 0.1f, 1e-5);
}

TEST(MoCoGradTest, MomentumFollowsEq9) {
  MoCoGradOptions opts;
  opts.beta1 = 0.9f;
  MoCoGrad agg(opts);
  Rng rng(3);
  GradMatrix g = MakeGrads({{1, 0}, {0, 1}});
  Step(agg, g, rng, 0);
  // m = 0.9*0 + 0.1*g
  EXPECT_NEAR(agg.momentum(0)[0], 0.1f, 1e-6);
  EXPECT_NEAR(agg.momentum(1)[1], 0.1f, 1e-6);
  Step(agg, g, rng, 1);
  // m = 0.9*0.1 + 0.1*1 = 0.19
  EXPECT_NEAR(agg.momentum(0)[0], 0.19f, 1e-6);
}

TEST(MoCoGradTest, CalibrationUsesMomentumNotCurrentGradient) {
  // Warm up momentum of task 1 along +y, then present a conflicting current
  // gradient for task 1 along -x. The calibration applied to task 0 must
  // point along the *momentum* (+y-ish), not along the raw g_1.
  MoCoGradOptions opts;
  opts.lambda = 1.0f;
  opts.beta1 = 0.5f;
  MoCoGrad agg(opts);
  Rng rng(4);
  // Step 1: no conflict; builds momenta. g0=+x, g1=+y.
  GradMatrix warm = MakeGrads({{1, 0}, {0, 1}});
  Step(agg, warm, rng, 0);
  // Step 2: g0=+x, g1=-x (conflict with g0). m_1 before this step = (0, .5).
  GradMatrix g = MakeGrads({{1, 0}, {-1, 0}});
  auto r = Step(agg, g, rng, 1);
  EXPECT_GE(r.num_conflicts, 1);
  // ĝ0 = g0 + 1.0*(||g1||/||m1||)*m1 = (1,0) + (0,1)*2*0.5 = (1, 1).
  // ĝ1: conflict detected vs g0; m_0 = (0.5, 0) -> ĝ1 = (-1,0)+(1,0)=(0,0).
  EXPECT_NEAR(r.shared_grad[0], 1.0f, 1e-5);
  EXPECT_NEAR(r.shared_grad[1], 1.0f, 1e-5);
}

TEST(MoCoGradTest, Theorem1NormBound) {
  // ‖ĝ‖ ≤ K(1+λ)G where G bounds the task-gradient norms (Theorem 1).
  Rng data_rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const int k = 2 + trial % 5;
    const int64_t p = 12;
    MoCoGradOptions opts;
    opts.lambda = 0.05f + 0.9f * (trial % 10) / 10.0f;
    MoCoGrad agg(opts);
    Rng rng(trial);
    GradMatrix g(k, p);
    double gmax = 0.0;
    for (int i = 0; i < k; ++i) {
      for (int64_t q = 0; q < p; ++q) {
        g.Row(i)[q] = data_rng.Normal(0.0f, 2.0f);
      }
      gmax = std::max(gmax, g.RowNorm(i));
    }
    // Run several steps so momenta are non-trivial.
    for (int s = 0; s < 5; ++s) {
      auto r = Step(agg, g, rng, s);
      EXPECT_LE(Norm(r.shared_grad),
                k * (1.0 + opts.lambda) * gmax + 1e-4)
          << "k=" << k << " lambda=" << opts.lambda;
      EXPECT_LE(Norm(r.shared_grad), 2.0 * k * gmax + 1e-4);
    }
  }
}

TEST(MoCoGradTest, CalibrationPullsConflictingPairCloser) {
  // The manipulated gradients must have a larger cosine (smaller GCD) than
  // the originals when a conflict is calibrated.
  MoCoGradOptions opts;
  opts.lambda = 0.5f;
  MoCoGrad agg(opts);
  Rng rng(6);
  // Build momentum roughly aligned with each task's gradient first.
  GradMatrix warm = MakeGrads({{1.0f, 0.3f}, {-0.8f, 0.6f}});
  Step(agg, warm, rng, 0);
  GradMatrix g = MakeGrads({{1.0f, 0.3f}, {-0.8f, 0.6f}});
  const double gcd_before =
      core::Gcd(g.Row(0), g.Row(1), g.dim());
  ASSERT_GT(gcd_before, 1.0);

  // Manually compute ĝ_0 and ĝ_1 via one more aggregate and compare the
  // pairwise geometry of the *summed* output with the EW sum: MoCoGrad's sum
  // must align better with both tasks than the EW sum does with its worse
  // task.
  auto r = Step(agg, g, rng, 1);
  auto ew = g.SumRows();
  double worst_moco = 1e9, worst_ew = 1e9;
  for (int i = 0; i < 2; ++i) {
    const auto gi = g.RowVector(i);
    worst_moco = std::min(
        worst_moco, Dot(r.shared_grad, gi) / (Norm(r.shared_grad) * Norm(gi)));
    worst_ew = std::min(worst_ew, Dot(ew, gi) / (Norm(ew) * Norm(gi)));
  }
  EXPECT_GE(worst_moco, worst_ew - 1e-6);
}

TEST(MoCoGradTest, ResetClearsMomenta) {
  MoCoGrad agg;
  Rng rng(7);
  GradMatrix g = MakeGrads({{1, 0}, {0, 1}});
  Step(agg, g, rng, 0);
  EXPECT_GT(std::fabs(agg.momentum(0)[0]), 0.0f);
  agg.Reset();
  GradMatrix g3 = MakeGrads({{1, 0, 0}, {0, 1, 0}, {0, 0, 1}});
  // After reset a different task count must be accepted.
  auto r = Step(agg, g3, rng, 0);
  EXPECT_EQ(r.shared_grad.size(), 3u);
}

TEST(MoCoGradTest, LambdaValidation) {
  EXPECT_DEATH(MoCoGrad(MoCoGradOptions{.lambda = 0.0f}), "lambda");
  EXPECT_DEATH(MoCoGrad(MoCoGradOptions{.lambda = 1.5f}), "lambda");
  EXPECT_DEATH((MoCoGrad(MoCoGradOptions{.lambda = 0.5f, .beta1 = 1.0f})),
               "");
}

TEST(MoCoGradTest, DeterministicGivenSeed) {
  MoCoGradOptions opts;
  auto run = [&](uint64_t seed) {
    MoCoGrad agg(opts);
    Rng rng(seed);
    Rng data(17);
    GradMatrix g(4, 10);
    for (int i = 0; i < 4; ++i) {
      for (int64_t q = 0; q < 10; ++q) g.Row(i)[q] = data.Normal();
    }
    std::vector<float> out;
    for (int s = 0; s < 3; ++s) out = Step(agg, g, rng, s).shared_grad;
    return out;
  };
  auto a = run(5);
  auto b = run(5);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

}  // namespace
}  // namespace mocograd
