#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/aliexpress.h"
#include "data/dataset.h"
#include "data/movielens.h"
#include "data/office_home.h"
#include "data/qm9.h"
#include "data/scene.h"

namespace mocograd {
namespace {

using data::Batch;
using data::TaskKind;

TEST(DatasetHelpersTest, GatherDim0OnImages) {
  Tensor t = Tensor::Arange(2 * 3 * 2 * 2).Reshape({2, 3, 2, 2});
  Tensor g = data::GatherDim0(t, {1, 0, 1});
  EXPECT_EQ(g.shape(), (Shape{3, 3, 2, 2}));
  EXPECT_FLOAT_EQ(g[0], 12.0f);   // first element of original row 1
  EXPECT_FLOAT_EQ(g[12], 0.0f);   // row 0
}

TEST(DatasetHelpersTest, SubsetBatchWithPixelLabels) {
  Batch full;
  full.x = Tensor::Arange(3 * 4).Reshape({3, 4});
  full.labels = {0, 1, 2, 3, 4, 5};  // 2 labels per row
  Batch sub = data::SubsetBatch(full, {2, 0}, /*labels_per_row=*/2);
  EXPECT_EQ(sub.x.shape(), (Shape{2, 4}));
  EXPECT_EQ(sub.labels, (std::vector<int64_t>{4, 5, 0, 1}));
}

TEST(DatasetHelpersTest, SampleIndicesUniqueWhenPossible) {
  Rng rng(1);
  auto idx = data::SampleIndices(100, 50, rng);
  std::set<int64_t> uniq(idx.begin(), idx.end());
  EXPECT_EQ(uniq.size(), 50u);
  for (int64_t i : idx) {
    EXPECT_GE(i, 0);
    EXPECT_LT(i, 100);
  }
  // With replacement when count > n.
  auto big = data::SampleIndices(5, 20, rng);
  EXPECT_EQ(big.size(), 20u);
}

TEST(MovieLensSimTest, ShapesSplitsAndDeterminism) {
  data::MovieLensConfig cfg;
  cfg.num_genres = 3;
  cfg.train_per_task = 100;
  cfg.test_per_task = 40;
  data::MovieLensSim ds(cfg);
  EXPECT_EQ(ds.num_tasks(), 3);
  EXPECT_FALSE(ds.single_input());
  EXPECT_EQ(ds.task_kind(0), TaskKind::kRegression);

  auto test = ds.TestBatches();
  ASSERT_EQ(test.size(), 3u);
  EXPECT_EQ(test[0].x.shape(), (Shape{40, 16}));
  EXPECT_EQ(test[0].y.shape(), (Shape{40, 1}));
  // Ratings live in [1, 5].
  for (int64_t i = 0; i < test[0].y.NumElements(); ++i) {
    EXPECT_GE(test[0].y[i], 1.0f);
    EXPECT_LE(test[0].y[i], 5.0f);
  }
  // Multi-input: per-task batches are distinct tensors.
  EXPECT_FALSE(test[0].x.SharesStorageWith(test[1].x));

  // Determinism: same config → same data.
  data::MovieLensSim ds2(cfg);
  auto test2 = ds2.TestBatches();
  for (int64_t i = 0; i < 20; ++i) {
    EXPECT_FLOAT_EQ(test[1].y[i], test2[1].y[i]);
  }

  Rng rng(3);
  auto batches = ds.SampleTrainBatches(16, rng);
  EXPECT_EQ(batches[2].x.Dim(0), 16);
}

TEST(MovieLensSimTest, RelatednessControlsTaskSimilarity) {
  // With relatedness 1 every genre has the same transform: expected ratings
  // for the same (user,item) pair should correlate strongly across genres.
  data::MovieLensConfig hi;
  hi.num_genres = 2;
  hi.relatedness = 1.0f;
  hi.noise = 0.0f;
  hi.outlier_fraction = 0.0f;
  hi.train_per_task = 10;
  hi.test_per_task = 400;
  data::MovieLensSim rel(hi);
  // Genre transforms identical -> only bias differs; variance of y across
  // tasks driven by the same bilinear term. Proxy check: std of targets is
  // comparable and nonzero.
  auto t = rel.TestBatches();
  double m0 = 0, m1 = 0;
  for (int i = 0; i < 400; ++i) {
    m0 += t[0].y[i];
    m1 += t[1].y[i];
  }
  EXPECT_NEAR(m0 / 400, 3.0, 0.5);
  EXPECT_NEAR(m1 / 400, 3.0, 0.5);
}

TEST(AliExpressSimTest, FunnelAndSingleInput) {
  data::AliExpressConfig cfg;
  cfg.num_train = 500;
  cfg.num_test = 2000;
  data::AliExpressSim ds(cfg);
  EXPECT_TRUE(ds.single_input());
  EXPECT_EQ(ds.num_tasks(), 2);
  auto test = ds.TestBatches();
  // Both tasks share the same impressions.
  EXPECT_TRUE(test[0].x.SharesStorageWith(test[1].x));
  // Funnel: a conversion implies a click, so ctcvr <= ctr per row.
  double clicks = 0, convs = 0;
  for (int64_t i = 0; i < test[0].y.NumElements(); ++i) {
    EXPECT_GE(test[0].y[i], test[1].y[i]);
    clicks += test[0].y[i];
    convs += test[1].y[i];
  }
  // Imbalanced labels: clicks a minority, conversions rarer still.
  EXPECT_GT(clicks / 2000, 0.02);
  EXPECT_LT(clicks / 2000, 0.6);
  EXPECT_LT(convs, clicks);
  // Categorical id columns are integral and in range.
  const int d = cfg.dense_dim;
  for (int64_t i = 0; i < 50; ++i) {
    const float seg = test[0].x.At(i, d);
    EXPECT_FLOAT_EQ(seg, std::round(seg));
    EXPECT_LT(seg, cfg.num_user_segments);
  }
}

TEST(AliExpressSimTest, CountriesDiffer) {
  data::AliExpressConfig es;
  es.country = "ES";
  es.num_train = 100;
  es.num_test = 100;
  data::AliExpressConfig us = es;
  us.country = "US";
  data::AliExpressSim a(es), b(us);
  bool differs = false;
  auto ta = a.TestBatches(), tb = b.TestBatches();
  for (int64_t i = 0; i < 50 && !differs; ++i) {
    if (ta[0].x[i] != tb[0].x[i]) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Qm9SimTest, NormalizationAndScales) {
  data::Qm9Config cfg;
  cfg.num_properties = 5;
  cfg.train_per_task = 400;
  cfg.test_per_task = 100;
  data::Qm9Sim ds(cfg);
  EXPECT_EQ(ds.num_tasks(), 5);
  EXPECT_EQ(ds.task_kind(0), TaskKind::kRegressionMae);
  EXPECT_FALSE(ds.single_input());
  auto test = ds.TestBatches();
  // Scale-only normalization: train std ≈ 1 per property, mean retained
  // (nonzero — properties have mean >> 0).
  for (int p = 0; p < 5; ++p) {
    double mean = 0.0;
    for (int64_t i = 0; i < test[p].y.NumElements(); ++i) {
      mean += test[p].y[i];
    }
    mean /= test[p].y.NumElements();
    EXPECT_GT(std::fabs(mean), 0.5) << "property mean should be retained";
  }
  EXPECT_GT(ds.property_scale(2), ds.property_scale(1));
}

TEST(SceneSimTest, NyuStructure) {
  data::SceneConfig cfg;
  cfg.mode = data::SceneMode::kNyu;
  cfg.num_train = 10;
  cfg.num_test = 6;
  cfg.hw = 12;
  data::SceneSim ds(cfg);
  EXPECT_EQ(ds.num_tasks(), 3);
  EXPECT_TRUE(ds.single_input());
  EXPECT_EQ(ds.ClassCount(0), 13);
  auto test = ds.TestBatches();
  EXPECT_EQ(test[0].x.shape(), (Shape{6, 3, 12, 12}));
  EXPECT_EQ(test[0].labels.size(), 6u * 12 * 12);
  EXPECT_EQ(test[1].y.shape(), (Shape{6, 1, 12, 12}));
  EXPECT_EQ(test[2].y.shape(), (Shape{6, 3, 12, 12}));
  // Labels within range.
  for (int64_t l : test[0].labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 13);
  }
  // Normals are unit vectors.
  const Tensor& n = test[2].y;
  const int64_t hw2 = 12 * 12;
  for (int64_t p = 0; p < hw2; ++p) {
    const double nx = n[0 * hw2 + p], ny = n[1 * hw2 + p],
                 nz = n[2 * hw2 + p];
    EXPECT_NEAR(nx * nx + ny * ny + nz * nz, 1.0, 1e-4);
  }
  // Sampling keeps x identical across tasks (single-input) and slices
  // pixel labels per image.
  Rng rng(5);
  auto batches = ds.SampleTrainBatches(4, rng);
  ASSERT_EQ(batches[0].x.NumElements(), batches[1].x.NumElements());
  for (int64_t i = 0; i < batches[0].x.NumElements(); ++i) {
    ASSERT_FLOAT_EQ(batches[0].x[i], batches[1].x[i]);
  }
  EXPECT_EQ(batches[0].labels.size(), 4u * 12 * 12);
}

TEST(SceneSimTest, CityscapesHasTwoTasks) {
  data::SceneConfig cfg;
  cfg.mode = data::SceneMode::kCityscapes;
  cfg.num_train = 4;
  cfg.num_test = 4;
  data::SceneSim ds(cfg);
  EXPECT_EQ(ds.num_tasks(), 2);
  EXPECT_EQ(ds.num_classes(), 7);
  EXPECT_DEATH(ds.task_kind(2), "normals are NYU-only");
}

TEST(ScenePixelDatasetTest, WindowsAndTargets) {
  data::SceneConfig cfg;
  cfg.mode = data::SceneMode::kNyu;
  cfg.num_train = 6;
  cfg.num_test = 4;
  data::SceneSim scene(cfg);
  data::ScenePixelDataset px(scene, /*window=*/3, /*pixels_per_image=*/10);
  EXPECT_EQ(px.num_tasks(), 3);
  EXPECT_EQ(px.input_dim(), 27);  // 3 channels x 3x3 window
  EXPECT_EQ(px.ClassCount(0), 13);
  auto test = px.TestBatches();
  EXPECT_EQ(test[0].x.shape(), (Shape{40, 27}));
  EXPECT_EQ(test[0].labels.size(), 40u);
  EXPECT_EQ(test[1].y.shape(), (Shape{40, 1}));
  EXPECT_EQ(test[2].y.shape(), (Shape{40, 3}));
}

TEST(OfficeHomeSimTest, DomainsAndLabels) {
  data::OfficeHomeConfig cfg;
  cfg.num_classes = 10;
  cfg.train_per_class_per_domain = 4;
  cfg.test_per_class_per_domain = 2;
  cfg.label_noise = 0.0f;
  data::OfficeHomeSim ds(cfg);
  EXPECT_EQ(ds.num_tasks(), 4);
  EXPECT_FALSE(ds.single_input());
  EXPECT_EQ(std::string(data::OfficeHomeSim::DomainName(0)), "Art");
  auto test = ds.TestBatches();
  EXPECT_EQ(test[0].x.shape(), (Shape{20, cfg.feature_dim}));
  // Without label noise every class appears exactly test_per_class times.
  std::vector<int> counts(10, 0);
  for (int64_t l : test[0].labels) counts[l]++;
  for (int c : counts) EXPECT_EQ(c, 2);
}

TEST(OfficeHomeSimTest, LabelNoiseInjectsMislabels) {
  data::OfficeHomeConfig clean;
  clean.num_classes = 10;
  clean.train_per_class_per_domain = 30;
  clean.label_noise = 0.0f;
  data::OfficeHomeConfig noisy = clean;
  noisy.label_noise = 0.5f;
  data::OfficeHomeSim a(clean), b(noisy);
  // Under 50% label noise, a sizeable fraction of train labels differ from
  // the class index implied by generation order. TestBatches() returns by
  // value; keep the batches alive past the subscript.
  const auto batches = b.TestBatches();
  const auto& labels = batches[0].labels;
  int mismatches = 0;
  int row = 0;
  for (int cls = 0; cls < 10; ++cls) {
    for (int s = 0; s < 6; ++s, ++row) {
      if (labels[row] != cls) ++mismatches;
    }
  }
  EXPECT_GT(mismatches, 5);
}

}  // namespace
}  // namespace mocograd
