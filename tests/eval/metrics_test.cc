#include "eval/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "base/rng.h"

namespace mocograd {
namespace {

TEST(AucTest, PerfectRankingIsOne) {
  Tensor scores = Tensor::FromVector({4}, {0.1f, 0.4f, 0.6f, 0.9f});
  Tensor labels = Tensor::FromVector({4}, {0, 0, 1, 1});
  EXPECT_DOUBLE_EQ(eval::Auc(scores, labels), 1.0);
}

TEST(AucTest, ReversedRankingIsZero) {
  Tensor scores = Tensor::FromVector({4}, {0.9f, 0.8f, 0.2f, 0.1f});
  Tensor labels = Tensor::FromVector({4}, {0, 0, 1, 1});
  EXPECT_DOUBLE_EQ(eval::Auc(scores, labels), 0.0);
}

TEST(AucTest, TiesGetHalfCredit) {
  Tensor scores = Tensor::FromVector({4}, {0.5f, 0.5f, 0.5f, 0.5f});
  Tensor labels = Tensor::FromVector({4}, {0, 1, 0, 1});
  EXPECT_NEAR(eval::Auc(scores, labels), 0.5, 1e-9);
}

TEST(AucTest, HandComputedMixedCase) {
  // scores: pos {0.8, 0.4}, neg {0.6, 0.2}.
  // pairs: (0.8>0.6),(0.8>0.2),(0.4<0.6),(0.4>0.2) => 3/4.
  Tensor scores = Tensor::FromVector({4}, {0.8f, 0.4f, 0.6f, 0.2f});
  Tensor labels = Tensor::FromVector({4}, {1, 1, 0, 0});
  EXPECT_NEAR(eval::Auc(scores, labels), 0.75, 1e-9);
}

TEST(AucTest, DegenerateSingleClass) {
  Tensor scores = Tensor::FromVector({3}, {0.1f, 0.5f, 0.9f});
  EXPECT_DOUBLE_EQ(eval::Auc(scores, Tensor::Ones({3})), 0.5);
  EXPECT_DOUBLE_EQ(eval::Auc(scores, Tensor::Zeros({3})), 0.5);
}

TEST(AucTest, InvariantToMonotoneTransform) {
  Rng rng(3);
  Tensor scores = Tensor::Randn({50}, rng);
  Tensor labels(Shape{50});
  for (int i = 0; i < 50; ++i) labels[i] = rng.Bernoulli(0.4) ? 1.0f : 0.0f;
  Tensor sig(Shape{50});
  for (int i = 0; i < 50; ++i) {
    sig[i] = 1.0f / (1.0f + std::exp(-scores[i]));
  }
  EXPECT_NEAR(eval::Auc(scores, labels), eval::Auc(sig, labels), 1e-9);
}

TEST(RegressionMetricsTest, RmseMaeAbsRel) {
  Tensor pred = Tensor::FromVector({3}, {1, 2, 3});
  Tensor target = Tensor::FromVector({3}, {2, 2, 5});
  EXPECT_NEAR(eval::Mae(pred, target), 1.0, 1e-6);
  EXPECT_NEAR(eval::Rmse(pred, target), std::sqrt(5.0 / 3.0), 1e-6);
  EXPECT_NEAR(eval::AbsErr(pred, target), 1.0, 1e-6);
  // RelErr: mean of |e|/|t| * 100 = (0.5 + 0 + 0.4)/3 * 100.
  EXPECT_NEAR(eval::RelErr(pred, target), (0.5 + 0.0 + 0.4) / 3 * 100, 1e-4);
}

TEST(AccuracyTest, TopOneArgmax) {
  Tensor logits = Tensor::FromVector({3, 2}, {1, 0, 0, 1, 2, 1});
  EXPECT_NEAR(eval::Accuracy(logits, {0, 1, 1}), 2.0 / 3.0, 1e-9);
}

TEST(PixelMetricsTest, PerfectPrediction) {
  // [1, 2, 2, 2] logits map: class = pixel index pattern.
  Tensor logits = Tensor::Zeros({1, 2, 2, 2});
  // pixel (0,0) -> class 0, others class 1.
  logits.data()[0 * 4 + 0] = 5.0f;  // channel 0, pixel 0
  for (int p = 1; p < 4; ++p) logits.data()[1 * 4 + p] = 5.0f;
  std::vector<int64_t> labels = {0, 1, 1, 1};
  EXPECT_DOUBLE_EQ(eval::PixelAccuracy(logits, labels), 1.0);
  EXPECT_DOUBLE_EQ(eval::MeanIou(logits, labels, 2), 1.0);
}

TEST(PixelMetricsTest, MeanIouHandComputed) {
  // One class predicted everywhere, labels half/half:
  // class0: inter 2, union 4 -> 0.5 ; class1: inter 0, union 2 -> 0.
  Tensor logits = Tensor::Zeros({1, 2, 2, 2});
  for (int p = 0; p < 4; ++p) logits.data()[0 * 4 + p] = 5.0f;
  std::vector<int64_t> labels = {0, 0, 1, 1};
  EXPECT_NEAR(eval::PixelAccuracy(logits, labels), 0.5, 1e-9);
  EXPECT_NEAR(eval::MeanIou(logits, labels, 2), (0.5 + 0.0) / 2, 1e-9);
}

TEST(NormalAnglesTest, IdenticalNormalsZeroAngle) {
  Rng rng(4);
  Tensor n = Tensor::Randn({2, 3, 2, 2}, rng);
  auto stats = eval::NormalAngles(n, n);
  EXPECT_NEAR(stats.mean_deg, 0.0, 1e-3);
  EXPECT_NEAR(stats.median_deg, 0.0, 1e-3);
  EXPECT_NEAR(stats.within_11, 1.0, 1e-9);
}

TEST(NormalAnglesTest, OrthogonalIsNinety) {
  Tensor a = Tensor::Zeros({1, 3, 1, 1});
  Tensor b = Tensor::Zeros({1, 3, 1, 1});
  a.data()[0] = 1.0f;  // x axis
  b.data()[1] = 1.0f;  // y axis
  auto stats = eval::NormalAngles(a, b);
  EXPECT_NEAR(stats.mean_deg, 90.0, 1e-4);
  EXPECT_NEAR(stats.within_30, 0.0, 1e-9);
}

TEST(NormalAnglesTest, ScaleInvariantInPrediction) {
  // Predictions are normalized, so scaling them must not change angles.
  Rng rng(5);
  Tensor t = Tensor::Randn({1, 3, 2, 2}, rng);
  Tensor p = Tensor::Randn({1, 3, 2, 2}, rng);
  Tensor p2 = p.Clone();
  for (int64_t i = 0; i < p2.NumElements(); ++i) p2[i] *= 7.5f;
  auto s1 = eval::NormalAngles(p, t);
  auto s2 = eval::NormalAngles(p2, t);
  EXPECT_NEAR(s1.mean_deg, s2.mean_deg, 1e-4);
  EXPECT_NEAR(s1.median_deg, s2.median_deg, 1e-4);
}

TEST(NormalAnglesTest, WithinThresholdsMonotone) {
  Rng rng(6);
  Tensor t = Tensor::Randn({2, 3, 4, 4}, rng);
  Tensor p = Tensor::Randn({2, 3, 4, 4}, rng);
  auto s = eval::NormalAngles(p, t);
  EXPECT_LE(s.within_11, s.within_22);
  EXPECT_LE(s.within_22, s.within_30);
}

}  // namespace
}  // namespace mocograd
